GO ?= go

.PHONY: build vet lint test race fuzz verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Determinism lint suite (internal/lint) plus go vet; see DESIGN.md
# "Determinism contract".
lint:
	$(GO) run ./cmd/antidope-lint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Coverage-guided smoke of the full simulator; CI runs the same budget.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzSim -fuzztime=30s ./internal/core

# Tier-1 verify: what every PR must keep green. The lint target already
# includes go vet, and race subsumes plain test.
verify: build lint race
