GO ?= go
BENCH_TOLERANCE ?= 0.10

.PHONY: build vet lint lint-baseline test race fuzz fuzz-scenario coverfloor chaos verify bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Determinism lint suite (internal/lint) plus go vet: eight per-package
# analyzers, the whole-program reachability pass (transitive walltime /
# globalrand with call chains), and the hotalloc escape-analysis gate,
# ratcheted against the checked-in baseline. See DESIGN.md "Static
# analysis".
lint:
	$(GO) run ./cmd/antidope-lint -baseline lint.baseline.json ./...

# Regenerate the ratchet baseline. Only for adopting the linter on a tree
# with pre-existing findings; the checked-in baseline is empty and should
# stay that way.
lint-baseline:
	$(GO) run ./cmd/antidope-lint -write-baseline lint.baseline.json ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Coverage-guided smoke of the full simulator; CI runs the same budget.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzSim -fuzztime=30s ./internal/core

# Scenario-DSL fuzz smoke: arbitrary bytes through parse -> normalize ->
# marshal -> compile; asserts no panics, canonical-form fixed point, and
# deterministic compilation. No simulations run, so iterations are cheap.
fuzz-scenario:
	$(GO) test -run='^$$' -fuzz=FuzzScenario -fuzztime=30s ./internal/scenario

# Statement-coverage floor for the scenario DSL front end; mirrors the CI
# gate so a lost test trips locally too.
coverfloor:
	sh scripts/coverfloor.sh 80 ./internal/scenario

# Fault-injection suite under the race detector plus a fuzz smoke that feeds
# malformed fault schedules into full runs; mirrors the CI chaos job. The
# Net|Partition patterns pull in the network-condition suite (link loss,
# latency, partitions, retry/backoff) and TestResilience covers both the
# fault and network-chaos sweep goldens. See DESIGN.md "Fault model &
# graceful degradation".
chaos:
	$(GO) test -race -count=1 ./internal/faults
	$(GO) test -race -count=1 -run 'Fault|Crash|Telemetry|Firewall|Breaker|Failed|Fade|Down|Recovered|Net|Partition' ./internal/core ./internal/server ./internal/netlb ./internal/battery ./internal/defense
	$(GO) test -race -count=1 -run 'TestResilience' ./internal/experiments
	$(GO) test -run='^$$' -fuzz=FuzzFaultSchedule -fuzztime=30s ./internal/core

# Tier-1 verify: what every PR must keep green. The lint target already
# includes go vet, and race subsumes plain test.
verify: build lint race

# Hot-path micro-benchmarks plus the quick-suite macro run, gated against the
# checked-in baseline (BENCH_3.json). Writes the fresh numbers to
# BENCH_new.json; fails when any ns/op regresses more than BENCH_TOLERANCE.
# See EXPERIMENTS.md "Profiling and benchmark regression".
bench:
	{ \
	  $(GO) test -run='^$$' -bench 'BenchmarkScheduleAndRun|BenchmarkScheduleFireSteady|BenchmarkScheduleCancel|BenchmarkDrainBatch' -benchmem -benchtime=2s ./internal/simtime; \
	  $(GO) test -run='^$$' -bench 'BenchmarkAdvance$$|BenchmarkNextCompletion|BenchmarkPowerAt|BenchmarkAdvanceCompleting' -benchmem -benchtime=2s ./internal/server; \
	  $(GO) test -run='^$$' -bench 'BenchmarkSnapshotFork' -benchmem -benchtime=2s ./internal/core; \
	  $(GO) test -run='^$$' -bench 'BenchmarkModelPower$$|BenchmarkModelPowerLadder|BenchmarkTablePowerLadder' -benchmem -benchtime=2s ./internal/power; \
	  $(GO) test -run='^$$' -bench 'BenchmarkPercentile' -benchmem -benchtime=2s ./internal/stats; \
	  $(GO) test -run='^$$' -bench 'BenchmarkBusEmit|BenchmarkRecorderRecord|BenchmarkTimelineEmit' -benchmem -benchtime=2s ./internal/obs; \
	  $(GO) test -run='^$$' -bench 'BenchmarkAnalyze' -benchmem -benchtime=2s ./internal/obs/analyze; \
	  $(GO) test -run='^$$' -bench 'BenchmarkLintLoad' -benchmem -benchtime=5x ./internal/lint; \
	  $(GO) test -run='^$$' -bench 'BenchmarkAllQuick/sequential' -benchtime=3x . ; \
	} | $(GO) run ./cmd/benchregress -baseline BENCH_3.json -tolerance $(BENCH_TOLERANCE) -out BENCH_new.json
