module antidope

go 1.22
