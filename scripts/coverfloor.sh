#!/bin/sh
# coverfloor.sh FLOOR_PERCENT PACKAGE...
#
# Runs the packages' tests with a coverage profile and fails when the total
# statement coverage (go tool cover -func) drops below the floor. CI gates
# the scenario DSL front end with this so parser/normalizer/compiler
# branches cannot quietly lose their tests.
set -eu

if [ "$#" -lt 2 ]; then
    echo "usage: $0 FLOOR_PERCENT PACKAGE..." >&2
    exit 2
fi

floor="$1"
shift

profile="$(mktemp)"
trap 'rm -f "$profile"' EXIT

go test -coverprofile="$profile" "$@" > /dev/null

total="$(go tool cover -func="$profile" | awk '/^total:/ { sub(/%/, "", $3); print $3 }')"
if [ -z "$total" ]; then
    echo "coverfloor: no total in go tool cover output" >&2
    exit 2
fi

awk -v t="$total" -v f="$floor" -v pkgs="$*" 'BEGIN {
    if (t + 0 < f + 0) {
        printf "coverfloor: %s: %.1f%% statement coverage is below the %.1f%% floor\n", pkgs, t, f
        exit 1
    }
    printf "coverfloor: %s: %.1f%% statement coverage meets the %.1f%% floor\n", pkgs, t, f
}'
