#!/usr/bin/env sh
# Tier-1 verify path, for environments without make: build, determinism
# lint suite (includes go vet), and the test suite under the race
# detector. Mirrors `make verify` and the CI workflow.
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> antidope-lint (determinism suite + go vet)"
go run ./cmd/antidope-lint ./...

echo "==> go test -race ./..."
go test -race ./...

echo "verify: OK"
