// Command antidope-sim runs one simulation scenario: a power-constrained
// rack under configurable legitimate load and DOPE-style floods, defended
// by one of the Table 2 schemes, and prints the measurement summary.
//
// Examples:
//
//	antidope-sim -scheme anti-dope -budget medium -attack colla-filt:60,k-means:40 -horizon 300
//	antidope-sim -scheme capping -budget low -attack colla-filt:400 -series
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"antidope/internal/attack"
	"antidope/internal/cluster"
	"antidope/internal/core"
	"antidope/internal/defense"
	"antidope/internal/obs"
	"antidope/internal/report"
	"antidope/internal/stats"
	"antidope/internal/thermal"
	"antidope/internal/workload"
)

func main() {
	var (
		schemeName = flag.String("scheme", "anti-dope", "defense scheme: none|capping|shaving|token|anti-dope")
		budgetName = flag.String("budget", "medium", "power budget: normal|high|medium|low")
		attackSpec = flag.String("attack", "", "comma-separated class:rps floods, e.g. colla-filt:60,k-means:40")
		agents     = flag.Int("agents", 32, "attacker agents per flood")
		normalRPS  = flag.Float64("normal", 120, "legitimate request rate (req/s)")
		horizon    = flag.Float64("horizon", 300, "simulated seconds")
		warmup     = flag.Float64("warmup", 10, "seconds excluded from latency stats")
		seed       = flag.Uint64("seed", 1, "random seed")
		noFirewall = flag.Bool("no-firewall", false, "disable the perimeter firewall")
		servers    = flag.Int("servers", 4, "servers in the rack")
		series     = flag.Bool("series", false, "also print the power/battery time series")
		reportPath = flag.String("report", "", "write a Markdown report to this file")
		csvPath    = flag.String("csv", "", "write the power/battery/frequency series as CSV to this file")
		jsonPath   = flag.String("json", "", "write the machine-readable summary as JSON to this file")
		thermalOn  = flag.Bool("thermal", false, "enable the cooling plane (CRAC sized to the power budget)")
		tracePath  = flag.String("trace", "", "write a Chrome trace-event JSON of the run to this file (load in Perfetto)")
		promPath   = flag.String("metrics", "", "write the run's metrics in Prometheus text format to this file")
		eventsPath = flag.String("events", "", "write the full structured event stream as CSV to this file")
		tlJSON     = flag.String("timeline", "", "write the sim-time timeline (fixed windows of power/admits/drops/retries/SLA) as JSON to this file")
		tlCSV      = flag.String("timeline-csv", "", "write the sim-time timeline as CSV to this file")
		serveAddr  = flag.String("serve", "", "serve the run's metrics live (Prometheus text) on this address while it executes, e.g. 127.0.0.1:9464")
	)
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.NormalRPS = *normalRPS
	cfg.Horizon = *horizon
	cfg.WarmupSec = *warmup
	cfg.Seed = *seed
	cfg.Cluster.Servers = *servers
	if *noFirewall {
		cfg.Firewall.Disabled = true
	}
	if *thermalOn {
		cfg.Thermal = thermal.Config{Enabled: true}
	}

	budget, err := parseBudget(*budgetName)
	if err != nil {
		fatal(err)
	}
	cfg.Cluster.Budget = budget

	scheme, err := defense.ByName(*schemeName, core.Ladder(cfg))
	if err != nil {
		fatal(err)
	}
	cfg.Scheme = scheme

	attacks, err := parseAttacks(*attackSpec, *agents, cfg.WarmupSec, cfg.Horizon)
	if err != nil {
		fatal(err)
	}
	cfg.Attacks = attacks

	// A live endpoint needs the mutex-wrapped LiveBus so the scraper can
	// read while the run emits; file-only exports keep the lock-free Bus.
	var bus *obs.Bus
	wantBus := *tracePath != "" || *promPath != "" || *eventsPath != "" ||
		*tlJSON != "" || *tlCSV != "" || *serveAddr != ""
	if wantBus {
		var live *obs.LiveBus
		if *serveAddr != "" {
			live = obs.NewLiveBus()
			cfg.Observer = live
			bus = live.Bus() // only read after the run finishes
		} else {
			bus = obs.NewBus()
			cfg.Observer = bus
		}
		if *tlJSON != "" || *tlCSV != "" {
			// Package defaults: 1 s windows, 250 ms SLA bound.
			if live != nil {
				live.EnableTimeline(0, 0)
			} else {
				bus.EnableTimeline(0, 0)
			}
		}
		if live != nil {
			ms, err := obs.Serve(*serveAddr, live)
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "antidope-sim: serving metrics on http://%s/metrics\n", ms.Addr())
			defer func() {
				if err := ms.Close(); err != nil {
					fatal(err)
				}
			}()
		}
	}

	res, err := core.RunOnce(cfg)
	if err != nil {
		fatal(err)
	}
	res.Fprint(os.Stdout)

	if bus != nil {
		writeObs(bus, *tracePath, *promPath, *eventsPath, *tlJSON, *tlCSV)
	}

	if *reportPath != "" {
		f, err := os.Create(*reportPath)
		if err != nil {
			fatal(err)
		}
		title := fmt.Sprintf("antidope-sim: %s at %s", res.SchemeName, *budgetName)
		if err := report.Markdown(f, title, res); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("report written to %s\n", *reportPath)
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		err = report.CSV(f, []string{"power_w", "battery_soc", "mean_ghz", "vf_reduction"},
			[]stats.Series{res.Power, res.Battery, res.Freq, res.VFRed})
		if err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("series written to %s\n", *csvPath)
	}

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fatal(err)
		}
		if err := report.JSON(f, res, 60); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("summary written to %s\n", *jsonPath)
	}

	if *series {
		sum := res.Power.Summary()
		fmt.Printf("\npower   [%5.1f..%5.1f W] %s\n", sum.Min(), sum.Max(), res.Power.Sparkline(60))
		bsum := res.Battery.Summary()
		fmt.Printf("battery [%5.2f..%5.2f  ] %s\n", bsum.Min(), bsum.Max(), res.Battery.Sparkline(60))
		fsum := res.Freq.Summary()
		fmt.Printf("freq    [%5.2f..%5.2f G] %s\n", fsum.Min(), fsum.Max(), res.Freq.Sparkline(60))
		fmt.Println("\npower series (t, W):")
		for _, p := range res.Power.Downsample(40).Points {
			fmt.Printf("  %7.1f  %6.1f\n", p.T, p.V)
		}
		fmt.Println("battery SoC series (t, frac):")
		for _, p := range res.Battery.Downsample(40).Points {
			fmt.Printf("  %7.1f  %6.3f\n", p.T, p.V)
		}
	}
}

func parseBudget(name string) (cluster.BudgetLevel, error) {
	switch strings.ToLower(name) {
	case "normal":
		return cluster.NormalPB, nil
	case "high":
		return cluster.HighPB, nil
	case "medium":
		return cluster.MediumPB, nil
	case "low":
		return cluster.LowPB, nil
	default:
		return 0, fmt.Errorf("unknown budget %q (want normal|high|medium|low)", name)
	}
}

func parseClass(name string) (workload.Class, error) {
	for c := workload.Class(0); int(c) < workload.NumClasses; c++ {
		if strings.EqualFold(c.String(), name) {
			return c, nil
		}
	}
	return 0, fmt.Errorf("unknown class %q (want e.g. colla-filt, k-means, word-count, text-cont)", name)
}

func parseAttacks(spec string, agents int, start, horizon float64) ([]attack.Spec, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var out []attack.Spec
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), ":", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("attack %q: want class:rps", part)
		}
		class, err := parseClass(kv[0])
		if err != nil {
			return nil, err
		}
		rps, err := strconv.ParseFloat(kv[1], 64)
		if err != nil || rps <= 0 {
			return nil, fmt.Errorf("attack %q: bad rate", part)
		}
		out = append(out, attack.Spec{
			Name: "cli-" + class.String(), Layer: attack.ApplicationLayer,
			Class: class, RateRPS: rps, Agents: agents,
			Start: start, Duration: horizon - start,
		})
	}
	return out, nil
}

// writeObs exports the run's observability capture to whichever of the
// requested sinks.
func writeObs(bus *obs.Bus, tracePath, promPath, eventsPath, tlJSON, tlCSV string) {
	write := func(path, what string, render func(io.Writer) error) {
		if path == "" {
			return
		}
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := render(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("%s written to %s\n", what, path)
	}
	write(tracePath, "trace", bus.WriteChromeTrace)
	write(promPath, "metrics", bus.WritePrometheus)
	write(eventsPath, "events", bus.WriteCSV)
	write(tlJSON, "timeline", bus.WriteTimelineJSON)
	write(tlCSV, "timeline CSV", bus.WriteTimelineCSV)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "antidope-sim:", err)
	os.Exit(1)
}
