// Command tracecheck validates a Chrome trace-event JSON file produced by
// the observability exporters (antidope-sim -trace, paperbench -trace)
// against the subset of the trace-event format the exporters emit, so CI
// can assert that every captured trace stays Perfetto-loadable.
//
// Usage:
//
//	tracecheck run.trace.json [more.trace.json ...]
package main

import (
	"fmt"
	"os"

	"antidope/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <trace.json> [...]")
		os.Exit(2)
	}
	code := 0
	for _, path := range os.Args[1:] {
		data, err := os.ReadFile(path)
		if err == nil {
			err = obs.ValidateChromeTrace(data)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
			code = 1
			continue
		}
		fmt.Printf("tracecheck: %s ok\n", path)
	}
	os.Exit(code)
}
