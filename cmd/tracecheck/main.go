// Command tracecheck validates observability captures produced by the
// exporters (antidope-sim, paperbench, tracereport) so CI can assert that
// every artifact stays loadable by its consumer. The format is sniffed per
// file: Chrome trace-event JSON (Perfetto-loadable subset), timeline JSON
// (antidope-timeline/v1: monotone window starts, bucket-count/width
// consistency, non-negative histogram sums), and Prometheus text
// exposition (HELP/TYPE conformance, _total counters, cumulative
// histograms).
//
// Usage:
//
//	tracecheck run.trace.json run.timeline.json run.prom [...]
package main

import (
	"bytes"
	"fmt"
	"os"

	"antidope/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <capture> [...]")
		os.Exit(2)
	}
	code := 0
	for _, path := range os.Args[1:] {
		kind := "capture"
		data, err := os.ReadFile(path)
		if err == nil {
			kind, err = validate(data)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
			code = 1
			continue
		}
		fmt.Printf("tracecheck: %s ok (%s)\n", path, kind)
	}
	os.Exit(code)
}

// validate sniffs the capture format and runs the matching validator.
func validate(data []byte) (string, error) {
	trim := bytes.TrimLeft(data, " \t\r\n")
	switch {
	case len(trim) == 0:
		return "", fmt.Errorf("empty file")
	case trim[0] == '{':
		head := trim
		if len(head) > 256 {
			head = head[:256]
		}
		if bytes.Contains(head, []byte(obs.TimelineSchema)) {
			return "timeline", obs.ValidateTimeline(data)
		}
		return "chrome-trace", obs.ValidateChromeTrace(data)
	case trim[0] == '#':
		return "prometheus", obs.ValidatePrometheus(data)
	default:
		return "", fmt.Errorf("unrecognized capture format (want trace JSON, timeline JSON, or Prometheus text)")
	}
}
