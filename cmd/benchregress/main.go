// Command benchregress turns `go test -bench` output into a stable JSON
// record and gates CI on it: pipe benchmark output through it to snapshot the
// numbers, and pass a checked-in baseline to fail the build when a benchmark
// slows down past the tolerance.
//
// Examples:
//
//	go test -bench . -benchmem ./internal/... | benchregress -out BENCH_3.json
//	go test -bench . ./... | benchregress -baseline BENCH_3.json -tolerance 0.10
//
// The JSON schema ("antidope-bench/v1") maps benchmark name (with the
// -GOMAXPROCS suffix stripped, so runs from different machines compare) to
// ns/op and, when -benchmem was set, B/op and allocs/op. Only ns/op is gated:
// alloc counts are locked exactly by testing.AllocsPerRun assertions instead.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

type benchFile struct {
	Schema     string                `json:"schema"`
	Benchmarks map[string]benchEntry `json:"benchmarks"`
}

type benchEntry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

const schema = "antidope-bench/v1"

// benchLine matches one `go test -bench` result line:
//
//	BenchmarkName-8   123456   1234 ns/op [  56 B/op   7 allocs/op]
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op\s+([0-9.]+) allocs/op)?`)

func main() {
	var (
		out       = flag.String("out", "", "write parsed results to this JSON file")
		baseline  = flag.String("baseline", "", "compare ns/op against this JSON file and fail on regressions")
		tolerance = flag.Float64("tolerance", 0.10, "allowed fractional ns/op increase over the baseline")
	)
	flag.Parse()

	got, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchregress: %v\n", err)
		os.Exit(1)
	}
	if len(got.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchregress: no benchmark lines on stdin")
		os.Exit(1)
	}

	if *out != "" {
		raw, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchregress: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, append(raw, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchregress: %v\n", err)
			os.Exit(1)
		}
	}

	if *baseline == "" {
		return
	}
	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchregress: %v\n", err)
		os.Exit(1)
	}
	names := make([]string, 0, len(got.Benchmarks))
	for name := range got.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	regressed := 0
	for _, name := range names {
		cur := got.Benchmarks[name]
		ref, ok := base.Benchmarks[name]
		if !ok || ref.NsPerOp <= 0 {
			fmt.Printf("NEW      %-55s %12.1f ns/op (no baseline)\n", name, cur.NsPerOp)
			continue
		}
		delta := cur.NsPerOp/ref.NsPerOp - 1
		status := "ok"
		if delta > *tolerance {
			status = "REGRESSED"
			regressed++
		}
		fmt.Printf("%-8s %-55s %12.1f ns/op vs %12.1f (%+.1f%%)\n",
			status, name, cur.NsPerOp, ref.NsPerOp, delta*100)
	}
	if regressed > 0 {
		fmt.Fprintf(os.Stderr, "benchregress: %d benchmark(s) regressed more than %.0f%%\n",
			regressed, *tolerance*100)
		os.Exit(1)
	}
}

func parse(f *os.File) (benchFile, error) {
	out := benchFile{Schema: schema, Benchmarks: map[string]benchEntry{}}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		e := benchEntry{NsPerOp: mustFloat(m[2])}
		if m[3] != "" {
			e.BytesPerOp = mustFloat(m[3])
			e.AllocsPerOp = mustFloat(m[4])
		}
		out.Benchmarks[m[1]] = e
	}
	return out, sc.Err()
}

func load(path string) (benchFile, error) {
	var bf benchFile
	raw, err := os.ReadFile(path)
	if err != nil {
		return bf, err
	}
	if err := json.Unmarshal(raw, &bf); err != nil {
		return bf, fmt.Errorf("%s: %w", path, err)
	}
	if bf.Schema != schema {
		return bf, fmt.Errorf("%s: schema %q, want %q", path, bf.Schema, schema)
	}
	return bf, nil
}

func mustFloat(s string) float64 {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		panic(err) // unreachable: the regexp only matches numbers
	}
	return v
}
