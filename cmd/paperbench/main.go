// Command paperbench regenerates every table and figure of the paper's
// evaluation (the experiment index in DESIGN.md) and prints them with the
// qualitative checks EXPERIMENTS.md records.
//
// Examples:
//
//	paperbench              # full-fidelity suite (minutes)
//	paperbench -quick       # ~4x shorter windows (CI-grade)
//	paperbench -fig 17      # a single figure
package main

import (
	"flag"
	"fmt"
	"os"

	"antidope/internal/experiments"
)

func main() {
	var (
		quick = flag.Bool("quick", false, "shrink observation windows ~4x")
		seed  = flag.Uint64("seed", 2019, "experiment seed")
		fig   = flag.Int("fig", 0, "run a single figure (3..19); 0 = all")
		extra = flag.String("x", "", "run one beyond-the-paper experiment: ablation|outage|pulse|scale|capacity|detection|robustness|thermal")
	)
	flag.Parse()

	o := experiments.Options{Seed: *seed, Quick: *quick}
	w := os.Stdout

	if *extra != "" {
		switch *extra {
		case "ablation":
			experiments.Ablation(o).Table.Fprint(w)
		case "outage":
			experiments.Outage(o).Table.Fprint(w)
		case "pulse":
			experiments.Pulse(o).Table.Fprint(w)
		case "scale":
			experiments.Scale(o).Table.Fprint(w)
		case "capacity":
			experiments.Capacity(o).Table.Fprint(w)
		case "detection":
			experiments.Detection(o).Table.Fprint(w)
		case "robustness":
			experiments.Robustness(o).Table.Fprint(w)
		case "thermal":
			experiments.Thermal(o).Table.Fprint(w)
		default:
			fmt.Fprintf(os.Stderr, "paperbench: unknown extra experiment %q\n", *extra)
			os.Exit(1)
		}
		return
	}

	if *fig == 0 {
		experiments.All(o, w)
		return
	}
	switch *fig {
	case 3:
		r := experiments.Fig3(o)
		r.Table.Fprint(w)
		fmt.Fprintf(w, "ranking: %v\n", r.Ranking)
	case 4:
		r := experiments.Fig4(o)
		r.TableA.Fprint(w)
		r.TableB.Fprint(w)
	case 5:
		r := experiments.Fig5(o)
		r.TableA.Fprint(w)
		r.TableB.Fprint(w)
	case 6:
		r := experiments.Fig6(o)
		r.TableA.Fprint(w)
		r.TableB.Fprint(w)
	case 7:
		experiments.Fig7(o).Table.Fprint(w)
	case 8:
		experiments.Fig8(o).Table.Fprint(w)
	case 9:
		experiments.Fig9(o).Table.Fprint(w)
	case 10:
		experiments.Fig10(o).Table.Fprint(w)
	case 11:
		experiments.Fig11(o).Table.Fprint(w)
	case 12:
		experiments.Fig12(o).Table.Fprint(w)
	case 15:
		r := experiments.Fig15(o)
		r.TableA.Fprint(w)
		r.TableB.Fprint(w)
	case 16, 17, 19:
		grid := experiments.RunEvalGrid(o)
		switch *fig {
		case 16:
			grid.Fig16().Fprint(w)
		case 17:
			grid.Fig17().Fprint(w)
		case 19:
			grid.Fig19().Fprint(w)
		}
	case 18:
		experiments.Fig18(o).Table.Fprint(w)
	default:
		fmt.Fprintf(os.Stderr, "paperbench: no experiment for figure %d (figures 1/2/13/14 are diagrams)\n", *fig)
		os.Exit(1)
	}
}
