// Command paperbench regenerates every table and figure of the paper's
// evaluation (the experiment index in DESIGN.md) and prints them with the
// qualitative checks EXPERIMENTS.md records.
//
// Examples:
//
//	paperbench              # full-fidelity suite (minutes)
//	paperbench -quick       # ~4x shorter windows (CI-grade)
//	paperbench -fig 17      # a single figure
//	paperbench -parallel 1  # force sequential execution (same output)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"antidope/internal/experiments"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "shrink observation windows ~4x")
		seed     = flag.Uint64("seed", 2019, "experiment seed")
		fig      = flag.Int("fig", 0, "run a single figure (3..19); 0 = all")
		extra    = flag.String("x", "", "run one beyond-the-paper experiment: ablation|outage|pulse|scale|capacity|detection|robustness|thermal")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "simulation worker count (output is identical at any setting; 1 = sequential)")
	)
	flag.Parse()

	o := experiments.Options{Seed: *seed, Quick: *quick, Parallel: *parallel}
	w := os.Stdout

	// check aborts on an experiment error; the harness already retried each
	// failing run once, so whatever is left is a real configuration problem.
	check := func(err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			os.Exit(1)
		}
	}

	if *extra != "" {
		var table *experiments.Table
		var err error
		switch *extra {
		case "ablation":
			var r *experiments.AblationResult
			r, err = experiments.Ablation(o)
			if err == nil {
				table = r.Table
			}
		case "outage":
			var r *experiments.OutageResult
			r, err = experiments.Outage(o)
			if err == nil {
				table = r.Table
			}
		case "pulse":
			var r *experiments.PulseResult
			r, err = experiments.Pulse(o)
			if err == nil {
				table = r.Table
			}
		case "scale":
			var r *experiments.ScaleResult
			r, err = experiments.Scale(o)
			if err == nil {
				table = r.Table
			}
		case "capacity":
			var r *experiments.CapacityResult
			r, err = experiments.Capacity(o)
			if err == nil {
				table = r.Table
			}
		case "detection":
			var r *experiments.DetectionResult
			r, err = experiments.Detection(o)
			if err == nil {
				table = r.Table
			}
		case "robustness":
			var r *experiments.RobustnessResult
			r, err = experiments.Robustness(o)
			if err == nil {
				table = r.Table
			}
		case "thermal":
			var r *experiments.ThermalResult
			r, err = experiments.Thermal(o)
			if err == nil {
				table = r.Table
			}
		default:
			fmt.Fprintf(os.Stderr, "paperbench: unknown extra experiment %q\n", *extra)
			os.Exit(1)
		}
		check(err)
		table.Fprint(w)
		return
	}

	if *fig == 0 {
		check(experiments.All(o, w))
		return
	}
	switch *fig {
	case 3:
		r, err := experiments.Fig3(o)
		check(err)
		r.Table.Fprint(w)
		fmt.Fprintf(w, "ranking: %v\n", r.Ranking)
	case 4:
		r, err := experiments.Fig4(o)
		check(err)
		r.TableA.Fprint(w)
		r.TableB.Fprint(w)
	case 5:
		r, err := experiments.Fig5(o)
		check(err)
		r.TableA.Fprint(w)
		r.TableB.Fprint(w)
	case 6:
		r, err := experiments.Fig6(o)
		check(err)
		r.TableA.Fprint(w)
		r.TableB.Fprint(w)
	case 7:
		r, err := experiments.Fig7(o)
		check(err)
		r.Table.Fprint(w)
	case 8:
		r, err := experiments.Fig8(o)
		check(err)
		r.Table.Fprint(w)
	case 9:
		r, err := experiments.Fig9(o)
		check(err)
		r.Table.Fprint(w)
	case 10:
		r, err := experiments.Fig10(o)
		check(err)
		r.Table.Fprint(w)
	case 11:
		r, err := experiments.Fig11(o)
		check(err)
		r.Table.Fprint(w)
	case 12:
		r, err := experiments.Fig12(o)
		check(err)
		r.Table.Fprint(w)
	case 15:
		r, err := experiments.Fig15(o)
		check(err)
		r.TableA.Fprint(w)
		r.TableB.Fprint(w)
	case 16, 17, 19:
		grid, err := experiments.RunEvalGrid(o)
		check(err)
		switch *fig {
		case 16:
			grid.Fig16().Fprint(w)
		case 17:
			grid.Fig17().Fprint(w)
		case 19:
			grid.Fig19().Fprint(w)
		}
	case 18:
		r, err := experiments.Fig18(o)
		check(err)
		r.Table.Fprint(w)
	default:
		fmt.Fprintf(os.Stderr, "paperbench: no experiment for figure %d (figures 1/2/13/14 are diagrams)\n", *fig)
		os.Exit(1)
	}
}
