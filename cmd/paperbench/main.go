// Command paperbench regenerates every table and figure of the paper's
// evaluation (the experiment index in DESIGN.md) and prints them with the
// qualitative checks EXPERIMENTS.md records.
//
// Examples:
//
//	paperbench              # full-fidelity suite (minutes)
//	paperbench -quick       # ~4x shorter windows (CI-grade)
//	paperbench -fig 17      # a single figure
//	paperbench -parallel 1  # force sequential execution (same output)
//	paperbench -quick -cpuprofile cpu.pprof   # profile the suite
//	paperbench -quick -benchjson run.json     # record wall time as bench JSON
//	paperbench -scenario scenarios/fig12_dope.yaml   # one declarative scenario
//	paperbench -scenario-dir scenarios               # a whole scenario suite
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"antidope/internal/experiments"
	"antidope/internal/harness"
	"antidope/internal/obs"
	"antidope/internal/scenario"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "shrink observation windows ~4x")
		seed     = flag.Uint64("seed", 2019, "experiment seed")
		fig      = flag.Int("fig", 0, "run a single figure (3..19); 0 = all")
		extra    = flag.String("x", "", "run one beyond-the-paper experiment: ablation|outage|pulse|scale|capacity|detection|robustness|resilience|resilience-net|thermal")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "simulation worker count (output is identical at any setting; 1 = sequential)")

		scenarioFile = flag.String("scenario", "", "run one declarative scenario file (.yaml/.yml/.json; see EXPERIMENTS.md)")
		scenarioDir  = flag.String("scenario-dir", "", "run every scenario in a directory, in file-name order")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile (after the run) to this file")
		benchjson  = flag.String("benchjson", "", "merge the run's wall time into this file in the antidope-bench/v1 JSON schema")

		traceLabel = flag.String("trace", "", "capture a Chrome trace of the first run whose label contains this substring (e.g. fig12 or fig18/Anti-DOPE)")
		traceOut   = flag.String("traceout", "paperbench.trace.json", "trace output path for -trace")

		serveAddr = flag.String("serve", "", "serve live harness telemetry (Prometheus text) on this address for the duration of the run, e.g. 127.0.0.1:9464")
		manifest  = flag.String("manifest", "", "write the harness run manifest (per-job runtime/retries/worker) as JSON to this file")
	)
	flag.Parse()

	// run holds the actual work so the deferred profile/JSON writers flush
	// before the process exits; os.Exit inside run would skip them.
	os.Exit(run(*quick, *seed, *fig, *extra, *parallel, *scenarioFile, *scenarioDir,
		*cpuprofile, *memprofile, *benchjson, *traceLabel, *traceOut, *serveAddr, *manifest))
}

// errExit unwinds run() on an experiment error after it has already been
// reported, letting the deferred profile writers flush.
var errExit = errors.New("exit")

func run(quick bool, seed uint64, fig int, extra string, parallel int,
	scenarioFile, scenarioDir, cpuprofile, memprofile, benchjson, traceLabel, traceOut,
	serveAddr, manifest string) (exitCode int) {
	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
				exitCode = 1
			}
		}()
	}
	if memprofile != "" {
		defer func() {
			f, err := os.Create(memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
				exitCode = 1
				return
			}
			runtime.GC() // settle the heap so the profile shows retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
				exitCode = 1
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
				exitCode = 1
			}
		}()
	}
	if benchjson != "" {
		//lint:allow walltime -- measurement layer: wall time never feeds the simulation
		start := time.Now()
		target := benchTarget(fig, extra, scenarioFile, scenarioDir, quick)
		//lint:allow walltime -- measurement closure; wall time never feeds the simulation
		defer func() {
			if exitCode != 0 {
				return // a failed run's timing is meaningless
			}
			//lint:allow walltime -- measurement layer: wall time never feeds the simulation
			elapsed := time.Since(start)
			if err := writeBenchJSON(benchjson, target, elapsed); err != nil {
				fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
				exitCode = 1
			}
		}()
	}
	defer func() {
		if r := recover(); r != nil {
			err, ok := r.(error)
			if !ok || !errors.Is(err, errExit) {
				panic(r)
			}
			exitCode = 1
		}
	}()

	o := experiments.Options{Seed: seed, Quick: quick, Parallel: parallel}
	if serveAddr != "" || manifest != "" {
		tele := harness.NewTelemetry()
		o.Telemetry = tele
		if serveAddr != "" {
			ms, err := obs.Serve(serveAddr, tele)
			if err != nil {
				fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
				return 1
			}
			fmt.Fprintf(os.Stderr, "paperbench: serving telemetry on http://%s/metrics\n", ms.Addr())
			defer func() {
				if err := ms.Close(); err != nil {
					fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
					exitCode = 1
				}
			}()
		}
		if manifest != "" {
			// Written even for failed runs: the manifest records which jobs
			// failed and after how many attempts.
			defer func() {
				if err := writeManifest(manifest, tele); err != nil {
					fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
					exitCode = 1
					return
				}
				fmt.Fprintf(os.Stderr, "paperbench: manifest written to %s\n", manifest)
			}()
		}
	}
	if traceLabel != "" {
		// Attach one bus to the FIRST job whose label contains the requested
		// substring: a bus is stateful, so sharing it across concurrently
		// running jobs would interleave their event streams.
		var captured bool
		bus := obs.NewBus()
		o.Observe = func(label string) obs.Observer {
			if captured || !strings.Contains(label, traceLabel) {
				return nil
			}
			captured = true
			fmt.Fprintf(os.Stderr, "paperbench: tracing run %q\n", label)
			return bus
		}
		defer func() {
			if exitCode != 0 {
				return
			}
			if !captured {
				fmt.Fprintf(os.Stderr, "paperbench: -trace %q matched no run label\n", traceLabel)
				exitCode = 1
				return
			}
			if err := writeTrace(traceOut, bus); err != nil {
				fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
				exitCode = 1
				return
			}
			fmt.Fprintf(os.Stderr, "paperbench: trace written to %s\n", traceOut)
		}()
	}
	w := os.Stdout

	// check aborts on an experiment error; the harness already retried each
	// failing run once, so whatever is left is a real configuration problem.
	// It unwinds via panic (recovered above) so profile writers still flush.
	check := func(err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			panic(errExit)
		}
	}

	if scenarioFile != "" || scenarioDir != "" {
		if scenarioFile != "" && scenarioDir != "" {
			fmt.Fprintln(os.Stderr, "paperbench: -scenario and -scenario-dir are mutually exclusive")
			return 1
		}
		var entries []scenario.Entry
		if scenarioDir != "" {
			var err error
			entries, err = scenario.LoadDir(scenarioDir)
			check(err)
		} else {
			s, err := scenario.Load(scenarioFile)
			check(err)
			entries = []scenario.Entry{{Path: scenarioFile, Scenario: s}}
		}
		failed := 0
		for _, e := range entries {
			res, err := scenario.Run(e.Scenario, o)
			check(err)
			res.Fprint(w)
			failed += res.Failed()
		}
		if failed > 0 {
			fmt.Fprintf(os.Stderr, "paperbench: %d scenario acceptance checks failed\n", failed)
			return 1
		}
		return 0
	}

	if extra != "" {
		var table *experiments.Table
		var err error
		switch extra {
		case "ablation":
			var r *experiments.AblationResult
			r, err = experiments.Ablation(o)
			if err == nil {
				table = r.Table
			}
		case "outage":
			var r *experiments.OutageResult
			r, err = experiments.Outage(o)
			if err == nil {
				table = r.Table
			}
		case "pulse":
			var r *experiments.PulseResult
			r, err = experiments.Pulse(o)
			if err == nil {
				table = r.Table
			}
		case "scale":
			var r *experiments.ScaleResult
			r, err = experiments.Scale(o)
			if err == nil {
				table = r.Table
			}
		case "capacity":
			var r *experiments.CapacityResult
			r, err = experiments.Capacity(o)
			if err == nil {
				table = r.Table
			}
		case "detection":
			var r *experiments.DetectionResult
			r, err = experiments.Detection(o)
			if err == nil {
				table = r.Table
			}
		case "robustness":
			var r *experiments.RobustnessResult
			r, err = experiments.Robustness(o)
			if err == nil {
				table = r.Table
			}
		case "resilience":
			var r *experiments.ResilienceResult
			r, err = experiments.Resilience(o)
			if err == nil {
				table = r.Table
			}
		case "resilience-net":
			var r *experiments.ResilienceNetResult
			r, err = experiments.ResilienceNet(o)
			if err == nil {
				table = r.Table
			}
		case "thermal":
			var r *experiments.ThermalResult
			r, err = experiments.Thermal(o)
			if err == nil {
				table = r.Table
			}
		default:
			fmt.Fprintf(os.Stderr, "paperbench: unknown extra experiment %q\n", extra)
			return 1
		}
		check(err)
		table.Fprint(w)
		return 0
	}

	if fig == 0 {
		check(experiments.All(o, w))
		return 0
	}
	switch fig {
	case 3:
		r, err := experiments.Fig3(o)
		check(err)
		r.Table.Fprint(w)
		fmt.Fprintf(w, "ranking: %v\n", r.Ranking)
	case 4:
		r, err := experiments.Fig4(o)
		check(err)
		r.TableA.Fprint(w)
		r.TableB.Fprint(w)
	case 5:
		r, err := experiments.Fig5(o)
		check(err)
		r.TableA.Fprint(w)
		r.TableB.Fprint(w)
	case 6:
		r, err := experiments.Fig6(o)
		check(err)
		r.TableA.Fprint(w)
		r.TableB.Fprint(w)
	case 7:
		r, err := experiments.Fig7(o)
		check(err)
		r.Table.Fprint(w)
	case 8:
		r, err := experiments.Fig8(o)
		check(err)
		r.Table.Fprint(w)
	case 9:
		r, err := experiments.Fig9(o)
		check(err)
		r.Table.Fprint(w)
	case 10:
		r, err := experiments.Fig10(o)
		check(err)
		r.Table.Fprint(w)
	case 11:
		r, err := experiments.Fig11(o)
		check(err)
		r.Table.Fprint(w)
	case 12:
		r, err := experiments.Fig12(o)
		check(err)
		r.Table.Fprint(w)
	case 15:
		r, err := experiments.Fig15(o)
		check(err)
		r.TableA.Fprint(w)
		r.TableB.Fprint(w)
	case 16, 17, 19:
		grid, err := experiments.RunEvalGrid(o)
		check(err)
		switch fig {
		case 16:
			grid.Fig16().Fprint(w)
		case 17:
			grid.Fig17().Fprint(w)
		case 19:
			grid.Fig19().Fprint(w)
		}
	case 18:
		r, err := experiments.Fig18(o)
		check(err)
		r.Table.Fprint(w)
	default:
		fmt.Fprintf(os.Stderr, "paperbench: no experiment for figure %d (figures 1/2/13/14 are diagrams)\n", fig)
		return 1
	}
	return 0
}

// writeManifest dumps the telemetry's run manifest JSON.
func writeManifest(path string, tele *harness.Telemetry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tele.WriteManifest(f); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return err
	}
	return f.Close()
}

// writeTrace renders the captured bus as Chrome trace-event JSON.
func writeTrace(path string, bus *obs.Bus) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := bus.WriteChromeTrace(f); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return err
	}
	return f.Close()
}

// benchTarget names the timing entry for a run, mirroring go test -bench
// naming so benchregress can compare paperbench timings with micro-benchmarks.
func benchTarget(fig int, extra, scenarioFile, scenarioDir string, quick bool) string {
	name := "PaperbenchAll"
	switch {
	case scenarioFile != "":
		base := strings.TrimSuffix(filepath.Base(scenarioFile), filepath.Ext(scenarioFile))
		name = "PaperbenchScenario/" + base
	case scenarioDir != "":
		name = "PaperbenchScenarioDir/" + filepath.Base(scenarioDir)
	case extra != "":
		name = "PaperbenchX/" + extra
	case fig != 0:
		name = fmt.Sprintf("PaperbenchFig%d", fig)
	}
	if quick {
		name += "/quick"
	}
	return name
}

// benchFile is the antidope-bench/v1 schema shared with cmd/benchregress.
type benchFile struct {
	Schema     string                `json:"schema"`
	Benchmarks map[string]benchEntry `json:"benchmarks"`
}

type benchEntry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// writeBenchJSON merges one timing entry into path, creating the file if
// needed and preserving entries for other targets.
func writeBenchJSON(path, target string, elapsed time.Duration) error {
	bf := benchFile{Schema: "antidope-bench/v1", Benchmarks: map[string]benchEntry{}}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &bf); err != nil {
			return fmt.Errorf("benchjson %s: %w", path, err)
		}
		if bf.Benchmarks == nil {
			bf.Benchmarks = map[string]benchEntry{}
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return err
	}
	bf.Benchmarks[target] = benchEntry{NsPerOp: float64(elapsed.Nanoseconds())}
	out, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
