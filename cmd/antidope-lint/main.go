// Command antidope-lint runs the determinism lint suite (internal/lint)
// together with the standard `go vet` passes over the given package
// patterns. It exits non-zero if either reports a finding.
//
// The suite has two tiers. The per-package analyzers check one package at
// a time (syntactic walltime/globalrand, mapiter, floateq, unitsuffix,
// obsguard, sortediter, errflow). The whole-program analyzers load every
// matched package into one call-graph facts layer and check global
// invariants: transitive walltime/globalrand reachability from the
// simulation roots (with the offending call chain printed) and the
// //hot:allocfree escape-analysis contract.
//
// Usage:
//
//	go run ./cmd/antidope-lint ./...
//	go run ./cmd/antidope-lint -vet=false ./internal/core
//	go run ./cmd/antidope-lint -json ./...               # machine output
//	go run ./cmd/antidope-lint -baseline lint.baseline.json ./...
//	go run ./cmd/antidope-lint -write-baseline lint.baseline.json ./...
//
// A finding is suppressed by a `//lint:allow <analyzer>` comment on the
// flagged line or the line above it; the whole-program analyzers instead
// require the comment on the declaration of the function containing the
// finding. See internal/lint.
//
// With -baseline, findings recorded in the snapshot are tolerated
// (ratcheting: new debt fails, old debt is pinned); -write-baseline
// records the current findings as that snapshot.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"

	"antidope/internal/lint"
)

func main() {
	vet := flag.Bool("vet", true, "also run the standard go vet passes")
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	program := flag.Bool("program", true, "run the whole-program analyzers (call-graph reachability, hotalloc)")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	baselinePath := flag.String("baseline", "", "tolerate findings recorded in this baseline `file`")
	writeBaseline := flag.String("write-baseline", "", "write current findings to this baseline `file` and exit 0")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		for _, a := range lint.AllProgram() {
			fmt.Printf("%-12s [program] %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	vetFailed := false
	if *vet && *writeBaseline == "" {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			vetFailed = true
		}
	}

	root, err := filepath.Abs(".")
	if err != nil {
		fatal(err)
	}
	pkgs, err := lint.Load(root, patterns)
	if err != nil {
		fatal(err)
	}

	var diags []lint.Diagnostic
	for _, pkg := range pkgs {
		ds, err := lint.RunPackage(pkg, lint.All())
		if err != nil {
			fatal(err)
		}
		diags = append(diags, ds...)
	}
	prog := &lint.Program{Pkgs: pkgs, Dir: root}
	if *program {
		ds, err := lint.RunProgram(prog, lint.AllProgram())
		if err != nil {
			fatal(err)
		}
		diags = append(diags, ds...)
	}

	findings := lint.ToJSON(prog.Fset(), root, diags)

	if *writeBaseline != "" {
		f, err := os.Create(*writeBaseline)
		if err != nil {
			fatal(err)
		}
		if err := lint.WriteBaseline(f, findings); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "antidope-lint: wrote %d finding(s) to %s\n", len(findings), *writeBaseline)
		return
	}

	if *baselinePath != "" {
		base, err := lint.LoadBaseline(*baselinePath)
		if err != nil {
			fatal(err)
		}
		findings = base.Filter(findings)
	}

	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, findings); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range findings {
			fmt.Println(d.String())
		}
	}
	if len(findings) > 0 || vetFailed {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "antidope-lint: %v\n", err)
	os.Exit(2)
}
