// Command antidope-lint runs the determinism lint suite (internal/lint)
// together with the standard `go vet` passes over the given package
// patterns. It exits non-zero if either reports a finding.
//
// Usage:
//
//	go run ./cmd/antidope-lint ./...
//	go run ./cmd/antidope-lint -vet=false ./internal/core
//
// A finding is suppressed by a `//lint:allow <analyzer>` comment on the
// flagged line or the line above it; see internal/lint.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"

	"antidope/internal/lint"
)

func main() {
	vet := flag.Bool("vet", true, "also run the standard go vet passes")
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	failed := false
	if *vet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			failed = true
		}
	}

	pkgs, err := lint.Load(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "antidope-lint: %v\n", err)
		os.Exit(2)
	}
	for _, pkg := range pkgs {
		diags, err := lint.RunPackage(pkg, lint.All())
		if err != nil {
			fmt.Fprintf(os.Stderr, "antidope-lint: %v\n", err)
			os.Exit(2)
		}
		for _, d := range diags {
			fmt.Printf("%s: %s (%s)\n", pkg.Fset.Position(d.Pos), d.Message, d.Analyzer)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
