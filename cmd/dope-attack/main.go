// Command dope-attack explores the adversary's side: it runs the adaptive
// Figure 12 attack algorithm against a firewalled, power-constrained rack
// and prints the epoch-by-epoch probe trace, the learned detection ceiling,
// and the power damage achieved.
//
// Example:
//
//	dope-attack -budget medium -horizon 600 -scheme none
//	dope-attack -scheme anti-dope   # watch the attack get contained
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"antidope/internal/attack"
	"antidope/internal/cluster"
	"antidope/internal/core"
	"antidope/internal/defense"
)

func main() {
	var (
		schemeName = flag.String("scheme", "none", "defense scheme: none|capping|shaving|token|anti-dope")
		budgetName = flag.String("budget", "medium", "power budget: normal|high|medium|low")
		horizon    = flag.Float64("horizon", 600, "simulated seconds")
		epoch      = flag.Float64("epoch", 10, "attacker probe epoch (s)")
		maxRPS     = flag.Float64("max-rps", 4000, "attacker botnet capacity")
		seed       = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.Horizon = *horizon
	cfg.Seed = *seed
	cfg.DopeEpochSec = *epoch
	switch strings.ToLower(*budgetName) {
	case "normal":
		cfg.Cluster.Budget = cluster.NormalPB
	case "high":
		cfg.Cluster.Budget = cluster.HighPB
	case "medium":
		cfg.Cluster.Budget = cluster.MediumPB
	case "low":
		cfg.Cluster.Budget = cluster.LowPB
	default:
		fatal(fmt.Errorf("unknown budget %q", *budgetName))
	}
	scheme, err := defense.ByName(*schemeName, core.Ladder(cfg))
	if err != nil {
		fatal(err)
	}
	cfg.Scheme = scheme

	d := attack.DefaultDopeConfig()
	d.MaxRPS = *maxRPS
	cfg.Dope = &d
	cfg.DopeStart = 20

	res, err := core.RunOnce(cfg)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("DOPE attack vs scheme=%s budget=%s (%.0f W / %.0f W nameplate)\n\n",
		res.SchemeName, *budgetName, res.BudgetW, res.NameplateW)
	fmt.Printf("%6s  %-12s %8s %7s %10s %7s %10s\n",
		"t(s)", "class", "rps", "agents", "rps/agent", "banned", "effective")
	for _, e := range res.DopeTrace {
		fmt.Printf("%6.0f  %-12s %8.0f %7d %10.1f %7d %10v\n",
			e.At, e.Class, e.RPS, e.Agents, e.RPS/float64(e.Agents), e.Banned, e.Effective)
	}

	fmt.Println()
	res.Fprint(os.Stdout)
	fmt.Printf("\nverdict: over-budget energy %.1f kJ; peak power %.1f W (budget %.1f W)\n",
		res.OverBudgetJ/1e3, res.PeakPowerW(), res.BudgetW)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dope-attack:", err)
	os.Exit(1)
}
