// Command tracegen synthesizes (or loads) the Alibaba-style utilization
// trace that drives the legitimate workload, prints its statistics and the
// oversubscription analysis that motivates the paper's power budgets, and
// optionally exports the trace as CSV for external tools.
//
// Examples:
//
//	tracegen                             # synthesize and summarize
//	tracegen -machines 1300 -hours 12 -csv trace.csv
//	tracegen -load container_usage.csv   # analyze the real Alibaba trace
package main

import (
	"flag"
	"fmt"
	"os"

	"antidope/internal/trace"
)

func main() {
	var (
		machines = flag.Int("machines", 1300, "machines to synthesize")
		hours    = flag.Float64("hours", 12, "trace duration in hours")
		meanUtil = flag.Float64("mean-util", 0.40, "target mean utilization")
		seed     = flag.Uint64("seed", 2019, "synthesis seed")
		loadPath = flag.String("load", "", "load a real container_usage.csv instead of synthesizing")
		csvPath  = flag.String("csv", "", "export the (synthesized or loaded) trace as CSV")
		idleFrac = flag.Float64("idle-frac", 0.45, "server idle power fraction for the power mapping")
	)
	flag.Parse()

	var tr *trace.Trace
	var err error
	if *loadPath != "" {
		f, ferr := os.Open(*loadPath)
		if ferr != nil {
			fatal(ferr)
		}
		tr, err = trace.LoadCSV(f, 60)
		_ = f.Close() // read-only handle; nothing was buffered
	} else {
		cfg := trace.DefaultSynth()
		cfg.Machines = *machines
		cfg.Hours = *hours
		cfg.MeanUtil = *meanUtil
		cfg.Seed = *seed
		tr, err = trace.Synthesize(cfg)
	}
	if err != nil {
		fatal(err)
	}

	fmt.Printf("trace: %d machines, %.1f h at %.0f s resolution (%d samples)\n",
		tr.Machines, tr.Duration()/3600, tr.IntervalSec, len(tr.Samples))
	fmt.Printf("utilization: mean %.3f, peak-to-mean %.2f\n", tr.MeanUtil(), tr.PeakToMean())

	rep := tr.Oversubscription(*idleFrac)
	fmt.Println("\noversubscription analysis (power as fraction of nameplate):")
	fmt.Printf("  mean power   %.3f\n", rep.MeanPowerFrac)
	fmt.Printf("  p99 power    %.3f\n", rep.P99PowerFrac)
	fmt.Printf("  peak power   %.3f\n", rep.PeakPowerFrac)
	fmt.Printf("  safe budget  %.3f   <- the benign-provisioning point\n", rep.SafeBudgetFrac)
	fmt.Println("\nthe gap between the safe budget and 1.0 is what oversubscription")
	fmt.Println("monetizes — and exactly the region a DOPE attacker drives the load into.")

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(f, "t_sec,util")
		for i, v := range tr.Samples {
			fmt.Fprintf(f, "%.0f,%.5f\n", float64(i)*tr.IntervalSec, v)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("\ntrace exported to %s\n", *csvPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
