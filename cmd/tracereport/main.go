// Command tracereport derives the paper-level temporal signals from a
// captured event-stream CSV (antidope-sim -events, the CI obs job's
// capture): ground-truth attack windows, detection start-lag from attack
// open to the first firewall/defense actuation, peak-overshoot area and
// longest excursion over the breaker limit, the DVFS issued-versus-landed
// latency distribution, and per-link retry-storm windows. The report is
// deterministic text — the same capture renders byte-identically — so it
// is golden-pinned like every other figure. It can additionally rebuild
// the sim-time timeline offline, byte-identical to a live
// Bus.EnableTimeline export of the same run.
//
// Usage:
//
//	tracereport [-breaker W] [-window s] [-storm n] [-o report.txt]
//	            [-timeline out.timeline.json] [-timeline-csv out.timeline.csv] events.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"antidope/internal/obs"
	"antidope/internal/obs/analyze"
)

func main() {
	var (
		breakerW    = flag.Float64("breaker", 0, "breaker limit in watts for the overshoot analysis (0 disables)")
		windowSec   = flag.Float64("window", 0, "retry-storm / timeline window width in seconds (default 1)")
		stormN      = flag.Uint64("storm", 0, "per-link per-window retry count that makes a storm (default 5)")
		slaSec      = flag.Float64("sla", 0, "SLA bound in seconds for the rebuilt timeline (default 0.25)")
		outPath     = flag.String("o", "", "write the report here instead of stdout")
		timelineJ   = flag.String("timeline", "", "also rebuild the sim-time timeline and write it as JSON here")
		timelineCSV = flag.String("timeline-csv", "", "also rebuild the sim-time timeline and write it as CSV here")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracereport [flags] events.csv")
		flag.PrintDefaults()
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	events, err := obs.ParseCSVEvents(f)
	if err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}

	rep := analyze.Run(events, analyze.Config{
		BreakerLimitW: *breakerW,
		WindowSec:     *windowSec,
		StormRetries:  *stormN,
	})

	out := io.Writer(os.Stdout)
	if *outPath != "" {
		of, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer closeOrDie(of)
		out = of
	}
	if err := rep.WriteText(out); err != nil {
		fatal(err)
	}

	if *timelineJ != "" || *timelineCSV != "" {
		tl := obs.NewTimeline(*windowSec, *slaSec)
		for _, ev := range events {
			tl.Add(ev)
		}
		writeTo(*timelineJ, tl.WriteJSON)
		writeTo(*timelineCSV, tl.WriteCSV)
	}
}

func writeTo(path string, render func(io.Writer) error) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := render(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "tracereport: wrote %s\n", path)
}

func closeOrDie(f *os.File) {
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracereport:", err)
	os.Exit(1)
}
