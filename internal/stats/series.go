package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Point is one timestamped observation in a Series.
type Point struct {
	T float64 // simulated seconds
	V float64
}

// Series is an append-only timestamped sequence, used for power, battery
// state-of-charge and frequency trajectories (figures 3, 15-a, 18).
type Series struct {
	Points []Point
}

// Add appends one observation. Timestamps are expected to be non-decreasing;
// out-of-order points are inserted in order so downstream math stays valid.
func (s *Series) Add(t, v float64) {
	if n := len(s.Points); n > 0 && s.Points[n-1].T > t {
		idx := sort.Search(n, func(i int) bool { return s.Points[i].T > t })
		s.Points = append(s.Points, Point{})
		copy(s.Points[idx+1:], s.Points[idx:])
		s.Points[idx] = Point{T: t, V: v}
		return
	}
	s.Points = append(s.Points, Point{T: t, V: v})
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Points) }

// Clone returns a deep copy sharing no storage with the original, so the
// two can keep accumulating independently (snapshot forking needs this).
func (s Series) Clone() Series {
	if s.Points == nil {
		return Series{}
	}
	out := Series{Points: make([]Point, len(s.Points))}
	copy(out.Points, s.Points)
	return out
}

// Values returns just the observation values, in time order.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.V
	}
	return out
}

// Summary folds all values into a streaming summary.
func (s *Series) Summary() Summary {
	var sum Summary
	for _, p := range s.Points {
		sum.Add(p.V)
	}
	return sum
}

// Sample copies all values into a percentile sampler.
func (s *Series) Sample() *Sample {
	sm := &Sample{}
	for _, p := range s.Points {
		sm.Add(p.V)
	}
	return sm
}

// Max returns the largest value and its timestamp, or zeros when empty.
func (s *Series) Max() (t, v float64) {
	if len(s.Points) == 0 {
		return 0, 0
	}
	best := s.Points[0]
	for _, p := range s.Points[1:] {
		if p.V > best.V {
			best = p
		}
	}
	return best.T, best.V
}

// Integrate returns the time integral of the series (trapezoidal), e.g.
// watts → joules. Series with fewer than two points integrate to zero.
func (s *Series) Integrate() float64 {
	total := 0.0
	for i := 1; i < len(s.Points); i++ {
		dt := s.Points[i].T - s.Points[i-1].T
		total += dt * (s.Points[i].V + s.Points[i-1].V) / 2
	}
	return total
}

// MeanOverTime returns the time-weighted mean value.
func (s *Series) MeanOverTime() float64 {
	if len(s.Points) < 2 {
		if len(s.Points) == 1 {
			return s.Points[0].V
		}
		return 0
	}
	span := s.Points[len(s.Points)-1].T - s.Points[0].T
	if span <= 0 {
		return s.Points[0].V
	}
	return s.Integrate() / span
}

// FractionAbove returns the fraction of time the series spends strictly
// above the threshold, used for budget-violation accounting.
func (s *Series) FractionAbove(threshold float64) float64 {
	if len(s.Points) < 2 {
		return 0
	}
	above, total := 0.0, 0.0
	for i := 1; i < len(s.Points); i++ {
		dt := s.Points[i].T - s.Points[i-1].T
		total += dt
		// Attribute the interval to the left endpoint (sample-and-hold),
		// matching how the control loop samples power.
		if s.Points[i-1].V > threshold {
			above += dt
		}
	}
	if total <= 0 {
		return 0
	}
	return above / total
}

// Downsample returns a series resampled onto n evenly spaced timestamps by
// sample-and-hold, for compact printing of long trajectories.
func (s *Series) Downsample(n int) Series {
	if n <= 0 || len(s.Points) == 0 {
		return Series{}
	}
	if len(s.Points) <= n {
		out := Series{Points: make([]Point, len(s.Points))}
		copy(out.Points, s.Points)
		return out
	}
	first, last := s.Points[0].T, s.Points[len(s.Points)-1].T
	out := Series{Points: make([]Point, 0, n)}
	j := 0
	for i := 0; i < n; i++ {
		t := first
		if n > 1 {
			t = first + (last-first)*float64(i)/float64(n-1)
		}
		for j+1 < len(s.Points) && s.Points[j+1].T <= t {
			j++
		}
		out.Points = append(out.Points, Point{T: t, V: s.Points[j].V})
	}
	return out
}

// Histogram buckets samples into fixed-width bins over [lo, hi); samples
// outside the range clamp into the first/last bin.
type Histogram struct {
	Lo, Hi float64
	Counts []uint64
	total  uint64
}

// NewHistogram builds a histogram with the given bin count. It panics on a
// degenerate range or non-positive bin count: both are construction bugs.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic(fmt.Sprintf("stats: bad histogram [%g,%g)x%d", lo, hi, bins))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]uint64, bins)}
}

// Add incorporates one sample.
func (h *Histogram) Add(x float64) {
	idx := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Counts) {
		idx = len(h.Counts) - 1
	}
	h.Counts[idx]++
	h.total++
}

// Total returns the number of samples added.
func (h *Histogram) Total() uint64 { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// Mode returns the center of the most populated bin.
func (h *Histogram) Mode() float64 {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	return h.BinCenter(best)
}

// FprintASCII renders a quick bar chart, handy in CLI output.
func (h *Histogram) FprintASCII(w io.Writer, width int) {
	var maxCount uint64
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	for i, c := range h.Counts {
		bar := 0
		if maxCount > 0 {
			bar = int(math.Round(float64(c) / float64(maxCount) * float64(width)))
		}
		fmt.Fprintf(w, "%10.3f | %s %d\n", h.BinCenter(i), strings.Repeat("#", bar), c)
	}
}

// Sparkline renders the series as a compact unicode bar string of the given
// width — the terminal-friendly shape of a power or SoC trajectory. The
// vertical scale spans the series' own min..max; a flat series renders as
// mid-height bars.
func (s *Series) Sparkline(width int) string {
	if width <= 0 || len(s.Points) == 0 {
		return ""
	}
	glyphs := []rune("▁▂▃▄▅▆▇█")
	down := s.Downsample(width)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, p := range down.Points {
		if p.V < lo {
			lo = p.V
		}
		if p.V > hi {
			hi = p.V
		}
	}
	out := make([]rune, 0, len(down.Points))
	for _, p := range down.Points {
		idx := len(glyphs) / 2
		if hi > lo {
			idx = int((p.V - lo) / (hi - lo) * float64(len(glyphs)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(glyphs) {
			idx = len(glyphs) - 1
		}
		out = append(out, glyphs[idx])
	}
	return string(out)
}
