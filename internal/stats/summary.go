// Package stats provides the measurement toolkit used by every experiment:
// streaming moment summaries, exact percentile samplers, empirical CDFs,
// histograms, and timestamped series. Everything is plain float64 math with
// no concurrency; a simulation run is single-goroutine by construction.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates count, mean, variance (Welford), min and max in a
// single pass without storing samples.
type Summary struct {
	n        uint64
	mean, m2 float64
	min, max float64
}

// Add incorporates one sample.
//
//hot:allocfree
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// AddN incorporates the same sample n times.
func (s *Summary) AddN(x float64, n uint64) {
	for i := uint64(0); i < n; i++ {
		s.Add(x)
	}
}

// Merge folds other into s, as if every sample of other had been Added.
func (s *Summary) Merge(other Summary) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = other
		return
	}
	n1, n2 := float64(s.n), float64(other.n)
	delta := other.mean - s.mean
	total := n1 + n2
	s.mean += delta * n2 / total
	s.m2 += other.m2 + delta*delta*n1*n2/total
	s.n += other.n
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
}

// Count returns the number of samples seen.
func (s Summary) Count() uint64 { return s.n }

// Mean returns the sample mean, or 0 with no samples.
func (s Summary) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance, or 0 with fewer than 2 samples.
func (s Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s Summary) Std() float64 { return math.Sqrt(s.Var()) }

// CV returns the coefficient of variation (std/mean), or 0 for mean 0.
func (s Summary) CV() float64 {
	if s.mean == 0 { //lint:allow floateq -- exact guard against dividing by zero
		return 0
	}
	return s.Std() / math.Abs(s.mean)
}

// Min returns the smallest sample, or 0 with no samples.
func (s Summary) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest sample, or 0 with no samples.
func (s Summary) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g max=%.4g",
		s.n, s.Mean(), s.Std(), s.Min(), s.Max())
}

// Sample stores every observation for exact percentile queries. The
// simulator's runs are short enough (≤ a few million samples) that exact
// storage is cheaper than the complexity of a sketch.
//
// Sortedness is maintained incrementally: Add only appends, and a quantile
// query sorts just the suffix appended since the last query, merging it
// into the already-sorted prefix in one linear pass — so interleaved
// Add/Percentile workloads stop paying a full re-sort per query.
type Sample struct {
	xs []float64
	// sortedN is the length of the sorted prefix of xs; everything past it
	// was Added since the last quantile query.
	sortedN int
	// scratch backs the merge pass, retained across queries.
	scratch []float64
}

// Add appends one observation.
//
//hot:allocfree
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
}

// Len returns the number of observations.
func (s *Sample) Len() int { return len(s.xs) }

// Clone returns a deep copy sharing no storage with the original. The
// sorted-prefix bookkeeping carries over (it describes the copied values);
// the merge scratch does not — it is rebuilt on demand.
func (s *Sample) Clone() *Sample {
	out := &Sample{sortedN: s.sortedN}
	if s.xs != nil {
		out.xs = make([]float64, len(s.xs))
		copy(out.xs, s.xs)
	}
	return out
}

// Values returns the sorted observations as a fresh slice the caller owns:
// mutating it cannot corrupt the sample, and later Adds cannot invalidate
// the returned snapshot.
func (s *Sample) Values() []float64 {
	s.sort()
	out := make([]float64, len(s.xs))
	copy(out, s.xs)
	return out
}

// sort brings the whole sample into sorted order. Only the unsorted suffix
// pays an O(k log k) sort; folding it into the sorted prefix is linear.
//
//hot:allocfree
func (s *Sample) sort() {
	n := len(s.xs)
	if s.sortedN == n {
		return
	}
	tail := s.xs[s.sortedN:]
	sort.Float64s(tail)
	if s.sortedN > 0 && s.xs[s.sortedN-1] > tail[0] {
		// The runs overlap: merge prefix (copied to scratch) and tail back
		// into xs. The write index i+j never catches the unread tail at
		// sortedN+j, so the merge is safe in place.
		if cap(s.scratch) < s.sortedN {
			// Grow geometrically: interleaved Add/query workloads extend the
			// prefix by a few elements per merge, and exact-size allocation
			// would re-allocate the scratch on every query.
			s.scratch = make([]float64, 0, 2*s.sortedN) //lint:allow hotalloc -- scratch growth is amortized; steady state reuses the buffer
		}
		head := s.scratch[:s.sortedN]
		copy(head, s.xs[:s.sortedN])
		i, j, w := 0, 0, 0
		for i < len(head) && j < len(tail) {
			if tail[j] < head[i] {
				s.xs[w] = tail[j]
				j++
			} else {
				s.xs[w] = head[i]
				i++
			}
			w++
		}
		for i < len(head) {
			s.xs[w] = head[i]
			i++
			w++
		}
		// Any remaining tail elements are already in their final slots.
	}
	s.sortedN = n
}

// Percentile returns the p-th percentile (p in [0,100]) using linear
// interpolation between closest ranks. With no samples it returns 0.
//
//hot:allocfree
func (s *Sample) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 100 {
		return s.xs[len(s.xs)-1]
	}
	rank := p / 100 * float64(len(s.xs)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.xs[lo]
	}
	frac := rank - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Percentiles returns the percentile for each p in ps. The batch form the
// report tables use: one sort/merge pass serves every quantile.
func (s *Sample) Percentiles(ps ...float64) []float64 {
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = s.Percentile(p)
	}
	return out
}

// Mean returns the sample mean, or 0 with no samples.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Min returns the smallest observation, or 0 with no samples.
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	return s.xs[0]
}

// Max returns the largest observation, or 0 with no samples.
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	return s.xs[len(s.xs)-1]
}

// CDF converts the sample into an empirical CDF evaluated at up to points
// evenly spaced quantiles, suitable for plotting figures 4-b, 5-a and 10.
func (s *Sample) CDF(points int) CDF {
	s.sort()
	if len(s.xs) == 0 || points <= 0 {
		return CDF{}
	}
	if points > len(s.xs) {
		points = len(s.xs)
	}
	out := CDF{Xs: make([]float64, points), Ps: make([]float64, points)}
	for i := 0; i < points; i++ {
		frac := float64(i+1) / float64(points)
		idx := int(frac*float64(len(s.xs))) - 1
		if idx < 0 {
			idx = 0
		}
		out.Xs[i] = s.xs[idx]
		out.Ps[i] = frac
	}
	return out
}

// CDF is an empirical cumulative distribution: P(X <= Xs[i]) = Ps[i].
type CDF struct {
	Xs []float64
	Ps []float64
}

// At returns the cumulative probability at x by step interpolation.
func (c CDF) At(x float64) float64 {
	if len(c.Xs) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(c.Xs, x)
	if idx >= len(c.Ps) {
		return 1
	}
	if idx == 0 && c.Xs[0] > x {
		return 0
	}
	return c.Ps[idx]
}

// Quantile returns the smallest x with cumulative probability >= p.
func (c CDF) Quantile(p float64) float64 {
	for i, cp := range c.Ps {
		if cp >= p {
			return c.Xs[i]
		}
	}
	if len(c.Xs) == 0 {
		return 0
	}
	return c.Xs[len(c.Xs)-1]
}

// Bootstrap resamples the observations with replacement iters times,
// applies stat to each resample, and returns the lo/hi quantiles of the
// resulting distribution — a non-parametric confidence interval. rand must
// return uniform integers in [0, n); callers pass a seeded rng.Stream's
// Intn for reproducibility.
func (s *Sample) Bootstrap(stat func([]float64) float64, conf float64,
	iters int, randIntn func(int) int) (lo, hi float64) {
	n := len(s.xs)
	if n == 0 || iters <= 0 {
		return 0, 0
	}
	if conf <= 0 || conf >= 1 {
		conf = 0.95
	}
	resample := make([]float64, n)
	var dist Sample
	for it := 0; it < iters; it++ {
		for i := range resample {
			resample[i] = s.xs[randIntn(n)]
		}
		dist.Add(stat(resample))
	}
	alpha := (1 - conf) / 2 * 100
	return dist.Percentile(alpha), dist.Percentile(100 - alpha)
}

// Mean95CI is the common case: a 95% bootstrap interval on the mean.
func (s *Sample) Mean95CI(iters int, randIntn func(int) int) (lo, hi float64) {
	return s.Bootstrap(func(xs []float64) float64 {
		sum := 0.0
		for _, x := range xs {
			sum += x
		}
		return sum / float64(len(xs))
	}, 0.95, iters, randIntn)
}
