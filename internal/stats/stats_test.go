package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.Count() != 8 {
		t.Fatalf("count %d", s.Count())
	}
	if !almost(s.Mean(), 5, 1e-12) {
		t.Fatalf("mean %g", s.Mean())
	}
	// Population variance is 4; unbiased sample variance is 32/7.
	if !almost(s.Var(), 32.0/7.0, 1e-12) {
		t.Fatalf("var %g", s.Var())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max %g/%g", s.Min(), s.Max())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Var() != 0 || s.Min() != 0 || s.Max() != 0 || s.CV() != 0 {
		t.Fatal("empty summary not all-zero")
	}
}

func TestSummaryMergeMatchesSequential(t *testing.T) {
	xs := []float64{1, 2, 3, 10, 20, 30, -5, 0.5}
	var whole, a, b Summary
	for i, x := range xs {
		whole.Add(x)
		if i < 3 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.Count() != whole.Count() ||
		!almost(a.Mean(), whole.Mean(), 1e-9) ||
		!almost(a.Var(), whole.Var(), 1e-9) ||
		a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatalf("merge mismatch: %v vs %v", a.String(), whole.String())
	}
}

func TestSummaryMergeEmpty(t *testing.T) {
	var a, b Summary
	a.Add(1)
	a.Merge(b) // empty other: no-op
	if a.Count() != 1 {
		t.Fatal("merge with empty changed count")
	}
	b.Merge(a) // empty receiver adopts other
	if b.Count() != 1 || b.Mean() != 1 {
		t.Fatal("empty receiver did not adopt other")
	}
}

func TestSummaryAddN(t *testing.T) {
	var a, b Summary
	a.AddN(3, 5)
	for i := 0; i < 5; i++ {
		b.Add(3)
	}
	if a.Count() != b.Count() || a.Mean() != b.Mean() {
		t.Fatal("AddN mismatch")
	}
}

func TestPercentile(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 100}, {50, 50.5}, {90, 90.1}, {99, 99.01},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); !almost(got, c.want, 1e-9) {
			t.Fatalf("p%g = %g, want %g", c.p, got, c.want)
		}
	}
}

func TestPercentileSingle(t *testing.T) {
	var s Sample
	s.Add(7)
	for _, p := range []float64{0, 50, 99, 100} {
		if got := s.Percentile(p); got != 7 {
			t.Fatalf("p%g of singleton = %g", p, got)
		}
	}
}

func TestPercentileEmpty(t *testing.T) {
	var s Sample
	if s.Percentile(50) != 0 {
		t.Fatal("empty percentile not 0")
	}
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty sample stats not 0")
	}
}

func TestSampleAfterQueryStillMutable(t *testing.T) {
	var s Sample
	s.Add(5)
	_ = s.Percentile(50)
	s.Add(1)
	if got := s.Min(); got != 1 {
		t.Fatalf("min after post-query add = %g", got)
	}
}

func TestCDFMonotone(t *testing.T) {
	var s Sample
	for i := 0; i < 500; i++ {
		s.Add(float64(i % 37))
	}
	cdf := s.CDF(50)
	for i := 1; i < len(cdf.Xs); i++ {
		if cdf.Xs[i] < cdf.Xs[i-1] {
			t.Fatal("CDF x not monotone")
		}
		if cdf.Ps[i] < cdf.Ps[i-1] {
			t.Fatal("CDF p not monotone")
		}
	}
	if p := cdf.Ps[len(cdf.Ps)-1]; p != 1 {
		t.Fatalf("CDF does not end at 1: %g", p)
	}
}

func TestCDFAtAndQuantile(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cdf := s.CDF(100)
	if got := cdf.At(50); !almost(got, 0.5, 0.02) {
		t.Fatalf("At(50) = %g", got)
	}
	if got := cdf.Quantile(0.9); !almost(got, 90, 2) {
		t.Fatalf("Quantile(0.9) = %g", got)
	}
	if got := cdf.At(1000); got != 1 {
		t.Fatalf("At beyond max = %g", got)
	}
	if got := cdf.At(-5); got != 0 {
		t.Fatalf("At below min = %g", got)
	}
}

func TestCDFEmpty(t *testing.T) {
	var c CDF
	if c.At(1) != 0 || c.Quantile(0.5) != 0 {
		t.Fatal("empty CDF not zero")
	}
}

func TestSeriesIntegrate(t *testing.T) {
	var s Series
	s.Add(0, 100)
	s.Add(10, 100)
	if got := s.Integrate(); !almost(got, 1000, 1e-9) {
		t.Fatalf("integral %g, want 1000", got)
	}
	s.Add(20, 200)
	if got := s.Integrate(); !almost(got, 1000+1500, 1e-9) {
		t.Fatalf("integral %g, want 2500", got)
	}
}

func TestSeriesMeanOverTime(t *testing.T) {
	var s Series
	s.Add(0, 0)
	s.Add(10, 10)
	if got := s.MeanOverTime(); !almost(got, 5, 1e-9) {
		t.Fatalf("mean over time %g", got)
	}
	var single Series
	single.Add(3, 42)
	if single.MeanOverTime() != 42 {
		t.Fatal("single-point mean")
	}
}

func TestSeriesFractionAbove(t *testing.T) {
	var s Series
	s.Add(0, 50)  // below for [0,10)
	s.Add(10, 90) // above for [10,20)
	s.Add(20, 90)
	if got := s.FractionAbove(80); !almost(got, 0.5, 1e-9) {
		t.Fatalf("fraction above %g, want 0.5", got)
	}
	if got := s.FractionAbove(100); got != 0 {
		t.Fatalf("fraction above max %g", got)
	}
}

func TestSeriesOutOfOrderInsert(t *testing.T) {
	var s Series
	s.Add(0, 1)
	s.Add(10, 2)
	s.Add(5, 9)
	ts := []float64{s.Points[0].T, s.Points[1].T, s.Points[2].T}
	if !sort.Float64sAreSorted(ts) {
		t.Fatalf("series timestamps unsorted: %v", ts)
	}
}

func TestSeriesMax(t *testing.T) {
	var s Series
	s.Add(0, 5)
	s.Add(1, 9)
	s.Add(2, 3)
	tm, v := s.Max()
	if tm != 1 || v != 9 {
		t.Fatalf("max (%g,%g)", tm, v)
	}
}

func TestSeriesDownsample(t *testing.T) {
	var s Series
	for i := 0; i < 1000; i++ {
		s.Add(float64(i), float64(i))
	}
	d := s.Downsample(10)
	if d.Len() != 10 {
		t.Fatalf("downsample len %d", d.Len())
	}
	if d.Points[0].T != 0 || d.Points[9].T != 999 {
		t.Fatalf("downsample endpoints %v %v", d.Points[0], d.Points[9])
	}
	// Short series pass through unchanged.
	var short Series
	short.Add(1, 1)
	ds := short.Downsample(10)
	if ds.Len() != 1 {
		t.Fatal("short series should pass through")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i%10) + 0.5)
	}
	for i, c := range h.Counts {
		if c != 10 {
			t.Fatalf("bin %d count %d", i, c)
		}
	}
	if h.Total() != 100 {
		t.Fatalf("total %d", h.Total())
	}
	// Clamping.
	h.Add(-5)
	h.Add(50)
	if h.Counts[0] != 11 || h.Counts[9] != 11 {
		t.Fatal("out-of-range samples not clamped to edge bins")
	}
}

func TestHistogramMode(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.Add(3.5)
	h.Add(3.6)
	h.Add(7.1)
	if got := h.Mode(); !almost(got, 3.5, 1e-9) {
		t.Fatalf("mode %g", got)
	}
}

func TestHistogramASCII(t *testing.T) {
	h := NewHistogram(0, 2, 2)
	h.Add(0.5)
	h.Add(1.5)
	h.Add(1.5)
	var b strings.Builder
	h.FprintASCII(&b, 10)
	out := b.String()
	if !strings.Contains(out, "#") {
		t.Fatalf("ascii histogram has no bars:\n%s", out)
	}
}

func TestHistogramBadRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad histogram range did not panic")
		}
	}()
	NewHistogram(5, 5, 10)
}

// Property: percentile is monotone in p and bounded by min/max.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		var s Sample
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			s.Add(x)
		}
		if s.Len() == 0 {
			return true
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := s.Percentile(p)
			if v < prev || v < s.Min() || v > s.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Summary.Merge is equivalent to sequential Add for mean.
func TestQuickMergeEquivalence(t *testing.T) {
	f := func(a, b []float64) bool {
		clean := func(xs []float64) []float64 {
			out := xs[:0]
			for _, x := range xs {
				if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
					out = append(out, x)
				}
			}
			return out
		}
		a, b = clean(a), clean(b)
		var sa, sb, whole Summary
		for _, x := range a {
			sa.Add(x)
			whole.Add(x)
		}
		for _, x := range b {
			sb.Add(x)
			whole.Add(x)
		}
		sa.Merge(sb)
		if sa.Count() != whole.Count() {
			return false
		}
		if whole.Count() == 0 {
			return true
		}
		return almost(sa.Mean(), whole.Mean(), 1e-6*(1+math.Abs(whole.Mean())))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSummaryAdd(b *testing.B) {
	var s Summary
	for i := 0; i < b.N; i++ {
		s.Add(float64(i & 1023))
	}
}

func BenchmarkPercentile(b *testing.B) {
	var s Sample
	for i := 0; i < 100000; i++ {
		s.Add(float64(i * 2654435761 % 1000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(float64(i))
		_ = s.Percentile(90)
	}
}

func TestBootstrapCoversTrueMean(t *testing.T) {
	// Uniform [0,1): true mean 0.5; the 95% CI of a 2000-point sample
	// should comfortably contain it and be tight.
	var s Sample
	seed := uint64(99)
	next := func() float64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return float64(seed>>11) / (1 << 53)
	}
	for i := 0; i < 2000; i++ {
		s.Add(next())
	}
	idx := 0
	randIntn := func(n int) int {
		idx = (idx*1103515245 + 12345) & 0x7fffffff
		return idx % n
	}
	lo, hi := s.Mean95CI(300, randIntn)
	if lo > 0.5 || hi < 0.5 {
		t.Fatalf("95%% CI [%g,%g] misses the true mean", lo, hi)
	}
	if hi-lo > 0.1 {
		t.Fatalf("CI [%g,%g] too wide for n=2000", lo, hi)
	}
	if lo >= hi {
		t.Fatalf("degenerate CI [%g,%g]", lo, hi)
	}
}

func TestBootstrapEmptyAndDegenerate(t *testing.T) {
	var s Sample
	lo, hi := s.Mean95CI(100, func(n int) int { return 0 })
	if lo != 0 || hi != 0 {
		t.Fatal("empty sample CI not zero")
	}
	s.Add(7)
	lo, hi = s.Mean95CI(50, func(n int) int { return 0 })
	if lo != 7 || hi != 7 {
		t.Fatalf("singleton CI [%g,%g], want [7,7]", lo, hi)
	}
}

func TestBootstrapCustomStat(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	idx := 0
	randIntn := func(n int) int {
		idx = (idx*48271 + 7) & 0x7fffffff
		return idx % n
	}
	lo, hi := s.Bootstrap(func(xs []float64) float64 {
		max := xs[0]
		for _, x := range xs {
			if x > max {
				max = x
			}
		}
		return max
	}, 0.9, 200, randIntn)
	if lo < 50 || hi > 100 {
		t.Fatalf("max-stat CI [%g,%g] implausible", lo, hi)
	}
}

func TestSparkline(t *testing.T) {
	var s Series
	for i := 0; i < 100; i++ {
		s.Add(float64(i), float64(i))
	}
	sp := s.Sparkline(10)
	if got := len([]rune(sp)); got != 10 {
		t.Fatalf("sparkline width %d, want 10", got)
	}
	runes := []rune(sp)
	if runes[0] != '▁' || runes[9] != '█' {
		t.Fatalf("ramp sparkline %q should go low to high", sp)
	}
	// Monotone input → non-decreasing glyphs.
	for i := 1; i < len(runes); i++ {
		if runes[i] < runes[i-1] {
			t.Fatalf("ramp sparkline not monotone: %q", sp)
		}
	}
}

func TestSparklineFlatAndEmpty(t *testing.T) {
	var s Series
	if s.Sparkline(5) != "" {
		t.Fatal("empty series sparkline not empty")
	}
	s.Add(0, 7)
	s.Add(1, 7)
	sp := s.Sparkline(4)
	runes := []rune(sp)
	if len(runes) == 0 {
		t.Fatal("flat sparkline empty")
	}
	for _, r := range runes {
		if r != runes[0] {
			t.Fatalf("flat series uneven sparkline %q", sp)
		}
	}
	if s.Sparkline(0) != "" {
		t.Fatal("zero width")
	}
}

func TestValuesDefensiveCopy(t *testing.T) {
	var s Sample
	for _, x := range []float64{3, 1, 2} {
		s.Add(x)
	}
	got := s.Values()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("Values = %v, want [1 2 3]", got)
	}
	// Mutating the returned slice must not corrupt the sample...
	got[0] = 99
	if s.Min() != 1 || s.Percentile(0) != 1 {
		t.Fatal("mutating Values() leaked into the sample")
	}
	// ...and later Adds must not invalidate an earlier snapshot.
	snap := s.Values()
	s.Add(-7)
	if snap[0] != 1 {
		t.Fatalf("snapshot changed after Add: %v", snap)
	}
	if s.Min() != -7 {
		t.Fatalf("Min after Add = %g, want -7", s.Min())
	}
}

func TestIncrementalSortMatchesFullSort(t *testing.T) {
	// Interleaving Adds and quantile queries must yield exactly the order a
	// single full sort would: the suffix-sort+merge is an implementation
	// detail, not an approximation.
	f := func(raw []float64, cuts []uint8) bool {
		var s Sample
		ref := make([]float64, 0, len(raw))
		ci := 0
		for i, x := range raw {
			if math.IsNaN(x) {
				continue
			}
			s.Add(x)
			ref = append(ref, x)
			// Interleave queries at fuzz-chosen points to exercise merges.
			if ci < len(cuts) && int(cuts[ci])%(len(raw)+1) == i {
				_ = s.Percentile(50)
				ci++
			}
		}
		sort.Float64s(ref)
		got := s.Values()
		if len(got) != len(ref) {
			return false
		}
		for i := range ref {
			if got[i] != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentilesBatch(t *testing.T) {
	var s Sample
	for i := 100; i >= 1; i-- {
		s.Add(float64(i))
	}
	got := s.Percentiles(10, 50, 90, 99)
	want := []float64{s.Percentile(10), s.Percentile(50), s.Percentile(90), s.Percentile(99)}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Percentiles[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

// BenchmarkPercentileInterleaved is the adversarial pattern for the
// incremental sort: every query follows a fresh Add, so each query pays a
// one-element merge instead of a full re-sort.
func BenchmarkPercentileInterleaved(b *testing.B) {
	var s Sample
	for i := 0; i < 100000; i++ {
		s.Add(float64(i * 2654435761 % 1000))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(float64(i % 1000))
		_ = s.Percentile(90)
	}
}
