// Package firewall models the perimeter network defense of Section 3.4: a
// DDoS-deflate-style detector that counts per-source request rates over a
// sliding window and bans sources exceeding a threshold (default 150
// requests/second). Detection is not instant — each traffic type has a
// start lag before the rule engine reacts, which is exactly the gap the
// paper shows leaking power spikes through (Figure 10).
package firewall

import (
	"fmt"

	"antidope/internal/obs"
	"antidope/internal/workload"
)

// Config parameterizes the detector.
type Config struct {
	// ThresholdRPS is the per-source rate above which a source is flagged
	// (the deflate default rule: 150 req/s).
	ThresholdRPS float64
	// WindowSec is the sliding window the rate is measured over.
	WindowSec float64
	// BaseLagSec is how long a source must stay above threshold before the
	// ban lands for a unit-NetCost class. High-volume traffic (large
	// NetCost) is spotted faster: lag = BaseLagSec / NetCost.
	BaseLagSec float64
	// BanSec is how long a banned source stays blocked.
	BanSec float64
	// Disabled turns the firewall into a pass-through, for the
	// "without firewalls" halves of Figure 10.
	Disabled bool
	// Limit switches from ban semantics (deflate-style: exceed the rule,
	// lose access for BanSec) to classic rate limiting: only the excess
	// requests above the threshold are dropped, immediately and without
	// memory. Rate limiting is gentler on bursty legitimate clients and
	// exactly as blind to DOPE (Section 5.4).
	Limit bool
}

// DefaultConfig mirrors the paper's deflate deployment.
func DefaultConfig() Config {
	return Config{
		ThresholdRPS: 150,
		WindowSec:    10,
		BaseLagSec:   20,
		BanSec:       600,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Disabled {
		return nil
	}
	if c.ThresholdRPS <= 0 {
		return fmt.Errorf("firewall: threshold %v must be positive", c.ThresholdRPS)
	}
	if c.WindowSec <= 0 || c.BaseLagSec < 0 || c.BanSec <= 0 {
		return fmt.Errorf("firewall: bad timing parameters")
	}
	return nil
}

// Verdict is the outcome of one observation.
type Verdict int

const (
	// Allowed passes the request through.
	Allowed Verdict = iota
	// Banned drops the request because its source is on the ban list.
	Banned
	// Limited drops only this request: the source's rate exceeds the
	// threshold in rate-limit mode.
	Limited
)

const bucketSec = 1.0

type srcState struct {
	buckets    []float64 // per-second weighted counts, ring
	base       int64     // absolute second index of buckets[0]
	overSince  float64   // -1 when not currently over threshold
	bannedTill float64
}

// Firewall tracks per-source rates and bans. Not safe for concurrent use.
type Firewall struct {
	cfg     Config
	sources map[workload.SourceID]*srcState

	observed uint64
	dropped  uint64
	bans     uint64

	obs obs.Observer
}

// New builds a firewall; it panics on invalid config (deployment bug).
func New(cfg Config) *Firewall {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Firewall{cfg: cfg, sources: make(map[workload.SourceID]*srcState)}
}

// SetObserver installs the event sink; ban decisions are emitted.
func (f *Firewall) SetObserver(o obs.Observer) { f.obs = o }

// Clone returns an independent deep copy — per-source windows, ban state and
// counters — for snapshot forking. The observer is not carried over.
func (f *Firewall) Clone() *Firewall {
	c := *f
	c.obs = nil
	c.sources = make(map[workload.SourceID]*srcState, len(f.sources))
	for id, st := range f.sources {
		cp := *st
		//lint:allow mapiter -- per-entry deep copy into that entry's own slice; nothing accumulates across iterations
		cp.buckets = append([]float64(nil), st.buckets...)
		c.sources[id] = &cp
	}
	return &c
}

// Observed returns the number of requests inspected.
func (f *Firewall) Observed() uint64 { return f.observed }

// Dropped returns the number of requests dropped due to bans.
func (f *Firewall) Dropped() uint64 { return f.dropped }

// Bans returns the number of ban decisions taken.
func (f *Firewall) Bans() uint64 { return f.bans }

// IsBanned reports whether the source is currently blocked.
func (f *Firewall) IsBanned(now float64, src workload.SourceID) bool {
	if f.cfg.Disabled {
		return false
	}
	st, ok := f.sources[src]
	return ok && now < st.bannedTill
}

// lagFor returns the detection start lag for a class: heavier network
// footprints trip the netstat-style counters sooner.
func (f *Firewall) lagFor(class workload.Class) float64 {
	nc := workload.Lookup(class).NetCost
	if nc <= 0 {
		nc = 1
	}
	return f.cfg.BaseLagSec / nc
}

// Observe inspects one request and returns the verdict. A Banned verdict
// also marks the request dropped.
func (f *Firewall) Observe(now float64, req *workload.Request) Verdict {
	f.observed++
	if f.cfg.Disabled {
		return Allowed
	}
	st := f.sources[req.Source]
	if st == nil {
		n := int(f.cfg.WindowSec/bucketSec) + 1
		st = &srcState{buckets: make([]float64, n), overSince: -1}
		st.base = int64(now / bucketSec)
		f.sources[req.Source] = st
	}

	if now < st.bannedTill {
		f.dropped++
		req.Dropped = true
		req.DropReason = "firewall-ban"
		return Banned
	}

	f.slide(st, now)
	sec := int64(now / bucketSec)
	nc := workload.Lookup(req.Class).NetCost

	if f.cfg.Limit {
		// A limiter only counts what it admits: admitting this request must
		// not push the windowed rate over the threshold.
		if (f.rate(st)*f.cfg.WindowSec+nc)/f.cfg.WindowSec > f.cfg.ThresholdRPS {
			f.dropped++
			req.Dropped = true
			req.DropReason = "firewall-limit"
			return Limited
		}
		st.buckets[int(sec-st.base)] += nc
		return Allowed
	}

	st.buckets[int(sec-st.base)] += nc
	rate := f.rate(st)
	if rate > f.cfg.ThresholdRPS {
		if st.overSince < 0 {
			st.overSince = now
		}
		if now-st.overSince >= f.lagFor(req.Class) {
			st.bannedTill = now + f.cfg.BanSec
			st.overSince = -1
			f.bans++
			if f.obs != nil {
				f.obs.Emit(obs.Event{
					T: now, Kind: obs.KindFirewallBan, Server: -1,
					Class: int32(req.Class), ID: uint64(req.Source),
					A: st.bannedTill, B: rate,
				})
			}
			// The triggering request is itself dropped: the rule fires on it.
			f.dropped++
			req.Dropped = true
			req.DropReason = "firewall-ban"
			return Banned
		}
	} else {
		st.overSince = -1
	}
	return Allowed
}

// slide moves the ring so that the bucket for the current second is in
// range, zeroing expired buckets.
func (f *Firewall) slide(st *srcState, now float64) {
	sec := int64(now / bucketSec)
	maxIdx := int64(len(st.buckets) - 1)
	if sec-st.base <= maxIdx {
		return
	}
	shift := sec - st.base - maxIdx
	if shift >= int64(len(st.buckets)) {
		for i := range st.buckets {
			st.buckets[i] = 0
		}
	} else {
		copy(st.buckets, st.buckets[shift:])
		for i := len(st.buckets) - int(shift); i < len(st.buckets); i++ {
			st.buckets[i] = 0
		}
	}
	st.base += shift
}

// rate returns the weighted request rate over the window.
func (f *Firewall) rate(st *srcState) float64 {
	total := 0.0
	for _, b := range st.buckets {
		total += b
	}
	return total / f.cfg.WindowSec
}

// ActiveBans returns how many sources are currently banned at time now.
func (f *Firewall) ActiveBans(now float64) int {
	n := 0
	for _, st := range f.sources {
		if now < st.bannedTill {
			n++
		}
	}
	return n
}
