package firewall

import (
	"testing"

	"antidope/internal/workload"
)

func req(src workload.SourceID, class workload.Class) *workload.Request {
	return &workload.Request{Class: class, Source: src, Origin: workload.Attack}
}

// drive sends rate requests/second from one source for dur seconds and
// returns (allowed, banned) counts.
func drive(f *Firewall, src workload.SourceID, class workload.Class, rate float64, from, dur float64) (allowed, banned int) {
	step := 1 / rate
	for t := from; t < from+dur; t += step {
		if f.Observe(t, req(src, class)) == Allowed {
			allowed++
		} else {
			banned++
		}
	}
	return
}

func TestLowRateNeverBanned(t *testing.T) {
	f := New(DefaultConfig())
	_, banned := drive(f, 1, workload.CollaFilt, 50, 0, 120)
	if banned != 0 {
		t.Fatalf("banned %d low-rate requests", banned)
	}
	if f.Bans() != 0 {
		t.Fatal("ban counter moved")
	}
}

func TestHighRateBannedAfterLag(t *testing.T) {
	f := New(DefaultConfig())
	allowed, banned := drive(f, 1, workload.CollaFilt, 1000, 0, 60)
	if banned == 0 {
		t.Fatal("flood never banned")
	}
	if allowed == 0 {
		t.Fatal("detection was instantaneous; start lag missing")
	}
	// With NetCost 1 the lag is 20 s; everything after ~20s+window fill is
	// dropped, so the allowed share is bounded.
	if float64(allowed)/float64(allowed+banned) > 0.6 {
		t.Fatalf("too much leaked: %d/%d", allowed, allowed+banned)
	}
	if !f.IsBanned(30, 1) {
		t.Fatal("source not reported banned")
	}
}

func TestHighVolumeCaughtFaster(t *testing.T) {
	// Volume floods (NetCost 6) must be banned sooner than Colla-Filt
	// (NetCost 1) at the same request rate — Figure 10's observation.
	firstBanTime := func(class workload.Class) float64 {
		f := New(DefaultConfig())
		step := 1.0 / 1000
		for ts := 0.0; ts < 120; ts += step {
			if f.Observe(ts, req(1, class)) == Banned {
				return ts
			}
		}
		return 1e9
	}
	vf := firstBanTime(workload.VolumeFlood)
	cf := firstBanTime(workload.CollaFilt)
	if vf >= cf {
		t.Fatalf("volume flood banned at %g, colla-filt at %g; want volume first", vf, cf)
	}
}

func TestBanExpires(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BanSec = 30
	f := New(cfg)
	drive(f, 1, workload.VolumeFlood, 1000, 0, 20)
	if !f.IsBanned(20, 1) {
		t.Fatal("source should be banned at t=20")
	}
	if f.IsBanned(60, 1) {
		t.Fatal("ban should have expired by t=60")
	}
	// After expiry, a polite source is allowed again.
	if f.Observe(61, req(1, workload.TextCont)) != Allowed {
		t.Fatal("post-expiry request dropped")
	}
}

func TestRateBelowThresholdResetsOverTimer(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ThresholdRPS = 100
	cfg.BaseLagSec = 10
	f := New(cfg)
	// Burst above threshold for 5 s (shorter than the lag), then idle long
	// enough for the window to drain, repeatedly: never banned.
	for cycle := 0; cycle < 5; cycle++ {
		start := float64(cycle) * 30
		drive(f, 1, workload.CollaFilt, 500, start, 5)
	}
	if f.Bans() != 0 {
		t.Fatalf("bursty-but-brief source banned %d times", f.Bans())
	}
}

func TestSourcesIndependent(t *testing.T) {
	f := New(DefaultConfig())
	drive(f, 1, workload.VolumeFlood, 1000, 0, 30) // source 1 floods
	if f.Observe(30, req(2, workload.TextCont)) != Allowed {
		t.Fatal("innocent source 2 collateral-banned")
	}
	if !f.IsBanned(30, 1) {
		t.Fatal("source 1 not banned")
	}
	if f.ActiveBans(30) != 1 {
		t.Fatalf("active bans %d", f.ActiveBans(30))
	}
}

func TestDistributedFloodEvades(t *testing.T) {
	// The DOPE premise: the same aggregate rate spread across many sources
	// stays under the per-source threshold.
	f := New(DefaultConfig())
	const sources = 20
	banned := 0
	for s := 0; s < sources; s++ {
		_, b := drive(f, workload.SourceID(s), workload.CollaFilt, 50, 0, 60)
		banned += b
	}
	if banned != 0 {
		t.Fatalf("distributed low-rate flood banned %d requests", banned)
	}
}

func TestDisabledPassesEverything(t *testing.T) {
	f := New(Config{Disabled: true})
	_, banned := drive(f, 1, workload.VolumeFlood, 5000, 0, 30)
	if banned != 0 {
		t.Fatal("disabled firewall banned traffic")
	}
	if f.IsBanned(10, 1) {
		t.Fatal("disabled firewall reports bans")
	}
}

func TestBannedRequestMarkedDropped(t *testing.T) {
	f := New(DefaultConfig())
	drive(f, 1, workload.VolumeFlood, 2000, 0, 30)
	r := req(1, workload.VolumeFlood)
	if f.Observe(30, r) != Banned {
		t.Fatal("expected ban")
	}
	if !r.Dropped || r.DropReason != "firewall-ban" {
		t.Fatalf("dropped=%v reason=%q", r.Dropped, r.DropReason)
	}
}

func TestCounters(t *testing.T) {
	f := New(DefaultConfig())
	allowed, banned := drive(f, 1, workload.VolumeFlood, 1000, 0, 30)
	if f.Observed() != uint64(allowed+banned) {
		t.Fatalf("observed %d, drove %d", f.Observed(), allowed+banned)
	}
	if f.Dropped() != uint64(banned) {
		t.Fatalf("dropped %d, banned %d", f.Dropped(), banned)
	}
}

func TestLongIdleGapClearsWindow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ThresholdRPS = 10
	cfg.BaseLagSec = 0 // instant ban once over threshold
	f := New(cfg)
	// Fill the window right up to the threshold.
	for i := 0; i < 100; i++ {
		f.Observe(float64(i)*0.01, req(1, workload.CollaFilt))
	}
	// A year later one request must not be judged against stale buckets.
	r := req(1, workload.CollaFilt)
	if f.Observe(1e6, r) != Allowed {
		t.Fatal("stale window buckets caused a ban")
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{ThresholdRPS: 0, WindowSec: 10, BanSec: 1},
		{ThresholdRPS: 10, WindowSec: 0, BanSec: 1},
		{ThresholdRPS: 10, WindowSec: 10, BanSec: 0},
	}
	for i, cfg := range bad {
		if cfg.Validate() == nil {
			t.Fatalf("bad config %d validated", i)
		}
	}
	if (Config{Disabled: true}).Validate() != nil {
		t.Fatal("disabled config rejected")
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad config accepted by New")
		}
	}()
	New(Config{ThresholdRPS: -1, WindowSec: 1, BanSec: 1})
}

func BenchmarkObserve(b *testing.B) {
	f := New(DefaultConfig())
	r := req(1, workload.CollaFilt)
	for i := 0; i < b.N; i++ {
		r.Dropped = false
		f.Observe(float64(i)*0.001, r)
	}
}

func TestLimitModeDropsOnlyExcess(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Limit = true
	f := New(cfg)
	// 300 req/s against a 150 req/s threshold: roughly half the requests
	// are shed, and the source is never banned.
	allowed, dropped := drive(f, 1, workload.CollaFilt, 300, 0, 60)
	if dropped == 0 {
		t.Fatal("limit mode never dropped")
	}
	if allowed == 0 {
		t.Fatal("limit mode dropped everything")
	}
	frac := float64(allowed) / float64(allowed+dropped)
	if frac < 0.3 || frac > 0.7 {
		t.Fatalf("limit passed %.2f of a 2x-threshold flood, want ~0.5", frac)
	}
	if f.IsBanned(30, 1) {
		t.Fatal("limit mode banned a source")
	}
	if f.Bans() != 0 {
		t.Fatal("ban counter moved in limit mode")
	}
}

func TestLimitModeSparesCompliantSource(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Limit = true
	f := New(cfg)
	_, dropped := drive(f, 1, workload.CollaFilt, 100, 0, 60)
	if dropped != 0 {
		t.Fatalf("limit mode dropped %d under-threshold requests", dropped)
	}
}

func TestLimitModeMarksReason(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Limit = true
	f := New(cfg)
	drive(f, 1, workload.VolumeFlood, 2000, 0, 20)
	r := req(1, workload.VolumeFlood)
	if f.Observe(20, r) != Limited {
		t.Fatal("expected Limited verdict")
	}
	if !r.Dropped || r.DropReason != "firewall-limit" {
		t.Fatalf("reason %q", r.DropReason)
	}
}

func TestLimitModeRecoversAfterBurst(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Limit = true
	f := New(cfg)
	drive(f, 1, workload.CollaFilt, 1000, 0, 20) // heavy burst
	// After the window drains the source is served again.
	if f.Observe(60, req(1, workload.CollaFilt)) != Allowed {
		t.Fatal("limit mode held a grudge")
	}
}
