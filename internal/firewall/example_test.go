package firewall_test

import (
	"fmt"

	"antidope/internal/firewall"
	"antidope/internal/workload"
)

// Example shows the DOPE premise in two lines: the same aggregate request
// rate is banned when concentrated and invisible when distributed.
func Example() {
	run := func(agents int) uint64 {
		fw := firewall.New(firewall.DefaultConfig())
		const totalRPS = 600.0
		perAgent := totalRPS / float64(agents)
		for t := 0.0; t < 60; t += 1 / totalRPS {
			src := workload.SourceID(int(t*totalRPS) % agents)
			_ = perAgent
			fw.Observe(t, &workload.Request{Class: workload.CollaFilt, Source: src})
		}
		return fw.Bans()
	}
	fmt.Printf("600 req/s from 2 agents: %d bans\n", min1(run(2)))
	fmt.Printf("600 req/s from 64 agents: %d bans\n", run(64))
	// Output:
	// 600 req/s from 2 agents: 1 bans
	// 600 req/s from 64 agents: 0 bans
}

// min1 collapses "at least one ban" to 1 so the example output is stable.
func min1(n uint64) uint64 {
	if n > 1 {
		return 1
	}
	return n
}
