package firewall

import (
	"testing"

	"antidope/internal/workload"
)

// TestThresholdEdges drives scripted observation sequences through a small
// detector and pins the trip/recover edge semantics exactly:
//
//   - the measured rate must strictly exceed the threshold to arm the timer
//     (rate == threshold stays clean);
//   - a source must stay over threshold for the full lag before the ban
//     lands; dipping below at any point resets the timer to zero;
//   - an expired ban restores service, and re-banning needs a fresh lag.
//
// The config uses ThresholdRPS=2, WindowSec=5, BaseLagSec=4 (CollaFilt has
// NetCost 1, so its lag is 4 s) and BanSec=30. With the 5 s window, a burst
// of k same-second requests measures as rate k/5.
func TestThresholdEdges(t *testing.T) {
	cfg := Config{ThresholdRPS: 2, WindowSec: 5, BaseLagSec: 4, BanSec: 30}
	type step struct {
		t    float64
		n    int
		want Verdict
	}
	cases := []struct {
		name     string
		steps    []step
		wantBans uint64
	}{
		{
			name: "rate exactly at threshold never arms",
			// 10 requests in one second → rate 10/5 = 2.0, not > 2.
			steps: []step{
				{t: 0, n: 10, want: Allowed},
				{t: 100, n: 1, want: Allowed},
			},
			wantBans: 0,
		},
		{
			name: "one request over threshold arms but bans only after the lag",
			// The 11th same-second request pushes the rate to 2.2 and starts
			// the over-threshold timer; the ban lands on the first request at
			// or past t=4, not before.
			steps: []step{
				{t: 0, n: 11, want: Allowed},
				{t: 3.9, n: 1, want: Allowed},
				{t: 4, n: 1, want: Banned},
				{t: 5, n: 1, want: Banned},
			},
			wantBans: 1,
		},
		{
			name: "dipping below threshold resets the trip timer",
			// Over threshold at t=0, silent until the window drains, then over
			// again at t=20: the ban needs a full fresh lag from t=20 — the
			// earlier armed interval must not count.
			steps: []step{
				{t: 0, n: 11, want: Allowed},
				{t: 20, n: 11, want: Allowed},
				{t: 23.9, n: 1, want: Allowed},
				{t: 24, n: 1, want: Banned},
			},
			wantBans: 1,
		},
		{
			name: "ban expires and the source recovers",
			// Banned at t=4 until t=34; the idle gap also drains the window,
			// so the first post-ban request is clean and no second ban fires.
			steps: []step{
				{t: 0, n: 11, want: Allowed},
				{t: 4, n: 1, want: Banned},
				{t: 33.9, n: 1, want: Banned},
				{t: 34.1, n: 1, want: Allowed},
			},
			wantBans: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := New(cfg)
			for _, s := range tc.steps {
				for i := 0; i < s.n; i++ {
					if got := f.Observe(s.t, req(1, workload.CollaFilt)); got != s.want {
						t.Fatalf("t=%g request %d: verdict %v, want %v", s.t, i+1, got, s.want)
					}
				}
			}
			if f.Bans() != tc.wantBans {
				t.Fatalf("bans = %d, want %d", f.Bans(), tc.wantBans)
			}
		})
	}
}
