package battery_test

import (
	"fmt"

	"antidope/internal/battery"
)

// Example sizes the paper's mini UPS and walks one shave-recharge cycle.
func Example() {
	// 2 minutes of autonomy at a 400 W rack draw.
	ups := battery.Sized(400, 120)
	fmt.Printf("capacity: %.0f kJ\n", ups.CapacityJ/1e3)

	// Shave a 60 W peak for 30 s.
	got := ups.Discharge(60, 30)
	fmt.Printf("shaved %.0f W, SoC now %.3f\n", got, ups.SoC())

	// Recharge with 50 W of budget headroom for 60 s (charger-limited).
	used := ups.Charge(50, 60)
	fmt.Printf("recharging at %.0f W, wear so far %.5f equivalent full cycles\n",
		used, ups.EquivalentFullCycles())
	// Output:
	// capacity: 48 kJ
	// shaved 60 W, SoC now 0.963
	// recharging at 33 W, wear so far 0.03750 equivalent full cycles
}
