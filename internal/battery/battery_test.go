package battery

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSizedAutonomy(t *testing.T) {
	u := Sized(400, 120) // paper's mini battery: 2 minutes at full draw
	if u.CapacityJ != 48000 {
		t.Fatalf("capacity %g", u.CapacityJ)
	}
	if u.SoC() != 1 {
		t.Fatalf("initial SoC %g", u.SoC())
	}
	if got := u.AutonomyAt(400); math.Abs(got-120) > 1e-9 {
		t.Fatalf("autonomy %g, want 120", got)
	}
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDischargeDrains(t *testing.T) {
	u := Sized(100, 10) // 1000 J
	got := u.Discharge(100, 5)
	if got != 100 {
		t.Fatalf("delivered %g, want 100", got)
	}
	if math.Abs(u.Level()-500) > 1e-9 {
		t.Fatalf("level %g, want 500", u.Level())
	}
	// Second half drains it completely.
	got = u.Discharge(100, 5)
	if got != 100 || !u.Empty() {
		t.Fatalf("delivered %g, empty=%v", got, u.Empty())
	}
	// Nothing left.
	if got := u.Discharge(100, 1); got != 0 {
		t.Fatalf("delivered %g from empty battery", got)
	}
}

func TestDischargeLimitedByInverter(t *testing.T) {
	u := Sized(100, 100)
	if got := u.Discharge(500, 1); got != 100 {
		t.Fatalf("delivered %g, inverter limit 100", got)
	}
}

func TestDischargeLimitedByEnergy(t *testing.T) {
	u := Sized(100, 1) // 100 J
	// Want 100 W for 10 s = 1000 J but only 100 J stored: delivers 10 W.
	if got := u.Discharge(100, 10); math.Abs(got-10) > 1e-9 {
		t.Fatalf("delivered %g, want 10", got)
	}
	if !u.Empty() {
		t.Fatal("battery should be empty")
	}
}

func TestChargeRefills(t *testing.T) {
	u := Sized(100, 10) // 1000 J, max charge 10 W, eff 0.9
	u.SetSoC(0)
	used := u.Charge(50, 10)
	if math.Abs(used-10) > 1e-9 {
		t.Fatalf("charge used %g, want 10 (charger limit)", used)
	}
	if math.Abs(u.Level()-90) > 1e-9 {
		t.Fatalf("level %g, want 90 (10W*10s*0.9)", u.Level())
	}
}

func TestChargeStopsWhenFull(t *testing.T) {
	u := Sized(100, 10)
	if used := u.Charge(50, 10); used != 0 {
		t.Fatalf("full battery accepted %g W", used)
	}
}

func TestChargePartialRoom(t *testing.T) {
	u := Sized(100, 10) // 1000 J
	u.SetSoC(0.999)     // 1 J of room
	used := u.Charge(50, 10)
	wantUsed := 1.0 / (10 * 0.9)
	if math.Abs(used-wantUsed) > 1e-9 {
		t.Fatalf("used %g, want %g", used, wantUsed)
	}
	if math.Abs(u.SoC()-1) > 1e-9 {
		t.Fatalf("SoC %g after topping off", u.SoC())
	}
}

func TestAccounting(t *testing.T) {
	u := Sized(100, 10)
	u.Discharge(100, 2)
	u.Charge(50, 4)
	if u.DischargedJ() != 200 {
		t.Fatalf("discharged %g", u.DischargedJ())
	}
	if math.Abs(u.ChargedJ()-40) > 1e-9 {
		t.Fatalf("charged %g, want 40 (10W*4s)", u.ChargedJ())
	}
}

func TestCycleCounting(t *testing.T) {
	u := Sized(100, 100)
	u.Discharge(10, 1)
	u.Charge(10, 1)
	u.Discharge(10, 1) // charge->discharge completes one cycle
	u.Charge(10, 1)
	u.Discharge(10, 1)
	if got := u.Cycles(); got != 2 {
		t.Fatalf("cycles %d, want 2", got)
	}
}

func TestZeroValueIsAbsentBattery(t *testing.T) {
	var u UPS
	if u.SoC() != 0 || !u.Empty() {
		t.Fatal("zero UPS should be empty")
	}
	if got := u.Discharge(100, 1); got != 0 {
		t.Fatalf("zero UPS delivered %g", got)
	}
	if got := u.Charge(100, 1); got != 0 {
		t.Fatalf("zero UPS accepted %g", got)
	}
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSetSoCClamps(t *testing.T) {
	u := Sized(100, 10)
	u.SetSoC(2)
	if u.SoC() != 1 {
		t.Fatalf("SoC %g after SetSoC(2)", u.SoC())
	}
	u.SetSoC(-1)
	if u.SoC() != 0 {
		t.Fatalf("SoC %g after SetSoC(-1)", u.SoC())
	}
}

func TestAutonomyEdges(t *testing.T) {
	u := Sized(100, 10)
	if got := u.AutonomyAt(0); got != 0 {
		t.Fatalf("autonomy at zero draw %g", got)
	}
	// Draw above inverter rating is clamped.
	if got := u.AutonomyAt(1000); math.Abs(got-10) > 1e-9 {
		t.Fatalf("autonomy at excess draw %g, want 10", got)
	}
}

func TestValidateRejectsBad(t *testing.T) {
	u := Sized(100, 10)
	u.Efficiency = 1.5
	if u.Validate() == nil {
		t.Fatal("bad efficiency validated")
	}
	v := Sized(100, 10)
	v.CapacityJ = -1
	if v.Validate() == nil {
		t.Fatal("negative capacity validated")
	}
}

// Property: level always stays within [0, capacity] under arbitrary
// interleavings of charge and discharge.
func TestQuickLevelBounded(t *testing.T) {
	f := func(ops []uint8) bool {
		u := Sized(100, 10)
		for _, op := range ops {
			w := float64(op%200) + 1
			dt := float64(op%7)/2 + 0.1
			if op%2 == 0 {
				u.Discharge(w, dt)
			} else {
				u.Charge(w, dt)
			}
			if u.Level() < -1e-9 || u.Level() > u.CapacityJ+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: energy is conserved — delivered joules never exceed initial
// level plus charged joules times efficiency.
func TestQuickEnergyConservation(t *testing.T) {
	f := func(ops []uint8) bool {
		u := Sized(100, 10)
		initial := u.Level()
		for _, op := range ops {
			w := float64(op%150) + 1
			if op%3 == 0 {
				u.Charge(w, 0.5)
			} else {
				u.Discharge(w, 0.5)
			}
		}
		return u.DischargedJ() <= initial+u.ChargedJ()*u.Efficiency+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDischargeCharge(b *testing.B) {
	u := Sized(400, 120)
	for i := 0; i < b.N; i++ {
		u.Discharge(100, 0.1)
		u.Charge(100, 0.1)
	}
}

func TestEquivalentFullCycles(t *testing.T) {
	u := Sized(100, 10) // 1000 J
	u.Discharge(100, 5) // 500 J
	u.Charge(100, 1e6)  // refill
	u.Discharge(100, 5) // another 500 J
	if got := u.EquivalentFullCycles(); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("EFC %g, want 1.0", got)
	}
	var none UPS
	if none.EquivalentFullCycles() != 0 {
		t.Fatal("absent battery has cycles")
	}
}

func TestDeepestDischargeDoD(t *testing.T) {
	u := Sized(100, 10)
	if u.DeepestDischargeDoD() != 0 {
		t.Fatal("unused battery has DoD")
	}
	u.Discharge(100, 3) // down to 700 J: DoD 0.3
	u.Charge(1000, 1e6) // full again
	if got := u.DeepestDischargeDoD(); math.Abs(got-0.3) > 1e-9 {
		t.Fatalf("DoD %g, want 0.3 (recharge must not erase history)", got)
	}
	u.Discharge(100, 8) // down to 200 J: DoD 0.8
	if got := u.DeepestDischargeDoD(); math.Abs(got-0.8) > 1e-9 {
		t.Fatalf("DoD %g, want 0.8", got)
	}
}

func TestLifeConsumed(t *testing.T) {
	u := Sized(100, 10)
	u.Discharge(100, 10) // one full cycle, DoD 1.0
	// 500 rated cycles, depth penalty 1: life = 1/500 × 2 = 0.004.
	if got := u.LifeConsumed(500, 1); math.Abs(got-0.004) > 1e-12 {
		t.Fatalf("life %g, want 0.004", got)
	}
	if u.LifeConsumed(0, 1) != 0 {
		t.Fatal("zero rated cycles")
	}
	// Shallow cycling wears less than deep cycling for equal throughput.
	shallow := Sized(100, 10)
	for i := 0; i < 10; i++ {
		shallow.Discharge(100, 1) // 10% each
		shallow.Charge(1000, 1e6)
	}
	if shallow.LifeConsumed(500, 1) >= u.LifeConsumed(500, 1) {
		t.Fatal("shallow cycling should wear less than one deep cycle")
	}
}

// --- fault-injection and edge-case coverage ---

func TestDischargeChargeZeroDt(t *testing.T) {
	u := Sized(100, 10) // 1000 J, full
	if got := u.Discharge(50, 0); got != 0 {
		t.Fatalf("Discharge with dt=0 delivered %g, want 0", got)
	}
	u.SetSoC(0.5)
	if got := u.Charge(50, 0); got != 0 {
		t.Fatalf("Charge with dt=0 consumed %g, want 0", got)
	}
	if u.SoC() != 0.5 {
		t.Fatalf("zero-dt operations moved the level: SoC %g", u.SoC())
	}
	if u.DischargedJ() != 0 || u.ChargedJ() != 0 {
		t.Fatal("zero-dt operations touched the energy ledger")
	}
}

func TestSoCClampsAtZeroAndOne(t *testing.T) {
	u := Sized(100, 10) // 1000 J
	// Overdraw far beyond the stored energy: level must clamp at 0.
	for i := 0; i < 50; i++ {
		u.Discharge(100, 10)
	}
	if u.SoC() != 0 {
		t.Fatalf("SoC after overdraw %g, want 0", u.SoC())
	}
	if !u.Empty() {
		t.Fatal("overdrawn battery not Empty")
	}
	if u.Level() < 0 {
		t.Fatalf("level went negative: %g", u.Level())
	}
	// Overcharge far beyond capacity: level must clamp at capacity.
	for i := 0; i < 500; i++ {
		u.Charge(1000, 10)
	}
	if u.SoC() != 1 {
		t.Fatalf("SoC after overcharge %g, want 1", u.SoC())
	}
	if u.Level() > u.CapacityJ {
		t.Fatalf("level %g above capacity %g", u.Level(), u.CapacityJ)
	}
	// SetSoC clamps its argument too.
	u.SetSoC(-3)
	if u.SoC() != 0 {
		t.Fatalf("SetSoC(-3) left SoC %g", u.SoC())
	}
	u.SetSoC(7)
	if u.SoC() != 1 {
		t.Fatalf("SetSoC(7) left SoC %g", u.SoC())
	}
}

func TestFailedStringDeliversNothing(t *testing.T) {
	u := Sized(100, 10)
	u.SetFailed(true)
	if !u.Failed() {
		t.Fatal("Failed() false after SetFailed(true)")
	}
	if got := u.Discharge(50, 1); got != 0 {
		t.Fatalf("failed string discharged %g", got)
	}
	u.SetSoC(0.5)
	if got := u.Charge(50, 1); got != 0 {
		t.Fatalf("failed string charged %g", got)
	}
	if got := u.AutonomyAt(50); got != 0 {
		t.Fatalf("failed string reports autonomy %g", got)
	}
	// The stored charge holds through the fault.
	u.SetFailed(false)
	if u.SoC() != 0.5 {
		t.Fatalf("SoC %g after repair, want 0.5", u.SoC())
	}
	if got := u.Discharge(50, 1); got != 50 {
		t.Fatalf("repaired string discharged %g, want 50", got)
	}
}

func TestFadeClampsLevelAndCapacity(t *testing.T) {
	u := Sized(100, 10) // 1000 J, full
	u.Fade(0.4)
	if u.CapacityJ != 400 {
		t.Fatalf("capacity after fade %g, want 400", u.CapacityJ)
	}
	if u.Level() != 400 {
		t.Fatalf("level after fade %g, want clamped to 400", u.Level())
	}
	if u.SoC() != 1 {
		t.Fatalf("SoC after fade %g, want 1 (full at the new capacity)", u.SoC())
	}
	// Out-of-range fractions clamp instead of corrupting state.
	u.Fade(-1)
	if u.CapacityJ != 0 || u.Level() != 0 {
		t.Fatalf("Fade(-1) left capacity %g level %g", u.CapacityJ, u.Level())
	}
	v := Sized(100, 10)
	v.Fade(2)
	if v.CapacityJ != 1000 {
		t.Fatalf("Fade(2) changed capacity to %g", v.CapacityJ)
	}
}

func TestLifeConsumedUnderCapacityFade(t *testing.T) {
	u := Sized(100, 10) // 1000 J
	// One half-capacity discharge before the fade.
	u.Discharge(100, 5) // 500 J out, level 500
	efcBefore := u.EquivalentFullCycles()
	if math.Abs(efcBefore-0.5) > 1e-9 {
		t.Fatalf("EFC before fade %g, want 0.5", efcBefore)
	}
	lifeBefore := u.LifeConsumed(100, 1)
	u.Fade(0.5) // capacity 500, level 500 (unchanged, already at ceiling)
	// The same discharged joules now count against the smaller capacity:
	// wear metrics must jump, never shrink.
	if efc := u.EquivalentFullCycles(); math.Abs(efc-1.0) > 1e-9 {
		t.Fatalf("EFC after fade %g, want 1.0", efc)
	}
	if life := u.LifeConsumed(100, 1); life <= lifeBefore {
		t.Fatalf("LifeConsumed shrank across a fade: %g -> %g", lifeBefore, life)
	}
	// DoD stays within [0,1] even though minLevel predates the fade.
	if dod := u.DeepestDischargeDoD(); dod < 0 || dod > 1 {
		t.Fatalf("DoD %g outside [0,1] after fade", dod)
	}
	// LifeConsumed guards its degenerate rating.
	if got := u.LifeConsumed(0, 1); got != 0 {
		t.Fatalf("LifeConsumed with zero rated cycles = %g, want 0", got)
	}
}
