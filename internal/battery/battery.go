// Package battery models the UPS energy storage used for peak shaving in
// under-provisioned data centers (Section 6.4 of the paper). The model is a
// first-order energy bucket with bounded discharge/charge power and a
// round-trip efficiency — sufficient to reproduce the charge/discharge
// trajectories of Figure 18 and the energy accounting of Figure 19.
package battery

import (
	"fmt"

	"antidope/internal/obs"
)

// UPS is one battery string backing a server cluster. The zero value is an
// absent battery: zero capacity, every discharge request returns 0.
type UPS struct {
	// CapacityJ is the usable energy when fully charged, in joules.
	CapacityJ float64
	// MaxDischargeW bounds instantaneous discharge power (inverter rating).
	MaxDischargeW float64
	// MaxChargeW bounds recharge power drawn from the utility.
	MaxChargeW float64
	// Efficiency is the round-trip efficiency in (0,1]; losses are charged
	// on the way in, so discharging yields stored joules one-for-one.
	Efficiency float64

	level float64 // current stored energy, joules

	// Cumulative accounting for Figure 19.
	discharged float64 // joules delivered to the load
	charged    float64 // joules drawn from the utility to recharge (incl. losses)
	cycles     int     // completed discharge→charge transitions
	lastMode   int     // -1 discharging, +1 charging, 0 idle
	minLevel   float64 // deepest level reached, for depth-of-discharge wear
	everUsed   bool

	// failed marks an offline string (fault injection): inverter and
	// charger deliver nothing while the stored charge holds.
	failed bool

	// obs receives charge/discharge/failure events, stamped with the sim
	// time read from clock; both are set together by SetObserver.
	obs   obs.Observer
	clock func() float64
}

// Sized returns a UPS able to sustain sustainW for autonomy seconds, the
// paper's "mini battery which can sustain 2 minutes when supporting all the
// web application nodes". It starts fully charged.
func Sized(sustainW, autonomySec float64) *UPS {
	u := &UPS{
		CapacityJ:     sustainW * autonomySec,
		MaxDischargeW: sustainW,
		MaxChargeW:    sustainW * 0.1,
		Efficiency:    0.9,
	}
	u.level = u.CapacityJ
	return u
}

// Validate reports whether the configuration is physically sensible.
func (u *UPS) Validate() error {
	if u.CapacityJ < 0 || u.MaxDischargeW < 0 || u.MaxChargeW < 0 {
		return fmt.Errorf("battery: negative rating")
	}
	if u.CapacityJ > 0 && (u.Efficiency <= 0 || u.Efficiency > 1) {
		return fmt.Errorf("battery: efficiency %v out of (0,1]", u.Efficiency)
	}
	if u.level < 0 || u.level > u.CapacityJ {
		return fmt.Errorf("battery: level %v outside [0,%v]", u.level, u.CapacityJ)
	}
	return nil
}

// SetObserver installs the event sink together with the simulation clock
// used to stamp events: the UPS API carries durations, not absolute times,
// so the driver lends it the engine's now. Passing a nil observer detaches.
func (u *UPS) SetObserver(o obs.Observer, clock func() float64) {
	u.obs = o
	u.clock = clock
	if o != nil && clock == nil {
		panic("battery: observer without a clock")
	}
}

// Clone returns an independent copy for snapshot forking: all charge state
// and wear accounting carries over, the observer and its clock do not (the
// fork rewires its own if it attaches one).
func (u *UPS) Clone() *UPS {
	c := *u
	c.obs = nil
	c.clock = nil
	return &c
}

// Level returns stored energy in joules.
func (u *UPS) Level() float64 { return u.level }

// SoC returns the state of charge in [0,1]; an absent battery reports 0.
func (u *UPS) SoC() float64 {
	if u.CapacityJ <= 0 {
		return 0
	}
	return u.level / u.CapacityJ
}

// SetSoC sets the state of charge, clamped to [0,1]. Used by tests and by
// scenario setup ("battery at 40% when the attack lands").
func (u *UPS) SetSoC(soc float64) {
	if soc < 0 {
		soc = 0
	}
	if soc > 1 {
		soc = 1
	}
	u.level = soc * u.CapacityJ
}

// Empty reports whether no usable energy remains.
func (u *UPS) Empty() bool { return u.level <= 1e-9 }

// AutonomyAt returns how long the battery can sustain the given draw, in
// seconds (capped by the inverter rating). Zero draw returns +Inf behaviour
// as a very large number is avoided; callers treat 0 draw specially.
func (u *UPS) AutonomyAt(drawW float64) float64 {
	if u.failed || drawW <= 0 {
		return 0
	}
	if drawW > u.MaxDischargeW {
		drawW = u.MaxDischargeW
	}
	if drawW <= 0 {
		return 0
	}
	return u.level / drawW
}

// Discharge asks the battery to supply wantW for dt seconds. It returns the
// power actually delivered, limited by the inverter rating and remaining
// energy. Delivered power reduces the stored level one-for-one (round-trip
// losses are applied on charge).
func (u *UPS) Discharge(wantW, dt float64) (gotW float64) {
	if u.failed || wantW <= 0 || dt <= 0 || u.Empty() {
		return 0
	}
	gotW = wantW
	if gotW > u.MaxDischargeW {
		gotW = u.MaxDischargeW
	}
	maxByEnergy := u.level / dt
	if gotW > maxByEnergy {
		gotW = maxByEnergy
	}
	u.level -= gotW * dt
	if u.level < 0 {
		u.level = 0
	}
	if !u.everUsed || u.level < u.minLevel {
		u.minLevel = u.level
		u.everUsed = true
	}
	u.discharged += gotW * dt
	if u.lastMode == 1 {
		u.cycles++
	}
	u.lastMode = -1
	if u.obs != nil && gotW > 0 {
		u.obs.Emit(obs.Event{
			T: u.clock(), Kind: obs.KindBatteryDischarge, Server: -1,
			A: gotW, B: u.SoC(),
		})
	}
	return gotW
}

// Charge recharges from the utility using up to availW of headroom for dt
// seconds. It returns the utility power actually consumed (including
// conversion losses). A full or absent battery consumes nothing.
func (u *UPS) Charge(availW, dt float64) (usedW float64) {
	if u.failed || availW <= 0 || dt <= 0 || u.CapacityJ <= 0 {
		return 0
	}
	room := u.CapacityJ - u.level
	if room <= 0 {
		return 0
	}
	usedW = availW
	if usedW > u.MaxChargeW {
		usedW = u.MaxChargeW
	}
	stored := usedW * dt * u.Efficiency
	if stored > room {
		stored = room
		usedW = stored / (dt * u.Efficiency)
	}
	u.level += stored
	u.charged += usedW * dt
	u.lastMode = 1
	if u.obs != nil && usedW > 0 {
		u.obs.Emit(obs.Event{
			T: u.clock(), Kind: obs.KindBatteryCharge, Server: -1,
			A: usedW, B: u.SoC(),
		})
	}
	return usedW
}

// SetFailed marks the string offline (true) or restores it (false). While
// failed, Discharge and Charge deliver nothing; the stored charge holds, so
// a restored string resumes from the level it failed at.
func (u *UPS) SetFailed(failed bool) {
	if u.obs != nil && failed != u.failed {
		kind := obs.KindBatteryFail
		if !failed {
			kind = obs.KindBatteryRepair
		}
		u.obs.Emit(obs.Event{T: u.clock(), Kind: kind, Server: -1, B: u.SoC()})
	}
	u.failed = failed
}

// Failed reports whether the string is offline.
func (u *UPS) Failed() bool { return u.failed }

// Fade reduces the usable capacity to frac of its current value, clamped to
// [0,1] — aged cells failing a capacity test. Stored energy above the new
// ceiling is gone with it. Wear metrics (EquivalentFullCycles, DoD) are
// measured against the current usable capacity from then on.
func (u *UPS) Fade(frac float64) {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	u.CapacityJ *= frac
	if u.level > u.CapacityJ {
		u.level = u.CapacityJ
	}
	if u.minLevel > u.CapacityJ {
		u.minLevel = u.CapacityJ
	}
	if u.obs != nil {
		u.obs.Emit(obs.Event{
			T: u.clock(), Kind: obs.KindBatteryFade, Server: -1,
			A: frac, B: u.SoC(),
		})
	}
}

// DischargedJ returns total joules delivered to the load so far.
func (u *UPS) DischargedJ() float64 { return u.discharged }

// ChargedJ returns total joules drawn from the utility for recharging,
// including conversion losses.
func (u *UPS) ChargedJ() float64 { return u.charged }

// Cycles returns the number of discharge→charge mode transitions observed,
// a proxy for battery wear discussed in Section 6.4.
func (u *UPS) Cycles() int { return u.cycles }

// EquivalentFullCycles returns total discharge throughput in units of full
// capacity — the standard battery-wear metric: a pack rated for N cycles
// has consumed EquivalentFullCycles()/N of its life.
func (u *UPS) EquivalentFullCycles() float64 {
	if u.CapacityJ <= 0 {
		return 0
	}
	return u.discharged / u.CapacityJ
}

// DeepestDischargeDoD returns the worst depth of discharge reached in
// [0,1]; deep discharges age lead-acid strings super-linearly, which is why
// Section 6.4 worries about schemes that run the UPS to empty.
func (u *UPS) DeepestDischargeDoD() float64 {
	if u.CapacityJ <= 0 || !u.everUsed {
		return 0
	}
	return 1 - u.minLevel/u.CapacityJ
}

// LifeConsumed estimates the fraction of pack life used, combining cycle
// throughput with a depth penalty: wear = EFC/rated × (1 + penalty·DoD).
// penalty 1.0 doubles the wear of full-depth cycling versus shallow.
func (u *UPS) LifeConsumed(ratedCycles, depthPenalty float64) float64 {
	if ratedCycles <= 0 {
		return 0
	}
	return u.EquivalentFullCycles() / ratedCycles * (1 + depthPenalty*u.DeepestDischargeDoD())
}
