package trace

import (
	"math"
	"strings"
	"testing"
)

func TestSynthesizeShape(t *testing.T) {
	cfg := DefaultSynth()
	cfg.Machines = 200 // keep the test fast; shape is machine-count invariant
	tr, err := Synthesize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Duration(); math.Abs(got-12*3600) > 1 {
		t.Fatalf("duration %g", got)
	}
	if tr.Machines != 200 {
		t.Fatalf("machines %d", tr.Machines)
	}
	mean := tr.MeanUtil()
	if mean < 0.25 || mean > 0.55 {
		t.Fatalf("mean util %g, want ~0.40", mean)
	}
	for i, v := range tr.Samples {
		if v < 0 || v > 1 {
			t.Fatalf("sample %d out of [0,1]: %g", i, v)
		}
	}
}

func TestSynthesizeDiurnalSwing(t *testing.T) {
	cfg := DefaultSynth()
	cfg.Machines = 200
	tr, err := Synthesize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A 12 h window starting at the trough should climb: the last quarter's
	// mean exceeds the first quarter's.
	n := len(tr.Samples)
	var early, late float64
	for i := 0; i < n/4; i++ {
		early += tr.Samples[i]
	}
	for i := 3 * n / 4; i < n; i++ {
		late += tr.Samples[i]
	}
	if late <= early {
		t.Fatalf("no diurnal climb: early=%g late=%g", early, late)
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	cfg := DefaultSynth()
	cfg.Machines = 50
	a, _ := Synthesize(cfg)
	b, _ := Synthesize(cfg)
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("same seed diverged at sample %d", i)
		}
	}
	cfg.Seed++
	c, _ := Synthesize(cfg)
	same := 0
	for i := range a.Samples {
		if a.Samples[i] == c.Samples[i] {
			same++
		}
	}
	if same == len(a.Samples) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestSynthesizePeakToMean(t *testing.T) {
	cfg := DefaultSynth()
	cfg.Machines = 200
	tr, _ := Synthesize(cfg)
	ptm := tr.PeakToMean()
	if ptm <= 1.05 || ptm > 3 {
		t.Fatalf("peak-to-mean %g, want a meaningful oversubscription gap", ptm)
	}
}

func TestSynthValidate(t *testing.T) {
	bad := []SynthConfig{
		{Machines: 0, Hours: 1, IntervalSec: 60, MeanUtil: 0.4},
		{Machines: 10, Hours: 0, IntervalSec: 60, MeanUtil: 0.4},
		{Machines: 10, Hours: 1, IntervalSec: 60, MeanUtil: 0},
		{Machines: 10, Hours: 1, IntervalSec: 60, MeanUtil: 0.4, DiurnalAmp: 1.5},
	}
	for i, cfg := range bad {
		if _, err := Synthesize(cfg); err == nil {
			t.Fatalf("bad config %d synthesized", i)
		}
	}
}

func TestTraceAt(t *testing.T) {
	tr := &Trace{IntervalSec: 10, Samples: []float64{0.1, 0.2, 0.3}}
	cases := []struct{ ts, want float64 }{
		{-5, 0.1}, {0, 0.1}, {9.9, 0.1}, {10, 0.2}, {25, 0.3}, {1e6, 0.3},
	}
	for _, c := range cases {
		if got := tr.At(c.ts); got != c.want {
			t.Fatalf("At(%g) = %g, want %g", c.ts, got, c.want)
		}
	}
	empty := &Trace{IntervalSec: 10}
	if empty.At(0) != 0 {
		t.Fatal("empty trace At != 0")
	}
}

func TestRateFnScalesToBase(t *testing.T) {
	tr := &Trace{IntervalSec: 1, Samples: []float64{0.2, 0.4, 0.6}}
	rate := tr.RateFn(100)
	// Mean util is 0.4, so base 100 rps maps util 0.4 → 100 rps.
	if got := rate(1); math.Abs(got-100) > 1e-9 {
		t.Fatalf("rate at mean util = %g", got)
	}
	if got := rate(2); math.Abs(got-150) > 1e-9 {
		t.Fatalf("rate at peak = %g", got)
	}
	// Degenerate trace falls back to flat base rate.
	flat := (&Trace{IntervalSec: 1}).RateFn(42)
	if flat(0) != 42 {
		t.Fatal("empty-trace rate fallback")
	}
}

func TestWindow(t *testing.T) {
	tr := &Trace{IntervalSec: 10, Samples: []float64{1, 2, 3, 4, 5, 6}}
	w := tr.Window(15, 45)
	if len(w.Samples) != 4 || w.Samples[0] != 2 || w.Samples[3] != 5 {
		t.Fatalf("window samples %v", w.Samples)
	}
	if empty := tr.Window(100, 200); len(empty.Samples) != 0 {
		t.Fatal("out-of-range window not empty")
	}
	if neg := tr.Window(30, 10); len(neg.Samples) != 0 {
		t.Fatal("inverted window not empty")
	}
}

const sampleCSV = `c_1,m_1,0,50,1.0
c_2,m_2,0,30,1.0
c_1,m_1,60,70,1.0
c_2,m_2,60,90,1.0
c_1,m_1,120,10,1.0
`

func TestLoadCSV(t *testing.T) {
	tr, err := LoadCSV(strings.NewReader(sampleCSV), 60)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Machines != 2 {
		t.Fatalf("machines %d", tr.Machines)
	}
	want := []float64{0.4, 0.8, 0.1}
	if len(tr.Samples) != len(want) {
		t.Fatalf("samples %v", tr.Samples)
	}
	for i := range want {
		if math.Abs(tr.Samples[i]-want[i]) > 1e-9 {
			t.Fatalf("sample %d = %g, want %g", i, tr.Samples[i], want[i])
		}
	}
}

func TestLoadCSVHeaderSkipped(t *testing.T) {
	in := "container_id,machine_id,time_stamp,cpu_util_percent\n" + sampleCSV
	tr, err := LoadCSV(strings.NewReader(in), 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Samples) != 3 {
		t.Fatalf("samples %v", tr.Samples)
	}
}

func TestLoadCSVGapHolds(t *testing.T) {
	in := "c,m,0,40,x\nc,m,180,80,x\n"
	tr, err := LoadCSV(strings.NewReader(in), 60)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.4, 0.4, 0.4, 0.8}
	for i := range want {
		if math.Abs(tr.Samples[i]-want[i]) > 1e-9 {
			t.Fatalf("gap fill %v, want %v", tr.Samples, want)
		}
	}
}

func TestLoadCSVErrors(t *testing.T) {
	if _, err := LoadCSV(strings.NewReader(""), 60); err == nil {
		t.Fatal("empty csv accepted")
	}
	if _, err := LoadCSV(strings.NewReader(sampleCSV), 0); err == nil {
		t.Fatal("zero interval accepted")
	}
	// Mostly-garbage numeric columns: wrong file.
	junk := "a,b,x,y,z\na,b,x,y,z\na,b,x,y,z\n"
	if _, err := LoadCSV(strings.NewReader(junk), 60); err == nil {
		t.Fatal("garbage csv accepted")
	}
}

func TestLoadCSVClampsUtil(t *testing.T) {
	in := "c,m,0,250,x\n" // 250% CPU on a multi-core container clamps to 1
	tr, err := LoadCSV(strings.NewReader(in), 60)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Samples[0] != 1 {
		t.Fatalf("clamp failed: %v", tr.Samples)
	}
}

func BenchmarkSynthesize(b *testing.B) {
	cfg := DefaultSynth()
	cfg.Machines = 100
	cfg.Hours = 1
	for i := 0; i < b.N; i++ {
		if _, err := Synthesize(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestOversubscriptionReport(t *testing.T) {
	cfg := DefaultSynth()
	cfg.Machines = 200
	tr, err := Synthesize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := tr.Oversubscription(0.45)
	if rep.MeanUtil <= 0 || rep.PeakUtil > 1 {
		t.Fatalf("util stats %+v", rep)
	}
	if rep.MeanPowerFrac >= rep.P99PowerFrac || rep.P99PowerFrac > rep.PeakPowerFrac+1e-9 {
		t.Fatalf("power fractions not ordered: %+v", rep)
	}
	// The paper's premise: the trace's safe budget is well under nameplate,
	// justifying 80-90% provisioning.
	if rep.SafeBudgetFrac >= 1 {
		t.Fatalf("no oversubscription headroom: safe budget %g", rep.SafeBudgetFrac)
	}
	if rep.SafeBudgetFrac <= rep.MeanPowerFrac {
		t.Fatal("safe budget below mean power")
	}
}

func TestOversubscriptionDegenerate(t *testing.T) {
	tr := &Trace{IntervalSec: 60, Samples: []float64{0.5, 0.5, 0.5}}
	rep := tr.Oversubscription(0.4)
	want := 0.4 + 0.6*0.5
	if math.Abs(rep.MeanPowerFrac-want) > 1e-9 || math.Abs(rep.SafeBudgetFrac-want) > 1e-9 {
		t.Fatalf("flat trace report %+v", rep)
	}
}
