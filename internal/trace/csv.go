package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// LoadCSV reads a container-usage CSV in the Alibaba clusterdata v2018
// schema and aggregates it to a cluster utilization Trace.
//
// The expected columns (header optional) are:
//
//	container_id, machine_id, time_stamp, cpu_util_percent, mem_gps, ...
//
// Only time_stamp (seconds) and cpu_util_percent (0-100) are consumed;
// trailing columns are ignored so both container_usage and machine_usage
// files parse. Rows with malformed numbers are skipped and counted; more
// than half malformed is an error, because that indicates the wrong file
// rather than dirty data.
func LoadCSV(r io.Reader, intervalSec float64) (*Trace, error) {
	if intervalSec <= 0 {
		return nil, fmt.Errorf("trace: interval %v must be positive", intervalSec)
	}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // the real trace has variable trailing fields
	cr.ReuseRecord = true

	type bucket struct {
		sum   float64
		count int
	}
	buckets := make(map[int64]*bucket)
	machines := make(map[string]struct{})
	var rows, bad int

	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: csv read: %w", err)
		}
		if len(rec) < 4 {
			bad++
			continue
		}
		// Skip a header row if present.
		if rows == 0 && strings.Contains(strings.ToLower(rec[2]), "time") {
			continue
		}
		rows++
		ts, err1 := strconv.ParseFloat(strings.TrimSpace(rec[2]), 64)
		cpu, err2 := strconv.ParseFloat(strings.TrimSpace(rec[3]), 64)
		if err1 != nil || err2 != nil || cpu < 0 {
			bad++
			continue
		}
		machines[rec[1]] = struct{}{}
		k := int64(ts / intervalSec)
		b := buckets[k]
		if b == nil {
			b = &bucket{}
			buckets[k] = b
		}
		b.sum += cpu / 100
		b.count++
	}
	if rows == 0 {
		return nil, fmt.Errorf("trace: empty csv")
	}
	if bad*2 > rows {
		return nil, fmt.Errorf("trace: %d/%d rows malformed; wrong schema?", bad, rows)
	}

	keys := make([]int64, 0, len(buckets))
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	if len(keys) == 0 {
		return nil, fmt.Errorf("trace: no usable rows")
	}

	first, last := keys[0], keys[len(keys)-1]
	out := &Trace{
		IntervalSec: intervalSec,
		Samples:     make([]float64, last-first+1),
		Machines:    len(machines),
	}
	prev := 0.0
	for i := range out.Samples {
		if b, ok := buckets[first+int64(i)]; ok && b.count > 0 {
			prev = b.sum / float64(b.count)
		}
		// Gaps in the trace hold the previous value, matching how the
		// simulator samples it.
		out.Samples[i] = clamp01(prev)
	}
	return out, nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
