package trace_test

import (
	"fmt"

	"antidope/internal/trace"
)

// Example synthesizes a small Alibaba-like trace and reads its
// oversubscription analysis — the numbers that justify (and endanger)
// aggressive power provisioning.
func Example() {
	cfg := trace.DefaultSynth()
	cfg.Machines = 100
	cfg.Hours = 6
	tr, err := trace.Synthesize(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	rep := tr.Oversubscription(0.45)
	fmt.Printf("samples: %d at %.0fs\n", len(tr.Samples), tr.IntervalSec)
	fmt.Printf("oversubscription headroom exists: %v\n", rep.SafeBudgetFrac < 1)
	fmt.Printf("peak power above the safe budget: %v\n", rep.PeakPowerFrac >= rep.SafeBudgetFrac)
	// Output:
	// samples: 360 at 60s
	// oversubscription headroom exists: true
	// peak power above the safe budget: true
}
