// Package trace provides the normal-user traffic intensity process. The
// paper drives its evaluation with Alibaba's 2018 container trace (12 hours,
// ~1.3k machines); this module is offline, so the package offers two paths:
//
//   - Synthesize: a statistical twin of the trace — per-container CPU
//     utilization with a diurnal base, heavy-tailed container sizes and
//     bursty noise, aggregated to a cluster-level request-rate multiplier.
//   - LoadCSV: a reader for the real trace's container_usage.csv schema, so
//     the genuine data drops in unchanged when available.
//
// The evaluation only consumes the aggregate: a time-varying multiplier
// applied to the legitimate arrival rate. Both paths produce the same Trace
// type.
package trace

import (
	"fmt"
	"math"

	"antidope/internal/rng"
	"antidope/internal/stats"
)

// Trace is a cluster-level activity process sampled on a fixed interval.
type Trace struct {
	// IntervalSec is the sampling period of Samples.
	IntervalSec float64
	// Samples holds the mean cluster CPU utilization in [0,1] per interval.
	Samples []float64
	// Machines is how many machines contributed (metadata).
	Machines int
}

// Duration returns the trace length in seconds.
func (t *Trace) Duration() float64 {
	return float64(len(t.Samples)) * t.IntervalSec
}

// At returns the utilization at time ts (sample-and-hold; clamped to the
// trace range, wrapping would hide trace exhaustion bugs).
func (t *Trace) At(ts float64) float64 {
	if len(t.Samples) == 0 {
		return 0
	}
	idx := int(ts / t.IntervalSec)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(t.Samples) {
		idx = len(t.Samples) - 1
	}
	return t.Samples[idx]
}

// RateFn converts the trace into an arrival-rate function for legitimate
// traffic: rate(t) = baseRPS · util(t)/meanUtil, so baseRPS is the mean
// request rate over the trace.
func (t *Trace) RateFn(baseRPS float64) func(float64) float64 {
	mean := t.MeanUtil()
	if mean <= 0 {
		return func(float64) float64 { return baseRPS }
	}
	return func(ts float64) float64 {
		return baseRPS * t.At(ts) / mean
	}
}

// MeanUtil returns the average utilization over the whole trace.
func (t *Trace) MeanUtil() float64 {
	if len(t.Samples) == 0 {
		return 0
	}
	var s stats.Summary
	for _, v := range t.Samples {
		s.Add(v)
	}
	return s.Mean()
}

// PeakToMean returns the peak-to-mean utilization ratio, the statistic that
// justifies power oversubscription in the first place.
func (t *Trace) PeakToMean() float64 {
	mean := t.MeanUtil()
	if mean <= 0 {
		return 0
	}
	peak := 0.0
	for _, v := range t.Samples {
		if v > peak {
			peak = v
		}
	}
	return peak / mean
}

// Window returns a sub-trace covering [from, to) seconds.
func (t *Trace) Window(from, to float64) *Trace {
	lo := int(from / t.IntervalSec)
	hi := int(math.Ceil(to / t.IntervalSec))
	if lo < 0 {
		lo = 0
	}
	if hi > len(t.Samples) {
		hi = len(t.Samples)
	}
	if lo >= hi {
		return &Trace{IntervalSec: t.IntervalSec, Machines: t.Machines}
	}
	out := &Trace{IntervalSec: t.IntervalSec, Machines: t.Machines}
	out.Samples = append(out.Samples, t.Samples[lo:hi]...)
	return out
}

// SynthConfig parameterizes the statistical twin of the Alibaba trace.
type SynthConfig struct {
	// Machines is the number of simulated machines (the real trace: ~1300).
	Machines int
	// Hours is the trace length (the real trace: 12).
	Hours float64
	// IntervalSec is the sampling period (the real trace samples at 60 s
	// granularity for container usage).
	IntervalSec float64
	// MeanUtil is the target mean cluster utilization. Published analyses
	// of the 2018 trace put mean CPU utilization near 40%.
	MeanUtil float64
	// DiurnalAmp is the amplitude of the day/night swing as a fraction of
	// MeanUtil.
	DiurnalAmp float64
	// NoiseCV is the relative short-term noise per machine.
	NoiseCV float64
	// BurstProb is the per-interval probability of a cluster-wide burst
	// (flash event) and BurstScale its multiplicative size.
	BurstProb  float64
	BurstScale float64
	// Seed drives all randomness.
	Seed uint64
}

// DefaultSynth matches the shape of the Alibaba 2018 trace at the paper's
// scale: 1300 machines, 12 hours, ~40% mean utilization, pronounced diurnal
// swing and occasional flash bursts.
func DefaultSynth() SynthConfig {
	return SynthConfig{
		Machines:    1300,
		Hours:       12,
		IntervalSec: 60,
		MeanUtil:    0.40,
		DiurnalAmp:  0.45,
		NoiseCV:     0.25,
		BurstProb:   0.01,
		BurstScale:  1.5,
		Seed:        2019,
	}
}

// Validate reports whether the configuration is usable.
func (c SynthConfig) Validate() error {
	if c.Machines <= 0 {
		return fmt.Errorf("trace: machines %d must be positive", c.Machines)
	}
	if c.Hours <= 0 || c.IntervalSec <= 0 {
		return fmt.Errorf("trace: non-positive horizon or interval")
	}
	if c.MeanUtil <= 0 || c.MeanUtil > 1 {
		return fmt.Errorf("trace: mean util %v out of (0,1]", c.MeanUtil)
	}
	if c.DiurnalAmp < 0 || c.DiurnalAmp >= 1 {
		return fmt.Errorf("trace: diurnal amplitude %v out of [0,1)", c.DiurnalAmp)
	}
	return nil
}

// Synthesize generates the trace. Per-machine weights are bounded-Pareto
// (a few hot containers dominate, as in the real trace); the cluster signal
// is a diurnal sinusoid with AR(1)-smoothed noise plus rare bursts.
func Synthesize(cfg SynthConfig) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rnd := rng.New(cfg.Seed)
	n := int(cfg.Hours * 3600 / cfg.IntervalSec)
	if n < 1 {
		n = 1
	}

	// Heavy-tailed machine weights, normalized to mean 1.
	weights := make([]float64, cfg.Machines)
	var wsum float64
	wrnd := rnd.Split("weights")
	for i := range weights {
		weights[i] = wrnd.Pareto(1.8, 0.3, 10)
		wsum += weights[i]
	}
	for i := range weights {
		weights[i] *= float64(cfg.Machines) / wsum
	}

	// Each machine gets a small phase offset so the cluster aggregate is a
	// smoothed diurnal rather than a pure sinusoid.
	phase := make([]float64, cfg.Machines)
	prnd := rnd.Split("phase")
	for i := range phase {
		phase[i] = prnd.NormFloat64() * 0.3
	}

	nrnd := rnd.Split("noise")
	brnd := rnd.Split("burst")
	ar := make([]float64, cfg.Machines) // AR(1) noise state per machine
	const arCoef = 0.8

	out := &Trace{IntervalSec: cfg.IntervalSec, Machines: cfg.Machines}
	out.Samples = make([]float64, n)
	for k := 0; k < n; k++ {
		tHours := float64(k) * cfg.IntervalSec / 3600
		burst := 1.0
		if brnd.Bool(cfg.BurstProb) {
			burst = cfg.BurstScale
		}
		var total float64
		for m := 0; m < cfg.Machines; m++ {
			// Diurnal base: one full cycle per 24 h; the 12 h trace sees
			// roughly half a cycle (a climb to the daily peak), matching
			// the published shape.
			diurnal := 1 + cfg.DiurnalAmp*math.Sin(2*math.Pi*tHours/24+phase[m]-math.Pi/2)
			ar[m] = arCoef*ar[m] + math.Sqrt(1-arCoef*arCoef)*nrnd.NormFloat64()
			noise := 1 + cfg.NoiseCV*ar[m]
			if noise < 0.05 {
				noise = 0.05
			}
			u := cfg.MeanUtil * weights[m] * diurnal * noise * burst
			if u < 0 {
				u = 0
			}
			if u > 1 {
				u = 1
			}
			total += u
		}
		out.Samples[k] = total / float64(cfg.Machines)
	}
	return out, nil
}

// OversubscriptionReport summarizes how far a trace justifies power
// oversubscription — the premise of the whole paper. Power fractions are
// relative to nameplate via a simple idle-floor mapping: a cluster at
// utilization u draws roughly idleFrac + (1-idleFrac)·u of nameplate.
type OversubscriptionReport struct {
	MeanUtil float64
	P99Util  float64
	PeakUtil float64
	// MeanPowerFrac / P99PowerFrac / PeakPowerFrac are the corresponding
	// power draws as fractions of nameplate.
	MeanPowerFrac float64
	P99PowerFrac  float64
	PeakPowerFrac float64
	// SafeBudgetFrac is the budget (fraction of nameplate) that covers the
	// 99.9th-percentile power of the trace — the aggressive-but-benign
	// provisioning point the paper's budgets (80-90%) approximate.
	SafeBudgetFrac float64
}

// Oversubscription computes the report. idleFrac is the cluster's idle
// power floor as a fraction of nameplate (the default model: 0.45).
func (t *Trace) Oversubscription(idleFrac float64) OversubscriptionReport {
	var sample stats.Sample
	peak := 0.0
	for _, u := range t.Samples {
		sample.Add(u)
		if u > peak {
			peak = u
		}
	}
	toPower := func(u float64) float64 { return idleFrac + (1-idleFrac)*u }
	rep := OversubscriptionReport{
		MeanUtil: t.MeanUtil(),
		P99Util:  sample.Percentile(99),
		PeakUtil: peak,
	}
	rep.MeanPowerFrac = toPower(rep.MeanUtil)
	rep.P99PowerFrac = toPower(rep.P99Util)
	rep.PeakPowerFrac = toPower(peak)
	rep.SafeBudgetFrac = toPower(sample.Percentile(99.9))
	return rep
}
