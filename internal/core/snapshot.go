package core

import (
	"fmt"
	"sort"
	"sync/atomic"

	"antidope/internal/attack"
	"antidope/internal/cluster"
	"antidope/internal/defense"
	"antidope/internal/firewall"
	"antidope/internal/netlb"
	"antidope/internal/rng"
	"antidope/internal/simtime"
	"antidope/internal/stats"
	"antidope/internal/thermal"
	"antidope/internal/workload"
)

// chainKind identifies one of the grid-aligned recurring chains whose
// same-instant firing order matters: control ticks, attacker epochs, and the
// breaker-reset event all live on (or can coincide with) the slot grid, so a
// fork must reproduce their relative sequence order exactly. Continuous-time
// chains (arrivals, completions) carry RNG-drawn timestamps and never
// coincide bit-identically with the grid.
type chainKind int

const (
	chainDopeTick chainKind = iota
	chainCtrlTick
	chainBreakerReset
)

// gridChain is one pending grid-aligned chain event: when it fires and the
// engine sequence number it held in the parent, the tie-break key for
// same-instant events.
type gridChain struct {
	kind chainKind
	at   float64
	seq  uint64
}

// compSnap is one server's pending completion event.
type compSnap struct {
	at      float64
	pending bool
}

// Snapshot is a copy-on-write image of a simulation mid-run, typically taken
// at end-of-warmup. It owns deep clones of every piece of mutable state —
// component state, RNG stream positions, the measurement ledger — plus the
// small metadata needed to rebuild the pending event chains on a fresh
// engine. Fork materializes an independent simulation from it; a snapshot can
// be forked any number of times, and every fork continues bit-identically to
// how the parent would have run from the capture instant.
//
// Immutable structure is shared across all forks rather than copied: the
// power table, the normalized fault schedule, traffic source specs (their
// rate functions are pure), and the attacker's target rotation.
type Snapshot struct {
	cfg Config
	at  float64

	rnd     *rng.Stream
	dopeRnd *rng.Stream
	factory *workload.Factory
	mix     *workload.Mix
	scheme  defense.Scheme

	cl      *cluster.Cluster
	bal     *netlb.Balancer
	fw      *firewall.Firewall
	breaker *cluster.Breaker
	plant   *thermal.Plant
	flt     *faultRuntime
	net     *netRuntime

	dope        *attack.DopeAttacker
	dopePlan    attack.Plan
	epochBanned map[workload.SourceID]bool
	epochSlow   stats.Summary

	outageUntil float64
	thermalHot  int
	prevRep     defense.SlotReport
	lastEnergyJ float64
	lastTick    float64
	slots       int
	slotsOver   int

	res *Result

	// Pending event-chain metadata. The engine's queue itself is not copied:
	// each chain is re-armed from these few scalars, which is what makes the
	// snapshot cheap — O(state), not O(queue history).
	mixPending  bool
	mixAt       float64
	mixNext     workload.Request // valid when mixPending; value copy
	dopePending bool
	dopeAt      float64
	grid        []gridChain
	comps       []compSnap
	// netPend freezes the delivery layer's in-flight deliveries and retries,
	// sorted by the parent's engine sequence numbers.
	netPend []netFlightSnap
}

// At returns the simulated instant the snapshot was captured at.
func (snap *Snapshot) At() float64 { return snap.at }

// snapshotCount and forkCount are process-wide telemetry totals read by the
// harness's self-observability (run manifests, the live scrape endpoint).
// They are the only package-level mutable state in core, deliberately so:
// pure observation counters that no simulation ever reads, with no effect
// on any run's behaviour or determinism.
var snapshotCount, forkCount atomic.Uint64

// SnapshotStats returns the process-wide totals of snapshots captured and
// forks built since process start. Monotone; safe from any goroutine.
func SnapshotStats() (snapshots, forks uint64) {
	return snapshotCount.Load(), forkCount.Load()
}

// Snapshot captures the simulation's complete mid-run state for later
// forking. Call it between Start and Finish, immediately after a RunTo — the
// engine must hold no pending event at or before the current instant (RunTo
// guarantees that), or the fork would silently skip it.
//
// Two preconditions are checked: the run must be unobserved (an observer is
// a shared external sink; a fork emitting into its parent's trace would
// corrupt it), and the scheme must implement defense.Cloner. The live
// simulation is not disturbed and continues normally afterwards.
func (s *Simulation) Snapshot() (*Snapshot, error) {
	if s.obs != nil {
		return nil, fmt.Errorf("core: cannot snapshot an observed run; attach observers to forks' parents only")
	}
	cloner, ok := s.scheme.(defense.Cloner)
	if !ok {
		return nil, fmt.Errorf("core: scheme %s does not implement defense.Cloner", s.scheme.Name())
	}
	if s.ctrlTicker == nil {
		return nil, fmt.Errorf("core: snapshot before Start")
	}
	snapshotCount.Add(1)

	snap := &Snapshot{
		cfg: s.cfg,
		at:  s.eng.Now(),

		rnd:     s.rnd.Clone(),
		factory: s.factory.Clone(),
		scheme:  cloner.CloneScheme(),

		cl:      s.cl.Clone(),
		fw:      s.fw.Clone(),
		breaker: s.breaker.Clone(),
		flt:     nil,

		dopePlan:  s.dopePlan,
		epochSlow: s.epochSlow,

		outageUntil: s.outageUntil,
		thermalHot:  s.thermalHot,
		prevRep:     s.prevRep,
		lastEnergyJ: s.lastEnergyJ,
		lastTick:    s.lastTick,
		slots:       s.slots,
		slotsOver:   s.slotsOver,

		res: s.res.Clone(),
	}
	// The config's scheme and observer slots must not leak live references
	// out of the parent: the snapshot's own clone stands in for the scheme.
	snap.cfg.Scheme = snap.scheme
	snap.cfg.Observer = nil
	// The balancer clone must index the cloned servers, not the parent's.
	snap.bal = s.bal.Clone(snap.cl.Servers)
	if s.plant != nil {
		snap.plant = s.plant.Clone()
	}
	if s.flt != nil {
		snap.flt = s.flt.clone()
	}
	if s.net != nil {
		snap.net = s.net.clone()
		snap.netPend = s.net.snapFlights()
	}
	if s.mix != nil {
		snap.mix = s.mix.Clone(snap.factory)
	}
	if s.dope != nil {
		snap.dope = s.dope.Clone()
		snap.dopeRnd = s.dopeRnd.Clone()
		snap.epochBanned = make(map[workload.SourceID]bool, len(s.epochBanned))
		for k, v := range s.epochBanned {
			snap.epochBanned[k] = v
		}
	}

	// Pending chains. The mix/dope arrival events carry continuous
	// (RNG-drawn) timestamps; the grid chains additionally record their
	// engine sequence numbers so Fork can reproduce same-instant ordering.
	if s.mixNext != nil {
		snap.mixPending = true
		snap.mixAt = s.mixAt
		snap.mixNext = *s.mixNext
	}
	if s.dopePending {
		snap.dopePending = true
		snap.dopeAt = s.dopeAt
	}
	if s.dopeTicker != nil {
		if ev := s.dopeTicker.NextEvent(); ev.Pending() {
			snap.grid = append(snap.grid, gridChain{kind: chainDopeTick, at: ev.At(), seq: ev.Seq()})
		}
	}
	if ev := s.ctrlTicker.NextEvent(); ev.Pending() {
		snap.grid = append(snap.grid, gridChain{kind: chainCtrlTick, at: ev.At(), seq: ev.Seq()})
	}
	if s.resetEv.Pending() {
		snap.grid = append(snap.grid, gridChain{kind: chainBreakerReset, at: s.resetEv.At(), seq: s.resetEv.Seq()})
	}
	snap.comps = make([]compSnap, len(s.compEvs))
	for i, ev := range s.compEvs {
		if ev.Pending() {
			snap.comps[i] = compSnap{at: ev.At(), pending: true}
		}
	}
	return snap, nil
}

// Fork materializes an independent simulation from the snapshot, positioned
// at the capture instant and ready for RunTo + Finish. Every fork clones the
// snapshot's state again, so forks are independent of each other and the
// snapshot remains reusable.
//
// Determinism: a fork is bit-identical to the parent continuing from the
// capture instant. Component state (including RNG stream positions — see
// DESIGN.md §7) is deep-cloned; the pending event chains are re-armed on a
// fresh engine in an order that reproduces the parent's same-instant firing
// order: fault events first (they were armed at Start and hold the oldest
// sequence numbers), then the grid-aligned chains in their recorded sequence
// order, then the continuous-time chains whose timestamps never coincide.
func (snap *Snapshot) Fork() *Simulation {
	forkCount.Add(1)
	s := &Simulation{
		cfg: snap.cfg,
		eng: simtime.NewEngine(),

		rnd:     snap.rnd.Clone(),
		factory: snap.factory.Clone(),
		scheme:  snap.scheme.(defense.Cloner).CloneScheme(),

		cl:      snap.cl.Clone(),
		fw:      snap.fw.Clone(),
		breaker: snap.breaker.Clone(),

		dopePlan:  snap.dopePlan,
		epochSlow: snap.epochSlow,

		outageUntil: snap.outageUntil,
		thermalHot:  snap.thermalHot,
		prevRep:     snap.prevRep,
		lastEnergyJ: snap.lastEnergyJ,
		lastTick:    snap.lastTick,
		slots:       snap.slots,
		slotsOver:   snap.slotsOver,

		res: snap.res.Clone(),
	}
	s.cfg.Scheme = s.scheme
	s.bal = snap.bal.Clone(s.cl.Servers)
	if snap.plant != nil {
		s.plant = snap.plant.Clone()
	}
	if snap.flt != nil {
		s.flt = snap.flt.clone()
	}
	if snap.net != nil {
		// Before bindCallbacks: the reachability predicate closes over s.net.
		s.net = snap.net.clone()
	}
	if snap.mix != nil {
		s.mix = snap.mix.Clone(s.factory)
	}
	if snap.dope != nil {
		s.dope = snap.dope.Clone()
		s.dopeRnd = snap.dopeRnd.Clone()
		s.epochBanned = make(map[workload.SourceID]bool, len(snap.epochBanned))
		for k, v := range snap.epochBanned {
			s.epochBanned[k] = v
		}
	}
	s.env = &defense.Env{
		Cluster:  s.cl,
		Balancer: s.bal,
		SlotSec:  s.cfg.SlotSec,
		Model:    s.cfg.Cluster.Model,
	}
	if s.flt != nil {
		s.env.Telemetry = s.flt.sensor
	}
	s.bindCallbacks()

	// Clock to the capture instant before arming anything: an empty-queue
	// drain clamps the clock without firing, and every re-armed event is
	// strictly later.
	s.eng.DrainAt(snap.at)

	// Fault events were armed at Start in the parent and hold the oldest
	// sequence numbers of any pending event; re-arm their survivors first, in
	// the original arming order.
	if s.flt != nil {
		s.flt.armFrom(s, snap.at)
	}
	// Grid-aligned chains next, in the parent's sequence order.
	grid := append([]gridChain(nil), snap.grid...)
	sort.Slice(grid, func(i, j int) bool { return grid[i].seq < grid[j].seq })
	for _, g := range grid {
		switch g.kind {
		case chainDopeTick:
			s.dopeTicker = s.eng.Tick(g.at, s.cfg.DopeEpochSec, s.dopeEpoch)
		case chainCtrlTick:
			s.ctrlTicker = s.eng.Tick(g.at, s.cfg.SlotSec, s.controlTick)
		case chainBreakerReset:
			s.resetEv = s.eng.Schedule(g.at, func(float64) { s.breaker.Reset() })
		}
	}
	// Continuous-time chains: the merged-mix arrival, the attacker's next
	// arrival, and the per-server completions. Their timestamps are RNG
	// draws, so relative order against the grid never matters.
	if snap.mixPending {
		req := snap.mixNext
		s.mixNext = &req
		s.mixAt = snap.mixAt
		s.eng.Schedule(snap.mixAt, s.mixFn)
	}
	if snap.dopePending {
		s.dopeAt = snap.dopeAt
		s.dopePending = true
		s.eng.Schedule(snap.dopeAt, s.dopeFn)
	}
	for i, c := range snap.comps {
		if c.pending {
			s.compEvs[i] = s.eng.Schedule(c.at, s.compFns[i])
		}
	}
	// In-flight network deliveries and retries, in the parent's sequence
	// order; their timestamps are RNG-jittered continuous values like the
	// other continuous chains.
	for _, np := range snap.netPend {
		req := np.req
		s.netSchedule(np.at, &req, np.server, np.attempt)
	}
	return s
}
