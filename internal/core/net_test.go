package core_test

import (
	"bytes"
	"testing"

	"antidope/internal/core"
	"antidope/internal/faults"
)

// netChaosConfig layers the network-condition windows onto the fault
// subsystem's chaos scenario: a cluster-wide latency window, a lossy link,
// a partitioned link, and a seeded net-fault generator — on top of the
// crash, telemetry dropout, and DVFS delay already there.
func netChaosConfig() core.Config {
	cfg := chaosConfig()
	cfg.Faults.Events = append(cfg.Faults.Events,
		faults.Event{Kind: faults.NetDelay, At: 20, Duration: 30, Server: faults.AllServers, Param: 0.05},
		faults.Event{Kind: faults.NetLoss, At: 25, Duration: 25, Server: 2, Param: 0.4},
		faults.Event{Kind: faults.NetPartition, At: 35, Duration: 15, Server: 3},
	)
	cfg.Faults.Generator.NetFaults = 2
	return cfg
}

// TestNetFaultReplayIsByteIdentical extends the determinism acceptance
// check to the delivery layer: the same seeded network-condition schedule
// (scripted and generated), run twice, serializes to the same bytes.
func TestNetFaultReplayIsByteIdentical(t *testing.T) {
	first := serializeRun(t, netChaosConfig())
	second := serializeRun(t, netChaosConfig())
	if !bytes.Equal(first, second) {
		t.Fatalf("network-fault replay diverged at byte %d", diffByte(first, second))
	}
}

// TestNetLossRetriesThenDrops pins the retry ledger on a link that loses
// everything: with drop probability 1 on every link for a window, each
// delivery in the window burns its full retry budget and falls out as a
// "net-loss" drop, and the ledger shows both the losses and the retries.
func TestNetLossRetriesThenDrops(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Horizon = 60
	cfg.WarmupSec = 0
	cfg.NormalRPS = 100
	cfg.Faults = &faults.Config{Events: []faults.Event{
		{Kind: faults.NetLoss, At: 20, Duration: 15, Server: faults.AllServers, Param: 1},
	}}
	res := mustRun(t, cfg)
	if res.NetLost == 0 {
		t.Fatal("a loss-probability-1 window recorded no lost deliveries")
	}
	if res.NetRetried == 0 {
		t.Fatal("lost deliveries were never retried")
	}
	if res.DroppedByReason["net-loss"] == 0 {
		t.Fatal("exhausted retries did not drop under reason net-loss")
	}
	if res.CompletedLegit == 0 {
		t.Fatal("nothing completed outside the loss window")
	}
	if res.CompletedLegit+res.DroppedLegit > res.OfferedLegit {
		t.Fatalf("conservation: %d+%d > %d", res.CompletedLegit, res.DroppedLegit, res.OfferedLegit)
	}
}

// TestNetDelayPastTimeoutDrops pins the timeout arm: a latency window far
// beyond the sender's timeout means every delivery in it lands too late,
// is counted as timed out, and drops as "net-timeout" once retries run dry.
func TestNetDelayPastTimeoutDrops(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Horizon = 60
	cfg.WarmupSec = 0
	cfg.NormalRPS = 100
	cfg.Faults = &faults.Config{Events: []faults.Event{
		{Kind: faults.NetDelay, At: 20, Duration: 15, Server: faults.AllServers, Param: 5},
	}}
	res := mustRun(t, cfg)
	if res.NetTimedOut == 0 {
		t.Fatal("a 5s-latency window under a 1s timeout recorded no timeouts")
	}
	if res.DroppedByReason["net-timeout"] == 0 {
		t.Fatal("exhausted retries did not drop under reason net-timeout")
	}
	if res.NetLost != 0 {
		t.Fatalf("NetLost = %d without any loss window", res.NetLost)
	}
}

// TestNetDelayWithinTimeoutDelivers pins the benign-latency path: a delay
// well under the timeout slows requests down without failing any of them —
// deliveries complete, nothing is lost or timed out, and the measured
// response time is visibly worse than the fault-free run's.
func TestNetDelayWithinTimeoutDelivers(t *testing.T) {
	build := func(delayed bool) core.Config {
		cfg := core.DefaultConfig()
		cfg.Horizon = 60
		cfg.WarmupSec = 0
		cfg.NormalRPS = 100
		if delayed {
			cfg.Faults = &faults.Config{Events: []faults.Event{
				{Kind: faults.NetDelay, At: 0, Duration: 60, Server: faults.AllServers, Param: 0.2},
			}}
		}
		return cfg
	}
	clear := mustRun(t, build(false))
	slow := mustRun(t, build(true))
	if slow.NetTimedOut != 0 || slow.NetLost != 0 {
		t.Fatalf("sub-timeout delay failed deliveries: %d timeouts, %d losses",
			slow.NetTimedOut, slow.NetLost)
	}
	if slow.CompletedLegit == 0 {
		t.Fatal("nothing completed through the delayed links")
	}
	if slow.MeanRT() <= clear.MeanRT() {
		t.Fatalf("0.2s of link latency did not raise mean response time: %.4f <= %.4f",
			slow.MeanRT(), clear.MeanRT())
	}
}

// TestNetPartitionDefenseBlindPhysicsReal pins the partition semantics: a
// partitioned server never crashes (physics keep running), traffic routes
// around a single cut link without any unreachable failures, and a total
// partition makes the sender back off, retry, and finally drop under
// "net-unreachable" — then recover when the window closes.
func TestNetPartitionDefenseBlindPhysicsReal(t *testing.T) {
	base := func() core.Config {
		cfg := core.DefaultConfig()
		cfg.Horizon = 60
		cfg.WarmupSec = 0
		cfg.NormalRPS = 100
		return cfg
	}

	one := base()
	one.Faults = &faults.Config{Events: []faults.Event{
		{Kind: faults.NetPartition, At: 20, Duration: 15, Server: 1},
	}}
	res := mustRun(t, one)
	if res.ServerCrashes != 0 {
		t.Fatalf("a partition crashed %d servers; it must only cut the link", res.ServerCrashes)
	}
	if res.DroppedByReason["net-unreachable"] != 0 {
		t.Fatalf("%d unreachable drops with three reachable servers remaining",
			res.DroppedByReason["net-unreachable"])
	}
	if res.CompletedLegit == 0 {
		t.Fatal("nothing completed while routing around one cut link")
	}

	all := base()
	all.Faults = &faults.Config{Events: []faults.Event{
		{Kind: faults.NetPartition, At: 20, Duration: 15, Server: faults.AllServers},
	}}
	res = mustRun(t, all)
	if res.ServerCrashes != 0 {
		t.Fatalf("a total partition crashed %d servers", res.ServerCrashes)
	}
	if res.NetRetried == 0 {
		t.Fatal("a total partition triggered no retries")
	}
	if res.DroppedByReason["net-unreachable"] == 0 {
		t.Fatal("a total partition outlasting the retry budget produced no net-unreachable drops")
	}
	if res.DroppedByReason["no-server"] != 0 {
		t.Fatalf("%d hard no-server drops during a partition; partitioned routes must retry",
			res.DroppedByReason["no-server"])
	}
	if res.CompletedLegit == 0 {
		t.Fatal("service never recovered after the partition healed")
	}
}

// TestForkMatchesReplayUnderNetFaults extends the snapshot determinism
// contract to the delivery layer: a snapshot taken while latency, loss,
// and partition windows are all open — with delayed deliveries and retries
// in flight — must fork into exactly the straight run's bytes, and leave
// the parent untouched.
func TestForkMatchesReplayUnderNetFaults(t *testing.T) {
	build := func() core.Config {
		cfg := forkConfig()
		cfg.Faults.Events = append(cfg.Faults.Events,
			faults.Event{Kind: faults.NetDelay, At: 20, Duration: 30, Server: faults.AllServers, Param: 0.08},
			faults.Event{Kind: faults.NetLoss, At: 25, Duration: 25, Server: 2, Param: 0.4},
			faults.Event{Kind: faults.NetPartition, At: 30, Duration: 20, Server: 3},
		)
		return cfg
	}
	want := serializeResult(t, mustRun(t, build()))

	for _, at := range []float64{22, 40} {
		parent, err := core.New(build())
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		parent.Start()
		parent.RunTo(at)
		snap, err := parent.Snapshot()
		if err != nil {
			t.Fatalf("Snapshot at %g: %v", at, err)
		}
		fork := snap.Fork()
		fork.RunTo(build().Horizon)
		if got := serializeResult(t, fork.Finish()); !bytes.Equal(got, want) {
			t.Errorf("fork from T=%g under net faults diverged at byte %d", at, diffByte(got, want))
		}
		parent.RunTo(build().Horizon)
		if got := serializeResult(t, parent.Finish()); !bytes.Equal(got, want) {
			t.Errorf("parent after snapshot at T=%g diverged at byte %d", at, diffByte(got, want))
		}
	}
}
