package core_test

import (
	"bytes"
	"testing"

	"antidope/internal/attack"
	"antidope/internal/cluster"
	"antidope/internal/core"
	"antidope/internal/defense"
	"antidope/internal/faults"
	"antidope/internal/obs"
	"antidope/internal/power"
	"antidope/internal/workload"
)

// obsChaosConfig is the observability acceptance scenario: the fault
// subsystem's chaos run (flood, breaker, thermal, crash, telemetry dropout,
// DVFS delay, seeded generator) tightened to Low-PB so the defense
// actually actuates, plus the adaptive DOPE attacker, a battery failure
// window, a capacity fade, and a firewall outage — every event-emitting
// subsystem is live.
func obsChaosConfig() core.Config {
	cfg := chaosConfig()
	cfg.Cluster.Budget = cluster.LowPB
	d := attack.DefaultDopeConfig()
	cfg.Dope = &d
	cfg.DopeStart = 10
	// Throttle on the first overshoot slot instead of riding out the
	// actuation bridge: the short overshoot episodes of this scenario must
	// produce dvfs-command events, not only battery bridges.
	ad := defense.NewAntiDope(power.DefaultLadder())
	ad.ActuationDelaySlots = 0
	cfg.Scheme = ad
	// A warm legitimate pool (the Figure 18 recipe): with the baseline
	// close to the tight budget, the flood's onset actually crosses it, so
	// the defense must bridge on the battery and issue DVFS commands.
	cfg.ExtraSources = []core.SourceSpec{{
		Source: workload.Source{
			Class: workload.AliNormal, Origin: workload.Legit,
			Rate: workload.ConstRate(360), Sources: 64, FirstSource: 1000,
		},
		RateCap: 360,
	}, {
		Source: workload.Source{
			Class: workload.WordCount, Origin: workload.Legit,
			Rate: workload.ConstRate(25), Sources: 16, FirstSource: 1300,
		},
		RateCap: 25,
	}}
	// The generator's random firewall flap could merge with the scripted
	// outage into one window running past the horizon, which would leave
	// the close marker unemitted; keep the outage scripted only.
	cfg.Faults.Generator.FirewallFlaps = 0
	cfg.Faults.Events = append(cfg.Faults.Events,
		faults.Event{Kind: faults.BatteryFailure, At: 40, Duration: 10},
		faults.Event{Kind: faults.BatteryFade, At: 70, Param: 0.8},
		faults.Event{Kind: faults.FirewallDown, At: 50, Duration: 10},
		// The delivery layer's event kinds: a benign cluster-wide latency
		// window (net-delay spans), a past-timeout latency spike on one link
		// (net-timeout), a lossy link (net-drop), and a partition window
		// closing before the horizon so both its open and heal markers land.
		faults.Event{Kind: faults.NetDelay, At: 20, Duration: 20, Server: faults.AllServers, Param: 0.05},
		faults.Event{Kind: faults.NetDelay, At: 45, Duration: 5, Server: 1, Param: 2},
		faults.Event{Kind: faults.NetLoss, At: 30, Duration: 15, Server: 2, Param: 0.5},
		faults.Event{Kind: faults.NetPartition, At: 55, Duration: 15, Server: 3},
	)
	return cfg
}

// runObserved executes the scenario with a fresh bus and returns the bus.
func runObserved(t *testing.T, cfg core.Config) *obs.Bus {
	t.Helper()
	bus := obs.NewBus()
	cfg.Observer = bus
	if _, err := core.RunOnce(cfg); err != nil {
		t.Fatalf("RunOnce: %v", err)
	}
	return bus
}

// TestObserverDoesNotPerturbResults pins the zero-interference contract: a
// fully observed chaos run serializes to exactly the bytes of the
// unobserved run. The observer may watch everything and change nothing.
func TestObserverDoesNotPerturbResults(t *testing.T) {
	unobserved := serializeRun(t, obsChaosConfig())

	cfg := obsChaosConfig()
	cfg.Observer = obs.NewBus()
	observed := serializeRun(t, cfg)

	if !bytes.Equal(unobserved, observed) {
		i := 0
		for i < len(unobserved) && i < len(observed) && unobserved[i] == observed[i] {
			i++
		}
		t.Fatalf("attaching an observer changed the run at byte %d", i)
	}
}

// TestObservedExportsDeterministic runs the chaos scenario twice with
// independent buses and requires every exporter's output to be
// byte-identical; the Chrome trace must additionally validate against the
// trace-event subset the exporters promise.
func TestObservedExportsDeterministic(t *testing.T) {
	render := func(bus *obs.Bus) (trace, prom, csv []byte) {
		var tb, pb, cb bytes.Buffer
		if err := bus.WriteChromeTrace(&tb); err != nil {
			t.Fatalf("WriteChromeTrace: %v", err)
		}
		if err := bus.WritePrometheus(&pb); err != nil {
			t.Fatalf("WritePrometheus: %v", err)
		}
		if err := bus.WriteCSV(&cb); err != nil {
			t.Fatalf("WriteCSV: %v", err)
		}
		return tb.Bytes(), pb.Bytes(), cb.Bytes()
	}
	t1, p1, c1 := render(runObserved(t, obsChaosConfig()))
	t2, p2, c2 := render(runObserved(t, obsChaosConfig()))

	if !bytes.Equal(t1, t2) {
		t.Error("chrome trace not byte-identical across runs")
	}
	if !bytes.Equal(p1, p2) {
		t.Error("prometheus export not byte-identical across runs")
	}
	if !bytes.Equal(c1, c2) {
		t.Error("CSV export not byte-identical across runs")
	}
	if err := obs.ValidateChromeTrace(t1); err != nil {
		t.Errorf("chrome trace fails validation: %v", err)
	}
}

// TestObservedTimelineDeterministic runs the chaos scenario twice with
// timeline aggregation armed and requires the timeline exports to be
// byte-identical and schema-valid — the integration-level counterpart of
// the replay tests in internal/obs.
func TestObservedTimelineDeterministic(t *testing.T) {
	render := func() (js, csv []byte) {
		cfg := obsChaosConfig()
		bus := obs.NewBus()
		bus.EnableTimeline(0, 0)
		cfg.Observer = bus
		if _, err := core.RunOnce(cfg); err != nil {
			t.Fatalf("RunOnce: %v", err)
		}
		var jb, cb bytes.Buffer
		if err := bus.WriteTimelineJSON(&jb); err != nil {
			t.Fatalf("WriteTimelineJSON: %v", err)
		}
		if err := bus.WriteTimelineCSV(&cb); err != nil {
			t.Fatalf("WriteTimelineCSV: %v", err)
		}
		return jb.Bytes(), cb.Bytes()
	}
	j1, c1 := render()
	j2, c2 := render()
	if !bytes.Equal(j1, j2) {
		t.Error("timeline JSON not byte-identical across runs")
	}
	if !bytes.Equal(c1, c2) {
		t.Error("timeline CSV not byte-identical across runs")
	}
	if err := obs.ValidateTimeline(j1); err != nil {
		t.Errorf("timeline fails validation: %v", err)
	}
}

// TestObservedEventKindCoverage requires the chaos scenario to exercise the
// event kinds its configuration guarantees: the request lifecycle, the
// defense's frequency actuation, the scripted faults (crash, battery,
// telemetry, firewall outage) with their open/close markers, and the
// periodic power sample.
func TestObservedEventKindCoverage(t *testing.T) {
	bus := runObserved(t, obsChaosConfig())
	seen := make(map[obs.Kind]int)
	bus.Events().Each(func(ev obs.Event) { seen[ev.Kind]++ })

	want := []obs.Kind{
		obs.KindReqArrive, obs.KindReqStart, obs.KindReqComplete, obs.KindReqDrop,
		obs.KindAttackOn, obs.KindAttackOff,
		obs.KindDVFSCommand, obs.KindFreqChange,
		obs.KindBatteryFail, obs.KindBatteryRepair, obs.KindBatteryFade,
		obs.KindFirewallDown, obs.KindFirewallUp,
		obs.KindServerCrash, obs.KindServerRecover,
		obs.KindFaultOpen, obs.KindFaultClose,
		obs.KindNetDelay, obs.KindNetDrop, obs.KindNetTimeout, obs.KindNetRetry,
		obs.KindNetPartition, obs.KindNetHeal,
		obs.KindTelemetry, obs.KindSample,
	}
	for _, k := range want {
		if seen[k] == 0 {
			t.Errorf("scenario emitted no %v events", k)
		}
	}
	if t.Failed() {
		t.Logf("kinds seen: %v", seen)
	}
}
