package core

import (
	"math"
	"testing"

	"antidope/internal/firewall"
	"antidope/internal/queueing"
	"antidope/internal/workload"
)

// These tests validate the discrete-event engine against closed-form
// queueing theory on the cases theory can solve exactly. If the simulator
// drifts from M/G/1-PS on a single-core station, none of its conclusions
// about the paper's scenarios deserve trust.

// psStation runs a single-server station with Poisson AliNormal arrivals at
// the given load factor and returns the measured mean legit sojourn.
func psStation(t *testing.T, cores int, rho float64, horizon float64) float64 {
	t.Helper()
	meanS := workload.Lookup(workload.AliNormal).MeanDemand
	lambda := rho * float64(cores) / meanS
	cfg := DefaultConfig()
	cfg.Cluster.Servers = 1
	cfg.Cluster.Cores = cores
	cfg.Cluster.MaxInflight = 100000 // no admission loss: pure queueing
	cfg.Cluster.BatteryAutonomySec = 0
	cfg.Firewall = firewall.Config{Disabled: true}
	cfg.NormalRPS = lambda
	cfg.NormalSources = 4096 // irrelevant with the firewall off
	cfg.Horizon = horizon
	cfg.WarmupSec = horizon / 5
	cfg.Seed = 12345
	res, err := RunOnce(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DroppedLegit != 0 {
		t.Fatalf("validation station dropped %d requests", res.DroppedLegit)
	}
	return res.MeanRT()
}

func TestValidateMG1PS(t *testing.T) {
	meanS := workload.Lookup(workload.AliNormal).MeanDemand
	for _, rho := range []float64{0.3, 0.5, 0.7} {
		want := queueing.MG1PS{Lambda: rho / meanS, MeanService: meanS}.MeanSojourn()
		got := psStation(t, 1, rho, 400)
		if math.Abs(got-want)/want > 0.12 {
			t.Fatalf("rho=%.1f: simulated sojourn %.4fs vs M/G/1-PS %.4fs (>12%% off)",
				rho, got, want)
		}
	}
}

func TestValidateMulticorePS(t *testing.T) {
	meanS := workload.Lookup(workload.AliNormal).MeanDemand
	for _, rho := range []float64{0.4, 0.7} {
		lambda := rho * 4 / meanS
		want := queueing.PSMulticoreApprox(lambda, meanS, 4)
		got := psStation(t, 4, rho, 300)
		// The multicore PS formula is an approximation; agree within 25%.
		if math.Abs(got-want)/want > 0.25 {
			t.Fatalf("rho=%.1f c=4: simulated %.4fs vs approx %.4fs (>25%% off)",
				rho, got, want)
		}
	}
}

func TestValidateLittlesLaw(t *testing.T) {
	// Throughput × mean sojourn ≈ mean number in system. We check the
	// weaker, directly measurable corollary: measured completions per
	// second approach the offered rate when the station is stable.
	meanS := workload.Lookup(workload.AliNormal).MeanDemand
	rho := 0.6
	lambda := rho / meanS
	cfg := DefaultConfig()
	cfg.Cluster.Servers = 1
	cfg.Cluster.Cores = 1
	cfg.Cluster.MaxInflight = 100000
	cfg.Firewall = firewall.Config{Disabled: true}
	cfg.NormalRPS = lambda
	cfg.Horizon = 400
	cfg.WarmupSec = 50
	res, err := RunOnce(cfg)
	if err != nil {
		t.Fatal(err)
	}
	window := cfg.Horizon - cfg.WarmupSec
	throughput := float64(res.CompletedLegit) / window
	if math.Abs(throughput-lambda)/lambda > 0.05 {
		t.Fatalf("throughput %.2f/s vs offered %.2f/s", throughput, lambda)
	}
}

func TestValidatePSInsensitivity(t *testing.T) {
	// M/G/1-PS sojourn depends only on the mean demand, not its variance.
	// AliNormal (CV 0.8) and a near-deterministic probe must both land on
	// the same theoretical curve. We test by comparing the simulated
	// AliNormal station against theory (done above) and additionally
	// verifying the per-class latencies of two classes with very different
	// CVs but served far below saturation track their means.
	got := psStation(t, 1, 0.5, 400)
	meanS := workload.Lookup(workload.AliNormal).MeanDemand
	want := meanS / (1 - 0.5)
	if math.Abs(got-want)/want > 0.12 {
		t.Fatalf("insensitivity check: %.4f vs %.4f", got, want)
	}
}
