package core

import (
	"antidope/internal/attack"
	"antidope/internal/cluster"
	"antidope/internal/defense"
	"antidope/internal/firewall"
	"antidope/internal/netlb"
	"antidope/internal/obs"
	"antidope/internal/power"
	"antidope/internal/rng"
	"antidope/internal/server"
	"antidope/internal/simtime"
	"antidope/internal/stats"
	"antidope/internal/thermal"
	"antidope/internal/workload"
)

// Source-ID blocks keep traffic populations disjoint for the firewall.
const (
	legitSourceBase  workload.SourceID = 0
	attackSourceBase workload.SourceID = 1 << 20
	dopeSourceBase   workload.SourceID = 1 << 21
)

// Simulation is one assembled run. Build with New, execute with Run.
type Simulation struct {
	cfg    Config
	eng    *simtime.Engine
	cl     *cluster.Cluster
	bal    *netlb.Balancer
	fw     *firewall.Firewall
	scheme defense.Scheme
	env    *defense.Env

	factory *workload.Factory
	mix     *workload.Mix
	rnd     *rng.Stream

	// Adaptive attacker state.
	dope        *attack.DopeAttacker
	dopePlan    attack.Plan
	dopeRnd     *rng.Stream
	epochBanned map[workload.SourceID]bool
	epochSlow   stats.Summary

	breaker *cluster.Breaker
	// resetEv is the handle of the pending breaker-reset event during an
	// outage; Snapshot reads its time and sequence to re-arm it on a fork.
	resetEv     simtime.Event
	outageUntil float64
	plant       *thermal.Plant
	thermalHot  int // slots with any server thermally throttled
	flt         *faultRuntime
	// net is the network-condition delivery layer, built only when the
	// fault schedule carries NetDelay/NetLoss/NetPartition windows; nil
	// keeps every arrival on the historical synchronous path.
	net *netRuntime

	// obs is the run's observer (nil = unobserved fast path); obsFreq is
	// the pre-ControlSlot frequency snapshot used to diff what the scheme
	// issued, allocated once when an observer is attached.
	obs     obs.Observer
	obsFreq []power.GHz

	// Pre-bound callbacks for the recurring event chains, created once so
	// the per-arrival/per-completion path schedules without allocating a
	// fresh closure (see DESIGN.md "Performance model").
	mixFn   func(now float64)
	mixNext *workload.Request
	// mixAt is the scheduled time of the outstanding mix arrival (valid
	// while mixNext != nil); Snapshot uses it to re-arm the chain on a fork.
	mixAt  float64
	dopeFn func(now float64)
	// dopeAt/dopePending mirror mixAt for the adaptive attacker's one
	// outstanding arrival event.
	dopeAt      float64
	dopePending bool
	// dopeTicker/ctrlTicker are the run's periodic chains, retained so
	// Snapshot can read their next fire times.
	dopeTicker *simtime.Ticker
	ctrlTicker *simtime.Ticker
	// compFns[i]/compEvs[i] belong to cl.Servers[i] (server ID == index):
	// the bound completion callback and the handle of the one live
	// completion event; superseded events are cancelled, not left to rot.
	compFns  []func(now float64)
	compEvs  []simtime.Event
	drawsBuf []float64

	res         *Result
	prevRep     defense.SlotReport
	lastEnergyJ float64
	lastTick    float64
	slots       int
	slotsOver   int
}

// New validates the configuration and assembles a simulation.
func New(cfg Config) (*Simulation, error) {
	s := &Simulation{}
	if err := s.init(cfg); err != nil {
		return nil, err
	}
	return s, nil
}

// Reset rebuilds the simulation in place for a fresh run of cfg, recycling
// the two warm arenas a run accumulates — the engine's event pool and the
// factory's request pool — instead of reallocating them. A reset simulation
// is result-identical to New(cfg): pop order depends only on (at, seq) and
// the arenas affect only where structs live, never what they contain.
// Everything else (cluster, balancer, schemes, RNG streams) is rebuilt from
// cfg exactly as New would.
func (s *Simulation) Reset(cfg Config) error {
	eng, factory := s.eng, s.factory
	if eng != nil {
		eng.Reset()
	}
	*s = Simulation{eng: eng, factory: factory}
	return s.init(cfg)
}

// init assembles the simulation from cfg into s. It is New's body, shared
// with Reset: a nil s.eng / s.factory is created fresh, a surviving one is
// recycled with its warm pool intact.
func (s *Simulation) init(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	cfg.Breaker = cfg.Breaker.Defaults()
	cl, err := cluster.New(cfg.Cluster)
	if err != nil {
		return err
	}
	bal, err := netlb.New(cl.Servers, cfg.Policy)
	if err != nil {
		return err
	}
	scheme := cfg.Scheme
	if scheme == nil {
		scheme = defense.NewNone()
	}
	s.cfg = cfg
	if s.eng == nil {
		s.eng = simtime.NewEngine()
	}
	s.cl = cl
	s.bal = bal
	s.fw = firewall.New(cfg.Firewall)
	s.scheme = scheme
	s.rnd = rng.New(cfg.Seed)
	s.env = &defense.Env{
		Cluster:  cl,
		Balancer: bal,
		SlotSec:  cfg.SlotSec,
		Model:    cfg.Cluster.Model,
	}
	if cfg.Breaker.Enabled {
		rating := cl.BudgetW * cfg.Breaker.RatingFrac
		overload := cl.Nameplate() - rating
		if overload <= 0 {
			overload = 0.1 * cl.Nameplate()
		}
		br, err := cluster.NewBreaker(rating, overload, cfg.Breaker.ToleranceSec)
		if err != nil {
			return err
		}
		s.breaker = br
	}
	if cfg.Thermal.Enabled {
		tcfg := cfg.Thermal.Defaults()
		//lint:allow floateq -- exact zero marks an unset config field
		if tcfg.CRACCapacityW == 0 {
			tcfg.CRACCapacityW = cl.BudgetW
		}
		plant, err := thermal.NewPlant(tcfg, len(cl.Servers))
		if err != nil {
			return err
		}
		s.plant = plant
	}
	if sched := cfg.Faults.Build(); !sched.Empty() {
		s.flt = newFaultRuntime(sched, len(cl.Servers), s.rnd.Split("faults/sensor"))
		s.env.Telemetry = s.flt.sensor
		if sched.HasNet() {
			s.net = newNetRuntime(sched, len(cl.Servers), s.rnd, cfg.Net)
			// Telemetry reads ride the same degraded network: the defense's
			// power readings lag, drop, and blind with the link faults.
			s.flt.sensor.AttachNet(sched, s.rnd.Split("faults/net/telemetry"))
		}
	}
	if cfg.Observer != nil {
		s.obs = cfg.Observer
		s.obsFreq = make([]power.GHz, len(cl.Servers))
		for _, sv := range cl.Servers {
			sv.SetObserver(s.obs)
		}
		bal.SetObserver(s.obs)
		s.fw.SetObserver(s.obs)
		cl.UPS.SetObserver(s.obs, s.eng.Now)
		s.env.Obs = s.obs
		if s.flt != nil {
			s.flt.sensor.SetObserver(s.obs)
		}
	}
	if s.factory == nil {
		s.factory = workload.NewFactory(s.rnd.Split("factory"))
	} else {
		s.factory.Reset(s.rnd.Split("factory"))
	}
	s.res = &Result{
		SchemeName:           scheme.Name(),
		BudgetW:              cl.BudgetW,
		NameplateW:           cl.Nameplate(),
		Horizon:              cfg.Horizon,
		LatencyLegit:         &stats.Sample{},
		LatencyAttack:        &stats.Sample{},
		LatencyByClass:       make(map[workload.Class]*stats.Sample),
		DroppedByReason:      make(map[string]uint64),
		LegitDroppedByReason: make(map[string]uint64),
	}

	s.buildTraffic()
	if cfg.Dope != nil {
		s.dope = attack.NewDopeAttacker(*cfg.Dope)
		s.dopePlan = s.dope.Current()
		s.dopeRnd = s.rnd.Split("dope")
		s.epochBanned = make(map[workload.SourceID]bool)
	}
	s.bindCallbacks()
	return nil
}

// bindCallbacks builds the reusable event callbacks once per run. Every
// recurring chain (merged arrivals, adaptive attacker, per-server
// completions) re-arms itself with the same bound function, so the hot
// path's Schedule calls allocate no closures.
func (s *Simulation) bindCallbacks() {
	s.mixFn = func(now float64) {
		req := s.mixNext
		s.mixNext = nil
		s.handleArrival(now, req)
		s.pumpMix()
	}
	s.dopeFn = func(now float64) {
		agents := s.dopePlan.Agents
		src := dopeSourceBase + workload.SourceID(s.dopeRnd.Intn(agents))
		req := s.factory.New(now, s.dopePlan.Class, workload.Attack, src)
		s.handleArrival(now, req)
		s.scheduleDopeArrival(now)
	}
	s.compFns = make([]func(now float64), len(s.cl.Servers))
	s.compEvs = make([]simtime.Event, len(s.cl.Servers))
	for i, sv := range s.cl.Servers {
		sv := sv
		s.compFns[i] = func(now float64) {
			for _, done := range sv.Advance(now) {
				s.recordCompletion(done)
			}
			s.scheduleCompletion(sv)
		}
	}
	// A partitioned server is invisible to the balancer while its physics
	// keep running; bindCallbacks runs on init and Fork, so a forked child
	// gets its own predicate over its own links.
	if s.net != nil {
		s.bal.SetReachable(func(id int) bool {
			return !s.net.links[id].Partitioned(s.eng.Now())
		})
	}
}

// MustNew is New for known-good configurations.
func MustNew(cfg Config) *Simulation {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// buildTraffic assembles the merged legit + static-attack arrival stream.
func (s *Simulation) buildTraffic() {
	var sources []workload.Source
	var caps []float64
	if s.cfg.NormalRPS > 0 {
		rate := workload.ConstRate(s.cfg.NormalRPS)
		cap := s.cfg.NormalRPS
		if s.cfg.Trace != nil {
			rate = s.cfg.Trace.RateFn(s.cfg.NormalRPS)
			// The trace multiplies by util/meanUtil; peak-to-mean bounds it.
			ptm := s.cfg.Trace.PeakToMean()
			if ptm < 1 {
				ptm = 1
			}
			cap = s.cfg.NormalRPS * ptm * 1.01
		}
		sources = append(sources, workload.Source{
			Class:       workload.AliNormal,
			Origin:      workload.Legit,
			Rate:        rate,
			Sources:     s.cfg.NormalSources,
			FirstSource: legitSourceBase,
		})
		caps = append(caps, cap)
	}
	for _, es := range s.cfg.ExtraSources {
		sources = append(sources, es.Source)
		caps = append(caps, es.RateCap)
	}
	base := attackSourceBase
	for _, spec := range s.cfg.Attacks {
		sources = append(sources, spec.Source(base))
		caps = append(caps, spec.RateRPS)
		base += workload.SourceID(spec.Agents)
	}
	if len(sources) > 0 {
		s.mix = workload.NewMix(sources, caps, s.factory, s.rnd.Split("mix"))
	}
}

// Run executes the simulation to the horizon and returns the measurements.
// A Simulation is single-use between resets; Run must be called exactly once
// per New or Reset. Run is Start + RunTo(horizon) + Finish; callers that
// want to pause mid-run (e.g. to Snapshot at end-of-warmup) call the three
// phases themselves.
func (s *Simulation) Run() *Result {
	s.Start()
	s.RunTo(s.cfg.Horizon)
	return s.Finish()
}

// Start arms every event chain — faults, arrivals, the adaptive attacker,
// the control loop — and takes the t=0 sample. Call once, before RunTo.
func (s *Simulation) Start() {
	// A resettable observer (obs.Bus) starts the run clean: the harness
	// reuses the same observer across retry attempts of one job, and only
	// the final attempt's trace should survive.
	if br, ok := s.obs.(interface{ BeginRun() }); ok {
		br.BeginRun()
	}
	s.scheme.Setup(s.env)

	// Fault plan: arm crash/recover and battery events on the engine.
	if s.flt != nil {
		s.flt.arm(s)
	}
	// Ground-truth attack markers for trace analytics; emit-only, scheduled
	// solely when an observer is installed (same contract as fault markers).
	s.armAttackObserver()
	// Arrival pump for the merged static stream.
	if s.mix != nil {
		s.pumpMix()
	}
	// Adaptive attacker: arrival chain plus feedback epochs.
	if s.dope != nil {
		s.scheduleDopeArrival(s.cfg.DopeStart)
		s.dopeTicker = s.eng.Tick(s.cfg.DopeStart+s.cfg.DopeEpochSec, s.cfg.DopeEpochSec, s.dopeEpoch)
	}
	// Power-control loop.
	s.ctrlTicker = s.eng.Tick(s.cfg.SlotSec, s.cfg.SlotSec, s.controlTick)
	// Initial sample at t=0 so series start at the origin.
	s.sample(0)
}

// armAttackObserver schedules emit-only attack-on/attack-off markers
// bracketing every static flood window, plus an open marker at the adaptive
// attacker's start, so analyzers can measure detection lag against the
// ground truth of when the attack began. Like the fault markers, the
// closures mutate nothing and exist only under an observer, so the
// unobserved event sequence (and the goldens) is untouched.
func (s *Simulation) armAttackObserver() {
	if s.obs == nil {
		return
	}
	h := s.cfg.Horizon
	for i := range s.cfg.Attacks {
		spec := s.cfg.Attacks[i]
		if spec.Start >= h {
			continue
		}
		end := spec.Start + spec.Duration
		s.eng.Schedule(spec.Start, func(now float64) {
			if s.obs == nil {
				return
			}
			s.obs.Emit(obs.Event{
				T: now, Kind: obs.KindAttackOn, Server: -1,
				Class: int32(spec.Class), A: end, B: spec.RateRPS,
				Label: spec.Name,
			})
		})
		if end >= h {
			continue
		}
		s.eng.Schedule(end, func(now float64) {
			if s.obs == nil {
				return
			}
			s.obs.Emit(obs.Event{
				T: now, Kind: obs.KindAttackOff, Server: -1,
				Class: int32(spec.Class), A: spec.Start, Label: spec.Name,
			})
		})
	}
	if s.dope != nil && s.cfg.DopeStart < h {
		s.eng.Schedule(s.cfg.DopeStart, func(now float64) {
			if s.obs == nil {
				return
			}
			s.obs.Emit(obs.Event{
				T: now, Kind: obs.KindAttackOn, Server: -1, Class: -1,
				A: h, Label: "dope",
			})
		})
	}
}

// RunTo drains events batch-by-batch until the clock reaches t. Events
// sharing one bit-identical timestamp are handed to the engine's DrainAt in
// a single call; the firing order is exactly what a Step loop would produce.
// RunTo may be called repeatedly with increasing t.
func (s *Simulation) RunTo(t float64) {
	for {
		n, _ := s.eng.DrainAt(t)
		if n == 0 {
			break
		}
	}
}

// Finish closes the books at the horizon and returns the measurements.
func (s *Simulation) Finish() *Result {
	s.finish()
	return s.res
}

// pumpMix schedules the next arrival from the merged stream; each arrival
// event re-arms the pump. At most one mix arrival is outstanding, so the
// pending request rides in s.mixNext and the bound s.mixFn callback is
// reused for every arrival.
func (s *Simulation) pumpMix() {
	a, ok := s.mix.Next(s.cfg.Horizon)
	if !ok {
		return
	}
	s.mixNext = a.Req
	s.mixAt = a.At
	s.eng.Schedule(a.At, s.mixFn)
}

// scheduleDopeArrival arms the adaptive attacker's next request using the
// current plan's rate; rate changes apply from the next arrival on. Like
// the mix pump, the chain has one outstanding event and reuses s.dopeFn.
func (s *Simulation) scheduleDopeArrival(after float64) {
	s.dopePending = false
	rate := s.dopePlan.RPS
	if rate <= 0 {
		return
	}
	at := after + s.dopeRnd.Exp(1/rate)
	if at >= s.cfg.Horizon {
		return
	}
	s.dopeAt = at
	s.dopePending = true
	s.eng.Schedule(at, s.dopeFn)
}

// dopeEpoch closes one probe epoch: build the attacker's feedback from what
// it could externally observe and step the plan.
func (s *Simulation) dopeEpoch(now float64) {
	fb := attack.Feedback{
		BannedAgents: len(s.epochBanned),
		Effective:    s.epochSlow.Count() > 0 && s.epochSlow.Mean() > s.cfg.DopeEffectiveSlowdown,
	}
	s.dopePlan = s.dope.Step(fb)
	s.res.DopeTrace = append(s.res.DopeTrace, DopeEpoch{
		At:        now,
		Class:     s.dopePlan.Class,
		RPS:       s.dopePlan.RPS,
		Agents:    s.dopePlan.Agents,
		Banned:    fb.BannedAgents,
		Effective: fb.Effective,
	})
	s.epochBanned = make(map[workload.SourceID]bool)
	s.epochSlow = stats.Summary{}
}

// handleArrival runs one request through firewall → scheme admission →
// balancer → server.
func (s *Simulation) handleArrival(now float64, req *workload.Request) {
	if s.obs != nil {
		s.obs.Emit(obs.Event{
			T: now, Kind: obs.KindReqArrive, Server: -1,
			Class: int32(req.Class), ID: req.ID, A: float64(req.Origin),
			Label: req.Class.String(),
		})
	}
	measured := req.ArriveAt >= s.cfg.WarmupSec
	if measured {
		if req.Origin == workload.Legit {
			s.res.OfferedLegit++
		} else {
			s.res.OfferedAttack++
		}
	}

	if now < s.outageUntil {
		req.Dropped = true
		req.DropReason = "outage"
		s.recordDrop(req, measured)
		return
	}
	// A firewall outage fails open: every source passes unexamined.
	if s.flt == nil || !s.flt.firewallDown(now) {
		if verdict := s.fw.Observe(now, req); verdict != firewall.Allowed {
			// Rate-limit drops are silent shaping; only bans are the signal the
			// adaptive attacker reacts to. Book the ban before the drop funnel
			// retires the request to the arena.
			if verdict == firewall.Banned && s.dope != nil && req.Source >= dopeSourceBase {
				s.epochBanned[req.Source] = true
			}
			s.recordDrop(req, measured)
			return
		}
	}
	if !s.scheme.Admit(now, req) {
		s.recordDrop(req, measured)
		return
	}
	s.deliver(now, req, 0)
}

// scheduleCompletion re-arms the server's next completion event. Each
// server has at most one live completion event: the previous one is
// cancelled outright (the engine reclaims it) instead of being left in the
// queue as a version-stamped tombstone. Cancel on an already-fired handle
// is inert, so the callback may re-arm its own server freely.
func (s *Simulation) scheduleCompletion(sv *server.Server) {
	s.compEvs[sv.ID].Cancel()
	at, ok := sv.NextCompletion()
	if !ok {
		return
	}
	if at > s.cfg.Horizon {
		// Let the finish() drain handle it; keeping the event would just
		// die at the horizon anyway.
		return
	}
	s.compEvs[sv.ID] = s.eng.Schedule(at, s.compFns[sv.ID])
}

// controlTick is the per-slot power-management loop.
func (s *Simulation) controlTick(now float64) {
	// Bring every server to the decision instant (may surface completions).
	for _, sv := range s.cl.Servers {
		for _, done := range sv.Advance(now) {
			s.recordCompletion(done)
		}
	}
	// Close the books on the slot that just ended.
	s.accountSlot(now)

	// Telemetry plane: deliver this instant's (possibly faulted) power
	// reading before the scheme looks, and snapshot pre-decision state for
	// the DVFS actuation faults.
	if s.flt != nil {
		s.flt.preControl(now, s)
	}
	if s.obs != nil {
		for i, sv := range s.cl.Servers {
			s.obsFreq[i] = sv.Freq()
		}
	}
	rep := s.scheme.ControlSlot(now, s.env)
	s.prevRep = rep
	// Diff the scheme's issued frequency commands before the actuation
	// faults intercept them: dvfs-command is what was ordered, the servers'
	// freq-change events are what actually landed.
	if s.obs != nil {
		for i, sv := range s.cl.Servers {
			//lint:allow floateq -- both sides come from the same discrete DVFS ladder
			if f := sv.Freq(); f != s.obsFreq[i] {
				s.obs.Emit(obs.Event{
					T: now, Kind: obs.KindDVFSCommand, Server: int32(i),
					A: float64(s.obsFreq[i]), B: float64(f),
				})
			}
		}
	}
	// DVFS actuation faults intercept what the scheme just decided.
	if s.flt != nil {
		s.flt.postControl(now, s)
	}

	// Frequencies may have moved: re-arm completion events.
	for _, sv := range s.cl.Servers {
		s.scheduleCompletion(sv)
	}
	s.sample(now)

	s.slots++
	if s.cl.PowerNow()-rep.BatteryW > s.cl.BudgetW+1e-9 {
		s.slotsOver++
	}

	if s.breaker != nil && now >= s.outageUntil {
		net := s.cl.PowerNow() - rep.BatteryW
		if s.breaker.Step(s.cfg.SlotSec, net) {
			s.trip(now)
		}
	}

	if s.plant != nil {
		s.thermalTick(now)
	}
}

// thermalTick advances the cooling plane and applies the hardware's
// emergency thermal throttle: a hot server is forced down two ladder steps
// per slot, overriding whatever the scheme decided. Temperatures follow the
// servers' instantaneous draw, so the throttle's own power reduction feeds
// back into the next step.
func (s *Simulation) thermalTick(now float64) {
	if s.drawsBuf == nil {
		s.drawsBuf = make([]float64, len(s.cl.Servers))
	}
	draws := s.drawsBuf
	for i, sv := range s.cl.Servers {
		draws[i] = sv.PowerNow()
	}
	hot := s.plant.Step(s.cfg.SlotSec, draws)
	anyHot := false
	for i, h := range hot {
		if !h {
			continue
		}
		anyHot = true
		sv := s.cl.Servers[i]
		sv.CapFreq(sv.Model.Ladder.StepDown(sv.Freq(), 2))
		s.scheduleCompletion(sv)
		if s.obs != nil {
			s.obs.Emit(obs.Event{
				T: now, Kind: obs.KindThermalThrottle, Server: int32(i),
				A: float64(sv.Freq()), B: s.plant.MaxTempC(),
			})
		}
	}
	if anyHot {
		s.thermalHot++
	}
	s.res.MaxTempC.Add(now, s.plant.MaxTempC())
	s.res.InletTempC.Add(now, s.plant.InletC())
}

// trip opens the breaker: every in-flight request is lost, arrivals are
// refused until power returns, and the breaker is reset at repair time.
func (s *Simulation) trip(now float64) {
	repair := s.cfg.Breaker.RepairSec // defaulted by New
	s.res.Outages++
	until := now + repair
	if until > s.cfg.Horizon {
		until = s.cfg.Horizon
	}
	s.res.OutageSeconds += until - now
	s.outageUntil = until
	if s.obs != nil {
		s.obs.Emit(obs.Event{T: now, Kind: obs.KindBreakerTrip, Server: -1, A: until})
		s.obs.Emit(obs.Event{T: now, Kind: obs.KindOutageStart, Server: -1, A: until})
	}
	for _, sv := range s.cl.Servers {
		for _, r := range sv.FailAll(now) {
			s.recordDrop(r, r.ArriveAt >= s.cfg.WarmupSec)
		}
	}
	if until < s.cfg.Horizon {
		s.resetEv = s.eng.Schedule(until, func(t float64) {
			s.breaker.Reset()
			if s.obs != nil {
				s.obs.Emit(obs.Event{T: t, Kind: obs.KindBreakerReset, Server: -1})
				s.obs.Emit(obs.Event{T: t, Kind: obs.KindOutageEnd, Server: -1})
			}
		})
	}
}

// accountSlot integrates the energy ledger over [lastTick, now) using the
// plan the scheme made at the previous tick.
func (s *Simulation) accountSlot(now float64) {
	dt := now - s.lastTick
	if dt <= 0 {
		return
	}
	total := s.cl.TotalEnergyJ()
	draw := (total - s.lastEnergyJ) / dt
	s.lastEnergyJ = total
	s.lastTick = now
	s.cl.AccountSlot(dt, draw, s.prevRep.BatteryW, s.prevRep.ChargeW)
}

func (s *Simulation) sample(now float64) {
	if s.obs != nil {
		s.obs.Emit(obs.Event{
			T: now, Kind: obs.KindSample, Server: -1,
			A: s.cl.PowerNow(), B: s.cl.UPS.SoC(),
		})
	}
	s.res.Power.Add(now, s.cl.PowerNow())
	s.res.Battery.Add(now, s.cl.UPS.SoC())
	s.res.VFRed.Add(now, s.cl.MeanVFReduction())
	s.res.Freq.Add(now, float64(s.cl.MeanFreq()))
	if s.cfg.RecordPerServer {
		if s.res.PerServerPower == nil {
			s.res.PerServerPower = make([]stats.Series, len(s.cl.Servers))
		}
		for i, sv := range s.cl.Servers {
			s.res.PerServerPower[i].Add(now, sv.PowerNow())
		}
	}
}

func (s *Simulation) recordCompletion(req *workload.Request) {
	rt := req.ResponseTime()
	if req.ArriveAt < s.cfg.WarmupSec {
		// Pre-warmup completions are unmeasured but still retire the struct:
		// the funnels are the request's last readers, so it goes back to the
		// factory arena for reuse either way.
		s.factory.Free(req)
		return
	}
	if req.Origin == workload.Legit {
		s.res.CompletedLegit++
		s.res.LatencyLegit.Add(rt)
	} else {
		s.res.CompletedAtk++
		s.res.LatencyAttack.Add(rt)
		if s.dope != nil && req.Source >= dopeSourceBase && req.Demand > 0 {
			s.epochSlow.Add(rt / req.Demand)
		}
	}
	byClass := s.res.LatencyByClass[req.Class]
	if byClass == nil {
		byClass = &stats.Sample{}
		s.res.LatencyByClass[req.Class] = byClass
	}
	byClass.Add(rt)
	s.factory.Free(req)
}

func (s *Simulation) recordDrop(req *workload.Request, measured bool) {
	reason := req.DropReason
	if reason == "" {
		reason = "unknown"
	}
	// The trace sees every drop, including pre-warmup ones the measured
	// ledger ignores: recordDrop is the single funnel all refusals flow
	// through (firewall, scheme, balancer, server, outage, crash).
	if s.obs != nil {
		s.obs.Emit(obs.Event{
			T: s.eng.Now(), Kind: obs.KindReqDrop, Server: -1,
			Class: int32(req.Class), ID: req.ID, A: float64(req.Origin),
			Label: reason,
		})
	}
	if !measured {
		s.factory.Free(req)
		return
	}
	s.res.DroppedByReason[reason]++
	if req.Origin == workload.Legit {
		s.res.DroppedLegit++
		s.res.LegitDroppedByReason[reason]++
	} else {
		s.res.DroppedAttack++
	}
	s.factory.Free(req)
}

// finish advances everything to the horizon and assembles the result.
func (s *Simulation) finish() {
	for _, sv := range s.cl.Servers {
		for _, done := range sv.Advance(s.cfg.Horizon) {
			s.recordCompletion(done)
		}
	}
	s.accountSlot(s.cfg.Horizon)
	s.sample(s.cfg.Horizon)

	s.res.UtilityEnergyJ = s.cl.UtilityJ()
	s.res.BatteryEnergyJ = s.cl.BatteryJ()
	s.res.TotalEnergyJ = s.cl.TotalEnergyJ()
	s.res.OverBudgetJ = s.cl.OverBudgetJ()
	s.res.BatteryCycles = s.cl.UPS.Cycles()
	s.res.SuspectRouted = s.bal.RoutedSuspect()
	if s.slots > 0 {
		s.res.FracSlotsOverBudget = float64(s.slotsOver) / float64(s.slots)
	}
	if tok, ok := s.scheme.(*defense.Token); ok {
		s.res.TokenDropFrac = tok.DropFraction()
	}
	if s.plant != nil {
		s.res.ThermalThrottleEvents = s.plant.ThrottleEvents()
		if s.slots > 0 {
			s.res.FracSlotsThermal = float64(s.thermalHot) / float64(s.slots)
		}
	}
}

// Cluster exposes the underlying cluster for white-box experiments (e.g.
// forcing a battery state before the attack lands).
func (s *Simulation) Cluster() *cluster.Cluster { return s.cl }

// Firewall exposes the perimeter defense for white-box experiments.
func (s *Simulation) Firewall() *firewall.Firewall { return s.fw }

// RunOnce is the package-level convenience: assemble and run in one call.
//
// RunOnce is safe to call from multiple goroutines at once as long as the
// configurations do not share mutable state: the simulation holds no
// package-level mutable variables, copies the source and attack specs by
// value during assembly, and seeds its RNG from cfg.Seed alone. The two
// sharing hazards are the caller's: cfg.Scheme instances are stateful and
// must be fresh per call, and spec slices must not be mutated while a run is
// in flight. internal/harness builds on this guarantee.
func RunOnce(cfg Config) (*Result, error) {
	sim, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return sim.Run(), nil
}

// Ladder returns the configuration's frequency ladder, the argument every
// scheme constructor wants.
func Ladder(cfg Config) power.Ladder { return cfg.Cluster.Model.Ladder }
