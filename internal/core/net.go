package core

import (
	"fmt"
	"sort"

	"antidope/internal/faults"
	"antidope/internal/obs"
	"antidope/internal/rng"
	"antidope/internal/server"
	"antidope/internal/workload"
)

// netRuntime is the delivery layer between the balancer and the servers,
// built only when the fault schedule carries network-condition windows
// (faults.Schedule.HasNet). It owns one faults.Link per server and the
// seeded backoff stream of the retry machinery; internal/core consults it
// on every delivery attempt. Outside every window the runtime is
// transparent: deliveries stay synchronous, no stream is consumed, and the
// run is byte-identical to one without the runtime (the inert-schedule
// contract, pinned by TestInertFaultScheduleMatchesBaseline).
type netRuntime struct {
	pol     NetPolicy
	links   []*faults.Link
	backoff *rng.Stream

	// pend tracks every outstanding in-flight delivery and retry so a
	// Snapshot can re-arm them on a fork; entries delete themselves when
	// their event fires. Iteration is confined to snapFlights, which
	// sorts by engine sequence number.
	pend    map[uint64]*netFlight
	nextTok uint64
}

// netFlight is one outstanding network event: a delayed delivery heading
// to a routed server (server >= 0) or a retry awaiting re-route
// (server < 0).
type netFlight struct {
	at      float64
	req     *workload.Request
	server  int32
	attempt int32
	seq     uint64
}

// netFlightSnap is a netFlight frozen for snapshotting: the request rides
// as a value copy because the parent's arena slot is reused once its run
// retires the request.
type netFlightSnap struct {
	at      float64
	req     workload.Request
	server  int32
	attempt int32
	seq     uint64
}

// newNetRuntime builds the runtime over a schedule with network windows.
// Every stream is a dedicated split of the run's root, so building the
// runtime never consumes from — or shifts — any other stream.
func newNetRuntime(sched *faults.Schedule, servers int, rnd *rng.Stream, pol NetPolicy) *netRuntime {
	n := &netRuntime{
		pol:     pol.Defaults(),
		links:   make([]*faults.Link, servers),
		backoff: rnd.Split("faults/net/backoff"),
		pend:    make(map[uint64]*netFlight),
	}
	for i := 0; i < servers; i++ {
		n.links[i] = faults.NewLink(sched, i, rnd.Split(fmt.Sprintf("faults/net/link/%d", i)))
	}
	return n
}

// clone returns an independent copy of the runtime for snapshot forking:
// link cursor positions and stream positions carry over, the pending
// ledger starts empty (Fork re-arms flights from the snapshot's frozen
// list).
func (n *netRuntime) clone() *netRuntime {
	c := &netRuntime{
		pol:     n.pol,
		links:   make([]*faults.Link, len(n.links)),
		backoff: n.backoff.Clone(),
		pend:    make(map[uint64]*netFlight),
		nextTok: n.nextTok,
	}
	for i, l := range n.links {
		c.links[i] = l.Clone()
	}
	return c
}

// snapFlights freezes the pending ledger, sorted by engine sequence number
// so a fork re-arms the flights in the parent's order.
func (n *netRuntime) snapFlights() []netFlightSnap {
	out := make([]netFlightSnap, 0, len(n.pend))
	for _, fl := range n.pend {
		out = append(out, netFlightSnap{
			at: fl.at, req: *fl.req, server: fl.server,
			attempt: fl.attempt, seq: fl.seq,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

// anyPartitioned reports whether any link is inside a partition window at
// now — the discriminator between "every server crashed" (a hard drop)
// and "unreachable behind a partition" (retriable).
func (n *netRuntime) anyPartitioned(now float64) bool {
	for _, l := range n.links {
		if l.Partitioned(now) {
			return true
		}
	}
	return false
}

// deliver runs one delivery attempt for a request: route through the
// balancer (partitioned servers excluded), traverse the destination link
// (loss lottery, delay draw), and admit. With no active network window it
// collapses to the historical synchronous route-and-admit.
func (s *Simulation) deliver(now float64, req *workload.Request, attempt int) {
	sv := s.bal.Route(req)
	if sv == nil {
		if s.net != nil && s.net.anyPartitioned(now) {
			// Everything reachable is down; behind the partition the
			// servers still run, so the sender backs off and retries.
			s.netFail(now, req, attempt, -1, "net-unreachable")
			return
		}
		// Every server is down (fault injection): nothing can serve this.
		req.Dropped = true
		req.DropReason = "no-server"
		s.recordDrop(req, req.ArriveAt >= s.cfg.WarmupSec)
		return
	}
	if s.net != nil {
		link := s.net.links[sv.ID]
		if link.Lost(now) {
			s.res.NetLost++
			if s.obs != nil {
				s.obs.Emit(obs.Event{
					T: now, Kind: obs.KindNetDrop, Server: int32(sv.ID),
					Class: int32(req.Class), ID: req.ID, B: float64(attempt),
				})
			}
			// The sender only learns of the loss when its timeout lapses.
			s.netFail(now+s.net.pol.TimeoutSec, req, attempt, int32(sv.ID), "net-loss")
			return
		}
		if d := link.DelaySec(now); d > 0 {
			if d >= s.net.pol.TimeoutSec {
				// The delivery would land after the sender gave up on it.
				s.res.NetTimedOut++
				if s.obs != nil {
					s.obs.Emit(obs.Event{
						T: now, Kind: obs.KindNetTimeout, Server: int32(sv.ID),
						Class: int32(req.Class), ID: req.ID,
						A: s.net.pol.TimeoutSec, B: float64(attempt),
					})
				}
				s.netFail(now+s.net.pol.TimeoutSec, req, attempt, int32(sv.ID), "net-timeout")
				return
			}
			if s.obs != nil {
				s.obs.Emit(obs.Event{
					T: now, Kind: obs.KindNetDelay, Server: int32(sv.ID),
					Class: int32(req.Class), ID: req.ID,
					A: d, B: float64(attempt),
				})
			}
			s.netSchedule(now+d, req, int32(sv.ID), int32(attempt))
			return
		}
	}
	s.admitTo(now, sv, req)
}

// admitTo is the tail of the historical arrival path: bring the server to
// now, admit, and re-arm its completion chain.
func (s *Simulation) admitTo(now float64, sv *server.Server, req *workload.Request) {
	for _, done := range sv.Advance(now) {
		s.recordCompletion(done)
	}
	if !sv.Admit(now, req) {
		s.recordDrop(req, req.ArriveAt >= s.cfg.WarmupSec)
		return
	}
	s.scheduleCompletion(sv)
}

// netFail handles one failed delivery attempt, known to the sender at
// knownAt (the send instant for unreachable routes, send+timeout for
// losses and late deliveries): either the next retry is scheduled with
// exponential backoff and seeded jitter, or — attempts exhausted, or the
// retry would land past the horizon — the request is dropped under the
// failure's reason. link is the server whose link failed the attempt, or
// -1 when no route existed; it rides on the retry event so the timeline
// can attribute retry storms to links.
func (s *Simulation) netFail(knownAt float64, req *workload.Request, attempt int, link int32, reason string) {
	drop := func() {
		req.Dropped = true
		req.DropReason = reason
		s.recordDrop(req, req.ArriveAt >= s.cfg.WarmupSec)
	}
	if attempt+1 >= s.net.pol.Attempts {
		drop()
		return
	}
	// Backoff doubles per attempt (capped well under float precision) and
	// spreads by the seeded jitter, drawn only on this retry path.
	exp := attempt
	if exp > 30 {
		exp = 30
	}
	back := s.net.pol.BackoffSec * float64(int64(1)<<uint(exp)) *
		(1 + s.net.pol.JitterFrac*s.net.backoff.Float64())
	at := knownAt + back
	if at >= s.cfg.Horizon {
		drop()
		return
	}
	s.res.NetRetried++
	if s.obs != nil {
		s.obs.Emit(obs.Event{
			T: s.eng.Now(), Kind: obs.KindNetRetry, Server: link,
			Class: int32(req.Class), ID: req.ID,
			A: at, B: float64(attempt + 1), Label: reason,
		})
	}
	s.netSchedule(at, req, -1, int32(attempt+1))
}

// netSchedule arms one network event — a delayed delivery (server >= 0) or
// a retry (server < 0) — and books it in the pending ledger for snapshots.
func (s *Simulation) netSchedule(at float64, req *workload.Request, server, attempt int32) {
	tok := s.net.nextTok
	s.net.nextTok++
	fl := &netFlight{at: at, req: req, server: server, attempt: attempt}
	s.net.pend[tok] = fl
	ev := s.eng.Schedule(at, func(now float64) {
		delete(s.net.pend, tok)
		s.netFire(now, fl)
	})
	fl.seq = ev.Seq()
}

// netFire lands one network event: retries re-enter deliver (re-routing
// through the balancer, so a healed or different server picks them up);
// delayed deliveries admit to the server chosen at send time, unless the
// destination crashed or partitioned away while the packet was in flight —
// then the sender's timeout has already lapsed and the retry path takes
// over from the delivery instant.
func (s *Simulation) netFire(now float64, fl *netFlight) {
	if fl.server < 0 {
		s.deliver(now, fl.req, int(fl.attempt))
		return
	}
	if now < s.outageUntil {
		fl.req.Dropped = true
		fl.req.DropReason = "outage"
		s.recordDrop(fl.req, fl.req.ArriveAt >= s.cfg.WarmupSec)
		return
	}
	sv := s.cl.Servers[fl.server]
	if !sv.Up() || s.net.links[sv.ID].Partitioned(now) {
		s.netFail(now, fl.req, int(fl.attempt), int32(sv.ID), "net-unreachable")
		return
	}
	s.admitTo(now, sv, fl.req)
}
