package core_test

import (
	"fmt"

	"antidope/internal/attack"
	"antidope/internal/cluster"
	"antidope/internal/core"
	"antidope/internal/defense"
	"antidope/internal/workload"
)

// Example runs the library's central flow: an oversubscribed rack under a
// DOPE flood, defended by Anti-DOPE.
func Example() {
	cfg := core.DefaultConfig()
	cfg.Horizon = 60
	cfg.Cluster.Budget = cluster.MediumPB
	cfg.Scheme = defense.NewAntiDope(core.Ladder(cfg))
	cfg.Attacks = []attack.Spec{{
		Name: "dope", Layer: attack.ApplicationLayer,
		Class: workload.CollaFilt, RateRPS: 60, Agents: 32,
		Start: 10, Duration: 45,
	}}
	res, err := core.RunOnce(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("scheme: %s\n", res.SchemeName)
	fmt.Printf("budget held: %v\n", res.FracSlotsOverBudget < 0.05)
	fmt.Printf("served legit traffic: %v\n", res.Availability() > 0.99)
	// Output:
	// scheme: Anti-DOPE
	// budget held: true
	// served legit traffic: true
}

// ExampleConfig_Validate shows configuration validation.
func ExampleConfig_Validate() {
	cfg := core.DefaultConfig()
	cfg.Horizon = -1
	fmt.Println(cfg.Validate())
	// Output:
	// core: horizon -1 must be positive
}
