package core

import (
	"fmt"
	"io"
	"sort"

	"antidope/internal/stats"
	"antidope/internal/workload"
)

// Result is everything one run measures. Latency samples are restricted to
// requests that arrived after the warmup.
type Result struct {
	// SchemeName and BudgetW echo the run configuration.
	SchemeName string
	BudgetW    float64
	NameplateW float64
	Horizon    float64

	// Power is cluster draw sampled every control slot; Battery is the UPS
	// state of charge; VFRed the mean V/F reduction; MeanFreqGHz the mean
	// operating frequency.
	Power   stats.Series
	Battery stats.Series
	VFRed   stats.Series
	Freq    stats.Series
	// PerServerPower holds one series per server, sampled every control
	// slot, when Config.RecordPerServer is set.
	PerServerPower []stats.Series

	// LatencyLegit / LatencyAttack are end-to-end response times of
	// completed requests by origin.
	LatencyLegit  *stats.Sample
	LatencyAttack *stats.Sample
	// LatencyByClass splits completed-request latency per request class.
	LatencyByClass map[workload.Class]*stats.Sample

	// OfferedLegit counts legitimate requests that arrived (post-warmup);
	// CompletedLegit those that finished. Their ratio is the service
	// availability of Figure 9.
	OfferedLegit   uint64
	CompletedLegit uint64
	OfferedAttack  uint64
	CompletedAtk   uint64

	// DroppedByReason counts every dropped request by mechanism
	// (firewall-ban, token-bucket, server-queue-full).
	DroppedByReason map[string]uint64
	// LegitDroppedByReason is the legitimate-only slice of DroppedByReason —
	// the collateral ledger (e.g. legitimate clients caught by a strict
	// firewall threshold).
	LegitDroppedByReason map[string]uint64
	// DroppedLegit / DroppedAttack split drops by origin.
	DroppedLegit  uint64
	DroppedAttack uint64

	// Energy ledger (whole run, no warmup exclusion — it is an integral).
	UtilityEnergyJ float64
	BatteryEnergyJ float64
	TotalEnergyJ   float64
	OverBudgetJ    float64
	BatteryCycles  int

	// FracSlotsOverBudget is the fraction of control slots sampled above
	// the budget — the residual violation a scheme failed to remove.
	FracSlotsOverBudget float64

	// TokenDropFrac is the Token scheme's abandonment fraction (0 for the
	// other schemes).
	TokenDropFrac float64
	// SuspectRouted counts requests PDF pinned onto suspect servers.
	SuspectRouted uint64

	// Outages counts breaker trips (only with the breaker model enabled);
	// OutageSeconds is total downtime.
	Outages       int
	OutageSeconds float64

	// Thermal plane (only with the thermal model enabled): hottest-server
	// and inlet temperature trajectories, throttle-engagement events, and
	// the fraction of control slots with any server thermally throttled.
	MaxTempC              stats.Series
	InletTempC            stats.Series
	ThermalThrottleEvents int
	FracSlotsThermal      float64

	// Fault-injection ledger (only with Config.Faults set): crash events,
	// orphaned in-flight requests re-queued onto surviving servers, and
	// orphans lost to a full or absent destination.
	ServerCrashes int
	CrashRequeued uint64
	CrashLost     uint64

	// Network-condition ledger (only with network fault windows): deliveries
	// lost on a lossy link, retries scheduled by the delivery layer, and
	// deliveries abandoned because the link delay outran the sender's
	// timeout. A lost or late delivery that later succeeds on a retry counts
	// in both its failure tally and NetRetried.
	NetLost     uint64
	NetRetried  uint64
	NetTimedOut uint64

	// DopeTrace, present when the adaptive attacker ran, records its
	// per-epoch operating points.
	DopeTrace []DopeEpoch
}

// DopeEpoch is one probe epoch of the adaptive attacker.
type DopeEpoch struct {
	At        float64
	Class     workload.Class
	RPS       float64
	Agents    int
	Banned    int
	Effective bool
}

// Clone returns an independent deep copy of the result — every series,
// sample, and counter map — so a forked simulation accumulates measurements
// without touching its parent's ledger.
func (r *Result) Clone() *Result {
	c := *r
	c.Power = r.Power.Clone()
	c.Battery = r.Battery.Clone()
	c.VFRed = r.VFRed.Clone()
	c.Freq = r.Freq.Clone()
	if r.PerServerPower != nil {
		c.PerServerPower = make([]stats.Series, len(r.PerServerPower))
		for i := range r.PerServerPower {
			c.PerServerPower[i] = r.PerServerPower[i].Clone()
		}
	}
	c.LatencyLegit = r.LatencyLegit.Clone()
	c.LatencyAttack = r.LatencyAttack.Clone()
	c.LatencyByClass = make(map[workload.Class]*stats.Sample, len(r.LatencyByClass))
	for k, v := range r.LatencyByClass {
		c.LatencyByClass[k] = v.Clone()
	}
	c.DroppedByReason = make(map[string]uint64, len(r.DroppedByReason))
	for k, v := range r.DroppedByReason {
		c.DroppedByReason[k] = v
	}
	c.LegitDroppedByReason = make(map[string]uint64, len(r.LegitDroppedByReason))
	for k, v := range r.LegitDroppedByReason {
		c.LegitDroppedByReason[k] = v
	}
	c.MaxTempC = r.MaxTempC.Clone()
	c.InletTempC = r.InletTempC.Clone()
	c.DopeTrace = append([]DopeEpoch(nil), r.DopeTrace...)
	return &c
}

// Availability returns completed/offered for legitimate traffic, in [0,1].
// A run that offered nothing reports 1 (nothing was denied).
func (r *Result) Availability() float64 {
	if r.OfferedLegit == 0 {
		return 1
	}
	return float64(r.CompletedLegit) / float64(r.OfferedLegit)
}

// MeanRT returns the mean legitimate response time in seconds.
func (r *Result) MeanRT() float64 { return r.LatencyLegit.Mean() }

// TailRT returns the p-th percentile legitimate response time in seconds.
func (r *Result) TailRT(p float64) float64 { return r.LatencyLegit.Percentile(p) }

// PeakPowerW returns the highest sampled cluster draw.
func (r *Result) PeakPowerW() float64 {
	_, v := r.Power.Max()
	return v
}

// MinBatterySoC returns the lowest sampled state of charge.
func (r *Result) MinBatterySoC() float64 {
	min := 1.0
	for _, p := range r.Battery.Points {
		if p.V < min {
			min = p.V
		}
	}
	return min
}

// Fprint writes a human-readable summary, the shared footer of the CLIs.
func (r *Result) Fprint(w io.Writer) {
	fmt.Fprintf(w, "scheme=%s budget=%.0fW/%.0fW horizon=%.0fs\n",
		r.SchemeName, r.BudgetW, r.NameplateW, r.Horizon)
	fmt.Fprintf(w, "  legit: offered=%d completed=%d availability=%.4f\n",
		r.OfferedLegit, r.CompletedLegit, r.Availability())
	fmt.Fprintf(w, "  legit latency: mean=%.1fms p90=%.1fms p95=%.1fms p99=%.1fms max=%.1fms\n",
		1e3*r.MeanRT(), 1e3*r.TailRT(90), 1e3*r.TailRT(95), 1e3*r.TailRT(99), 1e3*r.LatencyLegit.Max())
	fmt.Fprintf(w, "  attack: offered=%d completed=%d dropped=%d\n",
		r.OfferedAttack, r.CompletedAtk, r.DroppedAttack)
	if len(r.DroppedByReason) > 0 {
		reasons := make([]string, 0, len(r.DroppedByReason))
		for k := range r.DroppedByReason {
			reasons = append(reasons, k)
		}
		sort.Strings(reasons)
		fmt.Fprintf(w, "  drops:")
		for _, k := range reasons {
			fmt.Fprintf(w, " %s=%d", k, r.DroppedByReason[k])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "  power: peak=%.1fW overBudget=%.1fkJ slotsOver=%.1f%%\n",
		r.PeakPowerW(), r.OverBudgetJ/1e3, 100*r.FracSlotsOverBudget)
	fmt.Fprintf(w, "  energy: utility=%.1fkJ battery=%.1fkJ total=%.1fkJ cycles=%d minSoC=%.2f\n",
		r.UtilityEnergyJ/1e3, r.BatteryEnergyJ/1e3, r.TotalEnergyJ/1e3, r.BatteryCycles, r.MinBatterySoC())
	if r.Outages > 0 {
		fmt.Fprintf(w, "  OUTAGE: %d breaker trips, %.0fs of downtime\n", r.Outages, r.OutageSeconds)
	}
	if r.MaxTempC.Len() > 0 {
		_, maxT := r.MaxTempC.Max()
		fmt.Fprintf(w, "  thermal: peak %.1f°C, throttled %.1f%% of slots (%d engagements)\n",
			maxT, 100*r.FracSlotsThermal, r.ThermalThrottleEvents)
	}
	if r.ServerCrashes > 0 {
		fmt.Fprintf(w, "  faults: %d server crashes (%d requeued, %d lost)\n",
			r.ServerCrashes, r.CrashRequeued, r.CrashLost)
	}
	if r.NetLost+r.NetRetried+r.NetTimedOut > 0 {
		fmt.Fprintf(w, "  network: %d deliveries lost, %d timed out, %d retries\n",
			r.NetLost, r.NetTimedOut, r.NetRetried)
	}
	if r.TokenDropFrac > 0 {
		fmt.Fprintf(w, "  token: dropped %.1f%% of packages\n", 100*r.TokenDropFrac)
	}
	if len(r.DopeTrace) > 0 {
		last := r.DopeTrace[len(r.DopeTrace)-1]
		fmt.Fprintf(w, "  dope: %d epochs, final plan %v@%.0frps over %d agents\n",
			len(r.DopeTrace), last.Class, last.RPS, last.Agents)
	}
}
