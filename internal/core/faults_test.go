package core_test

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"antidope/internal/attack"
	"antidope/internal/cluster"
	"antidope/internal/core"
	"antidope/internal/defense"
	"antidope/internal/faults"
	"antidope/internal/power"
	"antidope/internal/report"
	"antidope/internal/workload"
)

// chaosConfig is the acceptance scenario of the fault subsystem: a crash, a
// telemetry dropout, and a DVFS actuation delay on top of the full replay
// scenario (adaptive defense, flood, breaker, thermal), plus a seeded
// generator so the random fault path is exercised too.
func chaosConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Horizon = 90
	cfg.WarmupSec = 5
	cfg.Seed = 0xFA117
	cfg.Scheme = defense.NewAntiDope(power.DefaultLadder())
	cfg.NormalRPS = 90
	cfg.Attacks = []attack.Spec{{
		Name:     "flood",
		Layer:    attack.ApplicationLayer,
		Class:    workload.VictimClasses()[0],
		RateRPS:  450,
		Agents:   16,
		Start:    15,
		Duration: 45,
	}}
	cfg.Breaker = core.BreakerCfg{Enabled: true, ToleranceSec: 5, RepairSec: 10}
	cfg.Thermal.Enabled = true
	cfg.Faults = &faults.Config{
		Events: []faults.Event{
			{Kind: faults.ServerCrash, At: 20, Duration: 25, Server: 1},
			{Kind: faults.TelemetryDropout, At: 30, Duration: 20},
			{Kind: faults.DVFSDelay, At: 15, Duration: 40, Server: faults.AllServers, Param: 3},
		},
		Generator: &faults.GeneratorConfig{
			Seed: 7, Horizon: 90, Servers: 4,
			Crashes: 1, TelemetryFaults: 2, FirewallFlaps: 1,
		},
	}
	return cfg
}

func serializeRun(t *testing.T, cfg core.Config) []byte {
	t.Helper()
	res, err := core.RunOnce(cfg)
	if err != nil {
		t.Fatalf("RunOnce: %v", err)
	}
	var buf bytes.Buffer
	if err := report.JSON(&buf, res, 200); err != nil {
		t.Fatalf("serialize: %v", err)
	}
	res.Fprint(&buf)
	return buf.Bytes()
}

// TestFaultInjectedReplayIsByteIdentical is the determinism acceptance
// check: the same seeded fault schedule (scripted and generated), run
// twice, serializes to the same bytes.
func TestFaultInjectedReplayIsByteIdentical(t *testing.T) {
	first := serializeRun(t, chaosConfig())
	second := serializeRun(t, chaosConfig())
	if !bytes.Equal(first, second) {
		i := 0
		for i < len(first) && i < len(second) && first[i] == second[i] {
			i++
		}
		t.Fatalf("fault-injected replay diverged at byte %d", i)
	}
}

// TestInertFaultScheduleMatchesBaseline pins the transparency contract:
// a fault plan whose every window opens at or after the horizon installs
// the whole runtime (sensor, cursors, arming) yet must reproduce the
// no-faults run byte for byte.
func TestInertFaultScheduleMatchesBaseline(t *testing.T) {
	base := chaosConfig()
	base.Faults = nil
	faulted := chaosConfig()
	faulted.Faults = &faults.Config{Events: []faults.Event{
		{Kind: faults.ServerCrash, At: 1e6, Duration: 10, Server: 0},
		{Kind: faults.TelemetryNoise, At: 1e6, Duration: 10, Param: 0.5},
		{Kind: faults.FirewallDown, At: 1e6, Duration: 10},
		// The network kinds are the strictest case: any of them present
		// makes core install the whole delivery/retry layer (links, backoff
		// stream, reachability predicate), which must still change nothing.
		{Kind: faults.NetDelay, At: 1e6, Duration: 10, Server: 0, Param: 0.5},
		{Kind: faults.NetLoss, At: 1e6, Duration: 10, Server: 1, Param: 0.5},
		{Kind: faults.NetPartition, At: 1e6, Duration: 10, Server: 2},
	}}
	if !bytes.Equal(serializeRun(t, base), serializeRun(t, faulted)) {
		t.Fatal("an inert fault schedule changed the run")
	}
}

// TestServerCrashRedistributesInflight: a crash mid-run books the event,
// accounts every orphan as requeued or lost, and the node's recovery keeps
// the run serving.
func TestServerCrashRedistributesInflight(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Horizon = 60
	cfg.WarmupSec = 0
	cfg.NormalRPS = 200 // keep queues busy so the crash finds orphans
	cfg.Faults = &faults.Config{Events: []faults.Event{
		{Kind: faults.ServerCrash, At: 20, Duration: 15, Server: 0},
	}}
	res, err := core.RunOnce(cfg)
	if err != nil {
		t.Fatalf("RunOnce: %v", err)
	}
	if res.ServerCrashes != 1 {
		t.Fatalf("ServerCrashes = %d, want 1", res.ServerCrashes)
	}
	if res.CrashRequeued == 0 {
		t.Fatal("a loaded server crashed but nothing was requeued")
	}
	if res.CompletedLegit == 0 {
		t.Fatal("nothing completed despite three surviving servers")
	}
	if res.CompletedLegit+res.DroppedLegit > res.OfferedLegit {
		t.Fatalf("conservation: %d+%d > %d", res.CompletedLegit, res.DroppedLegit, res.OfferedLegit)
	}
}

// TestTelemetryDropoutDegradesControl: blinding the sensor during the
// attack leaves more slots over budget than perfect telemetry — the scheme
// keeps actuating on the last good reading instead of the real peak.
func TestTelemetryDropoutDegradesControl(t *testing.T) {
	build := func(blind bool) core.Config {
		cfg := core.DefaultConfig()
		cfg.Horizon = 90
		cfg.WarmupSec = 5
		cfg.Cluster.Budget = cluster.MediumPB // under-provisioned: peaks are real
		cfg.Scheme = defense.NewCapping(power.DefaultLadder())
		cfg.NormalRPS = 90
		cfg.Attacks = []attack.Spec{{
			Name: "flood", Layer: attack.ApplicationLayer,
			Class: workload.VictimClasses()[0], RateRPS: 450, Agents: 16,
			Start: 15, Duration: 60,
		}}
		if blind {
			cfg.Faults = &faults.Config{Events: []faults.Event{
				{Kind: faults.TelemetryDropout, At: 10, Duration: 70},
			}}
		}
		return cfg
	}
	clear, err := core.RunOnce(build(false))
	if err != nil {
		t.Fatalf("RunOnce: %v", err)
	}
	blind, err := core.RunOnce(build(true))
	if err != nil {
		t.Fatalf("RunOnce: %v", err)
	}
	if blind.FracSlotsOverBudget <= clear.FracSlotsOverBudget {
		t.Fatalf("dropout did not degrade control: blind %.3f <= clear %.3f slots over budget",
			blind.FracSlotsOverBudget, clear.FracSlotsOverBudget)
	}
}

// TestFirewallDownFailsOpen: with the perimeter down for the whole run a
// network-layer flood that the firewall would ban sails through untouched.
func TestFirewallDownFailsOpen(t *testing.T) {
	build := func(down bool) core.Config {
		cfg := core.DefaultConfig()
		cfg.Horizon = 60
		cfg.WarmupSec = 0
		cfg.NormalRPS = 40
		cfg.Attacks = []attack.Spec{{
			Name: "udp", Layer: attack.NetworkLayer, Class: workload.VolumeFlood,
			RateRPS: 400, Agents: 4, Start: 5, Duration: 50,
		}}
		if down {
			cfg.Faults = &faults.Config{Events: []faults.Event{
				{Kind: faults.FirewallDown, At: 0, Duration: math.Inf(1)},
			}}
		}
		return cfg
	}
	guarded, err := core.RunOnce(build(false))
	if err != nil {
		t.Fatalf("RunOnce: %v", err)
	}
	fwDrops := func(r *core.Result) uint64 {
		return r.DroppedByReason["firewall-ban"] + r.DroppedByReason["firewall-limit"]
	}
	if fwDrops(guarded) == 0 {
		t.Fatal("test premise: the guarded run must see firewall drops")
	}
	open, err := core.RunOnce(build(true))
	if err != nil {
		t.Fatalf("RunOnce: %v", err)
	}
	if n := fwDrops(open); n != 0 {
		t.Fatalf("firewall dropped %d requests while down", n)
	}
}

// TestBreakerDefaults is the satellite's table: zero-value fields pick up
// the documented defaults through the shared orDefault helper, set fields
// survive untouched.
func TestBreakerDefaults(t *testing.T) {
	cases := []struct {
		name string
		in   core.BreakerCfg
		want core.BreakerCfg
	}{
		{
			name: "all-unset",
			in:   core.BreakerCfg{Enabled: true},
			want: core.BreakerCfg{Enabled: true, RatingFrac: 1.05, ToleranceSec: 30, RepairSec: 60},
		},
		{
			name: "all-set",
			in:   core.BreakerCfg{Enabled: true, RatingFrac: 1.2, ToleranceSec: 5, RepairSec: 10},
			want: core.BreakerCfg{Enabled: true, RatingFrac: 1.2, ToleranceSec: 5, RepairSec: 10},
		},
		{
			name: "mixed",
			in:   core.BreakerCfg{RatingFrac: 1.5},
			want: core.BreakerCfg{RatingFrac: 1.5, ToleranceSec: 30, RepairSec: 60},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.in.Defaults(); got != tc.want {
				t.Fatalf("Defaults() = %+v, want %+v", got, tc.want)
			}
		})
	}
}

// decodeFaultEvents turns arbitrary fuzz bytes into a fault event list —
// 18 bytes per event, with the float fields read straight from the bits so
// NaN, infinities, subnormals, and negative times all occur naturally.
func decodeFaultEvents(data []byte) []faults.Event {
	var evs []faults.Event
	for len(data) >= 18 && len(evs) < 64 {
		evs = append(evs, faults.Event{
			Kind:     faults.Kind(int(int8(data[0]))),
			Server:   int(int8(data[1])),
			At:       math.Float64frombits(binary.LittleEndian.Uint64(data[2:])),
			Duration: math.Float64frombits(binary.LittleEndian.Uint64(data[10:])) / 1e3,
			Param:    float64(int8(data[1])) / 4,
		})
		data = data[18:]
	}
	return evs
}

// FuzzFaultSchedule is the chaos fuzz target: any byte soup — malformed,
// overlapping, non-finite fault windows — must normalize into a schedule
// the simulation survives without panicking, and replay identically.
func FuzzFaultSchedule(f *testing.F) {
	f.Add([]byte{}, uint64(1))
	f.Add(bytes.Repeat([]byte{0xFF}, 36), uint64(2))
	f.Add([]byte{0, 1, 0, 0, 0, 0, 0, 0, 0x24, 0x40, 0, 0, 0, 0, 0, 0, 0x59, 0x40}, uint64(3))
	// A lossy link plus a partition (kinds 10 and 11), so the fuzzer starts
	// inside the delivery/retry layer's schedule space.
	f.Add([]byte{
		10, 2, 0, 0, 0, 0, 0, 0, 0x24, 0x40, 0, 0, 0, 0, 0, 0x88, 0xB3, 0x40,
		11, 1, 0, 0, 0, 0, 0, 0, 0x2E, 0x40, 0, 0, 0, 0, 0, 0x88, 0xB3, 0x40,
	}, uint64(4))
	f.Fuzz(func(t *testing.T, data []byte, seed uint64) {
		run := func() *core.Result {
			cfg := core.DefaultConfig()
			cfg.Horizon = 20
			cfg.WarmupSec = 2
			cfg.SlotSec = 1
			cfg.Seed = seed
			cfg.NormalRPS = 30
			cfg.Scheme = defense.NewCapping(power.DefaultLadder())
			cfg.Faults = &faults.Config{Events: decodeFaultEvents(data)}
			res, err := core.RunOnce(cfg)
			if err != nil {
				t.Fatalf("a fault schedule must never make a valid config unrunnable: %v", err)
			}
			return res
		}
		a, b := run(), run()
		if av := a.Availability(); av < 0 || av > 1 || math.IsNaN(av) {
			t.Fatalf("availability out of range: %g", av)
		}
		if a.CompletedLegit+a.DroppedLegit > a.OfferedLegit {
			t.Fatalf("conservation: %d+%d > %d", a.CompletedLegit, a.DroppedLegit, a.OfferedLegit)
		}
		if a.OfferedLegit != b.OfferedLegit || a.CompletedLegit != b.CompletedLegit ||
			a.TotalEnergyJ != b.TotalEnergyJ {
			t.Fatal("fault-injected replay diverged")
		}
	})
}
