package core_test

import (
	"bytes"
	"sync"
	"testing"

	"antidope/internal/attack"
	"antidope/internal/core"
	"antidope/internal/defense"
	"antidope/internal/power"
	"antidope/internal/report"
	"antidope/internal/workload"
)

// replayConfig builds a fresh, fully-featured scenario: adaptive defense,
// a flood attack, breaker and thermal planes all on, so the replay check
// covers every subsystem that consumes randomness or ordering. A new
// Config (and scheme instance) per call keeps the two runs independent.
func replayConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Horizon = 90
	cfg.WarmupSec = 5
	cfg.Seed = 0xA11CE
	cfg.Scheme = defense.NewAntiDope(power.DefaultLadder())
	cfg.NormalRPS = 90
	cfg.Attacks = []attack.Spec{{
		Name:     "flood",
		Layer:    attack.ApplicationLayer,
		Class:    workload.VictimClasses()[0],
		RateRPS:  450,
		Agents:   16,
		Start:    15,
		Duration: 45,
	}}
	cfg.Breaker = core.BreakerCfg{Enabled: true, ToleranceSec: 5, RepairSec: 10}
	cfg.Thermal.Enabled = true
	return cfg
}

// TestDeterministicReplay is the dynamic counterpart of the lint suite:
// the same seeded scenario, run twice, must serialize to byte-identical
// results. Any wall-clock read, global PRNG draw, or map-iteration order
// reaching a result breaks this test.
func TestDeterministicReplay(t *testing.T) {
	serialize := func() []byte {
		res, err := core.RunOnce(replayConfig())
		if err != nil {
			t.Fatalf("RunOnce: %v", err)
		}
		var buf bytes.Buffer
		if err := report.JSON(&buf, res, 200); err != nil {
			t.Fatalf("serialize: %v", err)
		}
		res.Fprint(&buf)
		return buf.Bytes()
	}

	first := serialize()
	second := serialize()
	if !bytes.Equal(first, second) {
		i := 0
		for i < len(first) && i < len(second) && first[i] == second[i] {
			i++
		}
		lo := i - 60
		if lo < 0 {
			lo = 0
		}
		end := func(b []byte) int {
			if i+60 < len(b) {
				return i + 60
			}
			return len(b)
		}
		t.Fatalf("replay diverged at byte %d:\n run1: …%s…\n run2: …%s…",
			i, first[lo:end(first)], second[lo:end(second)])
	}
}

// TestConcurrentRunsAreIndependent backs RunOnce's documented concurrency
// guarantee, which internal/harness relies on: the same scenario run from
// many goroutines at once (each with its own Config and scheme instance, as
// the contract requires) must produce the result a lone sequential run
// produces. Run under -race this also proves the simulations share no state.
func TestConcurrentRunsAreIndependent(t *testing.T) {
	serialize := func(res *core.Result) []byte {
		var buf bytes.Buffer
		if err := report.JSON(&buf, res, 200); err != nil {
			t.Errorf("serialize: %v", err)
		}
		res.Fprint(&buf)
		return buf.Bytes()
	}
	ref, err := core.RunOnce(replayConfig())
	if err != nil {
		t.Fatalf("RunOnce: %v", err)
	}
	want := serialize(ref)

	const goroutines = 8
	got := make([][]byte, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := core.RunOnce(replayConfig())
			if err != nil {
				t.Errorf("goroutine %d: RunOnce: %v", i, err)
				return
			}
			got[i] = serialize(res)
		}(i)
	}
	wg.Wait()
	for i, g := range got {
		if !bytes.Equal(g, want) {
			t.Fatalf("goroutine %d diverged from the sequential run", i)
		}
	}
}
