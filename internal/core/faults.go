package core

import (
	"antidope/internal/faults"
	"antidope/internal/obs"
	"antidope/internal/power"
	"antidope/internal/rng"
	"antidope/internal/server"
)

// faultRuntime applies a normalized faults.Schedule to a running
// simulation. It owns the telemetry sensor the defenses read through, the
// per-server DVFS actuation state, and the firewall-outage cursor; crash
// and battery faults are armed as ordinary engine events. A simulation
// without faults carries a nil *faultRuntime, which costs the hot paths one
// nil check and nothing else.
type faultRuntime struct {
	sched  *faults.Schedule
	sensor *faults.PowerSensor
	fwDown *faults.Cursor

	// Per-server DVFS actuation faults (index == server ID). delayQ holds
	// the scheme's deferred frequency decisions, oldest first; stuckAt is
	// the frequency a stuck server was pinned at when its window opened.
	delay     []*faults.Cursor
	stuck     []*faults.Cursor
	delayQ    [][]power.GHz
	stuckAt   []power.GHz
	stuckHeld []bool
	preFreq   []power.GHz
}

// newFaultRuntime builds the runtime over a non-empty schedule. rnd feeds
// only the telemetry noise fault.
func newFaultRuntime(sched *faults.Schedule, servers int, rnd *rng.Stream) *faultRuntime {
	f := &faultRuntime{
		sched:     sched,
		sensor:    faults.NewPowerSensor(sched, rnd),
		fwDown:    faults.NewCursor(sched.Windows(faults.FirewallDown)),
		delay:     make([]*faults.Cursor, servers),
		stuck:     make([]*faults.Cursor, servers),
		delayQ:    make([][]power.GHz, servers),
		stuckAt:   make([]power.GHz, servers),
		stuckHeld: make([]bool, servers),
		preFreq:   make([]power.GHz, servers),
	}
	for i := 0; i < servers; i++ {
		f.delay[i] = faults.NewCursor(sched.WindowsFor(faults.DVFSDelay, i))
		f.stuck[i] = faults.NewCursor(sched.WindowsFor(faults.DVFSStuck, i))
	}
	return f
}

// arm schedules the discrete fault events — server crash/recover, battery
// string failure/repair, capacity fades — on the engine. Windows opening at
// or past the horizon never fire; windows closing past it never heal.
func (f *faultRuntime) arm(s *Simulation) {
	// Every simulated instant is >= 0, so a negative threshold skips nothing.
	f.armFrom(s, -1)
	f.armObserver(s)
}

// armFrom is arm restricted to events strictly after the given instant: a
// forked simulation resumed at time `after` re-arms only the fault events its
// parent had not yet fired (everything the parent drained through `after` is
// already reflected in the cloned component state). The scheduling order is
// identical to arm's, so same-instant fault events fire in the same relative
// order on a fork as on a fresh run. Window-vs-horizon semantics are arm's:
// windows opening at or past the horizon are skipped whole, even if their
// close would land inside it.
func (f *faultRuntime) armFrom(s *Simulation, after float64) {
	h := s.cfg.Horizon
	for _, sv := range s.cl.Servers {
		sv := sv
		for _, w := range f.sched.WindowsFor(faults.ServerCrash, sv.ID) {
			if w.Start >= h {
				continue
			}
			if w.Start > after {
				s.eng.Schedule(w.Start, func(now float64) { s.crashServer(now, sv) })
			}
			if w.End < h && w.End > after {
				s.eng.Schedule(w.End, func(now float64) { s.recoverServer(now, sv) })
			}
		}
	}
	ups := s.cl.UPS
	for _, w := range f.sched.Windows(faults.BatteryFailure) {
		if w.Start >= h {
			continue
		}
		if w.Start > after {
			s.eng.Schedule(w.Start, func(float64) { ups.SetFailed(true) })
		}
		if w.End < h && w.End > after {
			s.eng.Schedule(w.End, func(float64) { ups.SetFailed(false) })
		}
	}
	for _, ev := range f.sched.Points(faults.BatteryFade) {
		if ev.At >= h || ev.At <= after {
			continue
		}
		frac := ev.Param
		s.eng.Schedule(ev.At, func(float64) { ups.Fade(frac) })
	}
}

// clone returns an independent copy of the fault runtime for snapshot
// forking: cursor positions, the telemetry sensor pipeline, and the DVFS
// actuation state (queued delayed decisions, stuck-pin latches) all carry
// over. The normalized schedule itself is immutable and shared.
func (f *faultRuntime) clone() *faultRuntime {
	c := &faultRuntime{
		sched:     f.sched,
		sensor:    f.sensor.Clone(),
		fwDown:    f.fwDown.Clone(),
		delay:     make([]*faults.Cursor, len(f.delay)),
		stuck:     make([]*faults.Cursor, len(f.stuck)),
		delayQ:    make([][]power.GHz, len(f.delayQ)),
		stuckAt:   append([]power.GHz(nil), f.stuckAt...),
		stuckHeld: append([]bool(nil), f.stuckHeld...),
		preFreq:   append([]power.GHz(nil), f.preFreq...),
	}
	for i := range f.delay {
		c.delay[i] = f.delay[i].Clone()
		c.stuck[i] = f.stuck[i].Clone()
	}
	for i, q := range f.delayQ {
		c.delayQ[i] = append([]power.GHz(nil), q...)
	}
	return c
}

// armObserver schedules emit-only open/close markers for every fault window
// so a trace shows exactly when — and for how long — the infrastructure was
// degraded. Firewall outages additionally get their dedicated kinds, which
// the exporters render on the perimeter track. The scheduled closures mutate
// nothing and exist only when an observer is installed, so the unobserved
// event sequence (and with it the goldens) is untouched.
func (f *faultRuntime) armObserver(s *Simulation) {
	if s.obs == nil {
		return
	}
	h := s.cfg.Horizon
	for _, ev := range f.sched.Events() {
		if ev.At >= h {
			continue
		}
		ev := ev
		end := ev.At + ev.Duration
		label := ev.Kind.String()
		s.eng.Schedule(ev.At, func(now float64) {
			if s.obs == nil {
				return
			}
			s.obs.Emit(obs.Event{
				T: now, Kind: obs.KindFaultOpen, Server: int32(ev.Server),
				Class: -1, A: end, B: ev.Param, Label: label,
			})
			if ev.Kind == faults.FirewallDown {
				s.obs.Emit(obs.Event{T: now, Kind: obs.KindFirewallDown, Server: -1, Class: -1, A: end})
			}
			if ev.Kind == faults.NetPartition {
				s.obs.Emit(obs.Event{T: now, Kind: obs.KindNetPartition, Server: int32(ev.Server), Class: -1, A: end})
			}
		})
		if !ev.Kind.Windowed() || end >= h {
			continue
		}
		s.eng.Schedule(end, func(now float64) {
			if s.obs == nil {
				return
			}
			s.obs.Emit(obs.Event{
				T: now, Kind: obs.KindFaultClose, Server: int32(ev.Server),
				Class: -1, A: ev.At, B: ev.Param, Label: label,
			})
			if ev.Kind == faults.FirewallDown {
				s.obs.Emit(obs.Event{T: now, Kind: obs.KindFirewallUp, Server: -1, Class: -1, A: ev.At})
			}
			if ev.Kind == faults.NetPartition {
				s.obs.Emit(obs.Event{T: now, Kind: obs.KindNetHeal, Server: int32(ev.Server), Class: -1, A: ev.At})
			}
		})
	}
}

// firewallDown reports whether a firewall outage window covers now.
func (f *faultRuntime) firewallDown(now float64) bool {
	_, ok := f.fwDown.Active(now)
	return ok
}

// preControl runs at every control tick after the servers have been
// advanced and before the scheme looks at the world: it delivers the slot's
// telemetry reading and snapshots each server's frequency so postControl
// can tell what the scheme changed.
func (f *faultRuntime) preControl(now float64, s *Simulation) {
	for i, sv := range s.cl.Servers {
		f.preFreq[i] = sv.Freq()
	}
	f.sensor.Sample(now, s.cl.PowerNow())
}

// postControl intercepts the scheme's frequency decisions on servers with
// an active DVFS fault. A delay fault queues the decision and keeps the
// server at its pre-decision frequency until the decision's turn comes — a
// reconfiguration landing Param slots late. A stuck fault pins the server
// at the frequency it held when the window opened; stuck is applied last,
// so it wins over delay.
func (f *faultRuntime) postControl(now float64, s *Simulation) {
	for i, sv := range s.cl.Servers {
		if !sv.Up() {
			continue
		}
		if w, ok := f.delay[i].Active(now); ok {
			f.applyDelay(i, sv, int(w.Param))
		} else if q := f.delayQ[i]; len(q) > 0 {
			// Window closed: the actuator catches up to the newest decision.
			sv.CapFreq(q[len(q)-1])
			f.delayQ[i] = q[:0]
		}
		if _, ok := f.stuck[i].Active(now); ok {
			if !f.stuckHeld[i] {
				f.stuckHeld[i] = true
				f.stuckAt[i] = f.preFreq[i]
			}
			sv.CapFreq(f.stuckAt[i])
		} else {
			f.stuckHeld[i] = false
		}
	}
}

// applyDelay defers the scheme's decision for server i by lag slots.
func (f *faultRuntime) applyDelay(i int, sv *server.Server, lag int) {
	desired := sv.Freq()
	q := append(f.delayQ[i], desired)
	if len(q) > lag {
		sv.CapFreq(q[0])
		copy(q, q[1:])
		q = q[:len(q)-1]
	} else {
		sv.CapFreq(f.preFreq[i])
	}
	f.delayQ[i] = q
}

// crashServer takes one node down and redistributes its in-flight requests
// through the balancer. A crash forfeits partial progress: every orphan
// restarts from scratch on its new server. Orphans that find no live
// server, or whose new server refuses them, are lost.
func (s *Simulation) crashServer(now float64, sv *server.Server) {
	if !sv.Up() {
		return
	}
	for _, done := range sv.Advance(now) {
		s.recordCompletion(done)
	}
	orphans := sv.Crash(now)
	s.compEvs[sv.ID].Cancel()
	s.res.ServerCrashes++
	for _, r := range orphans {
		r.Remaining = r.Demand
		dst := s.bal.Route(r)
		if dst == nil {
			r.Dropped = true
			r.DropReason = "server-crash"
			s.recordDrop(r, r.ArriveAt >= s.cfg.WarmupSec)
			s.res.CrashLost++
			continue
		}
		for _, done := range dst.Advance(now) {
			s.recordCompletion(done)
		}
		if !dst.Admit(now, r) {
			s.recordDrop(r, r.ArriveAt >= s.cfg.WarmupSec)
			s.res.CrashLost++
			continue
		}
		s.res.CrashRequeued++
		if s.obs != nil {
			s.obs.Emit(obs.Event{
				T: now, Kind: obs.KindReqRequeue, Server: int32(dst.ID),
				Class: int32(r.Class), ID: r.ID,
			})
		}
		s.scheduleCompletion(dst)
	}
}

// recoverServer reboots a crashed node; it rejoins the rotation empty and
// at full frequency.
func (s *Simulation) recoverServer(now float64, sv *server.Server) {
	sv.Advance(now)
	sv.Recover(now)
}
