// Package core assembles the full system and is the public API of the
// library: configure a power-constrained cluster behind a load balancer and
// a firewall, drive it with trace-based legitimate traffic plus attack
// traffic (static floods or the adaptive DOPE attacker), defend it with one
// of the Table 2 schemes, and collect the measurements every figure of the
// paper is built from.
package core

import (
	"fmt"

	"antidope/internal/attack"
	"antidope/internal/cluster"
	"antidope/internal/defense"
	"antidope/internal/faults"
	"antidope/internal/firewall"
	"antidope/internal/netlb"
	"antidope/internal/obs"
	"antidope/internal/thermal"
	"antidope/internal/trace"
	"antidope/internal/workload"
)

// SourceSpec pairs an arrival source with the envelope rate the thinning
// sampler needs (an upper bound of Source.Rate over the whole horizon).
type SourceSpec struct {
	Source  workload.Source
	RateCap float64
}

// BreakerCfg enables and sizes the branch-circuit protection model.
type BreakerCfg struct {
	Enabled bool
	// RatingFrac sizes the continuous rating as a fraction of the budget
	// (0 defaults to 1.05 — breakers are rated slightly above the feed).
	RatingFrac float64
	// ToleranceSec is how long a full oversubscription-gap excursion is
	// tolerated before the trip (0 defaults to 30 s).
	ToleranceSec float64
	// RepairSec is the outage duration after a trip before power returns
	// (0 defaults to 60 s).
	RepairSec float64
}

// orDefault substitutes d for an unset (exact-zero) configuration field,
// mirroring thermal.Config.Defaults.
func orDefault(v, d float64) float64 {
	//lint:allow floateq -- exact zero marks an unset config field
	if v == 0 {
		return d
	}
	return v
}

// Defaults returns the configuration with every unset field replaced by its
// documented default: rating 1.05× the budget, 30 s trip tolerance, 60 s
// repair time.
func (b BreakerCfg) Defaults() BreakerCfg {
	b.RatingFrac = orDefault(b.RatingFrac, 1.05)
	b.ToleranceSec = orDefault(b.ToleranceSec, 30)
	b.RepairSec = orDefault(b.RepairSec, 60)
	return b
}

// NetPolicy governs the delivery layer that activates when the fault
// schedule carries network-condition windows (NetDelay/NetLoss/
// NetPartition): a per-request delivery timeout and bounded retries with
// exponential backoff and seeded jitter, all in sim-time. It mirrors
// harness.RetryPolicy's deterministic shape. The zero value selects the
// documented defaults; without network windows the policy is never
// consulted.
type NetPolicy struct {
	// Attempts is the total number of delivery tries per request
	// (re-routed through the balancer each time); <= 0 selects the
	// default of 3.
	Attempts int
	// TimeoutSec is how long the sender waits before declaring one
	// delivery attempt lost or late; 0 selects the default of 1 s.
	TimeoutSec float64
	// BackoffSec is the base retry backoff, doubled per attempt; 0
	// selects the default of 0.05 s.
	BackoffSec float64
	// JitterFrac spreads each backoff by up to this fraction (seeded); 0
	// selects the default of 0.2.
	JitterFrac float64
}

// Defaults returns the policy with every unset field replaced by its
// documented default: 3 attempts, 1 s timeout, 50 ms base backoff, 20%
// jitter.
func (p NetPolicy) Defaults() NetPolicy {
	if p.Attempts <= 0 {
		p.Attempts = 3
	}
	p.TimeoutSec = orDefault(p.TimeoutSec, 1)
	p.BackoffSec = orDefault(p.BackoffSec, 0.05)
	p.JitterFrac = orDefault(p.JitterFrac, 0.2)
	return p
}

// Config describes one simulation run.
type Config struct {
	// Cluster is the power domain under test.
	Cluster cluster.Config
	// Scheme is the defense under test; nil means defense.None.
	Scheme defense.Scheme
	// Firewall is the perimeter defense configuration.
	Firewall firewall.Config
	// Policy spreads requests within a balancer pool.
	Policy netlb.Policy

	// NormalRPS is the mean legitimate request rate; the trace modulates it
	// over time.
	NormalRPS float64
	// NormalSources is how many distinct legitimate clients the traffic is
	// spread across (keeps them under the firewall threshold).
	NormalSources int
	// Trace modulates the legitimate rate; nil uses a flat rate.
	Trace *trace.Trace
	// ExtraSources injects additional arbitrary arrival sources (e.g. a
	// multi-endpoint legitimate mix) alongside the NormalRPS stream.
	ExtraSources []SourceSpec

	// Attacks are static flood specs injected on top of the normal traffic.
	Attacks []attack.Spec
	// Dope, when non-nil, runs the adaptive Figure 12 attacker.
	Dope *attack.DopeConfig
	// DopeStart delays the adaptive attacker's first request.
	DopeStart float64
	// DopeEpochSec is the attacker's probe/feedback period.
	DopeEpochSec float64
	// DopeEffectiveSlowdown is the externally observable slowdown factor of
	// the attacker's own requests above which it judges the attack
	// effective.
	DopeEffectiveSlowdown float64

	// Breaker, when enabled, adds the branch-circuit protection model: a
	// sustained budget violation becomes a real outage (Figure 1's story)
	// instead of only an accounting entry.
	Breaker BreakerCfg

	// RecordPerServer additionally samples each server's power draw every
	// control slot into Result.PerServerPower, for power-topology analysis
	// (internal/topology).
	RecordPerServer bool

	// Faults, when non-nil, injects infrastructure failures from a scripted
	// or generated schedule (internal/faults): server crashes, battery
	// faults, telemetry corruption, DVFS actuation faults, firewall
	// outages. The defenses actuate on the faulted telemetry; the physical
	// ledgers (breaker, energy, thermal) always see the true draw.
	Faults *faults.Config

	// Net tunes the delivery timeout/retry/backoff machinery that engages
	// when Faults carries network-condition windows. The zero value means
	// the documented defaults; it is inert without network windows.
	Net NetPolicy

	// Observer, when non-nil, receives the structured sim-time event stream
	// (request lifecycle, defense actuations, breaker/thermal/firewall/fault
	// transitions) from every layer of the stack. Like Scheme it is stateful:
	// give each run its own observer (or one whose BeginRun resets it). nil
	// keeps every hot path on the unobserved zero-allocation route.
	Observer obs.Observer

	// Thermal, when enabled, adds the cooling plane: server RC temperatures
	// driven by their power draw and the room inlet, a CRAC capacity (0 =
	// sized to the power budget), and the hardware's emergency thermal
	// throttle that overrides every scheme.
	Thermal thermal.Config

	// Horizon is the simulated duration in seconds.
	Horizon float64
	// SlotSec is the power-control period.
	SlotSec float64
	// WarmupSec excludes the initial transient from latency statistics.
	WarmupSec float64
	// Seed drives all randomness in the run.
	Seed uint64
}

// DefaultConfig is a runnable baseline: the paper's 4-node rack at
// Normal-PB, flat legitimate load, no attack, no active defense.
func DefaultConfig() Config {
	return Config{
		Cluster:               cluster.DefaultConfig(),
		Firewall:              firewall.DefaultConfig(),
		Policy:                netlb.LeastLoaded,
		NormalRPS:             120,
		NormalSources:         64,
		Horizon:               120,
		SlotSec:               1,
		WarmupSec:             10,
		DopeEpochSec:          10,
		DopeEffectiveSlowdown: 3,
		Seed:                  1,
	}
}

// Validate reports whether the configuration is runnable.
func (c *Config) Validate() error {
	if c.Horizon <= 0 {
		return fmt.Errorf("core: horizon %g must be positive", c.Horizon)
	}
	if c.SlotSec <= 0 || c.SlotSec > c.Horizon {
		return fmt.Errorf("core: slot %g outside (0, horizon]", c.SlotSec)
	}
	if c.WarmupSec < 0 || c.WarmupSec >= c.Horizon {
		return fmt.Errorf("core: warmup %g outside [0, horizon)", c.WarmupSec)
	}
	if c.NormalRPS < 0 {
		return fmt.Errorf("core: negative normal rate")
	}
	if c.NormalRPS > 0 && c.NormalSources <= 0 {
		return fmt.Errorf("core: normal traffic needs at least one source")
	}
	for i, es := range c.ExtraSources {
		if es.RateCap <= 0 {
			return fmt.Errorf("core: extra source %d has no rate cap", i)
		}
		if !es.Source.Class.Valid() {
			return fmt.Errorf("core: extra source %d has invalid class", i)
		}
	}
	if err := c.Firewall.Validate(); err != nil {
		return err
	}
	for _, a := range c.Attacks {
		if err := a.Validate(); err != nil {
			return err
		}
	}
	if c.Thermal.Enabled {
		if err := c.Thermal.Defaults().Validate(); err != nil {
			return err
		}
	}
	if c.Breaker.Enabled {
		if c.Breaker.RatingFrac < 0 || c.Breaker.ToleranceSec < 0 || c.Breaker.RepairSec < 0 {
			return fmt.Errorf("core: negative breaker parameter")
		}
	}
	if c.Net.Attempts < 0 || c.Net.TimeoutSec < 0 || c.Net.BackoffSec < 0 || c.Net.JitterFrac < 0 {
		return fmt.Errorf("core: negative net policy parameter")
	}
	if c.Dope != nil {
		if err := c.Dope.Validate(); err != nil {
			return err
		}
		if c.DopeEpochSec <= 0 {
			return fmt.Errorf("core: dope epoch %g must be positive", c.DopeEpochSec)
		}
		if c.DopeEffectiveSlowdown <= 1 {
			return fmt.Errorf("core: dope effective slowdown %g must exceed 1", c.DopeEffectiveSlowdown)
		}
	}
	return nil
}
