package core
