package core

import (
	"math"
	"testing"
	"testing/quick"

	"antidope/internal/attack"
	"antidope/internal/cluster"
	"antidope/internal/defense"
	"antidope/internal/power"
	"antidope/internal/workload"
)

// randomConfig builds a small but fully random scenario from fuzz inputs.
func randomConfig(seed uint64, budgetRaw, schemeRaw, classRaw, rateRaw, agentsRaw uint8) Config {
	cfg := DefaultConfig()
	cfg.Horizon = 25
	cfg.WarmupSec = 2
	cfg.Seed = seed
	cfg.Cluster.Budget = cluster.AllBudgetLevels()[int(budgetRaw)%4]
	schemes := []defense.Scheme{
		defense.NewNone(),
		defense.NewCapping(power.DefaultLadder()),
		defense.NewShaving(power.DefaultLadder()),
		defense.NewToken(),
		defense.NewAntiDope(power.DefaultLadder()),
		defense.NewOracle(power.DefaultLadder()),
	}
	cfg.Scheme = schemes[int(schemeRaw)%len(schemes)]
	cfg.NormalRPS = float64(rateRaw%120) + 1
	class := workload.VictimClasses()[int(classRaw)%4]
	if rate := float64(rateRaw) * 3; rate > 0 {
		cfg.Attacks = []attack.Spec{{
			Name: "fuzz", Layer: attack.ApplicationLayer, Class: class,
			RateRPS: rate, Agents: int(agentsRaw%40) + 1,
			Start: 5, Duration: 18,
		}}
	}
	if agentsRaw%3 == 0 {
		cfg.Breaker = BreakerCfg{Enabled: true, ToleranceSec: 5, RepairSec: 5}
	}
	return cfg
}

// The simulator's global invariants must hold for every configuration, not
// just the calibrated scenarios: conservation of requests, bounded
// fractions, physical battery state, monotone time.
func TestQuickSimulationInvariants(t *testing.T) {
	f := func(seed uint64, budgetRaw, schemeRaw, classRaw, rateRaw, agentsRaw uint8) bool {
		cfg := randomConfig(seed, budgetRaw, schemeRaw, classRaw, rateRaw, agentsRaw)
		res, err := RunOnce(cfg)
		if err != nil {
			t.Logf("config rejected: %v", err)
			return false
		}
		// Fractions bounded.
		if av := res.Availability(); av < 0 || av > 1 {
			t.Logf("availability %g", av)
			return false
		}
		if res.FracSlotsOverBudget < 0 || res.FracSlotsOverBudget > 1 {
			return false
		}
		// Request conservation: completions and drops never exceed offers
		// (in-flight remainder at the horizon accounts for the gap).
		if res.CompletedLegit+res.DroppedLegit > res.OfferedLegit {
			t.Logf("legit conservation: %d+%d > %d",
				res.CompletedLegit, res.DroppedLegit, res.OfferedLegit)
			return false
		}
		if res.CompletedAtk+res.DroppedAttack > res.OfferedAttack {
			return false
		}
		// Drop ledger consistency.
		var totalDrops uint64
		for _, n := range res.DroppedByReason {
			totalDrops += n
		}
		if totalDrops != res.DroppedLegit+res.DroppedAttack {
			return false
		}
		// Energy sanity: positive, and utility+battery covers total server
		// energy (charging only adds to utility).
		if res.TotalEnergyJ <= 0 {
			return false
		}
		if res.UtilityEnergyJ+res.BatteryEnergyJ < res.TotalEnergyJ-1e-6 {
			t.Logf("energy books: utility %g + battery %g < total %g",
				res.UtilityEnergyJ, res.BatteryEnergyJ, res.TotalEnergyJ)
			return false
		}
		// Battery SoC physical throughout.
		for _, p := range res.Battery.Points {
			if p.V < -1e-9 || p.V > 1+1e-9 {
				return false
			}
		}
		// Power samples within [0, nameplate].
		for _, p := range res.Power.Points {
			if p.V < 0 || p.V > res.NameplateW+1e-6 {
				return false
			}
		}
		// Series timestamps monotone.
		prev := -1.0
		for _, p := range res.Power.Points {
			if p.T < prev {
				return false
			}
			prev = p.T
		}
		// Latency samples non-negative and below the horizon.
		for _, v := range res.LatencyLegit.Values() {
			if v < 0 || v > cfg.Horizon {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Replaying the same fuzz config twice must give identical results — the
// determinism property extended over the whole random config space.
func TestQuickDeterminismEverywhere(t *testing.T) {
	f := func(seed uint64, budgetRaw, schemeRaw, classRaw, rateRaw, agentsRaw uint8) bool {
		// Schemes carry run state, so each replay needs a fresh config.
		a, err := RunOnce(randomConfig(seed, budgetRaw, schemeRaw, classRaw, rateRaw, agentsRaw))
		if err != nil {
			return false
		}
		b, err := RunOnce(randomConfig(seed, budgetRaw, schemeRaw, classRaw, rateRaw, agentsRaw))
		if err != nil {
			return false
		}
		return a.OfferedLegit == b.OfferedLegit &&
			a.CompletedLegit == b.CompletedLegit &&
			a.TotalEnergyJ == b.TotalEnergyJ &&
			a.MeanRT() == b.MeanRT() &&
			a.Outages == b.Outages
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// FuzzSim is the native-fuzzing entry point CI smoke-runs for 30 s: the
// coverage-guided mutator explores the config space far more aggressively
// than testing/quick's uniform draws. Every discovered input must satisfy
// the global invariants and replay identically.
func FuzzSim(f *testing.F) {
	f.Add(uint64(1), uint8(0), uint8(0), uint8(0), uint8(40), uint8(4))
	f.Add(uint64(0xA11CE), uint8(2), uint8(4), uint8(1), uint8(200), uint8(24))
	f.Add(uint64(42), uint8(3), uint8(5), uint8(3), uint8(0), uint8(3))
	f.Fuzz(func(t *testing.T, seed uint64, budgetRaw, schemeRaw, classRaw, rateRaw, agentsRaw uint8) {
		a, err := RunOnce(randomConfig(seed, budgetRaw, schemeRaw, classRaw, rateRaw, agentsRaw))
		if err != nil {
			t.Skip("config rejected")
		}
		if av := a.Availability(); av < 0 || av > 1 || math.IsNaN(av) {
			t.Fatalf("availability out of range: %g", av)
		}
		if a.CompletedLegit+a.DroppedLegit > a.OfferedLegit {
			t.Fatalf("legit conservation: %d+%d > %d",
				a.CompletedLegit, a.DroppedLegit, a.OfferedLegit)
		}
		if a.TotalEnergyJ <= 0 || math.IsNaN(a.TotalEnergyJ) {
			t.Fatalf("energy books: total %g", a.TotalEnergyJ)
		}
		b, err := RunOnce(randomConfig(seed, budgetRaw, schemeRaw, classRaw, rateRaw, agentsRaw))
		if err != nil {
			t.Fatalf("replay rejected a config the first run accepted: %v", err)
		}
		if a.OfferedLegit != b.OfferedLegit || a.CompletedLegit != b.CompletedLegit ||
			a.TotalEnergyJ != b.TotalEnergyJ || a.PeakPowerW() != b.PeakPowerW() {
			t.Fatalf("replay diverged: offered %d/%d completed %d/%d energy %g/%g peak %g/%g",
				a.OfferedLegit, b.OfferedLegit, a.CompletedLegit, b.CompletedLegit,
				a.TotalEnergyJ, b.TotalEnergyJ, a.PeakPowerW(), b.PeakPowerW())
		}
	})
}
