package core_test

import (
	"testing"

	"antidope/internal/core"
)

// BenchmarkSnapshotFork measures materializing one independent simulation
// from a warmed end-of-warmup snapshot — the amortized setup cost a sweep
// point pays when it forks instead of replaying the warmup. The snapshot is
// taken once outside the timed loop; each iteration is one full Fork (deep
// state clones plus event-chain re-arming).
func BenchmarkSnapshotFork(b *testing.B) {
	cfg := forkConfig()
	parent, err := core.New(cfg)
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	parent.Start()
	parent.RunTo(cfg.WarmupSec)
	snap, err := parent.Snapshot()
	if err != nil {
		b.Fatalf("Snapshot: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sim := snap.Fork(); sim == nil {
			b.Fatal("nil fork")
		}
	}
}
