package core

import (
	"math"
	"testing"

	"antidope/internal/attack"
	"antidope/internal/cluster"
	"antidope/internal/defense"
	"antidope/internal/power"
	"antidope/internal/thermal"
	"antidope/internal/workload"
)

// quiet returns a short, attack-free baseline config.
func quiet() Config {
	cfg := DefaultConfig()
	cfg.Horizon = 60
	cfg.WarmupSec = 5
	return cfg
}

// underAttack returns a Medium-PB config with a steady Colla-Filt flood.
func underAttack(scheme defense.Scheme) Config {
	cfg := DefaultConfig()
	cfg.Horizon = 90
	cfg.WarmupSec = 10
	cfg.Cluster.Budget = cluster.MediumPB
	cfg.Scheme = scheme
	cfg.Attacks = []attack.Spec{
		attack.HTTPLoadTool(workload.CollaFilt, 300, 64, 15, 75),
	}
	return cfg
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	bad := quiet()
	bad.Horizon = 0
	if _, err := New(bad); err == nil {
		t.Fatal("zero horizon accepted")
	}
	bad = quiet()
	bad.SlotSec = 0
	if _, err := New(bad); err == nil {
		t.Fatal("zero slot accepted")
	}
	bad = quiet()
	bad.WarmupSec = bad.Horizon
	if _, err := New(bad); err == nil {
		t.Fatal("warmup >= horizon accepted")
	}
	bad = quiet()
	bad.NormalSources = 0
	if _, err := New(bad); err == nil {
		t.Fatal("zero sources with traffic accepted")
	}
	bad = quiet()
	d := attack.DefaultDopeConfig()
	d.Growth = 0.5
	bad.Dope = &d
	if _, err := New(bad); err == nil {
		t.Fatal("bad dope config accepted")
	}
}

func TestQuietBaselineHealthy(t *testing.T) {
	res, err := RunOnce(quiet())
	if err != nil {
		t.Fatal(err)
	}
	if res.OfferedLegit == 0 {
		t.Fatal("no traffic offered")
	}
	if av := res.Availability(); av < 0.999 {
		t.Fatalf("availability %g under no attack", av)
	}
	// AliNormal demand is 20 ms; an unloaded cluster serves near that.
	mean := res.MeanRT()
	if mean <= 0 || mean > 0.06 {
		t.Fatalf("baseline mean RT %gs, want ~0.02s", mean)
	}
	// Power stays under the Normal-PB budget.
	if res.FracSlotsOverBudget > 0 {
		t.Fatalf("%g%% slots over budget at Normal-PB", 100*res.FracSlotsOverBudget)
	}
	if res.TotalEnergyJ <= 0 || res.UtilityEnergyJ <= 0 {
		t.Fatal("energy ledger empty")
	}
	// Series span the horizon.
	if res.Power.Len() < 50 {
		t.Fatalf("power series %d points", res.Power.Len())
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() *Result {
		res, err := RunOnce(underAttack(defense.NewCapping(power.DefaultLadder())))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.OfferedLegit != b.OfferedLegit || a.CompletedLegit != b.CompletedLegit {
		t.Fatalf("replay diverged: %d/%d vs %d/%d",
			a.OfferedLegit, a.CompletedLegit, b.OfferedLegit, b.CompletedLegit)
	}
	if math.Abs(a.MeanRT()-b.MeanRT()) > 1e-12 {
		t.Fatal("replay latency diverged")
	}
	if math.Abs(a.TotalEnergyJ-b.TotalEnergyJ) > 1e-9 {
		t.Fatal("replay energy diverged")
	}
}

func TestSeedChangesRun(t *testing.T) {
	cfg := quiet()
	a, _ := RunOnce(cfg)
	cfg.Seed = 999
	b, _ := RunOnce(cfg)
	if a.OfferedLegit == b.OfferedLegit && a.MeanRT() == b.MeanRT() {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestAttackRaisesPowerWithoutDefense(t *testing.T) {
	cfg := underAttack(defense.NewNone())
	res, err := RunOnce(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With no defense, the flood must push the cluster over the Medium-PB
	// budget for a sustained share of slots.
	if res.FracSlotsOverBudget < 0.3 {
		t.Fatalf("only %g%% of slots over budget under flood with no defense",
			100*res.FracSlotsOverBudget)
	}
	if res.OverBudgetJ <= 0 {
		t.Fatal("no budget violation energy recorded")
	}
}

func TestCappingEnforcesBudget(t *testing.T) {
	res, err := RunOnce(underAttack(defense.NewCapping(power.DefaultLadder())))
	if err != nil {
		t.Fatal(err)
	}
	// DVFS engages within a slot or two; residual violations must be rare.
	if res.FracSlotsOverBudget > 0.1 {
		t.Fatalf("capping left %g%% of slots over budget", 100*res.FracSlotsOverBudget)
	}
	// And it must actually have throttled.
	if _, v := res.VFRed.Max(); v <= 0 {
		t.Fatal("capping never reduced V/F")
	}
}

func TestShavingSparesPerformanceWhileBatteryLasts(t *testing.T) {
	capping, _ := RunOnce(underAttack(defense.NewCapping(power.DefaultLadder())))
	shaving, _ := RunOnce(underAttack(defense.NewShaving(power.DefaultLadder())))
	// Shaving must use the battery...
	if shaving.BatteryEnergyJ <= 0 {
		t.Fatal("shaving never discharged")
	}
	if shaving.MinBatterySoC() >= 1 {
		t.Fatal("battery SoC never moved")
	}
	// ...and while it lasts, throttle less than capping overall.
	capVF := capping.VFRed.MeanOverTime()
	shaveVF := shaving.VFRed.MeanOverTime()
	if shaveVF >= capVF {
		t.Fatalf("shaving V/F reduction %g >= capping %g", shaveVF, capVF)
	}
}

func TestTokenDropsTraffic(t *testing.T) {
	res, err := RunOnce(underAttack(defense.NewToken()))
	if err != nil {
		t.Fatal(err)
	}
	if res.TokenDropFrac <= 0 {
		t.Fatal("token bucket never dropped")
	}
	if res.DroppedByReason["token-bucket"] == 0 {
		t.Fatal("no token-bucket drops recorded")
	}
}

func TestAntiDopeProtectsLegitLatency(t *testing.T) {
	capping, _ := RunOnce(underAttack(defense.NewCapping(power.DefaultLadder())))
	anti, _ := RunOnce(underAttack(defense.NewAntiDope(power.DefaultLadder())))

	// The headline property: legitimate users fare better under Anti-DOPE
	// than under blind capping, for both mean and tail.
	if anti.MeanRT() >= capping.MeanRT() {
		t.Fatalf("anti-dope mean RT %gms >= capping %gms",
			1e3*anti.MeanRT(), 1e3*capping.MeanRT())
	}
	if anti.TailRT(90) >= capping.TailRT(90) {
		t.Fatalf("anti-dope p90 %gms >= capping %gms",
			1e3*anti.TailRT(90), 1e3*capping.TailRT(90))
	}
	// The PDF split must actually have isolated the flood.
	if anti.SuspectRouted == 0 {
		t.Fatal("no requests routed to suspect servers")
	}
	// And the budget must still hold.
	if anti.FracSlotsOverBudget > 0.1 {
		t.Fatalf("anti-dope left %g%% slots over budget", 100*anti.FracSlotsOverBudget)
	}
}

func TestDopeAttackerAdaptsAndEvades(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Horizon = 240
	cfg.WarmupSec = 10
	cfg.Cluster.Budget = cluster.MediumPB
	cfg.Scheme = defense.NewNone()
	d := attack.DefaultDopeConfig()
	cfg.Dope = &d
	cfg.DopeStart = 20
	res, err := RunOnce(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DopeTrace) < 10 {
		t.Fatalf("dope trace has %d epochs", len(res.DopeTrace))
	}
	first, last := res.DopeTrace[0], res.DopeTrace[len(res.DopeTrace)-1]
	if last.RPS <= first.RPS {
		t.Fatalf("attacker never grew: %g -> %g", first.RPS, last.RPS)
	}
	// The point of DOPE: a power emergency without a firewall story —
	// the legitimate-user population stays unbanned.
	if res.OverBudgetJ <= 0 {
		t.Fatal("adaptive attacker never violated the budget")
	}
}

func TestTraceModulatedTraffic(t *testing.T) {
	cfg := quiet()
	cfg.Trace = trendTrace()
	res, err := RunOnce(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.OfferedLegit == 0 {
		t.Fatal("no traffic under trace modulation")
	}
}

func TestNilSchemeDefaultsToNone(t *testing.T) {
	cfg := quiet()
	cfg.Scheme = nil
	res, err := RunOnce(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SchemeName != "None" {
		t.Fatalf("scheme %q", res.SchemeName)
	}
}

func TestResultPrinting(t *testing.T) {
	res, _ := RunOnce(quiet())
	var sb stringBuilder
	res.Fprint(&sb)
	if len(sb.buf) == 0 {
		t.Fatal("empty summary")
	}
}

type stringBuilder struct{ buf []byte }

func (s *stringBuilder) Write(p []byte) (int, error) {
	s.buf = append(s.buf, p...)
	return len(p), nil
}

func TestBreakerOutageWithoutDefense(t *testing.T) {
	cfg := underAttack(defense.NewNone())
	cfg.Breaker = BreakerCfg{Enabled: true, ToleranceSec: 10, RepairSec: 20}
	res, err := RunOnce(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outages == 0 {
		t.Fatal("sustained violation never tripped the breaker")
	}
	if res.OutageSeconds <= 0 {
		t.Fatal("no downtime recorded")
	}
	if res.DroppedByReason["outage"] == 0 {
		t.Fatal("no outage drops recorded")
	}
	// Downtime costs availability.
	if res.Availability() > 0.95 {
		t.Fatalf("availability %g despite outages", res.Availability())
	}
}

func TestBreakerNoOutageWithDefense(t *testing.T) {
	cfg := underAttack(defense.NewAntiDope(power.DefaultLadder()))
	cfg.Breaker = BreakerCfg{Enabled: true, ToleranceSec: 10, RepairSec: 20}
	res, err := RunOnce(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outages != 0 {
		t.Fatalf("%d outages despite Anti-DOPE", res.Outages)
	}
}

func TestBreakerDisabledByDefault(t *testing.T) {
	res, err := RunOnce(underAttack(defense.NewNone()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outages != 0 || res.OutageSeconds != 0 {
		t.Fatal("breaker fired while disabled")
	}
}

func TestBreakerValidate(t *testing.T) {
	cfg := quiet()
	cfg.Breaker = BreakerCfg{Enabled: true, RatingFrac: -1}
	if _, err := New(cfg); err == nil {
		t.Fatal("negative breaker rating accepted")
	}
}

func TestSourceAwareCatchesUnlistedFlood(t *testing.T) {
	mk := func(sourceAware bool) *Result {
		cfg := DefaultConfig()
		cfg.Horizon = 120
		cfg.WarmupSec = 10
		cfg.Cluster.Budget = cluster.MediumPB
		ad := defense.NewAntiDope(power.DefaultLadder())
		// Offline list restricted to the two heaviest endpoints: the
		// Word-Count flood below flies under the URL-based split.
		ad.SuspectFrac = 0.5
		ad.SourceAware = sourceAware
		cfg.Scheme = ad
		cfg.Attacks = []attack.Spec{
			attack.HTTPLoadTool(workload.WordCount, 200, 4, 15, 100),
		}
		res, err := RunOnce(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	urlOnly := mk(false)
	srcAware := mk(true)
	// The profiler must isolate substantially more of the flood than the
	// URL list alone (which isolates none of it).
	if srcAware.SuspectRouted <= urlOnly.SuspectRouted {
		t.Fatalf("source-aware isolated %d <= url-only %d",
			srcAware.SuspectRouted, urlOnly.SuspectRouted)
	}
	// And legitimate users must be no worse off for it.
	if srcAware.TailRT(90) > 2*urlOnly.TailRT(90) {
		t.Fatalf("source-aware p90 %.1fms much worse than url-only %.1fms",
			1e3*srcAware.TailRT(90), 1e3*urlOnly.TailRT(90))
	}
}

func TestThermalDisabledByDefault(t *testing.T) {
	res, err := RunOnce(quiet())
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxTempC.Len() != 0 || res.ThermalThrottleEvents != 0 {
		t.Fatal("thermal plane active while disabled")
	}
}

func TestThermalEmergencyUnderDOPE(t *testing.T) {
	// Normal-PB: the power budget never constrains, so no scheme throttles —
	// but the cooling plane, sized to Medium-PB capacity, overheats under a
	// sustained DOPE flood and the hardware throttle engages.
	cfg := DefaultConfig()
	cfg.Horizon = 600
	cfg.WarmupSec = 10
	cfg.Scheme = defense.NewNone()
	cfg.Thermal = thermal.Config{Enabled: true, CRACCapacityW: 340}
	cfg.Attacks = []attack.Spec{
		attack.HTTPLoadTool(workload.CollaFilt, 120, 32, 30, 560),
	}
	res, err := RunOnce(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ThermalThrottleEvents == 0 {
		_, maxT := res.MaxTempC.Max()
		t.Fatalf("no thermal throttle despite sustained DOPE heat (max %.1f°C)", maxT)
	}
	if res.FracSlotsThermal <= 0 {
		t.Fatal("thermal slots not counted")
	}
	// The emergency is slow: the first throttle must come well after the
	// attack starts (thermal time constants, not instant).
	firstHotAt := -1.0
	for _, p := range res.MaxTempC.Points {
		if p.V >= 62 {
			firstHotAt = p.T
			break
		}
	}
	if firstHotAt < 60 {
		t.Fatalf("thermal emergency at t=%.0f, expected minutes after onset at t=30", firstHotAt)
	}
}

func TestThermalQuietBaselineStaysCool(t *testing.T) {
	cfg := quiet()
	cfg.Horizon = 300
	cfg.Thermal = thermal.Config{Enabled: true}
	res, err := RunOnce(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ThermalThrottleEvents != 0 {
		t.Fatalf("baseline load thermally throttled %d times", res.ThermalThrottleEvents)
	}
	if res.MaxTempC.Len() == 0 {
		t.Fatal("no temperature series recorded")
	}
}

func TestThermalIsolationContainsHeat(t *testing.T) {
	// Anti-DOPE's isolation keeps total heat under the CRAC capacity, so
	// the same flood that overheats the spread cluster stays cool.
	mk := func(scheme defense.Scheme) *Result {
		cfg := DefaultConfig()
		cfg.Horizon = 480
		cfg.WarmupSec = 10
		cfg.Scheme = scheme
		cfg.Thermal = thermal.Config{Enabled: true, CRACCapacityW: 340}
		cfg.Attacks = []attack.Spec{
			attack.HTTPLoadTool(workload.CollaFilt, 120, 32, 30, 440),
		}
		res, err := RunOnce(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	spread := mk(defense.NewNone())
	isolated := mk(defense.NewAntiDope(power.DefaultLadder()))
	if spread.ThermalThrottleEvents == 0 {
		t.Fatal("premise: spread flood must overheat")
	}
	if isolated.FracSlotsThermal >= spread.FracSlotsThermal {
		t.Fatalf("isolation did not reduce thermal throttling: %.3f vs %.3f",
			isolated.FracSlotsThermal, spread.FracSlotsThermal)
	}
}

func TestThermalBadConfigRejected(t *testing.T) {
	cfg := quiet()
	cfg.Thermal = thermal.Config{Enabled: true, SetpointC: 70, ThrottleC: 62}
	if _, err := New(cfg); err == nil {
		t.Fatal("throttle below setpoint accepted")
	}
}

func TestAttackOnlyTraffic(t *testing.T) {
	cfg := quiet()
	cfg.NormalRPS = 0 // nothing legitimate at all
	cfg.Attacks = []attack.Spec{
		attack.HTTPLoadTool(workload.CollaFilt, 50, 8, 5, 40),
	}
	res, err := RunOnce(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.OfferedLegit != 0 {
		t.Fatal("phantom legit traffic")
	}
	if res.OfferedAttack == 0 {
		t.Fatal("no attack traffic offered")
	}
	if res.Availability() != 1 {
		t.Fatal("empty-offer availability must be 1")
	}
}

func TestNoTrafficAtAll(t *testing.T) {
	cfg := quiet()
	cfg.NormalRPS = 0
	res, err := RunOnce(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.OfferedLegit != 0 || res.OfferedAttack != 0 {
		t.Fatal("traffic from nowhere")
	}
	// Energy is pure idle: servers at idle power for the horizon.
	wantJ := res.Power.Points[0].V * cfg.Horizon
	if math.Abs(res.TotalEnergyJ-wantJ)/wantJ > 0.01 {
		t.Fatalf("idle energy %g, want ~%g", res.TotalEnergyJ, wantJ)
	}
}

func TestZeroDurationAttackIsNoop(t *testing.T) {
	cfg := quiet()
	cfg.Attacks = []attack.Spec{{
		Name: "noop", Layer: attack.ApplicationLayer,
		Class: workload.CollaFilt, RateRPS: 500, Agents: 4,
		Start: 10, Duration: 0,
	}}
	res, err := RunOnce(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.OfferedAttack != 0 {
		t.Fatalf("%d arrivals from a zero-duration attack", res.OfferedAttack)
	}
}

func TestExtraSourceValidation(t *testing.T) {
	cfg := quiet()
	cfg.ExtraSources = []SourceSpec{{
		Source:  workload.Source{Class: workload.TextCont, Rate: workload.ConstRate(5), Sources: 1},
		RateCap: 0, // missing envelope
	}}
	if _, err := New(cfg); err == nil {
		t.Fatal("missing rate cap accepted")
	}
	cfg.ExtraSources[0].RateCap = 5
	cfg.ExtraSources[0].Source.Class = workload.Class(99)
	if _, err := New(cfg); err == nil {
		t.Fatal("invalid class accepted")
	}
}

func TestSlotEqualsHorizon(t *testing.T) {
	cfg := quiet()
	cfg.SlotSec = cfg.Horizon // single control slot: boundary case
	res, err := RunOnce(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.OfferedLegit == 0 {
		t.Fatal("no traffic with a single-slot run")
	}
}
