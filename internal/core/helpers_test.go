package core

import "antidope/internal/trace"

// trendTrace returns a tiny deterministic trace for modulation tests.
func trendTrace() *trace.Trace {
	return &trace.Trace{
		IntervalSec: 10,
		Samples:     []float64{0.2, 0.3, 0.5, 0.6, 0.5, 0.4},
		Machines:    4,
	}
}
