package core_test

import (
	"bytes"
	"sync"
	"testing"

	"antidope/internal/attack"
	"antidope/internal/core"
	"antidope/internal/defense"
	"antidope/internal/faults"
	"antidope/internal/obs"
	"antidope/internal/power"
	"antidope/internal/report"
	"antidope/internal/workload"
)

// forkConfig is the snapshot acceptance scenario: every subsystem whose
// mid-run state a fork must carry is switched on — the adaptive defense, a
// static flood, the adaptive attacker, breaker and thermal planes, and a
// scripted fault plan whose windows straddle the capture instants the tests
// use (so cursors are captured mid-window, not at rest).
func forkConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Horizon = 90
	cfg.WarmupSec = 5
	cfg.Seed = 0xF02C
	cfg.Scheme = defense.NewAntiDope(power.DefaultLadder())
	cfg.NormalRPS = 90
	cfg.Attacks = []attack.Spec{{
		Name:     "flood",
		Layer:    attack.ApplicationLayer,
		Class:    workload.VictimClasses()[0],
		RateRPS:  450,
		Agents:   16,
		Start:    15,
		Duration: 45,
	}}
	dope := attack.DefaultDopeConfig()
	dope.MaxRPS = 800
	cfg.Dope = &dope
	cfg.DopeStart = 10
	cfg.Breaker = core.BreakerCfg{Enabled: true, ToleranceSec: 5, RepairSec: 10}
	cfg.Thermal.Enabled = true
	cfg.Faults = &faults.Config{
		Events: []faults.Event{
			{Kind: faults.ServerCrash, At: 20, Duration: 25, Server: 1},
			{Kind: faults.TelemetryDropout, At: 30, Duration: 20},
			{Kind: faults.DVFSDelay, At: 15, Duration: 40, Server: faults.AllServers, Param: 3},
			{Kind: faults.FirewallDown, At: 35, Duration: 10},
		},
	}
	return cfg
}

// serializeResult reduces a result to the same byte stream the determinism
// suite pins: the full JSON report plus the human-readable footer.
func serializeResult(t *testing.T, res *core.Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := report.JSON(&buf, res, 200); err != nil {
		t.Fatalf("serialize: %v", err)
	}
	res.Fprint(&buf)
	return buf.Bytes()
}

// diffByte reports the first index at which two serializations diverge.
func diffByte(a, b []byte) int {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	return i
}

// TestForkMatchesReplay is the snapshot determinism contract: running a
// scenario straight through, versus pausing it at T, snapshotting, forking,
// and finishing the fork, must serialize to identical bytes — at the
// end-of-warmup instant the harness would snapshot at, and deep inside the
// chaos (attack, crash window, telemetry dropout, DVFS delay all active)
// where every cursor and ledger is mid-flight.
func TestForkMatchesReplay(t *testing.T) {
	want := serializeResult(t, mustRun(t, forkConfig()))

	for _, at := range []float64{5, 40} {
		parent, err := core.New(forkConfig())
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		parent.Start()
		parent.RunTo(at)
		snap, err := parent.Snapshot()
		if err != nil {
			t.Fatalf("Snapshot at %g: %v", at, err)
		}
		if snap.At() != at {
			t.Fatalf("snapshot instant = %g, want %g", snap.At(), at)
		}

		fork := snap.Fork()
		fork.RunTo(forkConfig().Horizon)
		got := serializeResult(t, fork.Finish())
		if !bytes.Equal(got, want) {
			t.Errorf("fork from T=%g diverged from the straight run at byte %d", at, diffByte(got, want))
		}

		// Snapshotting must not disturb the parent: it finishes its own run
		// and still matches the straight-through reference.
		parent.RunTo(forkConfig().Horizon)
		if got := serializeResult(t, parent.Finish()); !bytes.Equal(got, want) {
			t.Errorf("parent after snapshot at T=%g diverged at byte %d", at, diffByte(got, want))
		}
	}
}

// TestForkUnderFaults pins the cursor-capture contract specifically: the
// capture instant sits strictly inside four different fault windows plus the
// firewall outage, so the fork resumes with every window already open — the
// crash must not re-fire, the recoveries must still land, and the telemetry
// sensor must keep the dropout's frozen reading.
func TestForkUnderFaults(t *testing.T) {
	cfg := forkConfig()
	want := serializeResult(t, mustRun(t, cfg))

	parent, err := core.New(forkConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	parent.Start()
	parent.RunTo(38) // crash(20–45), dropout(30–50), dvfs-delay(15–55), firewall-down(35–45) all active
	snap, err := parent.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	fork := snap.Fork()
	fork.RunTo(cfg.Horizon)
	if got := serializeResult(t, fork.Finish()); !bytes.Equal(got, want) {
		t.Fatalf("fork taken mid-fault-window diverged at byte %d", diffByte(got, want))
	}
}

// TestDoubleForkIndependence forks one snapshot twice and races the forks
// (and the parent) to completion concurrently: all three must produce the
// straight run's bytes, and under -race the clones must share no mutable
// state.
func TestDoubleForkIndependence(t *testing.T) {
	cfg := forkConfig()
	want := serializeResult(t, mustRun(t, cfg))

	parent, err := core.New(forkConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	parent.Start()
	parent.RunTo(40)
	snap, err := parent.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}

	sims := []*core.Simulation{snap.Fork(), snap.Fork(), parent}
	got := make([][]byte, len(sims))
	var wg sync.WaitGroup
	for i, sim := range sims {
		wg.Add(1)
		go func(i int, sim *core.Simulation) {
			defer wg.Done()
			sim.RunTo(cfg.Horizon)
			res := sim.Finish()
			var buf bytes.Buffer
			if err := report.JSON(&buf, res, 200); err != nil {
				t.Errorf("sim %d: serialize: %v", i, err)
				return
			}
			res.Fprint(&buf)
			got[i] = buf.Bytes()
		}(i, sim)
	}
	wg.Wait()
	for i, g := range got {
		if !bytes.Equal(g, want) {
			t.Errorf("concurrent clone %d diverged from the straight run at byte %d", i, diffByte(g, want))
		}
	}
}

// nonCloner is a valid Scheme that deliberately does not implement
// defense.Cloner.
type nonCloner struct{ defense.Scheme }

func (nonCloner) Name() string { return "non-cloner" }

// TestSnapshotPreconditions pins the refusal paths: an observed run cannot be
// snapshotted (a fork would emit into its parent's trace), a scheme without
// CloneScheme cannot be captured, and a simulation that has not Started has
// no chains to capture.
func TestSnapshotPreconditions(t *testing.T) {
	cfg := forkConfig()
	cfg.Observer = obs.NewBus()
	observed := core.MustNew(cfg)
	observed.Start()
	observed.RunTo(10)
	if _, err := observed.Snapshot(); err == nil {
		t.Error("snapshot of an observed run did not error")
	}
	observed.RunTo(cfg.Horizon)
	observed.Finish()

	plain := forkConfig()
	plain.Scheme = nonCloner{Scheme: defense.NewNone()}
	sim := core.MustNew(plain)
	sim.Start()
	sim.RunTo(10)
	if _, err := sim.Snapshot(); err == nil {
		t.Error("snapshot with a non-Cloner scheme did not error")
	}
	sim.RunTo(plain.Horizon)
	sim.Finish()

	if _, err := core.MustNew(forkConfig()).Snapshot(); err == nil {
		t.Error("snapshot before Start did not error")
	}
}

// TestResetMatchesFresh pins the arena-reuse contract: rewinding a used
// simulation with Reset must serialize to the same bytes as a fresh New,
// even when the previous tenant ran a different scenario — reuse may only
// change where structs live, never the event order or RNG draws.
func TestResetMatchesFresh(t *testing.T) {
	want := serializeResult(t, mustRun(t, forkConfig()))

	first := forkConfig()
	first.Seed = 0xBEEF
	first.NormalRPS = 150
	first.Horizon = 60
	sim, err := core.New(first)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	sim.Run()

	if err := sim.Reset(forkConfig()); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if got := serializeResult(t, sim.Run()); !bytes.Equal(got, want) {
		t.Fatalf("reset run diverged from a fresh run at byte %d", diffByte(got, want))
	}
}

func mustRun(t *testing.T, cfg core.Config) *core.Result {
	t.Helper()
	res, err := core.RunOnce(cfg)
	if err != nil {
		t.Fatalf("RunOnce: %v", err)
	}
	return res
}
