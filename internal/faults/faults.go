// Package faults is the deterministic fault-injection layer of the
// simulator: a taxonomy of infrastructure failures (server crashes, battery
// faults, power-telemetry corruption, DVFS actuation faults, firewall
// outages), a schedule that normalizes arbitrary — even malformed — fault
// events into clean per-target windows, and a seeded generator that
// synthesizes schedules at a chosen intensity.
//
// The package is deliberately free of simulator dependencies: it produces
// and answers questions about fault windows, and internal/core arms the
// actual simtime events and applies the state changes. Two contracts make
// chaos reproducible (DESIGN.md §8):
//
//   - schedules are value data, normalized by a pure function: sanitize
//     (drop non-finite fields, clamp ranges), sort deterministically, and
//     merge overlapping windows per (kind, server) — so any input list,
//     including fuzzer garbage, yields one well-defined schedule; and
//   - randomness is confined to the generator (its own rng.Stream, seeded
//     explicitly) and to the telemetry sensor's noise stream, which is
//     consumed only while a noise window is active.
package faults

import (
	"fmt"
	"math"
	"sort"
)

// Kind enumerates the fault taxonomy.
type Kind int

const (
	// ServerCrash takes a server down for the window: in-flight requests
	// are detached for the balancer to redistribute, the node draws no
	// power, and recovery reboots it at full frequency.
	ServerCrash Kind = iota
	// BatteryFailure takes the UPS string offline for the window: both
	// discharge and recharge deliver nothing, while state of charge holds.
	BatteryFailure
	// BatteryFade is instantaneous (Duration is ignored): at time At the
	// usable capacity drops to Param of its current value, modeling aged
	// cells failing a capacity test.
	BatteryFade
	// TelemetryDropout freezes the power sensor for the window: defenses
	// keep actuating on the last delivered reading.
	TelemetryDropout
	// TelemetryNoise multiplies delivered readings by 1 + Param·N(0,1)
	// for the window (clamped at zero).
	TelemetryNoise
	// TelemetryStale delays delivered readings by Param seconds for the
	// window: defenses actuate on the past.
	TelemetryStale
	// DVFSDelay defers frequency actuation by Param control slots for the
	// window: a scheme's CapFreq decisions land late.
	DVFSDelay
	// DVFSStuck pins the server at the frequency it held when the window
	// opened: every reconfiguration attempt is silently lost.
	DVFSStuck
	// FirewallDown disables perimeter enforcement for the window
	// (fail-open): every source passes unexamined.
	FirewallDown
	// NetDelay adds Param seconds of one-way latency (plus seeded jitter)
	// to the link between the balancer and the target server for the
	// window; deliveries slower than the sender's timeout are retried.
	NetDelay
	// NetLoss drops each delivery on the target server's link with
	// probability Param for the window; lost requests are retried.
	NetLoss
	// NetPartition makes the target server unreachable from the balancer
	// for the window while its physics — queue drain, power draw, breaker
	// ledger — keep running; the balancer routes around it and heals it
	// back in when the window closes.
	NetPartition

	numKinds int = iota
)

var kindNames = [...]string{
	"server-crash", "battery-failure", "battery-fade",
	"telemetry-dropout", "telemetry-noise", "telemetry-stale",
	"dvfs-delay", "dvfs-stuck", "firewall-down",
	"net-delay", "net-loss", "net-partition",
}

// String returns the kebab-case fault name.
func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// serverScoped reports whether the kind targets one server (Server >= 0)
// or the whole cluster (Server == AllServers).
func (k Kind) serverScoped() bool {
	switch k {
	case ServerCrash, DVFSDelay, DVFSStuck, NetDelay, NetLoss, NetPartition:
		return true
	}
	return false
}

// windowed reports whether the kind spans a [At, At+Duration) window;
// the only point fault is BatteryFade.
func (k Kind) windowed() bool { return k != BatteryFade }

// Windowed reports whether the kind spans a [At, At+Duration) window
// rather than firing at a single instant.
func (k Kind) Windowed() bool { return k.windowed() }

// AllServers targets every server with one server-scoped event.
const AllServers = -1

// Event is one scripted fault. Events are plain values; Schedule
// normalization tolerates any field contents.
type Event struct {
	Kind Kind
	// At is the fault onset in simulated seconds.
	At float64
	// Duration is the window length for windowed kinds; non-positive or
	// non-finite windows are dropped (+Inf is allowed: fault forever).
	Duration float64
	// Server is the target index for server-scoped kinds; AllServers hits
	// every server. Ignored (normalized to AllServers) otherwise.
	Server int
	// Param is the kind-specific magnitude: remaining capacity fraction
	// (BatteryFade), noise amplitude (TelemetryNoise), staleness seconds
	// (TelemetryStale), actuation delay in slots (DVFSDelay).
	Param float64
}

// Window is one normalized fault interval. End may be +Inf.
type Window struct {
	Start, End float64
	Param      float64
}

// Config enables fault injection on a run: a scripted event list, a seeded
// generator, or both (the generated events are appended to the scripted
// ones before normalization).
type Config struct {
	Events    []Event
	Generator *GeneratorConfig
}

// Build materializes the configuration into a normalized schedule. A nil
// config yields a nil schedule, which every consumer treats as "no faults".
func (c *Config) Build() *Schedule {
	if c == nil {
		return nil
	}
	evs := c.Events
	if c.Generator != nil {
		evs = append(append([]Event(nil), evs...), Generate(*c.Generator)...)
	}
	return NewSchedule(evs)
}

// Schedule is a normalized, immutable fault plan: per (kind, server) the
// windows are sorted, disjoint, and have finite sane parameters. Building
// one never panics, whatever the input events contain.
type Schedule struct {
	events []Event // sanitized, sorted, merged
}

// NewSchedule sanitizes, sorts, and merges the given events. Malformed
// events (non-finite times, empty windows, unknown kinds, NaN parameters)
// are dropped; overlapping windows of the same kind and target merge into
// one, keeping the larger parameter.
func NewSchedule(events []Event) *Schedule {
	clean := make([]Event, 0, len(events))
	for _, ev := range events {
		ev, ok := sanitize(ev)
		if ok {
			clean = append(clean, ev)
		}
	}
	sort.SliceStable(clean, func(i, j int) bool { return eventLess(clean[i], clean[j]) })
	return &Schedule{events: mergeRuns(clean)}
}

// sanitize validates and clamps one event. ok=false drops it.
func sanitize(ev Event) (Event, bool) {
	if ev.Kind < 0 || int(ev.Kind) >= numKinds {
		return ev, false
	}
	if math.IsNaN(ev.At) || math.IsInf(ev.At, 0) {
		return ev, false
	}
	if ev.At < 0 {
		ev.At = 0
	}
	if ev.Kind.windowed() {
		// +Inf means "until the end of time"; NaN and empty windows drop.
		if math.IsNaN(ev.Duration) || ev.Duration <= 0 {
			return ev, false
		}
	} else {
		ev.Duration = 0
	}
	if !ev.Kind.serverScoped() || ev.Server < 0 {
		ev.Server = AllServers
	}
	if math.IsNaN(ev.Param) {
		return ev, false
	}
	switch ev.Kind {
	case BatteryFade:
		ev.Param = clamp(ev.Param, 0, 1)
	case TelemetryNoise:
		ev.Param = clamp(ev.Param, 0, 10)
	case TelemetryStale:
		ev.Param = clamp(ev.Param, 0, 1e9)
	case DVFSDelay:
		// At least one slot late, and bounded so slot arithmetic stays in
		// safe integer range for any fuzzed magnitude.
		ev.Param = clamp(ev.Param, 1, 1e6)
	case NetDelay:
		// Added latency in seconds; bounded like staleness so any fuzzed
		// magnitude stays in safe float range.
		ev.Param = clamp(ev.Param, 0, 1e9)
	case NetLoss:
		// A drop probability.
		ev.Param = clamp(ev.Param, 0, 1)
	default:
		ev.Param = 0
	}
	return ev, true
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// eventLess orders events deterministically: by target group first so merge
// runs are contiguous, then by time.
func eventLess(a, b Event) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Server != b.Server {
		return a.Server < b.Server
	}
	if a.At != b.At { //lint:allow floateq -- sort key comparison, ties fall through
		return a.At < b.At
	}
	if a.Duration != b.Duration { //lint:allow floateq -- sort key comparison
		return a.Duration < b.Duration
	}
	return a.Param < b.Param
}

// mergeRuns collapses overlapping or touching windows within each
// (kind, server) run of the sorted event list. Point events (BatteryFade)
// are kept as-is, duplicates and all: two fades at the same instant simply
// both apply.
func mergeRuns(sorted []Event) []Event {
	out := make([]Event, 0, len(sorted))
	for _, ev := range sorted {
		if !ev.Kind.windowed() {
			out = append(out, ev)
			continue
		}
		if n := len(out); n > 0 {
			prev := &out[n-1]
			if prev.Kind == ev.Kind && prev.Server == ev.Server &&
				prev.Kind.windowed() && ev.At <= prev.At+prev.Duration {
				// Overlap (or exact adjacency): one longer window, keeping
				// the stronger parameter.
				if end := ev.At + ev.Duration; end > prev.At+prev.Duration {
					prev.Duration = end - prev.At
				}
				if ev.Param > prev.Param {
					prev.Param = ev.Param
				}
				continue
			}
		}
		out = append(out, ev)
	}
	return out
}

// Events returns the normalized event list, for inspection and tests. The
// caller must not mutate it.
func (s *Schedule) Events() []Event {
	if s == nil {
		return nil
	}
	return s.events
}

// Empty reports whether the schedule holds no faults at all.
func (s *Schedule) Empty() bool { return s == nil || len(s.events) == 0 }

// HasNet reports whether the schedule holds any network-condition fault
// (NetDelay, NetLoss, NetPartition); core builds the delivery/retry layer
// only when this is true, so schedules without network kinds run the
// historical synchronous path untouched.
func (s *Schedule) HasNet() bool {
	if s == nil {
		return false
	}
	for _, ev := range s.events {
		switch ev.Kind {
		case NetDelay, NetLoss, NetPartition:
			return true
		}
	}
	return false
}

// Windows returns the normalized windows of a cluster-scoped kind, sorted
// and disjoint.
func (s *Schedule) Windows(k Kind) []Window { return s.WindowsFor(k, AllServers) }

// WindowsFor returns the windows of kind k affecting the given server:
// the union of its own windows and the AllServers windows, re-merged. For
// cluster-scoped kinds pass AllServers.
func (s *Schedule) WindowsFor(k Kind, server int) []Window {
	if s == nil {
		return nil
	}
	var out []Window
	for _, ev := range s.events {
		if ev.Kind != k {
			continue
		}
		if ev.Server != AllServers && ev.Server != server {
			continue
		}
		out = append(out, Window{Start: ev.At, End: ev.At + ev.Duration, Param: ev.Param})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start { //lint:allow floateq -- sort key comparison
			return out[i].Start < out[j].Start
		}
		return out[i].End < out[j].End
	})
	// The per-server and AllServers lists are disjoint internally but may
	// overlap each other.
	merged := out[:0]
	for _, w := range out {
		if n := len(merged); n > 0 && w.Start <= merged[n-1].End {
			if w.End > merged[n-1].End {
				merged[n-1].End = w.End
			}
			if w.Param > merged[n-1].Param {
				merged[n-1].Param = w.Param
			}
			continue
		}
		merged = append(merged, w)
	}
	return merged
}

// Points returns the instants of a point-fault kind (BatteryFade) in time
// order, with parameters.
func (s *Schedule) Points(k Kind) []Event {
	if s == nil {
		return nil
	}
	var out []Event
	for _, ev := range s.events {
		if ev.Kind == k && !k.windowed() {
			out = append(out, ev)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].At != out[j].At { //lint:allow floateq -- sort key comparison
			return out[i].At < out[j].At
		}
		return out[i].Param < out[j].Param
	})
	return out
}

// Cursor answers "is a window of this list active at now?" in amortized
// O(1) for non-decreasing now — the shape of every query the simulation
// makes (slot ticks, arrival times).
type Cursor struct {
	wins []Window
	i    int
}

// NewCursor builds a cursor over sorted disjoint windows (the only kind a
// Schedule hands out).
func NewCursor(wins []Window) *Cursor { return &Cursor{wins: wins} }

// Clone returns an independent cursor at the same position, sharing the
// read-only window list — snapshot forking resumes mid-schedule with it.
func (c *Cursor) Clone() *Cursor {
	cp := *c
	return &cp
}

// Active returns the window covering now, if any. now must be
// non-decreasing across calls.
func (c *Cursor) Active(now float64) (Window, bool) {
	for c.i < len(c.wins) && now >= c.wins[c.i].End {
		c.i++
	}
	if c.i < len(c.wins) && now >= c.wins[c.i].Start {
		return c.wins[c.i], true
	}
	return Window{}, false
}
