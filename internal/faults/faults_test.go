package faults

import (
	"math"
	"reflect"
	"testing"

	"antidope/internal/rng"
)

func TestScheduleSanitizesMalformedEvents(t *testing.T) {
	cases := []struct {
		name string
		ev   Event
		keep bool
	}{
		{"nan-at", Event{Kind: ServerCrash, At: math.NaN(), Duration: 5}, false},
		{"inf-at", Event{Kind: FirewallDown, At: math.Inf(1), Duration: 5}, false},
		{"neg-inf-at", Event{Kind: FirewallDown, At: math.Inf(-1), Duration: 5}, false},
		{"nan-duration", Event{Kind: ServerCrash, At: 1, Duration: math.NaN()}, false},
		{"zero-duration", Event{Kind: ServerCrash, At: 1, Duration: 0}, false},
		{"negative-duration", Event{Kind: TelemetryDropout, At: 1, Duration: -3}, false},
		{"inf-duration", Event{Kind: BatteryFailure, At: 1, Duration: math.Inf(1)}, true},
		{"nan-param", Event{Kind: TelemetryNoise, At: 1, Duration: 5, Param: math.NaN()}, false},
		{"unknown-kind", Event{Kind: Kind(99), At: 1, Duration: 5}, false},
		{"negative-kind", Event{Kind: Kind(-1), At: 1, Duration: 5}, false},
		{"fine", Event{Kind: ServerCrash, At: 3, Duration: 4, Server: 1}, true},
		{"fade-point", Event{Kind: BatteryFade, At: 3, Param: 0.5}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := len(NewSchedule([]Event{tc.ev}).Events())
			if tc.keep && got != 1 {
				t.Fatalf("event %+v dropped, want kept", tc.ev)
			}
			if !tc.keep && got != 0 {
				t.Fatalf("event %+v kept, want dropped", tc.ev)
			}
		})
	}
}

func TestScheduleClampsFields(t *testing.T) {
	s := NewSchedule([]Event{
		{Kind: ServerCrash, At: -10, Duration: 5, Server: 2},
		{Kind: BatteryFade, At: 1, Param: 7},
		{Kind: DVFSDelay, At: 2, Duration: 5, Server: 0, Param: 1e30},
		{Kind: DVFSDelay, At: 20, Duration: 5, Server: 0, Param: 0},
		{Kind: TelemetryDropout, At: 3, Duration: 5, Server: 3, Param: 42},
	})
	for _, ev := range s.Events() {
		switch ev.Kind {
		case ServerCrash:
			if ev.At != 0 {
				t.Errorf("negative onset not clamped: %+v", ev)
			}
		case BatteryFade:
			if ev.Param != 1 {
				t.Errorf("fade fraction not clamped to 1: %+v", ev)
			}
		case DVFSDelay:
			if ev.Param < 1 || ev.Param > 1e6 {
				t.Errorf("delay slots outside [1, 1e6]: %+v", ev)
			}
		case TelemetryDropout:
			if ev.Server != AllServers || ev.Param != 0 {
				t.Errorf("cluster-scoped kind kept server/param: %+v", ev)
			}
		}
	}
}

func TestScheduleMergesOverlappingWindows(t *testing.T) {
	s := NewSchedule([]Event{
		{Kind: TelemetryDropout, At: 10, Duration: 10},
		{Kind: TelemetryDropout, At: 15, Duration: 10},      // overlaps → [10, 25)
		{Kind: TelemetryDropout, At: 25, Duration: 5},       // touches → [10, 30)
		{Kind: TelemetryDropout, At: 40, Duration: 5},       // separate
		{Kind: ServerCrash, At: 12, Duration: 4, Server: 1}, // different kind untouched
	})
	wins := s.Windows(TelemetryDropout)
	want := []Window{{Start: 10, End: 30}, {Start: 40, End: 45}}
	if !reflect.DeepEqual(wins, want) {
		t.Fatalf("merged windows = %+v, want %+v", wins, want)
	}
	if got := len(s.WindowsFor(ServerCrash, 1)); got != 1 {
		t.Fatalf("crash windows for server 1 = %d, want 1", got)
	}
	if got := len(s.WindowsFor(ServerCrash, 0)); got != 0 {
		t.Fatalf("crash windows for server 0 = %d, want 0", got)
	}
}

func TestWindowsForMergesAllServersWithSpecific(t *testing.T) {
	s := NewSchedule([]Event{
		{Kind: ServerCrash, At: 10, Duration: 10, Server: AllServers},
		{Kind: ServerCrash, At: 15, Duration: 10, Server: 2},
	})
	got := s.WindowsFor(ServerCrash, 2)
	want := []Window{{Start: 10, End: 25}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("WindowsFor(crash, 2) = %+v, want %+v", got, want)
	}
	// A server outside the specific target sees only the broadcast window.
	got = s.WindowsFor(ServerCrash, 0)
	want = []Window{{Start: 10, End: 20}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("WindowsFor(crash, 0) = %+v, want %+v", got, want)
	}
}

func TestCursorTracksWindows(t *testing.T) {
	c := NewCursor([]Window{{Start: 5, End: 10, Param: 1}, {Start: 20, End: 25, Param: 2}})
	probes := []struct {
		now    float64
		active bool
		param  float64
	}{
		{0, false, 0}, {5, true, 1}, {9.9, true, 1}, {10, false, 0},
		{15, false, 0}, {20, true, 2}, {24, true, 2}, {25, false, 0}, {100, false, 0},
	}
	for _, p := range probes {
		w, ok := c.Active(p.now)
		if ok != p.active || (ok && w.Param != p.param) {
			t.Fatalf("Active(%g) = (%+v, %v), want active=%v param=%g", p.now, w, ok, p.active, p.param)
		}
	}
}

func TestGenerateIsDeterministic(t *testing.T) {
	cfg := GeneratorConfig{
		Seed: 42, Horizon: 300, Servers: 4,
		Crashes: 3, TelemetryFaults: 6, DVFSFaults: 4, FirewallFlaps: 2,
		BatteryFaults: 1, BatteryFadeTo: 0.6,
	}
	a := Generate(cfg)
	b := Generate(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two Generate calls with the same config diverged")
	}
	if len(a) == 0 {
		t.Fatal("generator produced no events at non-trivial rates")
	}
	c := Generate(GeneratorConfig{Seed: 43, Horizon: 300, Servers: 4, Crashes: 3,
		TelemetryFaults: 6, DVFSFaults: 4, FirewallFlaps: 2, BatteryFaults: 1})
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
	for _, ev := range NewSchedule(a).Events() {
		if ev.At < 0 || ev.At >= cfg.Horizon {
			t.Fatalf("generated onset %g outside [0, horizon)", ev.At)
		}
		if ev.Kind.serverScoped() && (ev.Server < 0 || ev.Server >= cfg.Servers) {
			t.Fatalf("generated server %d outside cluster", ev.Server)
		}
	}
}

func TestGenerateScaled(t *testing.T) {
	base := GeneratorConfig{Seed: 7, Horizon: 1000, Servers: 4,
		Crashes: 10, TelemetryFaults: 10, DVFSFaults: 10, FirewallFlaps: 10, BatteryFaults: 10}
	if got := Generate(base.Scaled(0)); len(got) != 0 {
		t.Fatalf("intensity 0 still generated %d events", len(got))
	}
	lo := len(Generate(base.Scaled(0.5)))
	hi := len(Generate(base.Scaled(4)))
	if hi <= lo {
		t.Fatalf("intensity scaling not monotone: %d events at 0.5x vs %d at 4x", lo, hi)
	}
}

func TestSensorTransparentWithoutFaults(t *testing.T) {
	p := NewPowerSensor(NewSchedule(nil), rng.New(1))
	for now := 0.0; now < 10; now++ {
		w := 100 + 7*now
		if got := p.Sample(now, w); got != w {
			t.Fatalf("fault-free sensor altered the reading: %g -> %g", w, got)
		}
	}
}

func TestSensorDropoutHoldsLastGoodReading(t *testing.T) {
	s := NewSchedule([]Event{{Kind: TelemetryDropout, At: 3, Duration: 4}})
	p := NewPowerSensor(s, rng.New(1))
	p.Sample(1, 100)
	p.Sample(2, 110)
	for now := 3.0; now < 7; now++ {
		if got := p.Sample(now, 500); got != 110 {
			t.Fatalf("Sample(%g) = %g during dropout, want held 110", now, got)
		}
	}
	if got := p.Sample(7, 130); got != 130 {
		t.Fatalf("reading did not recover after dropout: got %g", got)
	}
}

func TestSensorDropoutFromColdStartReadsZero(t *testing.T) {
	s := NewSchedule([]Event{{Kind: TelemetryDropout, At: 0, Duration: 5}})
	p := NewPowerSensor(s, rng.New(1))
	if got := p.Sample(1, 400); got != 0 {
		t.Fatalf("cold-start dropout delivered %g, want 0 (never had a good reading)", got)
	}
}

func TestSensorStaleDeliversThePast(t *testing.T) {
	s := NewSchedule([]Event{{Kind: TelemetryStale, At: 5, Duration: 10, Param: 3}})
	p := NewPowerSensor(s, rng.New(1))
	for now := 0.0; now < 5; now++ {
		p.Sample(now, 100+10*now)
	}
	// At t=6 with 3 s of lag the sensor serves the reading from t=3.
	if got := p.Sample(6, 500); got != 130 {
		t.Fatalf("stale sensor delivered %g, want 130 (the t=3 reading)", got)
	}
}

func TestSensorNoiseIsSeededAndBounded(t *testing.T) {
	s := NewSchedule([]Event{{Kind: TelemetryNoise, At: 0, Duration: 100, Param: 5}})
	run := func() []float64 {
		p := NewPowerSensor(s, rng.New(99))
		var out []float64
		for now := 0.0; now < 50; now++ {
			out = append(out, p.Sample(now, 10))
		}
		return out
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("noisy sensor with equal seeds diverged")
	}
	varied := false
	for _, v := range a {
		if v < 0 {
			t.Fatalf("noisy reading went negative: %g", v)
		}
		if v != 10 {
			varied = true
		}
	}
	if !varied {
		t.Fatal("noise window produced no perturbation at amplitude 5")
	}
}

func TestConfigBuildCombinesScriptAndGenerator(t *testing.T) {
	var nilCfg *Config
	if nilCfg.Build() != nil {
		t.Fatal("nil config must build a nil schedule")
	}
	cfg := &Config{
		Events:    []Event{{Kind: FirewallDown, At: 5, Duration: 5}},
		Generator: &GeneratorConfig{Seed: 3, Horizon: 100, Servers: 2, Crashes: 5},
	}
	s := cfg.Build()
	if len(s.Windows(FirewallDown)) != 1 {
		t.Fatal("scripted event missing from built schedule")
	}
	crashes := 0
	for _, ev := range s.Events() {
		if ev.Kind == ServerCrash {
			crashes++
		}
	}
	if crashes == 0 {
		t.Fatal("generated events missing from built schedule")
	}
	if len(cfg.Events) != 1 {
		t.Fatal("Build mutated the scripted event list")
	}
}
