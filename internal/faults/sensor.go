package faults

import (
	"antidope/internal/obs"
	"antidope/internal/rng"
)

// PowerSensor models the cluster power telemetry the defenses read, as a
// pipeline over the true draw: staleness delays it, noise corrupts it,
// dropout freezes it at the last delivered value. With no active fault
// window the sensor is transparent — it delivers the true reading bit-for-
// bit, so a run with an empty schedule is indistinguishable from one with
// no sensor at all.
//
// Determinism: the noise stream is consumed only while a noise window is
// active, so adding or removing other fault kinds never shifts the noise
// draws. Sample must be called with non-decreasing timestamps (the control
// loop's slot ticks).
type PowerSensor struct {
	dropout *Cursor
	noise   *Cursor
	stale   *Cursor
	rnd     *rng.Stream

	// Network stage (AttachNet): the telemetry plane rides the same fabric
	// the requests do, so cluster-scoped network windows delay, drop, or
	// partition the defenses' power readings. netRnd is a dedicated
	// stream so net draws never shift the noise draws.
	netDelay *Cursor
	netLoss  *Cursor
	netPart  *Cursor
	netRnd   *rng.Stream

	// history retains (at, trueW) pairs long enough to serve the largest
	// staleness lag in the schedule.
	history []reading
	maxLag  float64

	last    float64 // last delivered reading
	sampled bool

	obs obs.Observer
}

type reading struct {
	at, w float64
}

// NewPowerSensor builds the sensor over a schedule's telemetry windows.
// rnd feeds only the noise fault; pass a dedicated split.
func NewPowerSensor(s *Schedule, rnd *rng.Stream) *PowerSensor {
	staleWins := s.Windows(TelemetryStale)
	maxLag := 0.0
	for _, w := range staleWins {
		if w.Param > maxLag {
			maxLag = w.Param
		}
	}
	return &PowerSensor{
		dropout: NewCursor(s.Windows(TelemetryDropout)),
		noise:   NewCursor(s.Windows(TelemetryNoise)),
		stale:   NewCursor(staleWins),
		rnd:     rnd,
		maxLag:  maxLag,
	}
}

// SetObserver installs the event sink; every sample taken while a
// telemetry fault window is active is emitted with the true and the
// delivered value, so a trace shows exactly when the defenses went blind.
func (p *PowerSensor) SetObserver(o obs.Observer) { p.obs = o }

// AttachNet puts the telemetry plane on the network fabric: the schedule's
// cluster-scoped (AllServers) network windows delay readings like extra
// staleness, drop them like a dropout, and freeze them outright during a
// partition. rnd feeds the delay jitter and loss draws; pass a dedicated
// split. With no cluster-scoped network window the attachment is inert.
func (p *PowerSensor) AttachNet(s *Schedule, rnd *rng.Stream) {
	delayWins := s.Windows(NetDelay)
	maxNet := 0.0
	for _, w := range delayWins {
		if w.Param > maxNet {
			maxNet = w.Param
		}
	}
	p.netDelay = NewCursor(delayWins)
	p.netLoss = NewCursor(s.Windows(NetLoss))
	p.netPart = NewCursor(s.Windows(NetPartition))
	p.netRnd = rnd
	// Staleness and network delay can stack; history must reach back far
	// enough for both, with jitter headroom on the network share.
	p.maxLag += maxNet * delayJitterMax
}

// Clone returns an independent copy of the sensor mid-pipeline for snapshot
// forking: cursor positions, retained history, last delivered reading and
// the noise stream position all carry over, so the fork's telemetry
// trajectory is bit-identical to what the original would have delivered.
// The observer is not carried over.
func (p *PowerSensor) Clone() *PowerSensor {
	c := *p
	c.dropout = p.dropout.Clone()
	c.noise = p.noise.Clone()
	c.stale = p.stale.Clone()
	c.rnd = p.rnd.Clone()
	if p.netDelay != nil {
		c.netDelay = p.netDelay.Clone()
		c.netLoss = p.netLoss.Clone()
		c.netPart = p.netPart.Clone()
		c.netRnd = p.netRnd.Clone()
	}
	c.history = append([]reading(nil), p.history...)
	c.obs = nil
	return &c
}

// Sample feeds the sensor the true draw at now and returns what the
// telemetry plane delivers to the defenses.
func (p *PowerSensor) Sample(now, trueW float64) float64 {
	if p.maxLag > 0 {
		p.record(now, trueW)
	}
	value := trueW
	faulted := false
	// Staleness and network delay stack into one lag: both mean the
	// reading the defenses see left the sensor in the past.
	lag := 0.0
	if w, ok := p.stale.Active(now); ok && w.Param > 0 {
		lag = w.Param
	}
	if p.netDelay != nil {
		if w, ok := p.netDelay.Active(now); ok && w.Param > 0 {
			lag += w.Param * (0.8 + 0.4*p.netRnd.Float64())
		}
	}
	if lag > 0 {
		value = p.readingAt(now - lag)
		faulted = true
	}
	if w, ok := p.noise.Active(now); ok {
		value *= 1 + w.Param*p.rnd.NormFloat64()
		if value < 0 {
			value = 0
		}
		faulted = true
	}
	// Dropout, a telemetry-link partition, and a lost telemetry packet all
	// block delivery the same way: the defenses hold the last good
	// reading. The loss lottery is drawn whenever a loss window is active,
	// partition or not, so overlap never shifts the stream.
	blocked := false
	if _, ok := p.dropout.Active(now); ok {
		blocked = true
	}
	if p.netPart != nil {
		if _, ok := p.netPart.Active(now); ok {
			blocked = true
		}
		if w, ok := p.netLoss.Active(now); ok && w.Param > 0 &&
			p.netRnd.Float64() < w.Param {
			blocked = true
		}
	}
	if blocked {
		// A block from the very first sample on delivers zero — the
		// defense is simply blind.
		value = p.last
		if !p.sampled {
			value = 0
		}
		p.emit(now, trueW, value)
		return value
	}
	p.last = value
	p.sampled = true
	if faulted {
		p.emit(now, trueW, value)
	}
	return value
}

func (p *PowerSensor) emit(now, trueW, delivered float64) {
	if p.obs == nil {
		return
	}
	p.obs.Emit(obs.Event{
		T: now, Kind: obs.KindTelemetry, Server: -1,
		A: trueW, B: delivered,
	})
}

// MeasuredPowerW returns the last delivered reading, implementing the
// defense layer's telemetry interface.
func (p *PowerSensor) MeasuredPowerW() float64 { return p.last }

// record appends one true reading and prunes history no staleness lag can
// reach anymore.
func (p *PowerSensor) record(now, trueW float64) {
	p.history = append(p.history, reading{at: now, w: trueW})
	// Keep one entry at or before the oldest reachable instant so a lagged
	// lookup always has a floor value.
	cut := 0
	for cut+1 < len(p.history) && p.history[cut+1].at <= now-p.maxLag {
		cut++
	}
	if cut > 0 {
		p.history = append(p.history[:0], p.history[cut:]...)
	}
}

// readingAt returns the latest recorded true reading at or before t. Before
// any recorded history the sensor had never powered on: it reports zero.
func (p *PowerSensor) readingAt(t float64) float64 {
	if len(p.history) == 0 || t < p.history[0].at {
		return 0
	}
	// History is short (bounded by maxLag / slot length); scan from the
	// newest end.
	for i := len(p.history) - 1; i >= 0; i-- {
		if p.history[i].at <= t {
			return p.history[i].w
		}
	}
	return 0
}
