package faults

import "antidope/internal/rng"

// Link models the network path between the balancer and one server under a
// schedule's network-condition windows: added latency with seeded jitter
// (NetDelay), probabilistic drops (NetLoss), and hard partitions
// (NetPartition). Outside every window the link is transparent — it adds
// no latency, drops nothing, and consumes no randomness — so a schedule
// whose network windows never open is indistinguishable from no link at
// all.
//
// Determinism: the stream is drawn from only while a delay or loss window
// is active, and each link owns a dedicated split, so adding a link (or a
// window on one link) never shifts the draws of any other stream. Queries
// must use non-decreasing timestamps (the cursors advance monotonically).
type Link struct {
	delay *Cursor
	loss  *Cursor
	part  *Cursor
	rnd   *rng.Stream
}

// NewLink builds the link for one server over the schedule's network
// windows (the union of the server's own windows and the AllServers ones).
// rnd feeds the delay jitter and loss draws; pass a dedicated split.
func NewLink(s *Schedule, server int, rnd *rng.Stream) *Link {
	return &Link{
		delay: NewCursor(s.WindowsFor(NetDelay, server)),
		loss:  NewCursor(s.WindowsFor(NetLoss, server)),
		part:  NewCursor(s.WindowsFor(NetPartition, server)),
		rnd:   rnd,
	}
}

// Clone returns an independent copy of the link mid-schedule for snapshot
// forking: cursor positions and the stream position carry over, so a
// fork's delay jitter and loss draws are bit-identical to what the
// original would have produced.
func (l *Link) Clone() *Link {
	return &Link{
		delay: l.delay.Clone(),
		loss:  l.loss.Clone(),
		part:  l.part.Clone(),
		rnd:   l.rnd.Clone(),
	}
}

// Partitioned reports whether a partition window covers now.
func (l *Link) Partitioned(now float64) bool {
	_, ok := l.part.Active(now)
	return ok
}

// Lost draws the loss lottery for one delivery at now. Outside a loss
// window it returns false without consuming the stream.
func (l *Link) Lost(now float64) bool {
	w, ok := l.loss.Active(now)
	if !ok || w.Param <= 0 {
		return false
	}
	return l.rnd.Float64() < w.Param
}

// DelaySec returns the added one-way latency for a delivery at now: the
// window's Param scaled by a seeded jitter factor in [0.8, 1.2). Outside a
// delay window it returns 0 without consuming the stream.
func (l *Link) DelaySec(now float64) float64 {
	w, ok := l.delay.Active(now)
	if !ok || w.Param <= 0 {
		return 0
	}
	return w.Param * (0.8 + 0.4*l.rnd.Float64())
}

// delayJitterMax bounds the DelaySec jitter factor; consumers sizing
// history buffers multiply the window Param by it.
const delayJitterMax = 1.2
