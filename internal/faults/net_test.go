package faults

import (
	"math"
	"reflect"
	"testing"

	"antidope/internal/rng"
)

func TestNetKindNames(t *testing.T) {
	cases := []struct {
		kind Kind
		want string
	}{
		{NetDelay, "net-delay"},
		{NetLoss, "net-loss"},
		{NetPartition, "net-partition"},
	}
	for _, tc := range cases {
		if got := tc.kind.String(); got != tc.want {
			t.Errorf("%d.String() = %q, want %q", int(tc.kind), got, tc.want)
		}
		if !tc.kind.serverScoped() {
			t.Errorf("%v should be server-scoped", tc.kind)
		}
		if !tc.kind.Windowed() {
			t.Errorf("%v should be windowed", tc.kind)
		}
	}
}

// TestNetScheduleBounds drives malformed network events through the
// normalizer: out-of-range probabilities clamp, non-finite magnitudes
// drop, and partitions carry no parameter.
func TestNetScheduleBounds(t *testing.T) {
	cases := []struct {
		name      string
		ev        Event
		keep      bool
		wantParam float64
	}{
		{"loss-negative-prob", Event{Kind: NetLoss, At: 1, Duration: 5, Server: 0, Param: -0.3}, true, 0},
		{"loss-above-one", Event{Kind: NetLoss, At: 1, Duration: 5, Server: 0, Param: 7}, true, 1},
		{"loss-nan-prob", Event{Kind: NetLoss, At: 1, Duration: 5, Server: 0, Param: math.NaN()}, false, 0},
		{"delay-nan-param", Event{Kind: NetDelay, At: 1, Duration: 5, Server: 0, Param: math.NaN()}, false, 0},
		{"delay-inf-param", Event{Kind: NetDelay, At: 1, Duration: 5, Server: 0, Param: math.Inf(1)}, true, 1e9},
		{"delay-negative-param", Event{Kind: NetDelay, At: 1, Duration: 5, Server: 0, Param: -2}, true, 0},
		{"partition-param-ignored", Event{Kind: NetPartition, At: 1, Duration: 5, Server: 0, Param: 42}, true, 0},
		{"partition-nan-duration", Event{Kind: NetPartition, At: 1, Duration: math.NaN(), Server: 0}, false, 0},
		{"delay-zero-duration", Event{Kind: NetDelay, At: 1, Duration: 0, Server: 0, Param: 0.1}, false, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			evs := NewSchedule([]Event{tc.ev}).Events()
			if !tc.keep {
				if len(evs) != 0 {
					t.Fatalf("event %+v kept, want dropped", tc.ev)
				}
				return
			}
			if len(evs) != 1 {
				t.Fatalf("event %+v dropped, want kept", tc.ev)
			}
			if evs[0].Param != tc.wantParam {
				t.Fatalf("param = %g, want %g", evs[0].Param, tc.wantParam)
			}
		})
	}
}

// TestNetOverlappingSameLinkWindowsMerge pins the merge discipline on one
// link: overlapping loss windows on the same server collapse into one,
// keeping the stronger probability, while another server's window stays
// separate.
func TestNetOverlappingSameLinkWindowsMerge(t *testing.T) {
	s := NewSchedule([]Event{
		{Kind: NetLoss, At: 10, Duration: 10, Server: 1, Param: 0.2},
		{Kind: NetLoss, At: 15, Duration: 10, Server: 1, Param: 0.5}, // overlaps → [10, 25) @ 0.5
		{Kind: NetLoss, At: 40, Duration: 5, Server: 1, Param: 0.1},  // separate
		{Kind: NetLoss, At: 12, Duration: 4, Server: 2, Param: 0.9},  // different link untouched
	})
	got := s.WindowsFor(NetLoss, 1)
	want := []Window{{Start: 10, End: 25, Param: 0.5}, {Start: 40, End: 45, Param: 0.1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("WindowsFor(NetLoss, 1) = %+v, want %+v", got, want)
	}
	if got := s.WindowsFor(NetLoss, 2); len(got) != 1 || got[0].Param != 0.9 {
		t.Fatalf("WindowsFor(NetLoss, 2) = %+v, want the single 0.9 window", got)
	}
}

func TestHasNet(t *testing.T) {
	var nilSched *Schedule
	if nilSched.HasNet() {
		t.Error("nil schedule reports network faults")
	}
	without := NewSchedule([]Event{{Kind: ServerCrash, At: 1, Duration: 5}})
	if without.HasNet() {
		t.Error("crash-only schedule reports network faults")
	}
	for _, k := range []Kind{NetDelay, NetLoss, NetPartition} {
		with := NewSchedule([]Event{{Kind: k, At: 1, Duration: 5, Server: 0, Param: 0.5}})
		if !with.HasNet() {
			t.Errorf("schedule with %v does not report network faults", k)
		}
	}
}

// TestLinkTransparentOutsideWindows pins the inert contract: outside every
// window the link adds nothing, drops nothing, and consumes no randomness.
func TestLinkTransparentOutsideWindows(t *testing.T) {
	s := NewSchedule([]Event{
		{Kind: NetDelay, At: 50, Duration: 10, Server: 0, Param: 0.2},
		{Kind: NetLoss, At: 50, Duration: 10, Server: 0, Param: 1},
	})
	root := rng.New(7)
	l := NewLink(s, 0, root.Split("link"))
	witness := root.Split("link") // same split label → same stream state
	for _, now := range []float64{0, 10, 49.9} {
		if l.Lost(now) {
			t.Fatalf("Lost(%g) outside the window", now)
		}
		if d := l.DelaySec(now); d != 0 {
			t.Fatalf("DelaySec(%g) = %g outside the window", now, d)
		}
		if l.Partitioned(now) {
			t.Fatalf("Partitioned(%g) outside any window", now)
		}
	}
	// No draw was consumed: the next value matches an untouched twin stream.
	if got, want := l.rnd.Float64(), witness.Float64(); got != want {
		t.Fatalf("stream advanced outside windows: got %g, want %g", got, want)
	}
}

func TestLinkInsideWindows(t *testing.T) {
	s := NewSchedule([]Event{
		{Kind: NetDelay, At: 10, Duration: 10, Server: 0, Param: 0.2},
		{Kind: NetLoss, At: 30, Duration: 10, Server: 0, Param: 1},
		{Kind: NetPartition, At: 50, Duration: 10, Server: 0},
	})
	l := NewLink(s, 0, rng.New(7).Split("link"))
	d := l.DelaySec(15)
	if d < 0.2*0.8 || d >= 0.2*delayJitterMax {
		t.Fatalf("DelaySec inside the window = %g, want within [%g, %g)", d, 0.2*0.8, 0.2*delayJitterMax)
	}
	if !l.Lost(35) {
		t.Fatal("Lost under probability 1 returned false")
	}
	if !l.Partitioned(55) {
		t.Fatal("Partitioned inside the window returned false")
	}
	if l.Partitioned(60) {
		t.Fatal("Partitioned at the closed end of the window")
	}
}

// TestLinkCloneResumesStream pins snapshot semantics: a cloned link
// produces bit-identical draws from the clone point on.
func TestLinkCloneResumesStream(t *testing.T) {
	s := NewSchedule([]Event{
		{Kind: NetDelay, At: 0, Duration: 100, Server: 0, Param: 0.5},
	})
	a := NewLink(s, 0, rng.New(11).Split("link"))
	a.DelaySec(1) // consume one draw pre-clone
	b := a.Clone()
	for i := 0; i < 8; i++ {
		now := 2 + float64(i)
		if got, want := b.DelaySec(now), a.DelaySec(now); got != want {
			t.Fatalf("draw %d diverged after clone: %g vs %g", i, got, want)
		}
	}
}

// TestGenerateNetFaults pins the generator extension: NetFaults emits only
// network kinds, deterministically for one seed.
func TestGenerateNetFaults(t *testing.T) {
	cfg := GeneratorConfig{Seed: 42, Horizon: 300, Servers: 4, NetFaults: 9, MeanFaultSec: 15}
	a := Generate(cfg)
	b := Generate(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Generate with NetFaults is not deterministic")
	}
	if len(a) == 0 {
		t.Fatal("expected some network faults at rate 9")
	}
	for _, ev := range a {
		switch ev.Kind {
		case NetDelay, NetLoss, NetPartition:
		default:
			t.Fatalf("net-only generator emitted %v", ev.Kind)
		}
		if ev.Kind == NetLoss && (ev.Param < 0 || ev.Param > 1) {
			t.Fatalf("generated loss probability %g outside [0,1]", ev.Param)
		}
	}
	if got := Generate(GeneratorConfig{Seed: 42, Horizon: 300, Servers: 4}); len(got) != 0 {
		t.Fatalf("zero rates generated %d events", len(got))
	}
}
