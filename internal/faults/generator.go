package faults

import "antidope/internal/rng"

// GeneratorConfig parameterizes the seeded fault synthesizer. Counts are
// Poisson means over the horizon, so fractional values are meaningful and
// Intensity-style scaling is just multiplication.
type GeneratorConfig struct {
	// Seed drives all of the generator's randomness; equal configs always
	// produce equal schedules.
	Seed uint64
	// Horizon bounds onset times to [0, Horizon).
	Horizon float64
	// Servers is the cluster size server-scoped faults draw targets from;
	// non-positive disables server-scoped kinds.
	Servers int

	// Crashes is the expected number of server-crash windows.
	Crashes float64
	// TelemetryFaults is the expected number of telemetry windows, split
	// evenly across dropout, noise, and staleness.
	TelemetryFaults float64
	// DVFSFaults is the expected number of DVFS actuation windows, split
	// evenly across delay and stuck-frequency.
	DVFSFaults float64
	// FirewallFlaps is the expected number of firewall-down windows.
	FirewallFlaps float64
	// BatteryFaults is the expected number of battery-failure windows.
	BatteryFaults float64
	// BatteryFadeTo, when in (0, 1), additionally fades the UPS capacity to
	// this fraction at a random instant.
	BatteryFadeTo float64
	// NetFaults is the expected number of network-condition windows, split
	// evenly across per-link delay, loss, and partition.
	NetFaults float64

	// MeanFaultSec is the mean window duration; non-positive defaults to 20.
	MeanFaultSec float64
}

// Scaled returns a copy with every fault count multiplied by intensity —
// the knob the resilience sweep turns.
func (g GeneratorConfig) Scaled(intensity float64) GeneratorConfig {
	if intensity < 0 {
		intensity = 0
	}
	g.Crashes *= intensity
	g.TelemetryFaults *= intensity
	g.DVFSFaults *= intensity
	g.FirewallFlaps *= intensity
	g.BatteryFaults *= intensity
	g.NetFaults *= intensity
	return g
}

// Generate synthesizes a raw event list from the config. The output is
// deterministic in the config alone: kinds are drawn in a fixed order, each
// from the same split of the seed stream, so changing one family's count
// never perturbs another family's draws. Feed the result to NewSchedule
// (or let Config.Build do it) before use.
func Generate(cfg GeneratorConfig) []Event {
	if cfg.Horizon <= 0 {
		return nil
	}
	mean := cfg.MeanFaultSec
	if mean <= 0 {
		mean = 20
	}
	root := rng.New(cfg.Seed)
	var out []Event

	draw := func(r *rng.Stream, k Kind, count float64, param func(*rng.Stream) float64) {
		n := r.Poisson(count)
		for i := 0; i < n; i++ {
			ev := Event{
				Kind:     k,
				At:       cfg.Horizon * r.Float64(),
				Duration: r.Exp(mean),
				Server:   AllServers,
			}
			if k.serverScoped() {
				if cfg.Servers <= 0 {
					continue
				}
				ev.Server = r.Intn(cfg.Servers)
			}
			if param != nil {
				ev.Param = param(r)
			}
			out = append(out, ev)
		}
	}

	draw(root.Split("crash"), ServerCrash, cfg.Crashes, nil)
	tele := cfg.TelemetryFaults / 3
	draw(root.Split("dropout"), TelemetryDropout, tele, nil)
	draw(root.Split("noise"), TelemetryNoise, tele, func(r *rng.Stream) float64 {
		return 0.05 + 0.15*r.Float64() // 5–20% relative noise
	})
	draw(root.Split("stale"), TelemetryStale, tele, func(r *rng.Stream) float64 {
		return 2 + r.Exp(8) // seconds of lag
	})
	dvfs := cfg.DVFSFaults / 2
	draw(root.Split("dvfs-delay"), DVFSDelay, dvfs, func(r *rng.Stream) float64 {
		return float64(1 + r.Intn(5)) // slots
	})
	draw(root.Split("dvfs-stuck"), DVFSStuck, dvfs, nil)
	draw(root.Split("firewall"), FirewallDown, cfg.FirewallFlaps, nil)
	draw(root.Split("battery"), BatteryFailure, cfg.BatteryFaults, nil)
	// Network kinds draw from their own splits appended after the existing
	// families, so enabling them never perturbs an established schedule.
	net := cfg.NetFaults / 3
	draw(root.Split("net-delay"), NetDelay, net, func(r *rng.Stream) float64 {
		return 0.05 + r.Exp(0.3) // seconds of added one-way latency
	})
	draw(root.Split("net-loss"), NetLoss, net, func(r *rng.Stream) float64 {
		return 0.05 + 0.45*r.Float64() // 5–50% drop probability
	})
	draw(root.Split("net-partition"), NetPartition, net, nil)
	if cfg.BatteryFadeTo > 0 && cfg.BatteryFadeTo < 1 {
		r := root.Split("fade")
		out = append(out, Event{
			Kind:  BatteryFade,
			At:    cfg.Horizon * r.Float64(),
			Param: cfg.BatteryFadeTo,
		})
	}
	return out
}
