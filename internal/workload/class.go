// Package workload defines the request catalog of the paper's e-commerce
// service (Table 1) and the arrival processes that drive the simulator.
// Each request class carries the three properties the whole study turns on:
// how much compute it demands, how much power that compute draws, and how
// sensitive both are to CPU frequency.
package workload

import (
	"fmt"
	"math"
)

// Class identifies a request type.
type Class int

// The victim service endpoints of Table 1, the normal-user mix modeled from
// the Alibaba trace, and the network-layer flood classes of Figure 3.
const (
	// CollaFilt is collaborative filtering: compute-intensive recommender
	// queries, the most power-hungry per unit of utilization.
	CollaFilt Class = iota
	// KMeans is memory-intensive classification; its power barely drops
	// with frequency, which is why DVFS must cut it deepest (Fig. 6-b).
	KMeans
	// WordCount reads text files from disk frequently.
	WordCount
	// TextCont serves plain text content — the lightest victim endpoint.
	TextCont
	// AliNormal is the blended normal-user request modeled from the Alibaba
	// container trace (the AliOS row of Table 1).
	AliNormal
	// VolumeFlood is a network/transport-layer volumetric flood (SYN, UDP,
	// ICMP): high packet rate, almost no application work per packet.
	VolumeFlood
	// SlowDrip is a low-and-slow connection-exhaustion attack (Slowloris
	// style): ties up sockets, negligible CPU.
	SlowDrip
	numClasses
)

// NumClasses is the number of defined request classes.
const NumClasses = int(numClasses)

var classNames = [...]string{
	CollaFilt:   "Colla-Filt",
	KMeans:      "K-means",
	WordCount:   "Word-Count",
	TextCont:    "Text-Cont",
	AliNormal:   "AliOS",
	VolumeFlood: "Volume-Flood",
	SlowDrip:    "Slow-Drip",
}

// String returns the paper's name for the class.
func (c Class) String() string {
	if c < 0 || int(c) >= len(classNames) {
		return fmt.Sprintf("Class(%d)", int(c))
	}
	return classNames[c]
}

// Valid reports whether c is a defined class.
func (c Class) Valid() bool { return c >= 0 && c < numClasses }

// VictimClasses are the four observed service endpoints of Table 1 in the
// order the paper's figures present them.
func VictimClasses() []Class {
	return []Class{CollaFilt, KMeans, WordCount, TextCont}
}

// Profile captures everything the simulator needs to know about one class.
type Profile struct {
	Class Class
	// URL is the service endpoint the class maps to; the NLB's suspect
	// list and the PDF forwarding module key on it.
	URL string
	// MeanDemand is the mean compute demand in seconds of a single core at
	// f_max. Service time at lower frequency stretches by (f_max/f)^Beta.
	MeanDemand float64
	// DemandCV is the coefficient of variation of the per-request demand
	// (log-normal); heavier tails make tail latency interesting.
	DemandCV float64
	// PowerWeight is the dynamic-power intensity relative to Colla-Filt
	// (see power.Component.Weight).
	PowerWeight float64
	// PowerAlpha is the frequency exponent of the class's dynamic power
	// (see power.Component.Alpha).
	PowerAlpha float64
	// PerfBeta is the performance frequency sensitivity: execution speed
	// scales as (f/f_max)^PerfBeta. Compute-bound 1.0; memory/disk-bound
	// requests barely slow down when the core clock drops.
	PerfBeta float64
	// NetCost is the relative network-layer footprint per request, used by
	// the firewall's byte/packet accounting and by volumetric attacks.
	NetCost float64
}

// WattsPerRequestScale returns a dimensionless per-request power-cost score:
// demand × weight. The NLB's offline profiling (Section 5.2) ranks classes
// by this to build the suspect list, and the DOPE attacker ranks by it to
// pick targets. The absolute scale is arbitrary; only the ordering matters.
func (p Profile) WattsPerRequestScale() float64 {
	return p.MeanDemand * p.PowerWeight
}

// catalog is the class table, indexed by Class. Lookup serves straight from
// this array: the profile is consulted on every minted request and every
// firewall observation, so the hot path must be an index, not a map build.
// The calibration reproduces the qualitative facts of Section 3: Colla-Filt
// has the highest aggregate power intensity (near-vertical, right-most CDF
// in Fig. 5-a), K-means the highest power per request (Fig. 5-b) and the
// lowest frequency sensitivity (deepest V/F cut in Fig. 6-b), Word-Count is
// disk-bound and mid-weight, Text-Cont light, and volumetric floods cheap
// per packet.
var catalog = [NumClasses]Profile{
	CollaFilt: {
		Class: CollaFilt, URL: "/recommend",
		MeanDemand: 0.170, DemandCV: 0.30,
		PowerWeight: 1.00, PowerAlpha: 2.4, PerfBeta: 1.00,
		NetCost: 1.0,
	},
	KMeans: {
		Class: KMeans, URL: "/classify",
		MeanDemand: 0.210, DemandCV: 0.40,
		PowerWeight: 0.95, PowerAlpha: 1.1, PerfBeta: 0.55,
		NetCost: 1.0,
	},
	WordCount: {
		Class: WordCount, URL: "/wordcount",
		MeanDemand: 0.060, DemandCV: 0.50,
		PowerWeight: 0.80, PowerAlpha: 1.6, PerfBeta: 0.40,
		NetCost: 1.5,
	},
	TextCont: {
		Class: TextCont, URL: "/text",
		MeanDemand: 0.012, DemandCV: 0.40,
		PowerWeight: 0.45, PowerAlpha: 1.8, PerfBeta: 0.70,
		NetCost: 1.2,
	},
	AliNormal: {
		Class: AliNormal, URL: "/shop",
		MeanDemand: 0.020, DemandCV: 0.80,
		PowerWeight: 0.55, PowerAlpha: 2.0, PerfBeta: 0.85,
		NetCost: 1.0,
	},
	VolumeFlood: {
		Class: VolumeFlood, URL: "/",
		MeanDemand: 0.0008, DemandCV: 0.20,
		PowerWeight: 0.25, PowerAlpha: 1.5, PerfBeta: 0.20,
		NetCost: 6.0,
	},
	SlowDrip: {
		Class: SlowDrip, URL: "/",
		MeanDemand: 0.0004, DemandCV: 0.20,
		PowerWeight: 0.10, PowerAlpha: 1.2, PerfBeta: 0.10,
		NetCost: 0.3,
	},
}

// demandMu and demandSigma are each class's log-normal demand parameters,
// derived once from (MeanDemand, DemandCV) with exactly the float operations
// Stream.LogNormal performs per sample — so minting through them draws
// bit-identical demands while skipping two Log and one Sqrt per request.
var demandMu, demandSigma [NumClasses]float64

func init() {
	for c := range catalog {
		p := &catalog[c]
		sigma2 := math.Log(1 + p.DemandCV*p.DemandCV)
		demandMu[c] = math.Log(p.MeanDemand) - sigma2/2
		demandSigma[c] = math.Sqrt(sigma2)
	}
}

// Catalog returns the full class catalog as a map. The map is built fresh
// per call (callers may mutate their copy); hot paths use Lookup instead.
func Catalog() map[Class]Profile {
	out := make(map[Class]Profile, NumClasses)
	for c := range catalog {
		out[Class(c)] = catalog[c]
	}
	return out
}

// Lookup returns the profile for c, panicking on an undefined class: every
// request in the simulator is constructed from the catalog, so a miss is a
// programming error, not an input error.
func Lookup(c Class) Profile {
	if !c.Valid() {
		panic(fmt.Sprintf("workload: no profile for %v", c))
	}
	return catalog[c]
}

// ByURL returns the profile serving the given URL, and whether one exists.
// Several classes may share "/"; the first by class order wins, which is
// fine because the NLB only routes application endpoints by URL.
func ByURL(url string) (Profile, bool) {
	for c := Class(0); c < numClasses; c++ {
		p := Lookup(c)
		if p.URL == url {
			return p, true
		}
	}
	return Profile{}, false
}
