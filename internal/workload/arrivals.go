package workload

import (
	"antidope/internal/rng"
)

// RateFn is a time-varying arrival rate in requests per second. It must be
// non-negative everywhere.
type RateFn func(t float64) float64

// ConstRate returns a flat rate function.
func ConstRate(rps float64) RateFn {
	return func(float64) float64 { return rps }
}

// StepRate returns rate a before t0 and rate b from t0 on — the canonical
// "attack starts at t0" shape.
func StepRate(a, b, t0 float64) RateFn {
	return func(t float64) float64 {
		if t < t0 {
			return a
		}
		return b
	}
}

// WindowRate returns rps inside [from, to) and zero outside.
func WindowRate(rps, from, to float64) RateFn {
	return func(t float64) float64 {
		if t >= from && t < to {
			return rps
		}
		return 0
	}
}

// Scale multiplies a rate function by k.
func Scale(f RateFn, k float64) RateFn {
	return func(t float64) float64 { return k * f(t) }
}

// SumRates adds rate functions pointwise.
func SumRates(fns ...RateFn) RateFn {
	return func(t float64) float64 {
		total := 0.0
		for _, f := range fns {
			total += f(t)
		}
		return total
	}
}

// Source is one traffic origin: a class of requests arriving at a
// (possibly time-varying) rate from a set of network sources. Legitimate
// traffic uses many sources at low per-source rate; a flood concentrates
// rate onto few sources, which is what the firewall keys on.
type Source struct {
	Class  Class
	Origin Origin
	Rate   RateFn
	// Sources is the number of distinct network identities the traffic is
	// spread across. Per-source rate = Rate/Sources.
	Sources int
	// FirstSource offsets the SourceID space so different Source specs do
	// not collide.
	FirstSource SourceID
}

// Arrival is one generated request arrival instant.
type Arrival struct {
	At  float64
	Req *Request
}

// Generator produces a time-ordered arrival stream for one Source using a
// non-homogeneous Poisson process via thinning.
type Generator struct {
	src     Source
	factory *Factory
	rnd     *rng.Stream
	// rateCap is the envelope rate used for thinning; it must dominate the
	// rate function. Callers set it to the known maximum of Rate.
	rateCap float64
	now     float64
}

// NewGenerator builds a generator. rateCap must be an upper bound of
// src.Rate over the whole horizon; a loose bound is correct, just slower.
func NewGenerator(src Source, rateCap float64, factory *Factory, rnd *rng.Stream) *Generator {
	if src.Sources <= 0 {
		src.Sources = 1
	}
	if rateCap <= 0 {
		rateCap = 1e-12
	}
	return &Generator{src: src, factory: factory, rnd: rnd, rateCap: rateCap}
}

// Clone returns an independent generator that will produce exactly the same
// arrival stream as this one from here on, minting requests from the given
// factory (the fork's own). The Source spec is shared — its Rate function is
// pure and the spec is read-only after construction.
func (g *Generator) Clone(factory *Factory) *Generator {
	c := *g
	c.factory = factory
	c.rnd = g.rnd.Clone()
	return &c
}

// Next returns the next arrival strictly after the previous one, or ok=false
// when no arrival occurs before horizon.
func (g *Generator) Next(horizon float64) (Arrival, bool) {
	t := g.now
	for {
		t += g.rnd.Exp(1 / g.rateCap)
		if t >= horizon {
			// Leave now at the horizon so the generator can resume if the
			// caller extends the horizon later.
			g.now = horizon
			return Arrival{}, false
		}
		if g.rnd.Float64()*g.rateCap <= g.src.Rate(t) {
			g.now = t
			src := g.src.FirstSource + SourceID(g.rnd.Intn(g.src.Sources))
			req := g.factory.New(t, g.src.Class, g.src.Origin, src)
			return Arrival{At: t, Req: req}, true
		}
	}
}

// Mix is a set of sources driven together; arrivals across sources merge
// into one ordered stream.
type Mix struct {
	gens    []*Generator
	pending []*Arrival // one lookahead slot per generator
}

// NewMix builds a merged arrival stream over the given sources. rateCaps
// must contain the envelope rate for each source, index-aligned.
func NewMix(sources []Source, rateCaps []float64, factory *Factory, rnd *rng.Stream) *Mix {
	if len(sources) != len(rateCaps) {
		panic("workload: sources and rateCaps length mismatch")
	}
	m := &Mix{}
	for i, s := range sources {
		gen := NewGenerator(s, rateCaps[i], factory, rnd.Split(s.Class.String()+string(rune('a'+i%26))+itoa(i)))
		m.gens = append(m.gens, gen)
		m.pending = append(m.pending, nil)
	}
	return m
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}

// Clone returns an independent mix producing the same merged stream from
// here on, minting from the given factory. Buffered lookahead arrivals are
// deep-copied, including their requests: both sides hand their copy to their
// own simulation, which mutates and eventually recycles it.
func (m *Mix) Clone(factory *Factory) *Mix {
	c := &Mix{
		gens:    make([]*Generator, len(m.gens)),
		pending: make([]*Arrival, len(m.pending)),
	}
	for i, g := range m.gens {
		c.gens[i] = g.Clone(factory)
	}
	for i, a := range m.pending {
		if a == nil {
			continue
		}
		req := *a.Req
		c.pending[i] = &Arrival{At: a.At, Req: &req}
	}
	return c
}

// Next returns the earliest arrival across all sources before horizon.
// The horizon must be non-decreasing across calls.
func (m *Mix) Next(horizon float64) (Arrival, bool) {
	best := -1
	for i, gen := range m.gens {
		if m.pending[i] == nil {
			if a, ok := gen.Next(horizon); ok {
				cp := a
				m.pending[i] = &cp
			}
		}
		if m.pending[i] != nil && (best == -1 || m.pending[i].At < m.pending[best].At) {
			best = i
		}
	}
	if best == -1 {
		return Arrival{}, false
	}
	out := *m.pending[best]
	m.pending[best] = nil
	return out, true
}
