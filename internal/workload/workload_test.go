package workload

import (
	"math"
	"testing"
	"testing/quick"

	"antidope/internal/rng"
)

func TestCatalogComplete(t *testing.T) {
	cat := Catalog()
	if len(cat) != NumClasses {
		t.Fatalf("catalog has %d classes, want %d", len(cat), NumClasses)
	}
	for c := Class(0); c < numClasses; c++ {
		p, ok := cat[c]
		if !ok {
			t.Fatalf("class %v missing from catalog", c)
		}
		if p.Class != c {
			t.Fatalf("class %v profile labelled %v", c, p.Class)
		}
		if p.MeanDemand <= 0 || p.DemandCV < 0 {
			t.Fatalf("class %v bad demand %g/%g", c, p.MeanDemand, p.DemandCV)
		}
		if p.PowerWeight <= 0 || p.PowerWeight > 1 {
			t.Fatalf("class %v power weight %g out of (0,1]", c, p.PowerWeight)
		}
		if p.PowerAlpha <= 0 || p.PerfBeta < 0 || p.PerfBeta > 1 {
			t.Fatalf("class %v bad exponents", c)
		}
		if p.URL == "" {
			t.Fatalf("class %v has no URL", c)
		}
	}
}

// The calibration facts Section 3 characterizes — these orderings are what
// the reproduced figures depend on.
func TestCalibrationOrderings(t *testing.T) {
	cat := Catalog()
	// K-means has the highest power per request (Fig. 5-b).
	for c, p := range cat {
		if c == KMeans {
			continue
		}
		if p.WattsPerRequestScale() >= cat[KMeans].WattsPerRequestScale() {
			t.Fatalf("%v per-request power >= K-means", c)
		}
	}
	// Colla-Filt has the highest aggregate power weight (Fig. 5-a).
	for c, p := range cat {
		if c == CollaFilt {
			continue
		}
		if p.PowerWeight >= cat[CollaFilt].PowerWeight {
			t.Fatalf("%v power weight >= Colla-Filt", c)
		}
	}
	// K-means is the least frequency-sensitive victim (Fig. 6-b mechanism).
	for _, c := range VictimClasses() {
		if c == KMeans {
			continue
		}
		if cat[c].PowerAlpha <= cat[KMeans].PowerAlpha {
			t.Fatalf("%v power alpha <= K-means", c)
		}
	}
	// Volumetric floods are low power intensity (Fig. 5 finding).
	if cat[VolumeFlood].WattsPerRequestScale() >= cat[TextCont].WattsPerRequestScale() {
		t.Fatal("volume flood per-request power should be below every victim endpoint")
	}
}

func TestClassString(t *testing.T) {
	if CollaFilt.String() != "Colla-Filt" || KMeans.String() != "K-means" {
		t.Fatal("class names wrong")
	}
	if Class(99).String() != "Class(99)" {
		t.Fatalf("out-of-range name %q", Class(99).String())
	}
	if Class(99).Valid() || Class(-1).Valid() {
		t.Fatal("invalid class validated")
	}
}

func TestVictimClasses(t *testing.T) {
	vs := VictimClasses()
	if len(vs) != 4 {
		t.Fatalf("victims %v", vs)
	}
	if vs[0] != CollaFilt || vs[3] != TextCont {
		t.Fatalf("victim order %v", vs)
	}
}

func TestLookupPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Lookup of undefined class did not panic")
		}
	}()
	Lookup(Class(42))
}

func TestByURL(t *testing.T) {
	p, ok := ByURL("/recommend")
	if !ok || p.Class != CollaFilt {
		t.Fatalf("ByURL(/recommend) = %v, %v", p.Class, ok)
	}
	if _, ok := ByURL("/nope"); ok {
		t.Fatal("unknown URL resolved")
	}
}

func TestFactoryMintsUniqueIDs(t *testing.T) {
	f := NewFactory(rng.New(1))
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		r := f.New(float64(i), CollaFilt, Legit, 1)
		if seen[r.ID] {
			t.Fatal("duplicate request ID")
		}
		seen[r.ID] = true
	}
	if f.Minted() != 1000 {
		t.Fatalf("minted %d", f.Minted())
	}
}

func TestFactoryDemandDistribution(t *testing.T) {
	f := NewFactory(rng.New(2))
	p := Lookup(KMeans)
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		r := f.New(0, KMeans, Attack, 1)
		if r.Demand <= 0 {
			t.Fatal("non-positive demand")
		}
		if r.Remaining != r.Demand {
			t.Fatal("remaining != demand at mint")
		}
		sum += r.Demand
	}
	mean := sum / n
	if math.Abs(mean-p.MeanDemand)/p.MeanDemand > 0.05 {
		t.Fatalf("mean demand %g, want ~%g", mean, p.MeanDemand)
	}
}

func TestRequestResponseTime(t *testing.T) {
	r := &Request{ArriveAt: 10, FinishAt: 10.25}
	if got := r.ResponseTime(); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("rt %g", got)
	}
	unfinished := &Request{ArriveAt: 10}
	if unfinished.ResponseTime() != 0 {
		t.Fatal("unfinished rt != 0")
	}
	dropped := &Request{ArriveAt: 10, FinishAt: 11, Dropped: true}
	if dropped.ResponseTime() != 0 {
		t.Fatal("dropped rt != 0")
	}
}

func TestConstAndStepRate(t *testing.T) {
	c := ConstRate(5)
	if c(0) != 5 || c(1000) != 5 {
		t.Fatal("const rate")
	}
	s := StepRate(1, 9, 100)
	if s(99) != 1 || s(100) != 9 {
		t.Fatal("step rate")
	}
	w := WindowRate(7, 10, 20)
	if w(9) != 0 || w(10) != 7 || w(19.9) != 7 || w(20) != 0 {
		t.Fatal("window rate")
	}
	sum := SumRates(c, s)
	if sum(200) != 14 {
		t.Fatal("sum rate")
	}
	if Scale(c, 2)(0) != 10 {
		t.Fatal("scale rate")
	}
}

func TestGeneratorPoissonRate(t *testing.T) {
	f := NewFactory(rng.New(3))
	g := NewGenerator(Source{Class: TextCont, Origin: Legit, Rate: ConstRate(50), Sources: 10},
		50, f, rng.New(4))
	count := 0
	const horizon = 200.0
	for {
		a, ok := g.Next(horizon)
		if !ok {
			break
		}
		if a.At >= horizon {
			t.Fatal("arrival past horizon")
		}
		count++
	}
	got := float64(count) / horizon
	if math.Abs(got-50)/50 > 0.05 {
		t.Fatalf("empirical rate %g, want ~50", got)
	}
}

func TestGeneratorArrivalsOrdered(t *testing.T) {
	f := NewFactory(rng.New(5))
	g := NewGenerator(Source{Class: CollaFilt, Rate: ConstRate(100), Sources: 3},
		100, f, rng.New(6))
	prev := -1.0
	for i := 0; i < 1000; i++ {
		a, ok := g.Next(1e9)
		if !ok {
			t.Fatal("generator dried up")
		}
		if a.At <= prev {
			t.Fatalf("arrivals out of order: %g after %g", a.At, prev)
		}
		prev = a.At
	}
}

func TestGeneratorTimeVaryingRate(t *testing.T) {
	f := NewFactory(rng.New(7))
	g := NewGenerator(Source{Class: TextCont, Rate: WindowRate(100, 50, 100)},
		100, f, rng.New(8))
	inWindow, outWindow := 0, 0
	for {
		a, ok := g.Next(150)
		if !ok {
			break
		}
		if a.At >= 50 && a.At < 100 {
			inWindow++
		} else {
			outWindow++
		}
	}
	if outWindow != 0 {
		t.Fatalf("%d arrivals outside the rate window", outWindow)
	}
	if inWindow < 4000 || inWindow > 6000 {
		t.Fatalf("window arrivals %d, want ~5000", inWindow)
	}
}

func TestGeneratorSourceSpread(t *testing.T) {
	f := NewFactory(rng.New(9))
	g := NewGenerator(Source{Class: CollaFilt, Rate: ConstRate(100), Sources: 8, FirstSource: 100},
		100, f, rng.New(10))
	seen := make(map[SourceID]int)
	for i := 0; i < 2000; i++ {
		a, ok := g.Next(1e9)
		if !ok {
			break
		}
		if a.Req.Source < 100 || a.Req.Source >= 108 {
			t.Fatalf("source %d outside assigned block", a.Req.Source)
		}
		seen[a.Req.Source]++
	}
	if len(seen) != 8 {
		t.Fatalf("only %d/8 sources used", len(seen))
	}
}

func TestMixMergesOrdered(t *testing.T) {
	f := NewFactory(rng.New(11))
	sources := []Source{
		{Class: CollaFilt, Origin: Attack, Rate: ConstRate(30), Sources: 2},
		{Class: AliNormal, Origin: Legit, Rate: ConstRate(70), Sources: 50, FirstSource: 1000},
	}
	m := NewMix(sources, []float64{30, 70}, f, rng.New(12))
	prev := -1.0
	counts := map[Class]int{}
	for {
		a, ok := m.Next(100)
		if !ok {
			break
		}
		if a.At < prev {
			t.Fatalf("mix out of order: %g < %g", a.At, prev)
		}
		prev = a.At
		counts[a.Req.Class]++
	}
	if counts[CollaFilt] < 2000 || counts[CollaFilt] > 4000 {
		t.Fatalf("colla-filt count %d, want ~3000", counts[CollaFilt])
	}
	if counts[AliNormal] < 6000 || counts[AliNormal] > 8000 {
		t.Fatalf("alinormal count %d, want ~7000", counts[AliNormal])
	}
}

func TestMixHorizonExtension(t *testing.T) {
	f := NewFactory(rng.New(13))
	m := NewMix([]Source{{Class: TextCont, Rate: ConstRate(10)}}, []float64{10}, f, rng.New(14))
	first := 0
	for {
		_, ok := m.Next(10)
		if !ok {
			break
		}
		first++
	}
	second := 0
	for {
		_, ok := m.Next(20)
		if !ok {
			break
		}
		second++
	}
	if first == 0 || second == 0 {
		t.Fatalf("arrivals: first window %d, extended window %d", first, second)
	}
}

func TestMixMismatchedCapsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched rateCaps did not panic")
		}
	}()
	NewMix([]Source{{Class: TextCont, Rate: ConstRate(1)}}, nil, NewFactory(rng.New(1)), rng.New(2))
}

// Property: thinning never generates arrivals where the rate is zero and
// never violates time ordering.
func TestQuickGeneratorValid(t *testing.T) {
	f := func(seed uint64, rateRaw uint8) bool {
		rate := float64(rateRaw%50) + 1
		fac := NewFactory(rng.New(seed))
		g := NewGenerator(Source{Class: TextCont, Rate: WindowRate(rate, 5, 10)},
			rate, fac, rng.New(seed+1))
		prev := -1.0
		for {
			a, ok := g.Next(20)
			if !ok {
				return true
			}
			if a.At <= prev || a.At < 5 || a.At >= 10 {
				return false
			}
			prev = a.At
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGenerator(b *testing.B) {
	f := NewFactory(rng.New(1))
	g := NewGenerator(Source{Class: CollaFilt, Rate: ConstRate(1000), Sources: 10},
		1000, f, rng.New(2))
	for i := 0; i < b.N; i++ {
		if _, ok := g.Next(1e12); !ok {
			b.Fatal("dried up")
		}
	}
}
