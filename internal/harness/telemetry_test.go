package harness

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"testing"

	"antidope/internal/core"
	"antidope/internal/obs"
)

// teleJobs builds n tiny independent jobs over distinct seeds.
func teleJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		cfg := core.DefaultConfig()
		cfg.Horizon = 2
		cfg.WarmupSec = 0
		cfg.Seed = uint64(100 + i)
		jobs[i] = Job{Label: fmt.Sprintf("job-%02d", i), Config: cfg}
	}
	return jobs
}

// TestTelemetryRecordsJobs checks the full accounting of a successful pool
// run: every job started, completed, recorded with at least one attempt,
// and the pool width gauged.
func TestTelemetryRecordsJobs(t *testing.T) {
	tele := NewTelemetry()
	res := New(3).WithTelemetry(tele).Run(teleJobs(6))
	if err := Errs(res); err != nil {
		t.Fatalf("jobs failed: %v", err)
	}

	recs := tele.Records()
	if len(recs) != 6 {
		t.Fatalf("got %d records, want 6", len(recs))
	}
	labels := make(map[string]bool)
	for _, r := range recs {
		labels[r.Label] = true
		if r.Attempts != 1 {
			t.Errorf("%s: attempts = %d, want 1", r.Label, r.Attempts)
		}
		if r.Err != "" {
			t.Errorf("%s: unexpected error %q", r.Label, r.Err)
		}
		if r.RuntimeS < 0 {
			t.Errorf("%s: negative runtime %v", r.Label, r.RuntimeS)
		}
		if r.Worker < 0 || r.Worker >= 3 {
			t.Errorf("%s: worker %d out of range", r.Label, r.Worker)
		}
	}
	if len(labels) != 6 {
		t.Errorf("labels not unique: %v", labels)
	}
}

// TestTelemetryCountsFailuresAndRetries runs a job that always fails
// (invalid config) and checks the retry and failure accounting, including
// the terminal error string in the manifest record.
func TestTelemetryCountsFailuresAndRetries(t *testing.T) {
	bad := core.DefaultConfig()
	bad.Horizon = -1 // fails validation on every attempt
	tele := NewTelemetry()
	res := New(1).WithTelemetry(tele).
		WithRetry(RetryPolicy{Attempts: 3}).
		Run([]Job{{Label: "doomed", Config: bad}})
	if res[0].Err == nil {
		t.Fatal("invalid config unexpectedly succeeded")
	}

	recs := tele.Records()
	if len(recs) != 1 || recs[0].Attempts != 3 || recs[0].Err == "" {
		t.Fatalf("failure record wrong: %+v", recs)
	}

	var buf bytes.Buffer
	if err := tele.GatherPrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"harness_jobs_started_total 1",
		"harness_jobs_completed_total 0",
		"harness_jobs_failed_total 1",
		"harness_job_retries_total 2",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want+"\n")) {
			t.Errorf("scrape missing %q:\n%s", want, out)
		}
	}
}

// TestTelemetryScrapeConforms validates the registry scrape against the
// Prometheus conformance checker after a real pool run.
func TestTelemetryScrapeConforms(t *testing.T) {
	tele := NewTelemetry()
	if err := Errs(New(2).WithTelemetry(tele).Run(teleJobs(3))); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tele.GatherPrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidatePrometheus(buf.Bytes()); err != nil {
		t.Fatalf("telemetry scrape fails conformance: %v\n%s", err, buf.String())
	}
	// A fresh telemetry (no jobs yet) must also scrape cleanly.
	var empty bytes.Buffer
	if err := NewTelemetry().GatherPrometheus(&empty); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidatePrometheus(empty.Bytes()); err != nil {
		t.Fatalf("empty telemetry scrape fails conformance: %v", err)
	}
}

// TestTelemetryManifest checks that the manifest is valid JSON with the
// schema tag, stable label-sorted job order, and coherent totals.
func TestTelemetryManifest(t *testing.T) {
	tele := NewTelemetry()
	if err := Errs(New(4).WithTelemetry(tele).Run(teleJobs(5))); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := tele.WriteManifest(&buf); err != nil {
		t.Fatal(err)
	}
	var m struct {
		Schema        string `json:"schema"`
		Workers       int    `json:"workers"`
		JobsStarted   uint64 `json:"jobs_started"`
		JobsCompleted uint64 `json:"jobs_completed"`
		JobsFailed    uint64 `json:"jobs_failed"`
		Jobs          []struct {
			Label    string  `json:"label"`
			Attempts int     `json:"attempts"`
			RuntimeS float64 `json:"runtime_s"`
		} `json:"jobs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("manifest is not valid JSON: %v\n%s", err, buf.String())
	}
	if m.Schema != ManifestSchema {
		t.Errorf("schema = %q, want %q", m.Schema, ManifestSchema)
	}
	if m.Workers != 4 || m.JobsStarted != 5 || m.JobsCompleted != 5 || m.JobsFailed != 0 {
		t.Errorf("totals wrong: %+v", m)
	}
	if len(m.Jobs) != 5 {
		t.Fatalf("got %d job entries, want 5", len(m.Jobs))
	}
	if !sort.SliceIsSorted(m.Jobs, func(i, j int) bool { return m.Jobs[i].Label < m.Jobs[j].Label }) {
		t.Errorf("manifest jobs not sorted by label: %+v", m.Jobs)
	}
}

// TestTelemetryDoesNotPerturbResults pins the contract stated on
// WithTelemetry: attaching telemetry cannot change any simulation result.
func TestTelemetryDoesNotPerturbResults(t *testing.T) {
	plain := New(2).Run(teleJobs(4))
	observed := New(2).WithTelemetry(NewTelemetry()).Run(teleJobs(4))
	if err := errors.Join(Errs(plain), Errs(observed)); err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		var a, b bytes.Buffer
		plain[i].Result.Fprint(&a)
		observed[i].Result.Fprint(&b)
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("%s: telemetry changed the result", plain[i].Label)
		}
	}
}

// TestTelemetryNilIsNoOp runs the pool with no telemetry attached — every
// hook must tolerate the nil receiver.
func TestTelemetryNilIsNoOp(t *testing.T) {
	var tele *Telemetry
	res := New(2).WithTelemetry(tele).Run(teleJobs(2))
	if err := Errs(res); err != nil {
		t.Fatal(err)
	}
	done := tele.jobBegin(0, "x")
	done(1, nil) // must not panic
	tele.poolStarted(1)
}

// TestTelemetrySnapshotCounters folds the process-wide snapshot/fork stats
// as deltas: a fresh telemetry starts at zero even after other tests
// snapshotted, and snapshots taken after construction appear.
func TestTelemetrySnapshotCounters(t *testing.T) {
	tele := NewTelemetry()
	var before bytes.Buffer
	if err := tele.GatherPrometheus(&before); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(before.Bytes(), []byte("core_snapshots_total 0\n")) {
		t.Fatalf("fresh telemetry must report zero snapshots:\n%s", before.String())
	}

	cfg := core.DefaultConfig()
	cfg.Horizon = 2
	cfg.WarmupSec = 0
	sim, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.Start()
	sim.RunTo(1)
	if _, err := sim.Snapshot(); err != nil {
		t.Fatal(err)
	}

	var after bytes.Buffer
	if err := tele.GatherPrometheus(&after); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(after.Bytes(), []byte("core_snapshots_total 0\n")) {
		t.Fatalf("snapshot not reflected in telemetry:\n%s", after.String())
	}
}
