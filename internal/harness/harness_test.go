package harness

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"antidope/internal/core"
	"antidope/internal/defense"
)

// job builds a tiny runnable config whose seed varies by index.
func job(i int) Job {
	cfg := core.DefaultConfig()
	cfg.Horizon = 12
	cfg.WarmupSec = 1
	cfg.NormalRPS = 20
	cfg.Seed = uint64(i + 1)
	return Job{Label: fmt.Sprintf("job/%d", i), Config: cfg}
}

// badJob fails validation (negative horizon) on every attempt.
func badJob(label string) Job {
	cfg := core.DefaultConfig()
	cfg.Horizon = -1
	return Job{Label: label, Config: cfg}
}

func TestDefaultWorkers(t *testing.T) {
	if New(0).Workers() < 1 {
		t.Fatal("default pool has no workers")
	}
	if got := New(7).Workers(); got != 7 {
		t.Fatalf("workers = %d, want 7", got)
	}
}

func TestRunPreservesSubmissionOrder(t *testing.T) {
	const n = 12
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = job(i)
	}
	seq := New(1).Run(jobs)
	par := New(8).Run(jobs)
	if len(seq) != n || len(par) != n {
		t.Fatalf("result lengths %d/%d, want %d", len(seq), len(par), n)
	}
	for i := 0; i < n; i++ {
		if seq[i].Label != jobs[i].Label || par[i].Label != jobs[i].Label {
			t.Fatalf("slot %d holds %q/%q, want %q", i, seq[i].Label, par[i].Label, jobs[i].Label)
		}
		if seq[i].Err != nil || par[i].Err != nil {
			t.Fatalf("slot %d errored: %v / %v", i, seq[i].Err, par[i].Err)
		}
		// Same config → same deterministic measurements on either pool width.
		if seq[i].Result.CompletedLegit != par[i].Result.CompletedLegit {
			t.Fatalf("slot %d diverged: %d vs %d completions",
				i, seq[i].Result.CompletedLegit, par[i].Result.CompletedLegit)
		}
	}
}

func TestRetryOncePolicy(t *testing.T) {
	rr := New(2).Run([]Job{job(0), badJob("bad/one"), job(1)})
	if rr[0].Err != nil || rr[0].Attempts != 1 {
		t.Fatalf("good job: err=%v attempts=%d", rr[0].Err, rr[0].Attempts)
	}
	if rr[1].Err == nil {
		t.Fatal("bad job did not error")
	}
	if rr[1].Attempts != 2 {
		t.Fatalf("bad job ran %d times, want 2 (retry-once)", rr[1].Attempts)
	}
	if rr[2].Err != nil {
		t.Fatalf("job after the failure errored: %v", rr[2].Err)
	}
	err := Errs(rr)
	if err == nil || !strings.Contains(err.Error(), "bad/one") {
		t.Fatalf("Errs = %v, want the failing label", err)
	}
}

func TestRetryPolicyAttempts(t *testing.T) {
	rr := New(1).WithRetry(RetryPolicy{Attempts: 4}).Run([]Job{badJob("bad")})
	if rr[0].Err == nil || rr[0].Attempts != 4 {
		t.Fatalf("err=%v attempts=%d, want an error after 4 tries", rr[0].Err, rr[0].Attempts)
	}
	rr = New(1).WithRetry(RetryPolicy{Attempts: 1}).Run([]Job{badJob("bad")})
	if rr[0].Attempts != 1 {
		t.Fatalf("attempts=%d with retries disabled, want 1", rr[0].Attempts)
	}
}

// TestRetryBackoffPerturbsSeed: with a nonzero Backoff a successful retry
// runs a different seed than the first attempt would replay — visible as
// measurements differing from the Backoff=0 run of the same job.
func TestRetryBackoffPerturbsSeed(t *testing.T) {
	// The same good job runs attempt 0 in both pools, so Backoff must not
	// change anything for jobs that succeed first try.
	j := job(3)
	plain := New(1).Run([]Job{j})
	shifted := New(1).WithRetry(RetryPolicy{Attempts: 3, Backoff: 1000}).Run([]Job{j})
	if plain[0].Err != nil || shifted[0].Err != nil {
		t.Fatalf("clean jobs errored: %v / %v", plain[0].Err, shifted[0].Err)
	}
	if plain[0].Result.CompletedLegit != shifted[0].Result.CompletedLegit {
		t.Fatal("Backoff changed a first-attempt success")
	}
	if plain[0].Attempts != 1 || shifted[0].Attempts != 1 {
		t.Fatalf("attempts %d/%d, want 1/1", plain[0].Attempts, shifted[0].Attempts)
	}
}

// panicScheme blows up inside ControlSlot to exercise panic capture.
type panicScheme struct{ defense.Scheme }

func (p panicScheme) ControlSlot(now float64, env *defense.Env) defense.SlotReport {
	panic("injected test panic")
}

func TestPanicBecomesLabeledError(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Horizon = 12
	cfg.WarmupSec = 1
	cfg.NormalRPS = 10
	cfg.Scheme = panicScheme{defense.NewNone()}
	rr := New(1).WithRetry(RetryPolicy{Attempts: 1}).Run([]Job{{Label: "boom", Config: cfg}})
	if rr[0].Err == nil {
		t.Fatal("panicking job reported success")
	}
	msg := rr[0].Err.Error()
	if !strings.Contains(msg, "injected test panic") || !strings.Contains(msg, "ControlSlot") {
		t.Fatalf("panic error lacks the panic value or stack: %v", msg)
	}
	if err := Errs(rr); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("Errs = %v, want the failing label", err)
	}
}

// stallScheme blocks a run until released, to exercise the watchdog.
type stallScheme struct {
	defense.Scheme
	gate chan struct{}
}

func (s stallScheme) ControlSlot(now float64, env *defense.Env) defense.SlotReport {
	<-s.gate
	return defense.SlotReport{}
}

func TestJobTimeoutConvertsHangToError(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate) // release the abandoned goroutine at test end
	cfg := core.DefaultConfig()
	cfg.Horizon = 12
	cfg.WarmupSec = 1
	cfg.NormalRPS = 10
	cfg.Scheme = stallScheme{defense.NewNone(), gate}
	rr := New(1).
		WithRetry(RetryPolicy{Attempts: 1}).
		WithJobTimeout(50 * time.Millisecond).
		Run([]Job{{Label: "hung", Config: cfg}})
	if rr[0].Err == nil || !strings.Contains(rr[0].Err.Error(), "timeout") {
		t.Fatalf("hung job err = %v, want a timeout error", rr[0].Err)
	}
}

func TestErrsNilOnSuccess(t *testing.T) {
	rr := New(2).Run([]Job{job(0), job(1)})
	if err := Errs(rr); err != nil {
		t.Fatalf("Errs = %v on a clean run", err)
	}
	res := Results(rr)
	if len(res) != 2 || res[0] == nil || res[1] == nil {
		t.Fatalf("Results dropped entries: %v", res)
	}
}

func TestGoRunsEveryClosure(t *testing.T) {
	var ran atomic.Int64
	fns := make([]func(), 17)
	for i := range fns {
		fns[i] = func() { ran.Add(1) }
	}
	New(4).Go(fns)
	if got := ran.Load(); got != 17 {
		t.Fatalf("ran %d closures, want 17", got)
	}
}

func TestRunEmpty(t *testing.T) {
	if got := New(4).Run(nil); len(got) != 0 {
		t.Fatalf("empty run returned %d results", len(got))
	}
	New(4).Go(nil)
}
