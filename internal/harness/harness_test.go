package harness

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"antidope/internal/core"
)

// job builds a tiny runnable config whose seed varies by index.
func job(i int) Job {
	cfg := core.DefaultConfig()
	cfg.Horizon = 12
	cfg.WarmupSec = 1
	cfg.NormalRPS = 20
	cfg.Seed = uint64(i + 1)
	return Job{Label: fmt.Sprintf("job/%d", i), Config: cfg}
}

// badJob fails validation (negative horizon) on every attempt.
func badJob(label string) Job {
	cfg := core.DefaultConfig()
	cfg.Horizon = -1
	return Job{Label: label, Config: cfg}
}

func TestDefaultWorkers(t *testing.T) {
	if New(0).Workers() < 1 {
		t.Fatal("default pool has no workers")
	}
	if got := New(7).Workers(); got != 7 {
		t.Fatalf("workers = %d, want 7", got)
	}
}

func TestRunPreservesSubmissionOrder(t *testing.T) {
	const n = 12
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = job(i)
	}
	seq := New(1).Run(jobs)
	par := New(8).Run(jobs)
	if len(seq) != n || len(par) != n {
		t.Fatalf("result lengths %d/%d, want %d", len(seq), len(par), n)
	}
	for i := 0; i < n; i++ {
		if seq[i].Label != jobs[i].Label || par[i].Label != jobs[i].Label {
			t.Fatalf("slot %d holds %q/%q, want %q", i, seq[i].Label, par[i].Label, jobs[i].Label)
		}
		if seq[i].Err != nil || par[i].Err != nil {
			t.Fatalf("slot %d errored: %v / %v", i, seq[i].Err, par[i].Err)
		}
		// Same config → same deterministic measurements on either pool width.
		if seq[i].Result.CompletedLegit != par[i].Result.CompletedLegit {
			t.Fatalf("slot %d diverged: %d vs %d completions",
				i, seq[i].Result.CompletedLegit, par[i].Result.CompletedLegit)
		}
	}
}

func TestRetryOncePolicy(t *testing.T) {
	rr := New(2).Run([]Job{job(0), badJob("bad/one"), job(1)})
	if rr[0].Err != nil || rr[0].Attempts != 1 {
		t.Fatalf("good job: err=%v attempts=%d", rr[0].Err, rr[0].Attempts)
	}
	if rr[1].Err == nil {
		t.Fatal("bad job did not error")
	}
	if rr[1].Attempts != 2 {
		t.Fatalf("bad job ran %d times, want 2 (retry-once)", rr[1].Attempts)
	}
	if rr[2].Err != nil {
		t.Fatalf("job after the failure errored: %v", rr[2].Err)
	}
	err := Errs(rr)
	if err == nil || !strings.Contains(err.Error(), "bad/one") {
		t.Fatalf("Errs = %v, want the failing label", err)
	}
}

func TestErrsNilOnSuccess(t *testing.T) {
	rr := New(2).Run([]Job{job(0), job(1)})
	if err := Errs(rr); err != nil {
		t.Fatalf("Errs = %v on a clean run", err)
	}
	res := Results(rr)
	if len(res) != 2 || res[0] == nil || res[1] == nil {
		t.Fatalf("Results dropped entries: %v", res)
	}
}

func TestGoRunsEveryClosure(t *testing.T) {
	var ran atomic.Int64
	fns := make([]func(), 17)
	for i := range fns {
		fns[i] = func() { ran.Add(1) }
	}
	New(4).Go(fns)
	if got := ran.Load(); got != 17 {
		t.Fatalf("ran %d closures, want 17", got)
	}
}

func TestRunEmpty(t *testing.T) {
	if got := New(4).Run(nil); len(got) != 0 {
		t.Fatalf("empty run returned %d results", len(got))
	}
	New(4).Go(nil)
}
