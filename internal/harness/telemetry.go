package harness

// Telemetry is the pool's self-observability: while the simulations inside
// the jobs remain purely sim-time, the harness around them lives in wall
// time, and this file is its sanctioned measurement layer. A Telemetry
// records per-job runtime, retries, and worker occupancy into an
// obs.Registry (scrapeable live via obs.Serve) and keeps a per-job record
// list that WriteManifest renders as a run-manifest JSON. Wall-clock values
// never flow into a simulation — they only describe how the host executed
// it — which is why the timing here carries walltime allows like the
// watchdog in runOnce.

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"

	"antidope/internal/core"
	"antidope/internal/obs"
)

// ManifestSchema tags the manifest JSON written by WriteManifest.
const ManifestSchema = "antidope-manifest/v1"

// jobRuntimeBounds are the histogram buckets for per-job wall runtime, in
// seconds: simulation jobs span ~ms (unit-test configs) to minutes
// (full-fidelity figures).
var jobRuntimeBounds = []float64{0.001, 0.01, 0.1, 0.5, 1, 5, 15, 60, 300}

// JobRecord is one completed job's manifest entry.
type JobRecord struct {
	Label    string
	Worker   int
	Attempts int
	// RuntimeS is the job's wall runtime in seconds, summed over attempts.
	RuntimeS float64
	// Err is the terminal error string; empty on success.
	Err string
}

// Telemetry collects harness self-observability. Safe for concurrent use
// by the pool's workers and a live scraper; a nil *Telemetry is a valid
// no-op receiver, so the pool calls it unconditionally.
type Telemetry struct {
	mu  sync.Mutex
	reg *obs.Registry

	started   *obs.Counter
	completed *obs.Counter
	failed    *obs.Counter
	retries   *obs.Counter
	runtime   *obs.Histogram

	workers  *obs.Gauge
	busy     *obs.Gauge
	busyPeak *obs.Gauge

	snapshots *obs.Counter
	forks     *obs.Counter
	// snapBase/forkBase are the process-wide core counters at construction;
	// the exported totals are deltas so a fresh Telemetry starts at zero.
	snapBase, forkBase uint64

	inflight int
	records  []JobRecord
}

// NewTelemetry builds an empty Telemetry whose snapshot/fork counters are
// zeroed against the current process-wide totals.
func NewTelemetry() *Telemetry {
	reg := obs.NewRegistry()
	t := &Telemetry{
		reg:       reg,
		started:   reg.Counter("harness_jobs_started_total", "jobs handed to a worker"),
		completed: reg.Counter("harness_jobs_completed_total", "jobs finished successfully"),
		failed:    reg.Counter("harness_jobs_failed_total", "jobs that exhausted the retry policy"),
		retries:   reg.Counter("harness_job_retries_total", "attempts beyond each job's first"),
		runtime:   reg.Histogram("harness_job_runtime_seconds", "per-job wall runtime (all attempts)", jobRuntimeBounds),
		workers:   reg.Gauge("harness_pool_workers", "configured worker count of the last pool run"),
		busy:      reg.Gauge("harness_workers_busy", "workers currently running a job"),
		busyPeak:  reg.Gauge("harness_workers_busy_peak", "maximum concurrently busy workers seen"),
		snapshots: reg.Counter("core_snapshots_total", "core simulation snapshots taken process-wide"),
		forks:     reg.Counter("core_forks_total", "core simulation forks taken process-wide"),
	}
	t.snapBase, t.forkBase = core.SnapshotStats()
	return t
}

// jobBegin records a job start and returns the completion hook the pool
// calls with the job's outcome. Nil-safe: a nil Telemetry returns a no-op.
//
// The wall clock here is the sanctioned measurement layer: it times how
// long the HOST took to execute a job and never feeds a simulation.
//
//lint:allow walltime -- harness self-observability; wall time never enters a simulation
func (t *Telemetry) jobBegin(worker int, label string) func(attempts int, err error) {
	if t == nil {
		return func(int, error) {}
	}
	t.mu.Lock()
	t.started.Inc()
	t.inflight++
	t.busy.Set(float64(t.inflight))
	t.busyPeak.SetMax(float64(t.inflight))
	t.mu.Unlock()
	start := time.Now() //lint:allow walltime -- job runtime measurement only
	return func(attempts int, err error) {
		elapsed := time.Since(start).Seconds() //lint:allow walltime -- job runtime measurement only
		t.mu.Lock()
		defer t.mu.Unlock()
		t.inflight--
		t.busy.Set(float64(t.inflight))
		t.runtime.Observe(elapsed)
		if attempts > 1 {
			t.retries.Add(uint64(attempts - 1))
		}
		rec := JobRecord{Label: label, Worker: worker, Attempts: attempts, RuntimeS: elapsed}
		if err != nil {
			t.failed.Inc()
			rec.Err = err.Error()
		} else {
			t.completed.Inc()
		}
		t.records = append(t.records, rec)
	}
}

// poolStarted records the width of a pool run. Nil-safe.
func (t *Telemetry) poolStarted(workers int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.workers.Set(float64(workers))
	t.mu.Unlock()
}

// refreshSnapshotStats folds the process-wide core snapshot/fork totals
// into the registry counters as deltas against the construction baseline.
// Called with t.mu held.
func (t *Telemetry) refreshSnapshotStats() {
	snaps, forks := core.SnapshotStats()
	if cur := snaps - t.snapBase; cur > t.snapshots.Value() {
		t.snapshots.Add(cur - t.snapshots.Value())
	}
	if cur := forks - t.forkBase; cur > t.forks.Value() {
		t.forks.Add(cur - t.forks.Value())
	}
}

// GatherPrometheus renders a consistent snapshot of the telemetry registry
// (obs.Gatherer): render under the lock, write outside it.
func (t *Telemetry) GatherPrometheus(w io.Writer) error {
	t.mu.Lock()
	t.refreshSnapshotStats()
	var sb stringsBuilder
	err := t.reg.WritePrometheus(&sb)
	t.mu.Unlock()
	if err != nil {
		return err
	}
	_, err = io.WriteString(w, sb.String())
	return err
}

// stringsBuilder is a minimal io.Writer string accumulator, local so this
// file's imports stay small.
type stringsBuilder struct{ b []byte }

func (s *stringsBuilder) Write(p []byte) (int, error) { s.b = append(s.b, p...); return len(p), nil }
func (s *stringsBuilder) String() string              { return string(s.b) }

// Records returns a copy of the per-job records in completion order.
func (t *Telemetry) Records() []JobRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]JobRecord(nil), t.records...)
}

// WriteManifest renders the run manifest as JSON: schema tag, pool and
// total counters, and one entry per job sorted by label (then completion
// order for duplicate labels), so the structure is stable even though the
// wall-clock runtimes inside it are not reproducible across hosts.
func (t *Telemetry) WriteManifest(w io.Writer) error {
	t.mu.Lock()
	t.refreshSnapshotStats()
	recs := append([]JobRecord(nil), t.records...)
	workers := t.workers.Value()
	started := t.started.Value()
	completed := t.completed.Value()
	failed := t.failed.Value()
	retries := t.retries.Value()
	snaps := t.snapshots.Value()
	forks := t.forks.Value()
	t.mu.Unlock()

	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Label < recs[j].Label })

	bw := bufio.NewWriter(w)
	bw.WriteString("{\n")
	bw.WriteString("  \"schema\": \"" + ManifestSchema + "\",\n")
	bw.WriteString("  \"workers\": " + strconv.Itoa(int(workers)) + ",\n")
	bw.WriteString("  \"jobs_started\": " + strconv.FormatUint(started, 10) + ",\n")
	bw.WriteString("  \"jobs_completed\": " + strconv.FormatUint(completed, 10) + ",\n")
	bw.WriteString("  \"jobs_failed\": " + strconv.FormatUint(failed, 10) + ",\n")
	bw.WriteString("  \"job_retries\": " + strconv.FormatUint(retries, 10) + ",\n")
	bw.WriteString("  \"core_snapshots\": " + strconv.FormatUint(snaps, 10) + ",\n")
	bw.WriteString("  \"core_forks\": " + strconv.FormatUint(forks, 10) + ",\n")
	bw.WriteString("  \"jobs\": [")
	for i, r := range recs {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString("\n    {\"label\": " + strconv.Quote(r.Label) +
			", \"worker\": " + strconv.Itoa(r.Worker) +
			", \"attempts\": " + strconv.Itoa(r.Attempts) +
			", \"runtime_s\": " + obs.FormatFloat(r.RuntimeS))
		if r.Err != "" {
			bw.WriteString(", \"error\": " + strconv.Quote(r.Err))
		}
		bw.WriteByte('}')
	}
	if len(recs) > 0 {
		bw.WriteString("\n  ")
	}
	bw.WriteString("]\n}\n")
	return bw.Flush()
}
