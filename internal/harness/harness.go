// Package harness executes named simulation jobs on a worker pool while
// preserving deterministic output: jobs are handed to workers in
// submission order, every job's randomness is fully determined by its own
// core.Config (the experiments derive per-label seeds), and results come
// back indexed by submission position. A suite that prints results in
// submission order therefore produces byte-identical output whether the
// pool has one worker or many — the invariant the equivalence test in
// internal/experiments locks down.
//
// The pool also replaces the former crash-on-error behaviour of the
// experiment runners: a failing job is retried once (errors can only come
// from configuration assembly today, but the policy is cheap insurance
// against future flaky resources) and then collected into the RunResult
// instead of panicking, so one bad configuration cannot kill a whole
// paperbench run.
package harness

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"antidope/internal/core"
)

// Job names one simulation run. The config must be self-contained: in
// particular its Scheme must be a fresh instance not shared with any other
// job, because jobs run concurrently and schemes are stateful.
type Job struct {
	Label  string
	Config core.Config
}

// RunResult is the outcome of one job.
type RunResult struct {
	Label  string
	Result *core.Result
	// Err is the terminal error after the retry policy; nil on success.
	Err error
	// Attempts is how many times the job ran (1, or 2 after a retry).
	Attempts int
}

// Pool is a fixed-width worker pool. The zero value is not usable; build
// with New.
type Pool struct {
	workers int
}

// New builds a pool. workers <= 0 selects one worker per available CPU
// (runtime.GOMAXPROCS(0)); workers == 1 reproduces strictly sequential
// execution.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the pool width.
func (p *Pool) Workers() int { return p.workers }

// Run executes every job and returns the results in submission order,
// regardless of completion order. Each failing job is retried once before
// its error is recorded. Run never panics on job errors; inspect the
// results (or Errs) for failures.
func (p *Pool) Run(jobs []Job) []RunResult {
	out := make([]RunResult, len(jobs))
	if len(jobs) == 0 {
		return out
	}
	if p.workers == 1 || len(jobs) == 1 {
		for i, j := range jobs {
			out[i] = runJob(j)
		}
		return out
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < p.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = runJob(jobs[i])
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// Go runs arbitrary closures on the pool and waits for all of them — the
// escape hatch for work that is not a bare config (e.g. the SLA capacity
// binary searches, which are sequential inside but independent across
// schemes). Closures must write results into their own captured slots.
func (p *Pool) Go(fns []func()) {
	if len(fns) == 0 {
		return
	}
	if p.workers == 1 || len(fns) == 1 {
		for _, fn := range fns {
			fn()
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < p.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				fns[i]()
			}
		}()
	}
	for i := range fns {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// runJob executes one job with the retry-once policy. Retrying reuses the
// job's config verbatim; that is safe because core.RunOnce can only fail
// during assembly/validation, before any stateful component (scheme,
// firewall) has observed traffic.
func runJob(j Job) RunResult {
	res, err := core.RunOnce(j.Config)
	attempts := 1
	if err != nil {
		res, err = core.RunOnce(j.Config)
		attempts = 2
	}
	return RunResult{Label: j.Label, Result: res, Err: err, Attempts: attempts}
}

// Errs joins the errors of every failed result into one error naming the
// failing labels, or returns nil when all jobs succeeded.
func Errs(results []RunResult) error {
	var errs []error
	for _, r := range results {
		if r.Err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", r.Label, r.Err))
		}
	}
	return errors.Join(errs...)
}

// Results strips the bookkeeping and returns just the per-job results in
// submission order. Call only after Errs reported nil (failed entries are
// nil pointers).
func Results(results []RunResult) []*core.Result {
	out := make([]*core.Result, len(results))
	for i, r := range results {
		out[i] = r.Result
	}
	return out
}
