// Package harness executes named simulation jobs on a worker pool while
// preserving deterministic output: jobs are handed to workers in
// submission order, every job's randomness is fully determined by its own
// core.Config (the experiments derive per-label seeds), and results come
// back indexed by submission position. A suite that prints results in
// submission order therefore produces byte-identical output whether the
// pool has one worker or many — the invariant the equivalence test in
// internal/experiments locks down.
//
// The pool also replaces the former crash-on-error behaviour of the
// experiment runners: a failing job is re-run under a configurable
// RetryPolicy and then collected into the RunResult instead of panicking,
// a panicking job is recovered into a labeled error carrying its stack,
// and an optional per-job watchdog timeout converts a hung run into an
// error — so one bad configuration cannot kill a whole paperbench run.
package harness

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"antidope/internal/core"
)

// Job names one simulation run. The config must be self-contained: in
// particular its Scheme must be a fresh instance not shared with any other
// job, because jobs run concurrently and schemes are stateful.
type Job struct {
	Label  string
	Config core.Config
}

// RunResult is the outcome of one job.
type RunResult struct {
	Label  string
	Result *core.Result
	// Err is the terminal error after the retry policy; nil on success.
	Err error
	// Attempts is how many times the job ran.
	Attempts int
}

// RetryPolicy governs how the pool re-runs a failing job. It is fully
// deterministic: no wall-clock waits, no jitter — the "backoff" perturbs
// the retry's seed instead of its start time, which is the meaningful axis
// for a simulation whose only flakiness can be seed-dependent.
type RetryPolicy struct {
	// Attempts is the total number of tries per job; <= 0 selects the
	// historic default of 2 (run once, retry once).
	Attempts int
	// Backoff offsets each retry's seed: attempt k (0-based) runs with
	// Config.Seed + k·Backoff. Zero replays the identical run — right for
	// assembly errors; nonzero gives each retry fresh randomness — right
	// for seed-dependent pathologies.
	Backoff uint64
}

// attempts returns the effective total tries.
func (r RetryPolicy) attempts() int {
	if r.Attempts <= 0 {
		return 2
	}
	return r.Attempts
}

// Pool is a fixed-width worker pool. The zero value is not usable; build
// with New.
type Pool struct {
	workers int
	retry   RetryPolicy
	timeout time.Duration
	tele    *Telemetry
}

// WithRetry replaces the pool's retry policy and returns the pool for
// chaining.
func (p *Pool) WithRetry(r RetryPolicy) *Pool {
	p.retry = r
	return p
}

// WithJobTimeout arms a per-job watchdog: an attempt still running after d
// of wall time is abandoned and recorded as an error (and retried under
// the pool's policy). Zero (the default) disables the watchdog — note that
// a timeout makes outcomes depend on host speed, so determinism-sensitive
// suites (goldens, replay tests) must leave it off. The abandoned attempt's
// goroutine runs to completion in the background; its result is discarded.
func (p *Pool) WithJobTimeout(d time.Duration) *Pool {
	p.timeout = d
	return p
}

// WithTelemetry attaches a harness self-observability collector: per-job
// wall runtime, retries, and worker occupancy land in its registry (see
// Telemetry). Nil detaches. Telemetry observes only how the host executed
// the jobs — the simulations inside stay purely sim-time, so attaching it
// cannot change any result.
func (p *Pool) WithTelemetry(t *Telemetry) *Pool {
	p.tele = t
	return p
}

// New builds a pool. workers <= 0 selects one worker per available CPU
// (runtime.GOMAXPROCS(0)); workers == 1 reproduces strictly sequential
// execution.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the pool width.
func (p *Pool) Workers() int { return p.workers }

// Run executes every job and returns the results in submission order,
// regardless of completion order. Each failing job is retried once before
// its error is recorded. Run never panics on job errors; inspect the
// results (or Errs) for failures.
func (p *Pool) Run(jobs []Job) []RunResult {
	out := make([]RunResult, len(jobs))
	if len(jobs) == 0 {
		return out
	}
	p.tele.poolStarted(p.workers)
	if p.workers == 1 || len(jobs) == 1 {
		var cache simCache
		for i, j := range jobs {
			out[i] = p.runJob(&cache, j, 0)
		}
		return out
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < p.workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			// Each worker keeps one simulation alive across its jobs:
			// Reset recycles the warmed event pool and request arena
			// instead of reallocating them per run.
			var cache simCache
			for i := range idx {
				out[i] = p.runJob(&cache, jobs[i], worker)
			}
		}(w)
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// Go runs arbitrary closures on the pool and waits for all of them — the
// escape hatch for work that is not a bare config (e.g. the SLA capacity
// binary searches, which are sequential inside but independent across
// schemes). Closures must write results into their own captured slots.
func (p *Pool) Go(fns []func()) {
	if len(fns) == 0 {
		return
	}
	if p.workers == 1 || len(fns) == 1 {
		for _, fn := range fns {
			fn()
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < p.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				fns[i]()
			}
		}()
	}
	for i := range fns {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// runJob executes one job under the pool's retry policy. Retrying after an
// assembly/validation error reuses the job's config safely (no stateful
// component observed traffic yet); retrying after a mid-run panic or
// timeout is best-effort — the config's Scheme may have observed part of a
// run, which the seed perturbation cannot undo.
func (p *Pool) runJob(cache *simCache, j Job, worker int) RunResult {
	done := p.tele.jobBegin(worker, j.Label)
	tries := p.retry.attempts()
	var res *core.Result
	var err error
	for k := 0; k < tries; k++ {
		cfg := j.Config
		cfg.Seed = j.Config.Seed + uint64(k)*p.retry.Backoff
		res, err = p.runOnce(cache, cfg)
		if err == nil {
			done(k+1, nil)
			return RunResult{Label: j.Label, Result: res, Attempts: k + 1}
		}
	}
	done(tries, err)
	return RunResult{Label: j.Label, Result: res, Err: err, Attempts: tries}
}

// runOnce executes one attempt, guarded by the watchdog when armed.
//
// The transitive walltime check requires the assertion at this level, not
// just at the sink: the watchdog timer is wall-clock ON PURPOSE even
// though every simulation run flows through here — it decides when to
// abandon a hung attempt and never feeds a value into a simulation.
//
//lint:allow walltime -- watchdog only; wall time never enters a simulation
func (p *Pool) runOnce(cache *simCache, cfg core.Config) (*core.Result, error) {
	if p.timeout <= 0 {
		return cache.run(cfg)
	}
	// The watchdog path never touches the worker's cached simulation: an
	// abandoned attempt's goroutine keeps running and still owns whatever
	// simulation it was handed, so each attempt gets a throwaway one.
	type outcome struct {
		res *core.Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		r, e := runRecovered(cfg)
		ch <- outcome{r, e}
	}()
	timer := time.NewTimer(p.timeout) //lint:allow walltime -- watchdog: wall time only decides when to abandon a hung attempt, never anything inside a simulation

	defer timer.Stop()
	select {
	case o := <-ch:
		return o.res, o.err
	case <-timer.C:
		return nil, fmt.Errorf("attempt exceeded the %v job timeout", p.timeout)
	}
}

// runRecovered converts a panicking simulation into an error carrying the
// panic value and stack, so one broken configuration surfaces in the
// result set instead of killing the whole suite.
func runRecovered(cfg core.Config) (res *core.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = fmt.Errorf("simulation panicked: %v\n%s", r, debug.Stack())
		}
	}()
	return core.RunOnce(cfg)
}

// simCache is one worker's reusable simulation. Reset is result-identical
// to New (see core.Simulation.Reset), so reuse only changes where structs
// live. The cache is dropped after any error or panic: a half-built or
// mid-run-abandoned simulation must not serve the next job.
type simCache struct {
	sim *core.Simulation
}

// run executes one attempt on the cached simulation, recovering panics the
// same way runRecovered does.
func (c *simCache) run(cfg core.Config) (res *core.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			c.sim = nil
			res = nil
			err = fmt.Errorf("simulation panicked: %v\n%s", r, debug.Stack())
		}
	}()
	if c.sim == nil {
		c.sim, err = core.New(cfg)
	} else {
		err = c.sim.Reset(cfg)
	}
	if err != nil {
		c.sim = nil
		return nil, err
	}
	return c.sim.Run(), nil
}

// Errs joins the errors of every failed result into one error naming the
// failing labels, or returns nil when all jobs succeeded.
func Errs(results []RunResult) error {
	var errs []error
	for _, r := range results {
		if r.Err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", r.Label, r.Err))
		}
	}
	return errors.Join(errs...)
}

// Results strips the bookkeeping and returns just the per-job results in
// submission order. Call only after Errs reported nil (failed entries are
// nil pointers).
func Results(results []RunResult) []*core.Result {
	out := make([]*core.Result, len(results))
	for i, r := range results {
		out[i] = r.Result
	}
	return out
}
