package experiments

import (
	"math"
	"testing"

	"antidope/internal/cluster"
	"antidope/internal/defense"
	"antidope/internal/workload"
)

// The scenario DSL (internal/scenario) compiles against these seams and
// pins its output byte-identical to the hand-written figures, so their
// exact behaviour — seed derivation, quick-mode shrinking, flood
// defaulting — is load-bearing API, not an implementation detail.

// TestSeedForPinned pins the per-label seed derivation to known values:
// changing the hash silently invalidates every golden in the repo, so the
// constants here make such a change loud.
func TestSeedForPinned(t *testing.T) {
	o := Options{Seed: 2019}
	cases := []struct {
		label string
		want  uint64
	}{
		{"fig12", 12835744616986418551},
		{"eval/Capping/Normal-PB", 6443567660393292276},
	}
	for _, tc := range cases {
		if got := o.SeedFor(tc.label); got != tc.want {
			t.Errorf("SeedFor(%q) = %d, want %d", tc.label, got, tc.want)
		}
	}
	// The base seed participates: two option sets must not share streams.
	if (Options{Seed: 1}).SeedFor("x") == (Options{Seed: 2}).SeedFor("x") {
		t.Error("base seed does not influence the derived seed")
	}
}

// TestHorizonQuickWindow pins the quick-mode window shrinking: a quarter
// of the full window with a 30 s floor, identity otherwise.
func TestHorizonQuickWindow(t *testing.T) {
	cases := []struct {
		quick      bool
		full, want float64
	}{
		{false, 600, 600},
		{false, 10, 10},
		{true, 600, 150},
		{true, 240, 60},
		{true, 120, 30}, // exactly at the floor
		{true, 119, 30}, // below the floor
		{true, 40, 30},
	}
	for _, tc := range cases {
		o := Options{Quick: tc.quick}
		if got := o.Horizon(tc.full); got != tc.want { //lint:allow floateq -- exact arithmetic on small integers
			t.Errorf("Horizon(%g) quick=%v = %g, want %g", tc.full, tc.quick, got, tc.want)
		}
	}
}

// TestFloodJobDefaults pins FloodJob's spec derivation: agents scale with
// the rate (floor 4), the window spans warmup to horizon, and a zero rate
// means no attack at all.
func TestFloodJobDefaults(t *testing.T) {
	o := Options{Seed: 1}
	job := FloodJob(o, "lbl", workload.CollaFilt, 1000, cluster.LowPB, SchemeByName("capping"), true, 300)
	if job.Label != "lbl" || job.Config.Seed != o.SeedFor("lbl") {
		t.Fatalf("label/seed: %q seed %d", job.Label, job.Config.Seed)
	}
	if len(job.Config.Attacks) != 1 {
		t.Fatalf("attacks = %d, want 1", len(job.Config.Attacks))
	}
	a := job.Config.Attacks[0]
	if a.Agents != 10 {
		t.Errorf("agents at 1000 rps = %d, want 10 (rate/100)", a.Agents)
	}
	if a.Start != job.Config.WarmupSec || a.Duration != 300-job.Config.WarmupSec { //lint:allow floateq -- values assigned verbatim
		t.Errorf("window [%g, +%g], want [warmup %g, horizon-warmup]", a.Start, a.Duration, job.Config.WarmupSec)
	}
	if a.Name != "lbl" {
		t.Errorf("attack name %q, want the label", a.Name)
	}
	if job.Config.Firewall.Disabled {
		t.Error("fwOn did not enable the firewall")
	}
	if job.Config.Cluster.Budget != cluster.LowPB {
		t.Errorf("budget %v", job.Config.Cluster.Budget)
	}

	low := FloodJob(o, "low", workload.KMeans, 150, cluster.NormalPB, SchemeByName("none"), false, 300)
	if got := low.Config.Attacks[0].Agents; got != 4 {
		t.Errorf("agents at 150 rps = %d, want the floor of 4", got)
	}
	if !low.Config.Firewall.Disabled {
		t.Error("firewall on without fwOn")
	}

	idle := FloodJob(o, "idle", workload.KMeans, 0, cluster.NormalPB, SchemeByName("none"), false, 300)
	if len(idle.Config.Attacks) != 0 {
		t.Errorf("zero rate still produced %d attacks", len(idle.Config.Attacks))
	}
}

// TestMixedFloodJobSplit pins the four-way victim split of MixedFloodJob.
func TestMixedFloodJobSplit(t *testing.T) {
	job := MixedFloodJob(Options{Seed: 1}, "mix", 2000, 300)
	if len(job.Config.Attacks) != len(workload.VictimClasses()) {
		t.Fatalf("attacks = %d, want one per victim class", len(job.Config.Attacks))
	}
	total := 0.0
	for _, a := range job.Config.Attacks {
		total += a.RateRPS
		if a.Agents != 5 {
			t.Errorf("%s agents = %d, want 5 (500/100)", a.Name, a.Agents)
		}
	}
	if math.Abs(total-2000) > 1e-9 {
		t.Errorf("split rates sum to %g, want 2000", total)
	}
}

// TestEvalAttackSpecsShape pins the Section 6 steady injection: three
// named floods, 32 agents each, spanning start to until.
func TestEvalAttackSpecsShape(t *testing.T) {
	specs := EvalAttackSpecs(10, 300)
	if len(specs) != 3 {
		t.Fatalf("specs = %d, want 3", len(specs))
	}
	wantNames := map[string]workload.Class{
		"dope-colla":     workload.CollaFilt,
		"dope-kmeans":    workload.KMeans,
		"dope-wordcount": workload.WordCount,
	}
	for _, s := range specs {
		class, ok := wantNames[s.Name]
		if !ok || s.Class != class {
			t.Errorf("unexpected spec %q class %v", s.Name, s.Class)
		}
		if s.Agents != 32 || s.Start != 10 || s.Duration != 290 { //lint:allow floateq -- values assigned verbatim
			t.Errorf("%s: agents %d window [%g, +%g]", s.Name, s.Agents, s.Start, s.Duration)
		}
	}
}

// TestSwitchingAttackSpecsClamp pins the rotation and the end-clamping of
// the final window.
func TestSwitchingAttackSpecsClamp(t *testing.T) {
	specs := SwitchingAttackSpecs(30, 300, 120)
	if len(specs) != 3 {
		t.Fatalf("specs = %d, want 3 (30..150..270..300)", len(specs))
	}
	classes := []workload.Class{workload.CollaFilt, workload.KMeans, workload.WordCount}
	for i, s := range specs {
		if s.Class != classes[i%len(classes)] {
			t.Errorf("window %d class %v, want %v", i, s.Class, classes[i%len(classes)])
		}
	}
	last := specs[len(specs)-1]
	if last.Start != 270 || last.Duration != 30 { //lint:allow floateq -- values assigned verbatim
		t.Errorf("final window [%g, +%g], want the clamp [270, +30]", last.Start, last.Duration)
	}
	for _, s := range specs {
		if s.Start+s.Duration > 300 {
			t.Errorf("window %q runs past the horizon: [%g, +%g]", s.Name, s.Start, s.Duration)
		}
	}
}

// TestEvalConfigKnobs pins the evaluation rack: warmup 10, live firewall,
// and the gap-sized mini UPS (20% of aggregate nameplate).
func TestEvalConfigKnobs(t *testing.T) {
	o := Options{Seed: 3}
	cfg := EvalConfig(o, "lbl", SchemeByName("token"), cluster.MediumPB, nil, 300)
	if cfg.WarmupSec != 10 { //lint:allow floateq -- value assigned verbatim
		t.Errorf("warmup %g, want 10", cfg.WarmupSec)
	}
	if cfg.Firewall.Disabled {
		t.Error("evaluation firewall must be live")
	}
	want := 0.2 * float64(cfg.Cluster.Servers) * cfg.Cluster.Model.Nameplate
	if math.Abs(cfg.Cluster.BatterySustainW-want) > 1e-9 {
		t.Errorf("battery sustain %g W, want %g", cfg.Cluster.BatterySustainW, want)
	}
	if cfg.Seed != o.SeedFor("lbl") {
		t.Error("seed not derived from the label")
	}
	job := EvalJob(o, "lbl", SchemeByName("token"), cluster.MediumPB, nil, 300)
	if len(job.Config.ExtraSources) != len(EvalLegitSources()) {
		t.Error("EvalJob did not inject the legitimate mix")
	}
}

// TestFig18LegitSources pins the extracted Figure 18 mix seam.
func TestFig18LegitSources(t *testing.T) {
	srcs := Fig18LegitSources()
	if len(srcs) != 3 {
		t.Fatalf("sources = %d, want 3", len(srcs))
	}
	if srcs[0].Source.Class != workload.AliNormal || srcs[0].RateCap != 220 { //lint:allow floateq -- value assigned verbatim
		t.Errorf("first source %v cap %g, want AliOS at 220", srcs[0].Source.Class, srcs[0].RateCap)
	}
}

// TestSchemeByNameFresh verifies every canonical scheme constructs and
// that instances are fresh (schemes are stateful; sharing one across
// concurrent jobs corrupts runs).
func TestSchemeByNameFresh(t *testing.T) {
	for _, name := range []string{"none", "capping", "shaving", "token", "anti-dope", "oracle", "hybrid"} {
		s := SchemeByName(name)
		if s == nil {
			t.Fatalf("SchemeByName(%q) = nil", name)
		}
	}
	a, b := SchemeByName("anti-dope"), SchemeByName("anti-dope")
	if a.(*defense.AntiDope) == b.(*defense.AntiDope) {
		t.Error("SchemeByName returned a shared instance")
	}
}
