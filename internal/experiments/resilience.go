package experiments

import (
	"fmt"

	"antidope/internal/cluster"
	"antidope/internal/core"
	"antidope/internal/faults"
	"antidope/internal/harness"
)

// resilienceSLASec is the latency SLO a legitimate request must meet to
// count as served: dropped, lost, and slower-than-SLO requests all violate.
const resilienceSLASec = 0.25

// ResilienceResult sweeps the Table 2 schemes across fault-injection
// intensity: the Section 6 Medium-PB attack scenario with a seeded chaos
// schedule (crashes, telemetry corruption, DVFS faults, firewall flaps,
// battery failures) scaled from none to twice the baseline rate. All
// schemes at one intensity face the identical fault schedule.
type ResilienceResult struct {
	Table *Table
	// Intensities and Schemes index SLA and OvershootW: SLA[i][j] is the
	// SLA compliance of scheme j at intensity i, OvershootW[i][j] the peak
	// power overshoot above budget in watts.
	Intensities []float64
	Schemes     []string
	SLA         [][]float64
	OvershootW  [][]float64
}

// Resilience runs the fault-intensity sweep.
func Resilience(o Options) (*ResilienceResult, error) {
	horizon := o.Horizon(240)
	intensities := []float64{0, 0.5, 1, 2}
	if o.Quick {
		intensities = []float64{0, 1, 2}
	}
	schemes := []string{"capping", "shaving", "token", "anti-dope"}

	// Baseline (intensity 1) chaos rate over the horizon. The generator
	// seed derives from the intensity alone, so every scheme at one
	// intensity faces the same fault schedule — the sweep compares
	// defenses, not luck.
	base := faults.GeneratorConfig{
		Horizon:         horizon,
		Servers:         cluster.DefaultConfig().Servers,
		Crashes:         2,
		TelemetryFaults: 3,
		DVFSFaults:      2,
		FirewallFlaps:   1,
		BatteryFaults:   1,
		MeanFaultSec:    15,
	}

	out := &ResilienceResult{Intensities: intensities, Schemes: schemes}
	out.Table = &Table{
		Title: "Resilience sweep: graceful degradation under infrastructure faults (Medium-PB, DOPE injection)",
		Header: []string{"intensity", "scheme", "SLA<=250ms", "peak over (W)",
			"availability", "crashes", "requeued", "lost"},
	}

	var jobs []harness.Job
	for _, x := range intensities {
		gen := base.Scaled(x)
		gen.Seed = o.SeedFor(fmt.Sprintf("resilience/faults/%.2f", x))
		for _, name := range schemes {
			label := fmt.Sprintf("resilience/%s/x%.2f", name, x)
			job := EvalJob(o, label, SchemeByName(name), cluster.MediumPB,
				EvalAttackSpecs(10, horizon), horizon)
			if x > 0 {
				g := gen
				job.Config.Faults = &faults.Config{Generator: &g}
			}
			jobs = append(jobs, job)
		}
	}
	results, err := RunJobs(o, jobs)
	if err != nil {
		return nil, err
	}
	next := resultCursor(results)
	for _, x := range intensities {
		slaRow := make([]float64, 0, len(schemes))
		overRow := make([]float64, 0, len(schemes))
		for _, name := range schemes {
			r := next()
			sla := slaCompliance(r, resilienceSLASec)
			over := r.PeakPowerW() - r.BudgetW
			if over < 0 {
				over = 0
			}
			slaRow = append(slaRow, sla)
			overRow = append(overRow, over)
			out.Table.AddRow(f2(x), name, pct(sla), f1(over), pct(r.Availability()),
				fmt.Sprintf("%d", r.ServerCrashes),
				fmt.Sprintf("%d", r.CrashRequeued),
				fmt.Sprintf("%d", r.CrashLost))
		}
		out.SLA = append(out.SLA, slaRow)
		out.OvershootW = append(out.OvershootW, overRow)
	}
	if out.DegradationOrderOK() {
		out.Table.Notes = append(out.Table.Notes,
			"at the highest fault intensity the SLA ordering holds: Anti-DOPE >= Token >= Shaving >= Capping.")
	} else {
		out.Table.Notes = append(out.Table.Notes,
			"WARNING: expected degradation ordering (Anti-DOPE >= Token >= Shaving >= Capping) violated at top intensity.")
	}
	return out, nil
}

// slaCompliance is the fraction of offered legitimate requests that
// completed within the SLO. Requests dropped, crash-lost, or still queued
// at the horizon count against it.
func slaCompliance(r *core.Result, sloSec float64) float64 {
	if r.OfferedLegit == 0 {
		return 1
	}
	n := 0
	for _, v := range r.LatencyLegit.Values() {
		if v <= sloSec {
			n++
		}
	}
	return float64(n) / float64(r.OfferedLegit)
}

// DegradationOrderOK reports whether, at the highest fault intensity, SLA
// compliance degrades in the expected scheme order: Anti-DOPE >= Token >=
// Shaving >= Capping (ties allowed).
func (r *ResilienceResult) DegradationOrderOK() bool {
	if len(r.SLA) == 0 {
		return false
	}
	top := r.SLA[len(r.SLA)-1] // schemes order: capping, shaving, token, anti-dope
	for i := 0; i+1 < len(top); i++ {
		if top[i] > top[i+1] {
			return false
		}
	}
	return true
}
