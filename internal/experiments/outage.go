package experiments

import (
	"fmt"

	"antidope/internal/cluster"
	"antidope/internal/core"
	"antidope/internal/harness"
)

// OutageResult extends the evaluation with the paper's Figure 1 motivation
// made concrete: with branch-circuit protection modeled, an unmitigated
// DOPE attack does not merely violate an accounting budget — it trips the
// breaker and takes the whole domain down. The experiment compares outage
// behaviour across the schemes (plus the undefended rack).
type OutageResult struct {
	Table *Table
	// Outages and Downtime per scheme.
	Outages  map[string]int
	Downtime map[string]float64
	Availab  map[string]float64
}

// Outage runs the steady DOPE injection at Medium-PB with the breaker
// enabled for every scheme.
func Outage(o Options) (*OutageResult, error) {
	horizon := o.Horizon(480)
	out := &OutageResult{
		Outages:  make(map[string]int),
		Downtime: make(map[string]float64),
		Availab:  make(map[string]float64),
	}
	out.Table = &Table{
		Title:  "Outage risk: DOPE vs schemes with branch-circuit protection (Medium-PB)",
		Header: []string{"scheme", "breaker trips", "downtime(s)", "availability", "heat source"},
	}
	var jobs []harness.Job
	for _, name := range []string{"none", "capping", "shaving", "token", "anti-dope"} {
		cfg := EvalConfig(o, "outage/"+name, SchemeByName(name), cluster.MediumPB,
			EvalAttackSpecs(10, horizon), horizon)
		cfg.ExtraSources = EvalLegitSources()
		// Rating at exactly the provisioned feed: the utility contract is
		// the budget, and the DOPE draw sits only ~6% above it — precisely
		// the low-and-slow overload an inverse-time breaker integrates.
		cfg.Breaker = core.BreakerCfg{Enabled: true, RatingFrac: 1.0, ToleranceSec: 20, RepairSec: 60}
		jobs = append(jobs, harness.Job{Label: "outage/" + name, Config: cfg})
	}
	results, err := RunJobs(o, jobs)
	if err != nil {
		return nil, err
	}
	for _, res := range results {
		out.Outages[res.SchemeName] = res.Outages
		out.Downtime[res.SchemeName] = res.OutageSeconds
		out.Availab[res.SchemeName] = res.Availability()
		cause := "-"
		if res.Outages > 0 {
			cause = "sustained DOPE overload"
		}
		out.Table.AddRow(res.SchemeName, fmt.Sprintf("%d", res.Outages),
			f1(res.OutageSeconds), f3(res.Availability()), cause)
	}
	out.Table.Notes = append(out.Table.Notes,
		"paper (Fig. 1): DoS is a top-3 root cause of unplanned data center",
		"outages; with the breaker modeled, the undefended rack actually goes",
		"down under DOPE, while every active power defense prevents the trip.")
	return out, nil
}

// UndefendedTrips reports whether the undefended rack suffered at least one
// outage while every defended configuration suffered none.
func (r *OutageResult) UndefendedTrips() bool {
	if r.Outages["None"] == 0 {
		return false
	}
	for name, n := range r.Outages {
		if name != "None" && n > 0 {
			return false
		}
	}
	return true
}
