package experiments

import (
	"fmt"

	"antidope/internal/attack"
	"antidope/internal/cluster"
	"antidope/internal/core"
	"antidope/internal/firewall"
	"antidope/internal/harness"
	"antidope/internal/stats"
	"antidope/internal/workload"
)

// Fig10Result reproduces Figure 10: power CDFs per traffic type with and
// without the firewall, for a concentrated 1000 req/s flood. Without the
// firewall the flood holds high power; with it the source is banned after
// the detection lag — but the lag leaves early power spikes through.
type Fig10Result struct {
	Table *Table
	// With/Without hold the power CDFs per class.
	With, Without map[workload.Class]stats.CDF
	// PeakWith records the residual spike height under the firewall.
	PeakWith map[workload.Class]float64
}

// Fig10 runs each victim class at 1000 req/s from only 4 agents (250
// req/s/agent — well above the deflate threshold) with the firewall off and
// on.
func Fig10(o Options) (*Fig10Result, error) {
	horizon := o.Horizon(300)
	out := &Fig10Result{
		With:     make(map[workload.Class]stats.CDF),
		Without:  make(map[workload.Class]stats.CDF),
		PeakWith: make(map[workload.Class]float64),
	}
	out.Table = &Table{
		Title:  "Figure 10: power with and without firewall (1000 req/s, 4 agents)",
		Header: []string{"type", "p50 no-fw(W)", "p50 fw(W)", "peak fw(W)", "fw bans"},
	}
	mkJob := func(class workload.Class, fwOn bool) harness.Job {
		label := fmt.Sprintf("fig10/%v/fw=%v", class, fwOn)
		cfg := BaseConfig(o, label, horizon)
		if fwOn {
			cfg.Firewall = firewall.DefaultConfig()
		}
		cfg.Attacks = []attack.Spec{{
			Name: label, Layer: attack.ApplicationLayer, Class: class,
			RateRPS: 1000, Agents: 4, Start: cfg.WarmupSec,
			Duration: horizon - cfg.WarmupSec,
		}}
		return harness.Job{Label: label, Config: cfg}
	}
	var jobs []harness.Job
	for _, class := range workload.VictimClasses() {
		jobs = append(jobs, mkJob(class, false), mkJob(class, true))
	}
	results, err := RunJobs(o, jobs)
	if err != nil {
		return nil, err
	}
	next := resultCursor(results)
	for _, class := range workload.VictimClasses() {
		woRes := next()
		wRes := next()
		woSample := woRes.Power.Sample()
		wSample := wRes.Power.Sample()
		out.Without[class] = woSample.CDF(50)
		out.With[class] = wSample.CDF(50)
		out.PeakWith[class] = wSample.Max()
		out.Table.AddRow(class.String(),
			f1(woSample.Percentile(50)), f1(wSample.Percentile(50)),
			f1(wSample.Max()),
			fmt.Sprintf("%d", wRes.DroppedByReason["firewall-ban"]))
	}
	out.Table.Notes = append(out.Table.Notes,
		"paper: the firewall pulls the CDF left, but the detection start lag",
		"still lets partial high power spikes through.")
	return out, nil
}

// FirewallCutsMedianPower reports whether the firewall lowered the median
// draw for every class.
func (r *Fig10Result) FirewallCutsMedianPower() bool {
	for class := range r.Without {
		if r.With[class].Quantile(0.5) >= r.Without[class].Quantile(0.5) {
			return false
		}
	}
	return true
}

// LagLeavesSpikes reports whether, despite the firewall, every class still
// shows an early spike well above its firewalled median.
func (r *Fig10Result) LagLeavesSpikes() bool {
	for class, cdf := range r.With {
		if r.PeakWith[class] < cdf.Quantile(0.5)*1.1 {
			return false
		}
	}
	return true
}

// Fig11Result reproduces Figure 11: the DOPE operating region. For each
// victim type it locates the minimum request rate that violates the
// Medium-PB budget and compares it with the firewall's aggregate detection
// capacity for a modest botnet; the gap between the two lines is where
// DOPE lives.
type Fig11Result struct {
	Table *Table
	// MinViolatingRPS per class (sustained budget violation).
	MinViolatingRPS map[workload.Class]float64
	// DetectCapacityRPS is the aggregate rate a botnet of Agents sources
	// can send while each stays under the per-source threshold.
	DetectCapacityRPS float64
	Agents            int
}

// Fig11 sweeps rates per class on the unprotected Medium-PB rack.
func Fig11(o Options) (*Fig11Result, error) {
	horizon := o.Horizon(120)
	fw := firewall.DefaultConfig()
	const agents = 8
	out := &Fig11Result{
		MinViolatingRPS:   make(map[workload.Class]float64),
		DetectCapacityRPS: fw.ThresholdRPS * agents,
		Agents:            agents,
	}
	out.Table = &Table{
		Title: fmt.Sprintf("Figure 11: DOPE region (Medium-PB; %d agents, detection capacity %.0f rps)",
			agents, out.DetectCapacityRPS),
		Header: []string{"type", "min rps violating budget", "detection capacity", "DOPE region"},
	}
	// The whole rate grid is submitted up front (the sequential version
	// stopped at the first violating rate); the lowest violating rate is
	// picked afterwards, so the table is unchanged and the sweep
	// parallelizes freely.
	sweep := []float64{50, 100, 150, 200, 300, 450, 700, 1000, 1500}
	var jobs []harness.Job
	for _, class := range workload.VictimClasses() {
		for _, rate := range sweep {
			label := fmt.Sprintf("fig11/%v/%g", class, rate)
			jobs = append(jobs, FloodJob(o, label, class, rate, cluster.MediumPB, nil, false, horizon))
		}
	}
	results, err := RunJobs(o, jobs)
	if err != nil {
		return nil, err
	}
	next := resultCursor(results)
	for _, class := range workload.VictimClasses() {
		violating := sweep[len(sweep)-1] + 1
		for _, rate := range sweep {
			res := next()
			if violating > sweep[len(sweep)-1] && res.FracSlotsOverBudget > 0.2 {
				violating = rate
			}
		}
		out.MinViolatingRPS[class] = violating
		region := "none"
		if violating < out.DetectCapacityRPS {
			region = fmt.Sprintf("[%.0f, %.0f) rps", violating, out.DetectCapacityRPS)
		}
		out.Table.AddRow(class.String(), fmt.Sprintf("%.0f", violating),
			fmt.Sprintf("%.0f", out.DetectCapacityRPS), region)
	}
	out.Table.Notes = append(out.Table.Notes,
		"paper: the DOPE region is the band of request rates that violate the",
		"power budget while staying below the DoS-detecting network capacity.")
	return out, nil
}

// RegionExists reports whether at least one class has a non-empty DOPE
// region — the figure's reason to exist.
func (r *Fig11Result) RegionExists() bool {
	for _, v := range r.MinViolatingRPS {
		if v < r.DetectCapacityRPS {
			return true
		}
	}
	return false
}

// Fig12Result reproduces Figure 12: the adaptive attack algorithm driving
// itself into the DOPE region under a live firewall.
type Fig12Result struct {
	Table *Table
	// Trace is the attacker's epoch-by-epoch operating point.
	Trace []core.DopeEpoch
	// FinalUndetected reports whether the attacker ended up effective with
	// no bans in its final quarter of epochs.
	FinalUndetected bool
	// BudgetViolatedJ is the over-budget energy the attack produced.
	BudgetViolatedJ float64
}

// Fig12 runs the Figure 12 attacker against the firewalled, undefended
// Medium-PB rack.
func Fig12(o Options) (*Fig12Result, error) {
	horizon := o.Horizon(600)
	cfg := BaseConfig(o, "fig12", horizon)
	cfg.Firewall = firewall.DefaultConfig()
	cfg.Cluster.Budget = cluster.MediumPB
	d := attack.DefaultDopeConfig()
	cfg.Dope = &d
	cfg.DopeStart = 10
	results, err := RunJobs(o, []harness.Job{{Label: "fig12", Config: cfg}})
	if err != nil {
		return nil, err
	}
	res := results[0]
	out := &Fig12Result{Trace: res.DopeTrace, BudgetViolatedJ: res.OverBudgetJ}
	out.Table = &Table{
		Title:  "Figure 12: adaptive DOPE attack trace",
		Header: []string{"t(s)", "class", "rps", "agents", "rps/agent", "banned", "effective"},
	}
	for i, e := range res.DopeTrace {
		// Print a readable subset: first epochs densely, then every 4th.
		if i > 8 && i%4 != 0 && i != len(res.DopeTrace)-1 {
			continue
		}
		out.Table.AddRow(fmt.Sprintf("%.0f", e.At), e.Class.String(),
			fmt.Sprintf("%.0f", e.RPS), fmt.Sprintf("%d", e.Agents),
			f1(e.RPS/float64(e.Agents)),
			fmt.Sprintf("%d", e.Banned), fmt.Sprintf("%v", e.Effective))
	}
	// Final-quarter cleanliness.
	n := len(res.DopeTrace)
	if n > 0 {
		clean := true
		violated := res.OverBudgetJ > 0
		for _, e := range res.DopeTrace[n-n/4-1:] {
			if e.Banned > 0 {
				clean = false
			}
		}
		out.FinalUndetected = clean && violated
	}
	out.Table.Notes = append(out.Table.Notes,
		"paper: the attacker gradually increases its request number toward the",
		"defense's bottom limit, backing off on detection, until an effective",
		"DOPE runs without being caught.")
	return out, nil
}
