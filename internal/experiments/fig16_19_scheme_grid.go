package experiments

import (
	"fmt"

	"antidope/internal/cluster"
	"antidope/internal/core"
	"antidope/internal/harness"
)

// EvalGrid is the shared scheme × budget sweep behind Figures 16, 17 and 19
// and the paper's headline numbers: the steady three-class DOPE injection
// against every Table 2 scheme at every provisioning level.
type EvalGrid struct {
	// Results[scheme][budget] holds the runs.
	Results map[string]map[cluster.BudgetLevel]*core.Result
	// SchemeOrder and Budgets fix presentation order.
	SchemeOrder []string
	Budgets     []cluster.BudgetLevel
}

// RunEvalGrid executes the sweep once; the figure builders share it.
func RunEvalGrid(o Options) (*EvalGrid, error) {
	horizon := o.Horizon(300)
	grid := &EvalGrid{
		Results:     make(map[string]map[cluster.BudgetLevel]*core.Result),
		SchemeOrder: []string{"Capping", "Shaving", "Token", "Anti-DOPE"},
		Budgets:     cluster.AllBudgetLevels(),
	}
	var jobs []harness.Job
	for _, name := range grid.SchemeOrder {
		for _, budget := range grid.Budgets {
			label := fmt.Sprintf("eval/%s/%s", name, budget)
			jobs = append(jobs, EvalJob(o, label, SchemeByName(name), budget,
				EvalAttackSpecs(10, horizon), horizon))
		}
	}
	results, err := RunJobs(o, jobs)
	if err != nil {
		return nil, err
	}
	next := resultCursor(results)
	for _, name := range grid.SchemeOrder {
		grid.Results[name] = make(map[cluster.BudgetLevel]*core.Result)
		for _, budget := range grid.Budgets {
			grid.Results[name][budget] = next()
		}
	}
	return grid, nil
}

// Fig16 renders the mean-response-time matrix from the grid.
func (g *EvalGrid) Fig16() *Table {
	t := &Table{Title: "Figure 16: mean response time (ms) of legitimate users under DOPE"}
	t.Header = []string{"scheme"}
	for _, b := range g.Budgets {
		t.Header = append(t.Header, b.String())
	}
	for _, name := range g.SchemeOrder {
		row := []string{name}
		for _, b := range g.Budgets {
			row = append(row, ms(g.Results[name][b].MeanRT()))
		}
		t.AddRow(row...)
	}
	if tok := g.Results["Token"][cluster.LowPB]; tok != nil {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"Token abandons %s of packages at Low-PB to look fast (paper: >60%%).",
			pct(tok.TokenDropFrac)))
	}
	t.Notes = append(t.Notes,
		"paper: no scheme differs at Normal-PB; under tighter budgets all rise,",
		"Anti-DOPE keeps the minimum mean RT among non-dropping schemes.")
	return t
}

// Fig17 renders the p90 tail-latency matrix from the grid.
func (g *EvalGrid) Fig17() *Table {
	t := &Table{Title: "Figure 17: 90th-percentile tail latency (ms) of legitimate users under DOPE"}
	t.Header = []string{"scheme"}
	for _, b := range g.Budgets {
		t.Header = append(t.Header, b.String())
	}
	for _, name := range g.SchemeOrder {
		row := []string{name}
		for _, b := range g.Budgets {
			row = append(row, ms(g.Results[name][b].TailRT(90)))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper: under under-provisioning the tail stretches to ~hundreds of ms;",
		"Anti-DOPE sustains near-baseline tails by isolating the malicious load;",
		"batteries alone (Shaving) cannot outlast the long DOPE peak.")
	return t
}

// Fig19 renders the energy matrix: utility energy normalized to the same
// scheme's Normal-PB run, plus the battery throughput that the paper
// attributes Shaving's inefficiency to.
func (g *EvalGrid) Fig19() *Table {
	t := &Table{Title: "Figure 19: normalized energy consumption under DOPE"}
	t.Header = []string{"scheme"}
	for _, b := range g.Budgets {
		t.Header = append(t.Header, b.String())
	}
	t.Header = append(t.Header, "batteryJ@Low-PB")
	for _, name := range g.SchemeOrder {
		base := g.Results[name][cluster.NormalPB].UtilityEnergyJ
		row := []string{name}
		for _, b := range g.Budgets {
			v := 1.0
			if base > 0 {
				v = g.Results[name][b].UtilityEnergyJ / base
			}
			row = append(row, f3(v))
		}
		row = append(row, f1(g.Results[name][cluster.LowPB].BatteryEnergyJ))
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper: all schemes consume the same energy in the baseline case, and",
		"Capping consumes the least under attack — aggressive savings bought",
		"with the degraded service of Figures 16-17. Anti-DOPE stays at",
		"baseline energy because it keeps serving everyone at full speed, and",
		"it round-trips far less energy through the battery than Shaving",
		"(last column) — the dependency the paper flags as Shaving's cost.")
	return t
}

// Headline computes the paper's abstract numbers: the improvement of
// Anti-DOPE over the better of the two conventional power-control schemes
// (Capping, Shaving) on mean RT and p90 tail, averaged across the three
// under-provisioned budgets. The paper reports 44% shorter mean response
// time and 68.1% better p90 tail latency.
func (g *EvalGrid) Headline() (meanImprovement, p90Improvement float64, table *Table) {
	budgets := []cluster.BudgetLevel{cluster.HighPB, cluster.MediumPB, cluster.LowPB}
	var meanSum, p90Sum float64
	table = &Table{
		Title:  "Headline: Anti-DOPE vs best conventional power control (Capping/Shaving)",
		Header: []string{"budget", "best-other mean(ms)", "anti-dope mean(ms)", "mean impr.", "best-other p90(ms)", "anti-dope p90(ms)", "p90 impr."},
	}
	for _, b := range budgets {
		otherMean := minOf(g.Results["Capping"][b].MeanRT(), g.Results["Shaving"][b].MeanRT())
		otherP90 := minOf(g.Results["Capping"][b].TailRT(90), g.Results["Shaving"][b].TailRT(90))
		adMean := g.Results["Anti-DOPE"][b].MeanRT()
		adP90 := g.Results["Anti-DOPE"][b].TailRT(90)
		mi, pi := 0.0, 0.0
		if otherMean > 0 {
			mi = 1 - adMean/otherMean
		}
		if otherP90 > 0 {
			pi = 1 - adP90/otherP90
		}
		meanSum += mi
		p90Sum += pi
		table.AddRow(b.String(), ms(otherMean), ms(adMean), pct(mi), ms(otherP90), ms(adP90), pct(pi))
	}
	meanImprovement = meanSum / float64(len(budgets))
	p90Improvement = p90Sum / float64(len(budgets))
	table.Notes = append(table.Notes,
		fmt.Sprintf("measured: %s shorter mean RT, %s better p90 (paper: 44%% / 68.1%%).",
			pct(meanImprovement), pct(p90Improvement)))
	return meanImprovement, p90Improvement, table
}
