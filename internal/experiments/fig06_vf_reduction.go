package experiments

import (
	"fmt"

	"antidope/internal/cluster"
	"antidope/internal/harness"
	"antidope/internal/workload"
)

// Fig6Result reproduces Figure 6: the effect of HTTP DoS traffic on power
// capping (DVFS) under Medium-PB.
// (a) mean V/F reduction vs traffic rate per service — Colla-Filt trips
// DVFS at the lowest rate;
// (b) V/F reduction per service at 1000 req/s — K-means forces the deepest
// cut because its power barely responds to frequency.
type Fig6Result struct {
	TableA *Table
	TableB *Table
	Rates  []float64
	// VFReduction[class][rateIdx] is the time-mean fractional V/F cut.
	VFReduction map[workload.Class][]float64
	// At1000 is panel (b): the V/F cut per class at the top rate.
	At1000 map[workload.Class]float64
}

// Fig6Rates is the sweep for panel (a).
var Fig6Rates = []float64{25, 50, 100, 200, 400, 700, 1000}

// Fig6 runs the sweep with the Capping scheme at Medium-PB.
func Fig6(o Options) (*Fig6Result, error) {
	horizon := o.Horizon(240)
	rates := Fig6Rates
	if o.Quick {
		rates = []float64{50, 200, 1000}
	}
	out := &Fig6Result{
		Rates:       rates,
		VFReduction: make(map[workload.Class][]float64),
		At1000:      make(map[workload.Class]float64),
	}
	out.TableA = &Table{Title: "Figure 6-a: mean V/F reduction vs traffic rate (Medium-PB, Capping)"}
	header := []string{"service"}
	for _, r := range rates {
		header = append(header, fmt.Sprintf("%grps", r))
	}
	out.TableA.Header = header

	var jobs []harness.Job
	for _, class := range workload.VictimClasses() {
		for _, rate := range rates {
			label := fmt.Sprintf("fig6/%v/%g", class, rate)
			jobs = append(jobs, FloodJob(o, label, class, rate, cluster.MediumPB,
				SchemeByName("capping"), false, horizon))
		}
	}
	results, err := RunJobs(o, jobs)
	if err != nil {
		return nil, err
	}
	next := resultCursor(results)

	for _, class := range workload.VictimClasses() {
		row := []string{class.String()}
		for i := range rates {
			vf := next().VFRed.MeanOverTime()
			out.VFReduction[class] = append(out.VFReduction[class], vf)
			row = append(row, f3(vf))
			if i == len(rates)-1 {
				out.At1000[class] = vf
			}
		}
		out.TableA.AddRow(row...)
	}
	out.TableA.Notes = append(out.TableA.Notes,
		"paper: the heavy services incur V/F reduction already at low rates;",
		"beyond a threshold the cut saturates at the level holding the budget.")

	out.TableB = &Table{
		Title:  "Figure 6-b: V/F reduction per service @1000 req/s",
		Header: []string{"service", "mean V/F reduction"},
	}
	for _, class := range workload.VictimClasses() {
		out.TableB.AddRow(class.String(), f3(out.At1000[class]))
	}
	out.TableB.Notes = append(out.TableB.Notes,
		"paper: K-means induces the deepest V/F cut — its power is least",
		"sensitive to frequency, so capping must dig further.")
	return out, nil
}

// TripRate returns the lowest swept rate at which the class's V/F reduction
// exceeds the threshold, or +Inf-like sentinel (last rate + 1) if never.
func (r *Fig6Result) TripRate(class workload.Class, threshold float64) float64 {
	for i, vf := range r.VFReduction[class] {
		if vf > threshold {
			return r.Rates[i]
		}
	}
	return r.Rates[len(r.Rates)-1] + 1
}

// HeavyClassesTripFirst reports whether the high-power-intensity services
// (Colla-Filt, K-means) trigger DVFS at rates no higher than the light ones
// (Word-Count, Text-Cont) — panel (a)'s headline. (The paper additionally
// orders Colla-Filt marginally before K-means; in a linear power model that
// ordering is the same quantity as Fig. 5-b's per-request energy, where
// K-means must win, so the reproduction checks the heavy-vs-light split —
// see EXPERIMENTS.md.)
func (r *Fig6Result) HeavyClassesTripFirst(threshold float64) bool {
	heavy := maxOf(r.TripRate(workload.CollaFilt, threshold),
		r.TripRate(workload.KMeans, threshold))
	light := minOf(r.TripRate(workload.WordCount, threshold),
		r.TripRate(workload.TextCont, threshold))
	return heavy <= light
}

// KMeansDeepestCut reports whether K-means forces the largest V/F
// reduction at the top rate — panel (b)'s headline.
func (r *Fig6Result) KMeansDeepestCut() bool {
	km := r.At1000[workload.KMeans]
	for class, vf := range r.At1000 {
		if class != workload.KMeans && vf >= km {
			return false
		}
	}
	return true
}
