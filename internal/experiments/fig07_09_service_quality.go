package experiments

import (
	"fmt"

	"antidope/internal/cluster"
	"antidope/internal/core"
	"antidope/internal/harness"
	"antidope/internal/workload"
)

// Fig7Result reproduces Figure 7: legitimate-user service quality versus
// attack rate in an aggressively power-insufficient rack (Low-PB, Capping).
// The paper reports a knee around ~100 req/s beyond which the mean response
// time blows up ~7.4x and the p90 tail ~8.9x.
type Fig7Result struct {
	Table *Table
	Rates []float64
	// MeanRT / P90RT are legitimate-user latencies (seconds) per rate.
	MeanRT []float64
	P90RT  []float64
	// MeanBlowup / P90Blowup are the ratios to the unattacked baseline.
	MeanBlowup []float64
	P90Blowup  []float64
}

// Fig7Rates is the attack-rate sweep.
var Fig7Rates = []float64{0, 50, 100, 200, 400, 700, 1000}

// Fig7 runs the sweep with a Colla-Filt flood.
func Fig7(o Options) (*Fig7Result, error) {
	horizon := o.Horizon(240)
	rates := Fig7Rates
	if o.Quick {
		rates = []float64{0, 100, 400, 1000}
	}
	out := &Fig7Result{Rates: rates}
	out.Table = &Table{
		Title:  "Figure 7: service quality vs attack rate (Low-PB, Capping)",
		Header: []string{"rate", "meanRT(ms)", "p90(ms)", "mean blowup", "p90 blowup"},
	}

	var jobs []harness.Job
	for _, rate := range rates {
		label := fmt.Sprintf("fig7/%g", rate)
		jobs = append(jobs, FloodJob(o, label, workload.CollaFilt, rate, cluster.LowPB,
			SchemeByName("capping"), false, horizon))
	}
	results, err := RunJobs(o, jobs)
	if err != nil {
		return nil, err
	}

	var baseMean, baseP90 float64
	for i, rate := range rates {
		res := results[i]
		mean := res.MeanRT()
		p90 := res.TailRT(90)
		if i == 0 {
			baseMean, baseP90 = mean, p90
		}
		mb, pb := 1.0, 1.0
		if baseMean > 0 {
			mb = mean / baseMean
		}
		if baseP90 > 0 {
			pb = p90 / baseP90
		}
		out.MeanRT = append(out.MeanRT, mean)
		out.P90RT = append(out.P90RT, p90)
		out.MeanBlowup = append(out.MeanBlowup, mb)
		out.P90Blowup = append(out.P90Blowup, pb)
		out.Table.AddRow(fmt.Sprintf("%g", rate), ms(mean), ms(p90), f2(mb), f2(pb))
	}
	out.Table.Notes = append(out.Table.Notes,
		"paper: past ~100 req/s the mean RT grows ~7.4x and the p90 ~8.9x.")
	return out, nil
}

// BlowupPastKnee returns the mean and p90 blowup at the highest swept rate.
func (r *Fig7Result) BlowupPastKnee() (mean, p90 float64) {
	n := len(r.MeanBlowup)
	if n == 0 {
		return 0, 0
	}
	return r.MeanBlowup[n-1], r.P90Blowup[n-1]
}

// Fig8Result reproduces Figure 8: per-traffic-type service-time degradation
// under a power-limited rack (Medium-PB, Capping, 400 req/s): Colla-Filt
// and K-means suffer most.
type Fig8Result struct {
	Table *Table
	// Slowdown is the class's mean response time under Medium-PB capping
	// divided by its Normal-PB response time.
	Slowdown map[workload.Class]float64
}

// Fig8 measures the attack class's own service time at both budgets.
func Fig8(o Options) (*Fig8Result, error) {
	horizon := o.Horizon(180)
	const rate = 400
	out := &Fig8Result{Slowdown: make(map[workload.Class]float64)}
	out.Table = &Table{
		Title:  "Figure 8: per-type service time under power limits (400 req/s)",
		Header: []string{"type", "RT@Normal-PB(ms)", "RT@Medium-PB(ms)", "slowdown"},
	}
	var jobs []harness.Job
	for _, class := range workload.VictimClasses() {
		jobs = append(jobs, FloodJob(o, "fig8base/"+class.String(), class, rate,
			cluster.NormalPB, SchemeByName("capping"), false, horizon))
		jobs = append(jobs, FloodJob(o, "fig8lim/"+class.String(), class, rate,
			cluster.MediumPB, SchemeByName("capping"), false, horizon))
	}
	results, err := RunJobs(o, jobs)
	if err != nil {
		return nil, err
	}
	next := resultCursor(results)
	for _, class := range workload.VictimClasses() {
		base := next()
		limited := next()
		baseRT := classRT(base, class)
		limRT := classRT(limited, class)
		slow := 1.0
		if baseRT > 0 {
			slow = limRT / baseRT
		}
		out.Slowdown[class] = slow
		out.Table.AddRow(class.String(), ms(baseRT), ms(limRT), f2(slow))
	}
	out.Table.Notes = append(out.Table.Notes,
		"paper: Colla-Filt and K-means arouse the most serious degradation.")
	return out, nil
}

func classRT(res *core.Result, class workload.Class) float64 {
	s, ok := res.LatencyByClass[class]
	if !ok {
		return 0
	}
	return s.Mean()
}

// HeavyTypesDegradeMost reports whether Colla-Filt and K-means suffer more
// than Word-Count and Text-Cont.
func (r *Fig8Result) HeavyTypesDegradeMost() bool {
	minHeavy := minOf(r.Slowdown[workload.CollaFilt], r.Slowdown[workload.KMeans])
	maxLight := maxOf(r.Slowdown[workload.WordCount], r.Slowdown[workload.TextCont])
	return minHeavy > maxLight
}

func minOf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxOf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Fig9Result reproduces Figure 9: service availability collapses as the
// power budget shrinks under attack.
type Fig9Result struct {
	Table *Table
	// Availability per budget level.
	Availability map[cluster.BudgetLevel]float64
}

// Fig9 floods the rack at every budget level and measures legitimate
// availability (completed/offered).
func Fig9(o Options) (*Fig9Result, error) {
	horizon := o.Horizon(180)
	const rate = 700
	out := &Fig9Result{Availability: make(map[cluster.BudgetLevel]float64)}
	out.Table = &Table{
		Title:  "Figure 9: service availability vs power budget (Colla-Filt flood @700 req/s)",
		Header: []string{"budget", "availability", "legit dropped"},
	}
	var jobs []harness.Job
	for _, budget := range cluster.AllBudgetLevels() {
		jobs = append(jobs, FloodJob(o, "fig9/"+budget.String(), workload.CollaFilt, rate,
			budget, SchemeByName("capping"), false, horizon))
	}
	results, err := RunJobs(o, jobs)
	if err != nil {
		return nil, err
	}
	for i, budget := range cluster.AllBudgetLevels() {
		res := results[i]
		av := res.Availability()
		out.Availability[budget] = av
		out.Table.AddRow(budget.String(), f3(av), fmt.Sprintf("%d", res.DroppedLegit))
	}
	out.Table.Notes = append(out.Table.Notes,
		"paper: aggressive oversubscription causes severe availability decline",
		"under attack-driven power reduction.")
	return out, nil
}

// AvailabilityDegradesWithBudget reports whether availability at Low-PB is
// no better than at Normal-PB.
func (r *Fig9Result) AvailabilityDegradesWithBudget() bool {
	return r.Availability[cluster.LowPB] <= r.Availability[cluster.NormalPB]
}
