package experiments

import (
	"antidope/internal/cluster"
	"antidope/internal/defense"
	"antidope/internal/harness"
)

// AblationResult dissects Anti-DOPE's design: each variant removes one
// mechanism DESIGN.md calls out (PDF isolation, the battery transition
// bridge, the suspect queue trim) and re-runs the Section 6 scenario at
// Medium-PB. It quantifies where the headline improvement actually comes
// from.
type AblationResult struct {
	Table *Table
	// MeanRT / P90RT / Collateral per variant name.
	MeanRT     map[string]float64
	P90RT      map[string]float64
	SlotsOver  map[string]float64
	Availab    map[string]float64
	Collateral map[string]uint64
}

// ablationVariants builds the scheme variants, full first.
func ablationVariants() []struct {
	name  string
	build func() defense.Scheme
} {
	mk := func(mod func(*defense.AntiDope)) func() defense.Scheme {
		return func() defense.Scheme {
			a := defense.NewAntiDope(ladder())
			mod(a)
			return a
		}
	}
	return []struct {
		name  string
		build func() defense.Scheme
	}{
		{"full", mk(func(*defense.AntiDope) {})},
		{"-PDF (no isolation)", mk(func(a *defense.AntiDope) { a.DisablePDF = true })},
		{"-battery bridge", mk(func(a *defense.AntiDope) { a.DisableBattery = true })},
		{"-queue trim", mk(func(a *defense.AntiDope) { a.SuspectQueueFactor = 0 })},
		{"-actuation delay", mk(func(a *defense.AntiDope) { a.ActuationDelaySlots = 0 })},
		{"pool 50%", mk(func(a *defense.AntiDope) { a.SuspectPoolFrac = 0.5 })},
		{"capping (ref)", func() defense.Scheme { return defense.NewCapping(ladder()) }},
		{"oracle (bound)", func() defense.Scheme { return defense.NewOracle(ladder()) }},
		{"+token on suspects", func() defense.Scheme { return defense.NewHybrid(ladder()) }},
	}
}

// Ablation runs every variant against the steady three-class DOPE
// injection at Medium-PB.
func Ablation(o Options) (*AblationResult, error) {
	horizon := o.Horizon(300)
	out := &AblationResult{
		MeanRT:     make(map[string]float64),
		P90RT:      make(map[string]float64),
		SlotsOver:  make(map[string]float64),
		Availab:    make(map[string]float64),
		Collateral: make(map[string]uint64),
	}
	out.Table = &Table{
		Title: "Ablation: Anti-DOPE with each design element removed (Medium-PB, DOPE mix)",
		Header: []string{"variant", "meanRT(ms)", "p90(ms)", "avail",
			"slotsOver", "collateral slots"},
	}
	variants := ablationVariants()
	// Scheme instances are kept alongside the jobs: the collateral counter
	// lives on the scheme, which is safe to read once the pool has drained.
	schemes := make([]defense.Scheme, len(variants))
	jobs := make([]harness.Job, len(variants))
	for i, v := range variants {
		schemes[i] = v.build()
		jobs[i] = EvalJob(o, "ablation/"+v.name, schemes[i], cluster.MediumPB,
			EvalAttackSpecs(10, horizon), horizon)
	}
	results, err := RunJobs(o, jobs)
	if err != nil {
		return nil, err
	}
	for i, v := range variants {
		scheme := schemes[i]
		res := results[i]
		out.MeanRT[v.name] = res.MeanRT()
		out.P90RT[v.name] = res.TailRT(90)
		out.SlotsOver[v.name] = res.FracSlotsOverBudget
		out.Availab[v.name] = res.Availability()
		var collateral uint64
		if ad, ok := scheme.(*defense.AntiDope); ok {
			collateral = ad.CollateralSlots()
		}
		out.Collateral[v.name] = collateral
		out.Table.AddRow(v.name, ms(res.MeanRT()), ms(res.TailRT(90)),
			f3(res.Availability()), pct(res.FracSlotsOverBudget), itoa(collateral))
	}
	out.Table.Notes = append(out.Table.Notes,
		"PDF isolation is the load-bearing element: removing it collapses the",
		"variant to battery-bridged capping. The queue trim shields the mean",
		"from collateral on suspect nodes; battery/delay shape power",
		"transients, not steady-state latency.")
	return out, nil
}

// PDFIsTheLever reports whether removing PDF degrades the p90 more than
// removing any other single element — the ablation's main finding.
func (r *AblationResult) PDFIsTheLever() bool {
	noPDF := r.P90RT["-PDF (no isolation)"]
	for _, other := range []string{"-battery bridge", "-queue trim", "-actuation delay"} {
		if r.P90RT[other] >= noPDF {
			return false
		}
	}
	return noPDF > r.P90RT["full"]
}

// FullHoldsBudget reports whether the complete framework keeps residual
// violations rare.
func (r *AblationResult) FullHoldsBudget() bool {
	return r.SlotsOver["full"] <= 0.1
}
