package experiments

import (
	"strings"
	"testing"
)

// quick returns the fast option set used for CI-grade checks; the shapes
// the paper reports must survive even shortened windows.
func quick() Options {
	return Options{Seed: 2019, Quick: true}
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{Title: "t", Header: []string{"a", "bb"}}
	tab.AddRow("xxx", "y")
	tab.Notes = append(tab.Notes, "note text")
	var sb strings.Builder
	tab.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"== t ==", "xxx", "note text", "---"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestOptionsHorizonAndSeeds(t *testing.T) {
	o := DefaultOptions()
	if o.Horizon(600) != 600 {
		t.Fatal("full horizon altered")
	}
	o.Quick = true
	if h := o.Horizon(600); h != 150 {
		t.Fatalf("quick horizon %g", h)
	}
	if h := o.Horizon(40); h != 30 {
		t.Fatalf("quick floor %g", h)
	}
	if o.SeedFor("a") == o.SeedFor("b") {
		t.Fatal("seed labels collide")
	}
	if o.SeedFor("a") != o.SeedFor("a") {
		t.Fatal("seed not stable")
	}
}

func TestFig3Shape(t *testing.T) {
	r, err := Fig3(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Ranking) < 6 {
		t.Fatalf("ranking %v", r.Ranking)
	}
	if !r.AppLayerTops() {
		t.Fatalf("application-layer floods not on top: %v", r.Ranking)
	}
	if len(r.Series) != len(r.Ranking) {
		t.Fatal("missing series")
	}
}

func TestFig4Shape(t *testing.T) {
	r, err := Fig4(quick())
	if err != nil {
		t.Fatal(err)
	}
	if !r.MonotoneInRate(3) {
		t.Fatalf("power not monotone in rate: %v", r.MeanPower)
	}
	if !r.VarianceShrinksWithRate() {
		t.Fatal("power variance did not shrink with rate")
	}
}

func TestFig5Shape(t *testing.T) {
	r, err := Fig5(quick())
	if err != nil {
		t.Fatal(err)
	}
	if !r.CollaFiltRightmost() {
		t.Fatalf("Colla-Filt not rightmost: %v", r.MeanPowerW)
	}
	if !r.KMeansCostliestPerRequest() {
		t.Fatalf("K-means not costliest: %v", r.JoulesPerRequest)
	}
	if !r.VolumeFloodCheapest() {
		t.Fatalf("volume flood not cheapest: %v", r.JoulesPerRequest)
	}
}

func TestFig6Shape(t *testing.T) {
	r, err := Fig6(quick())
	if err != nil {
		t.Fatal(err)
	}
	if !r.KMeansDeepestCut() {
		t.Fatalf("K-means not deepest cut: %v", r.At1000)
	}
	if !r.HeavyClassesTripFirst(0.01) {
		t.Fatalf("heavy classes do not trip first: %v", r.VFReduction)
	}
}

func TestFig7Shape(t *testing.T) {
	r, err := Fig7(quick())
	if err != nil {
		t.Fatal(err)
	}
	mb, pb := r.BlowupPastKnee()
	if mb < 2 {
		t.Fatalf("mean blowup %.2fx too small for a power-starved rack", mb)
	}
	if pb < 2 {
		t.Fatalf("p90 blowup %.2fx too small", pb)
	}
}

func TestFig8Shape(t *testing.T) {
	r, err := Fig8(quick())
	if err != nil {
		t.Fatal(err)
	}
	if !r.HeavyTypesDegradeMost() {
		t.Fatalf("heavy types did not degrade most: %v", r.Slowdown)
	}
}

func TestFig9Shape(t *testing.T) {
	r, err := Fig9(quick())
	if err != nil {
		t.Fatal(err)
	}
	if !r.AvailabilityDegradesWithBudget() {
		t.Fatalf("availability did not degrade: %v", r.Availability)
	}
}

func TestFig10Shape(t *testing.T) {
	r, err := Fig10(quick())
	if err != nil {
		t.Fatal(err)
	}
	if !r.FirewallCutsMedianPower() {
		t.Fatal("firewall did not cut median power")
	}
	if !r.LagLeavesSpikes() {
		t.Fatal("no residual spikes despite detection lag")
	}
}

func TestFig11Shape(t *testing.T) {
	r, err := Fig11(quick())
	if err != nil {
		t.Fatal(err)
	}
	if !r.RegionExists() {
		t.Fatalf("no DOPE region found: %v vs capacity %g",
			r.MinViolatingRPS, r.DetectCapacityRPS)
	}
}

func TestFig12Shape(t *testing.T) {
	r, err := Fig12(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Trace) < 5 {
		t.Fatalf("attack trace too short: %d epochs", len(r.Trace))
	}
	if r.BudgetViolatedJ <= 0 {
		t.Fatal("adaptive attacker never violated the budget")
	}
}

func TestFig15Shape(t *testing.T) {
	r, err := Fig15(quick())
	if err != nil {
		t.Fatal(err)
	}
	if !r.PowerHeld() {
		t.Fatal("Anti-DOPE failed to hold the budget")
	}
	if !r.SlightDegradationOnly() {
		t.Fatalf("legit degradation too large: mean %.1f->%.1fms p90 %.1f->%.1fms",
			1e3*r.BaseMean, 1e3*r.UnderMean, 1e3*r.BaseP90, 1e3*r.UnderP90)
	}
}

func TestEvalGridHeadline(t *testing.T) {
	g, err := RunEvalGrid(quick())
	if err != nil {
		t.Fatal(err)
	}
	meanImpr, p90Impr, _ := g.Headline()
	// The paper reports 44% / 68.1%. The shortened windows shift absolute
	// numbers; the defense must still clearly win on both metrics.
	if meanImpr < 0.1 {
		t.Fatalf("mean improvement only %.1f%%", meanImpr*100)
	}
	if p90Impr < 0.1 {
		t.Fatalf("p90 improvement only %.1f%%", p90Impr*100)
	}
	// Baseline equality: at Normal-PB the schemes are indistinguishable
	// (within 2x of each other).
	base := g.Results["Capping"][g.Budgets[0]].MeanRT()
	for _, name := range g.SchemeOrder {
		m := g.Results[name][g.Budgets[0]].MeanRT()
		if m > 2*base || base > 2*m {
			t.Fatalf("Normal-PB mean RT differs wildly: %s=%.1fms vs %.1fms",
				name, m*1e3, base*1e3)
		}
	}
}

func TestFig18Shape(t *testing.T) {
	r, err := Fig18(quick())
	if err != nil {
		t.Fatal(err)
	}
	if !r.AntiDopeKeepsReserve() {
		t.Fatalf("Anti-DOPE reserve %.3f <= Shaving %.3f",
			r.MinSoC["Anti-DOPE"], r.MinSoC["Shaving"])
	}
	if r.MinSoC["Shaving"] > 0.9 {
		t.Fatalf("Shaving barely used the battery: min SoC %.3f", r.MinSoC["Shaving"])
	}
	if r.DischargeEpisodes["Anti-DOPE"] == 0 {
		t.Fatal("Anti-DOPE never used the battery as a transition medium")
	}
}

func TestAblationShape(t *testing.T) {
	r, err := Ablation(quick())
	if err != nil {
		t.Fatal(err)
	}
	if !r.FullHoldsBudget() {
		t.Fatalf("full framework left %.1f%% slots over budget", 100*r.SlotsOver["full"])
	}
	if !r.PDFIsTheLever() {
		t.Fatalf("PDF not the dominant lever: p90s %v", r.P90RT)
	}
	// Removing PDF must produce collateral (innocent throttling), the full
	// framework essentially none.
	if r.Collateral["full"] > r.Collateral["-PDF (no isolation)"] {
		t.Fatalf("full framework has more collateral than the no-PDF variant")
	}
}

func TestOutageShape(t *testing.T) {
	r, err := Outage(quick())
	if err != nil {
		t.Fatal(err)
	}
	if !r.UndefendedTrips() {
		t.Fatalf("outage pattern wrong: %v", r.Outages)
	}
	if r.Downtime["None"] <= 0 {
		t.Fatal("no downtime recorded for the undefended rack")
	}
}

func TestScaleShape(t *testing.T) {
	r, err := Scale(quick())
	if err != nil {
		t.Fatal(err)
	}
	if !r.InvariantAcrossScale() {
		t.Fatalf("scale invariant broken: undefended %v, antidope-over %v, p90 cap=%v ad=%v",
			r.UndefendedOver, r.AntiDopeOver, r.CappingP90, r.AntiDopeP90)
	}
}

func TestPulseShape(t *testing.T) {
	r, err := Pulse(quick())
	if err != nil {
		t.Fatal(err)
	}
	if !r.ShavingWearsBattery() {
		t.Fatalf("pulsing did not wear Shaving's battery more: cycles %v", r.Cycles)
	}
	if !r.AntiDopeStableTail() {
		t.Fatalf("anti-dope tail not stable under pulsing: %v", r.P90)
	}
	if r.MinSoC["Shaving"] >= 1 {
		t.Fatal("Shaving never discharged under pulses")
	}
}

func TestCapacityShape(t *testing.T) {
	r, err := Capacity(quick())
	if err != nil {
		t.Fatal(err)
	}
	if r.BaselineRPS <= 0 {
		t.Fatal("no baseline capacity found")
	}
	if !r.AntiDopePreservesMostCapacity() {
		t.Fatalf("anti-dope does not preserve the most capacity: %v", r.RPS)
	}
	// The attack must cost the blind schemes real capacity.
	if r.RPS["Capping"] >= r.BaselineRPS {
		t.Fatalf("capping capacity %g not reduced from baseline %g",
			r.RPS["Capping"], r.BaselineRPS)
	}
}

func TestDetectionShape(t *testing.T) {
	r, err := Detection(quick())
	if err != nil {
		t.Fatal(err)
	}
	if !r.CUSUMSeesDope() {
		t.Fatalf("detection pattern wrong: %v", r.Delay)
	}
	// The saturating flood is visible to every detector.
	cf := r.Delay["Colla-Filt flood (400rps)"]
	for _, det := range []string{"threshold", "ewma", "cusum"} {
		if cf[det] < 0 {
			t.Fatalf("%s blind to a saturating flood", det)
		}
	}
}

func TestRobustnessShape(t *testing.T) {
	r, err := Robustness(quick())
	if err != nil {
		t.Fatal(err)
	}
	if !r.AlwaysWins() {
		t.Fatalf("anti-dope lost on some seed: mean %v p90 %v", r.MeanImpr, r.P90Impr)
	}
}

func TestThermalShape(t *testing.T) {
	r, err := Thermal(quick())
	if err != nil {
		t.Fatal(err)
	}
	if !r.ThermalThreatExists() {
		t.Fatalf("no thermal threat: %v", r.HotFrac)
	}
	if !r.IsolationKeepsCool() {
		t.Fatalf("isolation did not keep the room cool: %v", r.HotFrac)
	}
}
