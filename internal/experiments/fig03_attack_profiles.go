package experiments

import (
	"sort"

	"antidope/internal/attack"
	"antidope/internal/cluster"
	"antidope/internal/harness"
	"antidope/internal/stats"
)

// Fig3Result reproduces Figure 3: the power profile of typical
// cyber-attacks over a 600 s observation window. The paper's finding is
// that application-layer attacks (HTTP/DNS flood) drive the highest power
// band while volumetric and connection attacks stay low.
type Fig3Result struct {
	Table *Table
	// Series holds each family's power trajectory (downsampled), keyed by
	// attack name, for plotting.
	Series map[string]stats.Series
	// Ranking is the families ordered by mean power, highest first.
	Ranking []string
}

// Fig3 runs every attack family of the catalog against the Section 3 rack
// (Normal-PB, no firewall — raw power observation).
func Fig3(o Options) (*Fig3Result, error) {
	horizon := o.Horizon(600)
	out := &Fig3Result{
		Table:  &Table{Title: "Figure 3: power profile of typical cyber-attacks"},
		Series: make(map[string]stats.Series),
	}
	out.Table.Header = []string{"attack", "layer", "meanW", "peakW", "p95W", "band"}

	type scored struct {
		name string
		mean float64
	}
	var scores []scored

	catalog := attack.Catalog()
	var jobs []harness.Job
	for _, spec := range catalog {
		spec.Duration = horizon - 5
		spec.Start = 5
		cfg := BaseConfig(o, "fig3/"+spec.Name, horizon)
		cfg.Attacks = []attack.Spec{spec}
		jobs = append(jobs, harness.Job{Label: "fig3/" + spec.Name, Config: cfg})
	}
	results, err := RunJobs(o, jobs)
	if err != nil {
		return nil, err
	}

	for i, spec := range catalog {
		res := results[i]
		sum := res.Power.Summary()
		out.Series[spec.Name] = res.Power.Downsample(60)
		scores = append(scores, scored{spec.Name, sum.Mean()})
		out.Table.AddRow(spec.Name, spec.Layer.String(),
			f1(sum.Mean()), f1(sum.Max()), f1(res.Power.Sample().Percentile(95)),
			bandOf(sum.Mean(), cluster.DefaultConfig()))
	}

	sort.SliceStable(scores, func(i, j int) bool { return scores[i].mean > scores[j].mean })
	for _, s := range scores {
		out.Ranking = append(out.Ranking, s.name)
	}
	out.Table.Notes = append(out.Table.Notes,
		"paper: application-layer floods (HTTP/DNS) form the high power band;",
		"volumetric floods (SYN/UDP/ICMP) the medium/low band; Slowloris lowest.")
	return out, nil
}

// bandOf classifies a mean draw into the paper's high/medium/low bands
// relative to the rack's idle floor and nameplate.
func bandOf(meanW float64, cfg cluster.Config) string {
	idle := float64(cfg.Servers) * cfg.Model.Idle(cfg.Model.Ladder.Max)
	nameplate := float64(cfg.Servers) * cfg.Model.Nameplate
	frac := (meanW - idle) / (nameplate - idle)
	switch {
	case frac > 0.5:
		return "high"
	case frac > 0.2:
		return "medium"
	default:
		return "low"
	}
}

// AppLayerTops reports whether every application-layer service flood
// (HTTP/DNS) out-draws every volumetric flood — the Figure 3 headline,
// used by tests and EXPERIMENTS.md.
func (r *Fig3Result) AppLayerTops() bool {
	rank := map[string]int{}
	for i, n := range r.Ranking {
		rank[n] = i
	}
	for _, app := range []string{"HTTP-Flood", "DNS-Flood"} {
		for _, vol := range []string{"SYN-Flood", "UDP-Flood", "ICMP-Flood", "Slowloris"} {
			if rank[app] > rank[vol] {
				return false
			}
		}
	}
	return true
}
