// Package experiments contains one runner per figure/table of the paper's
// evaluation. Each runner assembles the right core.Config, executes the
// runs, and returns a printable result whose rows/series mirror what the
// paper plots. cmd/paperbench and the repository-root benchmarks are thin
// wrappers over this package; EXPERIMENTS.md records paper-vs-measured for
// every runner.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"antidope/internal/core"
	"antidope/internal/harness"
	"antidope/internal/obs"
)

// Options tunes how heavy the experiment runs are.
type Options struct {
	// Seed drives all randomness; runners derive per-run seeds from it.
	Seed uint64
	// Quick shrinks observation windows (~4x) so the full suite stays
	// test-friendly; the shapes survive, the confidence intervals widen.
	Quick bool
	// Parallel is the harness worker count: 0 selects one worker per
	// available CPU, 1 reproduces strictly sequential execution. Every
	// run's seed derives from its label, so tables are byte-identical at
	// any setting (the equivalence test asserts this).
	Parallel int
	// Observe, when non-nil, is consulted once per job with the job's
	// label; a non-nil return is installed as that run's core Observer.
	// Observers are stateful, so return a distinct one per observed label
	// (or observe a single label) — sharing one across concurrently
	// running jobs interleaves their event streams.
	Observe func(label string) obs.Observer
	// Telemetry, when non-nil, is attached to every pool the runners
	// build: the harness records per-job runtime, retries, and worker
	// occupancy into it (scrapeable live, dumpable as a run manifest).
	// Purely self-observability — results are identical with or without.
	Telemetry *harness.Telemetry
}

// DefaultOptions is the full-fidelity setting used for EXPERIMENTS.md.
func DefaultOptions() Options { return Options{Seed: 2019} }

// Horizon picks the observation window, honouring Quick mode: Quick
// shrinks the full-fidelity window ~4x with a 30 s floor. The scenario
// compiler (internal/scenario) reuses this seam so DSL-compiled runs
// shrink exactly like their hand-written twins.
func (o Options) Horizon(full float64) float64 {
	if o.Quick {
		h := full / 4
		if h < 30 {
			h = 30
		}
		return h
	}
	return full
}

// SeedFor derives a stable per-run seed from a label.
func (o Options) SeedFor(label string) uint64 {
	h := o.Seed ^ 0x9e3779b97f4a7c15
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 0x100000001b3
	}
	return h
}

// pool builds the worker pool every runner submits its jobs to.
func (o Options) pool() *harness.Pool {
	return harness.New(o.Parallel).WithTelemetry(o.Telemetry)
}

// RunJobs executes the jobs on the options' pool and returns the bare
// results in submission order. A non-nil error joins every job that still
// failed after the harness's retry; results are unusable in that case.
func RunJobs(o Options, jobs []harness.Job) ([]*core.Result, error) {
	if o.Observe != nil {
		for i := range jobs {
			if ob := o.Observe(jobs[i].Label); ob != nil {
				jobs[i].Config.Observer = ob
			}
		}
	}
	rr := o.pool().Run(jobs)
	if err := harness.Errs(rr); err != nil {
		return nil, err
	}
	return harness.Results(rr), nil
}

// resultCursor returns an iterator over harness results. Figures build
// their job list and then consume results through the cursor in the exact
// submission order, which keeps the printed tables byte-identical to the
// old inline loops.
func resultCursor(results []*core.Result) func() *core.Result {
	i := 0
	return func() *core.Result {
		r := results[i]
		i++
		return r
	}
}

// Table is a printable grid, the common shape of every figure's data.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	// Notes carry the qualitative findings checked against the paper.
	Notes []string
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			parts[i] = c + strings.Repeat(" ", pad)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	printRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// f1, f2, f3 format floats at fixed precision for table cells.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// ms renders seconds as milliseconds.
func ms(sec float64) string { return fmt.Sprintf("%.1f", sec*1e3) }

// pct renders a fraction as a percentage.
func pct(frac float64) string { return fmt.Sprintf("%.1f%%", frac*100) }
