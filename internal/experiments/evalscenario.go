package experiments

import (
	"antidope/internal/attack"
	"antidope/internal/cluster"
	"antidope/internal/core"
	"antidope/internal/defense"
	"antidope/internal/firewall"
	"antidope/internal/harness"
	"antidope/internal/netlb"
	"antidope/internal/workload"
)

// The Section 6 evaluation scenario: Alibaba-trace-shaped legitimate
// traffic over all service endpoints, plus the recorded DOPE injection —
// concurrent Colla-Filt / K-means / Word-Count floods, each spread over 32
// agents so no source approaches the firewall threshold.

// EvalLegitSources is the legitimate mix: the blended AliOS stream plus
// low-rate organic traffic to every victim endpoint (so PDF's collateral
// effect on heavy legitimate requests is measurable, as in Figure 15-b).
func EvalLegitSources() []core.SourceSpec {
	mk := func(class workload.Class, rps float64, n int, base workload.SourceID) core.SourceSpec {
		return core.SourceSpec{
			Source: workload.Source{
				Class: class, Origin: workload.Legit,
				Rate: workload.ConstRate(rps), Sources: n, FirstSource: base,
			},
			RateCap: rps,
		}
	}
	return []core.SourceSpec{
		mk(workload.AliNormal, 60, 64, 0),
		mk(workload.CollaFilt, 1.5, 16, 100),
		mk(workload.KMeans, 1, 16, 200),
		mk(workload.WordCount, 3, 16, 300),
		mk(workload.TextCont, 8, 16, 400),
	}
}

// EvalAttackSpecs is the steady three-class DOPE injection.
func EvalAttackSpecs(start, until float64) []attack.Spec {
	mk := func(name string, class workload.Class, rps float64) attack.Spec {
		return attack.Spec{
			Name: name, Layer: attack.ApplicationLayer, Class: class,
			RateRPS: rps, Agents: 32, Start: start, Duration: until - start,
		}
	}
	return []attack.Spec{
		mk("dope-colla", workload.CollaFilt, 28),
		mk("dope-kmeans", workload.KMeans, 18),
		mk("dope-wordcount", workload.WordCount, 70),
	}
}

// SwitchingAttackSpecs rotates a single-class flood among the three DOPE
// classes every switchSec — the Figure 15/18 "attack switches among 3
// evaluated DOPE attack types per 2 minutes" scenario.
func SwitchingAttackSpecs(start, until, switchSec float64) []attack.Spec {
	classes := []workload.Class{workload.CollaFilt, workload.KMeans, workload.WordCount}
	rates := map[workload.Class]float64{
		workload.CollaFilt: 90,
		workload.KMeans:    75,
		workload.WordCount: 260,
	}
	var specs []attack.Spec
	i := 0
	for t := start; t < until; t += switchSec {
		class := classes[i%len(classes)]
		end := t + switchSec
		if end > until {
			end = until
		}
		specs = append(specs, attack.Spec{
			Name: "switch-" + class.String(), Layer: attack.ApplicationLayer,
			Class: class, RateRPS: rates[class], Agents: 32,
			Start: t, Duration: end - t,
		})
		i++
	}
	return specs
}

// EvalConfig assembles one Section 6 run. The firewall is live (DOPE flies
// under it); legit traffic and the attack mix are fixed; scheme and budget
// vary.
func EvalConfig(o Options, label string, scheme defense.Scheme,
	budget cluster.BudgetLevel, attacks []attack.Spec, horizon float64) core.Config {
	cfg := core.Config{
		Cluster:               cluster.DefaultConfig(),
		Scheme:                scheme,
		Firewall:              firewall.DefaultConfig(),
		Policy:                netlb.LeastLoaded,
		Horizon:               horizon,
		SlotSec:               1,
		WarmupSec:             10,
		DopeEpochSec:          10,
		DopeEffectiveSlowdown: 3,
		Seed:                  o.SeedFor(label),
		Attacks:               attacks,
	}
	cfg.Cluster.Budget = budget
	// The evaluation sizes the mini UPS against the oversubscription gap
	// (20% of nameplate) so Figure 18's exhaustion dynamics land inside the
	// observation window.
	cfg.Cluster.BatterySustainW = 0.2 * float64(cfg.Cluster.Servers) * cfg.Cluster.Model.Nameplate
	return cfg
}

// EvalJob builds an evaluation run with the multi-endpoint legitimate mix
// injected directly (bypassing the single-class NormalRPS shortcut).
func EvalJob(o Options, label string, scheme defense.Scheme,
	budget cluster.BudgetLevel, attacks []attack.Spec, horizon float64) harness.Job {
	cfg := EvalConfig(o, label, scheme, budget, attacks, horizon)
	cfg.ExtraSources = EvalLegitSources()
	return harness.Job{Label: label, Config: cfg}
}
