package experiments

import (
	"fmt"

	"antidope/internal/cluster"
	"antidope/internal/core"
	"antidope/internal/defense"
	"antidope/internal/harness"
	"antidope/internal/stats"
	"antidope/internal/workload"
)

// Fig18Result reproduces Figure 18: battery behaviour per scheme under the
// switching DOPE attack. Shaving drains its UPS against the long power
// peak and exhausts it; Anti-DOPE only dips the battery while each new
// attack phase's V/F settings boot, recharging as soon as the
// reconfiguration lands.
type Fig18Result struct {
	Table *Table
	// SoC holds each scheme's state-of-charge trajectory.
	SoC map[string]stats.Series
	// MinSoC and Exhausted summarize each trajectory.
	MinSoC    map[string]float64
	Exhausted map[string]bool
	// DischargeEpisodes counts distinct dips below full charge.
	DischargeEpisodes map[string]int
}

// fig18Job builds the Figure 18 scenario for one scheme: a Low-PB rack
// whose legitimate load keeps the innocent pool warm (so attack-onset
// transients actually cross the tight budget), under the 2-minute-switching
// DOPE attack, with the gap-sized mini UPS.
func fig18Job(o Options, scheme defense.Scheme, horizon float64) harness.Job {
	cfg := EvalConfig(o, "fig18/"+scheme.Name(), scheme, cluster.LowPB,
		SwitchingAttackSpecs(30, horizon, 120), horizon)
	cfg.ExtraSources = Fig18LegitSources()
	return harness.Job{Label: "fig18/" + scheme.Name(), Config: cfg}
}

// Fig18LegitSources is the warm-pool legitimate mix of the battery study:
// a heavy AliOS stream plus light victim-endpoint traffic, keeping the
// innocent pool busy enough that attack-onset transients cross the tight
// Low-PB budget. The scenario compiler's "fig18" workload mix reuses it.
func Fig18LegitSources() []core.SourceSpec {
	mk := func(class workload.Class, rps float64, n int, base workload.SourceID) core.SourceSpec {
		return core.SourceSpec{
			Source: workload.Source{
				Class: class, Origin: workload.Legit,
				Rate: workload.ConstRate(rps), Sources: n, FirstSource: base,
			},
			RateCap: rps,
		}
	}
	return []core.SourceSpec{
		mk(workload.AliNormal, 220, 64, 0),
		mk(workload.WordCount, 25, 16, 300),
		mk(workload.TextCont, 10, 16, 400),
	}
}

// Fig18 runs the switching attack at Low-PB for every scheme.
func Fig18(o Options) (*Fig18Result, error) {
	horizon := o.Horizon(600)
	out := &Fig18Result{
		SoC:               make(map[string]stats.Series),
		MinSoC:            make(map[string]float64),
		Exhausted:         make(map[string]bool),
		DischargeEpisodes: make(map[string]int),
	}
	out.Table = &Table{
		Title:  "Figure 18: battery behaviour under switching DOPE (Low-PB, gap-sized UPS)",
		Header: []string{"scheme", "min SoC", "exhausted", "discharge episodes", "battery J used"},
	}
	names := []string{"Capping", "Shaving", "Token", "Anti-DOPE"}
	var jobs []harness.Job
	for _, name := range names {
		scheme := SchemeByName(name)
		if ad, ok := scheme.(*defense.AntiDope); ok {
			// The switching flood saturates more than one node's worth of
			// work; the Figure 18 deployment dedicates half the rack to the
			// suspect pool.
			ad.SuspectPoolFrac = 0.5
		}
		jobs = append(jobs, fig18Job(o, scheme, horizon))
	}
	results, err := RunJobs(o, jobs)
	if err != nil {
		return nil, err
	}
	for i, name := range names {
		res := results[i]
		out.SoC[name] = res.Battery.Downsample(120)
		min := res.MinBatterySoC()
		out.MinSoC[name] = min
		out.Exhausted[name] = min <= 0.02
		out.DischargeEpisodes[name] = dischargeEpisodes(res.Battery)
		out.Table.AddRow(name, f3(min), fmt.Sprintf("%v", out.Exhausted[name]),
			fmt.Sprintf("%d", out.DischargeEpisodes[name]),
			f1(res.BatteryEnergyJ))
	}
	out.Table.Notes = append(out.Table.Notes,
		"paper: conventional shaving heavily discharges and exhausts the UPS",
		"against the long DOPE peak; Anti-DOPE uses it only as a transition",
		"medium — one dip per attack change, recharged immediately after.")
	return out, nil
}

// dischargeEpisodes counts maximal runs of samples below 99.5% charge.
func dischargeEpisodes(soc stats.Series) int {
	episodes := 0
	below := false
	for _, p := range soc.Points {
		if p.V < 0.995 {
			if !below {
				episodes++
				below = true
			}
		} else {
			below = false
		}
	}
	return episodes
}

// ShavingDrainsDeepest reports whether Shaving's minimum SoC is the lowest
// of all schemes — the figure's blue-line story.
func (r *Fig18Result) ShavingDrainsDeepest() bool {
	s := r.MinSoC["Shaving"]
	for name, m := range r.MinSoC {
		if name != "Shaving" && m < s {
			return false
		}
	}
	return true
}

// AntiDopeKeepsReserve reports whether Anti-DOPE preserved meaningful
// battery reserve while Shaving did not.
func (r *Fig18Result) AntiDopeKeepsReserve() bool {
	return r.MinSoC["Anti-DOPE"] > r.MinSoC["Shaving"]
}
