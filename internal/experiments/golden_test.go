package experiments

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata/all_quick.golden from the current output")

// allQuickOutput renders the full quick suite at the given worker count.
func allQuickOutput(t testing.TB, parallel int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := All(Options{Seed: 2019, Quick: true, Parallel: parallel}, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// firstDiff describes where two outputs diverge, line by line.
func firstDiff(a, b []byte) string {
	al := bytes.Split(a, []byte("\n"))
	bl := bytes.Split(b, []byte("\n"))
	for i := 0; i < len(al) || i < len(bl); i++ {
		var av, bv []byte
		if i < len(al) {
			av = al[i]
		}
		if i < len(bl) {
			bv = bl[i]
		}
		if !bytes.Equal(av, bv) {
			return fmt.Sprintf("line %d:\n  a: %q\n  b: %q", i+1, av, bv)
		}
	}
	return "no difference"
}

// TestAllQuickGolden pins the entire quick-suite report — every table cell,
// every check line — against testdata/all_quick.golden. Any change to the
// simulation, the experiments, or the table formatter shows up as a diff
// here. Regenerate deliberately with:
//
//	go test ./internal/experiments -run TestAllQuickGolden -update
func TestAllQuickGolden(t *testing.T) {
	golden := filepath.Join("testdata", "all_quick.golden")
	got := allQuickOutput(t, 0)
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v (run with -update to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("All(quick) output diverged from %s; first %s\n(rerun with -update if the change is intended)",
			golden, firstDiff(want, got))
	}
}

// TestParallelEquivalence asserts the harness's core guarantee: the report
// is byte-identical whether the simulations run one at a time or fan out
// across eight workers. Per-label seeds make each run independent of
// execution order, and results are consumed in submission order.
func TestParallelEquivalence(t *testing.T) {
	seq := allQuickOutput(t, 1)
	par := allQuickOutput(t, 8)
	if !bytes.Equal(seq, par) {
		t.Fatalf("-parallel 1 and -parallel 8 outputs differ; first %s", firstDiff(seq, par))
	}
}
