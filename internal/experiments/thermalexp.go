package experiments

import (
	"antidope/internal/attack"
	"antidope/internal/cluster"
	"antidope/internal/harness"
	"antidope/internal/thermal"
	"antidope/internal/workload"
)

// ThermalResult demonstrates the cooling face of DOPE (the paper's
// definition names "energy, power, and cooling" as the targeted layers):
// at Normal-PB the power budget never binds, so every power-side defense
// is idle — but the CRAC plant, provisioned like the power feed, cannot
// remove a sustained DOPE heat load. Minutes after onset (thermal time
// constants), the hardware's emergency throttle fires and service quality
// collapses anyway. Isolation contains the heat exactly as it contains the
// watts.
type ThermalResult struct {
	Table *Table
	// Per scheme: peak server temperature, fraction of slots thermally
	// throttled, and legit p90.
	MaxTempC map[string]float64
	HotFrac  map[string]float64
	P90      map[string]float64
}

// Thermal runs the sustained flood at Normal-PB with undersized cooling
// for every scheme (plus the undefended rack).
func Thermal(o Options) (*ThermalResult, error) {
	// Thermal physics needs real minutes: the room and server time
	// constants do not shrink with quick mode, so the window keeps a 420 s
	// floor (quick) / 600 s (full).
	horizon := 600.0
	if o.Quick {
		horizon = 420
	}
	out := &ThermalResult{
		MaxTempC: make(map[string]float64),
		HotFrac:  make(map[string]float64),
		P90:      make(map[string]float64),
	}
	out.Table = &Table{
		Title:  "Cooling attack: sustained DOPE vs undersized CRAC at Normal-PB",
		Header: []string{"scheme", "peak temp(°C)", "slots throttled", "legit p90(ms)"},
	}
	var jobs []harness.Job
	for _, name := range []string{"none", "capping", "shaving", "anti-dope"} {
		cfg := EvalConfig(o, "thermal/"+name, SchemeByName(name), cluster.NormalPB,
			[]attack.Spec{
				attack.HTTPLoadTool(workload.CollaFilt, 80, 32, 30, horizon-40),
				attack.HTTPLoadTool(workload.KMeans, 40, 32, 30, horizon-40),
			}, horizon)
		cfg.ExtraSources = EvalLegitSources()
		// Cooling provisioned for the aggressive (Low-PB) level even though
		// the feed is at Normal — cooling plants are oversubscribed too, and
		// more recirculation-prone than this rack's feed.
		cfg.Thermal = thermal.Config{Enabled: true, CRACCapacityW: 320, RiseCPerW: 0.12}
		jobs = append(jobs, harness.Job{Label: "thermal/" + name, Config: cfg})
	}
	results, err := RunJobs(o, jobs)
	if err != nil {
		return nil, err
	}
	for _, res := range results {
		_, maxT := res.MaxTempC.Max()
		out.MaxTempC[res.SchemeName] = maxT
		out.HotFrac[res.SchemeName] = res.FracSlotsThermal
		out.P90[res.SchemeName] = res.TailRT(90)
		out.Table.AddRow(res.SchemeName, f1(maxT), pct(res.FracSlotsThermal), ms(res.TailRT(90)))
	}
	out.Table.Notes = append(out.Table.Notes,
		"the power budget never binds at Normal-PB, so Capping/Shaving are",
		"blind to the emergency; worse, their headroom-driven frequency",
		"release fights the hardware's thermal throttle (reheat-rethrottle",
		"oscillation, hence their higher throttled fraction). Only the",
		"heat-aware placement (isolation) keeps the room in its envelope.")
	return out, nil
}

// IsolationKeepsCool reports whether Anti-DOPE suffers less thermal
// throttling than the undefended rack and than blind capping.
func (r *ThermalResult) IsolationKeepsCool() bool {
	ad := r.HotFrac["Anti-DOPE"]
	return ad < r.HotFrac["None"] && ad <= r.HotFrac["Capping"]
}

// ThermalThreatExists reports whether the undefended rack overheated at all
// — the premise.
func (r *ThermalResult) ThermalThreatExists() bool {
	return r.HotFrac["None"] > 0
}
