package experiments

import (
	"fmt"
	"io"
)

// All runs every figure's experiment and prints the tables in paper order.
// This is what cmd/paperbench executes and what EXPERIMENTS.md records.
func All(o Options, w io.Writer) {
	fmt.Fprintln(w, "# Anti-DOPE reproduction — full experiment suite")
	fmt.Fprintf(w, "# options: seed=%d quick=%v\n\n", o.Seed, o.Quick)

	fig3 := Fig3(o)
	fig3.Table.Fprint(w)
	fmt.Fprintf(w, "  check: application-layer floods top the power ranking: %v\n\n", fig3.AppLayerTops())

	fig4 := Fig4(o)
	fig4.TableA.Fprint(w)
	fig4.TableB.Fprint(w)
	fmt.Fprintf(w, "  check: power monotone in rate: %v; variance shrinks with rate: %v\n\n",
		fig4.MonotoneInRate(2), fig4.VarianceShrinksWithRate())

	fig5 := Fig5(o)
	fig5.TableA.Fprint(w)
	fig5.TableB.Fprint(w)
	fmt.Fprintf(w, "  check: Colla-Filt rightmost CDF: %v; K-means costliest/request: %v; volume flood cheapest: %v\n\n",
		fig5.CollaFiltRightmost(), fig5.KMeansCostliestPerRequest(), fig5.VolumeFloodCheapest())

	fig6 := Fig6(o)
	fig6.TableA.Fprint(w)
	fig6.TableB.Fprint(w)
	fmt.Fprintf(w, "  check: heavy classes trip DVFS first: %v; K-means needs deepest cut: %v\n\n",
		fig6.HeavyClassesTripFirst(0.01), fig6.KMeansDeepestCut())

	fig7 := Fig7(o)
	fig7.Table.Fprint(w)
	mb, pb := fig7.BlowupPastKnee()
	fmt.Fprintf(w, "  check: blowup past knee mean=%.1fx p90=%.1fx (paper: 7.4x / 8.9x)\n\n", mb, pb)

	fig8 := Fig8(o)
	fig8.Table.Fprint(w)
	fmt.Fprintf(w, "  check: Colla-Filt/K-means degrade most: %v\n\n", fig8.HeavyTypesDegradeMost())

	fig9 := Fig9(o)
	fig9.Table.Fprint(w)
	fmt.Fprintf(w, "  check: availability degrades with shrinking budget: %v\n\n",
		fig9.AvailabilityDegradesWithBudget())

	fig10 := Fig10(o)
	fig10.Table.Fprint(w)
	fmt.Fprintf(w, "  check: firewall cuts median power: %v; detection lag leaves spikes: %v\n\n",
		fig10.FirewallCutsMedianPower(), fig10.LagLeavesSpikes())

	fig11 := Fig11(o)
	fig11.Table.Fprint(w)
	fmt.Fprintf(w, "  check: DOPE region exists: %v\n\n", fig11.RegionExists())

	fig12 := Fig12(o)
	fig12.Table.Fprint(w)
	fmt.Fprintf(w, "  check: attacker ends effective and undetected: %v (over-budget %.1f kJ)\n\n",
		fig12.FinalUndetected, fig12.BudgetViolatedJ/1e3)

	fig15 := Fig15(o)
	fig15.TableA.Fprint(w)
	fig15.TableB.Fprint(w)
	fmt.Fprintf(w, "  check: power held under budget: %v; only slight legit degradation: %v\n\n",
		fig15.PowerHeld(), fig15.SlightDegradationOnly())

	grid := RunEvalGrid(o)
	grid.Fig16().Fprint(w)
	grid.Fig17().Fprint(w)
	grid.Fig19().Fprint(w)
	meanImpr, p90Impr, headline := grid.Headline()
	headline.Fprint(w)
	fmt.Fprintf(w, "  check: Anti-DOPE improves mean RT by %s and p90 by %s (paper: 44%% / 68.1%%)\n\n",
		pct(meanImpr), pct(p90Impr))

	fig18 := Fig18(o)
	fig18.Table.Fprint(w)
	fmt.Fprintf(w, "  check: Shaving drains deepest: %v; Anti-DOPE keeps reserve: %v\n\n",
		fig18.ShavingDrainsDeepest(), fig18.AntiDopeKeepsReserve())

	// Beyond the paper's figures: the ablation of Anti-DOPE's design
	// elements and the outage consequence of an unmitigated DOPE attack.
	abl := Ablation(o)
	abl.Table.Fprint(w)
	fmt.Fprintf(w, "  check: PDF isolation is the dominant lever: %v\n\n", abl.PDFIsTheLever())

	outage := Outage(o)
	outage.Table.Fprint(w)
	fmt.Fprintf(w, "  check: only the undefended rack suffers outages: %v\n\n", outage.UndefendedTrips())

	pulse := Pulse(o)
	pulse.Table.Fprint(w)
	fmt.Fprintf(w, "  check: pulsing wears Shaving's battery: %v; Anti-DOPE tail stable: %v\n\n",
		pulse.ShavingWearsBattery(), pulse.AntiDopeStableTail())

	scale := Scale(o)
	scale.Table.Fprint(w)
	fmt.Fprintf(w, "  check: vulnerability and remedy invariant across scale: %v\n\n", scale.InvariantAcrossScale())

	capres := Capacity(o)
	capres.Table.Fprint(w)
	fmt.Fprintf(w, "  check: Anti-DOPE preserves the most SLA-compliant capacity: %v\n\n",
		capres.AntiDopePreservesMostCapacity())

	det := Detection(o)
	det.Table.Fprint(w)
	fmt.Fprintf(w, "  check: budget-level DOPE invisible to the static threshold but caught by CUSUM: %v\n\n",
		det.CUSUMSeesDope())

	rob := Robustness(o)
	rob.Table.Fprint(w)
	fmt.Fprintf(w, "  check: Anti-DOPE wins on every seed: %v\n\n", rob.AlwaysWins())

	therm := Thermal(o)
	therm.Table.Fprint(w)
	fmt.Fprintf(w, "  check: cooling attack exists and isolation contains it: %v / %v\n",
		therm.ThermalThreatExists(), therm.IsolationKeepsCool())
}
