package experiments

import (
	"errors"
	"fmt"
	"io"
)

// All runs every figure's experiment and prints the tables in paper order.
// This is what cmd/paperbench executes and what EXPERIMENTS.md records.
//
// A failing experiment group no longer aborts the suite: its tables are
// skipped, the remaining groups still run, and the failures are listed in a
// footer (and returned, joined, so callers can exit non-zero). The options
// line deliberately omits the Parallel setting — the output is byte-identical
// across parallel settings, and printing the worker count would break that.
func All(o Options, w io.Writer) error {
	fmt.Fprintln(w, "# Anti-DOPE reproduction — full experiment suite")
	fmt.Fprintf(w, "# options: seed=%d quick=%v\n\n", o.Seed, o.Quick)

	type group struct {
		name string
		run  func() error
	}
	groups := []group{
		{"fig3", func() error {
			fig3, err := Fig3(o)
			if err != nil {
				return err
			}
			fig3.Table.Fprint(w)
			fmt.Fprintf(w, "  check: application-layer floods top the power ranking: %v\n\n", fig3.AppLayerTops())
			return nil
		}},
		{"fig4", func() error {
			fig4, err := Fig4(o)
			if err != nil {
				return err
			}
			fig4.TableA.Fprint(w)
			fig4.TableB.Fprint(w)
			fmt.Fprintf(w, "  check: power monotone in rate: %v; variance shrinks with rate: %v\n\n",
				fig4.MonotoneInRate(2), fig4.VarianceShrinksWithRate())
			return nil
		}},
		{"fig5", func() error {
			fig5, err := Fig5(o)
			if err != nil {
				return err
			}
			fig5.TableA.Fprint(w)
			fig5.TableB.Fprint(w)
			fmt.Fprintf(w, "  check: Colla-Filt rightmost CDF: %v; K-means costliest/request: %v; volume flood cheapest: %v\n\n",
				fig5.CollaFiltRightmost(), fig5.KMeansCostliestPerRequest(), fig5.VolumeFloodCheapest())
			return nil
		}},
		{"fig6", func() error {
			fig6, err := Fig6(o)
			if err != nil {
				return err
			}
			fig6.TableA.Fprint(w)
			fig6.TableB.Fprint(w)
			fmt.Fprintf(w, "  check: heavy classes trip DVFS first: %v; K-means needs deepest cut: %v\n\n",
				fig6.HeavyClassesTripFirst(0.01), fig6.KMeansDeepestCut())
			return nil
		}},
		{"fig7", func() error {
			fig7, err := Fig7(o)
			if err != nil {
				return err
			}
			fig7.Table.Fprint(w)
			mb, pb := fig7.BlowupPastKnee()
			fmt.Fprintf(w, "  check: blowup past knee mean=%.1fx p90=%.1fx (paper: 7.4x / 8.9x)\n\n", mb, pb)
			return nil
		}},
		{"fig8", func() error {
			fig8, err := Fig8(o)
			if err != nil {
				return err
			}
			fig8.Table.Fprint(w)
			fmt.Fprintf(w, "  check: Colla-Filt/K-means degrade most: %v\n\n", fig8.HeavyTypesDegradeMost())
			return nil
		}},
		{"fig9", func() error {
			fig9, err := Fig9(o)
			if err != nil {
				return err
			}
			fig9.Table.Fprint(w)
			fmt.Fprintf(w, "  check: availability degrades with shrinking budget: %v\n\n",
				fig9.AvailabilityDegradesWithBudget())
			return nil
		}},
		{"fig10", func() error {
			fig10, err := Fig10(o)
			if err != nil {
				return err
			}
			fig10.Table.Fprint(w)
			fmt.Fprintf(w, "  check: firewall cuts median power: %v; detection lag leaves spikes: %v\n\n",
				fig10.FirewallCutsMedianPower(), fig10.LagLeavesSpikes())
			return nil
		}},
		{"fig11", func() error {
			fig11, err := Fig11(o)
			if err != nil {
				return err
			}
			fig11.Table.Fprint(w)
			fmt.Fprintf(w, "  check: DOPE region exists: %v\n\n", fig11.RegionExists())
			return nil
		}},
		{"fig12", func() error {
			fig12, err := Fig12(o)
			if err != nil {
				return err
			}
			fig12.Table.Fprint(w)
			fmt.Fprintf(w, "  check: attacker ends effective and undetected: %v (over-budget %.1f kJ)\n\n",
				fig12.FinalUndetected, fig12.BudgetViolatedJ/1e3)
			return nil
		}},
		{"fig15", func() error {
			fig15, err := Fig15(o)
			if err != nil {
				return err
			}
			fig15.TableA.Fprint(w)
			fig15.TableB.Fprint(w)
			fmt.Fprintf(w, "  check: power held under budget: %v; only slight legit degradation: %v\n\n",
				fig15.PowerHeld(), fig15.SlightDegradationOnly())
			return nil
		}},
		{"evalgrid", func() error {
			grid, err := RunEvalGrid(o)
			if err != nil {
				return err
			}
			grid.Fig16().Fprint(w)
			grid.Fig17().Fprint(w)
			grid.Fig19().Fprint(w)
			meanImpr, p90Impr, headline := grid.Headline()
			headline.Fprint(w)
			fmt.Fprintf(w, "  check: Anti-DOPE improves mean RT by %s and p90 by %s (paper: 44%% / 68.1%%)\n\n",
				pct(meanImpr), pct(p90Impr))
			return nil
		}},
		{"fig18", func() error {
			fig18, err := Fig18(o)
			if err != nil {
				return err
			}
			fig18.Table.Fprint(w)
			fmt.Fprintf(w, "  check: Shaving drains deepest: %v; Anti-DOPE keeps reserve: %v\n\n",
				fig18.ShavingDrainsDeepest(), fig18.AntiDopeKeepsReserve())
			return nil
		}},
		// Beyond the paper's figures: the ablation of Anti-DOPE's design
		// elements and the outage consequence of an unmitigated DOPE attack.
		{"ablation", func() error {
			abl, err := Ablation(o)
			if err != nil {
				return err
			}
			abl.Table.Fprint(w)
			fmt.Fprintf(w, "  check: PDF isolation is the dominant lever: %v\n\n", abl.PDFIsTheLever())
			return nil
		}},
		{"outage", func() error {
			outage, err := Outage(o)
			if err != nil {
				return err
			}
			outage.Table.Fprint(w)
			fmt.Fprintf(w, "  check: only the undefended rack suffers outages: %v\n\n", outage.UndefendedTrips())
			return nil
		}},
		{"pulse", func() error {
			pulse, err := Pulse(o)
			if err != nil {
				return err
			}
			pulse.Table.Fprint(w)
			fmt.Fprintf(w, "  check: pulsing wears Shaving's battery: %v; Anti-DOPE tail stable: %v\n\n",
				pulse.ShavingWearsBattery(), pulse.AntiDopeStableTail())
			return nil
		}},
		{"scale", func() error {
			scale, err := Scale(o)
			if err != nil {
				return err
			}
			scale.Table.Fprint(w)
			fmt.Fprintf(w, "  check: vulnerability and remedy invariant across scale: %v\n\n", scale.InvariantAcrossScale())
			return nil
		}},
		{"capacity", func() error {
			capres, err := Capacity(o)
			if err != nil {
				return err
			}
			capres.Table.Fprint(w)
			fmt.Fprintf(w, "  check: Anti-DOPE preserves the most SLA-compliant capacity: %v\n\n",
				capres.AntiDopePreservesMostCapacity())
			return nil
		}},
		{"detection", func() error {
			det, err := Detection(o)
			if err != nil {
				return err
			}
			det.Table.Fprint(w)
			fmt.Fprintf(w, "  check: budget-level DOPE invisible to the static threshold but caught by CUSUM: %v\n\n",
				det.CUSUMSeesDope())
			return nil
		}},
		{"robustness", func() error {
			rob, err := Robustness(o)
			if err != nil {
				return err
			}
			rob.Table.Fprint(w)
			fmt.Fprintf(w, "  check: Anti-DOPE wins on every seed: %v\n\n", rob.AlwaysWins())
			return nil
		}},
		{"thermal", func() error {
			therm, err := Thermal(o)
			if err != nil {
				return err
			}
			therm.Table.Fprint(w)
			fmt.Fprintf(w, "  check: cooling attack exists and isolation contains it: %v / %v\n",
				therm.ThermalThreatExists(), therm.IsolationKeepsCool())
			return nil
		}},
	}

	var errs []error
	for _, g := range groups {
		if err := g.run(); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", g.name, err))
		}
	}
	fmt.Fprintf(w, "\n# footer: %d/%d experiment groups ok\n", len(groups)-len(errs), len(groups))
	for _, err := range errs {
		fmt.Fprintf(w, "# FAILED %v\n", err)
	}
	return errors.Join(errs...)
}
