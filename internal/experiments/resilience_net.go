package experiments

import (
	"fmt"

	"antidope/internal/cluster"
	"antidope/internal/faults"
	"antidope/internal/harness"
)

// ResilienceNetResult sweeps the Table 2 schemes across network-chaos
// intensity: the Section 6 Medium-PB attack scenario with a seeded schedule
// of per-link latency, loss, and partition windows scaled from none to
// twice the baseline rate. The defense telemetry rides the same degraded
// links, so intensity raises both the physical damage (lost and late
// deliveries) and the defense's blindness. All schemes at one intensity
// face the identical network schedule.
type ResilienceNetResult struct {
	Table *Table
	// Intensities and Schemes index SLA and OvershootW: SLA[i][j] is the
	// SLA compliance of scheme j at intensity i, OvershootW[i][j] the peak
	// power overshoot above budget in watts.
	Intensities []float64
	Schemes     []string
	SLA         [][]float64
	OvershootW  [][]float64
	// NetLost/NetTimedOut/NetRetried mirror the ledger of the run behind
	// each table row, indexed like SLA.
	NetLost     [][]uint64
	NetTimedOut [][]uint64
	NetRetried  [][]uint64
}

// ResilienceNet runs the network-chaos sweep.
func ResilienceNet(o Options) (*ResilienceNetResult, error) {
	horizon := o.Horizon(240)
	intensities := []float64{0, 0.5, 1, 2}
	if o.Quick {
		intensities = []float64{0, 1, 2}
	}
	schemes := []string{"capping", "shaving", "token", "anti-dope"}

	// Baseline (intensity 1) network-chaos rate over the horizon: link
	// faults only, so the sweep isolates network conditions from the mixed
	// chaos of the Resilience sweep. The generator seed derives from the
	// intensity alone — every scheme at one intensity faces the same
	// windows.
	base := faults.GeneratorConfig{
		Horizon:      horizon,
		Servers:      cluster.DefaultConfig().Servers,
		NetFaults:    6,
		MeanFaultSec: 15,
	}

	out := &ResilienceNetResult{Intensities: intensities, Schemes: schemes}
	out.Table = &Table{
		Title: "Network-resilience sweep: degradation under link loss/latency/partitions (Medium-PB, DOPE injection)",
		Header: []string{"intensity", "scheme", "SLA<=250ms", "peak over (W)",
			"availability", "lost", "timeout", "retries"},
	}

	var jobs []harness.Job
	for _, x := range intensities {
		gen := base.Scaled(x)
		gen.Seed = o.SeedFor(fmt.Sprintf("resilience-net/links/%.2f", x))
		for _, name := range schemes {
			label := fmt.Sprintf("resilience-net/%s/x%.2f", name, x)
			job := EvalJob(o, label, SchemeByName(name), cluster.MediumPB,
				EvalAttackSpecs(10, horizon), horizon)
			if x > 0 {
				g := gen
				job.Config.Faults = &faults.Config{Generator: &g}
			}
			jobs = append(jobs, job)
		}
	}
	results, err := RunJobs(o, jobs)
	if err != nil {
		return nil, err
	}
	next := resultCursor(results)
	for _, x := range intensities {
		slaRow := make([]float64, 0, len(schemes))
		overRow := make([]float64, 0, len(schemes))
		lostRow := make([]uint64, 0, len(schemes))
		toRow := make([]uint64, 0, len(schemes))
		retryRow := make([]uint64, 0, len(schemes))
		for _, name := range schemes {
			r := next()
			sla := slaCompliance(r, resilienceSLASec)
			over := r.PeakPowerW() - r.BudgetW
			if over < 0 {
				over = 0
			}
			slaRow = append(slaRow, sla)
			overRow = append(overRow, over)
			lostRow = append(lostRow, r.NetLost)
			toRow = append(toRow, r.NetTimedOut)
			retryRow = append(retryRow, r.NetRetried)
			out.Table.AddRow(f2(x), name, pct(sla), f1(over), pct(r.Availability()),
				fmt.Sprintf("%d", r.NetLost),
				fmt.Sprintf("%d", r.NetTimedOut),
				fmt.Sprintf("%d", r.NetRetried))
		}
		out.SLA = append(out.SLA, slaRow)
		out.OvershootW = append(out.OvershootW, overRow)
		out.NetLost = append(out.NetLost, lostRow)
		out.NetTimedOut = append(out.NetTimedOut, toRow)
		out.NetRetried = append(out.NetRetried, retryRow)
	}
	if out.DegradationOrderOK() {
		out.Table.Notes = append(out.Table.Notes,
			"at the highest network-chaos intensity the SLA ordering holds: Anti-DOPE >= Token >= Shaving >= Capping.")
	} else {
		out.Table.Notes = append(out.Table.Notes,
			"WARNING: expected degradation ordering (Anti-DOPE >= Token >= Shaving >= Capping) violated at top intensity.")
	}
	return out, nil
}

// DegradationOrderOK reports whether, at the highest network-chaos
// intensity, SLA compliance degrades in the expected scheme order:
// Anti-DOPE >= Token >= Shaving >= Capping (ties allowed).
func (r *ResilienceNetResult) DegradationOrderOK() bool {
	if len(r.SLA) == 0 {
		return false
	}
	top := r.SLA[len(r.SLA)-1] // schemes order: capping, shaving, token, anti-dope
	for i := 0; i+1 < len(top); i++ {
		if top[i] > top[i+1] {
			return false
		}
	}
	return true
}
