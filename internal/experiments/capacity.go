package experiments

import (
	"fmt"

	"antidope/internal/cluster"
	"antidope/internal/sla"
)

// CapacityResult answers the operator question behind Figures 16-17: how
// much legitimate load can each scheme carry — with the DOPE injection in
// progress — while still meeting the SLA? The planner binary-searches the
// legitimate rate per scheme.
type CapacityResult struct {
	Table *Table
	// RPS is the SLA-compliant legitimate capacity per scheme.
	RPS map[string]float64
	// BaselineRPS is the no-attack capacity (scheme-independent reference).
	BaselineRPS float64
}

// Capacity runs the planner at Medium-PB against the steady DOPE mix.
// Each binary search is internally sequential (probe N+1 depends on probe
// N's verdict), so the parallelism is across the five searches instead.
func Capacity(o Options) (*CapacityResult, error) {
	horizon := o.Horizon(120)
	objectives := sla.Default()
	probes := 6
	if o.Quick {
		probes = 4
	}

	out := &CapacityResult{RPS: make(map[string]float64)}
	out.Table = &Table{
		Title:  "Capacity under attack: max legitimate req/s meeting the SLA (Medium-PB, DOPE mix)",
		Header: []string{"scheme", "capacity (req/s)", "fraction of no-attack capacity"},
	}

	names := []string{"Capping", "Shaving", "Token", "Anti-DOPE"}
	// Slot 0 is the no-attack reference with plain capping (all schemes idle
	// without an attack; any of them would do), slots 1..4 the schemes.
	rps := make([]float64, len(names)+1)
	errs := make([]error, len(names)+1)
	fns := make([]func(), len(names)+1)
	fns[0] = func() {
		template := EvalConfig(o, "capacity/baseline", SchemeByName("capping"),
			cluster.MediumPB, nil, horizon)
		rps[0], errs[0] = sla.MaxLegitRPS(template, objectives, 50, 3000, probes)
	}
	for i, name := range names {
		i, name := i, name
		fns[i+1] = func() {
			template := EvalConfig(o, "capacity/"+name, SchemeByName(name),
				cluster.MediumPB, EvalAttackSpecs(10, horizon), horizon)
			rps[i+1], errs[i+1] = sla.MaxLegitRPS(template, objectives, 20, 3000, probes)
		}
	}
	o.pool().Go(fns)
	if errs[0] != nil {
		return nil, fmt.Errorf("capacity/baseline: %w", errs[0])
	}
	for i, name := range names {
		if errs[i+1] != nil {
			return nil, fmt.Errorf("capacity/%s: %w", name, errs[i+1])
		}
	}

	baseline := rps[0]
	out.BaselineRPS = baseline
	for i, name := range names {
		out.RPS[name] = rps[i+1]
		frac := 0.0
		if baseline > 0 {
			frac = rps[i+1] / baseline
		}
		out.Table.AddRow(name, f1(rps[i+1]), pct(frac))
	}
	out.Table.Notes = append(out.Table.Notes,
		"the DOPE injection costs every scheme capacity; isolation preserves",
		"far more of it than blind throttling.")
	return out, nil
}

// AntiDopePreservesMostCapacity reports whether Anti-DOPE retains at least
// as much SLA-compliant capacity as both conventional power schemes.
func (r *CapacityResult) AntiDopePreservesMostCapacity() bool {
	ad := r.RPS["Anti-DOPE"]
	return ad >= r.RPS["Capping"] && ad >= r.RPS["Shaving"]
}
