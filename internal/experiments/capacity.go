package experiments

import (
	"antidope/internal/cluster"
	"antidope/internal/sla"
)

// CapacityResult answers the operator question behind Figures 16-17: how
// much legitimate load can each scheme carry — with the DOPE injection in
// progress — while still meeting the SLA? The planner binary-searches the
// legitimate rate per scheme.
type CapacityResult struct {
	Table *Table
	// RPS is the SLA-compliant legitimate capacity per scheme.
	RPS map[string]float64
	// BaselineRPS is the no-attack capacity (scheme-independent reference).
	BaselineRPS float64
}

// Capacity runs the planner at Medium-PB against the steady DOPE mix.
func Capacity(o Options) *CapacityResult {
	horizon := o.horizon(120)
	objectives := sla.Default()
	probes := 6
	if o.Quick {
		probes = 4
	}

	out := &CapacityResult{RPS: make(map[string]float64)}
	out.Table = &Table{
		Title:  "Capacity under attack: max legitimate req/s meeting the SLA (Medium-PB, DOPE mix)",
		Header: []string{"scheme", "capacity (req/s)", "fraction of no-attack capacity"},
	}

	// No-attack reference with plain capping (all schemes idle without an
	// attack; any of them would do).
	baseTemplate := evalConfig(o, "capacity/baseline", schemeByName("capping"),
		cluster.MediumPB, nil, horizon)
	baseline, err := sla.MaxLegitRPS(baseTemplate, objectives, 50, 3000, probes)
	if err != nil {
		panic(err)
	}
	out.BaselineRPS = baseline

	for _, name := range []string{"Capping", "Shaving", "Token", "Anti-DOPE"} {
		template := evalConfig(o, "capacity/"+name, schemeByName(name),
			cluster.MediumPB, evalAttackSpecs(10, horizon), horizon)
		rps, err := sla.MaxLegitRPS(template, objectives, 20, 3000, probes)
		if err != nil {
			panic(err)
		}
		out.RPS[name] = rps
		frac := 0.0
		if baseline > 0 {
			frac = rps / baseline
		}
		out.Table.AddRow(name, f1(rps), pct(frac))
	}
	out.Table.Notes = append(out.Table.Notes,
		"the DOPE injection costs every scheme capacity; isolation preserves",
		"far more of it than blind throttling.")
	return out
}

// AntiDopePreservesMostCapacity reports whether Anti-DOPE retains at least
// as much SLA-compliant capacity as both conventional power schemes.
func (r *CapacityResult) AntiDopePreservesMostCapacity() bool {
	ad := r.RPS["Anti-DOPE"]
	return ad >= r.RPS["Capping"] && ad >= r.RPS["Shaving"]
}
