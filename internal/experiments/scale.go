package experiments

import (
	"fmt"

	"antidope/internal/attack"
	"antidope/internal/cluster"
	"antidope/internal/core"
	"antidope/internal/harness"
	"antidope/internal/workload"
)

// ScaleResult checks that the DOPE phenomenon and the Anti-DOPE remedy are
// not artifacts of the paper's 4-node rack: the evaluation scenario is
// replayed with the rack, a row, and a small room (4/16/32 servers), with
// legitimate and attack rates scaled proportionally.
type ScaleResult struct {
	Table *Table
	// Sizes lists the server counts; per-size metrics follow.
	Sizes          []int
	CappingP90     map[int]float64
	AntiDopeP90    map[int]float64
	AntiDopeMean   map[int]float64
	CappingMean    map[int]float64
	AntiDopeOver   map[int]float64
	UndefendedOver map[int]float64
}

// scaleJob builds the proportionally scaled scenario for n servers.
func scaleJob(o Options, label string, n int, schemeName string, horizon float64) harness.Job {
	k := float64(n) / 4
	cfg := EvalConfig(o, label, nil, cluster.MediumPB, nil, horizon)
	if schemeName != "" {
		cfg.Scheme = SchemeByName(schemeName)
	}
	cfg.Cluster.Servers = n
	mk := func(class workload.Class, rps float64, srcs int, base workload.SourceID) core.SourceSpec {
		return core.SourceSpec{
			Source: workload.Source{
				Class: class, Origin: workload.Legit,
				Rate: workload.ConstRate(rps * k), Sources: srcs, FirstSource: base,
			},
			RateCap: rps * k,
		}
	}
	cfg.ExtraSources = []core.SourceSpec{
		mk(workload.AliNormal, 60, 64*n/4, 0),
		mk(workload.CollaFilt, 1.5, 16, 10000),
		mk(workload.KMeans, 1, 16, 20000),
		mk(workload.WordCount, 3, 16, 30000),
		mk(workload.TextCont, 8, 16, 40000),
	}
	flood := func(class workload.Class, rps float64) attack.Spec {
		return attack.Spec{
			Name: "scale-" + class.String(), Layer: attack.ApplicationLayer,
			Class: class, RateRPS: rps * k, Agents: 32 * n / 4,
			Start: 10, Duration: horizon - 10,
		}
	}
	cfg.Attacks = []attack.Spec{
		flood(workload.CollaFilt, 28),
		flood(workload.KMeans, 18),
		flood(workload.WordCount, 70),
	}
	return harness.Job{Label: label, Config: cfg}
}

// Scale runs the sweep.
func Scale(o Options) (*ScaleResult, error) {
	horizon := o.Horizon(240)
	sizes := []int{4, 16, 32}
	if o.Quick {
		sizes = []int{4, 16}
	}
	out := &ScaleResult{
		Sizes:          sizes,
		CappingP90:     make(map[int]float64),
		AntiDopeP90:    make(map[int]float64),
		AntiDopeMean:   make(map[int]float64),
		CappingMean:    make(map[int]float64),
		AntiDopeOver:   make(map[int]float64),
		UndefendedOver: make(map[int]float64),
	}
	out.Table = &Table{
		Title: "Scale-out: DOPE and Anti-DOPE from rack to room (Medium-PB, proportional load)",
		Header: []string{"servers", "undefended slotsOver", "capping mean(ms)", "capping p90(ms)",
			"anti-dope mean(ms)", "anti-dope p90(ms)", "anti-dope slotsOver"},
	}
	var jobs []harness.Job
	for _, n := range sizes {
		jobs = append(jobs,
			scaleJob(o, fmt.Sprintf("scale/none/%d", n), n, "none", horizon),
			scaleJob(o, fmt.Sprintf("scale/capping/%d", n), n, "capping", horizon),
			scaleJob(o, fmt.Sprintf("scale/antidope/%d", n), n, "anti-dope", horizon))
	}
	results, err := RunJobs(o, jobs)
	if err != nil {
		return nil, err
	}
	next := resultCursor(results)
	for _, n := range sizes {
		und := next()
		cap := next()
		ad := next()
		out.UndefendedOver[n] = und.FracSlotsOverBudget
		out.CappingMean[n] = cap.MeanRT()
		out.CappingP90[n] = cap.TailRT(90)
		out.AntiDopeMean[n] = ad.MeanRT()
		out.AntiDopeP90[n] = ad.TailRT(90)
		out.AntiDopeOver[n] = ad.FracSlotsOverBudget
		out.Table.AddRow(fmt.Sprintf("%d", n), pct(und.FracSlotsOverBudget),
			ms(cap.MeanRT()), ms(cap.TailRT(90)),
			ms(ad.MeanRT()), ms(ad.TailRT(90)), pct(ad.FracSlotsOverBudget))
	}
	out.Table.Notes = append(out.Table.Notes,
		"the vulnerability (sustained budget violation) and the remedy (isolate",
		"+ differentiate) both scale linearly with the power domain; nothing in",
		"the 4-node result depends on its size.")
	return out, nil
}

// InvariantAcrossScale reports whether, at every size, the undefended rack
// violates the budget and Anti-DOPE both contains the violation and beats
// capping's tail.
func (r *ScaleResult) InvariantAcrossScale() bool {
	for _, n := range r.Sizes {
		if r.UndefendedOver[n] < 0.3 {
			return false
		}
		if r.AntiDopeOver[n] > 0.1 {
			return false
		}
		if r.AntiDopeP90[n] >= r.CappingP90[n] {
			return false
		}
	}
	return true
}
