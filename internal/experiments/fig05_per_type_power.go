package experiments

import (
	"antidope/internal/cluster"
	"antidope/internal/harness"
	"antidope/internal/stats"
	"antidope/internal/workload"
)

// Fig5Result reproduces Figure 5: per-traffic-type power at a fixed 100
// req/s rate. Panel (a) is the power CDF per type (Colla-Filt near-vertical
// and right-most); panel (b) is the average power cost per request
// (K-means the most expensive per query, volumetric traffic the least).
type Fig5Result struct {
	TableA *Table
	TableB *Table
	// CDFs per class for plotting panel (a).
	CDFs map[workload.Class]stats.CDF
	// JoulesPerRequest backs panel (b).
	JoulesPerRequest map[workload.Class]float64
	// MeanPowerW per class, for the right-most-CDF check.
	MeanPowerW map[workload.Class]float64
	// PowerStdW per class, for the near-vertical check.
	PowerStdW map[workload.Class]float64
}

// Fig5Classes are the traffic types panel (a)/(b) compare: the four victim
// endpoints plus the volumetric flood the paper contrasts them against.
func Fig5Classes() []workload.Class {
	return append(workload.VictimClasses(), workload.VolumeFlood)
}

// Fig5 runs each traffic type at 100 req/s on the unprotected rack.
func Fig5(o Options) (*Fig5Result, error) {
	horizon := o.Horizon(600)
	const rate = 100
	ccfg := cluster.DefaultConfig()
	nameplate := float64(ccfg.Servers) * ccfg.Model.Nameplate

	out := &Fig5Result{
		CDFs:             make(map[workload.Class]stats.CDF),
		JoulesPerRequest: make(map[workload.Class]float64),
		MeanPowerW:       make(map[workload.Class]float64),
		PowerStdW:        make(map[workload.Class]float64),
	}
	out.TableA = &Table{
		Title:  "Figure 5-a: power CDF per traffic type @100 req/s",
		Header: []string{"type", "p10W", "p50W", "p90W", "std", "p50/nameplate"},
	}
	out.TableB = &Table{
		Title:  "Figure 5-b: average power cost per request @100 req/s",
		Header: []string{"type", "J/request", "meanW"},
	}

	var jobs []harness.Job
	for _, class := range Fig5Classes() {
		jobs = append(jobs, FloodJob(o, "fig5/"+class.String(), class, rate,
			cluster.NormalPB, nil, false, horizon))
	}
	results, err := RunJobs(o, jobs)
	if err != nil {
		return nil, err
	}

	for i, class := range Fig5Classes() {
		res := results[i]
		sample := res.Power.Sample()
		sum := res.Power.Summary()
		out.CDFs[class] = sample.CDF(50)
		out.MeanPowerW[class] = sum.Mean()
		out.PowerStdW[class] = sum.Std()
		ps := sample.Percentiles(10, 50, 90)
		out.TableA.AddRow(class.String(),
			f1(ps[0]), f1(ps[1]),
			f1(ps[2]), f2(sum.Std()),
			f3(ps[1]/nameplate))

		dynamicJ := res.TotalEnergyJ - idleEnergyJ(res, ccfg, res.Horizon)
		served := res.CompletedAtk + res.CompletedLegit
		jpr := 0.0
		if served > 0 {
			jpr = dynamicJ / float64(served)
		}
		out.JoulesPerRequest[class] = jpr
		out.TableB.AddRow(class.String(), f3(jpr), f1(sum.Mean()))
	}
	out.TableA.Notes = append(out.TableA.Notes,
		"paper: Colla-Filt's CDF is sub-vertical (stable) and right-most (highest).")
	out.TableB.Notes = append(out.TableB.Notes,
		"paper: K-means consumes the most power per request; volume-based",
		"traffic has the lowest power intensity.")
	return out, nil
}

// CollaFiltRightmost reports whether Colla-Filt has the highest mean power
// of all compared types — the panel (a) headline.
func (r *Fig5Result) CollaFiltRightmost() bool {
	cf := r.MeanPowerW[workload.CollaFilt]
	for class, m := range r.MeanPowerW {
		if class != workload.CollaFilt && m >= cf {
			return false
		}
	}
	return true
}

// KMeansCostliestPerRequest reports whether K-means tops panel (b).
func (r *Fig5Result) KMeansCostliestPerRequest() bool {
	km := r.JoulesPerRequest[workload.KMeans]
	for class, j := range r.JoulesPerRequest {
		if class != workload.KMeans && j >= km {
			return false
		}
	}
	return true
}

// VolumeFloodCheapest reports whether the volumetric flood has the lowest
// per-request power of all compared types.
func (r *Fig5Result) VolumeFloodCheapest() bool {
	vf := r.JoulesPerRequest[workload.VolumeFlood]
	for class, j := range r.JoulesPerRequest {
		if class != workload.VolumeFlood && j <= vf {
			return false
		}
	}
	return true
}
