package experiments

import (
	"fmt"

	"antidope/internal/cluster"
	"antidope/internal/harness"
	"antidope/internal/stats"
	"antidope/internal/workload"
)

// Fig4Result reproduces Figure 4: how traffic rate drives power.
// (a) mean power vs request rate for each victim endpoint;
// (b) the CDF of power samples at several traffic rates.
type Fig4Result struct {
	TableA *Table
	TableB *Table
	// MeanPower[class][rateIdx] backs TableA.
	Rates     []float64
	MeanPower map[workload.Class][]float64
	// CDFs holds the per-rate power CDFs of (b) for the mixed flood.
	CDFs map[float64]stats.CDF
}

// Fig4Rates is the sweep the runner uses.
var Fig4Rates = []float64{10, 25, 50, 100, 200, 400, 700, 1000}

// Fig4CDFRates are the rate levels whose power CDFs panel (b) plots.
var Fig4CDFRates = []float64{10, 100, 1000}

// Fig4 runs the sweep on the unprotected Normal-PB rack.
func Fig4(o Options) (*Fig4Result, error) {
	horizon := o.Horizon(240)
	rates := Fig4Rates
	if o.Quick {
		rates = []float64{10, 100, 400, 1000}
	}
	out := &Fig4Result{
		Rates:     rates,
		MeanPower: make(map[workload.Class][]float64),
		CDFs:      make(map[float64]stats.CDF),
	}

	var jobs []harness.Job
	for _, class := range workload.VictimClasses() {
		for _, rate := range rates {
			label := fmt.Sprintf("fig4a/%v/%g", class, rate)
			jobs = append(jobs, FloodJob(o, label, class, rate, cluster.NormalPB, nil, false, horizon))
		}
	}
	for _, rate := range Fig4CDFRates {
		jobs = append(jobs, MixedFloodJob(o, fmt.Sprintf("fig4b/%g", rate), rate, horizon))
	}
	results, err := RunJobs(o, jobs)
	if err != nil {
		return nil, err
	}
	next := resultCursor(results)

	out.TableA = &Table{Title: "Figure 4-a: mean power (W) vs traffic rate per service"}
	header := []string{"service"}
	for _, r := range rates {
		header = append(header, fmt.Sprintf("%grps", r))
	}
	out.TableA.Header = header

	for _, class := range workload.VictimClasses() {
		row := []string{class.String()}
		for range rates {
			mean := next().Power.Summary().Mean()
			out.MeanPower[class] = append(out.MeanPower[class], mean)
			row = append(row, f1(mean))
		}
		out.TableA.AddRow(row...)
	}
	out.TableA.Notes = append(out.TableA.Notes,
		"paper: power rises monotonically with rate; Colla-Filt/K-means/Word-Count",
		"reach high power already at low rates.")

	out.TableB = &Table{
		Title:  "Figure 4-b: power CDF at several traffic rates (equal mix of 4 services)",
		Header: []string{"rate", "p10W", "p50W", "p90W", "p99W", "normalized p50"},
	}
	nameplate := 4 * cluster.DefaultConfig().Model.Nameplate
	for _, rate := range Fig4CDFRates {
		sample := next().Power.Sample()
		out.CDFs[rate] = sample.CDF(50)
		ps := sample.Percentiles(10, 50, 90, 99)
		out.TableB.AddRow(fmt.Sprintf("%g", rate),
			f1(ps[0]), f1(ps[1]),
			f1(ps[2]), f1(ps[3]),
			f3(ps[1]/nameplate))
	}
	out.TableB.Notes = append(out.TableB.Notes,
		"paper: higher volume gives higher and lower-variance power (steeper CDF).")
	return out, nil
}

// MonotoneInRate reports whether each service's mean power is
// non-decreasing in traffic rate (allowing a small tolerance for sampling
// noise), the panel (a) headline.
func (r *Fig4Result) MonotoneInRate(tolW float64) bool {
	for _, series := range r.MeanPower {
		for i := 1; i < len(series); i++ {
			if series[i] < series[i-1]-tolW {
				return false
			}
		}
	}
	return true
}

// VarianceShrinksWithRate reports whether the power IQR at the highest CDF
// rate is tighter than at the lowest — the panel (b) headline.
func (r *Fig4Result) VarianceShrinksWithRate() bool {
	lo, okLo := r.CDFs[Fig4CDFRates[0]]
	hi, okHi := r.CDFs[Fig4CDFRates[len(Fig4CDFRates)-1]]
	if !okLo || !okHi {
		return false
	}
	iqr := func(c stats.CDF) float64 { return c.Quantile(0.75) - c.Quantile(0.25) }
	return iqr(hi) <= iqr(lo)
}
