package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// resilienceQuickOutput renders the quick resilience sweep at the given
// worker count.
func resilienceQuickOutput(t testing.TB, parallel int) (*ResilienceResult, []byte) {
	t.Helper()
	r, err := Resilience(Options{Seed: 2019, Quick: true, Parallel: parallel})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	r.Table.Fprint(&buf)
	return r, buf.Bytes()
}

// TestResilienceQuickGolden pins the fault-intensity sweep — every table
// cell — against testdata/resilience_quick.golden, and asserts the
// acceptance ordering: under the heaviest chaos schedule the schemes
// degrade most-graceful-first, Anti-DOPE >= Token >= Shaving >= Capping on
// SLA compliance. Regenerate deliberately with:
//
//	go test ./internal/experiments -run TestResilienceQuickGolden -update
func TestResilienceQuickGolden(t *testing.T) {
	golden := filepath.Join("testdata", "resilience_quick.golden")
	r, got := resilienceQuickOutput(t, 0)
	if !r.DegradationOrderOK() {
		t.Errorf("degradation ordering violated at top intensity: SLA %v for schemes %v",
			r.SLA[len(r.SLA)-1], r.Schemes)
	}
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v (run with -update to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("Resilience(quick) output diverged from %s; first %s\n(rerun with -update if the change is intended)",
			golden, firstDiff(want, got))
	}
}

// TestResilienceParallelEquivalence extends the harness guarantee to the
// fault-injected sweep: chaos schedules derive from per-intensity seeds,
// never from execution order, so one worker and eight produce identical
// bytes.
func TestResilienceParallelEquivalence(t *testing.T) {
	_, seq := resilienceQuickOutput(t, 1)
	_, par := resilienceQuickOutput(t, 8)
	if !bytes.Equal(seq, par) {
		t.Fatalf("-parallel 1 and -parallel 8 resilience outputs differ; first %s", firstDiff(seq, par))
	}
}
