package experiments

import (
	"fmt"

	"antidope/internal/attack"
	"antidope/internal/detect"
	"antidope/internal/harness"
	"antidope/internal/workload"
)

// DetectionResult quantifies how fast power-telemetry detectors see each
// attack family — the complement of Figure 11: DOPE is invisible to traffic
// monitors, but the power plane can still raise an alarm, and how fast
// depends on the detector. A static near-nameplate threshold is blind to
// budget-level DOPE; CUSUM catches the small persistent shift.
type DetectionResult struct {
	Table *Table
	// Delay[attack][detector] is seconds from attack start to alarm;
	// negative means never alarmed.
	Delay map[string]map[string]float64
}

// detectionAttacks are the scenarios replayed through the detectors.
func detectionAttacks(start, horizon float64) map[string][]attack.Spec {
	mk := func(class workload.Class, rps float64) []attack.Spec {
		return []attack.Spec{{
			Name: "det-" + class.String(), Layer: attack.ApplicationLayer,
			Class: class, RateRPS: rps, Agents: 32,
			Start: start, Duration: horizon - start,
		}}
	}
	return map[string][]attack.Spec{
		"Colla-Filt flood (400rps)": mk(workload.CollaFilt, 400),
		"K-means DOPE (55rps)":      mk(workload.KMeans, 55),
		"Volume flood (5000rps)": {{
			Name: "det-vol", Layer: attack.NetworkLayer,
			Class: workload.VolumeFlood, RateRPS: 5000, Agents: 64,
			Start: start, Duration: horizon - start,
		}},
	}
}

// Detection runs each scenario undefended at Normal-PB (pure observation)
// and replays the power series through the detectors.
func Detection(o Options) (*DetectionResult, error) {
	horizon := o.Horizon(400)
	const start = 60.0
	out := &DetectionResult{Delay: make(map[string]map[string]float64)}
	out.Table = &Table{
		Title:  "Power-telemetry detection latency per attack (undefended rack)",
		Header: []string{"attack", "threshold(s)", "ewma(s)", "cusum(s)"},
	}

	names := []string{"Colla-Filt flood (400rps)", "K-means DOPE (55rps)", "Volume flood (5000rps)"}
	scenarios := detectionAttacks(start, horizon)
	var jobs []harness.Job
	for _, name := range names {
		cfg := BaseConfig(o, "detect/"+name, horizon)
		cfg.Attacks = scenarios[name]
		jobs = append(jobs, harness.Job{Label: "detect/" + name, Config: cfg})
	}
	results, err := RunJobs(o, jobs)
	if err != nil {
		return nil, err
	}
	for i, name := range names {
		res := results[i]
		var ts, ws []float64
		var preMean float64
		preN := 0
		for _, p := range res.Power.Points {
			ts = append(ts, p.T)
			ws = append(ws, p.V)
			if p.T < start {
				preMean += p.V
				preN++
			}
		}
		if preN > 0 {
			preMean /= float64(preN)
		}

		nameplate := res.NameplateW
		detectors := []detect.Detector{
			detect.NewThreshold(0.95*nameplate, 5),
			detect.NewEWMA(),
			detect.NewCUSUM(preMean, 10, 600),
		}
		out.Delay[name] = make(map[string]float64)
		row := []string{name}
		for _, d := range detectors {
			at, ok := detect.FirstAlarm(d, ts, ws)
			delay := -1.0
			cell := "never"
			if ok && at >= start {
				delay = at - start
				cell = fmt.Sprintf("%.0f", delay)
			} else if ok {
				cell = "false+"
			}
			out.Delay[name][d.Name()] = delay
			row = append(row, cell)
		}
		out.Table.AddRow(row...)
	}
	out.Table.Notes = append(out.Table.Notes,
		"the near-nameplate threshold only sees attacks that saturate the",
		"rack; the budget-level DOPE shift needs a drift detector (CUSUM).",
		"Power-side alerting complements Anti-DOPE's mitigation: the attack",
		"is invisible in traffic but not in watts.")
	return out, nil
}

// CUSUMSeesDope reports whether CUSUM caught the budget-level DOPE scenario
// that the static threshold missed.
func (r *DetectionResult) CUSUMSeesDope() bool {
	d := r.Delay["K-means DOPE (55rps)"]
	if d == nil {
		return false
	}
	return d["cusum"] >= 0 && d["threshold"] < 0
}
