package experiments

import (
	"antidope/internal/cluster"
	"antidope/internal/harness"
	"antidope/internal/stats"
)

// Fig15Result reproduces Figure 15: Anti-DOPE managing the attacked rack.
// (a) the power timeline: the DOPE onset spikes total draw, Anti-DOPE pulls
// it back under the supply; (b) normal users' response-time statistics stay
// close to the good-user Normal-PB baseline.
type Fig15Result struct {
	TableA *Table
	TableB *Table
	// PowerUnderAttack is the defended run's power trajectory; PowerQuiet
	// the no-attack reference (the figure's red line).
	PowerUnderAttack stats.Series
	PowerQuiet       stats.Series
	BudgetW          float64
	// Latency stats: baseline (good user, Normal-PB) vs Anti-DOPE under
	// attack at Medium-PB.
	BaseMean, BaseP90, BaseP95, BaseP99     float64
	UnderMean, UnderP90, UnderP95, UnderP99 float64
}

// Fig15 runs the switching DOPE attack at Medium-PB under Anti-DOPE and a
// quiet Normal-PB baseline for reference.
func Fig15(o Options) (*Fig15Result, error) {
	horizon := o.Horizon(600)
	attackStart := 30.0

	results, err := RunJobs(o, []harness.Job{
		EvalJob(o, "fig15/quiet", SchemeByName("none"), cluster.NormalPB, nil, horizon),
		EvalJob(o, "fig15/antidope", SchemeByName("antidope"), cluster.MediumPB,
			SwitchingAttackSpecs(attackStart, horizon, 120), horizon),
	})
	if err != nil {
		return nil, err
	}
	quiet, defended := results[0], results[1]

	out := &Fig15Result{
		PowerUnderAttack: defended.Power.Downsample(120),
		PowerQuiet:       quiet.Power.Downsample(120),
		BudgetW:          defended.BudgetW,
		BaseMean:         quiet.MeanRT(),
		BaseP90:          quiet.TailRT(90),
		BaseP95:          quiet.TailRT(95),
		BaseP99:          quiet.TailRT(99),
		UnderMean:        defended.MeanRT(),
		UnderP90:         defended.TailRT(90),
		UnderP95:         defended.TailRT(95),
		UnderP99:         defended.TailRT(99),
	}

	out.TableA = &Table{
		Title:  "Figure 15-a: power under switching DOPE with Anti-DOPE (Medium-PB)",
		Header: []string{"metric", "quiet (Normal-PB)", "attacked + Anti-DOPE"},
	}
	qs, ds := quiet.Power.Summary(), defended.Power.Summary()
	out.TableA.AddRow("mean power (W)", f1(qs.Mean()), f1(ds.Mean()))
	out.TableA.AddRow("peak power (W)", f1(qs.Max()), f1(ds.Max()))
	out.TableA.AddRow("budget (W)", f1(quiet.BudgetW), f1(defended.BudgetW))
	out.TableA.AddRow("slots over budget", pct(quiet.FracSlotsOverBudget), pct(defended.FracSlotsOverBudget))
	out.TableA.AddRow("suspect-routed reqs", "0", itoa(defended.SuspectRouted))
	out.TableA.Notes = append(out.TableA.Notes,
		"paper: once DOPE starts, total power spikes; Anti-DOPE adjusts usage",
		"to keep overall demand within supply.")

	out.TableB = &Table{
		Title:  "Figure 15-b: normal users' service time under Anti-DOPE",
		Header: []string{"stat", "baseline (ms)", "under attack (ms)", "ratio"},
	}
	addStat := func(name string, base, under float64) {
		ratio := 1.0
		if base > 0 {
			ratio = under / base
		}
		out.TableB.AddRow(name, ms(base), ms(under), f2(ratio))
	}
	addStat("mean", out.BaseMean, out.UnderMean)
	addStat("p90", out.BaseP90, out.UnderP90)
	addStat("p95", out.BaseP95, out.UnderP95)
	addStat("p99", out.BaseP99, out.UnderP99)
	out.TableB.Notes = append(out.TableB.Notes,
		"paper: mean/p90/p95 only slightly worse than baseline; extremes are",
		"dominated by other factors.")
	return out, nil
}

// PowerHeld reports whether the defended run kept residual violations rare.
func (r *Fig15Result) PowerHeld() bool {
	// Re-derive from the stored series: fraction of samples above budget.
	over := 0
	for _, p := range r.PowerUnderAttack.Points {
		if p.V > r.BudgetW+1e-9 {
			over++
		}
	}
	return over <= len(r.PowerUnderAttack.Points)/10
}

// SlightDegradationOnly reports whether legit mean and p90 stayed within
// the paper's "slightly worse" envelope. The suspect split deliberately
// sacrifices the small share of heavy legitimate requests that lands on
// suspect nodes, so the aggregate mean tolerates 3x and the p90 2.5x.
func (r *Fig15Result) SlightDegradationOnly() bool {
	if r.BaseMean <= 0 || r.BaseP90 <= 0 {
		return false
	}
	return r.UnderMean/r.BaseMean <= 3 && r.UnderP90/r.BaseP90 <= 2.5
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for v > 0 {
		pos--
		buf[pos] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[pos:])
}
