package experiments

import (
	"antidope/internal/attack"
	"antidope/internal/cluster"
	"antidope/internal/core"
	"antidope/internal/defense"
	"antidope/internal/firewall"
	"antidope/internal/harness"
	"antidope/internal/netlb"
	"antidope/internal/power"
	"antidope/internal/workload"
)

// BaseConfig is the shared scaled-down rack of Section 3: four 100 W
// nodes, least-loaded balancing, light legitimate background traffic.
func BaseConfig(o Options, label string, horizon float64) core.Config {
	cfg := core.Config{
		Cluster:               cluster.DefaultConfig(),
		Firewall:              firewall.Config{Disabled: true},
		Policy:                netlb.LeastLoaded,
		NormalRPS:             60,
		NormalSources:         64,
		Horizon:               horizon,
		SlotSec:               1,
		WarmupSec:             5,
		DopeEpochSec:          10,
		DopeEffectiveSlowdown: 3,
		Seed:                  o.SeedFor(label),
	}
	return cfg
}

// FloodJob builds one victim-endpoint flood scenario as a harness job.
// The scheme must be a fresh instance per job: jobs run concurrently and
// schemes are stateful.
func FloodJob(o Options, label string, class workload.Class, rate float64,
	budget cluster.BudgetLevel, scheme defense.Scheme, fwOn bool, horizon float64) harness.Job {
	cfg := BaseConfig(o, label, horizon)
	cfg.Cluster.Budget = budget
	cfg.Scheme = scheme
	if fwOn {
		cfg.Firewall = firewall.DefaultConfig()
	}
	if rate > 0 {
		agents := int(rate / 100)
		if agents < 4 {
			agents = 4
		}
		cfg.Attacks = []attack.Spec{{
			Name:     label,
			Layer:    attack.ApplicationLayer,
			Class:    class,
			RateRPS:  rate,
			Agents:   agents,
			Start:    cfg.WarmupSec,
			Duration: horizon - cfg.WarmupSec,
		}}
	}
	return harness.Job{Label: label, Config: cfg}
}

// MixedFloodJob floods all four victim endpoints in equal shares at the
// given total rate, on the unprotected Normal-PB rack.
func MixedFloodJob(o Options, label string, totalRate, horizon float64) harness.Job {
	cfg := BaseConfig(o, label, horizon)
	perClass := totalRate / 4
	agents := int(perClass / 100)
	if agents < 4 {
		agents = 4
	}
	for _, class := range workload.VictimClasses() {
		cfg.Attacks = append(cfg.Attacks, attack.Spec{
			Name:     label + "/" + class.String(),
			Layer:    attack.ApplicationLayer,
			Class:    class,
			RateRPS:  perClass,
			Agents:   agents,
			Start:    cfg.WarmupSec,
			Duration: horizon - cfg.WarmupSec,
		})
	}
	return harness.Job{Label: label, Config: cfg}
}

// ladder is the shared frequency ladder for scheme construction.
func ladder() power.Ladder { return power.DefaultLadder() }

// SchemeByName builds a fresh scheme instance.
func SchemeByName(name string) defense.Scheme {
	s, err := defense.ByName(name, ladder())
	if err != nil {
		panic(err)
	}
	return s
}

// idleEnergyJ estimates the idle-floor energy of a run, for per-request
// dynamic-energy accounting.
func idleEnergyJ(res *core.Result, cfg cluster.Config, horizon float64) float64 {
	return float64(cfg.Servers) * cfg.Model.Idle(cfg.Model.Ladder.Max) * horizon
}
