package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// resilienceNetQuickOutput renders the quick network-chaos sweep at the
// given worker count.
func resilienceNetQuickOutput(t testing.TB, parallel int) (*ResilienceNetResult, []byte) {
	t.Helper()
	r, err := ResilienceNet(Options{Seed: 2019, Quick: true, Parallel: parallel})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	r.Table.Fprint(&buf)
	return r, buf.Bytes()
}

// TestResilienceNetQuickGolden pins the network-chaos sweep — every table
// cell — against testdata/resilience_net_quick.golden, and asserts the
// acceptance ordering: under the heaviest link-fault schedule the schemes
// degrade most-graceful-first, Anti-DOPE >= Token >= Shaving >= Capping on
// SLA compliance. Regenerate deliberately with:
//
//	go test ./internal/experiments -run TestResilienceNetQuickGolden -update
func TestResilienceNetQuickGolden(t *testing.T) {
	golden := filepath.Join("testdata", "resilience_net_quick.golden")
	r, got := resilienceNetQuickOutput(t, 0)
	if !r.DegradationOrderOK() {
		t.Errorf("degradation ordering violated at top intensity: SLA %v for schemes %v",
			r.SLA[len(r.SLA)-1], r.Schemes)
	}
	// The zero-intensity rows must be byte-for-byte free of network effects:
	// no runtime is even constructed without network windows.
	for j := range r.Schemes {
		if r.NetLost[0][j]+r.NetTimedOut[0][j]+r.NetRetried[0][j] != 0 {
			t.Errorf("intensity 0 scheme %s shows network activity (lost=%d timeout=%d retries=%d)",
				r.Schemes[j], r.NetLost[0][j], r.NetTimedOut[0][j], r.NetRetried[0][j])
		}
	}
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v (run with -update to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("ResilienceNet(quick) output diverged from %s; first %s\n(rerun with -update if the change is intended)",
			golden, firstDiff(want, got))
	}
}

// TestResilienceNetParallelEquivalence extends the harness guarantee to the
// network-chaos sweep: link-fault schedules derive from per-intensity
// seeds, never from execution order, so one worker and eight produce
// identical bytes.
func TestResilienceNetParallelEquivalence(t *testing.T) {
	_, seq := resilienceNetQuickOutput(t, 1)
	_, par := resilienceNetQuickOutput(t, 8)
	if !bytes.Equal(seq, par) {
		t.Fatalf("-parallel 1 and -parallel 8 resilience-net outputs differ; first %s", firstDiff(seq, par))
	}
}
