package experiments

import (
	"fmt"

	"antidope/internal/cluster"
	"antidope/internal/harness"
)

// RobustnessResult replays the Medium-PB headline comparison across
// independent seeds: the claim "Anti-DOPE beats blind capping on legitimate
// latency" must not be an artifact of one random draw.
type RobustnessResult struct {
	Table *Table
	// MeanImpr / P90Impr per seed: 1 - antidope/capping.
	MeanImpr []float64
	P90Impr  []float64
}

// Robustness runs the paired comparison for each derived seed.
func Robustness(o Options) (*RobustnessResult, error) {
	horizon := o.Horizon(240)
	seeds := 5
	if o.Quick {
		seeds = 3
	}
	out := &RobustnessResult{}
	out.Table = &Table{
		Title:  "Seed robustness: Anti-DOPE vs Capping at Medium-PB across independent runs",
		Header: []string{"seed", "capping mean(ms)", "anti-dope mean(ms)", "mean impr.", "capping p90(ms)", "anti-dope p90(ms)", "p90 impr."},
	}
	var jobs []harness.Job
	for i := 0; i < seeds; i++ {
		so := o
		so.Seed = o.Seed + uint64(1000*(i+1))
		jobs = append(jobs,
			EvalJob(so, fmt.Sprintf("robust/cap/%d", i), SchemeByName("capping"),
				cluster.MediumPB, EvalAttackSpecs(10, horizon), horizon),
			EvalJob(so, fmt.Sprintf("robust/ad/%d", i), SchemeByName("anti-dope"),
				cluster.MediumPB, EvalAttackSpecs(10, horizon), horizon))
	}
	results, err := RunJobs(o, jobs)
	if err != nil {
		return nil, err
	}
	next := resultCursor(results)
	for i := 0; i < seeds; i++ {
		so := o
		so.Seed = o.Seed + uint64(1000*(i+1))
		cap := next()
		ad := next()
		mi := 1 - ad.MeanRT()/cap.MeanRT()
		pi := 1 - ad.TailRT(90)/cap.TailRT(90)
		out.MeanImpr = append(out.MeanImpr, mi)
		out.P90Impr = append(out.P90Impr, pi)
		out.Table.AddRow(fmt.Sprintf("%d", so.Seed),
			ms(cap.MeanRT()), ms(ad.MeanRT()), pct(mi),
			ms(cap.TailRT(90)), ms(ad.TailRT(90)), pct(pi))
	}
	lo, hi := minMax(out.MeanImpr)
	plo, phi := minMax(out.P90Impr)
	out.Table.Notes = append(out.Table.Notes, fmt.Sprintf(
		"mean improvement range [%s, %s]; p90 range [%s, %s] across %d seeds.",
		pct(lo), pct(hi), pct(plo), pct(phi), seeds))
	return out, nil
}

func minMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// AlwaysWins reports whether Anti-DOPE improved both metrics at every seed.
func (r *RobustnessResult) AlwaysWins() bool {
	if len(r.MeanImpr) == 0 {
		return false
	}
	for i := range r.MeanImpr {
		if r.MeanImpr[i] <= 0 || r.P90Impr[i] <= 0 {
			return false
		}
	}
	return true
}
