package experiments

import (
	"antidope/internal/attack"
	"antidope/internal/cluster"
	"antidope/internal/harness"
	"antidope/internal/workload"
)

// PulseResult stresses the defenses with a square-wave (yo-yo) DOPE
// attack: bursts just long enough to demand a reaction, gaps just long
// enough to make the reaction wasteful. Purely reactive capping churns its
// frequency settings; battery-based shaving bleeds its UPS one pulse at a
// time; Anti-DOPE's isolation absorbs the pulses structurally.
type PulseResult struct {
	Table *Table
	// Per scheme: battery state, actuation churn, legit tail.
	MinSoC      map[string]float64
	Cycles      map[string]int
	FreqChanges map[string]uint64
	P90         map[string]float64
}

// Pulse runs the yo-yo attack at Low-PB with the gap-sized UPS.
func Pulse(o Options) (*PulseResult, error) {
	horizon := o.Horizon(480)
	out := &PulseResult{
		MinSoC:      make(map[string]float64),
		Cycles:      make(map[string]int),
		FreqChanges: make(map[string]uint64),
		P90:         make(map[string]float64),
	}
	out.Table = &Table{
		Title:  "Pulse (yo-yo) DOPE attack: 30s on / 30s off Colla-Filt bursts (Low-PB)",
		Header: []string{"scheme", "min SoC", "battery cycles", "freq changes", "legit p90(ms)"},
	}
	names := []string{"Capping", "Shaving", "Token", "Anti-DOPE"}
	var jobs []harness.Job
	for _, name := range names {
		// Each job gets its own pulse specs: configs must not share slices.
		pulses := attack.Pulse(workload.CollaFilt, 90, 32, 20, horizon, 30, 30)
		cfg := EvalConfig(o, "pulse/"+name, SchemeByName(name), cluster.LowPB, pulses, horizon)
		cfg.ExtraSources = EvalLegitSources()
		jobs = append(jobs, harness.Job{Label: "pulse/" + name, Config: cfg})
	}
	results, err := RunJobs(o, jobs)
	if err != nil {
		return nil, err
	}
	for i, name := range names {
		res := results[i]
		// The simulation does not expose servers post-run through Result;
		// derive actuation churn from the frequency series instead: count
		// direction reversals, skipping flat plateaus between moves.
		churn := uint64(0)
		lastDir := 0
		for i := 1; i < len(res.Freq.Points); i++ {
			d := res.Freq.Points[i].V - res.Freq.Points[i-1].V
			dir := 0
			if d > 1e-12 {
				dir = 1
			} else if d < -1e-12 {
				dir = -1
			}
			if dir != 0 {
				if lastDir != 0 && dir != lastDir {
					churn++
				}
				lastDir = dir
			}
		}
		out.MinSoC[name] = res.MinBatterySoC()
		out.Cycles[name] = res.BatteryCycles
		out.FreqChanges[name] = churn
		out.P90[name] = res.TailRT(90)
		out.Table.AddRow(name, f3(res.MinBatterySoC()), itoa(uint64(res.BatteryCycles)),
			itoa(churn), ms(res.TailRT(90)))
	}
	out.Table.Notes = append(out.Table.Notes,
		"each pulse forces Shaving to discharge again (cycle wear) and forces",
		"Capping to throttle-and-release (frequency churn); isolation makes",
		"the pulses a suspect-pool problem only.")
	return out, nil
}

// ShavingWearsBattery reports whether Shaving cycles its battery more than
// Anti-DOPE under pulsing.
func (r *PulseResult) ShavingWearsBattery() bool {
	return r.Cycles["Shaving"] > r.Cycles["Anti-DOPE"]
}

// AntiDopeStableTail reports whether Anti-DOPE's legit p90 under pulsing
// stays below capping's.
func (r *PulseResult) AntiDopeStableTail() bool {
	return r.P90["Anti-DOPE"] < r.P90["Capping"]
}
