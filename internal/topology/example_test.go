package topology_test

import (
	"fmt"

	"antidope/internal/stats"
	"antidope/internal/topology"
)

// Example builds a two-rack tree and finds the level a concentrated load
// violates first.
func Example() {
	hot := func() stats.Series {
		var s stats.Series
		for i := 0; i < 60; i++ {
			v := 60.0
			if i >= 20 {
				v = 95 // the flood lands on this rack's servers
			}
			s.Add(float64(i), v)
		}
		return s
	}
	cool := func() stats.Series {
		var s stats.Series
		for i := 0; i < 60; i++ {
			s.Add(float64(i), 55)
		}
		return s
	}
	rack0 := topology.Rack("rack-0", 160, 100, []stats.Series{hot(), hot()})
	rack1 := topology.Rack("rack-1", 160, 100, []stats.Series{cool(), cool()})
	feed := topology.Facility("feed", 400, []*topology.Node{rack0, rack1})

	reports, err := topology.Analyze(feed, 0, 59, 60)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if trip, ok := topology.FirstTrip(reports); ok {
		fmt.Printf("first over capacity: %s at t=%.0f\n", trip.Name, trip.FirstOverAt)
	}
	fmt.Printf("rack-0 oversubscription: %.2fx\n", rack0.OversubscriptionRatio())
	// Output:
	// first over capacity: rack-0 at t=20
	// rack-0 oversubscription: 1.25x
}
