// Package topology models the hierarchical power-delivery tree of a data
// center — servers feeding rack PDUs, PDUs feeding UPS strings, strings
// feeding the utility entrance — with a capacity at every level. Real
// facilities oversubscribe at several of these levels simultaneously, and a
// concentrated DOPE attack can violate a rack PDU long before the facility
// feed notices anything (the rack-level power-attack literature the paper
// builds on). The package analyzes recorded per-server power series
// against a capacity tree: per-level oversubscription ratios, violation
// fractions, and the level that trips first.
package topology

import (
	"fmt"
	"math"

	"antidope/internal/stats"
)

// Node is one element of the power tree. A node is either a leaf with a
// power profile or an internal node aggregating children — never both.
type Node struct {
	Name string
	// CapacityW is the level's rated capacity; 0 means unconstrained.
	CapacityW float64
	Children  []*Node
	// Profile is the leaf's draw over time; nil for internal nodes.
	Profile *stats.Series
}

// Validate checks structural sanity: leaf xor children, unique names,
// non-negative capacities.
func (n *Node) Validate() error {
	seen := make(map[string]bool)
	return n.validate(seen)
}

func (n *Node) validate(seen map[string]bool) error {
	if n.Name == "" {
		return fmt.Errorf("topology: unnamed node")
	}
	if seen[n.Name] {
		return fmt.Errorf("topology: duplicate node name %q", n.Name)
	}
	seen[n.Name] = true
	if n.CapacityW < 0 {
		return fmt.Errorf("topology: %s has negative capacity", n.Name)
	}
	isLeaf := n.Profile != nil
	if isLeaf && len(n.Children) > 0 {
		return fmt.Errorf("topology: %s is both leaf and internal", n.Name)
	}
	if !isLeaf && len(n.Children) == 0 {
		return fmt.Errorf("topology: %s has neither profile nor children", n.Name)
	}
	for _, c := range n.Children {
		if err := c.validate(seen); err != nil {
			return err
		}
	}
	return nil
}

// DrawAt returns the node's draw at time t (sample-and-hold for leaves).
func (n *Node) DrawAt(t float64) float64 {
	if n.Profile != nil {
		return seriesAt(n.Profile, t)
	}
	total := 0.0
	for _, c := range n.Children {
		total += c.DrawAt(t)
	}
	return total
}

func seriesAt(s *stats.Series, t float64) float64 {
	pts := s.Points
	if len(pts) == 0 {
		return 0
	}
	// Binary search for the last point at or before t.
	lo, hi := 0, len(pts)-1
	if t < pts[0].T {
		return pts[0].V
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if pts[mid].T <= t {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return pts[lo].V
}

// ChildCapacityW sums the children's rated capacities (leaf: own capacity).
func (n *Node) ChildCapacityW() float64 {
	if n.Profile != nil {
		return n.CapacityW
	}
	total := 0.0
	for _, c := range n.Children {
		if c.Profile != nil {
			total += c.CapacityW
		} else {
			total += c.ChildCapacityW()
		}
	}
	return total
}

// OversubscriptionRatio returns sum(direct children capacities)/own
// capacity — how aggressively this level is provisioned. 0 for leaves or
// unconstrained nodes.
func (n *Node) OversubscriptionRatio() float64 {
	if n.Profile != nil || n.CapacityW <= 0 {
		return 0
	}
	total := 0.0
	for _, c := range n.Children {
		total += c.CapacityW
	}
	return total / n.CapacityW
}

// LevelReport is the analysis of one node over a time grid.
type LevelReport struct {
	Name        string
	CapacityW   float64
	PeakW       float64
	MeanW       float64
	FracOver    float64 // fraction of samples above capacity
	PeakOverW   float64 // worst excess
	Oversub     float64 // children-capacity / own-capacity
	FirstOverAt float64 // -1 if never over
}

// Analyze evaluates every constrained node on an even time grid over
// [from, to] with the given number of samples.
func Analyze(root *Node, from, to float64, samples int) ([]LevelReport, error) {
	if err := root.Validate(); err != nil {
		return nil, err
	}
	if samples < 2 || to <= from {
		return nil, fmt.Errorf("topology: bad analysis window [%g,%g] x%d", from, to, samples)
	}
	var out []LevelReport
	var walk func(n *Node)
	walk = func(n *Node) {
		rep := LevelReport{
			Name: n.Name, CapacityW: n.CapacityW,
			Oversub: n.OversubscriptionRatio(), FirstOverAt: -1,
		}
		over := 0
		sum := 0.0
		for i := 0; i < samples; i++ {
			t := from + (to-from)*float64(i)/float64(samples-1)
			w := n.DrawAt(t)
			sum += w
			if w > rep.PeakW {
				rep.PeakW = w
			}
			if n.CapacityW > 0 && w > n.CapacityW {
				over++
				if rep.FirstOverAt < 0 {
					rep.FirstOverAt = t
				}
				if ex := w - n.CapacityW; ex > rep.PeakOverW {
					rep.PeakOverW = ex
				}
			}
		}
		rep.MeanW = sum / float64(samples)
		rep.FracOver = float64(over) / float64(samples)
		out = append(out, rep)
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
	return out, nil
}

// FirstTrip returns the constrained node that exceeds its capacity
// earliest, or ok=false if nothing ever does.
func FirstTrip(reports []LevelReport) (LevelReport, bool) {
	best := LevelReport{FirstOverAt: math.Inf(1)}
	found := false
	for _, r := range reports {
		if r.FirstOverAt >= 0 && r.FirstOverAt < best.FirstOverAt {
			best = r
			found = true
		}
	}
	return best, found
}

// Rack builds a rack node over per-server power series with the given PDU
// capacity. Server leaves carry their nameplate as capacity.
func Rack(name string, pduCapacityW, serverNameplateW float64, servers []stats.Series) *Node {
	rack := &Node{Name: name, CapacityW: pduCapacityW}
	for i := range servers {
		rack.Children = append(rack.Children, &Node{
			Name:      fmt.Sprintf("%s/server-%d", name, i),
			CapacityW: serverNameplateW,
			Profile:   &servers[i],
		})
	}
	return rack
}

// Facility builds a two-level tree: racks under one feed.
func Facility(name string, feedCapacityW float64, racks []*Node) *Node {
	return &Node{Name: name, CapacityW: feedCapacityW, Children: racks}
}
