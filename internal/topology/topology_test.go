package topology

import (
	"math"
	"testing"

	"antidope/internal/attack"
	"antidope/internal/cluster"
	"antidope/internal/core"
	"antidope/internal/stats"
	"antidope/internal/workload"
)

func constSeries(v float64, n int) stats.Series {
	var s stats.Series
	for i := 0; i < n; i++ {
		s.Add(float64(i), v)
	}
	return s
}

func stepSeries(lo, hi, stepT float64, n int) stats.Series {
	var s stats.Series
	for i := 0; i < n; i++ {
		v := lo
		if float64(i) >= stepT {
			v = hi
		}
		s.Add(float64(i), v)
	}
	return s
}

func TestValidate(t *testing.T) {
	leafless := &Node{Name: "x", CapacityW: 10}
	if leafless.Validate() == nil {
		t.Fatal("node with neither profile nor children validated")
	}
	s := constSeries(1, 3)
	both := &Node{Name: "y", Profile: &s, Children: []*Node{{Name: "z", Profile: &s}}}
	if both.Validate() == nil {
		t.Fatal("leaf+internal validated")
	}
	dup := Facility("f", 100, []*Node{
		Rack("r", 50, 100, []stats.Series{constSeries(1, 2)}),
		Rack("r", 50, 100, []stats.Series{constSeries(1, 2)}),
	})
	if dup.Validate() == nil {
		t.Fatal("duplicate names validated")
	}
	neg := &Node{Name: "n", CapacityW: -1, Profile: &s}
	if neg.Validate() == nil {
		t.Fatal("negative capacity validated")
	}
	ok := Facility("f", 100, []*Node{Rack("r0", 50, 100, []stats.Series{constSeries(1, 2)})})
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDrawAggregates(t *testing.T) {
	rack := Rack("r", 300, 100, []stats.Series{
		constSeries(80, 10), constSeries(60, 10),
	})
	if got := rack.DrawAt(5); math.Abs(got-140) > 1e-9 {
		t.Fatalf("rack draw %g, want 140", got)
	}
	fac := Facility("f", 500, []*Node{rack})
	if got := fac.DrawAt(5); math.Abs(got-140) > 1e-9 {
		t.Fatalf("facility draw %g", got)
	}
}

func TestSeriesSampleAndHold(t *testing.T) {
	s := stepSeries(10, 90, 5, 10)
	leaf := &Node{Name: "l", Profile: &s}
	if leaf.DrawAt(-1) != 10 || leaf.DrawAt(4.9) != 10 {
		t.Fatal("pre-step hold")
	}
	if leaf.DrawAt(5) != 90 || leaf.DrawAt(100) != 90 {
		t.Fatal("post-step hold")
	}
}

func TestOversubscriptionRatio(t *testing.T) {
	// Two 100 W servers behind a 150 W PDU: 1.33x oversubscribed.
	rack := Rack("r", 150, 100, []stats.Series{constSeries(1, 2), constSeries(1, 2)})
	if got := rack.OversubscriptionRatio(); math.Abs(got-200.0/150) > 1e-9 {
		t.Fatalf("ratio %g", got)
	}
	leaf := rack.Children[0]
	if leaf.OversubscriptionRatio() != 0 {
		t.Fatal("leaf ratio")
	}
}

func TestAnalyzeFindsRackLevelViolation(t *testing.T) {
	// Attack concentrates on rack-0: it violates its PDU at t=20 while the
	// facility feed stays comfortable.
	rack0 := Rack("rack-0", 150, 100, []stats.Series{
		stepSeries(50, 95, 20, 60), stepSeries(50, 95, 20, 60),
	})
	rack1 := Rack("rack-1", 150, 100, []stats.Series{
		constSeries(50, 60), constSeries(50, 60),
	})
	fac := Facility("feed", 500, []*Node{rack0, rack1})
	reports, err := Analyze(fac, 0, 59, 60)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]LevelReport{}
	for _, r := range reports {
		byName[r.Name] = r
	}
	if byName["rack-0"].FracOver <= 0 {
		t.Fatal("rack-0 violation missed")
	}
	if byName["rack-1"].FracOver != 0 {
		t.Fatal("rack-1 falsely flagged")
	}
	if byName["feed"].FracOver != 0 {
		t.Fatal("feed falsely flagged: 290 W peak under 500 W capacity")
	}
	trip, ok := FirstTrip(reports)
	if !ok || trip.Name != "rack-0" {
		t.Fatalf("first trip %v/%v, want rack-0", trip.Name, ok)
	}
	if math.Abs(trip.FirstOverAt-20) > 1.5 {
		t.Fatalf("first trip at %g, want ~20", trip.FirstOverAt)
	}
}

func TestAnalyzeBadWindow(t *testing.T) {
	fac := Facility("f", 100, []*Node{Rack("r", 50, 100, []stats.Series{constSeries(1, 2)})})
	if _, err := Analyze(fac, 10, 5, 10); err == nil {
		t.Fatal("inverted window accepted")
	}
	if _, err := Analyze(fac, 0, 10, 1); err == nil {
		t.Fatal("single sample accepted")
	}
}

func TestFirstTripNone(t *testing.T) {
	fac := Facility("f", 1000, []*Node{Rack("r", 500, 100, []stats.Series{constSeries(10, 5)})})
	reports, _ := Analyze(fac, 0, 4, 5)
	if _, ok := FirstTrip(reports); ok {
		t.Fatal("trip reported with everything under capacity")
	}
}

// End to end: feed a real simulation's per-server power into the tree and
// show the paper's rack-level story — under plain spreading the flood heats
// every PDU; under Anti-DOPE the suspect rack absorbs it.
func TestSimulationDrivenTopology(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Horizon = 90
	cfg.WarmupSec = 10
	cfg.Cluster.Servers = 8
	cfg.Cluster.Budget = cluster.MediumPB
	cfg.RecordPerServer = true
	cfg.Attacks = []attack.Spec{
		attack.HTTPLoadTool(workload.CollaFilt, 80, 32, 15, 70),
	}
	res, err := core.RunOnce(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerServerPower) != 8 {
		t.Fatalf("per-server series %d, want 8", len(res.PerServerPower))
	}
	// Two racks of 4 servers behind 360 W PDUs.
	rack0 := Rack("rack-0", 360, 100, res.PerServerPower[:4])
	rack1 := Rack("rack-1", 360, 100, res.PerServerPower[4:])
	fac := Facility("feed", 680, []*Node{rack0, rack1})
	reports, err := Analyze(fac, 0, res.Horizon, 200)
	if err != nil {
		t.Fatal(err)
	}
	// With least-loaded spreading the flood raises both racks; at least the
	// total (feed) pressure must register somewhere.
	var feedPeak float64
	for _, r := range reports {
		if r.Name == "feed" {
			feedPeak = r.PeakW
		}
	}
	if feedPeak <= 500 {
		t.Fatalf("feed peak %g W implausibly low under flood", feedPeak)
	}
}
