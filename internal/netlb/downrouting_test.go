package netlb

import (
	"testing"

	"antidope/internal/workload"
)

func TestPickSkipsDownServers(t *testing.T) {
	servers := pool(3)
	b := MustNew(servers, RoundRobin)
	servers[1].Advance(0)
	servers[1].Crash(0)
	for i := 0; i < 12; i++ {
		s := b.Route(reqFor(workload.AliNormal))
		if s == nil {
			t.Fatal("Route returned nil with live servers remaining")
		}
		if s.ID == 1 {
			t.Fatal("routed to a crashed server")
		}
	}
}

func TestLeastLoadedSkipsDownServers(t *testing.T) {
	servers := pool(2)
	b := MustNew(servers, LeastLoaded)
	// Server 0 idle but down, server 1 loaded but up: the loaded one wins.
	servers[0].Advance(0)
	servers[0].Crash(0)
	servers[1].Advance(0)
	servers[1].Admit(0, reqFor(workload.AliNormal))
	if s := b.Route(reqFor(workload.AliNormal)); s == nil || s.ID != 1 {
		t.Fatalf("routed to %v, want the live server 1", s)
	}
}

func TestRouteNilWhenAllDown(t *testing.T) {
	servers := pool(2)
	b := MustNew(servers, LeastLoaded)
	for _, s := range servers {
		s.Advance(0)
		s.Crash(0)
	}
	if s := b.Route(reqFor(workload.AliNormal)); s != nil {
		t.Fatalf("Route returned %v with every server down, want nil", s)
	}
}

func TestRouteSpillsFromDeadSuspectPool(t *testing.T) {
	servers := pool(4)
	servers[0].Suspect = true
	b := MustNew(servers, LeastLoaded)
	b.SetSuspectList([]string{workload.Lookup(workload.KMeans).URL})

	// Sanity: suspect traffic lands on the suspect pool while it is up.
	if s := b.Route(reqFor(workload.KMeans)); s.ID != 0 {
		t.Fatalf("suspect request routed to %d, want suspect server 0", s.ID)
	}
	// Kill the suspect pool: suspect traffic must spill onto the innocent
	// servers instead of being lost.
	servers[0].Advance(0)
	servers[0].Crash(0)
	s := b.Route(reqFor(workload.KMeans))
	if s == nil {
		t.Fatal("suspect request lost with live innocent servers remaining")
	}
	if s.ID == 0 {
		t.Fatal("routed to the crashed suspect server")
	}
}

func TestRecoveredServerRejoinsRotation(t *testing.T) {
	servers := pool(3)
	b := MustNew(servers, RoundRobin)
	servers[2].Advance(0)
	servers[2].Crash(0)
	for i := 0; i < 6; i++ {
		if s := b.Route(reqFor(workload.AliNormal)); s.ID == 2 {
			t.Fatal("routed to the crashed server")
		}
	}
	servers[2].Advance(1)
	servers[2].Recover(1)
	seen := map[int]bool{}
	for i := 0; i < 6; i++ {
		seen[b.Route(reqFor(workload.AliNormal)).ID] = true
	}
	if !seen[2] {
		t.Fatal("recovered server never re-entered the rotation")
	}
}

// TestRoundRobinSequenceUnchangedWhenAllUp pins the compatibility contract:
// down-server skipping must not perturb the rotation of a healthy cluster.
func TestRoundRobinSequenceUnchangedWhenAllUp(t *testing.T) {
	servers := pool(3)
	b := MustNew(servers, RoundRobin)
	var got []int
	for i := 0; i < 9; i++ {
		got = append(got, b.Route(reqFor(workload.AliNormal)).ID)
	}
	// The historical sequence: rrNext pre-increments, so it starts at 1.
	want := []int{1, 2, 0, 1, 2, 0, 1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rotation diverged at %d: got %v, want %v", i, got, want)
		}
	}
}
