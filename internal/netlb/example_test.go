package netlb_test

import (
	"fmt"

	"antidope/internal/netlb"
)

// ExampleBuildSuspectList shows the offline power profiling of Section 5.2.
func ExampleBuildSuspectList() {
	// Endpoints demanding at least half the maximum per-request power:
	for _, url := range netlb.BuildSuspectList(0.5) {
		fmt.Println(url)
	}
	// And with the evaluation's 20% cutoff, Word-Count joins the list:
	fmt.Println(len(netlb.BuildSuspectList(0.2)), "suspect endpoints at the 20% cutoff")
	// Output:
	// /classify
	// /recommend
	// 3 suspect endpoints at the 20% cutoff
}
