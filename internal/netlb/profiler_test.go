package netlb

import (
	"math"
	"testing"

	"antidope/internal/obs"
	"antidope/internal/workload"
)

// eventSink is a minimal Observer collecting events in order.
type eventSink struct{ evs []obs.Event }

func (s *eventSink) Emit(ev obs.Event) { s.evs = append(s.evs, ev) }

// profReq builds one request from src of the given class.
func profReq(src workload.SourceID, c workload.Class) *workload.Request {
	return &workload.Request{Class: c, Source: src}
}

// TestProfilerDecayTimeConstant checks the exponential memory: after one
// observation, the score rate decays by exactly exp(-dt/Tau) over dt of
// silence (measured through the next observation's pre-add decay).
func TestProfilerDecayTimeConstant(t *testing.T) {
	p := NewSourceProfiler()
	p.MinObservations = 1
	cf := workload.Lookup(workload.CollaFilt).WattsPerRequestScale()

	p.Observe(0, profReq(7, workload.CollaFilt))
	r0 := p.ScoreRate(7)
	if want := cf / p.TauSec; math.Abs(r0-want) > 1e-12 {
		t.Fatalf("initial rate %g, want %g", r0, want)
	}

	// One more request a full time constant later: the old score arrives
	// attenuated by 1/e before the new request's score is added.
	p.Observe(p.TauSec, profReq(7, workload.CollaFilt))
	want := (cf*math.Exp(-1) + cf) / p.TauSec
	if got := p.ScoreRate(7); math.Abs(got-want) > 1e-12 {
		t.Fatalf("decayed rate %g, want %g", got, want)
	}
}

// TestProfilerMinObservationsGuard checks that a source over the rate
// threshold is not flagged until it has accumulated MinObservations — the
// guard against condemning a client on its first burst.
func TestProfilerMinObservationsGuard(t *testing.T) {
	p := NewSourceProfiler()
	// Drop the rate threshold below a single observation's contribution:
	// every request lands at t=0 so nothing decays, the rate is over the
	// bar from the first observation on, and only the count gates flagging.
	p.SuspectScorePerSec = workload.Lookup(workload.CollaFilt).WattsPerRequestScale() / (2 * p.TauSec)
	for i := 1; i < p.MinObservations; i++ {
		if p.Observe(0, profReq(3, workload.CollaFilt)) {
			t.Fatalf("flagged after %d observations, want >= %d", i, p.MinObservations)
		}
	}
	if p.ScoreRate(3) <= p.SuspectScorePerSec {
		t.Fatal("test premise broken: rate should already exceed the threshold")
	}
	if !p.Observe(0, profReq(3, workload.CollaFilt)) {
		t.Fatalf("not flagged at observation %d", p.MinObservations)
	}
	if p.Flagged() != 1 {
		t.Fatalf("Flagged() = %d, want 1", p.Flagged())
	}
}

// TestProfilerFlagUnflagBoundary walks one source across the threshold in
// both directions and checks the suspicion state, the transition counter,
// and the emitted flag/unflag events.
func TestProfilerFlagUnflagBoundary(t *testing.T) {
	p := NewSourceProfiler()
	p.MinObservations = 1
	rec := &eventSink{}
	p.SetObserver(rec)

	// Hammer until flagged.
	now := 0.0
	for i := 0; i < 1000 && !p.Suspect(5); i++ {
		p.Observe(now, profReq(5, workload.CollaFilt))
	}
	if !p.Suspect(5) {
		t.Fatal("source never flagged under sustained load")
	}

	// Silence long enough for the rate to decay under the threshold; the
	// next (light) observation re-evaluates and unflags.
	now += 20 * p.TauSec
	if p.Observe(now, profReq(5, workload.TextCont)) {
		t.Fatal("still suspect after 20 time constants of silence")
	}
	if p.Suspect(5) {
		t.Fatal("Suspect disagrees with Observe")
	}
	if p.Flagged() != 1 {
		t.Fatalf("Flagged() = %d, want 1 (unflagging must not count)", p.Flagged())
	}

	var kinds []obs.Kind
	for _, ev := range rec.evs {
		kinds = append(kinds, ev.Kind)
		if ev.ID != 5 {
			t.Fatalf("event source ID %d, want 5", ev.ID)
		}
	}
	want := []obs.Kind{obs.KindProfilerFlag, obs.KindProfilerUnflag}
	if len(kinds) != len(want) {
		t.Fatalf("emitted %d transition events, want %d", len(kinds), len(want))
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("event %d is %v, want %v", i, kinds[i], want[i])
		}
	}
}
