package netlb

import (
	"testing"

	"antidope/internal/workload"
)

// partitionSet installs a reachability predicate that excludes the given
// server IDs, standing in for core's link-partition cursors.
func partitionSet(b *Balancer, down ...int) map[int]bool {
	cut := map[int]bool{}
	for _, id := range down {
		cut[id] = true
	}
	b.SetReachable(func(id int) bool { return !cut[id] })
	return cut
}

func TestPickSkipsPartitionedServers(t *testing.T) {
	for _, pol := range []Policy{RoundRobin, LeastLoaded} {
		servers := pool(3)
		b := MustNew(servers, pol)
		partitionSet(b, 1)
		for i := 0; i < 12; i++ {
			s := b.Route(reqFor(workload.AliNormal))
			if s == nil {
				t.Fatalf("%v: Route returned nil with reachable servers remaining", pol)
			}
			if s.ID == 1 {
				t.Fatalf("%v: routed to a partitioned server", pol)
			}
		}
	}
}

// TestPartitionedServerStaysUp pins the "defense blind, physics real"
// split: a partition hides the server from the balancer without touching
// its own up/down state.
func TestPartitionedServerStaysUp(t *testing.T) {
	servers := pool(2)
	b := MustNew(servers, LeastLoaded)
	partitionSet(b, 0)
	if !servers[0].Up() {
		t.Fatal("partition took the server down; it must only hide it from routing")
	}
	if s := b.Route(reqFor(workload.AliNormal)); s == nil || s.ID != 0+1 {
		t.Fatalf("routed to %v, want the reachable server 1", s)
	}
}

func TestRouteNilWhenAllPartitioned(t *testing.T) {
	servers := pool(2)
	b := MustNew(servers, LeastLoaded)
	partitionSet(b, 0, 1)
	if s := b.Route(reqFor(workload.AliNormal)); s != nil {
		t.Fatalf("Route returned %v with every server partitioned, want nil", s)
	}
}

// TestHealedServerRejoinsRotation flips the predicate mid-test, the shape
// of a partition window closing.
func TestHealedServerRejoinsRotation(t *testing.T) {
	servers := pool(3)
	b := MustNew(servers, RoundRobin)
	cut := partitionSet(b, 2)
	for i := 0; i < 6; i++ {
		if s := b.Route(reqFor(workload.AliNormal)); s.ID == 2 {
			t.Fatal("routed to the partitioned server")
		}
	}
	delete(cut, 2) // window closes
	seen := map[int]bool{}
	for i := 0; i < 6; i++ {
		seen[b.Route(reqFor(workload.AliNormal)).ID] = true
	}
	if !seen[2] {
		t.Fatal("healed server never re-entered the rotation")
	}
}

// TestSuspectPoolSplitSurvivesPartition pins PDF's pool discipline under a
// partitioned suspect server: suspect traffic spills to the innocents (not
// lost), and innocent traffic never lands on the partitioned suspect.
func TestSuspectPoolSplitSurvivesPartition(t *testing.T) {
	servers := pool(4)
	servers[0].Suspect = true
	b := MustNew(servers, LeastLoaded)
	b.SetSuspectList([]string{workload.Lookup(workload.KMeans).URL})

	// Sanity: suspect traffic lands on the suspect pool while reachable.
	if s := b.Route(reqFor(workload.KMeans)); s.ID != 0 {
		t.Fatalf("suspect request routed to %d, want suspect server 0", s.ID)
	}
	partitionSet(b, 0)
	s := b.Route(reqFor(workload.KMeans))
	if s == nil {
		t.Fatal("suspect request lost with reachable innocent servers remaining")
	}
	if s.ID == 0 {
		t.Fatal("routed to the partitioned suspect server")
	}
	if s := b.Route(reqFor(workload.AliNormal)); s == nil || s.ID == 0 {
		t.Fatalf("innocent request routed to %v, want a reachable innocent server", s)
	}
}

// TestNilPredicateKeepsHistoricalRotation pins the compatibility contract:
// without SetReachable (and with a predicate admitting everyone) the
// round-robin sequence is byte-identical to the historical one.
func TestNilPredicateKeepsHistoricalRotation(t *testing.T) {
	want := []int{1, 2, 0, 1, 2, 0, 1, 2, 0} // rrNext pre-increments
	run := func(name string, prep func(b *Balancer)) {
		servers := pool(3)
		b := MustNew(servers, RoundRobin)
		prep(b)
		for i, w := range want {
			if got := b.Route(reqFor(workload.AliNormal)).ID; got != w {
				t.Fatalf("%s: rotation diverged at %d: got %d, want %d", name, i, got, w)
			}
		}
	}
	run("nil-predicate", func(b *Balancer) {})
	run("admit-all-predicate", func(b *Balancer) {
		b.SetReachable(func(int) bool { return true })
	})
}
