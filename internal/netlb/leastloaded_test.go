package netlb

import (
	"testing"

	"antidope/internal/workload"
)

// TestLeastLoadedTieBreaking pins the deterministic tie rule: among servers
// sharing the minimum in-flight count, the lowest-indexed one wins (pick
// keeps the first best and only replaces it on a strictly lower count).
// Replication depends on this being stable — a "random" or last-wins tie
// rule would make routing depend on pool construction order.
func TestLeastLoadedTieBreaking(t *testing.T) {
	cases := []struct {
		name     string
		inflight []int // per-server in-flight requests before routing
		want     int   // server ID the next request must land on
	}{
		{"all idle picks the first server", []int{0, 0, 0, 0}, 0},
		{"tie among later servers picks the lowest index", []int{3, 1, 1, 2}, 1},
		{"strictly lower later server wins", []int{2, 2, 1, 2}, 2},
		{"uniform nonzero load still picks the first", []int{2, 2, 2, 2}, 0},
		{"single idle server wins over any tie", []int{1, 1, 0, 1}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			servers := pool(len(tc.inflight))
			for i, n := range tc.inflight {
				servers[i].Advance(0)
				for j := 0; j < n; j++ {
					servers[i].Admit(0, reqFor(workload.CollaFilt))
				}
			}
			b := MustNew(servers, LeastLoaded)
			if s := b.Route(reqFor(workload.AliNormal)); s.ID != tc.want {
				t.Fatalf("routed to server %d, want %d (inflight %v)", s.ID, tc.want, tc.inflight)
			}
		})
	}
}
