package netlb

import (
	"math"

	"antidope/internal/obs"
	"antidope/internal/workload"
)

// SourceProfiler is the online complement to the offline URL suspect list
// (the paper's Section 5.2 notes the design "can be easily extended to the
// other types of the application-layer DoS attacks by simply changing the
// monitored statistical features"). It tracks, per traffic source, an
// exponentially decayed rate of power-cost score — watts-scale demanded per
// second — and flags sources whose demand rate exceeds a threshold, even
// when every individual URL they touch is below the offline listing cutoff.
//
// A legitimate client browsing heavy endpoints occasionally stays far under
// the threshold; an agent replaying medium-weight endpoints at volume
// crosses it.
type SourceProfiler struct {
	// TauSec is the decay time constant of the per-source score rate.
	TauSec float64
	// SuspectScorePerSec flags a source whose decayed power-cost rate
	// (score units per second, score = demand × power weight) exceeds it.
	SuspectScorePerSec float64
	// MinObservations avoids flagging on the first burst.
	MinObservations int

	sources map[workload.SourceID]*sourceStat
	flagged uint64

	obs obs.Observer
}

type sourceStat struct {
	acc      float64 // decayed accumulated score
	lastSeen float64
	n        int
	suspect  bool
}

// NewSourceProfiler builds a profiler with the evaluation defaults: 10 s
// memory, threshold equivalent to ~10 Colla-Filt requests per second, 20
// observations minimum.
func NewSourceProfiler() *SourceProfiler {
	cf := workload.Lookup(workload.CollaFilt).WattsPerRequestScale()
	return &SourceProfiler{
		TauSec:             10,
		SuspectScorePerSec: 10 * cf,
		MinObservations:    20,
		sources:            make(map[workload.SourceID]*sourceStat),
	}
}

// Observe folds one request into its source's profile and returns the
// source's current suspicion state.
func (p *SourceProfiler) Observe(now float64, req *workload.Request) bool {
	st := p.sources[req.Source]
	if st == nil {
		st = &sourceStat{lastSeen: now}
		p.sources[req.Source] = st
	}
	if dt := now - st.lastSeen; dt > 0 {
		st.acc *= math.Exp(-dt / p.TauSec)
	}
	st.acc += workload.Lookup(req.Class).WattsPerRequestScale()
	st.lastSeen = now
	st.n++

	rate := st.acc / p.TauSec
	was := st.suspect
	st.suspect = st.n >= p.MinObservations && rate > p.SuspectScorePerSec
	if st.suspect != was && p.obs != nil {
		kind := obs.KindProfilerFlag
		if !st.suspect {
			kind = obs.KindProfilerUnflag
		}
		p.obs.Emit(obs.Event{
			T: now, Kind: kind, Server: -1,
			ID: uint64(req.Source), A: rate,
		})
	}
	if st.suspect && !was {
		p.flagged++
	}
	return st.suspect
}

// SetObserver installs the event sink; flag/unflag transitions are emitted.
func (p *SourceProfiler) SetObserver(o obs.Observer) { p.obs = o }

// Clone returns an independent deep copy of the per-source profiles for
// snapshot forking. The observer is not carried over.
func (p *SourceProfiler) Clone() *SourceProfiler {
	c := *p
	c.obs = nil
	c.sources = make(map[workload.SourceID]*sourceStat, len(p.sources))
	for id, st := range p.sources {
		cp := *st
		c.sources[id] = &cp
	}
	return &c
}

// Suspect reports the source's current state without updating it.
func (p *SourceProfiler) Suspect(src workload.SourceID) bool {
	st := p.sources[src]
	return st != nil && st.suspect
}

// ScoreRate returns the source's current decayed power-cost rate at the
// time of its last observation (monitoring/debug).
func (p *SourceProfiler) ScoreRate(src workload.SourceID) float64 {
	st := p.sources[src]
	if st == nil {
		return 0
	}
	return st.acc / p.TauSec
}

// Flagged returns how many distinct source-flagging transitions occurred.
func (p *SourceProfiler) Flagged() uint64 { return p.flagged }

// Tracked returns how many sources have profiles.
func (p *SourceProfiler) Tracked() int { return len(p.sources) }
