package netlb

import (
	"fmt"

	"antidope/internal/obs"
	"antidope/internal/power"
	"antidope/internal/workload"
)

// PowerTokenBucket is the Token baseline of Table 2: a traffic shaper whose
// tokens are joules of expected dynamic energy rather than bytes. Requests
// are admitted while the bucket holds enough energy credit; the rest are
// dropped at the balancer, which is why Token shows short latency but
// abandons a large share of packages (Section 6.3).
type PowerTokenBucket struct {
	// RateW refills the bucket in watts (joules per second) — the dynamic
	// power budget the shaper enforces.
	RateW float64
	// BurstJ caps accumulated credit.
	BurstJ float64

	tokens   float64
	lastFill float64

	admitted uint64
	dropped  uint64

	obs obs.Observer
}

// NewPowerTokenBucket builds a full bucket; it panics on non-positive
// parameters (construction bug).
func NewPowerTokenBucket(rateW, burstJ float64) *PowerTokenBucket {
	if rateW <= 0 || burstJ <= 0 {
		panic(fmt.Sprintf("netlb: token bucket rate %g burst %g", rateW, burstJ))
	}
	return &PowerTokenBucket{RateW: rateW, BurstJ: burstJ, tokens: burstJ}
}

// EnergyCost estimates the dynamic energy one request of the class will add
// on top of idle: demand × power weight × the model's dynamic headroom at
// full frequency. The shaper plans with the expectation, like a real NLB
// that only sees the URL.
func EnergyCost(class workload.Class, model power.Model) float64 {
	p := workload.Lookup(class)
	return p.MeanDemand * p.PowerWeight * model.Dynamic()
}

// Admit refills the bucket up to time now and tries to spend costJ. On
// refusal the request is marked dropped with the token-bucket reason.
func (tb *PowerTokenBucket) Admit(now float64, req *workload.Request, costJ float64) bool {
	if now > tb.lastFill {
		tb.tokens += (now - tb.lastFill) * tb.RateW
		if tb.tokens > tb.BurstJ {
			tb.tokens = tb.BurstJ
		}
		tb.lastFill = now
	}
	if costJ < 0 {
		costJ = 0
	}
	if tb.tokens >= costJ {
		tb.tokens -= costJ
		tb.admitted++
		if tb.obs != nil {
			tb.obs.Emit(obs.Event{
				T: now, Kind: obs.KindTokenGrant, Server: -1,
				Class: int32(req.Class), ID: req.ID, A: costJ, B: tb.tokens,
			})
		}
		return true
	}
	tb.dropped++
	req.Dropped = true
	req.DropReason = "token-bucket"
	if tb.obs != nil {
		tb.obs.Emit(obs.Event{
			T: now, Kind: obs.KindTokenDeny, Server: -1,
			Class: int32(req.Class), ID: req.ID, A: costJ, B: tb.tokens,
		})
	}
	return false
}

// SetObserver installs the event sink; grants and denials are emitted.
func (tb *PowerTokenBucket) SetObserver(o obs.Observer) { tb.obs = o }

// Clone returns an independent copy of the bucket's credit state for
// snapshot forking. The observer is not carried over.
func (tb *PowerTokenBucket) Clone() *PowerTokenBucket {
	c := *tb
	c.obs = nil
	return &c
}

// Tokens returns current credit in joules.
func (tb *PowerTokenBucket) Tokens() float64 { return tb.tokens }

// Admitted returns the count of admitted requests.
func (tb *PowerTokenBucket) Admitted() uint64 { return tb.admitted }

// Dropped returns the count of refused requests.
func (tb *PowerTokenBucket) Dropped() uint64 { return tb.dropped }

// DropFraction returns dropped/(admitted+dropped), the ">60% of the
// packages" statistic of Figure 16's discussion.
func (tb *PowerTokenBucket) DropFraction() float64 {
	total := tb.admitted + tb.dropped
	if total == 0 {
		return 0
	}
	return float64(tb.dropped) / float64(total)
}
