package netlb

import (
	"math"
	"testing"

	"antidope/internal/power"
	"antidope/internal/server"
	"antidope/internal/workload"
)

func pool(n int) []*server.Server {
	var out []*server.Server
	for i := 0; i < n; i++ {
		out = append(out, server.MustNew(server.Config{
			ID: i, Cores: 4, MaxInflight: 64, Model: power.DefaultModel(),
		}))
	}
	return out
}

func reqFor(class workload.Class) *workload.Request {
	p := workload.Lookup(class)
	return &workload.Request{Class: class, URL: p.URL, Demand: p.MeanDemand, Remaining: p.MeanDemand}
}

func TestNewRequiresServers(t *testing.T) {
	if _, err := New(nil, RoundRobin); err == nil {
		t.Fatal("empty pool accepted")
	}
}

func TestRoundRobinCycles(t *testing.T) {
	servers := pool(3)
	b := MustNew(servers, RoundRobin)
	seen := map[int]int{}
	for i := 0; i < 9; i++ {
		s := b.Route(reqFor(workload.AliNormal))
		seen[s.ID]++
	}
	for id, n := range seen {
		if n != 3 {
			t.Fatalf("server %d routed %d/9", id, n)
		}
	}
}

func TestLeastLoadedPicksIdle(t *testing.T) {
	servers := pool(2)
	servers[0].Advance(0)
	for i := 0; i < 5; i++ {
		servers[0].Admit(0, reqFor(workload.CollaFilt))
	}
	b := MustNew(servers, LeastLoaded)
	s := b.Route(reqFor(workload.AliNormal))
	if s.ID != 1 {
		t.Fatalf("least-loaded picked busy server %d", s.ID)
	}
}

func TestPolicyString(t *testing.T) {
	if RoundRobin.String() != "round-robin" || LeastLoaded.String() != "least-loaded" {
		t.Fatal("policy names")
	}
}

func TestSplitRoutesByURL(t *testing.T) {
	servers := pool(4)
	servers[0].Suspect = true
	b := MustNew(servers, LeastLoaded)
	b.SetSuspectList([]string{workload.Lookup(workload.CollaFilt).URL})
	if !b.SplitActive() {
		t.Fatal("split not active")
	}

	// Suspect-listed URLs land only on suspect servers.
	for i := 0; i < 10; i++ {
		r := reqFor(workload.CollaFilt)
		s := b.Route(r)
		if !s.Suspect {
			t.Fatal("suspect URL routed to innocent server")
		}
		if !r.Suspect {
			t.Fatal("request not stamped suspect")
		}
	}
	// Other URLs land only on innocent servers.
	for i := 0; i < 10; i++ {
		r := reqFor(workload.AliNormal)
		s := b.Route(r)
		if s.Suspect {
			t.Fatal("innocent URL routed to suspect server")
		}
		if r.Suspect {
			t.Fatal("innocent request stamped suspect")
		}
	}
	if b.RoutedSuspect() != 10 || b.RoutedInnocent() != 10 {
		t.Fatalf("routing counters %d/%d", b.RoutedSuspect(), b.RoutedInnocent())
	}
}

func TestSplitInactiveWithoutSuspectServers(t *testing.T) {
	servers := pool(4) // nobody marked suspect
	b := MustNew(servers, RoundRobin)
	b.SetSuspectList([]string{"/recommend"})
	if b.SplitActive() {
		t.Fatal("split active without a suspect pool")
	}
	// Requests spread everywhere.
	seen := map[int]bool{}
	for i := 0; i < 20; i++ {
		seen[b.Route(reqFor(workload.CollaFilt)).ID] = true
	}
	if len(seen) != 4 {
		t.Fatalf("spread hit %d/4 servers", len(seen))
	}
}

func TestSplitDisabledByEmptyList(t *testing.T) {
	servers := pool(2)
	servers[0].Suspect = true
	b := MustNew(servers, RoundRobin)
	b.SetSuspectList([]string{"/recommend"})
	b.SetSuspectList(nil)
	if b.SplitActive() {
		t.Fatal("empty list should disable the split")
	}
}

func TestSuspectListSorted(t *testing.T) {
	b := MustNew(pool(1), RoundRobin)
	b.SetSuspectList([]string{"/z", "/a"})
	got := b.SuspectList()
	if len(got) != 2 || got[0] != "/a" || got[1] != "/z" {
		t.Fatalf("suspect list %v", got)
	}
}

func TestBuildSuspectList(t *testing.T) {
	// At a 50% cutoff the heavy endpoints (Colla-Filt, K-means) are listed
	// and light ones (Text-Cont, AliNormal) are not.
	urls := BuildSuspectList(0.5)
	has := func(u string) bool {
		for _, x := range urls {
			if x == u {
				return true
			}
		}
		return false
	}
	if !has("/recommend") || !has("/classify") {
		t.Fatalf("heavy endpoints missing from %v", urls)
	}
	if has("/text") || has("/shop") {
		t.Fatalf("light endpoints listed in %v", urls)
	}
	if has("/") {
		t.Fatal("network-layer endpoint listed")
	}
	// Zero cutoff lists every application endpoint.
	all := BuildSuspectList(0)
	if len(all) < 4 {
		t.Fatalf("zero-cutoff list %v", all)
	}
}

func TestEnergyCostOrdering(t *testing.T) {
	m := power.DefaultModel()
	km := EnergyCost(workload.KMeans, m)
	tc := EnergyCost(workload.TextCont, m)
	if km <= tc {
		t.Fatalf("k-means cost %g <= text cost %g", km, tc)
	}
	// Sanity: cost is demand × weight × dynamic headroom.
	p := workload.Lookup(workload.KMeans)
	want := p.MeanDemand * p.PowerWeight * m.Dynamic()
	if math.Abs(km-want) > 1e-12 {
		t.Fatalf("cost %g, want %g", km, want)
	}
}

func TestTokenBucketAdmitsWithinRate(t *testing.T) {
	tb := NewPowerTokenBucket(10, 100) // 10 W refill, 100 J burst
	r := reqFor(workload.TextCont)
	if !tb.Admit(0, r, 5) {
		t.Fatal("initial burst refused")
	}
	if tb.Admitted() != 1 {
		t.Fatal("admit counter")
	}
}

func TestTokenBucketExhaustsAndRefills(t *testing.T) {
	tb := NewPowerTokenBucket(10, 20)
	// Drain the burst.
	if !tb.Admit(0, reqFor(workload.TextCont), 20) {
		t.Fatal("burst refused")
	}
	r := reqFor(workload.TextCont)
	if tb.Admit(0, r, 1) {
		t.Fatal("empty bucket admitted")
	}
	if !r.Dropped || r.DropReason != "token-bucket" {
		t.Fatal("refused request not marked")
	}
	// 1 second later 10 J have accrued.
	if !tb.Admit(1, reqFor(workload.TextCont), 9) {
		t.Fatal("refill not credited")
	}
}

func TestTokenBucketBurstCap(t *testing.T) {
	tb := NewPowerTokenBucket(10, 50)
	tb.Admit(0, reqFor(workload.TextCont), 0) // sync lastFill
	// After a very long idle period tokens cap at burst.
	tb.Admit(1e6, reqFor(workload.TextCont), 0)
	if tb.Tokens() > 50 {
		t.Fatalf("tokens %g exceed burst", tb.Tokens())
	}
}

func TestTokenBucketDropFraction(t *testing.T) {
	tb := NewPowerTokenBucket(1, 10)
	admits, drops := 0, 0
	for i := 0; i < 100; i++ {
		if tb.Admit(float64(i)*0.01, reqFor(workload.CollaFilt), 5) {
			admits++
		} else {
			drops++
		}
	}
	if admits == 0 || drops == 0 {
		t.Fatalf("admits %d drops %d", admits, drops)
	}
	want := float64(drops) / 100
	if math.Abs(tb.DropFraction()-want) > 1e-9 {
		t.Fatalf("drop fraction %g, want %g", tb.DropFraction(), want)
	}
}

func TestTokenBucketNegativeCostClamped(t *testing.T) {
	tb := NewPowerTokenBucket(10, 10)
	before := tb.Tokens()
	if !tb.Admit(0, reqFor(workload.TextCont), -5) {
		t.Fatal("negative cost refused")
	}
	if tb.Tokens() > before {
		t.Fatal("negative cost minted tokens")
	}
}

func TestTokenBucketPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad bucket accepted")
		}
	}()
	NewPowerTokenBucket(0, 10)
}

func BenchmarkRouteSplit(b *testing.B) {
	servers := pool(8)
	servers[0].Suspect = true
	servers[1].Suspect = true
	bal := MustNew(servers, LeastLoaded)
	bal.SetSuspectList(BuildSuspectList(0.5))
	r := reqFor(workload.CollaFilt)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = bal.Route(r)
	}
}

func TestProfilerFlagsAbusiveSource(t *testing.T) {
	p := NewSourceProfiler()
	// Word-Count is below the 0.5 offline listing cutoff, but a single
	// source replaying it at 100 req/s is an abusive power demand.
	flagged := false
	for i := 0; i < 500; i++ {
		now := float64(i) * 0.01
		r := reqFor(workload.WordCount)
		r.Source = 7
		r.ArriveAt = now
		if p.Observe(now, r) {
			flagged = true
			break
		}
	}
	if !flagged {
		t.Fatal("abusive source never flagged")
	}
	if !p.Suspect(7) {
		t.Fatal("Suspect() disagrees with Observe()")
	}
	if p.Flagged() == 0 || p.Tracked() == 0 {
		t.Fatal("profiler counters empty")
	}
}

func TestProfilerSparesModerateSource(t *testing.T) {
	p := NewSourceProfiler()
	// A legitimate client: heavy endpoint at 2 req/s.
	for i := 0; i < 200; i++ {
		now := float64(i) * 0.5
		r := reqFor(workload.CollaFilt)
		r.Source = 9
		r.ArriveAt = now
		if p.Observe(now, r) {
			t.Fatalf("moderate client flagged at observation %d", i)
		}
	}
}

func TestProfilerDecaysAfterBurst(t *testing.T) {
	p := NewSourceProfiler()
	var last float64
	for i := 0; i < 400; i++ {
		last = float64(i) * 0.01
		r := reqFor(workload.KMeans)
		r.Source = 3
		r.ArriveAt = last
		p.Observe(last, r)
	}
	if !p.Suspect(3) {
		t.Fatal("burst not flagged")
	}
	// A polite request a minute later: the accumulated score has decayed.
	r := reqFor(workload.TextCont)
	r.Source = 3
	r.ArriveAt = last + 60
	if p.Observe(last+60, r) {
		t.Fatal("source still flagged after 6 tau of silence")
	}
}

func TestProfilerMinObservations(t *testing.T) {
	p := NewSourceProfiler()
	// A huge first burst below MinObservations must not flag.
	for i := 0; i < p.MinObservations-1; i++ {
		r := reqFor(workload.KMeans)
		r.Source = 5
		r.ArriveAt = 0
		if p.Observe(0, r) {
			t.Fatal("flagged before MinObservations")
		}
	}
}

func TestProfilerScoreRate(t *testing.T) {
	p := NewSourceProfiler()
	if p.ScoreRate(42) != 0 {
		t.Fatal("unknown source has score")
	}
	r := reqFor(workload.CollaFilt)
	r.Source = 42
	p.Observe(0, r)
	if p.ScoreRate(42) <= 0 {
		t.Fatal("observed source has zero score rate")
	}
}

func TestBalancerSourceAwareRouting(t *testing.T) {
	servers := pool(4)
	servers[0].Suspect = true
	b := MustNew(servers, LeastLoaded)
	b.SetSuspectList(nil) // no URL list at all
	b.SetProfiler(NewSourceProfiler())
	if !b.SplitActive() {
		t.Fatal("profiler alone should activate the split")
	}
	// Hammer Word-Count from one source until the profiler isolates it.
	isolated := false
	for i := 0; i < 1000; i++ {
		r := reqFor(workload.WordCount)
		r.Source = 77
		r.ArriveAt = float64(i) * 0.005
		s := b.Route(r)
		if s.Suspect {
			isolated = true
			break
		}
	}
	if !isolated {
		t.Fatal("abusive source never isolated by source-aware routing")
	}
	if b.Profiler() == nil {
		t.Fatal("profiler accessor")
	}
}
