// Package netlb models the network load balancer in front of the cluster.
// It provides the two routing behaviours the paper compares:
//
//   - plain spreading (round-robin / least-loaded), the default any data
//     center runs for productivity, which is exactly what lets DOPE traffic
//     reach every node; and
//   - power-driven forwarding (PDF, Section 5.2): a URL-keyed suspect list
//     built by offline power profiling that pins risky requests onto a
//     dedicated pool of suspect servers.
//
// It also implements the power-based token bucket of the Token baseline
// (Table 2), which admits requests against a watt budget and drops the
// excess.
package netlb

import (
	"fmt"
	"sort"

	"antidope/internal/obs"
	"antidope/internal/server"
	"antidope/internal/workload"
)

// Policy selects how requests spread within a pool.
type Policy int

const (
	// RoundRobin cycles through the pool.
	RoundRobin Policy = iota
	// LeastLoaded picks the pool member with the fewest in-flight requests.
	LeastLoaded
)

func (p Policy) String() string {
	if p == RoundRobin {
		return "round-robin"
	}
	return "least-loaded"
}

// Balancer routes requests to servers. Not safe for concurrent use.
type Balancer struct {
	servers []*server.Server
	policy  Policy
	rrNext  int

	// suspectURLs is the PDF suspect list; empty means the split is off.
	suspectURLs map[string]bool
	// profiler, when set, adds online per-source suspicion to the URL list.
	profiler *SourceProfiler

	// reachable, when set, excludes servers the network has partitioned
	// away from the pick pool — the same seam down-routing uses for
	// crashed servers, but for nodes whose physics keep running. nil means
	// every up server is reachable.
	reachable func(id int) bool

	routedSuspect  uint64
	routedInnocent uint64

	obs obs.Observer
}

// New builds a balancer over the given servers.
func New(servers []*server.Server, policy Policy) (*Balancer, error) {
	if len(servers) == 0 {
		return nil, fmt.Errorf("netlb: no servers")
	}
	return &Balancer{servers: servers, policy: policy, suspectURLs: map[string]bool{}}, nil
}

// MustNew is New for known-good configurations.
func MustNew(servers []*server.Server, policy Policy) *Balancer {
	b, err := New(servers, policy)
	if err != nil {
		panic(err)
	}
	return b
}

// SetSuspectList installs the PDF suspect list (URL set). Passing an empty
// list disables the split.
func (b *Balancer) SetSuspectList(urls []string) {
	b.suspectURLs = make(map[string]bool, len(urls))
	for _, u := range urls {
		b.suspectURLs[u] = true
	}
}

// SuspectList returns the installed suspect URLs, sorted.
func (b *Balancer) SuspectList() []string {
	out := make([]string, 0, len(b.suspectURLs))
	for u := range b.suspectURLs {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// SetProfiler installs (or clears, with nil) the online source profiler.
// A profiler installed after SetObserver inherits the balancer's observer.
func (b *Balancer) SetProfiler(p *SourceProfiler) {
	b.profiler = p
	if p != nil && b.obs != nil {
		p.SetObserver(b.obs)
	}
}

// SetObserver installs the event sink on the balancer and its profiler.
func (b *Balancer) SetObserver(o obs.Observer) {
	b.obs = o
	if b.profiler != nil {
		b.profiler.SetObserver(o)
	}
}

// Profiler returns the installed source profiler, if any.
func (b *Balancer) Profiler() *SourceProfiler { return b.profiler }

// SetReachable installs (or clears, with nil) the network reachability
// predicate. Partitioned servers are skipped by every pick exactly like
// crashed ones; when the predicate heals they rejoin the rotation in
// place. The predicate must be deterministic in the simulation clock.
func (b *Balancer) SetReachable(fn func(id int) bool) { b.reachable = fn }

// avail reports whether a server can take traffic: up and, when a
// reachability predicate is installed, not partitioned away.
func (b *Balancer) avail(s *server.Server) bool {
	if !s.Up() {
		return false
	}
	return b.reachable == nil || b.reachable(s.ID)
}

// Clone returns an independent copy bound to the given (already cloned)
// servers, which must parallel the original's pool index-for-index: the
// round-robin cursor, suspect list and profiler state all carry over, so
// the clone routes exactly as the original would have. The observer is not
// carried over.
func (b *Balancer) Clone(servers []*server.Server) *Balancer {
	c := *b
	c.servers = servers
	c.obs = nil
	// The reachability predicate closes over the original run's network
	// runtime; the fork reinstalls its own against its cloned links.
	c.reachable = nil
	c.suspectURLs = make(map[string]bool, len(b.suspectURLs))
	for u, v := range b.suspectURLs {
		c.suspectURLs[u] = v
	}
	if b.profiler != nil {
		c.profiler = b.profiler.Clone()
	}
	return &c
}

// SplitActive reports whether PDF forwarding is in effect: a suspicion
// mechanism (URL list or source profiler) and at least one server marked
// suspect.
func (b *Balancer) SplitActive() bool {
	if len(b.suspectURLs) == 0 && b.profiler == nil {
		return false
	}
	for _, s := range b.servers {
		if s.Suspect {
			return true
		}
	}
	return false
}

// Route picks the destination server for a request. With PDF active, the
// request's URL decides the pool; the request is stamped Suspect when it
// lands in the suspect pool so experiments can audit the split.
//
// Crashed and network-partitioned servers are skipped. When the designated
// sub-pool is entirely down or unreachable, the request spills onto the
// whole cluster (availability beats isolation for the duration of the
// fault); Route returns nil only when every server is down or unreachable.
func (b *Balancer) Route(req *workload.Request) *server.Server {
	pool := b.servers
	split := false
	if b.SplitActive() {
		suspect := b.suspectURLs[req.URL]
		if b.profiler != nil && b.profiler.Observe(req.ArriveAt, req) {
			suspect = true
		}
		sub := poolOf(b.servers, suspect)
		if len(sub) > 0 {
			pool = sub
			split = true
			req.Suspect = suspect
		}
		if suspect {
			b.routedSuspect++
		} else {
			b.routedInnocent++
		}
	} else {
		b.routedInnocent++
	}
	sv := b.pick(pool)
	if sv == nil && split {
		sv = b.pick(b.servers)
	}
	return sv
}

func poolOf(servers []*server.Server, suspect bool) []*server.Server {
	var out []*server.Server
	for _, s := range servers {
		if s.Suspect == suspect {
			out = append(out, s)
		}
	}
	return out
}

// pick selects from the pool among the servers that are up and reachable,
// returning nil when none are. With every server up and no partition it
// reproduces the historical behaviour exactly: first-wins least-loaded
// ties, and an unbroken round-robin sequence.
func (b *Balancer) pick(pool []*server.Server) *server.Server {
	switch b.policy {
	case LeastLoaded:
		var best *server.Server
		for _, s := range pool {
			if !b.avail(s) {
				continue
			}
			if best == nil || s.Inflight() < best.Inflight() {
				best = s
			}
		}
		return best
	default:
		b.rrNext++
		n := len(pool)
		for off := 0; off < n; off++ {
			if s := pool[(b.rrNext+off)%n]; b.avail(s) {
				// Advance the cursor to the server actually used so the
				// rotation resumes from it once crashed nodes recover.
				b.rrNext += off
				return s
			}
		}
		return nil
	}
}

// RoutedSuspect returns how many requests the split sent to suspect nodes.
func (b *Balancer) RoutedSuspect() uint64 { return b.routedSuspect }

// RoutedInnocent returns how many requests went to the innocent pool (or
// through plain spreading).
func (b *Balancer) RoutedInnocent() uint64 { return b.routedInnocent }

// BuildSuspectList performs the offline profiling of Section 5.2: it ranks
// the catalog's application endpoints by per-request power-cost score and
// returns the URLs whose score is at least minFrac of the maximum score.
// Network-layer classes (bare "/" endpoints) are excluded — the firewall,
// not PDF, handles those.
func BuildSuspectList(minFrac float64) []string {
	type entry struct {
		url   string
		score float64
	}
	var entries []entry
	maxScore := 0.0
	for c := workload.Class(0); int(c) < workload.NumClasses; c++ {
		p := workload.Lookup(c)
		if p.URL == "/" {
			continue
		}
		s := p.WattsPerRequestScale()
		entries = append(entries, entry{p.URL, s})
		if s > maxScore {
			maxScore = s
		}
	}
	var out []string
	for _, e := range entries {
		if maxScore > 0 && e.score >= minFrac*maxScore {
			out = append(out, e.url)
		}
	}
	sort.Strings(out)
	return out
}
