// Package thermal models the cooling side of DOPE. The paper defines DOPE
// as "low-rate but high-power requests targeting unconventional layers of
// targeted resources (e.g., energy, power, and cooling)" — this package
// supplies the cooling layer: a first-order RC thermal model per server, a
// room whose inlet temperature rises once the heat load exceeds the CRAC
// capacity, and the emergency thermal throttle real processors apply
// regardless of what the power-management scheme wants.
//
// The thermal time constant (minutes) is what makes cooling attacks
// insidious: the power spike is immediate, the temperature emergency
// arrives later and outlasts the burst.
package thermal

import (
	"fmt"
	"math"
)

// ServerRC is a lumped-parameter (single-node RC) thermal model of one
// server: steady-state temperature is inlet + P·Rth, approached with time
// constant Tau.
type ServerRC struct {
	// RthCPerW is the junction-to-inlet thermal resistance in °C per watt.
	RthCPerW float64
	// TauSec is the thermal time constant Rth·Cth.
	TauSec float64

	tempC float64
	init  bool
}

// Step advances the server temperature by dt seconds at the given power
// draw and inlet temperature, and returns the new temperature. The exact
// exponential update keeps the model stable for any dt.
func (s *ServerRC) Step(dt, powerW, inletC float64) float64 {
	target := inletC + powerW*s.RthCPerW
	if !s.init {
		s.tempC = target
		s.init = true
		return s.tempC
	}
	if s.TauSec <= 0 {
		s.tempC = target
		return s.tempC
	}
	// T += (target - T) * (1 - e^(-dt/tau)); first-order exact step.
	s.tempC += (target - s.tempC) * (1 - expNeg(dt/s.TauSec))
	return s.tempC
}

// TempC returns the current temperature (0 before the first Step).
func (s *ServerRC) TempC() float64 { return s.tempC }

// expNeg computes e^-x with a guard for large x.
func expNeg(x float64) float64 {
	if x > 40 {
		return 0
	}
	return math.Exp(-x)
}

// Room models the shared cooling: while total heat stays under the CRAC
// capacity the inlet holds at the setpoint; excess heat raises the inlet
// linearly (hot-aisle recirculation), with its own (slower) time constant.
type Room struct {
	// CRACCapacityW is the heat the cooling plant removes at setpoint.
	CRACCapacityW float64
	// SetpointC is the cold-aisle inlet temperature when cooling keeps up.
	SetpointC float64
	// RiseCPerW is how much the steady-state inlet rises per watt of
	// uncooled heat.
	RiseCPerW float64
	// TauSec is the room air time constant.
	TauSec float64

	inletC float64
	init   bool
}

// Step advances the room state by dt at the given total heat load and
// returns the inlet temperature.
func (r *Room) Step(dt, heatW float64) float64 {
	target := r.SetpointC
	if over := heatW - r.CRACCapacityW; over > 0 {
		target += over * r.RiseCPerW
	}
	if !r.init {
		r.inletC = target
		r.init = true
		return r.inletC
	}
	if r.TauSec <= 0 {
		r.inletC = target
		return r.inletC
	}
	r.inletC += (target - r.inletC) * (1 - expNeg(dt/r.TauSec))
	return r.inletC
}

// InletC returns the current inlet temperature.
func (r *Room) InletC() float64 { return r.inletC }

// Config bundles the deployment parameters core uses.
type Config struct {
	// Enabled switches the thermal plane on.
	Enabled bool
	// RthCPerW / ServerTauSec parameterize every server's RC model.
	RthCPerW     float64
	ServerTauSec float64
	// CRACCapacityW / SetpointC / RiseCPerW / RoomTauSec parameterize the
	// room. CRACCapacityW of 0 defaults to the cluster's power budget —
	// cooling is provisioned like power.
	CRACCapacityW float64
	SetpointC     float64
	RiseCPerW     float64
	RoomTauSec    float64
	// ThrottleC is the emergency thermal-throttle trigger; HysteresisC
	// below it the hardware releases again.
	ThrottleC   float64
	HysteresisC float64
}

// Defaults fills zero fields with the evaluation's deployment: 0.35 °C/W
// servers (idle ≈ 41 °C, saturated ≈ 60 °C at a 25 °C inlet), 90 s server
// and 180 s room time constants, 0.08 °C/W of recirculation rise, and a
// 62 °C throttle line.
func (c Config) Defaults() Config {
	c.RthCPerW = orDefault(c.RthCPerW, 0.35)
	c.ServerTauSec = orDefault(c.ServerTauSec, 90)
	c.SetpointC = orDefault(c.SetpointC, 25)
	c.RiseCPerW = orDefault(c.RiseCPerW, 0.08)
	c.RoomTauSec = orDefault(c.RoomTauSec, 180)
	c.ThrottleC = orDefault(c.ThrottleC, 62)
	c.HysteresisC = orDefault(c.HysteresisC, 3)
	return c
}

// orDefault substitutes d for an unset field; the exact zero value is the
// "unset" sentinel, never a measured quantity.
func orDefault(v, d float64) float64 {
	if v == 0 { //lint:allow floateq -- exact zero marks an unset config field
		return d
	}
	return v
}

// Validate reports whether the (defaulted) configuration is physical.
func (c Config) Validate() error {
	if !c.Enabled {
		return nil
	}
	if c.RthCPerW <= 0 || c.ServerTauSec < 0 || c.RoomTauSec < 0 {
		return fmt.Errorf("thermal: bad RC parameters")
	}
	if c.RiseCPerW < 0 || c.CRACCapacityW < 0 {
		return fmt.Errorf("thermal: bad room parameters")
	}
	if c.ThrottleC <= c.SetpointC {
		return fmt.Errorf("thermal: throttle line %g at or below the setpoint %g",
			c.ThrottleC, c.SetpointC)
	}
	if c.HysteresisC <= 0 {
		return fmt.Errorf("thermal: non-positive hysteresis")
	}
	return nil
}

// Plant is the assembled thermal state for a cluster.
type Plant struct {
	cfg     Config
	room    Room
	servers []ServerRC
	hot     []bool // per-server: currently thermally throttled

	throttleEvents int
}

// NewPlant builds the plant for n servers; cfg must already be defaulted.
func NewPlant(cfg Config, n int) (*Plant, error) {
	cfg = cfg.Defaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Plant{
		cfg: cfg,
		room: Room{
			CRACCapacityW: cfg.CRACCapacityW,
			SetpointC:     cfg.SetpointC,
			RiseCPerW:     cfg.RiseCPerW,
			TauSec:        cfg.RoomTauSec,
		},
		servers: make([]ServerRC, n),
		hot:     make([]bool, n),
	}
	for i := range p.servers {
		p.servers[i] = ServerRC{RthCPerW: cfg.RthCPerW, TauSec: cfg.ServerTauSec}
	}
	return p, nil
}

// Clone returns an independent deep copy of the thermal state — room and
// server temperatures, throttle latches, event count — for snapshot forking.
func (p *Plant) Clone() *Plant {
	c := *p
	c.servers = append([]ServerRC(nil), p.servers...)
	c.hot = append([]bool(nil), p.hot...)
	return &c
}

// Step advances the plant by dt given per-server power draws. It returns,
// per server, whether the emergency thermal throttle is engaged (with
// hysteresis), after updating the room and server temperatures.
func (p *Plant) Step(dt float64, powerW []float64) []bool {
	total := 0.0
	for _, w := range powerW {
		total += w
	}
	inlet := p.room.Step(dt, total)
	for i := range p.servers {
		w := 0.0
		if i < len(powerW) {
			w = powerW[i]
		}
		t := p.servers[i].Step(dt, w, inlet)
		if p.hot[i] {
			if t < p.cfg.ThrottleC-p.cfg.HysteresisC {
				p.hot[i] = false
			}
		} else if t >= p.cfg.ThrottleC {
			p.hot[i] = true
			p.throttleEvents++
		}
	}
	return p.hot
}

// MaxTempC returns the hottest server temperature.
func (p *Plant) MaxTempC() float64 {
	max := 0.0
	for i := range p.servers {
		if t := p.servers[i].TempC(); t > max {
			max = t
		}
	}
	return max
}

// InletC returns the current room inlet temperature.
func (p *Plant) InletC() float64 { return p.room.InletC() }

// ThrottleEvents returns how many times a server crossed into thermal
// throttling.
func (p *Plant) ThrottleEvents() int { return p.throttleEvents }

// AnyHot reports whether any server is currently throttled.
func (p *Plant) AnyHot() bool {
	for _, h := range p.hot {
		if h {
			return true
		}
	}
	return false
}
