package thermal_test

import (
	"fmt"

	"antidope/internal/thermal"
)

// Example walks a plant through a heat emergency: sustained draw above the
// CRAC capacity slowly raises the inlet until the hardware throttle fires.
func Example() {
	cfg := thermal.Config{Enabled: true, CRACCapacityW: 150}.Defaults()
	plant, err := thermal.NewPlant(cfg, 2)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// Settle at idle first (the plant initializes at the first step's
	// operating point), then apply the sustained overload.
	for sec := 0; sec < 60; sec++ {
		plant.Step(1, []float64{45, 45})
	}
	hotAt := -1
	for sec := 0; sec < 1200; sec++ {
		hot := plant.Step(1, []float64{100, 100}) // 50 W over capacity
		if hotAt < 0 && (hot[0] || hot[1]) {
			hotAt = sec
		}
	}
	fmt.Printf("throttle engaged: %v (minutes after onset: %v)\n",
		plant.ThrottleEvents() > 0, hotAt > 60)
	fmt.Printf("final state: %.0f°C inlet, %.0f°C hottest server\n",
		plant.InletC(), plant.MaxTempC())
	// Output:
	// throttle engaged: true (minutes after onset: true)
	// final state: 29°C inlet, 64°C hottest server
}
