package thermal

import (
	"math"
	"testing"
	"testing/quick"
)

func TestServerSteadyState(t *testing.T) {
	s := ServerRC{RthCPerW: 0.35, TauSec: 90}
	// First step initializes directly at the target.
	got := s.Step(1, 100, 25)
	want := 25 + 100*0.35
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("initial temp %g, want %g", got, want)
	}
	// Long settling at a new power lands at the new steady state.
	for i := 0; i < 2000; i++ {
		s.Step(1, 50, 25)
	}
	want = 25 + 50*0.35
	if math.Abs(s.TempC()-want) > 0.01 {
		t.Fatalf("settled temp %g, want %g", s.TempC(), want)
	}
}

func TestServerTimeConstant(t *testing.T) {
	s := ServerRC{RthCPerW: 0.35, TauSec: 90}
	s.Step(1, 45, 25) // init near idle (40.75)
	start := s.TempC()
	// Step the power to 100 W; after exactly one tau the gap closes 63.2%.
	target := 25 + 100*0.35
	for i := 0; i < 90; i++ {
		s.Step(1, 100, 25)
	}
	wantGapFrac := math.Exp(-1)
	gotGapFrac := (target - s.TempC()) / (target - start)
	if math.Abs(gotGapFrac-wantGapFrac) > 0.02 {
		t.Fatalf("after one tau the remaining gap is %.3f, want %.3f", gotGapFrac, wantGapFrac)
	}
}

func TestServerStepSizeInvariance(t *testing.T) {
	// The exact exponential update must give the same trajectory for one
	// 60 s step as for sixty 1 s steps.
	a := ServerRC{RthCPerW: 0.35, TauSec: 90}
	b := ServerRC{RthCPerW: 0.35, TauSec: 90}
	a.Step(1, 45, 25)
	b.Step(1, 45, 25)
	a.Step(60, 100, 25)
	for i := 0; i < 60; i++ {
		b.Step(1, 100, 25)
	}
	if math.Abs(a.TempC()-b.TempC()) > 1e-9 {
		t.Fatalf("step-size dependence: %g vs %g", a.TempC(), b.TempC())
	}
}

func TestRoomHoldsSetpointUnderCapacity(t *testing.T) {
	r := Room{CRACCapacityW: 400, SetpointC: 25, RiseCPerW: 0.08, TauSec: 180}
	for i := 0; i < 1000; i++ {
		r.Step(1, 350)
	}
	if math.Abs(r.InletC()-25) > 1e-6 {
		t.Fatalf("inlet %g under capacity, want setpoint", r.InletC())
	}
}

func TestRoomHeatsWhenOverCapacity(t *testing.T) {
	r := Room{CRACCapacityW: 340, SetpointC: 25, RiseCPerW: 0.08, TauSec: 180}
	for i := 0; i < 5000; i++ {
		r.Step(1, 390) // 50 W over
	}
	want := 25 + 50*0.08
	if math.Abs(r.InletC()-want) > 0.05 {
		t.Fatalf("inlet %g, want %g", r.InletC(), want)
	}
}

func TestConfigDefaultsAndValidate(t *testing.T) {
	cfg := Config{Enabled: true}.Defaults()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.RthCPerW == 0 || cfg.ThrottleC == 0 {
		t.Fatal("defaults not filled")
	}
	bad := cfg
	bad.ThrottleC = bad.SetpointC
	if bad.Validate() == nil {
		t.Fatal("throttle at setpoint validated")
	}
	bad = cfg
	bad.RthCPerW = -1
	if bad.Validate() == nil {
		t.Fatal("negative Rth validated")
	}
	if (Config{}).Validate() != nil {
		t.Fatal("disabled config rejected")
	}
}

func TestPlantThrottleWithHysteresis(t *testing.T) {
	cfg := Config{Enabled: true, CRACCapacityW: 150}.Defaults()
	plant, err := NewPlant(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Sustained full power on both servers with an undersized CRAC: 50 W
	// over capacity → inlet 29 °C → server temps 64 °C > throttle 62.
	var hot []bool
	for i := 0; i < 2000; i++ {
		hot = plant.Step(1, []float64{100, 100})
	}
	if !hot[0] || !hot[1] {
		t.Fatalf("servers not throttled at %.1f°C (inlet %.1f)", plant.MaxTempC(), plant.InletC())
	}
	if plant.ThrottleEvents() != 2 {
		t.Fatalf("throttle events %d, want 2 (one per server, latched)", plant.ThrottleEvents())
	}
	// Cool down: power drops, temperature falls below the hysteresis line,
	// throttle releases.
	for i := 0; i < 4000; i++ {
		hot = plant.Step(1, []float64{45, 45})
	}
	if hot[0] || hot[1] {
		t.Fatalf("throttle stuck at %.1f°C", plant.MaxTempC())
	}
	if plant.AnyHot() {
		t.Fatal("AnyHot disagrees")
	}
}

func TestPlantNormalLoadNeverThrottles(t *testing.T) {
	// Cooling sized at the power budget, load at a healthy 75%: no event.
	cfg := Config{Enabled: true, CRACCapacityW: 340}.Defaults()
	plant, _ := NewPlant(cfg, 4)
	for i := 0; i < 4000; i++ {
		plant.Step(1, []float64{75, 75, 75, 75})
	}
	if plant.ThrottleEvents() != 0 {
		t.Fatalf("throttled %d times under normal load (max %.1f°C)",
			plant.ThrottleEvents(), plant.MaxTempC())
	}
}

func TestPlantDOPELoadThrottles(t *testing.T) {
	// The cooling attack: sustained ~97 W/server (the DOPE operating point)
	// against budget-sized cooling crosses the throttle line.
	cfg := Config{Enabled: true, CRACCapacityW: 340}.Defaults()
	plant, _ := NewPlant(cfg, 4)
	for i := 0; i < 3000; i++ {
		plant.Step(1, []float64{97, 97, 97, 97})
	}
	if plant.ThrottleEvents() == 0 {
		t.Fatalf("DOPE-level heat never throttled (max %.1f°C, inlet %.1f°C)",
			plant.MaxTempC(), plant.InletC())
	}
}

func TestPlantUnevenLoadThrottlesHotServerOnly(t *testing.T) {
	// Isolation's thermal dividend: one saturated server among idles stays
	// below the line when the room keeps up.
	cfg := Config{Enabled: true, CRACCapacityW: 340}.Defaults()
	plant, _ := NewPlant(cfg, 4)
	var hot []bool
	for i := 0; i < 3000; i++ {
		hot = plant.Step(1, []float64{100, 45, 45, 45})
	}
	// Total 235 W under capacity: inlet at setpoint, hottest server 60 °C.
	for i, h := range hot {
		if h {
			t.Fatalf("server %d throttled (max %.1f°C)", i, plant.MaxTempC())
		}
	}
}

// Property: temperatures are bounded by the extremes of inlet+P·Rth over
// the trajectory, for any step pattern.
func TestQuickTemperatureBounded(t *testing.T) {
	f := func(powers []uint8) bool {
		s := ServerRC{RthCPerW: 0.4, TauSec: 60}
		minT, maxT := math.Inf(1), math.Inf(-1)
		for _, p := range powers {
			w := float64(p % 120)
			target := 25 + w*0.4
			if target < minT {
				minT = target
			}
			if target > maxT {
				maxT = target
			}
			got := s.Step(5, w, 25)
			if got < minT-1e-9 || got > maxT+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
