// Package rng provides deterministic, splittable pseudo-random streams for
// reproducible simulation. Every stochastic component of the simulator owns
// its own Stream, derived from a root seed by Split, so that adding or
// removing one component never perturbs the random sequence seen by another.
//
// The generator is xoshiro256** seeded through splitmix64, following the
// recommendation of its authors. It is not cryptographically secure; it is
// a simulation PRNG.
package rng

import "math"

// splitmix64 advances the state and returns the next 64-bit output. It is
// used both to seed xoshiro256** and to derive child stream seeds.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d4a2fcf39c92e9
	return z ^ (z >> 31)
}

// Stream is a deterministic random number stream. The zero value is not
// usable; construct streams with New or Split.
type Stream struct {
	s [4]uint64
	// haveGauss caches the second output of the Box-Muller transform.
	haveGauss bool
	gauss     float64
}

// New returns a stream seeded from seed. Two streams built from the same
// seed produce identical sequences on every platform.
func New(seed uint64) *Stream {
	st := &Stream{}
	sm := seed
	for i := range st.s {
		st.s[i] = splitmix64(&sm)
	}
	// xoshiro must not be seeded with all zeros; splitmix64 cannot produce
	// four consecutive zeros, so no further check is required.
	return st
}

// Clone returns an independent stream positioned exactly where this one is:
// both produce the identical output sequence from here on, including the
// cached second Box-Muller output. Snapshot forking relies on this — a
// forked simulation replays the same draws its parent would have made.
func (r *Stream) Clone() *Stream {
	c := *r
	return &c
}

// Split derives an independent child stream from the parent and a label.
// The parent's own sequence is unaffected: derivation hashes the parent's
// seed material rather than consuming outputs.
func (r *Stream) Split(label string) *Stream {
	h := r.s[0] ^ 0x632be59bd9b4e019
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 0x100000001b3
	}
	h ^= r.s[1]
	return New(h)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Stream) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform sample in [0, 1).
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform sample in [0, n). It panics if n <= 0.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// ExpFloat64 returns an exponential sample with mean 1.
func (r *Stream) ExpFloat64() float64 {
	u := r.Float64()
	for u == 0 { //lint:allow floateq -- exact sentinel: only u==0 makes log diverge
		u = r.Float64()
	}
	return -math.Log(u)
}

// Exp returns an exponential sample with the given mean.
func (r *Stream) Exp(mean float64) float64 {
	return mean * r.ExpFloat64()
}

// NormFloat64 returns a standard normal sample (Box-Muller).
func (r *Stream) NormFloat64() float64 {
	if r.haveGauss {
		r.haveGauss = false
		return r.gauss
	}
	var u, v float64
	for {
		u = r.Float64()
		if u > 0 {
			break
		}
	}
	v = r.Float64()
	mag := math.Sqrt(-2 * math.Log(u))
	r.gauss = mag * math.Sin(2*math.Pi*v)
	r.haveGauss = true
	return mag * math.Cos(2*math.Pi*v)
}

// LogNormal returns a log-normal sample parameterized by the mean and
// coefficient of variation of the resulting distribution (not of the
// underlying normal). CV <= 0 degenerates to the constant mean.
func (r *Stream) LogNormal(mean, cv float64) float64 {
	if mean <= 0 {
		return 0
	}
	if cv <= 0 {
		return mean
	}
	sigma2 := math.Log(1 + cv*cv)
	mu := math.Log(mean) - sigma2/2
	return math.Exp(mu + math.Sqrt(sigma2)*r.NormFloat64())
}

// Poisson returns a Poisson sample with the given mean. For large means it
// uses a normal approximation, which is ample for traffic synthesis.
func (r *Stream) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 60 {
		n := int(mean + math.Sqrt(mean)*r.NormFloat64() + 0.5)
		if n < 0 {
			n = 0
		}
		return n
	}
	// Knuth's method.
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Bool returns true with probability p.
func (r *Stream) Bool(p float64) bool { return r.Float64() < p }

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (r *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Pareto returns a bounded Pareto sample with shape alpha on [min, max].
// Heavy-tailed per-container utilization in the synthetic trace uses this.
func (r *Stream) Pareto(alpha, min, max float64) float64 {
	if min >= max || alpha <= 0 {
		return min
	}
	u := r.Float64()
	la := math.Pow(min, alpha)
	ha := math.Pow(max, alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
}
