package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds matched %d/100 outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split("child")
	// Drawing from the child must not perturb the parent.
	ref := New(7)
	_ = child.Uint64()
	for i := 0; i < 100; i++ {
		if parent.Uint64() != ref.Uint64() {
			t.Fatalf("split perturbed parent stream at %d", i)
		}
	}
}

func TestSplitLabelsDistinct(t *testing.T) {
	parent := New(7)
	a := parent.Split("a")
	b := parent.Split("b")
	if a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64() {
		t.Fatal("distinct labels produced identical child streams")
	}
}

func TestSplitStable(t *testing.T) {
	a := New(9).Split("x").Uint64()
	b := New(9).Split("x").Uint64()
	if a != b {
		t.Fatal("same seed+label must give same child stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %.4f, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(5)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) hit only %d values in 1000 draws", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestExpMean(t *testing.T) {
	r := New(13)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Exp(2.5)
	}
	mean := sum / n
	if math.Abs(mean-2.5) > 0.05 {
		t.Fatalf("exponential mean %.4f, want ~2.5", mean)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(17)
	var sum, sum2 float64
	const n = 200000
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sum2 += x * x
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %.4f, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance %.4f, want ~1", variance)
	}
}

func TestLogNormalMoments(t *testing.T) {
	r := New(19)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.LogNormal(10, 0.5)
	}
	mean := sum / n
	if math.Abs(mean-10)/10 > 0.03 {
		t.Fatalf("lognormal mean %.3f, want ~10", mean)
	}
}

func TestLogNormalDegenerate(t *testing.T) {
	r := New(1)
	if got := r.LogNormal(5, 0); got != 5 {
		t.Fatalf("LogNormal(5, 0) = %g, want 5", got)
	}
	if got := r.LogNormal(0, 1); got != 0 {
		t.Fatalf("LogNormal(0, 1) = %g, want 0", got)
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(23)
	for _, mean := range []float64{0.5, 3, 20, 100, 500} {
		sum := 0.0
		const n = 20000
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(mean))
		}
		got := sum / n
		if math.Abs(got-mean)/math.Max(mean, 1) > 0.05 {
			t.Fatalf("Poisson(%g) mean %.3f", mean, got)
		}
	}
}

func TestPoissonZero(t *testing.T) {
	r := New(1)
	if got := r.Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d", got)
	}
	if got := r.Poisson(-5); got != 0 {
		t.Fatalf("Poisson(-5) = %d", got)
	}
}

func TestParetoBounds(t *testing.T) {
	r := New(29)
	for i := 0; i < 10000; i++ {
		v := r.Pareto(1.5, 1, 100)
		if v < 1-1e-9 || v > 100+1e-9 {
			t.Fatalf("Pareto sample %.4f out of [1,100]", v)
		}
	}
}

func TestShufflePermutes(t *testing.T) {
	r := New(31)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make(map[int]bool)
	for _, x := range xs {
		seen[x] = true
	}
	if len(seen) != 10 {
		t.Fatal("shuffle lost elements")
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(37)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate %.4f", frac)
	}
}

// Property: Float64 stays in [0,1) for any seed.
func TestQuickFloat64InRange(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 64; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: splitting with the same label twice yields identical streams.
func TestQuickSplitDeterministic(t *testing.T) {
	f := func(seed uint64, label string) bool {
		a := New(seed).Split(label)
		b := New(seed).Split(label)
		return a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkExp(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Exp(1)
	}
}
