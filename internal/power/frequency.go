// Package power models the server power plane of the paper's testbed: an
// ACPI-style discrete frequency ladder (1.2–2.4 GHz in 0.1 GHz steps), an
// analytic per-request-type power model calibrated to the 100 W nameplate
// leaf node of Section 3, and a capping interface mirroring RAPL-style
// per-server frequency actuation.
package power

import (
	"fmt"
	"math"
)

// GHz is a CPU operating frequency in gigahertz.
type GHz float64

// Watts is electrical power.
type Watts = float64

// Joules is energy.
type Joules = float64

// Ladder is a discrete frequency range with uniform steps, the actuation
// space of every DVFS decision in the simulator.
type Ladder struct {
	Min, Max, Step GHz
}

// DefaultLadder matches the paper's testbed: 1.2–2.4 GHz at 0.1 GHz steps.
func DefaultLadder() Ladder { return Ladder{Min: 1.2, Max: 2.4, Step: 0.1} }

// Validate reports whether the ladder is well formed.
func (l Ladder) Validate() error {
	if l.Step <= 0 {
		return fmt.Errorf("power: ladder step %v must be positive", l.Step)
	}
	if l.Min <= 0 || l.Max < l.Min {
		return fmt.Errorf("power: ladder range [%v,%v] invalid", l.Min, l.Max)
	}
	return nil
}

// Levels returns the number of discrete frequencies on the ladder.
func (l Ladder) Levels() int {
	return int(math.Round(float64((l.Max-l.Min)/l.Step))) + 1
}

// Level returns the i-th frequency, clamped to the ladder range.
func (l Ladder) Level(i int) GHz {
	if i < 0 {
		i = 0
	}
	if max := l.Levels() - 1; i > max {
		i = max
	}
	return l.Min + GHz(i)*l.Step
}

// Index returns the ladder index of the closest level to f.
func (l Ladder) Index(f GHz) int {
	i := int(math.Round(float64((f - l.Min) / l.Step)))
	if i < 0 {
		i = 0
	}
	if max := l.Levels() - 1; i > max {
		i = max
	}
	return i
}

// Clamp snaps f onto the nearest ladder level.
func (l Ladder) Clamp(f GHz) GHz { return l.Level(l.Index(f)) }

// StepDown returns f lowered by n ladder steps (floored at Min).
func (l Ladder) StepDown(f GHz, n int) GHz { return l.Level(l.Index(f) - n) }

// StepUp returns f raised by n ladder steps (capped at Max).
func (l Ladder) StepUp(f GHz, n int) GHz { return l.Level(l.Index(f) + n) }

// Rel returns f as a fraction of the ladder maximum, the normalized
// frequency used by the power and performance models.
func (l Ladder) Rel(f GHz) float64 { return float64(f / l.Max) }

// VFReduction returns the fractional V/F reduction from max: 0 at Max,
// approaching (Max-Min)/Max at the ladder floor. This is the y-axis of
// figure 6.
func (l Ladder) VFReduction(f GHz) float64 {
	r := float64((l.Max - l.Clamp(f)) / l.Max)
	if r < 0 {
		// Clamp accumulates one ulp of error at the top of the ladder
		// (1.2 + 12*0.1 != 2.4 in binary); a reduction can never be negative.
		r = 0
	}
	return r
}
