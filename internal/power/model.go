package power

import "fmt"

// Component is one request type's contribution to a server's load at an
// instant: the utilization share it occupies and its power character.
type Component struct {
	// Util is the fraction of server compute capacity occupied, in [0,1].
	Util float64
	// Weight scales the dynamic power this type draws at full frequency
	// relative to the most power-hungry type (Colla-Filt = 1.0).
	Weight float64
	// Alpha is the frequency exponent of the dynamic power: compute-bound
	// code tracks f^~2.4 (voltage scales with frequency), memory-bound code
	// keeps DRAM and uncore busy regardless of core frequency, so its
	// exponent is low — the reason K-means defeats shallow DVFS in Fig. 6-b.
	Alpha float64
}

// Model converts a server's operating point (frequency + per-type load mix)
// into watts. It is calibrated so an idle server draws IdleFrac·Nameplate at
// full frequency and a saturated run of the heaviest type reaches Nameplate.
type Model struct {
	// Nameplate is the server's rated peak draw (the paper's node: 100 W).
	Nameplate Watts
	// IdleFrac is the fraction of nameplate drawn idle at f_max. Typical
	// servers idle at 40-50% of peak; the paper's availability math assumes
	// a non-trivial idle floor.
	IdleFrac float64
	// IdleFreqSlope is how much of the idle power scales with frequency
	// (static leakage vs. clock tree). 0 = flat idle, 1 = fully scaling.
	IdleFreqSlope float64
	// Ladder is the frequency range the model is calibrated over.
	Ladder Ladder
}

// DefaultModel returns the calibration used throughout the reproduction:
// 100 W nameplate, 45 % idle floor, 40 % of idle power frequency-sensitive.
func DefaultModel() Model {
	return Model{Nameplate: 100, IdleFrac: 0.45, IdleFreqSlope: 0.4, Ladder: DefaultLadder()}
}

// Validate reports whether the model parameters are physically sensible.
func (m Model) Validate() error {
	if m.Nameplate <= 0 {
		return fmt.Errorf("power: nameplate %v must be positive", m.Nameplate)
	}
	if m.IdleFrac < 0 || m.IdleFrac >= 1 {
		return fmt.Errorf("power: idle fraction %v out of [0,1)", m.IdleFrac)
	}
	if m.IdleFreqSlope < 0 || m.IdleFreqSlope > 1 {
		return fmt.Errorf("power: idle frequency slope %v out of [0,1]", m.IdleFreqSlope)
	}
	return m.Ladder.Validate()
}

// Idle returns the power an empty server draws at frequency f.
func (m Model) Idle(f GHz) Watts {
	rel := m.Ladder.Rel(m.Ladder.Clamp(f))
	idle := m.IdleFrac * m.Nameplate
	return idle * ((1 - m.IdleFreqSlope) + m.IdleFreqSlope*rel)
}

// Dynamic returns the dynamic power budget: the headroom between idle at
// f_max and nameplate, consumed proportionally by load components.
func (m Model) Dynamic() Watts { return m.Nameplate * (1 - m.IdleFrac) }

// Power returns total server draw for the given frequency and load mix.
// Component utilizations may sum to at most 1; the caller (the server's
// processor-sharing queue) guarantees that.
func (m Model) Power(f GHz, mix []Component) Watts {
	f = m.Ladder.Clamp(f)
	rel := m.Ladder.Rel(f)
	p := m.Idle(f)
	dyn := m.Dynamic()
	for _, c := range mix {
		if c.Util <= 0 {
			continue
		}
		u := c.Util
		if u > 1 {
			u = 1
		}
		p += u * c.Weight * dyn * pow(rel, c.Alpha)
	}
	if p > m.Nameplate {
		// The mix can momentarily overshoot when several high-weight types
		// saturate together; physical servers clip at their PSU rating.
		p = m.Nameplate
	}
	return p
}

// pow is a positive-base power function; math.Pow is correct but this keeps
// the hot path free of special-case branching for the common exponents.
func pow(base, exp float64) float64 {
	switch exp {
	case 0:
		return 1
	case 1:
		return base
	case 2:
		return base * base
	case 3:
		return base * base * base
	}
	return powGeneric(base, exp)
}
