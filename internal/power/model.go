package power

import "fmt"

// Component is one request type's contribution to a server's load at an
// instant: the utilization share it occupies and its power character.
type Component struct {
	// Util is the fraction of server compute capacity occupied, in [0,1].
	Util float64
	// Weight scales the dynamic power this type draws at full frequency
	// relative to the most power-hungry type (Colla-Filt = 1.0).
	Weight float64
	// Alpha is the frequency exponent of the dynamic power: compute-bound
	// code tracks f^~2.4 (voltage scales with frequency), memory-bound code
	// keeps DRAM and uncore busy regardless of core frequency, so its
	// exponent is low — the reason K-means defeats shallow DVFS in Fig. 6-b.
	Alpha float64
}

// Model converts a server's operating point (frequency + per-type load mix)
// into watts. It is calibrated so an idle server draws IdleFrac·Nameplate at
// full frequency and a saturated run of the heaviest type reaches Nameplate.
type Model struct {
	// Nameplate is the server's rated peak draw (the paper's node: 100 W).
	Nameplate Watts
	// IdleFrac is the fraction of nameplate drawn idle at f_max. Typical
	// servers idle at 40-50% of peak; the paper's availability math assumes
	// a non-trivial idle floor.
	IdleFrac float64
	// IdleFreqSlope is how much of the idle power scales with frequency
	// (static leakage vs. clock tree). 0 = flat idle, 1 = fully scaling.
	IdleFreqSlope float64
	// Ladder is the frequency range the model is calibrated over.
	Ladder Ladder
}

// DefaultModel returns the calibration used throughout the reproduction:
// 100 W nameplate, 45 % idle floor, 40 % of idle power frequency-sensitive.
func DefaultModel() Model {
	return Model{Nameplate: 100, IdleFrac: 0.45, IdleFreqSlope: 0.4, Ladder: DefaultLadder()}
}

// Validate reports whether the model parameters are physically sensible.
func (m Model) Validate() error {
	if m.Nameplate <= 0 {
		return fmt.Errorf("power: nameplate %v must be positive", m.Nameplate)
	}
	if m.IdleFrac < 0 || m.IdleFrac >= 1 {
		return fmt.Errorf("power: idle fraction %v out of [0,1)", m.IdleFrac)
	}
	if m.IdleFreqSlope < 0 || m.IdleFreqSlope > 1 {
		return fmt.Errorf("power: idle frequency slope %v out of [0,1]", m.IdleFreqSlope)
	}
	return m.Ladder.Validate()
}

// Idle returns the power an empty server draws at frequency f.
func (m Model) Idle(f GHz) Watts {
	rel := m.Ladder.Rel(m.Ladder.Clamp(f))
	idle := m.IdleFrac * m.Nameplate
	return idle * ((1 - m.IdleFreqSlope) + m.IdleFreqSlope*rel)
}

// Dynamic returns the dynamic power budget: the headroom between idle at
// f_max and nameplate, consumed proportionally by load components.
func (m Model) Dynamic() Watts { return m.Nameplate * (1 - m.IdleFrac) }

// Power returns total server draw for the given frequency and load mix.
// Component utilizations may sum to at most 1; the caller (the server's
// processor-sharing queue) guarantees that.
func (m Model) Power(f GHz, mix []Component) Watts {
	f = m.Ladder.Clamp(f)
	rel := m.Ladder.Rel(f)
	p := m.Idle(f)
	dyn := m.Dynamic()
	for _, c := range mix {
		if c.Util <= 0 {
			continue
		}
		u := c.Util
		if u > 1 {
			u = 1
		}
		p += u * c.Weight * dyn * pow(rel, c.Alpha)
	}
	if p > m.Nameplate {
		// The mix can momentarily overshoot when several high-weight types
		// saturate together; physical servers clip at their PSU rating.
		p = m.Nameplate
	}
	return p
}

// pow is a positive-base power function; math.Pow is correct but this keeps
// the hot path free of special-case branching for the common exponents.
func pow(base, exp float64) float64 {
	switch exp {
	case 0:
		return 1
	case 1:
		return base
	case 2:
		return base * base
	case 3:
		return base * base * base
	}
	return powGeneric(base, exp)
}

// IndexedComponent is one load component whose frequency exponent is given
// as an index into a Table's exponent set rather than a raw float — the
// memoized twin of Component for the per-event hot path.
type IndexedComponent struct {
	// Util is the fraction of server compute capacity occupied, in [0,1].
	Util float64
	// Weight scales the dynamic power (see Component.Weight).
	Weight float64
	// Exp indexes the exponent list the Table was built with.
	Exp int
}

// Table memoizes the frequency-dependent terms of a Model over its discrete
// ladder: the idle draw at every level and pow(rel, e) for every level and
// every exponent in a fixed set. Model.Power evaluates math.Pow per mix
// component per call; Table.Power replaces that with two table lookups,
// bit-identically — every cached value is produced by the exact expression
// the analytic path would evaluate.
type Table struct {
	model Model
	dyn   Watts
	// idle[i] is Model.Idle at ladder level i; powRel[i][j] is
	// pow(Rel(Level(i)), exps[j]).
	idle   []Watts
	powRel [][]float64
}

// NewTable precomputes a Table for the given exponent set. The exponent
// order defines IndexedComponent.Exp; callers typically pass one exponent
// per workload class, indexed by class.
func NewTable(m Model, exps []float64) *Table {
	levels := m.Ladder.Levels()
	t := &Table{
		model:  m,
		dyn:    m.Dynamic(),
		idle:   make([]Watts, levels),
		powRel: make([][]float64, levels),
	}
	for i := 0; i < levels; i++ {
		f := m.Ladder.Level(i)
		rel := m.Ladder.Rel(f)
		t.idle[i] = m.Idle(f)
		row := make([]float64, len(exps))
		for j, e := range exps {
			row[j] = pow(rel, e)
		}
		t.powRel[i] = row
	}
	return t
}

// Model returns the model the table was built from.
func (t *Table) Model() Model { return t.model }

// Power is the memoized equivalent of Model.Power: it returns total server
// draw for the given frequency and load mix, with every frequency-dependent
// term looked up instead of recomputed. The result is bitwise identical to
// the analytic path because Model.Power only depends on f through
// Clamp(f) = Level(Index(f)), which is exactly how the table is indexed.
func (t *Table) Power(f GHz, mix []IndexedComponent) Watts {
	idx := t.model.Ladder.Index(f)
	p := t.idle[idx]
	row := t.powRel[idx]
	for _, c := range mix {
		if c.Util <= 0 {
			continue
		}
		u := c.Util
		if u > 1 {
			u = 1
		}
		p += u * c.Weight * t.dyn * row[c.Exp]
	}
	if p > t.model.Nameplate {
		p = t.model.Nameplate
	}
	return p
}
