package power

import "testing"

// benchMix is a representative four-class load mix with the generic (non
// fast-path) frequency exponents of the workload catalog.
var benchMix = []Component{
	{Util: 0.30, Weight: 1.00, Alpha: 2.4},
	{Util: 0.25, Weight: 0.95, Alpha: 1.1},
	{Util: 0.20, Weight: 0.80, Alpha: 1.6},
	{Util: 0.15, Weight: 0.55, Alpha: 2.0},
}

// BenchmarkModelPowerLadder measures one analytic power evaluation across
// the ladder — the planning primitive the governors call in their inner
// loops (BenchmarkModelPower above pins a single level).
func BenchmarkModelPowerLadder(b *testing.B) {
	m := DefaultModel()
	levels := m.Ladder.Levels()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Power(m.Ladder.Level(i%levels), benchMix)
	}
}

// benchIndexedMix is benchMix expressed against the exponent set
// {2.4, 1.1, 1.6, 2.0}, for the memoized path.
var benchExps = []float64{2.4, 1.1, 1.6, 2.0}

var benchIndexedMix = []IndexedComponent{
	{Util: 0.30, Weight: 1.00, Exp: 0},
	{Util: 0.25, Weight: 0.95, Exp: 1},
	{Util: 0.20, Weight: 0.80, Exp: 2},
	{Util: 0.15, Weight: 0.55, Exp: 3},
}

// BenchmarkTablePowerLadder is the memoized twin of
// BenchmarkModelPowerLadder: the same sweep through Table.Power.
func BenchmarkTablePowerLadder(b *testing.B) {
	m := DefaultModel()
	t := NewTable(m, benchExps)
	levels := m.Ladder.Levels()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = t.Power(m.Ladder.Level(i%levels), benchIndexedMix)
	}
}
