package power

import (
	"math"
	"testing"
)

// TestTableMatchesModelBitwise is the determinism contract of the memoized
// power path: for every ladder level, off-grid and out-of-range frequency,
// and a spread of mixes (including clamped utilizations), Table.Power must
// return the exact bits Model.Power returns.
func TestTableMatchesModelBitwise(t *testing.T) {
	m := DefaultModel()
	tab := NewTable(m, benchExps)

	mixes := [][]Component{
		nil,
		benchMix,
		{{Util: -0.5, Weight: 1, Alpha: 2.4}}, // skipped: non-positive util
		{{Util: 1.7, Weight: 1, Alpha: 2.4}},  // clamped to 1
		{{Util: 1, Weight: 1, Alpha: 2.4}, // sum overshoots nameplate
			{Util: 1, Weight: 0.95, Alpha: 1.1}},
	}
	indexed := func(mix []Component) []IndexedComponent {
		out := make([]IndexedComponent, len(mix))
		for i, c := range mix {
			exp := -1
			for j, e := range benchExps {
				if e == c.Alpha { //lint:allow floateq -- exact catalog lookup
					exp = j
				}
			}
			if exp < 0 {
				t.Fatalf("alpha %v missing from benchExps", c.Alpha)
			}
			out[i] = IndexedComponent{Util: c.Util, Weight: c.Weight, Exp: exp}
		}
		return out
	}

	var freqs []GHz
	for i := 0; i < m.Ladder.Levels(); i++ {
		f := m.Ladder.Level(i)
		freqs = append(freqs, f, f+0.03, f-0.04)
	}
	freqs = append(freqs, 0.5, 5.0) // below and above the ladder

	for _, mix := range mixes {
		imix := indexed(mix)
		for _, f := range freqs {
			want := m.Power(f, mix)
			got := tab.Power(f, imix)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("Table.Power(%v) = %x, Model.Power = %x (mix %v)",
					f, math.Float64bits(got), math.Float64bits(want), mix)
			}
		}
	}
}

func TestTableModelAccessor(t *testing.T) {
	m := DefaultModel()
	if got := NewTable(m, benchExps).Model(); got != m {
		t.Fatalf("Model() = %+v, want %+v", got, m)
	}
}
