package power

import "math"

// powGeneric delegates to math.Pow; split out so model.go's fast path stays
// readable.
func powGeneric(base, exp float64) float64 { return math.Pow(base, exp) }

// Capper is the actuation interface a power-management scheme uses to
// throttle one server, mirroring a RAPL/ACPI frequency cap. Implementations
// are the simulated servers.
type Capper interface {
	// CapFreq sets the server's operating frequency (snapped to the ladder).
	CapFreq(f GHz)
	// Freq returns the current operating frequency.
	Freq() GHz
	// PowerNow returns the instantaneous draw at the current operating point.
	PowerNow() Watts
}

// Governor implements the shared mechanics of slot-based DVFS control:
// step caps down while over budget, step back up while there is headroom.
// The victim-selection policy differs per scheme and is supplied by the
// caller as an ordering of cappers.
type Governor struct {
	Ladder Ladder
	// UpHysteresis is the fraction of budget that must be free before the
	// governor raises frequencies again, preventing cap/uncap oscillation.
	UpHysteresis float64
	// MaxStepsPerSlot bounds how many ladder steps a single control
	// decision may move one server, modeling actuation latency.
	MaxStepsPerSlot int
}

// DefaultGovernor matches the control behaviour used in the evaluation.
func DefaultGovernor(l Ladder) Governor {
	return Governor{Ladder: l, UpHysteresis: 0.05, MaxStepsPerSlot: 3}
}

// ThrottleOrdered walks victims in order, stepping each down until the
// predicted saving covers the overshoot. predict(victim, f) must return the
// victim's draw if capped to f. It returns the predicted watts saved.
func (g Governor) ThrottleOrdered(overshoot Watts, victims []Capper,
	predict func(c Capper, f GHz) Watts) Watts {
	saved := Watts(0)
	for _, v := range victims {
		if saved >= overshoot {
			break
		}
		cur := v.Freq()
		curIdx := g.Ladder.Index(cur)
		if curIdx == 0 {
			continue // already at the floor
		}
		before := predict(v, cur)
		steps := g.MaxStepsPerSlot
		if steps <= 0 {
			steps = 1
		}
		target := curIdx
		// Walk down one step at a time so we stop as soon as the cumulative
		// saving covers the remaining overshoot.
		for s := 0; s < steps && target > 0; s++ {
			target--
			after := predict(v, g.Ladder.Level(target))
			if saved+(before-after) >= overshoot {
				break
			}
		}
		after := predict(v, g.Ladder.Level(target))
		v.CapFreq(g.Ladder.Level(target))
		saved += before - after
	}
	return saved
}

// Release walks victims in order, stepping each up while the headroom
// allows. predict has the same contract as in ThrottleOrdered. It returns
// the predicted watts added.
func (g Governor) Release(headroom Watts, victims []Capper,
	predict func(c Capper, f GHz) Watts) Watts {
	added := Watts(0)
	for _, v := range victims {
		cur := v.Freq()
		curIdx := g.Ladder.Index(cur)
		top := g.Ladder.Levels() - 1
		if curIdx >= top {
			continue
		}
		before := predict(v, cur)
		steps := g.MaxStepsPerSlot
		if steps <= 0 {
			steps = 1
		}
		target := curIdx
		for s := 0; s < steps && target < top; s++ {
			next := target + 1
			after := predict(v, g.Ladder.Level(next))
			if added+(after-before) > headroom {
				break
			}
			target = next
		}
		if target == curIdx {
			continue
		}
		after := predict(v, g.Ladder.Level(target))
		v.CapFreq(g.Ladder.Level(target))
		added += after - before
		if added >= headroom {
			break
		}
	}
	return added
}

// FreqForCap solves the RAPL-style actuation problem: the highest ladder
// frequency whose predicted draw fits under capW, given the server's
// current load mix. predict must be monotone non-decreasing in frequency
// (true of the model); the ladder floor is returned when even it exceeds
// the cap — a power limit cannot shed load, only slow it.
func FreqForCap(capW Watts, ladder Ladder, predict func(GHz) Watts) GHz {
	lo, hi := 0, ladder.Levels()-1
	// predict is monotone: binary-search the highest level under the cap.
	if predict(ladder.Level(lo)) > capW {
		return ladder.Level(lo)
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if predict(ladder.Level(mid)) <= capW {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return ladder.Level(lo)
}
