package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLadderLevels(t *testing.T) {
	l := DefaultLadder()
	if got := l.Levels(); got != 13 {
		t.Fatalf("levels = %d, want 13 (1.2..2.4 @0.1)", got)
	}
	if l.Level(0) != 1.2 {
		t.Fatalf("level 0 = %v", l.Level(0))
	}
	if got := l.Level(12); math.Abs(float64(got-2.4)) > 1e-9 {
		t.Fatalf("level 12 = %v", got)
	}
}

func TestLadderClampAndIndex(t *testing.T) {
	l := DefaultLadder()
	cases := []struct {
		in   GHz
		want GHz
	}{
		{0.5, 1.2}, {5.0, 2.4}, {1.84, 1.8}, {1.86, 1.9}, {2.4, 2.4},
	}
	for _, c := range cases {
		if got := l.Clamp(c.in); math.Abs(float64(got-c.want)) > 1e-9 {
			t.Fatalf("Clamp(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	if l.Index(1.2) != 0 || l.Index(2.4) != 12 {
		t.Fatal("index endpoints wrong")
	}
}

func TestLadderStepUpDown(t *testing.T) {
	l := DefaultLadder()
	if got := l.StepDown(2.4, 3); math.Abs(float64(got-2.1)) > 1e-9 {
		t.Fatalf("StepDown = %v", got)
	}
	if got := l.StepDown(1.3, 10); got != 1.2 {
		t.Fatalf("StepDown floor = %v", got)
	}
	if got := l.StepUp(2.3, 5); math.Abs(float64(got-2.4)) > 1e-9 {
		t.Fatalf("StepUp ceiling = %v", got)
	}
}

func TestLadderValidate(t *testing.T) {
	if err := DefaultLadder().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Ladder{
		{Min: 1, Max: 2, Step: 0},
		{Min: 0, Max: 2, Step: 0.1},
		{Min: 2, Max: 1, Step: 0.1},
	}
	for _, l := range bad {
		if l.Validate() == nil {
			t.Fatalf("ladder %+v validated", l)
		}
	}
}

func TestVFReduction(t *testing.T) {
	l := DefaultLadder()
	if got := l.VFReduction(2.4); got != 0 {
		t.Fatalf("reduction at max = %g", got)
	}
	want := (2.4 - 1.2) / 2.4
	if got := l.VFReduction(1.2); math.Abs(got-want) > 1e-9 {
		t.Fatalf("reduction at min = %g, want %g", got, want)
	}
}

func TestModelIdleAndNameplate(t *testing.T) {
	m := DefaultModel()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	idle := m.Idle(m.Ladder.Max)
	if math.Abs(idle-45) > 1e-9 {
		t.Fatalf("idle at fmax = %g, want 45", idle)
	}
	// Saturated heaviest type at f_max reaches nameplate.
	p := m.Power(m.Ladder.Max, []Component{{Util: 1, Weight: 1, Alpha: 2.4}})
	if math.Abs(p-m.Nameplate) > 1e-9 {
		t.Fatalf("saturated power = %g, want %g", p, m.Nameplate)
	}
}

func TestModelIdleScalesDown(t *testing.T) {
	m := DefaultModel()
	lo := m.Idle(m.Ladder.Min)
	hi := m.Idle(m.Ladder.Max)
	if lo >= hi {
		t.Fatalf("idle should fall with frequency: %g >= %g", lo, hi)
	}
	// Flat portion: at least (1-slope) of idle remains at the floor.
	floor := m.IdleFrac * m.Nameplate * (1 - m.IdleFreqSlope)
	if lo < floor-1e-9 {
		t.Fatalf("idle at floor %g below static floor %g", lo, floor)
	}
}

func TestModelMonotoneInUtil(t *testing.T) {
	m := DefaultModel()
	prev := -1.0
	for u := 0.0; u <= 1.0; u += 0.1 {
		p := m.Power(2.4, []Component{{Util: u, Weight: 0.8, Alpha: 2}})
		if p < prev {
			t.Fatalf("power not monotone in util at u=%g", u)
		}
		prev = p
	}
}

func TestModelMonotoneInFreq(t *testing.T) {
	m := DefaultModel()
	l := m.Ladder
	prev := -1.0
	for i := 0; i < l.Levels(); i++ {
		p := m.Power(l.Level(i), []Component{{Util: 0.7, Weight: 1, Alpha: 2.4}})
		if p < prev {
			t.Fatalf("power not monotone in frequency at level %d", i)
		}
		prev = p
	}
}

func TestAlphaControlsFrequencySensitivity(t *testing.T) {
	// A memory-bound component (low alpha) must lose less power when the
	// frequency drops than a compute-bound one — the Fig. 6-b mechanism.
	m := DefaultModel()
	drop := func(alpha float64) float64 {
		hi := m.Power(2.4, []Component{{Util: 1, Weight: 0.9, Alpha: alpha}})
		lo := m.Power(1.2, []Component{{Util: 1, Weight: 0.9, Alpha: alpha}})
		return hi - lo
	}
	if drop(1.2) >= drop(2.4) {
		t.Fatalf("low-alpha drop %g >= high-alpha drop %g", drop(1.2), drop(2.4))
	}
}

func TestModelClipsAtNameplate(t *testing.T) {
	m := DefaultModel()
	p := m.Power(2.4, []Component{
		{Util: 1, Weight: 1, Alpha: 2.4},
		{Util: 1, Weight: 1, Alpha: 2.4},
	})
	if p > m.Nameplate {
		t.Fatalf("power %g exceeded nameplate", p)
	}
}

func TestModelValidateRejectsBad(t *testing.T) {
	bad := []Model{
		{Nameplate: 0, IdleFrac: 0.4, Ladder: DefaultLadder()},
		{Nameplate: 100, IdleFrac: 1.5, Ladder: DefaultLadder()},
		{Nameplate: 100, IdleFrac: 0.4, IdleFreqSlope: 2, Ladder: DefaultLadder()},
	}
	for i, m := range bad {
		if m.Validate() == nil {
			t.Fatalf("bad model %d validated", i)
		}
	}
}

func TestQuickPowerBounded(t *testing.T) {
	m := DefaultModel()
	f := func(uRaw, wRaw, aRaw float64, lvl uint8) bool {
		u := math.Abs(math.Mod(uRaw, 1))
		w := math.Abs(math.Mod(wRaw, 1))
		a := 0.5 + math.Abs(math.Mod(aRaw, 3))
		fr := m.Ladder.Level(int(lvl) % m.Ladder.Levels())
		p := m.Power(fr, []Component{{Util: u, Weight: w, Alpha: a}})
		return p >= 0 && p <= m.Nameplate+1e-9 && p >= m.Idle(fr)-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// fakeCapper is a minimal Capper for governor tests: power is proportional
// to frequency.
type fakeCapper struct {
	f GHz
	l Ladder
}

func (c *fakeCapper) CapFreq(f GHz)   { c.f = c.l.Clamp(f) }
func (c *fakeCapper) Freq() GHz       { return c.f }
func (c *fakeCapper) PowerNow() Watts { return float64(c.f) * 10 }

func predictLinear(c Capper, f GHz) Watts { return float64(f) * 10 }

func TestGovernorThrottleCoversOvershoot(t *testing.T) {
	l := DefaultLadder()
	g := DefaultGovernor(l)
	g.MaxStepsPerSlot = 12
	victims := []Capper{
		&fakeCapper{f: 2.4, l: l},
		&fakeCapper{f: 2.4, l: l},
	}
	saved := g.ThrottleOrdered(5, victims, predictLinear)
	if saved < 5-1e-9 {
		t.Fatalf("saved %g < overshoot 5", saved)
	}
	// The first victim alone can save (2.4-1.2)*10 = 12 W, so the second
	// must be untouched.
	if victims[1].Freq() != 2.4 {
		t.Fatalf("second victim throttled unnecessarily: %v", victims[1].Freq())
	}
}

func TestGovernorThrottleRespectsStepBound(t *testing.T) {
	l := DefaultLadder()
	g := DefaultGovernor(l)
	g.MaxStepsPerSlot = 2
	v := &fakeCapper{f: 2.4, l: l}
	g.ThrottleOrdered(1000, []Capper{v}, predictLinear)
	if got := v.Freq(); math.Abs(float64(got-2.2)) > 1e-9 {
		t.Fatalf("freq %v, want 2.2 after 2 bounded steps", got)
	}
}

func TestGovernorThrottleSkipsFloor(t *testing.T) {
	l := DefaultLadder()
	g := DefaultGovernor(l)
	v := &fakeCapper{f: 1.2, l: l}
	saved := g.ThrottleOrdered(100, []Capper{v}, predictLinear)
	if saved != 0 {
		t.Fatalf("saved %g from a floored server", saved)
	}
}

func TestGovernorReleaseWithinHeadroom(t *testing.T) {
	l := DefaultLadder()
	g := DefaultGovernor(l)
	g.MaxStepsPerSlot = 12
	v := &fakeCapper{f: 1.2, l: l}
	added := g.Release(5, []Capper{v}, predictLinear)
	if added > 5+1e-9 {
		t.Fatalf("release added %g > headroom 5", added)
	}
	if v.Freq() <= 1.2 {
		t.Fatal("release did not raise frequency with headroom available")
	}
}

func TestGovernorReleaseNoHeadroom(t *testing.T) {
	l := DefaultLadder()
	g := DefaultGovernor(l)
	v := &fakeCapper{f: 1.2, l: l}
	added := g.Release(0.1, []Capper{v}, predictLinear)
	// One step costs 1 W (>0.1), so nothing should change.
	if added != 0 || v.Freq() != 1.2 {
		t.Fatalf("release moved without headroom: added=%g f=%v", added, v.Freq())
	}
}

func TestGovernorReleaseAtMax(t *testing.T) {
	l := DefaultLadder()
	g := DefaultGovernor(l)
	v := &fakeCapper{f: 2.4, l: l}
	if added := g.Release(100, []Capper{v}, predictLinear); added != 0 {
		t.Fatalf("release from max added %g", added)
	}
}

func BenchmarkModelPower(b *testing.B) {
	m := DefaultModel()
	mix := []Component{
		{Util: 0.3, Weight: 1, Alpha: 2.4},
		{Util: 0.2, Weight: 0.95, Alpha: 1.2},
		{Util: 0.1, Weight: 0.8, Alpha: 1.8},
	}
	for i := 0; i < b.N; i++ {
		_ = m.Power(2.1, mix)
	}
}

func TestFreqForCap(t *testing.T) {
	l := DefaultLadder()
	// Linear predict: 10 W per GHz.
	predict := func(f GHz) Watts { return float64(f) * 10 }
	// Cap 20 W: highest level at or under 2.0 GHz.
	if got := FreqForCap(20, l, predict); math.Abs(float64(got-2.0)) > 1e-9 {
		t.Fatalf("FreqForCap(20) = %v, want 2.0", got)
	}
	// Generous cap: ladder max.
	if got := FreqForCap(1000, l, predict); math.Abs(float64(got-2.4)) > 1e-9 {
		t.Fatalf("generous cap %v", got)
	}
	// Impossible cap: ladder floor.
	if got := FreqForCap(5, l, predict); got != 1.2 {
		t.Fatalf("impossible cap %v, want floor", got)
	}
	// Exact boundary: 23 W admits 2.3 GHz.
	if got := FreqForCap(23, l, predict); math.Abs(float64(got-2.3)) > 1e-9 {
		t.Fatalf("boundary cap %v", got)
	}
}

func TestFreqForCapMatchesServerModel(t *testing.T) {
	m := DefaultModel()
	mix := []Component{{Util: 0.9, Weight: 1, Alpha: 2.4}}
	predict := func(f GHz) Watts { return m.Power(f, mix) }
	cap := 80.0
	f := FreqForCap(cap, m.Ladder, predict)
	if predict(f) > cap+1e-9 {
		t.Fatalf("solved frequency %v draws %g > cap %g", f, predict(f), cap)
	}
	// One step up must violate the cap (or f is already the max).
	if up := m.Ladder.StepUp(f, 1); up != f && predict(up) <= cap {
		t.Fatalf("not the highest admissible frequency: %v also fits", up)
	}
}
