package simtime

import (
	"testing"
)

func TestEventsFireInOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(3, func(now Seconds) { order = append(order, 3) })
	e.Schedule(1, func(now Seconds) { order = append(order, 1) })
	e.Schedule(2, func(now Seconds) { order = append(order, 2) })
	e.RunUntil(10)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("fire order %v", order)
	}
	if e.Now() != 10 {
		t.Fatalf("clock = %g, want 10", e.Now())
	}
}

func TestTieBreakFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Schedule(1, func(now Seconds) { order = append(order, i) })
	}
	e.RunUntil(2)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired out of scheduling order: %v", order)
		}
	}
}

func TestScheduleInPastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(5, func(now Seconds) {})
	e.RunUntil(5)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.Schedule(1, func(now Seconds) {})
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(1, func(now Seconds) { fired = true })
	ev.Cancel()
	e.RunUntil(2)
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() false after Cancel")
	}
}

func TestCancelNilSafe(t *testing.T) {
	var ev *Event
	ev.Cancel() // must not panic
	if ev.Cancelled() {
		t.Fatal("nil event reports cancelled")
	}
}

func TestHorizonStopsEarly(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(10, func(now Seconds) { fired = true })
	e.RunUntil(5)
	if fired {
		t.Fatal("event past the horizon fired")
	}
	if e.Now() != 5 {
		t.Fatalf("clock = %g, want 5", e.Now())
	}
	e.RunUntil(15)
	if !fired {
		t.Fatal("event not fired after horizon extension")
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := NewEngine()
	var times []Seconds
	e.Schedule(1, func(now Seconds) {
		times = append(times, now)
		e.Schedule(now+1, func(now Seconds) { times = append(times, now) })
	})
	e.RunUntil(5)
	if len(times) != 2 || times[0] != 1 || times[1] != 2 {
		t.Fatalf("chained schedule times %v", times)
	}
}

func TestAfter(t *testing.T) {
	e := NewEngine()
	var at Seconds = -1
	e.Schedule(2, func(now Seconds) {
		e.After(3, func(now Seconds) { at = now })
	})
	e.RunUntil(10)
	if at != 5 {
		t.Fatalf("After fired at %g, want 5", at)
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine()
	var ticks []Seconds
	e.Tick(0, 1, func(now Seconds) { ticks = append(ticks, now) })
	e.RunUntil(4.5)
	want := []Seconds{0, 1, 2, 3, 4}
	if len(ticks) != len(want) {
		t.Fatalf("ticks %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks %v, want %v", ticks, want)
		}
	}
}

func TestTickerStop(t *testing.T) {
	e := NewEngine()
	count := 0
	var tk *Ticker
	tk = e.Tick(0, 1, func(now Seconds) {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	e.RunUntil(10)
	if count != 3 {
		t.Fatalf("ticker fired %d times after Stop at 3", count)
	}
}

func TestTickerBadPeriodPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("Tick with zero period did not panic")
		}
	}()
	e.Tick(0, 0, func(now Seconds) {})
}

func TestStep(t *testing.T) {
	e := NewEngine()
	e.Schedule(1, func(now Seconds) {})
	e.Schedule(2, func(now Seconds) {})
	if !e.Step() {
		t.Fatal("Step returned false with pending events")
	}
	if e.Now() != 1 {
		t.Fatalf("clock %g after one step", e.Now())
	}
	if !e.Step() {
		t.Fatal("second Step returned false")
	}
	if e.Step() {
		t.Fatal("Step returned true with empty queue")
	}
}

func TestPendingCountsLiveEvents(t *testing.T) {
	e := NewEngine()
	a := e.Schedule(1, func(now Seconds) {})
	e.Schedule(2, func(now Seconds) {})
	a.Cancel()
	if got := e.Pending(); got != 1 {
		t.Fatalf("Pending = %d, want 1", got)
	}
}

func TestFiredCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 10; i++ {
		e.Schedule(float64(i), func(now Seconds) {})
	}
	e.RunUntil(100)
	if e.Fired() != 10 {
		t.Fatalf("Fired = %d, want 10", e.Fired())
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []Seconds {
		e := NewEngine()
		var log []Seconds
		e.Tick(0, 0.7, func(now Seconds) { log = append(log, now) })
		e.Schedule(1.4, func(now Seconds) { log = append(log, -now) })
		e.RunUntil(5)
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("replay lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %g vs %g", i, a[i], b[i])
		}
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.Schedule(float64(j%97), func(now Seconds) {})
		}
		e.RunUntil(100)
	}
}
