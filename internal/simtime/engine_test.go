package simtime

import (
	"testing"
)

func TestEventsFireInOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(3, func(now Seconds) { order = append(order, 3) })
	e.Schedule(1, func(now Seconds) { order = append(order, 1) })
	e.Schedule(2, func(now Seconds) { order = append(order, 2) })
	e.RunUntil(10)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("fire order %v", order)
	}
	if e.Now() != 10 {
		t.Fatalf("clock = %g, want 10", e.Now())
	}
}

func TestTieBreakFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Schedule(1, func(now Seconds) { order = append(order, i) })
	}
	e.RunUntil(2)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired out of scheduling order: %v", order)
		}
	}
}

func TestScheduleInPastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(5, func(now Seconds) {})
	e.RunUntil(5)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.Schedule(1, func(now Seconds) {})
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(1, func(now Seconds) { fired = true })
	if !ev.Pending() {
		t.Fatal("scheduled event not pending")
	}
	ev.Cancel()
	if ev.Pending() {
		t.Fatal("Pending() true after Cancel")
	}
	e.RunUntil(2)
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestZeroEventSafe(t *testing.T) {
	var ev Event
	ev.Cancel() // must not panic
	if ev.Pending() {
		t.Fatal("zero event reports pending")
	}
	if ev.At() != 0 {
		t.Fatal("zero event has a timestamp")
	}
}

func TestStaleHandleInert(t *testing.T) {
	// A handle kept across its event's fire must not cancel whatever
	// recycled event struct now occupies the pool slot.
	e := NewEngine()
	firstFired, secondFired := false, false
	stale := e.Schedule(1, func(now Seconds) { firstFired = true })
	e.RunUntil(1.5) // fires and recycles the first event
	fresh := e.Schedule(2, func(now Seconds) { secondFired = true })
	stale.Cancel() // must be a no-op, not cancel the recycled struct
	if !fresh.Pending() {
		t.Fatal("stale Cancel hit the recycled event")
	}
	e.RunUntil(3)
	if !firstFired || !secondFired {
		t.Fatalf("fired = %v/%v, want true/true", firstFired, secondFired)
	}
}

func TestDoubleCancelDoesNotDoubleDecrement(t *testing.T) {
	e := NewEngine()
	a := e.Schedule(1, func(now Seconds) {})
	e.Schedule(2, func(now Seconds) {})
	a.Cancel()
	a.Cancel() // second cancel must not decrement the live counter again
	if got := e.Pending(); got != 1 {
		t.Fatalf("Pending = %d after double cancel, want 1", got)
	}
}

func TestHorizonStopsEarly(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(10, func(now Seconds) { fired = true })
	e.RunUntil(5)
	if fired {
		t.Fatal("event past the horizon fired")
	}
	if e.Now() != 5 {
		t.Fatalf("clock = %g, want 5", e.Now())
	}
	e.RunUntil(15)
	if !fired {
		t.Fatal("event not fired after horizon extension")
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := NewEngine()
	var times []Seconds
	e.Schedule(1, func(now Seconds) {
		times = append(times, now)
		e.Schedule(now+1, func(now Seconds) { times = append(times, now) })
	})
	e.RunUntil(5)
	if len(times) != 2 || times[0] != 1 || times[1] != 2 {
		t.Fatalf("chained schedule times %v", times)
	}
}

func TestAfter(t *testing.T) {
	e := NewEngine()
	var at Seconds = -1
	e.Schedule(2, func(now Seconds) {
		e.After(3, func(now Seconds) { at = now })
	})
	e.RunUntil(10)
	if at != 5 {
		t.Fatalf("After fired at %g, want 5", at)
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine()
	var ticks []Seconds
	e.Tick(0, 1, func(now Seconds) { ticks = append(ticks, now) })
	e.RunUntil(4.5)
	want := []Seconds{0, 1, 2, 3, 4}
	if len(ticks) != len(want) {
		t.Fatalf("ticks %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks %v, want %v", ticks, want)
		}
	}
}

func TestTickerStop(t *testing.T) {
	e := NewEngine()
	count := 0
	var tk *Ticker
	tk = e.Tick(0, 1, func(now Seconds) {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	e.RunUntil(10)
	if count != 3 {
		t.Fatalf("ticker fired %d times after Stop at 3", count)
	}
}

func TestTickerBadPeriodPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("Tick with zero period did not panic")
		}
	}()
	e.Tick(0, 0, func(now Seconds) {})
}

func TestStep(t *testing.T) {
	e := NewEngine()
	e.Schedule(1, func(now Seconds) {})
	e.Schedule(2, func(now Seconds) {})
	if !e.Step() {
		t.Fatal("Step returned false with pending events")
	}
	if e.Now() != 1 {
		t.Fatalf("clock %g after one step", e.Now())
	}
	if !e.Step() {
		t.Fatal("second Step returned false")
	}
	if e.Step() {
		t.Fatal("Step returned true with empty queue")
	}
}

func TestPendingCountsLiveEvents(t *testing.T) {
	e := NewEngine()
	a := e.Schedule(1, func(now Seconds) {})
	e.Schedule(2, func(now Seconds) {})
	a.Cancel()
	if got := e.Pending(); got != 1 {
		t.Fatalf("Pending = %d, want 1", got)
	}
}

func TestFiredCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 10; i++ {
		e.Schedule(float64(i), func(now Seconds) {})
	}
	e.RunUntil(100)
	if e.Fired() != 10 {
		t.Fatalf("Fired = %d, want 10", e.Fired())
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []Seconds {
		e := NewEngine()
		var log []Seconds
		e.Tick(0, 0.7, func(now Seconds) { log = append(log, now) })
		e.Schedule(1.4, func(now Seconds) { log = append(log, -now) })
		e.RunUntil(5)
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("replay lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %g vs %g", i, a[i], b[i])
		}
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.Schedule(float64(j%97), func(now Seconds) {})
		}
		e.RunUntil(100)
	}
}

// BenchmarkScheduleFireSteady measures the steady-state schedule+fire cycle
// on a warm engine: the per-event cost every simulated arrival and
// completion pays.
func BenchmarkScheduleFireSteady(b *testing.B) {
	e := NewEngine()
	fn := func(now Seconds) {}
	// Warm the engine so slice growth is out of the measured loop.
	for j := 0; j < 64; j++ {
		e.Schedule(float64(j), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(float64(i+64), fn)
		e.Step()
	}
}

// BenchmarkDrainBatch measures the batch dispatch path the simulation's
// RunTo drive loop uses: 16 events sharing one grid timestamp drained in a
// single DrainAt call, the shape every control tick with same-instant
// cascades produces.
func BenchmarkDrainBatch(b *testing.B) {
	e := NewEngine()
	fn := func(now Seconds) {}
	// Warm the pool so schedule/fire cycles recycle instead of allocating.
	for j := 0; j < 16; j++ {
		e.Schedule(0, fn)
	}
	e.DrainAt(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := float64(i + 1)
		for j := 0; j < 16; j++ {
			e.Schedule(at, fn)
		}
		if n, _ := e.DrainAt(at); n != 16 {
			b.Fatalf("batch fired %d events, want 16", n)
		}
	}
}

// BenchmarkScheduleCancel measures the cancel-heavy pattern the completion
// rescheduler produces: most scheduled events are superseded before firing.
func BenchmarkScheduleCancel(b *testing.B) {
	e := NewEngine()
	fn := func(now Seconds) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := e.Schedule(float64(i), fn)
		ev.Cancel()
		if i%4 == 3 {
			e.Schedule(float64(i), fn)
			e.Step()
		}
	}
}

func TestCancelCompactOrdering(t *testing.T) {
	// Cancel enough events to trigger heap compaction, then verify the
	// survivors still fire in exact (timestamp, scheduling-order) order.
	e := NewEngine()
	var order []int
	var cancels []Event
	for i := 0; i < 400; i++ {
		i := i
		ev := e.Schedule(float64(i%13), func(now Seconds) { order = append(order, i) })
		if i%4 != 0 {
			cancels = append(cancels, ev)
		}
	}
	for _, ev := range cancels {
		ev.Cancel() // crosses the cancelled > live threshold mid-loop
	}
	if got, want := e.Pending(), 100; got != want {
		t.Fatalf("Pending = %d, want %d", got, want)
	}
	e.RunUntil(20)
	if len(order) != 100 {
		t.Fatalf("fired %d events, want 100", len(order))
	}
	// Survivors are i%4==0 in increasing i within each timestamp bucket;
	// buckets fire in timestamp order (i%13).
	want := make([]int, 0, 100)
	for ts := 0; ts < 13; ts++ {
		for i := 0; i < 400; i++ {
			if i%4 == 0 && i%13 == ts {
				want = append(want, i)
			}
		}
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order[%d] = %d, want %d (compaction broke ordering)", i, order[i], want[i])
		}
	}
}

func TestCompactionRecyclesIntoPool(t *testing.T) {
	e := NewEngine()
	fn := func(now Seconds) {}
	var evs []Event
	for i := 0; i < 256; i++ {
		evs = append(evs, e.Schedule(float64(i), fn))
	}
	for _, ev := range evs[:200] {
		ev.Cancel()
	}
	// Compaction must have run: the raw heap can hold at most the live
	// events plus a sub-majority of cancelled ones.
	if got := len(e.events); got > 2*e.live {
		t.Fatalf("heap holds %d entries for %d live events; compaction missing", got, e.live)
	}
	if len(e.free) == 0 {
		t.Fatal("compaction recycled nothing into the pool")
	}
	e.RunUntil(300)
	if e.Fired() != 56 {
		t.Fatalf("Fired = %d, want 56", e.Fired())
	}
}

func TestScheduleFireAllocBudget(t *testing.T) {
	// The pool's contract: steady-state schedule+fire on a warm engine is
	// allocation-free (≤1 amortized covers pathological pauses).
	e := NewEngine()
	fn := func(now Seconds) {}
	for i := 0; i < 64; i++ {
		e.Schedule(float64(i), fn)
	}
	e.RunUntil(64)
	next := 65.0
	avg := testing.AllocsPerRun(1000, func() {
		e.Schedule(next, fn)
		e.Step()
		next++
	})
	if avg > 1 {
		t.Fatalf("schedule+fire allocates %.2f/op, want <= 1 amortized", avg)
	}
}

func TestCancelAllocBudget(t *testing.T) {
	e := NewEngine()
	fn := func(now Seconds) {}
	next := 1.0
	avg := testing.AllocsPerRun(1000, func() {
		ev := e.Schedule(next, fn)
		ev.Cancel()
		next++
	})
	if avg > 1 {
		t.Fatalf("schedule+cancel allocates %.2f/op, want <= 1 amortized", avg)
	}
}

func TestPendingO1AfterFire(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 10; i++ {
		e.Schedule(float64(i), func(now Seconds) {})
	}
	e.Step()
	e.Step()
	if got := e.Pending(); got != 8 {
		t.Fatalf("Pending = %d after two fires, want 8", got)
	}
}

func TestTickerRestart(t *testing.T) {
	e := NewEngine()
	var ticks []Seconds
	tk := e.Tick(0, 1, func(now Seconds) { ticks = append(ticks, now) })
	e.RunUntil(2.5) // ticks at 0, 1, 2
	tk.Stop()
	tk.Stop() // double Stop is a no-op
	e.RunUntil(5)
	if len(ticks) != 3 {
		t.Fatalf("ticks after Stop = %v", ticks)
	}
	tk.Restart(7)
	e.RunUntil(8.5) // ticks at 7, 8
	want := []Seconds{0, 1, 2, 7, 8}
	if len(ticks) != len(want) {
		t.Fatalf("ticks after Restart = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks after Restart = %v, want %v", ticks, want)
		}
	}
}

func TestTickerRestartWhileRunningPanics(t *testing.T) {
	e := NewEngine()
	tk := e.Tick(0, 1, func(now Seconds) {})
	defer func() {
		if recover() == nil {
			t.Fatal("Restart of a running ticker did not panic")
		}
	}()
	tk.Restart(5)
}
