// Package simtime implements the discrete-event core of the simulator: a
// virtual clock and an event queue ordered by timestamp with deterministic
// FIFO tie-breaking. All simulator components share one Engine; wall-clock
// time never appears anywhere in the simulation.
package simtime

import (
	"container/heap"
	"fmt"
	"math"
)

// Seconds is the unit of simulated time throughout the repository.
type Seconds = float64

// Event is a scheduled callback. Events fire in timestamp order; events with
// equal timestamps fire in scheduling order, which keeps runs reproducible.
type Event struct {
	at  Seconds
	seq uint64
	fn  func(now Seconds)
	// cancelled events stay in the heap but are skipped when popped; this is
	// cheaper than heap removal and keeps cancellation O(1).
	cancelled bool
	index     int
}

// Cancel marks the event so it will not fire. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.cancelled = true
	}
}

// Cancelled reports whether Cancel has been called on the event.
func (e *Event) Cancelled() bool { return e != nil && e.cancelled }

// At returns the timestamp the event is scheduled for.
func (e *Event) At() Seconds { return e.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	//lint:allow floateq -- deliberate: only bit-identical timestamps tie-break by seq
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine owns the virtual clock and the pending event set.
type Engine struct {
	now    Seconds
	seq    uint64
	events eventHeap
	fired  uint64
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Seconds { return e.now }

// Fired returns the number of events executed so far, a cheap progress and
// determinism probe for tests.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of live (non-cancelled) events still queued.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.events {
		if !ev.cancelled {
			n++
		}
	}
	return n
}

// Schedule queues fn to run at the given absolute time. Scheduling in the
// past (before Now) panics: that is always a simulator bug, and silently
// clamping it would hide causality violations.
func (e *Engine) Schedule(at Seconds, fn func(now Seconds)) *Event {
	if math.IsNaN(at) {
		panic("simtime: schedule at NaN")
	}
	if at < e.now {
		panic(fmt.Sprintf("simtime: schedule at %.9f before now %.9f", at, e.now))
	}
	ev := &Event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// After queues fn to run delay seconds from now.
func (e *Engine) After(delay Seconds, fn func(now Seconds)) *Event {
	return e.Schedule(e.now+delay, fn)
}

// Step fires the single earliest pending event. It returns false when the
// queue is empty.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		e.fired++
		ev.fn(e.now)
		return true
	}
	return false
}

// RunUntil fires events in order until the clock would pass horizon or the
// queue drains. The clock is left at exactly horizon when the horizon is hit
// so that periodic processes can resume cleanly.
func (e *Engine) RunUntil(horizon Seconds) {
	for len(e.events) > 0 {
		// Peek.
		ev := e.events[0]
		if ev.cancelled {
			heap.Pop(&e.events)
			continue
		}
		if ev.at > horizon {
			break
		}
		heap.Pop(&e.events)
		e.now = ev.at
		e.fired++
		ev.fn(e.now)
	}
	if e.now < horizon {
		e.now = horizon
	}
}

// Ticker repeatedly schedules fn every period, starting at start, until the
// engine stops being run. Cancel the returned ticker to stop it.
type Ticker struct {
	engine *Engine
	period Seconds
	fn     func(now Seconds)
	ev     *Event
	done   bool
}

// Tick registers a periodic callback. Period must be positive.
func (e *Engine) Tick(start, period Seconds, fn func(now Seconds)) *Ticker {
	if period <= 0 {
		panic("simtime: non-positive tick period")
	}
	t := &Ticker{engine: e, period: period, fn: fn}
	t.ev = e.Schedule(start, t.fire)
	return t
}

func (t *Ticker) fire(now Seconds) {
	if t.done {
		return
	}
	t.fn(now)
	if !t.done {
		t.ev = t.engine.Schedule(now+t.period, t.fire)
	}
}

// Stop cancels all future ticks.
func (t *Ticker) Stop() {
	t.done = true
	t.ev.Cancel()
}
