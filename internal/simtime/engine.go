// Package simtime implements the discrete-event core of the simulator: a
// virtual clock and an event queue ordered by timestamp with deterministic
// FIFO tie-breaking. All simulator components share one Engine; wall-clock
// time never appears anywhere in the simulation.
//
// The queue is built for throughput: a 4-ary array heap (shallower than a
// binary heap, so fewer cache lines per sift), a free-list event pool so
// steady-state schedule/fire cycles allocate nothing, and lazy cancellation
// with compaction — cancelled events are skipped when popped, and the heap
// is rebuilt without them once they outnumber the live events. See
// DESIGN.md "Performance model".
package simtime

import (
	"fmt"
	"math"
)

// Seconds is the unit of simulated time throughout the repository.
type Seconds = float64

// event is the pooled storage behind an Event handle. Events fire in
// timestamp order; events with equal timestamps fire in scheduling order
// (seq), which keeps runs reproducible. gen increments every time the
// struct is recycled, so stale handles from a previous tenancy are inert.
type event struct {
	at        Seconds
	seq       uint64
	gen       uint64
	fn        func(now Seconds)
	eng       *Engine
	cancelled bool
}

// Event is a cancellation handle for one scheduled callback. Handles are
// small values; the zero Event is valid and refers to nothing. A handle
// outlives its event safely: once the event fires or is recycled, Cancel
// and Pending become no-ops on it.
type Event struct {
	ev  *event
	gen uint64
}

// Cancel marks the event so it will not fire. Cancelling an already-fired,
// already-cancelled, or zero event is a no-op — in particular a double
// Cancel does not corrupt the engine's live-event accounting.
//
//hot:allocfree
func (e Event) Cancel() {
	ev := e.ev
	if ev == nil || ev.gen != e.gen || ev.cancelled {
		return
	}
	ev.cancelled = true
	eng := ev.eng
	eng.live--
	// Lazily-cancelled events rot in the heap; once they outnumber the
	// live ones, one O(n) rebuild reclaims them all.
	if len(eng.events) >= compactMin && len(eng.events)-eng.live > eng.live {
		eng.compact()
	}
}

// Pending reports whether the event is still queued to fire: scheduled,
// not cancelled, not yet fired.
func (e Event) Pending() bool {
	return e.ev != nil && e.ev.gen == e.gen && !e.ev.cancelled
}

// At returns the timestamp the event is scheduled for, or 0 once it has
// fired, been cancelled and reclaimed, or for the zero handle.
func (e Event) At() Seconds {
	if !e.Pending() {
		return 0
	}
	return e.ev.at
}

// Seq returns the event's scheduling sequence number — the engine's tie-break
// key for events sharing one timestamp — or 0 when the event is not pending.
// Snapshot capture reads it to re-schedule surviving chains on a forked
// engine in an order that reproduces the original's same-instant firing
// order.
func (e Event) Seq() uint64 {
	if !e.Pending() {
		return 0
	}
	return e.ev.seq
}

// compactMin is the queue size below which compaction is not worth the
// rebuild; tiny queues recycle cancelled events at pop time anyway.
const compactMin = 64

// Engine owns the virtual clock and the pending event set.
type Engine struct {
	now   Seconds
	seq   uint64
	fired uint64

	// events is a 4-ary min-heap ordered by (at, seq). Cancelled events
	// stay in place until popped or compacted away.
	events []*event
	// live counts non-cancelled queued events, making Pending() O(1).
	live int
	// free is the event pool: structs recycled on fire, cancelled-pop and
	// compaction, reused by the next Schedule.
	free []*event
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Seconds { return e.now }

// Fired returns the number of events executed so far, a cheap progress and
// determinism probe for tests.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of live (non-cancelled) events still queued.
func (e *Engine) Pending() int { return e.live }

// Schedule queues fn to run at the given absolute time. Scheduling in the
// past (before Now) panics: that is always a simulator bug, and silently
// clamping it would hide causality violations.
//
//hot:allocfree
func (e *Engine) Schedule(at Seconds, fn func(now Seconds)) Event {
	if math.IsNaN(at) {
		panic("simtime: schedule at NaN")
	}
	if at < e.now {
		panic(fmt.Sprintf("simtime: schedule at %.9f before now %.9f", at, e.now))
	}
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &event{eng: e} //lint:allow hotalloc -- pool miss: warms the event pool once, steady state recycles
	}
	ev.at = at
	ev.seq = e.seq
	ev.fn = fn
	ev.cancelled = false
	e.seq++
	e.live++
	e.push(ev)
	return Event{ev: ev, gen: ev.gen}
}

// After queues fn to run delay seconds from now.
func (e *Engine) After(delay Seconds, fn func(now Seconds)) Event {
	return e.Schedule(e.now+delay, fn)
}

// recycle returns a popped event struct to the pool. Bumping gen first
// makes every outstanding handle to it inert.
//
//hot:allocfree
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.fn = nil // release the closure; pooled structs must not pin memory
	e.free = append(e.free, ev)
}

// pop removes and returns the earliest live event, recycling any cancelled
// events it uncovers. It returns nil when the queue has no live events.
//
//hot:allocfree
func (e *Engine) pop() *event {
	for len(e.events) > 0 {
		ev := e.popMin()
		if ev.cancelled {
			e.recycle(ev)
			continue
		}
		e.live--
		return ev
	}
	return nil
}

// Step fires the single earliest pending event. It returns false when the
// queue is empty.
//
//hot:allocfree
func (e *Engine) Step() bool {
	ev := e.pop()
	if ev == nil {
		return false
	}
	at, fn := ev.at, ev.fn
	e.recycle(ev)
	e.now = at
	e.fired++
	fn(e.now)
	return true
}

// RunUntil fires events in order until the clock would pass horizon or the
// queue drains. The clock is left at exactly horizon when the horizon is hit
// so that periodic processes can resume cleanly.
//
//hot:allocfree
func (e *Engine) RunUntil(horizon Seconds) {
	for len(e.events) > 0 {
		// Peek; recycle cancelled tops without firing.
		top := e.events[0]
		if top.cancelled {
			e.recycle(e.popMin())
			continue
		}
		if top.at > horizon {
			break
		}
		ev := e.popMin()
		e.live--
		at, fn := ev.at, ev.fn
		e.recycle(ev)
		e.now = at
		e.fired++
		fn(e.now)
	}
	if e.now < horizon {
		e.now = horizon
	}
}

// DrainAt fires, in scheduling order, every pending event stamped with the
// earliest pending timestamp, provided that timestamp does not exceed
// horizon — one batch pop instead of one Step call per event. Events a
// callback schedules at the batch instant join the same batch (exactly the
// order a Step loop would produce, so DrainAt is result-identical to
// stepping). It returns how many events fired and the batch timestamp;
// n == 0 means no event at or before horizon remained, and the clock has
// been left at horizon so periodic processes can resume cleanly.
//
// Only bit-identical timestamps share a batch: continuous-time events
// (completions, arrivals) essentially never coalesce, while grid-aligned
// events (control ticks, fault windows, same-instant cascades) do.
//
//hot:allocfree
func (e *Engine) DrainAt(horizon Seconds) (n int, at Seconds) {
	for len(e.events) > 0 {
		top := e.events[0]
		if top.cancelled {
			e.recycle(e.popMin())
			continue
		}
		if n == 0 {
			if top.at > horizon {
				break
			}
			at = top.at
		} else if top.at != at { //lint:allow floateq -- deliberate: only bit-identical timestamps batch together
			break
		}
		ev := e.popMin()
		e.live--
		fn := ev.fn
		e.recycle(ev)
		e.now = at
		e.fired++
		n++
		fn(e.now)
	}
	if n == 0 && e.now < horizon {
		e.now = horizon
	}
	return n, at
}

// Reset returns the engine to its initial state — clock at zero, no pending
// events, counters cleared — while keeping the event pool, so the next
// tenancy schedules into warm storage. Every queued event (live or
// cancelled) is recycled; outstanding handles become inert.
func (e *Engine) Reset() {
	for _, ev := range e.events {
		e.recycle(ev)
	}
	for i := range e.events {
		e.events[i] = nil
	}
	e.events = e.events[:0]
	e.now = 0
	e.seq = 0
	e.fired = 0
	e.live = 0
}

// compact rebuilds the heap without its cancelled events and recycles them.
// Live events keep their (at, seq) keys, so the pop order — the only thing
// the determinism contract pins — is unchanged.
func (e *Engine) compact() {
	keep := e.events[:0]
	for _, ev := range e.events {
		if ev.cancelled {
			e.recycle(ev)
		} else {
			keep = append(keep, ev)
		}
	}
	// Zero the vacated tail so the backing array stops pinning the moved
	// pointers twice.
	for i := len(keep); i < len(e.events); i++ {
		e.events[i] = nil
	}
	e.events = keep
	// Standard heapify: sift down every internal node, last parent first.
	// (Guard the small cases: Go truncates -2/arity to 0.)
	if n := len(keep); n > 1 {
		for i := (n - 2) / arity; i >= 0; i-- {
			e.siftDown(i)
		}
	}
}

// The event heap is 4-ary: children of i are arity*i+1 .. arity*i+arity,
// parent of i is (i-1)/arity. Shallower than binary, so a sift touches
// ~half the levels; the extra child comparisons are cheap and local.
const arity = 4

// less orders the heap by timestamp, then by scheduling order.
func less(a, b *event) bool {
	//lint:allow floateq -- deliberate: only bit-identical timestamps tie-break by seq
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push appends ev and restores the heap property.
//
//hot:allocfree
func (e *Engine) push(ev *event) {
	e.events = append(e.events, ev)
	i := len(e.events) - 1
	for i > 0 {
		parent := (i - 1) / arity
		if !less(e.events[i], e.events[parent]) {
			break
		}
		e.events[i], e.events[parent] = e.events[parent], e.events[i]
		i = parent
	}
}

// popMin removes and returns the heap root without looking at cancellation.
//
//hot:allocfree
func (e *Engine) popMin() *event {
	h := e.events
	root := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil
	e.events = h[:n]
	if n > 0 {
		e.siftDown(0)
	}
	return root
}

// siftDown restores the heap property below node i.
//
//hot:allocfree
func (e *Engine) siftDown(i int) {
	h := e.events
	n := len(h)
	node := h[i]
	for {
		first := arity*i + 1
		if first >= n {
			break
		}
		// Find the smallest child.
		best := first
		last := first + arity
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if less(h[c], h[best]) {
				best = c
			}
		}
		if !less(h[best], node) {
			break
		}
		h[i] = h[best]
		i = best
	}
	h[i] = node
}

// Ticker repeatedly schedules fn every period, starting at start, until the
// engine stops being run. Stop the returned ticker to cancel future ticks.
type Ticker struct {
	engine *Engine
	period Seconds
	fn     func(now Seconds)
	// fireFn is the bound method value, created once so re-arming each
	// period does not allocate a fresh closure.
	fireFn func(now Seconds)
	ev     Event
	done   bool
}

// Tick registers a periodic callback. Period must be positive.
func (e *Engine) Tick(start, period Seconds, fn func(now Seconds)) *Ticker {
	if period <= 0 {
		panic("simtime: non-positive tick period")
	}
	t := &Ticker{engine: e, period: period, fn: fn}
	t.fireFn = t.fire
	t.ev = e.Schedule(start, t.fireFn)
	return t
}

// fire runs one tick and re-arms via the pre-bound method value, so the
// periodic path schedules without creating a closure.
//
//hot:allocfree
func (t *Ticker) fire(now Seconds) {
	if t.done {
		return
	}
	t.fn(now)
	if !t.done {
		t.ev = t.engine.Schedule(now+t.period, t.fireFn)
	}
}

// Next returns the absolute time of the ticker's next scheduled fire, and
// whether one is pending (a stopped ticker has none). Snapshot capture uses
// it to re-arm an equivalent ticker on a forked engine.
func (t *Ticker) Next() (Seconds, bool) {
	if t.done || !t.ev.Pending() {
		return 0, false
	}
	return t.ev.At(), true
}

// NextEvent returns the handle of the ticker's next scheduled fire (the zero
// Event for a stopped ticker), exposing its time and sequence number to
// snapshot capture. Cancelling the handle directly would desynchronize the
// ticker; use Stop instead.
func (t *Ticker) NextEvent() Event {
	if t.done {
		return Event{}
	}
	return t.ev
}

// Stop cancels all future ticks. Stopping twice is a no-op.
func (t *Ticker) Stop() {
	t.done = true
	t.ev.Cancel()
}

// Restart re-arms a stopped ticker to resume at the given absolute time
// with its original period and callback. Restarting a running ticker
// panics: two live arming chains would double-fire every period.
func (t *Ticker) Restart(start Seconds) {
	if !t.done {
		panic("simtime: restart of a running ticker")
	}
	t.done = false
	t.ev = t.engine.Schedule(start, t.fireFn)
}
