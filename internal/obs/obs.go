// Package obs is the simulator's deterministic observability layer: a
// structured event trace plus a metrics registry, both driven purely by
// simulated time. Every subsystem that can emit events holds one nil-able
// Observer; a nil observer is the fast path and costs a single predictable
// branch, so an unobserved run is bit-identical to (and as fast as) a build
// without the package.
//
// Determinism contract: events carry sim-time stamps only, emission order
// is the simulation's own event order, and every exporter iterates in a
// sorted or insertion order — never raw map order. Two runs of the same
// config with fresh observers produce byte-identical trace, CSV, and
// Prometheus files.
package obs

// Observer receives structured simulation events. Implementations must not
// mutate simulation state from Emit and must be deterministic functions of
// the event stream. Emit is called from the simulation goroutine only;
// implementations need no locking unless shared across concurrent runs
// (don't do that — attach one observer per run).
type Observer interface {
	Emit(ev Event)
}

// Kind enumerates the event taxonomy. The numeric order groups kinds by
// subsystem; String returns the stable kebab-case name used by exporters.
type Kind uint8

const (
	// Request lifecycle (core + server).
	KindReqArrive Kind = iota
	KindReqStart
	KindReqComplete
	KindReqDrop
	KindReqRequeue

	// Defense actuations.
	KindDVFSCommand // issued by the scheme in a control slot (core diffs)
	KindFreqChange  // landed on the server (after fault interception)
	KindTokenGrant
	KindTokenDeny
	KindDefenseBridge
	KindDefenseCollateral

	// Battery.
	KindBatteryDischarge
	KindBatteryCharge
	KindBatteryFail
	KindBatteryRepair
	KindBatteryFade

	// Breaker / thermal.
	KindBreakerTrip
	KindBreakerReset
	KindOutageStart
	KindOutageEnd
	KindThermalThrottle

	// Firewall / profiler.
	KindFirewallBan
	KindFirewallDown
	KindFirewallUp
	KindProfilerFlag
	KindProfilerUnflag

	// Infrastructure faults and sensing.
	KindServerCrash
	KindServerRecover
	KindFaultOpen
	KindFaultClose
	KindTelemetry

	// Network conditions (per-link loss/latency/partition windows and the
	// delivery layer's timeout/retry machinery).
	KindNetDelay
	KindNetDrop
	KindNetRetry
	KindNetTimeout
	KindNetPartition
	KindNetHeal

	// Periodic sampling (power + battery SoC).
	KindSample

	// Ground-truth attack-window markers (flood open/close, DOPE start).
	// Emit-only engine events scheduled by core.Start solely when an
	// observer is installed, so trace analyzers can measure detection lag
	// against the moment the attack actually began.
	KindAttackOn
	KindAttackOff

	numKinds int = iota
)

var kindNames = [...]string{
	"req-arrive", "req-start", "req-complete", "req-drop", "req-requeue",
	"dvfs-command", "freq-change", "token-grant", "token-deny",
	"defense-bridge", "defense-collateral",
	"battery-discharge", "battery-charge", "battery-fail",
	"battery-repair", "battery-fade",
	"breaker-trip", "breaker-reset", "outage-start", "outage-end",
	"thermal-throttle",
	"firewall-ban", "firewall-down", "firewall-up",
	"profiler-flag", "profiler-unflag",
	"server-crash", "server-recover", "fault-open", "fault-close",
	"telemetry",
	"net-delay", "net-drop", "net-retry", "net-timeout",
	"net-partition", "net-heal",
	"sample",
	"attack-on", "attack-off",
}

// String returns the stable kebab-case event name.
func (k Kind) String() string {
	if int(k) >= len(kindNames) {
		return "unknown"
	}
	return kindNames[k]
}

// Event is one structured trace record. It is a plain value — emitting one
// never allocates — with a fixed field set reused across kinds:
//
//	T      sim-time of the event, seconds
//	Server server index, or -1 when not server-scoped
//	Class  workload class index, or -1 when not request-scoped
//	ID     request ID, or source ID for firewall/profiler kinds
//	A, B   kind-specific payload (see the emitting subsystem)
//	Label  a static string: class name, drop reason, or fault kind —
//	       always a reference to an existing constant, never built per event
//
// Payload conventions (A, B) by kind:
//
//	req-complete       A=start time, B=sojourn (complete − arrive)
//	req-drop           Label=reason
//	req-requeue        Server=destination of the rescued request
//	dvfs-command       A=freq before the control slot, B=after (GHz)
//	freq-change        A=old freq, B=new freq (GHz)
//	token-grant/deny   A=cost (J), B=bucket level after (J)
//	defense-bridge     A=bridged power (W), B=overshoot (W)
//	defense-collateral A=residual overshoot after suspect throttling (W)
//	battery-discharge  A=delivered power (W), B=state of charge [0,1]
//	battery-charge     A=absorbed power (W), B=state of charge [0,1]
//	battery-fade       A=remaining capacity fraction
//	breaker-trip       A=reset time
//	outage-start       A=reset time
//	thermal-throttle   A=capped freq (GHz), B=hottest node temp (°C)
//	firewall-ban       ID=source, A=ban expiry time
//	profiler-flag      ID=source, A=suspect score (req/s)
//	fault-open/close   Label=fault kind, A=window end/start, B=param
//	telemetry          A=true power (W), B=delivered reading (W)
//	net-delay          Server=link, A=added latency (s), B=attempt
//	net-drop           Server=link, ID=request, B=attempt
//	net-retry          Server=link of the failed attempt (-1 when no route
//	                   existed), ID=request, A=retry time, B=attempt,
//	                   Label=reason
//	net-timeout        Server=link, ID=request, A=timeout (s), B=attempt
//	net-partition      Server=link, A=window end
//	net-heal           Server=link, A=window start
//	sample             A=cluster power (W), B=battery state of charge
//	attack-on          A=scheduled window end, B=rate (req/s, 0 for DOPE),
//	                   Label=attack name
//	attack-off         A=window start, Label=attack name
type Event struct {
	T      float64
	Kind   Kind
	Server int32
	Class  int32
	ID     uint64
	A, B   float64
	Label  string
}
