package obs

import (
	"bufio"
	"io"
	"strconv"
)

// Track (thread) ids inside the single trace process. Servers get
// trackServerBase+index so every server renders as its own row in
// Perfetto, below the subsystem rows.
const (
	trackCore     = 1
	trackDefense  = 2
	trackFirewall = 3
	trackBattery  = 4
	trackFaults   = 5
	trackNetlb    = 6

	trackServerBase = 10
)

// WriteChromeTrace renders the event stream as Chrome trace-event JSON
// ({"traceEvents":[...]}), loadable in Perfetto or chrome://tracing.
// Timestamps are sim-time converted to microseconds with fixed precision,
// so the bytes are a pure function of the event stream.
//
// The mapping is a view, not the archive (the CSV is): per-request
// req-arrive/req-start instants and token-grant events are omitted to keep
// flood traces tractable — completions still render every request as a
// slice on its server's track, and the metrics count what the view omits.
func WriteChromeTrace(w io.Writer, rec *Recorder) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)

	tw := traceWriter{bw: bw}
	tw.meta(`"name":"process_name","ph":"M","pid":1,"args":{"name":"antidope"}`)
	tw.thread(trackCore, "core")
	tw.thread(trackDefense, "defense")
	tw.thread(trackFirewall, "firewall")
	tw.thread(trackBattery, "battery")
	tw.thread(trackFaults, "faults")
	tw.thread(trackNetlb, "netlb")
	maxServer := int32(-1)
	rec.Each(func(ev Event) {
		if ev.Server > maxServer {
			maxServer = ev.Server
		}
	})
	for i := int32(0); i <= maxServer; i++ {
		tw.thread(trackServerBase+int(i), "server "+strconv.Itoa(int(i)))
	}

	rec.Each(tw.event)
	bw.WriteString("]}\n")
	return bw.Flush()
}

type traceWriter struct {
	bw    *bufio.Writer
	wrote bool
}

// meta writes one raw record body wrapped in braces and a leading comma
// when needed.
func (tw *traceWriter) meta(body string) {
	if tw.wrote {
		tw.bw.WriteByte(',')
	}
	tw.wrote = true
	tw.bw.WriteString("{" + body + "}")
}

func (tw *traceWriter) thread(tid int, name string) {
	tw.meta(`"name":"thread_name","ph":"M","pid":1,"tid":` + strconv.Itoa(tid) +
		`,"args":{"name":"` + name + `"},"ts":0`)
}

// usec renders sim-time seconds as trace microseconds with fixed nanosecond
// precision — deterministic bytes, no shortest-form wobble.
func usec(t float64) string {
	return strconv.FormatFloat(t*1e6, 'f', 3, 64)
}

func itoa32(v int32) string { return strconv.Itoa(int(v)) }

func u64(v uint64) string { return strconv.FormatUint(v, 10) }

// instant writes a thread-scoped instant event.
func (tw *traceWriter) instant(name string, tid int, t float64, args string) {
	tw.meta(`"name":"` + name + `","ph":"i","s":"t","pid":1,"tid":` + strconv.Itoa(tid) +
		`,"ts":` + usec(t) + `,"args":{` + args + `}`)
}

// counter writes a counter sample.
func (tw *traceWriter) counter(name string, tid int, t float64, series, value string) {
	tw.meta(`"name":"` + name + `","ph":"C","pid":1,"tid":` + strconv.Itoa(tid) +
		`,"ts":` + usec(t) + `,"args":{"` + series + `":` + value + `}`)
}

// span writes one end of an async window ("b" or "e"); windows may overlap,
// which is why they are async events rather than stack slices.
func (tw *traceWriter) span(name, ph, id string, tid int, t float64, args string) {
	tw.meta(`"cat":"state","name":"` + name + `","ph":"` + ph + `","id":"` + id +
		`","pid":1,"tid":` + strconv.Itoa(tid) + `,"ts":` + usec(t) + `,"args":{` + args + `}`)
}

func (tw *traceWriter) event(ev Event) {
	switch ev.Kind {
	case KindReqArrive, KindReqStart, KindTokenGrant:
		// Archived in the CSV and counted in the metrics; omitted here.
	case KindReqComplete:
		tw.meta(`"name":"` + ev.Label + `","ph":"X","pid":1,"tid":` +
			strconv.Itoa(trackServerBase+int(ev.Server)) +
			`,"ts":` + usec(ev.A) + `,"dur":` + usec(ev.T-ev.A) +
			`,"args":{"id":` + u64(ev.ID) + `,"sojourn_s":` + formatFloat(ev.B) + `}`)
	case KindReqDrop:
		tw.instant("drop:"+ev.Label, trackCore, ev.T, `"id":`+u64(ev.ID))
	case KindReqRequeue:
		tw.instant("requeue", trackServerBase+int(ev.Server), ev.T, `"id":`+u64(ev.ID))
	case KindDVFSCommand:
		tw.instant("dvfs-command", trackDefense, ev.T,
			`"server":`+itoa32(ev.Server)+`,"from_GHz":`+formatFloat(ev.A)+`,"to_GHz":`+formatFloat(ev.B))
	case KindFreqChange:
		tw.counter("freq-GHz.s"+itoa32(ev.Server), trackServerBase+int(ev.Server),
			ev.T, "GHz", formatFloat(ev.B))
	case KindTokenDeny:
		tw.instant("token-deny", trackDefense, ev.T,
			`"id":`+u64(ev.ID)+`,"cost_J":`+formatFloat(ev.A)+`,"level_J":`+formatFloat(ev.B))
	case KindDefenseBridge:
		tw.instant("bridge", trackDefense, ev.T,
			`"bridged_W":`+formatFloat(ev.A)+`,"overshoot_W":`+formatFloat(ev.B))
	case KindDefenseCollateral:
		tw.instant("collateral-throttle", trackDefense, ev.T, `"residual_W":`+formatFloat(ev.A))
	case KindBatteryDischarge:
		tw.counter("battery-W", trackBattery, ev.T, "W", formatFloat(ev.A))
		tw.counter("soc", trackBattery, ev.T, "soc", formatFloat(ev.B))
	case KindBatteryCharge:
		tw.counter("battery-W", trackBattery, ev.T, "W", formatFloat(-ev.A))
		tw.counter("soc", trackBattery, ev.T, "soc", formatFloat(ev.B))
	case KindBatteryFail:
		tw.span("battery-failed", "b", "battery", trackBattery, ev.T, "")
	case KindBatteryRepair:
		tw.span("battery-failed", "e", "battery", trackBattery, ev.T, "")
	case KindBatteryFade:
		tw.instant("battery-fade", trackBattery, ev.T, `"remaining_frac":`+formatFloat(ev.A))
	case KindBreakerTrip:
		tw.instant("breaker-trip", trackCore, ev.T, `"reset_at":`+formatFloat(ev.A))
	case KindBreakerReset:
		tw.instant("breaker-reset", trackCore, ev.T, "")
	case KindOutageStart:
		tw.span("outage", "b", "outage", trackCore, ev.T, "")
	case KindOutageEnd:
		tw.span("outage", "e", "outage", trackCore, ev.T, "")
	case KindThermalThrottle:
		tw.instant("thermal-throttle", trackServerBase+int(ev.Server), ev.T,
			`"GHz":`+formatFloat(ev.A)+`,"tempC":`+formatFloat(ev.B))
	case KindFirewallBan:
		tw.instant("ban", trackFirewall, ev.T,
			`"src":`+u64(ev.ID)+`,"until":`+formatFloat(ev.A))
	case KindFirewallDown:
		tw.span("firewall-down", "b", "firewall", trackFirewall, ev.T, "")
	case KindFirewallUp:
		tw.span("firewall-down", "e", "firewall", trackFirewall, ev.T, "")
	case KindProfilerFlag:
		tw.instant("flag", trackNetlb, ev.T,
			`"src":`+u64(ev.ID)+`,"rate_rps":`+formatFloat(ev.A))
	case KindProfilerUnflag:
		tw.instant("unflag", trackNetlb, ev.T,
			`"src":`+u64(ev.ID)+`,"rate_rps":`+formatFloat(ev.A))
	case KindServerCrash:
		tw.span("crashed", "b", "crash-s"+itoa32(ev.Server),
			trackServerBase+int(ev.Server), ev.T, "")
	case KindServerRecover:
		tw.span("crashed", "e", "crash-s"+itoa32(ev.Server),
			trackServerBase+int(ev.Server), ev.T, "")
	case KindFaultOpen:
		tw.span(ev.Label, "b", ev.Label+"-"+itoa32(ev.Server), trackFaults, ev.T,
			`"server":`+itoa32(ev.Server)+`,"param":`+formatFloat(ev.B))
	case KindFaultClose:
		tw.span(ev.Label, "e", ev.Label+"-"+itoa32(ev.Server), trackFaults, ev.T, "")
	case KindTelemetry:
		tw.counter("telemetry-W", trackFaults, ev.T, "W", formatFloat(ev.B))
	case KindNetDelay:
		tw.instant("net-delay", trackNetlb, ev.T,
			`"server":`+itoa32(ev.Server)+`,"delay_s":`+formatFloat(ev.A))
	case KindNetDrop:
		tw.instant("net-drop", trackNetlb, ev.T,
			`"server":`+itoa32(ev.Server)+`,"id":`+u64(ev.ID))
	case KindNetRetry:
		tw.instant("net-retry", trackNetlb, ev.T,
			`"id":`+u64(ev.ID)+`,"retry_at":`+formatFloat(ev.A)+`,"attempt":`+formatFloat(ev.B))
	case KindNetTimeout:
		tw.instant("net-timeout", trackNetlb, ev.T,
			`"server":`+itoa32(ev.Server)+`,"id":`+u64(ev.ID))
	case KindNetPartition:
		tw.span("net-partition", "b", "part-s"+itoa32(ev.Server), trackNetlb, ev.T,
			`"server":`+itoa32(ev.Server))
	case KindNetHeal:
		tw.span("net-partition", "e", "part-s"+itoa32(ev.Server), trackNetlb, ev.T, "")
	case KindSample:
		tw.counter("power-W", trackCore, ev.T, "W", formatFloat(ev.A))
		tw.counter("soc", trackCore, ev.T, "soc", formatFloat(ev.B))
	case KindAttackOn:
		tw.span("attack:"+ev.Label, "b", "attack-"+ev.Label, trackCore, ev.T,
			`"rate_rps":`+formatFloat(ev.B)+`,"end_s":`+formatFloat(ev.A))
	case KindAttackOff:
		tw.span("attack:"+ev.Label, "e", "attack-"+ev.Label, trackCore, ev.T, "")
	}
}
