package obs

import (
	"encoding/json"
	"fmt"
)

// ValidateChromeTrace checks data against the subset of the Chrome
// trace-event schema this package emits: a {"traceEvents":[...]} object
// whose records all carry a name, a known phase, pid 1, a non-negative
// timestamp (metadata excepted), a non-negative duration on complete
// events, and an id on async begin/end pairs. It is the CI smoke gate for
// exporter drift — a loadable-in-Perfetto sanity check, not a full schema.
func ValidateChromeTrace(data []byte) error {
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("trace is not valid JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("trace has no traceEvents")
	}
	seenNonMeta := false
	for i, raw := range doc.TraceEvents {
		var rec struct {
			Name string   `json:"name"`
			Ph   string   `json:"ph"`
			Pid  int      `json:"pid"`
			Tid  *int     `json:"tid"`
			Ts   *float64 `json:"ts"`
			Dur  *float64 `json:"dur"`
			ID   string   `json:"id"`
		}
		if err := json.Unmarshal(raw, &rec); err != nil {
			return fmt.Errorf("traceEvents[%d]: %w", i, err)
		}
		if rec.Name == "" {
			return fmt.Errorf("traceEvents[%d]: empty name", i)
		}
		if rec.Pid != 1 {
			return fmt.Errorf("traceEvents[%d] %q: pid %d, want 1", i, rec.Name, rec.Pid)
		}
		switch rec.Ph {
		case "M":
			continue
		case "i", "C", "X", "b", "e":
		default:
			return fmt.Errorf("traceEvents[%d] %q: unknown phase %q", i, rec.Name, rec.Ph)
		}
		seenNonMeta = true
		if rec.Ts == nil || *rec.Ts < 0 {
			return fmt.Errorf("traceEvents[%d] %q: missing or negative ts", i, rec.Name)
		}
		if rec.Tid == nil || *rec.Tid <= 0 {
			return fmt.Errorf("traceEvents[%d] %q: missing or non-positive tid", i, rec.Name)
		}
		if rec.Ph == "X" && (rec.Dur == nil || *rec.Dur < 0) {
			return fmt.Errorf("traceEvents[%d] %q: complete event needs dur >= 0", i, rec.Name)
		}
		if (rec.Ph == "b" || rec.Ph == "e") && rec.ID == "" {
			return fmt.Errorf("traceEvents[%d] %q: async event needs an id", i, rec.Name)
		}
	}
	if !seenNonMeta {
		return fmt.Errorf("trace contains only metadata records")
	}
	return nil
}
