package obs

import (
	"encoding/json"
	"fmt"
	"math"
)

// ValidateChromeTrace checks data against the subset of the Chrome
// trace-event schema this package emits: a {"traceEvents":[...]} object
// whose records all carry a name, a known phase, pid 1, a non-negative
// timestamp (metadata excepted), a non-negative duration on complete
// events, and an id on async begin/end pairs. A metadata-only trace is
// valid — an empty capture still declares its process and subsystem
// tracks. It is the CI smoke gate for exporter drift — a
// loadable-in-Perfetto sanity check, not a full schema.
func ValidateChromeTrace(data []byte) error {
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("trace is not valid JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("trace has no traceEvents")
	}
	for i, raw := range doc.TraceEvents {
		var rec struct {
			Name string   `json:"name"`
			Ph   string   `json:"ph"`
			Pid  int      `json:"pid"`
			Tid  *int     `json:"tid"`
			Ts   *float64 `json:"ts"`
			Dur  *float64 `json:"dur"`
			ID   string   `json:"id"`
		}
		if err := json.Unmarshal(raw, &rec); err != nil {
			return fmt.Errorf("traceEvents[%d]: %w", i, err)
		}
		if rec.Name == "" {
			return fmt.Errorf("traceEvents[%d]: empty name", i)
		}
		if rec.Pid != 1 {
			return fmt.Errorf("traceEvents[%d] %q: pid %d, want 1", i, rec.Name, rec.Pid)
		}
		switch rec.Ph {
		case "M":
			continue
		case "i", "C", "X", "b", "e":
		default:
			return fmt.Errorf("traceEvents[%d] %q: unknown phase %q", i, rec.Name, rec.Ph)
		}
		if rec.Ts == nil || *rec.Ts < 0 {
			return fmt.Errorf("traceEvents[%d] %q: missing or negative ts", i, rec.Name)
		}
		if rec.Tid == nil || *rec.Tid <= 0 {
			return fmt.Errorf("traceEvents[%d] %q: missing or non-positive tid", i, rec.Name)
		}
		if rec.Ph == "X" && (rec.Dur == nil || *rec.Dur < 0) {
			return fmt.Errorf("traceEvents[%d] %q: complete event needs dur >= 0", i, rec.Name)
		}
		if (rec.Ph == "b" || rec.Ph == "e") && rec.ID == "" {
			return fmt.Errorf("traceEvents[%d] %q: async event needs an id", i, rec.Name)
		}
	}
	return nil
}

// ValidateTimeline checks data against the antidope-timeline/v1 JSON
// schema WriteJSON emits: the schema tag, a positive finite window width,
// strictly ascending latency bounds, windows whose starts are strictly
// monotone and consistent with index*width, per-window bucket arrays of
// len(bounds)+1 whose counts sum to the window's completions, a
// non-negative histogram sum, and per-link retry rows no longer than the
// window list.
func ValidateTimeline(data []byte) error {
	var doc struct {
		Schema  string    `json:"schema"`
		WindowS float64   `json:"window_s"`
		SLAS    float64   `json:"sla_s"`
		Bounds  []float64 `json:"latency_bounds_s"`
		Windows []struct {
			StartS         float64  `json:"start_s"`
			Completions    uint64   `json:"completions"`
			Samples        uint64   `json:"samples"`
			LatencySumS    float64  `json:"latency_sum_s"`
			LatencyBuckets []uint64 `json:"latency_buckets"`
			PowerMaxW      float64  `json:"power_max_w"`
			PowerMinW      float64  `json:"power_min_w"`
		} `json:"windows"`
		LinkRetries []struct {
			Link    int      `json:"link"`
			Windows []uint64 `json:"windows"`
		} `json:"link_retries"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("timeline is not valid JSON: %w", err)
	}
	if doc.Schema != TimelineSchema {
		return fmt.Errorf("schema %q, want %q", doc.Schema, TimelineSchema)
	}
	if !(doc.WindowS > 0) || math.IsInf(doc.WindowS, 0) {
		return fmt.Errorf("window_s %v: must be positive and finite", doc.WindowS)
	}
	if !(doc.SLAS > 0) {
		return fmt.Errorf("sla_s %v: must be positive", doc.SLAS)
	}
	for i := 1; i < len(doc.Bounds); i++ {
		if !(doc.Bounds[i] > doc.Bounds[i-1]) {
			return fmt.Errorf("latency_bounds_s[%d]: bounds not strictly ascending", i)
		}
	}
	prev := math.Inf(-1)
	for i, w := range doc.Windows {
		if !(w.StartS > prev) {
			return fmt.Errorf("windows[%d]: start_s %v not strictly after previous %v", i, w.StartS, prev)
		}
		want := float64(i) * doc.WindowS
		if math.Abs(w.StartS-want) > doc.WindowS*1e-9 {
			return fmt.Errorf("windows[%d]: start_s %v inconsistent with index*window_s %v", i, w.StartS, want)
		}
		if len(w.LatencyBuckets) != len(doc.Bounds)+1 {
			return fmt.Errorf("windows[%d]: %d latency buckets, want %d",
				i, len(w.LatencyBuckets), len(doc.Bounds)+1)
		}
		if !(w.LatencySumS >= 0) {
			return fmt.Errorf("windows[%d]: latency_sum_s %v negative or NaN", i, w.LatencySumS)
		}
		var n uint64
		for _, c := range w.LatencyBuckets {
			n += c
		}
		if n != w.Completions {
			return fmt.Errorf("windows[%d]: bucket counts sum to %d, completions %d", i, n, w.Completions)
		}
		if w.Samples > 0 && w.PowerMaxW < w.PowerMinW {
			return fmt.Errorf("windows[%d]: power_max_w %v below power_min_w %v", i, w.PowerMaxW, w.PowerMinW)
		}
		prev = w.StartS
	}
	lastLink := -1
	for i, lr := range doc.LinkRetries {
		if lr.Link <= lastLink {
			return fmt.Errorf("link_retries[%d]: link %d not strictly ascending", i, lr.Link)
		}
		if len(lr.Windows) > len(doc.Windows) {
			return fmt.Errorf("link_retries[%d]: %d windows, timeline has %d",
				i, len(lr.Windows), len(doc.Windows))
		}
		lastLink = lr.Link
	}
	return nil
}
