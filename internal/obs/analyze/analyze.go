// Package analyze derives the paper-level temporal signals from a captured
// event stream: detection start-lag (attack window open to first defense
// actuation), peak-overshoot area and longest excursion over the breaker
// limit, the DVFS issued-versus-landed latency distribution, and per-link
// retry-storm windows. The input is the obs event stream — live from a
// Bus's recorder or replayed from a CSV archive — and the analysis is a
// pure function of (events, config), so two runs over the same capture are
// byte-identical all the way to the rendered report.
package analyze

import (
	"math"
	"sort"

	"antidope/internal/obs"
)

// Config parameterizes the analysis.
type Config struct {
	// BreakerLimitW is the power threshold of the overshoot analysis
	// (normally the run's utility budget in watts); <= 0 disables it.
	BreakerLimitW float64
	// WindowSec is the retry-storm window width; <= 0 selects the
	// timeline default (1 s).
	WindowSec float64
	// StormRetries is the per-link per-window retry count at which a
	// window counts as storming; 0 selects the default of 5.
	StormRetries uint64
}

func (c Config) defaults() Config {
	if c.WindowSec <= 0 {
		c.WindowSec = obs.DefaultTimelineWindowSec
	}
	if c.StormRetries == 0 {
		c.StormRetries = 5
	}
	return c
}

// Attack is one ground-truth attack window reconstructed from the
// attack-on/attack-off markers.
type Attack struct {
	Label   string
	Class   int32
	StartS  float64
	EndS    float64 // NaN when the window never closed before the horizon
	RateRPS float64
}

// Detection holds the start-lag signal: the earliest attack start and the
// first actuation of each defense channel at or after it. Absent signals
// are NaN.
type Detection struct {
	AttackStartS float64

	FirstBanS       float64
	FirstFlagS      float64
	FirstDVFSS      float64
	FirstTokenDenyS float64
	FirstBridgeS    float64

	// FirstActuationS is the earliest of the channel firsts; LagS is its
	// distance from AttackStartS.
	FirstActuationS    float64
	FirstActuationKind string
	LagS               float64
}

// Overshoot integrates the sampled power series above the breaker limit:
// total overshoot area (joules), time above the limit, and the excursion
// structure including the longest single excursion.
type Overshoot struct {
	LimitW        float64
	Samples       int
	PeakW         float64
	AreaJ         float64
	OverS         float64
	Excursions    int
	LongestS      float64
	LongestStartS float64
}

// DVFSLatency is the issued-versus-landed distribution: dvfs-command
// events matched against the effective frequency changes that landed their
// target value on the same server.
type DVFSLatency struct {
	Issued  int
	Landed  int
	Pending int

	MinS  float64
	MeanS float64
	P50S  float64
	P95S  float64
	MaxS  float64
}

// Storm is one maximal run of consecutive windows in which a link's retry
// count stayed at or above the configured threshold.
type Storm struct {
	Link    int32
	StartS  float64
	EndS    float64 // exclusive: the end of the last storming window
	Retries uint64
}

// Report bundles every derived signal of one capture.
type Report struct {
	Config Config

	Events     int
	SpanStartS float64
	SpanEndS   float64

	Attacks   []Attack
	Detection Detection
	Overshoot Overshoot
	DVFS      DVFSLatency
	Storms    []Storm
}

// Run analyzes one event stream in insertion (= simulation) order.
func Run(events []obs.Event, cfg Config) *Report {
	cfg = cfg.defaults()
	rep := &Report{
		Config:     cfg,
		Events:     len(events),
		SpanStartS: math.NaN(),
		SpanEndS:   math.NaN(),
	}
	if len(events) > 0 {
		rep.SpanStartS = events[0].T
		rep.SpanEndS = events[len(events)-1].T
	}
	rep.Attacks = attackWindows(events)
	rep.Detection = detection(events, rep.Attacks)
	rep.Overshoot = overshoot(events, cfg.BreakerLimitW)
	rep.DVFS = dvfsLatency(events)
	rep.Storms = storms(events, cfg)
	return rep
}

// attackWindows reconstructs the ground-truth windows from the markers.
// An off marker closes the most recent still-open window with its label.
func attackWindows(events []obs.Event) []Attack {
	var out []Attack
	for _, ev := range events {
		switch ev.Kind {
		case obs.KindAttackOn:
			out = append(out, Attack{
				Label: ev.Label, Class: ev.Class,
				StartS: ev.T, EndS: math.NaN(), RateRPS: ev.B,
			})
		case obs.KindAttackOff:
			for i := len(out) - 1; i >= 0; i-- {
				if out[i].Label == ev.Label && math.IsNaN(out[i].EndS) {
					out[i].EndS = ev.T
					break
				}
			}
		}
	}
	return out
}

// detection computes the start-lag signal. Only actuations at or after the
// earliest attack start count; with no attack markers every first stays
// NaN alongside the undefined lag.
func detection(events []obs.Event, attacks []Attack) Detection {
	d := Detection{
		AttackStartS:    math.NaN(),
		FirstBanS:       math.NaN(),
		FirstFlagS:      math.NaN(),
		FirstDVFSS:      math.NaN(),
		FirstTokenDenyS: math.NaN(),
		FirstBridgeS:    math.NaN(),
		FirstActuationS: math.NaN(),
		LagS:            math.NaN(),
	}
	for _, a := range attacks {
		if math.IsNaN(d.AttackStartS) || a.StartS < d.AttackStartS {
			d.AttackStartS = a.StartS
		}
	}
	if math.IsNaN(d.AttackStartS) {
		return d
	}
	first := func(slot *float64, kind string, t float64) {
		if t < d.AttackStartS || !math.IsNaN(*slot) {
			return
		}
		*slot = t
		if math.IsNaN(d.FirstActuationS) || t < d.FirstActuationS {
			d.FirstActuationS = t
			d.FirstActuationKind = kind
		}
	}
	for _, ev := range events {
		switch ev.Kind {
		case obs.KindFirewallBan:
			first(&d.FirstBanS, "firewall-ban", ev.T)
		case obs.KindProfilerFlag:
			first(&d.FirstFlagS, "profiler-flag", ev.T)
		case obs.KindDVFSCommand:
			first(&d.FirstDVFSS, "dvfs-command", ev.T)
		case obs.KindTokenDeny:
			first(&d.FirstTokenDenyS, "token-deny", ev.T)
		case obs.KindDefenseBridge:
			first(&d.FirstBridgeS, "defense-bridge", ev.T)
		}
	}
	if !math.IsNaN(d.FirstActuationS) {
		d.LagS = d.FirstActuationS - d.AttackStartS
	}
	return d
}

// overshoot step-integrates the sampled power series above the limit: each
// sample's value holds until the next sample, the final sample carries no
// width. An excursion runs from the first over-limit sample to the first
// at-or-under sample after it (or the last sample while still over).
func overshoot(events []obs.Event, limitW float64) Overshoot {
	o := Overshoot{
		LimitW:        limitW,
		PeakW:         math.NaN(),
		LongestStartS: math.NaN(),
	}
	if limitW <= 0 {
		return o
	}
	prevT := math.NaN()
	prevP := math.NaN()
	over := false
	excStart := math.NaN()
	endExcursion := func(at float64) {
		if d := at - excStart; d > o.LongestS {
			o.LongestS = d
			o.LongestStartS = excStart
		}
		over = false
	}
	for _, ev := range events {
		if ev.Kind != obs.KindSample {
			continue
		}
		o.Samples++
		if math.IsNaN(o.PeakW) || ev.A > o.PeakW {
			o.PeakW = ev.A
		}
		if !math.IsNaN(prevT) && prevP > limitW {
			dt := ev.T - prevT
			o.AreaJ += (prevP - limitW) * dt
			o.OverS += dt
		}
		if ev.A > limitW && !over {
			over = true
			excStart = ev.T
			o.Excursions++
		} else if ev.A <= limitW && over {
			endExcursion(ev.T)
		}
		prevT, prevP = ev.T, ev.A
	}
	if over {
		endExcursion(prevT)
	}
	return o
}

// dvfsLatency matches issued commands to landed frequency changes. The
// landed series is first collapsed to effective changes — when several
// freq-change events hit one server at one instant (a scheme decision
// immediately reverted by a fault hook), only the last one is what the
// server actually runs at. Each command then matches the earliest
// unconsumed effective change on its server, at or after the command, that
// lands the commanded target.
func dvfsLatency(events []obs.Event) DVFSLatency {
	type change struct {
		t        float64
		to       float64
		consumed bool
	}
	type issue struct {
		t  float64
		to float64
	}
	issues := map[int32][]issue{}
	changes := map[int32][]change{}
	var servers []int32
	for _, ev := range events {
		switch ev.Kind {
		case obs.KindDVFSCommand:
			if _, ok := issues[ev.Server]; !ok && changes[ev.Server] == nil {
				servers = append(servers, ev.Server)
			}
			issues[ev.Server] = append(issues[ev.Server], issue{t: ev.T, to: ev.B})
		case obs.KindFreqChange:
			if _, ok := issues[ev.Server]; !ok && changes[ev.Server] == nil {
				servers = append(servers, ev.Server)
			}
			cs := changes[ev.Server]
			if n := len(cs); n > 0 && cs[n-1].t == ev.T { //lint:allow floateq -- same-instant collapse: timestamps compare verbatim
				cs[n-1].to = ev.B
			} else {
				cs = append(cs, change{t: ev.T, to: ev.B})
			}
			changes[ev.Server] = cs
		}
	}

	d := DVFSLatency{
		MinS:  math.NaN(),
		MeanS: math.NaN(),
		P50S:  math.NaN(),
		P95S:  math.NaN(),
		MaxS:  math.NaN(),
	}
	var lags []float64
	for _, sv := range servers {
		for _, is := range issues[sv] {
			d.Issued++
			matched := false
			cs := changes[sv]
			for i := range cs {
				c := &cs[i]
				if c.consumed || c.t < is.t {
					continue
				}
				if c.to != is.to { //lint:allow floateq -- ladder values flow verbatim from command to landing
					continue
				}
				c.consumed = true
				lags = append(lags, c.t-is.t)
				matched = true
				break
			}
			if !matched {
				d.Pending++
			}
		}
	}
	d.Landed = len(lags)
	if len(lags) == 0 {
		return d
	}
	sort.Float64s(lags)
	sum := 0.0
	for _, l := range lags {
		sum += l
	}
	d.MinS = lags[0]
	d.MaxS = lags[len(lags)-1]
	d.MeanS = sum / float64(len(lags))
	d.P50S = nearestRank(lags, 0.50)
	d.P95S = nearestRank(lags, 0.95)
	return d
}

// nearestRank is the deterministic nearest-rank percentile of a sorted
// slice.
func nearestRank(sorted []float64, q float64) float64 {
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// storms folds per-link retries into fixed windows and merges consecutive
// windows at or above the threshold into maximal storm runs, ordered by
// link then start.
func storms(events []obs.Event, cfg Config) []Storm {
	tl := obs.NewTimeline(cfg.WindowSec, 0)
	for _, ev := range events {
		if ev.Kind == obs.KindNetRetry {
			tl.Add(ev)
		}
	}
	var out []Storm
	for link, row := range tl.LinkRetries() {
		inStorm := false
		var cur Storm
		flush := func(endWin int) {
			if !inStorm {
				return
			}
			cur.EndS = float64(endWin) * cfg.WindowSec
			out = append(out, cur)
			inStorm = false
		}
		for w, n := range row {
			if n >= cfg.StormRetries {
				if !inStorm {
					inStorm = true
					cur = Storm{Link: int32(link), StartS: float64(w) * cfg.WindowSec}
					cur.Retries = 0
				}
				cur.Retries += n
			} else {
				flush(w)
			}
		}
		flush(len(row))
	}
	return out
}
