package analyze

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"antidope/internal/attack"
	"antidope/internal/cluster"
	"antidope/internal/core"
	"antidope/internal/defense"
	"antidope/internal/faults"
	"antidope/internal/obs"
	"antidope/internal/power"
	"antidope/internal/workload"
)

var update = flag.Bool("update", false, "rewrite the golden report files")

// floodConfig is the flood golden scenario: a tight Low-PB budget under a
// scripted application-layer flood, defended by Anti-DOPE, with a warm
// legitimate pool holding the baseline near the budget (the Figure 18
// recipe, as in the core observability scenario) — the minimal setup where
// detection lag, overshoot, and DVFS latency are all non-empty.
func floodConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Horizon = 90
	cfg.WarmupSec = 5
	cfg.Seed = 0xFA117
	cfg.NormalRPS = 90
	// The default actuation delay (3 slots) is the point of the scenario:
	// Anti-DOPE rides the battery bridge while server power exceeds the
	// utility budget — the overshoot excursion the analyzer integrates —
	// and only then issues DVFS commands, giving the latency distribution
	// real issue-to-landing lags.
	cfg.Cluster.Budget = cluster.LowPB
	cfg.Scheme = defense.NewAntiDope(power.DefaultLadder())
	cfg.Breaker = core.BreakerCfg{Enabled: true, ToleranceSec: 5, RepairSec: 10}
	cfg.Thermal.Enabled = true
	cfg.Attacks = []attack.Spec{{
		Name:     "flood",
		Layer:    attack.ApplicationLayer,
		Class:    workload.VictimClasses()[0],
		RateRPS:  450,
		Agents:   16,
		Start:    15,
		Duration: 45,
	}}
	cfg.ExtraSources = []core.SourceSpec{{
		Source: workload.Source{
			Class: workload.AliNormal, Origin: workload.Legit,
			Rate: workload.ConstRate(360), Sources: 64, FirstSource: 1000,
		},
		RateCap: 360,
	}, {
		Source: workload.Source{
			Class: workload.WordCount, Origin: workload.Legit,
			Rate: workload.ConstRate(25), Sources: 16, FirstSource: 1300,
		},
		RateCap: 25,
	}}
	return cfg
}

// faultConfig layers network and battery faults over the flood scenario so
// the fault-side signals (per-link retry storms) are exercised too.
func faultConfig() core.Config {
	cfg := floodConfig()
	cfg.Faults = &faults.Config{Events: []faults.Event{
		{Kind: faults.NetLoss, At: 20, Duration: 25, Server: 2, Param: 0.5},
		{Kind: faults.NetDelay, At: 45, Duration: 5, Server: 1, Param: 2},
		{Kind: faults.BatteryFailure, At: 40, Duration: 10},
		{Kind: faults.FirewallDown, At: 50, Duration: 10},
	}}
	return cfg
}

// breakerLimitW is the Low-PB utility budget of the default 4-server rack
// (nameplate 400 W x 0.8), the natural overshoot threshold of both goldens.
const breakerLimitW = 320

// capture runs the config under a fresh bus and returns the event stream.
func capture(t testing.TB, cfg core.Config) []obs.Event {
	t.Helper()
	bus := obs.NewBus()
	cfg.Observer = bus
	if _, err := core.RunOnce(cfg); err != nil {
		t.Fatalf("RunOnce: %v", err)
	}
	events := make([]obs.Event, 0, bus.Events().Len())
	bus.Events().Each(func(ev obs.Event) { events = append(events, ev) })
	return events
}

// renderReport analyzes one capture with the golden config.
func renderReport(t testing.TB, events []obs.Event) []byte {
	t.Helper()
	rep := Run(events, Config{BreakerLimitW: breakerLimitW})
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// checkGolden compares got against testdata/<name> (rewriting under
// -update).
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden (re-run with -update if intended)\n--- got ---\n%s--- want ---\n%s",
			name, got, want)
	}
}

// TestFloodReportGolden pins the flood scenario's derived signals —
// detection start-lag and overshoot area above the breaker limit — to the
// golden report, and requires two independent runs to render identically.
func TestFloodReportGolden(t *testing.T) {
	events := capture(t, floodConfig())
	got := renderReport(t, events)
	if again := renderReport(t, capture(t, floodConfig())); !bytes.Equal(got, again) {
		t.Fatal("two independent flood captures render different reports")
	}

	rep := Run(events, Config{BreakerLimitW: breakerLimitW})
	if len(rep.Attacks) == 0 || rep.Attacks[0].Label != "flood" {
		t.Fatalf("flood attack window missing: %+v", rep.Attacks)
	}
	if math.IsNaN(rep.Detection.LagS) || rep.Detection.LagS < 0 {
		t.Errorf("detection lag absent or negative: %+v", rep.Detection)
	}
	if !(rep.Overshoot.AreaJ > 0) || rep.Overshoot.Excursions == 0 {
		t.Errorf("flood must overshoot the %v W limit: %+v", rep.Overshoot.LimitW, rep.Overshoot)
	}
	checkGolden(t, "flood.report.golden", got)
}

// TestFaultReportGolden does the same for the faulted scenario, which must
// additionally surface per-link retry storms from the lossy link.
func TestFaultReportGolden(t *testing.T) {
	events := capture(t, faultConfig())
	got := renderReport(t, events)
	if again := renderReport(t, capture(t, faultConfig())); !bytes.Equal(got, again) {
		t.Fatal("two independent fault captures render different reports")
	}

	rep := Run(events, Config{BreakerLimitW: breakerLimitW})
	if len(rep.Storms) == 0 {
		t.Errorf("lossy link produced no retry storms")
	}
	checkGolden(t, "fault.report.golden", got)
}

// TestReportMatchesCSVRoundTrip replays the capture through the CSV
// archive format and requires the identical report — the property that
// makes cmd/tracereport equivalent to an in-process analysis.
func TestReportMatchesCSVRoundTrip(t *testing.T) {
	cfg := floodConfig()
	bus := obs.NewBus()
	cfg.Observer = bus
	if _, err := core.RunOnce(cfg); err != nil {
		t.Fatal(err)
	}
	var csv bytes.Buffer
	if err := bus.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	replayed, err := obs.ParseCSVEvents(&csv)
	if err != nil {
		t.Fatal(err)
	}
	direct := make([]obs.Event, 0, bus.Events().Len())
	bus.Events().Each(func(ev obs.Event) { direct = append(direct, ev) })

	if !bytes.Equal(renderReport(t, direct), renderReport(t, replayed)) {
		t.Fatal("CSV round-trip changes the report")
	}
}
