package analyze

import (
	"bytes"
	"math"
	"testing"

	"antidope/internal/obs"
)

// TestAttackWindows reconstructs ground truth from markers, including an
// off marker closing the most recent open window with its label and a
// window left open at the horizon.
func TestAttackWindows(t *testing.T) {
	evs := []obs.Event{
		{T: 5, Kind: obs.KindAttackOn, Class: 0, B: 450, Label: "flood"},
		{T: 10, Kind: obs.KindAttackOn, Class: -1, Label: "dope"},
		{T: 50, Kind: obs.KindAttackOff, Label: "flood"},
	}
	rep := Run(evs, Config{})
	if len(rep.Attacks) != 2 {
		t.Fatalf("got %d attacks, want 2", len(rep.Attacks))
	}
	flood, dope := rep.Attacks[0], rep.Attacks[1]
	if flood.Label != "flood" || flood.StartS != 5 || flood.EndS != 50 || flood.RateRPS != 450 { //lint:allow floateq -- marker payloads flow verbatim
		t.Errorf("flood window wrong: %+v", flood)
	}
	if dope.Label != "dope" || !math.IsNaN(dope.EndS) {
		t.Errorf("dope window should stay open: %+v", dope)
	}
}

// TestDetectionLag pins the start-lag rule: only actuations at or after the
// earliest attack start count, and the overall first is the minimum across
// channels.
func TestDetectionLag(t *testing.T) {
	evs := []obs.Event{
		{T: 2, Kind: obs.KindFirewallBan}, // before the attack: ignored
		{T: 5, Kind: obs.KindAttackOn, Label: "flood"},
		{T: 7, Kind: obs.KindDVFSCommand},
		{T: 8, Kind: obs.KindFirewallBan},
		{T: 9, Kind: obs.KindFirewallBan}, // only the first per channel counts
		{T: 12, Kind: obs.KindTokenDeny},
	}
	d := Run(evs, Config{}).Detection
	if d.AttackStartS != 5 { //lint:allow floateq -- marker timestamps flow verbatim
		t.Fatalf("attack start = %v, want 5", d.AttackStartS)
	}
	if d.FirstDVFSS != 7 || d.FirstBanS != 8 || d.FirstTokenDenyS != 12 { //lint:allow floateq -- event timestamps flow verbatim
		t.Errorf("channel firsts wrong: %+v", d)
	}
	if !math.IsNaN(d.FirstFlagS) || !math.IsNaN(d.FirstBridgeS) {
		t.Errorf("absent channels must stay NaN: %+v", d)
	}
	if d.FirstActuationS != 7 || d.FirstActuationKind != "dvfs-command" || d.LagS != 2 { //lint:allow floateq -- exact arithmetic on exact inputs
		t.Errorf("first actuation wrong: %+v", d)
	}
}

func TestDetectionWithoutAttacks(t *testing.T) {
	d := Run([]obs.Event{{T: 1, Kind: obs.KindFirewallBan}}, Config{}).Detection
	if !math.IsNaN(d.AttackStartS) || !math.IsNaN(d.FirstBanS) || !math.IsNaN(d.LagS) {
		t.Fatalf("no-attack capture must leave detection NaN: %+v", d)
	}
}

// TestOvershoot checks the step integration on a hand-computed series:
// samples at t=0..4 of 100, 350, 400, 250, 350 W against a 300 W limit.
func TestOvershoot(t *testing.T) {
	var evs []obs.Event
	for i, p := range []float64{100, 350, 400, 250, 350} {
		evs = append(evs, obs.Event{T: float64(i), Kind: obs.KindSample, A: p})
	}
	o := Run(evs, Config{BreakerLimitW: 300}).Overshoot
	if o.Samples != 5 || o.PeakW != 400 { //lint:allow floateq -- exact fold of exact samples
		t.Fatalf("samples/peak wrong: %+v", o)
	}
	// Area: (350-300)*1 + (400-300)*1 = 150 J; the final 350 has no width.
	if o.AreaJ != 150 || o.OverS != 2 { //lint:allow floateq -- exact arithmetic on exact inputs
		t.Errorf("area/time wrong: %+v", o)
	}
	// Excursions: [1,3) and [4,4] (still open at the last sample).
	if o.Excursions != 2 || o.LongestS != 2 || o.LongestStartS != 1 { //lint:allow floateq -- exact arithmetic on exact inputs
		t.Errorf("excursion structure wrong: %+v", o)
	}
}

func TestOvershootDisabled(t *testing.T) {
	o := Run([]obs.Event{{T: 0, Kind: obs.KindSample, A: 1000}}, Config{}).Overshoot
	if o.LimitW != 0 || o.Samples != 0 || o.AreaJ != 0 {
		t.Fatalf("limit 0 must disable the analysis: %+v", o)
	}
}

// TestDVFSLatency pins the matching rules: FIFO per server, target must
// land, same-instant changes collapse to the last one (fault reverts), and
// unmatched commands count as pending.
func TestDVFSLatency(t *testing.T) {
	evs := []obs.Event{
		{T: 1, Kind: obs.KindDVFSCommand, Server: 0, B: 2.4},
		{T: 3, Kind: obs.KindFreqChange, Server: 0, B: 2.4}, // lands: lag 2
		{T: 5, Kind: obs.KindDVFSCommand, Server: 1, B: 2.0},
		// Same-instant pair on server 1: the scheme's change is immediately
		// reverted by a fault hook — the effective value is the revert, so
		// the command stays pending.
		{T: 6, Kind: obs.KindFreqChange, Server: 1, B: 2.0},
		{T: 6, Kind: obs.KindFreqChange, Server: 1, B: 3.5},
		{T: 7, Kind: obs.KindDVFSCommand, Server: 2, B: 1.5}, // never lands
	}
	v := Run(evs, Config{}).DVFS
	if v.Issued != 3 || v.Landed != 1 || v.Pending != 2 {
		t.Fatalf("issued/landed/pending = %d/%d/%d, want 3/1/2", v.Issued, v.Landed, v.Pending)
	}
	if v.MinS != 2 || v.MaxS != 2 || v.MeanS != 2 || v.P50S != 2 || v.P95S != 2 { //lint:allow floateq -- exact arithmetic on exact inputs
		t.Errorf("single-lag distribution wrong: %+v", v)
	}
}

// TestStorms checks window folding and run merging: link 3 storms across
// two consecutive windows, link 5 stays under threshold.
func TestStorms(t *testing.T) {
	var evs []obs.Event
	emit := func(link int32, t0 float64, n int) {
		for i := 0; i < n; i++ {
			evs = append(evs, obs.Event{T: t0 + float64(i)*0.01, Kind: obs.KindNetRetry, Server: link})
		}
	}
	emit(3, 1.0, 5) // window 1: at threshold
	emit(3, 2.0, 7) // window 2: over
	emit(3, 4.0, 5) // window 4: separate storm after a quiet window
	emit(5, 1.0, 4) // under threshold
	storms := Run(evs, Config{WindowSec: 1, StormRetries: 5}).Storms
	if len(storms) != 2 {
		t.Fatalf("got %d storms, want 2: %+v", len(storms), storms)
	}
	s0 := storms[0]
	if s0.Link != 3 || s0.StartS != 1 || s0.EndS != 3 || s0.Retries != 12 { //lint:allow floateq -- window edges are exact multiples
		t.Errorf("merged storm wrong: %+v", s0)
	}
	s1 := storms[1]
	if s1.Link != 3 || s1.StartS != 4 || s1.EndS != 5 || s1.Retries != 5 { //lint:allow floateq -- window edges are exact multiples
		t.Errorf("second storm wrong: %+v", s1)
	}
}

func TestNearestRank(t *testing.T) {
	s := []float64{1, 2, 3, 4}
	cases := []struct{ q, want float64 }{{0.5, 2}, {0.95, 4}, {0.25, 1}, {1, 4}}
	for _, c := range cases {
		if got := nearestRank(s, c.q); got != c.want { //lint:allow floateq -- picks an element verbatim
			t.Errorf("nearestRank(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

// TestEmptyCaptureReport locks the empty-capture behavior end to end: the
// report renders, is byte-stable, and spells every absent signal "-".
func TestEmptyCaptureReport(t *testing.T) {
	var a, b bytes.Buffer
	if err := Run(nil, Config{}).WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := Run(nil, Config{}).WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("empty report not byte-stable")
	}
	out := a.String()
	for _, want := range []string{"# " + ReportSchema, "events 0", "span_s - -",
		"(none)", "attack_start_s -", "(disabled)"} {
		if !bytes.Contains(a.Bytes(), []byte(want)) {
			t.Errorf("empty report missing %q:\n%s", want, out)
		}
	}
}

// BenchmarkAnalyze measures the full derivation over a synthetic capture of
// ~60k events; registered with benchregress.
func BenchmarkAnalyze(b *testing.B) {
	var evs []obs.Event
	evs = append(evs, obs.Event{T: 10, Kind: obs.KindAttackOn, B: 450, Label: "flood"})
	for i := 0; i < 10000; i++ {
		t0 := 10 + float64(i)*0.005
		evs = append(evs,
			obs.Event{T: t0, Kind: obs.KindReqArrive, ID: uint64(i)},
			obs.Event{T: t0 + 0.1, Kind: obs.KindReqComplete, ID: uint64(i), B: 0.1},
			obs.Event{T: t0, Kind: obs.KindNetRetry, Server: int32(i % 4)},
		)
		if i%100 == 0 {
			evs = append(evs,
				obs.Event{T: t0, Kind: obs.KindSample, A: 300 + float64(i%200)},
				obs.Event{T: t0, Kind: obs.KindDVFSCommand, Server: int32(i % 4), B: 2.4},
				obs.Event{T: t0 + 0.2, Kind: obs.KindFreqChange, Server: int32(i % 4), B: 2.4},
			)
		}
	}
	evs = append(evs, obs.Event{T: 65, Kind: obs.KindAttackOff, Label: "flood"})
	cfg := Config{BreakerLimitW: 350}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(evs, cfg)
	}
}
