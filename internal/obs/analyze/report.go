package analyze

import (
	"bufio"
	"io"
	"math"
	"strconv"

	"antidope/internal/obs"
)

// ReportSchema tags the rendered report's first line; cmd/tracereport's
// golden tests and the CI double-run compare both key on it.
const ReportSchema = "antidope-tracereport/v1"

// num renders a float deterministically, with NaN — the analyzer's
// "signal absent" value — spelled "-".
func num(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return obs.FormatFloat(v)
}

// WriteText renders the report as deterministic plain text: fixed section
// order, fixed key order, shortest round-trip floats, "-" for absent
// signals. Byte-for-byte reproducible for a given capture and config.
func (r *Report) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	line := func(parts ...string) {
		for i, p := range parts {
			if i > 0 {
				bw.WriteByte(' ')
			}
			bw.WriteString(p)
		}
		bw.WriteByte('\n')
	}

	line("#", ReportSchema)
	line("events", strconv.Itoa(r.Events))
	line("span_s", num(r.SpanStartS), num(r.SpanEndS))

	line()
	line("## attacks")
	if len(r.Attacks) == 0 {
		line("(none)")
	}
	for _, a := range r.Attacks {
		line(a.Label,
			"class="+strconv.Itoa(int(a.Class)),
			"start_s="+num(a.StartS),
			"end_s="+num(a.EndS),
			"rate_rps="+num(a.RateRPS))
	}

	line()
	line("## detection")
	d := r.Detection
	line("attack_start_s", num(d.AttackStartS))
	lag := func(t float64) string {
		if math.IsNaN(t) || math.IsNaN(d.AttackStartS) {
			return "-"
		}
		return obs.FormatFloat(t - d.AttackStartS)
	}
	line("first_firewall_ban_s", num(d.FirstBanS), "lag_s", lag(d.FirstBanS))
	line("first_profiler_flag_s", num(d.FirstFlagS), "lag_s", lag(d.FirstFlagS))
	line("first_dvfs_command_s", num(d.FirstDVFSS), "lag_s", lag(d.FirstDVFSS))
	line("first_token_deny_s", num(d.FirstTokenDenyS), "lag_s", lag(d.FirstTokenDenyS))
	line("first_defense_bridge_s", num(d.FirstBridgeS), "lag_s", lag(d.FirstBridgeS))
	kind := d.FirstActuationKind
	if kind == "" {
		kind = "-"
	}
	line("first_actuation_s", num(d.FirstActuationS), "kind", kind, "lag_s", num(d.LagS))

	line()
	line("## overshoot", "limit_w="+num(r.Overshoot.LimitW))
	o := r.Overshoot
	if o.LimitW <= 0 {
		line("(disabled)")
	} else {
		line("samples", strconv.Itoa(o.Samples))
		line("peak_w", num(o.PeakW))
		line("area_j", num(o.AreaJ))
		line("over_s", num(o.OverS))
		line("excursions", strconv.Itoa(o.Excursions))
		line("longest_s", num(o.LongestS), "start_s", num(o.LongestStartS))
	}

	line()
	line("## dvfs")
	v := r.DVFS
	line("issued", strconv.Itoa(v.Issued),
		"landed", strconv.Itoa(v.Landed),
		"pending", strconv.Itoa(v.Pending))
	line("lag_s",
		"min="+num(v.MinS),
		"mean="+num(v.MeanS),
		"p50="+num(v.P50S),
		"p95="+num(v.P95S),
		"max="+num(v.MaxS))

	line()
	line("## retry_storms",
		"window_s="+obs.FormatFloat(r.Config.WindowSec),
		"threshold="+strconv.FormatUint(r.Config.StormRetries, 10))
	if len(r.Storms) == 0 {
		line("(none)")
	}
	for _, s := range r.Storms {
		line("link="+strconv.Itoa(int(s.Link)),
			"start_s="+num(s.StartS),
			"end_s="+num(s.EndS),
			"retries="+strconv.FormatUint(s.Retries, 10))
	}

	return bw.Flush()
}
