package obs

import (
	"bufio"
	"errors"
	"io"
	"sort"
	"strconv"
)

// errNoTimeline reports a timeline export requested from a bus that never
// called EnableTimeline.
var errNoTimeline = errors.New("obs: no timeline attached; call EnableTimeline before the run")

// timelineBuckets is len(latencyBounds)+1 (the +Inf bucket included). It is
// a constant so TimelineWindow is a fixed-size value: growing the window
// slice never drags per-window bucket allocations onto the emit hot path.
// Pinned against latencyBounds by TestTimelineBucketConstant.
const timelineBuckets = 11

// Defaults applied by NewTimeline when the caller passes zero values.
const (
	DefaultTimelineWindowSec = 1.0
	DefaultTimelineSLASec    = 0.25
)

// TimelineSchema is the schema tag of the JSON timeline export.
const TimelineSchema = "antidope-timeline/v1"

// TimelineWindow accumulates one fixed-width sim-time window of the event
// stream. All fields fold deterministically from events in stream order.
type TimelineWindow struct {
	Arrivals      uint64
	Admits        uint64
	Completions   uint64
	Drops         uint64
	Requeues      uint64
	SLAViolations uint64
	DVFSCommands  uint64
	FreqChanges   uint64
	NetRetries    uint64
	NetTimeouts   uint64
	NetDrops      uint64
	Samples       uint64

	// Sojourn histogram of completions inside the window: LatencySum is
	// the sum of sojourns, LatencyBuckets mirrors latencyBounds plus the
	// +Inf bucket (non-cumulative counts).
	LatencySum     float64
	LatencyBuckets [timelineBuckets]uint64

	// Power/SoC from sample events inside the window; valid when
	// Samples > 0.
	PowerLast float64
	PowerMax  float64
	PowerMin  float64
	SoCLast   float64
}

// Timeline folds an event stream into fixed-width sim-time windows. It is
// the bus's deterministic aggregation layer: attach one with
// Bus.EnableTimeline for online folding during a run, or replay a captured
// stream through Add to rebuild the identical timeline offline — the fold
// is a pure function of (events, width, SLA), so both paths produce
// byte-identical exports.
//
// Window i covers [i*width, (i+1)*width); an event exactly on an edge lands
// in the higher window (floor semantics of IEEE division, pinned by
// TestTimelineWindowEdges). Windows materialize lazily up to the highest
// index seen, so the memory cost is horizon/width fixed-size values.
type Timeline struct {
	width float64
	sla   float64

	windows []TimelineWindow

	// linkRetries[link] counts net-retry events whose failed attempt
	// targeted that link, per window (grown in lockstep with windows).
	// Retries with no routable link (Server < 0) count only in the
	// window's NetRetries total.
	linkRetries [][]uint64
}

// NewTimeline builds a timeline with the given window width and SLA bound
// in seconds; zero or negative values select the defaults.
func NewTimeline(widthSec, slaSec float64) *Timeline {
	if widthSec <= 0 {
		widthSec = DefaultTimelineWindowSec
	}
	if slaSec <= 0 {
		slaSec = DefaultTimelineSLASec
	}
	return &Timeline{width: widthSec, sla: slaSec}
}

// WindowSec returns the configured window width in seconds.
func (tl *Timeline) WindowSec() float64 { return tl.width }

// SLASec returns the configured SLA bound in seconds.
func (tl *Timeline) SLASec() float64 { return tl.sla }

// Windows exposes the materialized windows; index i covers
// [i*WindowSec, (i+1)*WindowSec).
func (tl *Timeline) Windows() []TimelineWindow { return tl.windows }

// LinkRetries exposes the per-link retry counts, indexed [link][window].
// Links that never retried have a nil row.
func (tl *Timeline) LinkRetries() [][]uint64 { return tl.linkRetries }

// WindowIndex maps a sim-time to its window index (floor of t/width,
// clamped at zero for defensive negative stamps).
func (tl *Timeline) WindowIndex(t float64) int {
	i := int(t / tl.width)
	if i < 0 {
		i = 0
	}
	return i
}

// Reset discards all accumulated windows but keeps their storage, so the
// next run folds into already-allocated memory.
func (tl *Timeline) Reset() {
	clear(tl.windows)
	tl.windows = tl.windows[:0]
	for i := range tl.linkRetries {
		clear(tl.linkRetries[i])
		tl.linkRetries[i] = tl.linkRetries[i][:0]
	}
}

// at returns the window holding sim-time t, materializing windows up to it.
//
//hot:allocfree
func (tl *Timeline) at(t float64) *TimelineWindow {
	i := tl.WindowIndex(t)
	for len(tl.windows) <= i {
		tl.windows = append(tl.windows, TimelineWindow{}) //lint:allow hotalloc -- amortized window growth; steady state appends into spare capacity
	}
	return &tl.windows[i]
}

// Add folds one event into its window. The switch mirrors Bus.Emit's
// metric fold; kinds without a temporal aggregate fall through untouched.
//
//hot:allocfree
func (tl *Timeline) Add(ev Event) {
	w := tl.at(ev.T)
	switch ev.Kind {
	case KindReqArrive:
		w.Arrivals++
	case KindReqStart:
		w.Admits++
	case KindReqComplete:
		w.Completions++
		w.LatencySum += ev.B
		w.LatencyBuckets[sort.SearchFloat64s(latencyBounds, ev.B)]++
		if ev.B > tl.sla {
			w.SLAViolations++
		}
	case KindReqDrop:
		w.Drops++
	case KindReqRequeue:
		w.Requeues++
	case KindDVFSCommand:
		w.DVFSCommands++
	case KindFreqChange:
		w.FreqChanges++
	case KindNetRetry:
		w.NetRetries++
		if ev.Server >= 0 {
			tl.linkRetry(int(ev.Server), tl.WindowIndex(ev.T))
		}
	case KindNetTimeout:
		w.NetTimeouts++
	case KindNetDrop:
		w.NetDrops++
	case KindSample:
		if w.Samples == 0 || ev.A > w.PowerMax {
			w.PowerMax = ev.A
		}
		if w.Samples == 0 || ev.A < w.PowerMin {
			w.PowerMin = ev.A
		}
		w.PowerLast = ev.A
		w.SoCLast = ev.B
		w.Samples++
	}
}

// linkRetry bumps the per-link retry count for one window, growing the
// lazily materialized rows as needed.
//
//hot:allocfree
func (tl *Timeline) linkRetry(link, win int) {
	for len(tl.linkRetries) <= link {
		tl.linkRetries = append(tl.linkRetries, nil) //lint:allow hotalloc -- amortized per-link row growth, bounded by cluster size
	}
	row := tl.linkRetries[link]
	for len(row) <= win {
		row = append(row, 0) //lint:allow hotalloc -- amortized per-window growth; steady state appends into spare capacity
	}
	row[win]++
	tl.linkRetries[link] = row
}

// WriteJSON renders the timeline as a byte-reproducible JSON document
// (schema antidope-timeline/v1). All floats use the shortest round-trip
// form; field order is fixed; map iteration is never involved.
func (tl *Timeline) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	bw.WriteString(`{"schema":"` + TimelineSchema + `"`)
	bw.WriteString(`,"window_s":` + formatFloat(tl.width))
	bw.WriteString(`,"sla_s":` + formatFloat(tl.sla))
	bw.WriteString(`,"latency_bounds_s":[`)
	for i, b := range latencyBounds {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(formatFloat(b))
	}
	bw.WriteString(`],"windows":[`)
	for i := range tl.windows {
		if i > 0 {
			bw.WriteByte(',')
		}
		tl.writeWindowJSON(bw, i)
	}
	bw.WriteString(`],"link_retries":[`)
	first := true
	for link, row := range tl.linkRetries {
		if len(row) == 0 {
			continue
		}
		if !first {
			bw.WriteByte(',')
		}
		first = false
		bw.WriteString(`{"link":` + strconv.Itoa(link) + `,"windows":[`)
		for i, n := range row {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(strconv.FormatUint(n, 10))
		}
		bw.WriteString(`]}`)
	}
	bw.WriteString("]}\n")
	return bw.Flush()
}

func (tl *Timeline) writeWindowJSON(bw *bufio.Writer, i int) {
	w := &tl.windows[i]
	u := func(key string, v uint64) {
		bw.WriteString(`,"` + key + `":` + strconv.FormatUint(v, 10))
	}
	bw.WriteString(`{"start_s":` + formatFloat(float64(i)*tl.width))
	u("arrivals", w.Arrivals)
	u("admits", w.Admits)
	u("completions", w.Completions)
	u("drops", w.Drops)
	u("requeues", w.Requeues)
	u("sla_violations", w.SLAViolations)
	u("dvfs_commands", w.DVFSCommands)
	u("freq_changes", w.FreqChanges)
	u("net_retries", w.NetRetries)
	u("net_timeouts", w.NetTimeouts)
	u("net_drops", w.NetDrops)
	u("samples", w.Samples)
	bw.WriteString(`,"latency_sum_s":` + formatFloat(w.LatencySum))
	bw.WriteString(`,"latency_buckets":[`)
	for j, n := range w.LatencyBuckets {
		if j > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(strconv.FormatUint(n, 10))
	}
	bw.WriteString(`]`)
	bw.WriteString(`,"power_last_w":` + formatFloat(w.PowerLast))
	bw.WriteString(`,"power_max_w":` + formatFloat(w.PowerMax))
	bw.WriteString(`,"power_min_w":` + formatFloat(w.PowerMin))
	bw.WriteString(`,"soc_last":` + formatFloat(w.SoCLast))
	bw.WriteByte('}')
}

// timelineCSVHeader is the fixed column set of the CSV export. The
// per-bucket histogram and per-link retry matrix live only in the JSON
// archive; the CSV is the flat plot-ready view.
const timelineCSVHeader = "window,start_s,arrivals,admits,completions,drops,requeues," +
	"sla_violations,dvfs_commands,freq_changes,net_retries,net_timeouts," +
	"net_drops,samples,latency_sum_s,power_last_w,power_max_w,power_min_w,soc_last"

// WriteCSV renders one row per window with a fixed header.
func (tl *Timeline) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	bw.WriteString(timelineCSVHeader + "\n")
	for i := range tl.windows {
		win := &tl.windows[i]
		bw.WriteString(strconv.Itoa(i))
		bw.WriteByte(',')
		bw.WriteString(formatFloat(float64(i) * tl.width))
		for _, v := range []uint64{
			win.Arrivals, win.Admits, win.Completions, win.Drops,
			win.Requeues, win.SLAViolations, win.DVFSCommands,
			win.FreqChanges, win.NetRetries, win.NetTimeouts,
			win.NetDrops, win.Samples,
		} {
			bw.WriteByte(',')
			bw.WriteString(strconv.FormatUint(v, 10))
		}
		for _, f := range []float64{
			win.LatencySum, win.PowerLast, win.PowerMax, win.PowerMin, win.SoCLast,
		} {
			bw.WriteByte(',')
			bw.WriteString(formatFloat(f))
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}
