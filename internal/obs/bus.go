package obs

import "io"

// latencyBounds are the request-sojourn histogram buckets in seconds,
// bracketing the paper's 250 ms SLA from both sides.
var latencyBounds = []float64{
	0.010, 0.025, 0.050, 0.100, 0.250, 0.500, 1, 2.5, 5, 10,
}

// Bus is the standard Observer: it records every event and folds the
// stream into a metrics registry as it goes. One Bus serves one run at a
// time; BeginRun resets it so a harness retry (or a deliberate rerun)
// starts clean while reusing the recorder's pooled chunks.
type Bus struct {
	rec Recorder
	reg *Registry

	// Pre-resolved metric handles so Emit never does a map lookup for the
	// fixed taxonomy; only per-reason drop counters go through dropReason.
	events       *Counter
	arrivals     *Counter
	starts       *Counter
	completions  *Counter
	drops        *Counter
	requeues     *Counter
	latency      *Histogram
	dvfsCommands *Counter
	freqChanges  *Counter
	tokenGrants  *Counter
	tokenDenies  *Counter
	bridgeSlots  *Counter
	bridgePeakW  *Gauge
	collateral   *Counter
	socGauge     *Gauge
	batteryFails *Counter
	batteryFades *Counter
	trips        *Counter
	throttles    *Counter
	bans         *Counter
	fwDown       *Counter
	flags        *Counter
	unflags      *Counter
	crashes      *Counter
	recoveries   *Counter
	faultOpens   *Counter
	telemetryBad *Counter
	netDrops     *Counter
	netRetries   *Counter
	netTimeouts  *Counter
	netParts     *Counter
	powerGauge   *Gauge
	powerPeak    *Gauge

	dropReason map[string]*Counter

	// tl is the optional sim-time timeline aggregation; nil (the default)
	// keeps Emit's fold exactly as cheap as before EnableTimeline existed.
	tl *Timeline
}

// NewBus builds a Bus with the fixed metric taxonomy registered.
func NewBus() *Bus {
	reg := NewRegistry()
	return &Bus{
		reg:          reg,
		events:       reg.Counter("obs_events_total", "structured events recorded"),
		arrivals:     reg.Counter("core_requests_arrived_total", "requests entering admission"),
		starts:       reg.Counter("server_requests_started_total", "requests admitted to a server"),
		completions:  reg.Counter("server_requests_completed_total", "requests finished"),
		drops:        reg.Counter("core_drops_total", "requests dropped, all reasons"),
		requeues:     reg.Counter("core_crash_requeues_total", "crash orphans rescued to another server"),
		latency:      reg.Histogram("core_latency_seconds", "request sojourn time", latencyBounds),
		dvfsCommands: reg.Counter("defense_dvfs_commands_total", "per-server frequency changes issued in control slots"),
		freqChanges:  reg.Counter("server_freq_changes_total", "frequency changes landed on servers"),
		tokenGrants:  reg.Counter("netlb_token_grants_total", "power-token admissions"),
		tokenDenies:  reg.Counter("netlb_token_denies_total", "power-token refusals"),
		bridgeSlots:  reg.Counter("defense_bridge_slots_total", "control slots bridged by the battery"),
		bridgePeakW:  reg.Gauge("defense_bridge_watts_peak", "largest battery bridge in one slot"),
		collateral:   reg.Counter("defense_collateral_slots_total", "control slots that throttled innocents"),
		socGauge:     reg.Gauge("battery_soc", "battery state of charge, last observed"),
		batteryFails: reg.Counter("battery_failures_total", "UPS string failures"),
		batteryFades: reg.Counter("battery_fades_total", "battery capacity fade events"),
		trips:        reg.Counter("core_breaker_trips_total", "branch breaker trips"),
		throttles:    reg.Counter("core_thermal_throttles_total", "thermal frequency caps applied"),
		bans:         reg.Counter("firewall_bans_total", "sources banned"),
		fwDown:       reg.Counter("firewall_down_windows_total", "fail-open firewall windows"),
		flags:        reg.Counter("netlb_profiler_flags_total", "sources flagged suspect"),
		unflags:      reg.Counter("netlb_profiler_unflags_total", "sources unflagged"),
		crashes:      reg.Counter("server_crashes_total", "server crash windows opened"),
		recoveries:   reg.Counter("server_recoveries_total", "server recoveries"),
		faultOpens:   reg.Counter("faults_windows_total", "fault windows opened"),
		telemetryBad: reg.Counter("faults_telemetry_corrupted_total", "sensor samples altered by a fault window"),
		netDrops:     reg.Counter("net_drops_total", "deliveries lost on a lossy link"),
		netRetries:   reg.Counter("net_retries_total", "delivery retries scheduled"),
		netTimeouts:  reg.Counter("net_timeouts_total", "deliveries abandoned by the sender's timeout"),
		netParts:     reg.Counter("net_partitions_total", "link partition windows opened"),
		powerGauge:   reg.Gauge("core_power_watts", "cluster power, last sample"),
		powerPeak:    reg.Gauge("core_power_watts_peak", "cluster power, largest sample"),
		dropReason:   make(map[string]*Counter),
	}
}

// Emit records the event and updates the derived metrics.
//
//hot:allocfree
func (b *Bus) Emit(ev Event) {
	b.rec.Record(ev)
	b.events.Inc()
	switch ev.Kind {
	case KindReqArrive:
		b.arrivals.Inc()
	case KindReqStart:
		b.starts.Inc()
	case KindReqComplete:
		b.completions.Inc()
		b.latency.Observe(ev.B)
	case KindReqDrop:
		b.drops.Inc()
		b.dropCounter(ev.Label).Inc()
	case KindReqRequeue:
		b.requeues.Inc()
	case KindDVFSCommand:
		b.dvfsCommands.Inc()
	case KindFreqChange:
		b.freqChanges.Inc()
	case KindTokenGrant:
		b.tokenGrants.Inc()
	case KindTokenDeny:
		b.tokenDenies.Inc()
	case KindDefenseBridge:
		b.bridgeSlots.Inc()
		b.bridgePeakW.SetMax(ev.A)
	case KindDefenseCollateral:
		b.collateral.Inc()
	case KindBatteryDischarge, KindBatteryCharge:
		b.socGauge.Set(ev.B)
	case KindBatteryFail:
		b.batteryFails.Inc()
	case KindBatteryFade:
		b.batteryFades.Inc()
	case KindBreakerTrip:
		b.trips.Inc()
	case KindThermalThrottle:
		b.throttles.Inc()
	case KindFirewallBan:
		b.bans.Inc()
	case KindFirewallDown:
		b.fwDown.Inc()
	case KindProfilerFlag:
		b.flags.Inc()
	case KindProfilerUnflag:
		b.unflags.Inc()
	case KindServerCrash:
		b.crashes.Inc()
	case KindServerRecover:
		b.recoveries.Inc()
	case KindFaultOpen:
		b.faultOpens.Inc()
	case KindTelemetry:
		b.telemetryBad.Inc()
	case KindNetDrop:
		b.netDrops.Inc()
	case KindNetRetry:
		b.netRetries.Inc()
	case KindNetTimeout:
		b.netTimeouts.Inc()
	case KindNetPartition:
		b.netParts.Inc()
	case KindSample:
		b.powerGauge.Set(ev.A)
		b.powerPeak.SetMax(ev.A)
		b.socGauge.Set(ev.B)
	}
	if b.tl != nil {
		b.tl.Add(ev)
	}
}

// EnableTimeline attaches a sim-time timeline aggregation to the bus (see
// Timeline); zero arguments select the defaults. Every subsequent Emit
// folds into it, BeginRun resets it alongside recorder and registry. Call
// before the run starts; the fold is online-only, events emitted earlier
// are not replayed.
func (b *Bus) EnableTimeline(widthSec, slaSec float64) *Timeline {
	b.tl = NewTimeline(widthSec, slaSec)
	return b.tl
}

// Timeline returns the attached timeline, or nil when EnableTimeline was
// never called.
func (b *Bus) Timeline() *Timeline { return b.tl }

// dropCounter returns the per-reason drop counter, building the metric
// name only on the reason's first occurrence.
func (b *Bus) dropCounter(reason string) *Counter {
	if c, ok := b.dropReason[reason]; ok {
		return c
	}
	c := b.reg.Counter("core_drops_"+sanitizeMetric(reason)+"_total",
		"requests dropped: "+reason)
	b.dropReason[reason] = c
	return c
}

// sanitizeMetric maps an arbitrary static label into the Prometheus metric
// name alphabet: ASCII letters lowercase, every other byte (including each
// byte of a multi-byte rune) becomes '_', a leading digit gains a '_'
// prefix, and the empty string maps to "_" so the result is always a valid
// name fragment.
func sanitizeMetric(s string) string {
	if s == "" {
		return "_"
	}
	out := []byte(s)
	for i, ch := range out {
		switch {
		case ch >= 'a' && ch <= 'z', ch >= '0' && ch <= '9', ch == '_':
		case ch >= 'A' && ch <= 'Z':
			out[i] = ch - 'A' + 'a'
		default:
			out[i] = '_'
		}
	}
	if out[0] >= '0' && out[0] <= '9' {
		return "_" + string(out)
	}
	return string(out)
}

// BeginRun resets the bus for a fresh run: the recorder keeps its pooled
// chunks, the registry keeps its registrations, all values return to zero.
// core.Run calls this on any observer that provides it, so a harness retry
// leaves only the final attempt's trace behind.
func (b *Bus) BeginRun() {
	b.rec.Reset()
	b.reg.Reset()
	if b.tl != nil {
		b.tl.Reset()
	}
}

// Events exposes the recorded stream for exporters.
func (b *Bus) Events() *Recorder { return &b.rec }

// Metrics exposes the registry for exporters.
func (b *Bus) Metrics() *Registry { return b.reg }

// WriteChromeTrace renders the recorded events as Chrome trace-event JSON.
func (b *Bus) WriteChromeTrace(w io.Writer) error { return WriteChromeTrace(w, &b.rec) }

// WriteCSV renders the recorded events as CSV.
func (b *Bus) WriteCSV(w io.Writer) error { return WriteCSV(w, &b.rec) }

// WritePrometheus renders the metrics in Prometheus text format.
func (b *Bus) WritePrometheus(w io.Writer) error { return b.reg.WritePrometheus(w) }

// WriteTimelineJSON renders the attached timeline as JSON; it is an error
// to call without EnableTimeline.
func (b *Bus) WriteTimelineJSON(w io.Writer) error {
	if b.tl == nil {
		return errNoTimeline
	}
	return b.tl.WriteJSON(w)
}

// WriteTimelineCSV renders the attached timeline as CSV; it is an error to
// call without EnableTimeline.
func (b *Bus) WriteTimelineCSV(w io.Writer) error {
	if b.tl == nil {
		return errNoTimeline
	}
	return b.tl.WriteCSV(w)
}
