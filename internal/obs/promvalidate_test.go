package obs

import (
	"bytes"
	"testing"
)

// TestValidatePrometheusAcceptsRegistryOutput closes the loop between the
// renderer and the conformance validator: whatever WritePrometheus emits —
// including an empty registry and a full bus fold — must validate.
func TestValidatePrometheusAcceptsRegistryOutput(t *testing.T) {
	check := func(name string, reg *Registry) {
		var buf bytes.Buffer
		if err := reg.WritePrometheus(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := ValidatePrometheus(buf.Bytes()); err != nil {
			t.Errorf("%s: rendered registry fails validation: %v\n%s", name, err, buf.String())
		}
	}

	check("empty registry", NewRegistry())

	reg := NewRegistry()
	reg.Counter("a_total", "a counter").Add(2)
	reg.Gauge("b_gauge", "a gauge").Set(-1.5)
	h := reg.Histogram("c_seconds", "a histogram", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(5)
	check("mixed registry", reg)

	b := NewBus()
	for _, ev := range sampleEvents() {
		b.Emit(ev)
	}
	check("bus fold", b.Metrics())

	// A fresh bus is the empty-capture case: registrations exist with
	// all-zero values, and that scrape must still conform.
	check("fresh bus", NewBus().Metrics())
}

func TestValidatePrometheusRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"sample without type":          "x_total 1\n",
		"type without help":            "# TYPE x_total counter\nx_total 1\n",
		"counter without total suffix": "# HELP x a\n# TYPE x counter\nx 1\n",
		"negative counter":             "# HELP x_total a\n# TYPE x_total counter\nx_total -1\n",
		"NaN counter":                  "# HELP x_total a\n# TYPE x_total counter\nx_total NaN\n",
		"duplicate help":               "# HELP g a\n# HELP g a\n# TYPE g gauge\ng 1\n",
		"duplicate type":               "# HELP g a\n# TYPE g gauge\n# TYPE g gauge\ng 1\n",
		"help after samples":           "# HELP g a\n# TYPE g gauge\ng 1\n# HELP g a\n",
		"unknown type":                 "# HELP g a\n# TYPE g summary\ng 1\n",
		"declared never sampled":       "# HELP g a\n# TYPE g gauge\n",
		"help without type":            "# HELP g a\n",
		"bad metric name":              "# HELP 9g a\n# TYPE 9g gauge\n9g 1\n",
		"sample without value":         "# HELP g a\n# TYPE g gauge\ng\n",
		"bad value":                    "# HELP g a\n# TYPE g gauge\ng one\n",
		"bucket without le": "# HELP h a\n# TYPE h histogram\n" +
			`h_bucket{x="1"} 1` + "\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n",
		"non-cumulative buckets": "# HELP h a\n# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n",
		"bucket after inf": "# HELP h a\n# TYPE h histogram\n" +
			"h_bucket{le=\"+Inf\"} 1\nh_bucket{le=\"2\"} 1\nh_sum 1\nh_count 1\n",
		"count disagrees with inf": "# HELP h a\n# TYPE h histogram\n" +
			"h_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 1\n",
		"count before inf": "# HELP h a\n# TYPE h histogram\n" +
			"h_count 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\n",
		"bare histogram sample": "# HELP h a\n# TYPE h histogram\n" +
			"h 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n",
		"incomplete histogram": "# HELP h a\n# TYPE h histogram\n" +
			"h_bucket{le=\"+Inf\"} 1\nh_sum 1\n",
		"unterminated labels": "# HELP g a\n# TYPE g gauge\ng{x=\"1\" 1\n",
	}
	for name, data := range cases {
		if err := ValidatePrometheus([]byte(data)); err == nil {
			t.Errorf("%s: validation unexpectedly passed", name)
		}
	}
}

func TestValidatePrometheusAcceptsForeignComments(t *testing.T) {
	data := "# scraped by test\n# HELP g a gauge\n# TYPE g gauge\ng 1.5\n"
	if err := ValidatePrometheus([]byte(data)); err != nil {
		t.Fatalf("comment line rejected: %v", err)
	}
}
