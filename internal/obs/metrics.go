package obs

import (
	"bufio"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Counter is a monotonically increasing count.
type Counter struct{ v uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Gauge is a last-written value.
type Gauge struct{ v float64 }

// Set overwrites the value.
func (g *Gauge) Set(v float64) { g.v = v }

// SetMax keeps the running maximum of everything Set or SetMax saw.
func (g *Gauge) SetMax(v float64) {
	if v > g.v {
		g.v = v
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// Histogram counts observations into fixed upper-bound buckets (plus an
// implicit +Inf bucket) and tracks sum and count, mirroring the Prometheus
// histogram model.
type Histogram struct {
	bounds []float64 // ascending upper bounds, exclusive of +Inf
	counts []uint64  // len(bounds)+1; last is the +Inf bucket
	sum    float64
	count  uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.count++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return h.sum }

// metric is one registered name with its kind-specific payload.
type metric struct {
	help string
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry is a deterministic metrics store: metrics are registered
// get-or-create by name, values accumulate during a run, and WritePrometheus
// renders them in sorted-name order. No wall time, no labels, no map-order
// dependence anywhere.
type Registry struct {
	metrics map[string]*metric
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// Counter returns the counter registered under name, creating it on first
// use. Registering the same name as a different metric kind panics: names
// are a flat, typed namespace. Counter names must carry the Prometheus
// `_total` suffix — exposition conformance is enforced at registration, not
// left to the exporter.
func (r *Registry) Counter(name, help string) *Counter {
	if !strings.HasSuffix(name, "_total") {
		panic("obs: counter " + name + " must end in _total")
	}
	m := r.get(name, help)
	if m.c == nil {
		if m.g != nil || m.h != nil {
			panic("obs: metric " + name + " already registered with another kind")
		}
		m.c = &Counter{}
	}
	return m.c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.get(name, help)
	if m.g == nil {
		if m.c != nil || m.h != nil {
			panic("obs: metric " + name + " already registered with another kind")
		}
		m.g = &Gauge{}
	}
	return m.g
}

// Histogram returns the histogram registered under name, creating it with
// the given ascending upper bounds on first use (later calls ignore bounds).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	m := r.get(name, help)
	if m.h == nil {
		if m.c != nil || m.g != nil {
			panic("obs: metric " + name + " already registered with another kind")
		}
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		m.h = &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
	}
	return m.h
}

func (r *Registry) get(name, help string) *metric {
	if m, ok := r.metrics[name]; ok {
		return m
	}
	m := &metric{help: help}
	r.metrics[name] = m
	return m
}

// Reset zeroes every registered value but keeps the registrations, so a
// rerun under the same observer starts from a clean, identical namespace.
func (r *Registry) Reset() {
	for _, m := range r.metrics { // values only; order-independent
		if m.c != nil {
			m.c.v = 0
		}
		if m.g != nil {
			m.g.v = 0
		}
		if m.h != nil {
			for i := range m.h.counts {
				m.h.counts[i] = 0
			}
			m.h.sum = 0
			m.h.count = 0
		}
	}
}

// WritePrometheus renders every metric in Prometheus text exposition
// format, in sorted-name order. Every metric gets a # HELP and a # TYPE
// line — scrapers and the conformance validator may rely on both.
func (r *Registry) WritePrometheus(w io.Writer) error {
	names := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	sort.Strings(names)

	bw := bufio.NewWriter(w)
	for _, name := range names {
		m := r.metrics[name]
		if m.help != "" {
			bw.WriteString("# HELP " + name + " " + m.help + "\n")
		} else {
			bw.WriteString("# HELP " + name + "\n")
		}
		switch {
		case m.c != nil:
			bw.WriteString("# TYPE " + name + " counter\n")
			bw.WriteString(name + " " + strconv.FormatUint(m.c.v, 10) + "\n")
		case m.g != nil:
			bw.WriteString("# TYPE " + name + " gauge\n")
			bw.WriteString(name + " " + formatFloat(m.g.v) + "\n")
		case m.h != nil:
			bw.WriteString("# TYPE " + name + " histogram\n")
			cum := uint64(0)
			for i, ub := range m.h.bounds {
				cum += m.h.counts[i]
				bw.WriteString(name + `_bucket{le="` + formatFloat(ub) + `"} ` +
					strconv.FormatUint(cum, 10) + "\n")
			}
			cum += m.h.counts[len(m.h.bounds)]
			bw.WriteString(name + `_bucket{le="+Inf"} ` + strconv.FormatUint(cum, 10) + "\n")
			bw.WriteString(name + "_sum " + formatFloat(m.h.sum) + "\n")
			bw.WriteString(name + "_count " + strconv.FormatUint(m.h.count, 10) + "\n")
		}
	}
	return bw.Flush()
}

// FormatFloat renders a float deterministically: shortest round-trip form,
// with non-finite values spelled the Prometheus way. Exported for the
// byte-reproducible exporters layered on top of this package
// (internal/obs/analyze, cmd/tracereport).
func FormatFloat(v float64) string { return formatFloat(v) }

// formatFloat renders a float deterministically: shortest round-trip form,
// with non-finite values spelled the Prometheus way.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
