package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestKindStrings(t *testing.T) {
	if len(kindNames) != numKinds {
		t.Fatalf("kindNames has %d entries, want %d", len(kindNames), numKinds)
	}
	seen := map[string]bool{}
	for k := 0; k < numKinds; k++ {
		name := Kind(k).String()
		if name == "" || name == "unknown" {
			t.Errorf("Kind(%d) has no name", k)
		}
		if seen[name] {
			t.Errorf("Kind(%d) name %q duplicated", k, name)
		}
		seen[name] = true
	}
	if got := Kind(200).String(); got != "unknown" {
		t.Errorf("out-of-range kind String = %q, want unknown", got)
	}
}

func TestRecorderOrderAndReset(t *testing.T) {
	var r Recorder
	const n = 3*chunkEvents + 17 // cross chunk boundaries
	for i := 0; i < n; i++ {
		r.Record(Event{ID: uint64(i)})
	}
	if r.Len() != n {
		t.Fatalf("Len = %d, want %d", r.Len(), n)
	}
	next := uint64(0)
	r.Each(func(ev Event) {
		if ev.ID != next {
			t.Fatalf("event %d out of order: got ID %d", next, ev.ID)
		}
		next++
	})

	r.Reset()
	if r.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", r.Len())
	}
	count := 0
	r.Each(func(Event) { count++ })
	if count != 0 {
		t.Fatalf("Each after Reset visited %d events", count)
	}
}

// TestRecorderPoolRecycles proves Reset returns chunks to the free list:
// refilling a reset recorder allocates nothing.
func TestRecorderPoolRecycles(t *testing.T) {
	var r Recorder
	fill := func() {
		for i := 0; i < 2*chunkEvents; i++ {
			r.Record(Event{ID: uint64(i)})
		}
	}
	fill() // allocate the chunks once
	allocs := testing.AllocsPerRun(10, func() {
		r.Reset()
		fill()
	})
	if allocs > 0 {
		t.Fatalf("reset+refill allocated %.1f objects per run, want 0", allocs)
	}
}

func TestHistogram(t *testing.T) {
	h := (&Registry{metrics: map[string]*metric{}}).Histogram(
		"h", "", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 3, 10} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if h.Sum() != 16 { //lint:allow floateq -- exact sum of exactly representable values
		t.Fatalf("Sum = %v, want 16", h.Sum())
	}
	// Buckets: <=1 gets 0.5 and 1 (SearchFloat64s puts v==bound in its
	// bucket), <=2 gets 1.5, <=5 gets 3, +Inf gets 10.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if h.counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, h.counts[i], w)
		}
	}
}

func TestRegistryPrometheusSortedAndDeterministic(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("zzz_total", "last").Add(3)
	reg.Gauge("aaa_gauge", "first").Set(1.5)
	reg.Histogram("mmm_seconds", "middle", []float64{0.1, 1}).Observe(0.5)

	var a, b bytes.Buffer
	if err := reg.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two renders of the same registry differ")
	}
	out := a.String()
	iA := strings.Index(out, "aaa_gauge")
	iM := strings.Index(out, "mmm_seconds")
	iZ := strings.Index(out, "zzz_total")
	if iA < 0 || iM < 0 || iZ < 0 || !(iA < iM && iM < iZ) {
		t.Fatalf("metrics not in sorted order:\n%s", out)
	}
	for _, want := range []string{
		"# TYPE aaa_gauge gauge", "aaa_gauge 1.5",
		`mmm_seconds_bucket{le="1"} 1`, `mmm_seconds_bucket{le="+Inf"} 1`,
		"mmm_seconds_sum 0.5", "mmm_seconds_count 1",
		"# TYPE zzz_total counter", "zzz_total 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	reg := NewRegistry()
	reg.Counter("x_total", "")
	reg.Gauge("x_total", "")
}

func TestBusMetricsFollowEvents(t *testing.T) {
	b := NewBus()
	b.Emit(Event{T: 1, Kind: KindReqArrive, ID: 7})
	b.Emit(Event{T: 1, Kind: KindReqStart, ID: 7})
	b.Emit(Event{T: 2, Kind: KindReqComplete, ID: 7, A: 1, B: 0.3})
	b.Emit(Event{T: 3, Kind: KindReqDrop, ID: 8, Label: "token-bucket"})
	b.Emit(Event{T: 3, Kind: KindReqDrop, ID: 9, Label: "token-bucket"})
	b.Emit(Event{T: 4, Kind: KindSample, A: 900, B: 0.8})
	b.Emit(Event{T: 5, Kind: KindSample, A: 700, B: 0.7})

	reg := b.Metrics()
	if got := reg.Counter("core_drops_total", "").Value(); got != 2 {
		t.Errorf("drops = %d, want 2", got)
	}
	if got := reg.Counter("core_drops_token_bucket_total", "").Value(); got != 2 {
		t.Errorf("per-reason drops = %d, want 2", got)
	}
	if got := reg.Gauge("core_power_watts", "").Value(); got != 700 { //lint:allow floateq -- gauge stores the sample verbatim
		t.Errorf("power gauge = %v, want 700", got)
	}
	if got := reg.Gauge("core_power_watts_peak", "").Value(); got != 900 { //lint:allow floateq -- gauge stores the sample verbatim
		t.Errorf("power peak = %v, want 900", got)
	}
	if got := b.Events().Len(); got != 7 {
		t.Errorf("recorded %d events, want 7", got)
	}

	b.BeginRun()
	if got := b.Events().Len(); got != 0 {
		t.Errorf("events after BeginRun = %d, want 0", got)
	}
	if got := reg.Counter("core_drops_total", "").Value(); got != 0 {
		t.Errorf("drops after BeginRun = %d, want 0", got)
	}
}

// sampleEvents is a miniature stream exercising every exporter branch.
func sampleEvents() []Event {
	evs := []Event{
		{T: 0.1, Kind: KindReqArrive, Class: 0, ID: 1, Label: "Colla-Filt"},
		{T: 0.1, Kind: KindReqStart, Server: 0, Class: 0, ID: 1, Label: "Colla-Filt"},
		{T: 0.4, Kind: KindReqComplete, Server: 0, Class: 0, ID: 1, A: 0.1, B: 0.3, Label: "Colla-Filt"},
		{T: 0.5, Kind: KindReqDrop, Server: -1, Class: 1, ID: 2, Label: "firewall"},
		{T: 0.6, Kind: KindReqRequeue, Server: 2, ID: 3},
		{T: 1, Kind: KindDVFSCommand, Server: 1, A: 3.5, B: 2.4},
		{T: 1, Kind: KindFreqChange, Server: 1, A: 3.5, B: 2.4},
		{T: 1, Kind: KindTokenGrant, ID: 4, A: 2, B: 100},
		{T: 1, Kind: KindTokenDeny, ID: 5, A: 2, B: 1},
		{T: 1, Kind: KindDefenseBridge, A: 500, B: 600},
		{T: 1, Kind: KindDefenseCollateral, A: 100},
		{T: 1, Kind: KindBatteryDischarge, A: 500, B: 0.9},
		{T: 2, Kind: KindBatteryCharge, A: 100, B: 0.91},
		{T: 2, Kind: KindBatteryFail},
		{T: 3, Kind: KindBatteryRepair},
		{T: 3, Kind: KindBatteryFade, A: 0.8},
		{T: 4, Kind: KindBreakerTrip, A: 64},
		{T: 4, Kind: KindOutageStart, A: 64},
		{T: 64, Kind: KindBreakerReset},
		{T: 64, Kind: KindOutageEnd},
		{T: 5, Kind: KindThermalThrottle, Server: 0, A: 2.4, B: 85},
		{T: 6, Kind: KindFirewallBan, ID: 11, A: 66},
		{T: 7, Kind: KindFirewallDown, Server: -1, Label: "firewall-down"},
		{T: 8, Kind: KindFirewallUp, Server: -1, Label: "firewall-down"},
		{T: 9, Kind: KindProfilerFlag, ID: 11, A: 55},
		{T: 10, Kind: KindProfilerUnflag, ID: 11, A: 1},
		{T: 11, Kind: KindServerCrash, Server: 2},
		{T: 12, Kind: KindServerRecover, Server: 2},
		{T: 13, Kind: KindFaultOpen, Server: 2, A: 14, B: 0.5, Label: "dvfs-stuck"},
		{T: 14, Kind: KindFaultClose, Server: 2, A: 13, Label: "dvfs-stuck"},
		{T: 15, Kind: KindTelemetry, A: 900, B: 450},
		{T: 16, Kind: KindSample, A: 880, B: 0.85},
		{T: 17, Kind: KindNetDelay, Server: 1, ID: 12, A: 0.02},
		{T: 17, Kind: KindNetRetry, Server: 1, ID: 12, A: 1, Label: "net-loss"},
		{T: 17, Kind: KindNetTimeout, Server: 1, ID: 12, A: 0.5, Label: "net-timeout"},
		{T: 18, Kind: KindNetDrop, Server: -1, ID: 13, A: 3, Label: "net-loss"},
		{T: 18, Kind: KindNetPartition, Server: 1, A: 19, Label: "partition"},
		{T: 19, Kind: KindNetHeal, Server: 1, A: 18, Label: "partition"},
		{T: 19, Kind: KindAttackOn, Server: -1, Class: 0, A: 25, B: 450, Label: "colla-filt-flood"},
		{T: 20, Kind: KindAttackOff, Server: -1, Class: 0, A: 19, Label: "colla-filt-flood"},
	}
	return evs
}

func TestChromeTraceValidates(t *testing.T) {
	b := NewBus()
	for _, ev := range sampleEvents() {
		b.Emit(ev)
	}
	var buf bytes.Buffer
	if err := b.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("emitted trace fails validation: %v\n%s", err, buf.String())
	}
	// Server 2 appears in the stream, so its track must be declared.
	if !strings.Contains(buf.String(), `"name":"server 2"`) {
		t.Error("trace missing the server 2 thread metadata")
	}
}

func TestValidateRejectsMalformedTraces(t *testing.T) {
	cases := map[string]string{
		"not json":      `{"traceEvents":[`,
		"empty":         `{"traceEvents":[]}`,
		"no name":       `{"traceEvents":[{"ph":"i","pid":1,"tid":1,"ts":0}]}`,
		"bad phase":     `{"traceEvents":[{"name":"x","ph":"Z","pid":1,"tid":1,"ts":0}]}`,
		"bad pid":       `{"traceEvents":[{"name":"x","ph":"i","pid":2,"tid":1,"ts":0}]}`,
		"no ts":         `{"traceEvents":[{"name":"x","ph":"i","pid":1,"tid":1}]}`,
		"X without dur": `{"traceEvents":[{"name":"x","ph":"X","pid":1,"tid":1,"ts":0}]}`,
		"b without id":  `{"traceEvents":[{"name":"x","ph":"b","pid":1,"tid":1,"ts":0}]}`,
	}
	for name, data := range cases {
		if err := ValidateChromeTrace([]byte(data)); err == nil {
			t.Errorf("%s: validation unexpectedly passed", name)
		}
	}
	// A metadata-only trace is the empty-capture shape: a fresh bus still
	// declares its process/track structure, and that must stay loadable.
	onlyMeta := `{"traceEvents":[{"name":"process_name","ph":"M","pid":1,"args":{}}]}`
	if err := ValidateChromeTrace([]byte(onlyMeta)); err != nil {
		t.Errorf("metadata-only trace rejected: %v", err)
	}
}

func TestCSVCoversEveryEvent(t *testing.T) {
	b := NewBus()
	evs := sampleEvents()
	for _, ev := range evs {
		b.Emit(ev)
	}
	var buf bytes.Buffer
	if err := b.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if got, want := len(lines), len(evs)+1; got != want {
		t.Fatalf("CSV has %d lines, want %d (header + one per event)", got, want)
	}
	if lines[0] != "t,kind,server,class,id,a,b,label" {
		t.Fatalf("unexpected header %q", lines[0])
	}
	if want := "0.4,req-complete,0,0,1,0.1,0.3,Colla-Filt"; lines[3] != want {
		t.Fatalf("line 3 = %q, want %q", lines[3], want)
	}
}

// TestEmptyCaptureExports locks the empty-capture edge of every exporter:
// a fresh bus and a BeginRun-reset bus must render identical, valid,
// byte-stable output — no trailing commas, no missing headers, and the
// Prometheus render must still carry every HELP/TYPE declaration.
func TestEmptyCaptureExports(t *testing.T) {
	render := func(b *Bus) (c, v, p string) {
		var cb, vb, pb bytes.Buffer
		if err := b.WriteChromeTrace(&cb); err != nil {
			t.Fatal(err)
		}
		if err := b.WriteCSV(&vb); err != nil {
			t.Fatal(err)
		}
		if err := b.WritePrometheus(&pb); err != nil {
			t.Fatal(err)
		}
		return cb.String(), vb.String(), pb.String()
	}
	c1, v1, p1 := render(NewBus())

	// A used-then-reset bus is the same empty capture for the event-stream
	// exporters. The Prometheus render keeps dynamically registered names
	// (per-reason drop counters) at zero by design, so it is checked for
	// validity and stability rather than fresh-bus equality.
	reset := NewBus()
	for _, ev := range sampleEvents() {
		reset.Emit(ev)
	}
	reset.BeginRun()
	c2, v2, p2 := render(reset)
	if c1 != c2 || v1 != v2 {
		t.Error("BeginRun-reset bus renders event streams differently from a fresh bus")
	}
	if _, _, again := render(reset); p2 != again {
		t.Error("reset-bus prometheus render not byte-stable")
	}
	if err := ValidatePrometheus([]byte(p2)); err != nil {
		t.Errorf("reset-bus prometheus render fails validation: %v", err)
	}

	if err := ValidateChromeTrace([]byte(c1)); err != nil {
		t.Errorf("empty chrome trace fails validation: %v\n%s", err, c1)
	}
	if err := ValidatePrometheus([]byte(p1)); err != nil {
		t.Errorf("empty prometheus render fails validation: %v\n%s", err, p1)
	}
	if v1 != csvHeader+"\n" {
		t.Errorf("empty CSV must be exactly the header line, got %q", v1)
	}
	if events, err := ParseCSVEvents(bytes.NewBufferString(v1)); err != nil || len(events) != 0 {
		t.Errorf("empty CSV round-trip: events=%d err=%v", len(events), err)
	}
}

// TestExportersDeterministic renders the same stream twice through every
// exporter and requires byte equality.
func TestExportersDeterministic(t *testing.T) {
	render := func() (string, string, string) {
		b := NewBus()
		for _, ev := range sampleEvents() {
			b.Emit(ev)
		}
		var c, v, p bytes.Buffer
		if err := b.WriteChromeTrace(&c); err != nil {
			t.Fatal(err)
		}
		if err := b.WriteCSV(&v); err != nil {
			t.Fatal(err)
		}
		if err := b.WritePrometheus(&p); err != nil {
			t.Fatal(err)
		}
		return c.String(), v.String(), p.String()
	}
	c1, v1, p1 := render()
	c2, v2, p2 := render()
	if c1 != c2 {
		t.Error("chrome traces differ between identical runs")
	}
	if v1 != v2 {
		t.Error("CSVs differ between identical runs")
	}
	if p1 != p2 {
		t.Error("prometheus renders differ between identical runs")
	}
}
