package obs

import "testing"

// TestBusEmitAmortizedAllocs is the event-pool proof for the enabled path:
// steady-state emission into a warmed bus allocates nothing per event —
// chunk storage is recycled by BeginRun, the per-reason drop counter map
// is hit, not grown.
func TestBusEmitAmortizedAllocs(t *testing.T) {
	b := NewBus()
	evs := []Event{
		{T: 1, Kind: KindReqArrive, Class: 0, ID: 1, Label: "Colla-Filt"},
		{T: 1, Kind: KindReqStart, Server: 0, Class: 0, ID: 1, Label: "Colla-Filt"},
		{T: 2, Kind: KindReqComplete, Server: 0, Class: 0, ID: 1, A: 1, B: 1, Label: "Colla-Filt"},
		{T: 2, Kind: KindReqDrop, ID: 2, Label: "token-bucket"},
		{T: 3, Kind: KindSample, A: 800, B: 0.9},
	}
	warm := func() {
		b.BeginRun()
		for i := 0; i < 2*chunkEvents; i++ {
			b.Emit(evs[i%len(evs)])
		}
	}
	warm() // allocate chunks and the drop-reason entry once
	allocs := testing.AllocsPerRun(5, warm)
	if allocs > 0 {
		t.Fatalf("warm Emit loop allocated %.1f objects per run, want 0", allocs)
	}
}

// TestTimelineEmitAmortizedAllocs extends the proof to the timeline fold:
// with EnableTimeline attached, the warmed emit loop stays allocation-free
// — BeginRun keeps window capacity, so steady state only writes into it.
func TestTimelineEmitAmortizedAllocs(t *testing.T) {
	b := NewBus()
	b.EnableTimeline(1.0, 0.25)
	evs := []Event{
		{T: 1, Kind: KindReqArrive, Class: 0, ID: 1, Label: "Colla-Filt"},
		{T: 2, Kind: KindReqComplete, Server: 0, Class: 0, ID: 1, A: 1, B: 1, Label: "Colla-Filt"},
		{T: 3, Kind: KindNetRetry, Server: 2, ID: 1, A: 1},
		{T: 4, Kind: KindSample, A: 800, B: 0.9},
	}
	warm := func() {
		b.BeginRun()
		for i := 0; i < 2*chunkEvents; i++ {
			ev := evs[i%len(evs)]
			ev.T += float64(i % 64) // spread across windows
			b.Emit(ev)
		}
	}
	warm() // allocate chunks, windows, and link rows once
	allocs := testing.AllocsPerRun(5, warm)
	if allocs > 0 {
		t.Fatalf("warm timeline Emit loop allocated %.1f objects per run, want 0", allocs)
	}
}

// BenchmarkBusEmit is the enabled-path cost of one event through recorder
// and metrics; registered with benchregress.
func BenchmarkBusEmit(b *testing.B) {
	bus := NewBus()
	ev := Event{T: 1, Kind: KindReqComplete, Server: 3, Class: 1, ID: 42, A: 0.5, B: 0.5, Label: "K-means"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if bus.Events().Len() >= 1<<20 {
			bus.BeginRun() // keep memory bounded; pooled, so no allocs
		}
		bus.Emit(ev)
	}
}

// BenchmarkRecorderRecord isolates the trace store from the metrics fold.
func BenchmarkRecorderRecord(b *testing.B) {
	var r Recorder
	ev := Event{T: 1, Kind: KindSample, A: 800, B: 0.9}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.Len() >= 1<<20 {
			r.Reset()
		}
		r.Record(ev)
	}
}
