package obs

// chunkEvents is the recorder's allocation quantum: events are stored in
// fixed-capacity chunks so a long trace costs one allocation per 4096
// events instead of repeated slice doubling, and Reset recycles whole
// chunks through a free list — the "event pool" the hot-path budget in
// DESIGN.md §9 relies on.
const chunkEvents = 4096

// Recorder stores the event stream in insertion (= simulation) order.
// The zero value is ready to use.
type Recorder struct {
	chunks [][]Event
	free   [][]Event
	n      int
}

// Record appends one event.
//
//hot:allocfree
func (r *Recorder) Record(ev Event) {
	last := len(r.chunks) - 1
	if last < 0 || len(r.chunks[last]) == cap(r.chunks[last]) {
		r.chunks = append(r.chunks, r.grabChunk()) //lint:allow hotalloc -- chunk-pool miss (inlined grabChunk); steady state reuses freed chunks
		last++
	}
	r.chunks[last] = append(r.chunks[last], ev)
	r.n++
}

// grabChunk reuses a recycled chunk when one is available.
func (r *Recorder) grabChunk() []Event {
	if k := len(r.free) - 1; k >= 0 {
		c := r.free[k]
		r.free = r.free[:k]
		return c[:0]
	}
	return make([]Event, 0, chunkEvents)
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int { return r.n }

// Each calls fn for every event in insertion order.
func (r *Recorder) Each(fn func(Event)) {
	for _, c := range r.chunks {
		for _, ev := range c {
			fn(ev)
		}
	}
}

// Reset discards all events but keeps the chunk storage on the free list,
// so the next run records into already-allocated memory.
func (r *Recorder) Reset() {
	r.free = append(r.free, r.chunks...)
	r.chunks = r.chunks[:0]
	r.n = 0
}
