package obs

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ValidatePrometheus checks data against the subset of the Prometheus text
// exposition format the registry emits. The rules it enforces are the
// conformance contract of DESIGN.md §9: every metric declares # HELP then
// # TYPE before any sample, counter names end in _total with finite
// non-negative values, histogram buckets are cumulative and close with
// le="+Inf", and the _count series equals the +Inf bucket. Metric names
// must fit [a-zA-Z_:][a-zA-Z0-9_:]*.
func ValidatePrometheus(data []byte) error {
	type state struct {
		name     string
		typ      string
		help     bool
		samples  int
		lastCum  uint64
		sawInf   bool
		sawSum   bool
		sawCount bool
	}
	metrics := map[string]*state{}
	var order []*state
	get := func(name string) *state {
		if m, ok := metrics[name]; ok {
			return m
		}
		m := &state{name: name}
		metrics[name] = m
		order = append(order, m)
		return m
	}

	lineNo := 0
	for _, line := range strings.Split(string(data), "\n") {
		lineNo++
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 3 && fields[1] == "HELP" {
				m := get(fields[2])
				if m.help {
					return fmt.Errorf("line %d: duplicate # HELP for %s", lineNo, m.name)
				}
				if m.typ != "" || m.samples > 0 {
					return fmt.Errorf("line %d: # HELP for %s after its # TYPE or samples", lineNo, m.name)
				}
				m.help = true
				continue
			}
			if len(fields) == 4 && fields[1] == "TYPE" {
				name, typ := fields[2], fields[3]
				if !validMetricName(name) {
					return fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
				}
				switch typ {
				case "counter", "gauge", "histogram":
				default:
					return fmt.Errorf("line %d: metric %s has unknown type %q", lineNo, name, typ)
				}
				if typ == "counter" && !strings.HasSuffix(name, "_total") {
					return fmt.Errorf("line %d: counter %s missing the _total suffix", lineNo, name)
				}
				m := get(name)
				if m.typ != "" {
					return fmt.Errorf("line %d: duplicate # TYPE for %s", lineNo, name)
				}
				if m.samples > 0 {
					return fmt.Errorf("line %d: # TYPE for %s after its samples", lineNo, name)
				}
				if !m.help {
					return fmt.Errorf("line %d: # TYPE for %s without a preceding # HELP", lineNo, name)
				}
				m.typ = typ
				continue
			}
			// Other comment lines are legal exposition content.
			continue
		}

		sp := strings.IndexByte(line, ' ')
		if sp < 0 {
			return fmt.Errorf("line %d: sample without a value: %q", lineNo, line)
		}
		key, valStr := line[:sp], line[sp+1:]
		name, labels := key, ""
		if br := strings.IndexByte(key, '{'); br >= 0 {
			if !strings.HasSuffix(key, "}") {
				return fmt.Errorf("line %d: unterminated label set in %q", lineNo, key)
			}
			name, labels = key[:br], key[br+1:len(key)-1]
		}
		if !validMetricName(name) {
			return fmt.Errorf("line %d: invalid sample name %q", lineNo, name)
		}
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return fmt.Errorf("line %d: sample %s value %q: %v", lineNo, name, valStr, err)
		}

		base, sub := name, ""
		m, declared := metrics[name]
		if !declared || m.typ == "" {
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				trimmed := strings.TrimSuffix(name, suf)
				if trimmed == name {
					continue
				}
				if hm, ok := metrics[trimmed]; ok && hm.typ == "histogram" {
					base, sub, m, declared = trimmed, suf, hm, true
					break
				}
			}
		}
		if !declared || m.typ == "" {
			return fmt.Errorf("line %d: sample %s has no preceding # TYPE", lineNo, name)
		}
		m.samples++

		switch m.typ {
		case "counter":
			if math.IsNaN(val) || val < 0 {
				return fmt.Errorf("line %d: counter %s has non-monotone value %v", lineNo, name, val)
			}
		case "histogram":
			switch sub {
			case "_bucket":
				le := labelValue(labels, "le")
				if le == "" {
					return fmt.Errorf("line %d: %s bucket without an le label", lineNo, base)
				}
				cum := uint64(val)
				if float64(cum) != val || val < 0 { //lint:allow floateq -- exact round-trip test for whole-number bucket counts
					return fmt.Errorf("line %d: %s bucket count %v not a whole number", lineNo, base, val)
				}
				if cum < m.lastCum {
					return fmt.Errorf("line %d: %s buckets not cumulative (%d after %d)", lineNo, base, cum, m.lastCum)
				}
				if m.sawInf {
					return fmt.Errorf("line %d: %s bucket after le=\"+Inf\"", lineNo, base)
				}
				m.lastCum = cum
				if le == "+Inf" {
					m.sawInf = true
				}
			case "_sum":
				m.sawSum = true
			case "_count":
				if !m.sawInf {
					return fmt.Errorf("line %d: %s_count before its le=\"+Inf\" bucket", lineNo, base)
				}
				if uint64(val) != m.lastCum || float64(uint64(val)) != val { //lint:allow floateq -- exact round-trip test for whole-number sample counts
					return fmt.Errorf("line %d: %s_count %v disagrees with +Inf bucket %d", lineNo, base, val, m.lastCum)
				}
				m.sawCount = true
			default:
				return fmt.Errorf("line %d: bare sample %s of histogram %s", lineNo, name, base)
			}
		}
	}

	for _, m := range order {
		if m.typ == "" {
			if m.help {
				return fmt.Errorf("metric %s: # HELP without # TYPE", m.name)
			}
			continue
		}
		if m.samples == 0 {
			return fmt.Errorf("metric %s: declared but never sampled", m.name)
		}
		if m.typ == "histogram" && !(m.sawInf && m.sawSum && m.sawCount) {
			return fmt.Errorf("metric %s: incomplete histogram series", m.name)
		}
	}
	return nil
}

// validMetricName reports whether name fits the Prometheus metric-name
// alphabet.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		ch := name[i]
		switch {
		case ch >= 'a' && ch <= 'z', ch >= 'A' && ch <= 'Z', ch == '_', ch == ':':
		case ch >= '0' && ch <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// labelValue extracts one label's unquoted value from a rendered label set
// (k1="v1",k2="v2"); empty when absent. Sufficient for the label grammar
// this package emits — values never contain escaped quotes.
func labelValue(labels, key string) string {
	for _, part := range strings.Split(labels, ",") {
		eq := strings.IndexByte(part, '=')
		if eq < 0 {
			continue
		}
		if part[:eq] != key {
			continue
		}
		v := part[eq+1:]
		if len(v) >= 2 && v[0] == '"' && v[len(v)-1] == '"' {
			return v[1 : len(v)-1]
		}
	}
	return ""
}
