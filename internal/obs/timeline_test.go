package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestTimelineBucketConstant pins the fixed-size window's bucket count to
// the shared latency bounds: if latencyBounds grows, timelineBuckets must
// grow with it (it is a constant so TimelineWindow stays fixed-size).
func TestTimelineBucketConstant(t *testing.T) {
	if timelineBuckets != len(latencyBounds)+1 {
		t.Fatalf("timelineBuckets = %d, want len(latencyBounds)+1 = %d",
			timelineBuckets, len(latencyBounds)+1)
	}
}

// TestTimelineWindowEdges pins the floor semantics: window i covers
// [i*width, (i+1)*width), an event exactly on an edge lands in the higher
// window, and defensive negative stamps clamp to window 0.
func TestTimelineWindowEdges(t *testing.T) {
	tl := NewTimeline(1.0, 0)
	cases := []struct {
		t    float64
		want int
	}{
		{0, 0}, {0.999999, 0}, {1.0, 1}, {1.5, 1}, {2.0, 2}, {-0.5, 0},
	}
	for _, c := range cases {
		if got := tl.WindowIndex(c.t); got != c.want {
			t.Errorf("WindowIndex(%v) = %d, want %d", c.t, got, c.want)
		}
	}

	tl.Add(Event{T: 0.999999, Kind: KindReqArrive})
	tl.Add(Event{T: 1.0, Kind: KindReqArrive})
	w := tl.Windows()
	if len(w) != 2 {
		t.Fatalf("materialized %d windows, want 2", len(w))
	}
	if w[0].Arrivals != 1 || w[1].Arrivals != 1 {
		t.Fatalf("edge event folded into the wrong window: %d/%d arrivals",
			w[0].Arrivals, w[1].Arrivals)
	}
}

func TestTimelineDefaults(t *testing.T) {
	tl := NewTimeline(0, 0)
	if tl.WindowSec() != DefaultTimelineWindowSec { //lint:allow floateq -- defaults pass through verbatim
		t.Errorf("default width = %v, want %v", tl.WindowSec(), DefaultTimelineWindowSec)
	}
	if tl.SLASec() != DefaultTimelineSLASec { //lint:allow floateq -- defaults pass through verbatim
		t.Errorf("default SLA = %v, want %v", tl.SLASec(), DefaultTimelineSLASec)
	}
}

// TestTimelineFold checks the per-kind aggregation on a hand-checkable
// stream: counts, SLA violations, power min/max/last, per-link retries.
func TestTimelineFold(t *testing.T) {
	tl := NewTimeline(1.0, 0.25)
	for _, ev := range []Event{
		{T: 0.1, Kind: KindReqArrive},
		{T: 0.2, Kind: KindReqStart},
		{T: 0.5, Kind: KindReqComplete, B: 0.1},  // within SLA
		{T: 0.6, Kind: KindReqComplete, B: 0.25}, // exactly at the bound: not a violation
		{T: 0.7, Kind: KindReqComplete, B: 0.3},  // violation
		{T: 0.8, Kind: KindReqDrop},
		{T: 0.9, Kind: KindReqRequeue},
		{T: 1.1, Kind: KindDVFSCommand},
		{T: 1.2, Kind: KindFreqChange},
		{T: 1.3, Kind: KindNetRetry, Server: 2},
		{T: 1.4, Kind: KindNetRetry, Server: 2},
		{T: 1.5, Kind: KindNetRetry, Server: -1}, // no routable link: total only
		{T: 1.6, Kind: KindNetTimeout},
		{T: 1.7, Kind: KindNetDrop},
		{T: 2.1, Kind: KindSample, A: 500, B: 0.9},
		{T: 2.2, Kind: KindSample, A: 700, B: 0.8},
		{T: 2.3, Kind: KindSample, A: 600, B: 0.7},
	} {
		tl.Add(ev)
	}
	w := tl.Windows()
	if len(w) != 3 {
		t.Fatalf("materialized %d windows, want 3", len(w))
	}
	w0, w1, w2 := w[0], w[1], w[2]
	if w0.Arrivals != 1 || w0.Admits != 1 || w0.Completions != 3 ||
		w0.Drops != 1 || w0.Requeues != 1 {
		t.Errorf("window 0 counts wrong: %+v", w0)
	}
	if w0.SLAViolations != 1 {
		t.Errorf("window 0 SLA violations = %d, want 1 (0.25 is at the bound, not over)",
			w0.SLAViolations)
	}
	var bucketSum uint64
	for _, n := range w0.LatencyBuckets {
		bucketSum += n
	}
	if bucketSum != w0.Completions {
		t.Errorf("window 0 buckets sum to %d, completions %d", bucketSum, w0.Completions)
	}
	if w1.DVFSCommands != 1 || w1.FreqChanges != 1 || w1.NetRetries != 3 ||
		w1.NetTimeouts != 1 || w1.NetDrops != 1 {
		t.Errorf("window 1 counts wrong: %+v", w1)
	}
	if w2.Samples != 3 || w2.PowerMax != 700 || w2.PowerMin != 500 || //lint:allow floateq -- samples fold verbatim
		w2.PowerLast != 600 || w2.SoCLast != 0.7 { //lint:allow floateq -- samples fold verbatim
		t.Errorf("window 2 power fold wrong: %+v", w2)
	}

	lr := tl.LinkRetries()
	if len(lr) != 3 || len(lr[0]) != 0 || len(lr[1]) != 0 {
		t.Fatalf("link retry rows wrong shape: %v", lr)
	}
	if len(lr[2]) != 2 || lr[2][0] != 0 || lr[2][1] != 2 {
		t.Errorf("link 2 retries = %v, want [0 2]", lr[2])
	}
}

// TestTimelineEmptyExports locks the empty-capture shape: a never-fed
// timeline still renders a valid, byte-stable document from both exporters.
func TestTimelineEmptyExports(t *testing.T) {
	tl := NewTimeline(0, 0)
	var j1, j2, c1, c2 bytes.Buffer
	for _, r := range []struct {
		buf    *bytes.Buffer
		render func(*bytes.Buffer) error
	}{
		{&j1, func(b *bytes.Buffer) error { return tl.WriteJSON(b) }},
		{&j2, func(b *bytes.Buffer) error { return tl.WriteJSON(b) }},
		{&c1, func(b *bytes.Buffer) error { return tl.WriteCSV(b) }},
		{&c2, func(b *bytes.Buffer) error { return tl.WriteCSV(b) }},
	} {
		if err := r.render(r.buf); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(j1.Bytes(), j2.Bytes()) || !bytes.Equal(c1.Bytes(), c2.Bytes()) {
		t.Fatal("empty timeline renders are not byte-stable")
	}
	if err := ValidateTimeline(j1.Bytes()); err != nil {
		t.Fatalf("empty timeline JSON fails validation: %v\n%s", err, j1.String())
	}
	if got := c1.String(); got != timelineCSVHeader+"\n" {
		t.Fatalf("empty timeline CSV = %q, want header only", got)
	}
}

// TestBusTimelineLifecycle covers the bus integration: exports error until
// EnableTimeline, BeginRun resets the fold, and a reset-then-refed bus
// renders byte-identically to a fresh one.
func TestBusTimelineLifecycle(t *testing.T) {
	b := NewBus()
	if err := b.WriteTimelineJSON(&bytes.Buffer{}); err == nil {
		t.Fatal("WriteTimelineJSON without EnableTimeline did not error")
	}
	if err := b.WriteTimelineCSV(&bytes.Buffer{}); err == nil {
		t.Fatal("WriteTimelineCSV without EnableTimeline did not error")
	}

	b.EnableTimeline(0.5, 0.2)
	render := func() string {
		var buf bytes.Buffer
		if err := b.WriteTimelineJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	feed := func() {
		for _, ev := range sampleEvents() {
			b.Emit(ev)
		}
	}
	feed()
	first := render()
	if err := ValidateTimeline([]byte(first)); err != nil {
		t.Fatalf("bus timeline fails validation: %v", err)
	}

	b.BeginRun()
	empty := render()
	if err := ValidateTimeline([]byte(empty)); err != nil {
		t.Fatalf("post-BeginRun timeline fails validation: %v", err)
	}
	if strings.Contains(empty, `"arrivals"`) {
		t.Fatal("BeginRun did not clear the timeline windows")
	}

	feed()
	if second := render(); second != first {
		t.Fatal("reset-then-refed timeline differs from the fresh fold")
	}
}

// TestTimelineOfflineReplayMatchesLive replays a live capture's CSV through
// a fresh Timeline and requires byte-identical exports — the property that
// makes tracereport's offline rebuild trustworthy.
func TestTimelineOfflineReplayMatchesLive(t *testing.T) {
	b := NewBus()
	live := b.EnableTimeline(1.0, 0.25)
	for _, ev := range sampleEvents() {
		b.Emit(ev)
	}
	var csv bytes.Buffer
	if err := b.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	events, err := ParseCSVEvents(&csv)
	if err != nil {
		t.Fatal(err)
	}
	replay := NewTimeline(1.0, 0.25)
	for _, ev := range events {
		replay.Add(ev)
	}
	var a, bb bytes.Buffer
	if err := live.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := replay.WriteJSON(&bb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), bb.Bytes()) {
		t.Fatalf("offline replay differs from live fold:\nlive:   %s\nreplay: %s",
			a.String(), bb.String())
	}
}

// TestTimelineResetRefillAllocFree proves Reset keeps capacity: refilling
// the same stream allocates nothing.
func TestTimelineResetRefillAllocFree(t *testing.T) {
	tl := NewTimeline(1.0, 0.25)
	evs := sampleEvents()
	fill := func() {
		for _, ev := range evs {
			tl.Add(ev)
		}
	}
	fill()
	allocs := testing.AllocsPerRun(10, func() {
		tl.Reset()
		fill()
	})
	if allocs > 0 {
		t.Fatalf("reset+refill allocated %.1f objects per run, want 0", allocs)
	}
}

func TestValidateTimelineRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":     `{"schema":`,
		"wrong schema": `{"schema":"nope/v1","window_s":1,"sla_s":0.25}`,
		"zero width":   `{"schema":"antidope-timeline/v1","window_s":0,"sla_s":0.25}`,
		"bad sla":      `{"schema":"antidope-timeline/v1","window_s":1,"sla_s":0}`,
		"bounds not ascending": `{"schema":"antidope-timeline/v1","window_s":1,"sla_s":0.25,` +
			`"latency_bounds_s":[0.5,0.1]}`,
		"start inconsistent": `{"schema":"antidope-timeline/v1","window_s":1,"sla_s":0.25,` +
			`"latency_bounds_s":[1],"windows":[{"start_s":0.5,"completions":0,"latency_buckets":[0,0]}]}`,
		"bucket count": `{"schema":"antidope-timeline/v1","window_s":1,"sla_s":0.25,` +
			`"latency_bounds_s":[1],"windows":[{"start_s":0,"completions":0,"latency_buckets":[0]}]}`,
		"bucket sum mismatch": `{"schema":"antidope-timeline/v1","window_s":1,"sla_s":0.25,` +
			`"latency_bounds_s":[1],"windows":[{"start_s":0,"completions":2,"latency_buckets":[1,0]}]}`,
		"negative latency sum": `{"schema":"antidope-timeline/v1","window_s":1,"sla_s":0.25,` +
			`"latency_bounds_s":[1],"windows":[{"start_s":0,"completions":0,"latency_sum_s":-1,"latency_buckets":[0,0]}]}`,
		"power max below min": `{"schema":"antidope-timeline/v1","window_s":1,"sla_s":0.25,` +
			`"latency_bounds_s":[1],"windows":[{"start_s":0,"completions":0,"latency_buckets":[0,0],` +
			`"samples":1,"power_max_w":1,"power_min_w":2}]}`,
		"link rows beyond windows": `{"schema":"antidope-timeline/v1","window_s":1,"sla_s":0.25,` +
			`"latency_bounds_s":[1],"windows":[],"link_retries":[{"link":0,"windows":[1]}]}`,
		"links not ascending": `{"schema":"antidope-timeline/v1","window_s":1,"sla_s":0.25,` +
			`"latency_bounds_s":[1],"windows":[{"start_s":0,"completions":0,"latency_buckets":[0,0]}],` +
			`"link_retries":[{"link":1,"windows":[0]},{"link":0,"windows":[0]}]}`,
	}
	for name, data := range cases {
		if err := ValidateTimeline([]byte(data)); err == nil {
			t.Errorf("%s: validation unexpectedly passed", name)
		}
	}
}

func TestSanitizeMetric(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", "_"},
		{"token-bucket", "token_bucket"},
		{"Firewall", "firewall"},
		{"abc_09", "abc_09"},
		{"9lives", "_9lives"},
		{"héllo", "h__llo"}, // each byte of the multi-byte rune becomes '_'
		{"a b.c", "a_b_c"},
	}
	for _, c := range cases {
		if got := sanitizeMetric(c.in); got != c.want {
			t.Errorf("sanitizeMetric(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestCounterNameMustEndInTotal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("registering a counter without _total did not panic")
		}
	}()
	NewRegistry().Counter("bad_name", "")
}

// BenchmarkTimelineEmit measures the bus emit hot path with the timeline
// fold attached (pair with BenchmarkBusEmit for the nil-timeline cost).
func BenchmarkTimelineEmit(b *testing.B) {
	bus := NewBus()
	bus.EnableTimeline(1.0, 0.25)
	ev := Event{T: 1.5, Kind: KindReqComplete, Server: 1, ID: 7, A: 0.1, B: 0.3, Label: "Colla-Filt"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if bus.Events().Len() >= 1<<20 {
			bus.BeginRun() // keep memory bounded; pooled, so no allocs
		}
		ev.T = float64(i&1023) / 8 // sweep ~128 windows so at() exercises indexing
		bus.Emit(ev)
	}
}
