package obs

// Live scrape endpoint: the wall-time boundary of the observability layer.
// Everything else in this package is driven purely by simulated time; this
// file exposes the same registries over Prometheus HTTP for a scraper that
// lives in real time (the ROADMAP's live-cluster direction). No wall-clock
// value ever flows back into a simulation — the endpoint only reads.

import (
	"bytes"
	"io"
	"net"
	"net/http"
	"sync"
)

// Gatherer renders one Prometheus scrape. Implementations must be safe to
// call from the serving goroutine while their owner keeps working.
type Gatherer interface {
	GatherPrometheus(w io.Writer) error
}

// GatherPrometheus lets a bare Registry serve as a Gatherer. The registry
// itself is not locked — use this only when nothing mutates the registry
// concurrently (e.g. after a run), or wrap the writer side in a LiveBus.
func (r *Registry) GatherPrometheus(w io.Writer) error { return r.WritePrometheus(w) }

// GathererFunc adapts a function to the Gatherer interface.
type GathererFunc func(io.Writer) error

// GatherPrometheus calls f.
func (f GathererFunc) GatherPrometheus(w io.Writer) error { return f(w) }

// MultiGatherer concatenates several gatherers into one scrape; nil entries
// are skipped. Sources must not share metric names — the exposition format
// forbids duplicate # TYPE lines, and ValidatePrometheus would reject the
// merged scrape.
func MultiGatherer(gs ...Gatherer) Gatherer {
	return GathererFunc(func(w io.Writer) error {
		for _, g := range gs {
			if g == nil {
				continue
			}
			if err := g.GatherPrometheus(w); err != nil {
				return err
			}
		}
		return nil
	})
}

// Handler serves the gatherer's scrape over HTTP. The scrape is rendered
// into memory first so a mid-render failure becomes a clean 500 instead of
// a truncated body.
func Handler(g Gatherer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var buf bytes.Buffer
		if err := g.GatherPrometheus(&buf); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write(buf.Bytes()) // client went away; nothing to do
	})
}

// MetricsServer is a running live scrape endpoint; Close shuts it down.
type MetricsServer struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// Serve starts a Prometheus endpoint on addr (host:port; port 0 picks a
// free one — read the result from Addr). The scrape is served on /metrics
// and on / for convenience.
func Serve(addr string, g Gatherer) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	h := Handler(g)
	mux.Handle("/metrics", h)
	mux.Handle("/", h)
	ms := &MetricsServer{ln: ln, srv: &http.Server{Handler: mux}, done: make(chan struct{})}
	go func() {
		defer close(ms.done)
		_ = ms.srv.Serve(ln) // returns ErrServerClosed on Close
	}()
	return ms, nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *MetricsServer) Addr() string { return s.ln.Addr().String() }

// Close stops the endpoint and waits for the serving goroutine to exit.
func (s *MetricsServer) Close() error {
	err := s.srv.Close()
	<-s.done
	return err
}

// LiveBus wraps a Bus behind a mutex so a wall-time scraper can read the
// metrics registry while the simulation goroutine is still emitting. It is
// the live-endpoint counterpart of the plain Bus: install it as the run's
// observer and hand it to Serve. The lock cost is paid only by runs that
// opted into live scraping; the plain Bus stays lock-free.
type LiveBus struct {
	mu  sync.Mutex
	bus *Bus
}

// NewLiveBus builds a LiveBus over a fresh Bus.
func NewLiveBus() *LiveBus { return &LiveBus{bus: NewBus()} }

// Emit forwards to the wrapped bus under the lock.
func (l *LiveBus) Emit(ev Event) {
	l.mu.Lock()
	l.bus.Emit(ev)
	l.mu.Unlock()
}

// BeginRun forwards to the wrapped bus under the lock; core.Run calls it
// through the same optional interface as on the plain Bus.
func (l *LiveBus) BeginRun() {
	l.mu.Lock()
	l.bus.BeginRun()
	l.mu.Unlock()
}

// EnableTimeline attaches a timeline to the wrapped bus (see
// Bus.EnableTimeline); call before the run starts.
func (l *LiveBus) EnableTimeline(widthSec, slaSec float64) {
	l.mu.Lock()
	l.bus.EnableTimeline(widthSec, slaSec)
	l.mu.Unlock()
}

// GatherPrometheus renders a consistent snapshot of the wrapped registry:
// the render happens under the lock, the network write after releasing it.
func (l *LiveBus) GatherPrometheus(w io.Writer) error {
	var buf bytes.Buffer
	l.mu.Lock()
	err := l.bus.WritePrometheus(&buf)
	l.mu.Unlock()
	if err != nil {
		return err
	}
	_, err = w.Write(buf.Bytes())
	return err
}

// Bus exposes the wrapped bus for end-of-run exports. Use it only once the
// run has finished emitting; the accessor takes no lock.
func (l *LiveBus) Bus() *Bus { return l.bus }
