package obs

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
)

// scrape fetches one page from the live endpoint.
func scrape(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("GET %s: content type %q", url, ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestServeScrapesConformantExposition starts a real endpoint on a loopback
// port and requires the scrape to pass the conformance validator, on both
// /metrics and /.
func TestServeScrapesConformantExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_events_total", "events").Add(7)
	reg.Gauge("test_level", "level").Set(0.5)

	ms, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := ms.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()

	for _, path := range []string{"/metrics", "/"} {
		body := scrape(t, "http://"+ms.Addr()+path)
		if err := ValidatePrometheus(body); err != nil {
			t.Fatalf("GET %s: scrape fails validation: %v\n%s", path, err, body)
		}
		if !bytes.Contains(body, []byte("test_events_total 7")) {
			t.Fatalf("GET %s: scrape missing counter value:\n%s", path, body)
		}
	}
}

// TestLiveBusConcurrentEmitAndScrape hammers a LiveBus from an emitter
// goroutine while scraping it; run under -race this is the data-race gate
// for the live endpoint, and every scrape must be internally consistent.
func TestLiveBusConcurrentEmitAndScrape(t *testing.T) {
	live := NewLiveBus()
	live.EnableTimeline(1.0, 0.25)

	ms, err := Serve("127.0.0.1:0", live)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := ms.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()

	const events = 5000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < events; i++ {
			live.Emit(Event{T: float64(i) / 100, Kind: KindReqArrive, ID: uint64(i)})
			live.Emit(Event{T: float64(i) / 100, Kind: KindReqComplete, ID: uint64(i), B: 0.1})
		}
	}()
	for i := 0; i < 20; i++ {
		body := scrape(t, "http://"+ms.Addr()+"/metrics")
		if err := ValidatePrometheus(body); err != nil {
			t.Fatalf("mid-run scrape %d fails validation: %v", i, err)
		}
	}
	wg.Wait()

	// After the run the wrapped bus serves the usual exporters.
	var tl bytes.Buffer
	if err := live.Bus().WriteTimelineJSON(&tl); err != nil {
		t.Fatal(err)
	}
	if err := ValidateTimeline(tl.Bytes()); err != nil {
		t.Fatalf("post-run timeline fails validation: %v", err)
	}
	final := scrape(t, "http://"+ms.Addr()+"/metrics")
	if want := fmt.Sprintf("core_requests_arrived_total %d", events); !bytes.Contains(final, []byte(want)) {
		// The arrivals counter name is part of the bus's fixed taxonomy; if
		// it is renamed, update this probe.
		t.Fatalf("final scrape missing %q:\n%s", want, final)
	}
}

// TestMultiGathererMergesSources checks concatenation and nil-skipping, and
// that the merged scrape still validates when the sources share no names.
func TestMultiGathererMergesSources(t *testing.T) {
	a := NewRegistry()
	a.Counter("aaa_total", "a").Inc()
	b := NewRegistry()
	b.Gauge("bbb", "b").Set(2)

	var buf bytes.Buffer
	if err := MultiGatherer(a, nil, b).GatherPrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidatePrometheus(buf.Bytes()); err != nil {
		t.Fatalf("merged scrape fails validation: %v\n%s", err, buf.String())
	}
	if !bytes.Contains(buf.Bytes(), []byte("aaa_total 1")) ||
		!bytes.Contains(buf.Bytes(), []byte("bbb 2")) {
		t.Fatalf("merged scrape missing a source:\n%s", buf.String())
	}
}

// TestHandlerReportsRenderErrors turns a failing gatherer into a clean 500.
func TestHandlerReportsRenderErrors(t *testing.T) {
	h := Handler(GathererFunc(func(io.Writer) error { return fmt.Errorf("boom") }))
	rec := &responseRecorder{header: http.Header{}}
	h.ServeHTTP(rec, &http.Request{})
	if rec.status != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.status)
	}
}

// responseRecorder is a minimal http.ResponseWriter so the obs package's
// tests stay free of net/http/httptest.
type responseRecorder struct {
	header http.Header
	status int
	body   bytes.Buffer
}

func (r *responseRecorder) Header() http.Header { return r.header }
func (r *responseRecorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.body.Write(p)
}
func (r *responseRecorder) WriteHeader(status int) { r.status = status }
