package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// csvHeader is the fixed column set of the event-stream CSV archive;
// WriteCSV emits it, ParseCSVEvents requires it.
const csvHeader = "t,kind,server,class,id,a,b,label"

// WriteCSV renders the complete event stream — nothing omitted — as CSV
// with a fixed header. Labels are static identifiers from the simulator's
// own vocabulary (class names, drop reasons, fault kinds) and never contain
// commas or quotes, so no escaping is applied.
func WriteCSV(w io.Writer, rec *Recorder) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	bw.WriteString(csvHeader + "\n")
	rec.Each(func(ev Event) {
		bw.WriteString(strconv.FormatFloat(ev.T, 'g', -1, 64))
		bw.WriteByte(',')
		bw.WriteString(ev.Kind.String())
		bw.WriteByte(',')
		bw.WriteString(strconv.Itoa(int(ev.Server)))
		bw.WriteByte(',')
		bw.WriteString(strconv.Itoa(int(ev.Class)))
		bw.WriteByte(',')
		bw.WriteString(strconv.FormatUint(ev.ID, 10))
		bw.WriteByte(',')
		bw.WriteString(formatFloat(ev.A))
		bw.WriteByte(',')
		bw.WriteString(formatFloat(ev.B))
		bw.WriteByte(',')
		bw.WriteString(ev.Label)
		bw.WriteByte('\n')
	})
	return bw.Flush()
}

// kindIndex maps the stable kebab-case names back to Kind values; built
// once from kindNames, read-only afterwards.
var kindIndex = func() map[string]Kind {
	m := make(map[string]Kind, numKinds)
	for k := 0; k < numKinds; k++ {
		m[Kind(k).String()] = Kind(k)
	}
	return m
}()

// ParseCSVEvents parses a stream previously written by WriteCSV back into
// events — the offline half of the timeline/analyzer pipeline
// (cmd/tracereport replays a captured CSV through the same folds the live
// bus runs). Labels are interned so a flood trace's repeated reasons share
// one string each.
func ParseCSVEvents(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("obs: event CSV is empty, missing header")
	}
	if sc.Text() != csvHeader {
		return nil, fmt.Errorf("obs: unexpected CSV header %q, want %q", sc.Text(), csvHeader)
	}
	labels := map[string]string{}
	var evs []Event
	line := 1
	for sc.Scan() {
		line++
		ev, err := parseCSVLine(sc.Text(), labels)
		if err != nil {
			return nil, fmt.Errorf("obs: CSV line %d: %w", line, err)
		}
		evs = append(evs, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return evs, nil
}

func parseCSVLine(s string, labels map[string]string) (Event, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 8 {
		return Event{}, fmt.Errorf("%d fields, want 8", len(parts))
	}
	t, err := strconv.ParseFloat(parts[0], 64)
	if err != nil {
		return Event{}, fmt.Errorf("bad t %q: %v", parts[0], err)
	}
	kind, ok := kindIndex[parts[1]]
	if !ok {
		return Event{}, fmt.Errorf("unknown kind %q", parts[1])
	}
	server, err := strconv.ParseInt(parts[2], 10, 32)
	if err != nil {
		return Event{}, fmt.Errorf("bad server %q: %v", parts[2], err)
	}
	class, err := strconv.ParseInt(parts[3], 10, 32)
	if err != nil {
		return Event{}, fmt.Errorf("bad class %q: %v", parts[3], err)
	}
	id, err := strconv.ParseUint(parts[4], 10, 64)
	if err != nil {
		return Event{}, fmt.Errorf("bad id %q: %v", parts[4], err)
	}
	a, err := strconv.ParseFloat(parts[5], 64)
	if err != nil {
		return Event{}, fmt.Errorf("bad a %q: %v", parts[5], err)
	}
	b, err := strconv.ParseFloat(parts[6], 64)
	if err != nil {
		return Event{}, fmt.Errorf("bad b %q: %v", parts[6], err)
	}
	label := parts[7]
	if interned, ok := labels[label]; ok {
		label = interned
	} else {
		labels[label] = label
	}
	return Event{
		T: t, Kind: kind, Server: int32(server), Class: int32(class),
		ID: id, A: a, B: b, Label: label,
	}, nil
}
