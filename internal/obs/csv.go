package obs

import (
	"bufio"
	"io"
	"strconv"
)

// WriteCSV renders the complete event stream — nothing omitted — as CSV
// with a fixed header. Labels are static identifiers from the simulator's
// own vocabulary (class names, drop reasons, fault kinds) and never contain
// commas or quotes, so no escaping is applied.
func WriteCSV(w io.Writer, rec *Recorder) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	bw.WriteString("t,kind,server,class,id,a,b,label\n")
	rec.Each(func(ev Event) {
		bw.WriteString(strconv.FormatFloat(ev.T, 'g', -1, 64))
		bw.WriteByte(',')
		bw.WriteString(ev.Kind.String())
		bw.WriteByte(',')
		bw.WriteString(strconv.Itoa(int(ev.Server)))
		bw.WriteByte(',')
		bw.WriteString(strconv.Itoa(int(ev.Class)))
		bw.WriteByte(',')
		bw.WriteString(strconv.FormatUint(ev.ID, 10))
		bw.WriteByte(',')
		bw.WriteString(formatFloat(ev.A))
		bw.WriteByte(',')
		bw.WriteString(formatFloat(ev.B))
		bw.WriteByte(',')
		bw.WriteString(ev.Label)
		bw.WriteByte('\n')
	})
	return bw.Flush()
}
