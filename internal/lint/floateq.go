package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags == and != between floating-point operands. Watt and joule
// comparisons accumulate rounding, so exact equality silently flips with
// any reordering; measures must be compared with a tolerance. Exact
// sentinel checks (e.g. rejecting u == 0 before a log) are legitimate and
// carry a //lint:allow floateq comment.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc: "flag ==/!= between floats; compare measures with a tolerance, " +
		"or annotate intended-exact sentinels with //lint:allow floateq",
	Run: runFloatEq,
}

func runFloatEq(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			x := pass.TypesInfo.Types[bin.X]
			y := pass.TypesInfo.Types[bin.Y]
			// A comparison fully decided at compile time cannot drift.
			if x.Value != nil && y.Value != nil {
				return true
			}
			if isFloat(defaulted(x.Type)) || isFloat(defaulted(y.Type)) {
				pass.Reportf(bin.OpPos,
					"floating-point %s comparison is brittle under rounding; use a tolerance (math.Abs(a-b) < eps)",
					bin.Op)
			}
			return true
		})
	}
	return nil
}

// defaulted maps untyped constant types to their default type so that
// `x == 1.5` is recognized as a float comparison.
func defaulted(t types.Type) types.Type {
	if t == nil {
		return types.Typ[types.Invalid]
	}
	return types.Default(t)
}
