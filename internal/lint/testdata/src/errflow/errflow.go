// Package errflow exercises the discarded-error analyzer: a bare call
// statement dropping an error must be consumed, explicitly discarded with
// `_ =`, or annotated with a reason. The fmt print family and Write*
// methods on latched writers are best-effort by convention, but Flush —
// where a latched writer finally reports — is not.
package errflow

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strings"
)

func mayFail() error { return errors.New("boom") }

func value() (int, error) { return 0, errors.New("boom") }

// dropped silently discards the error.
func dropped() {
	mayFail() // want "silently dropped"
}

// deferred drops it on the defer path.
func deferred(c io.Closer) {
	defer c.Close() // want "silently dropped"
}

// spawned drops it in a goroutine.
func spawned() {
	go mayFail() // want "silently dropped"
}

// explicit discards are visible in review and pass.
func explicit() {
	_ = mayFail()
	n, _ := value()
	_ = n
}

// consumed handles the error.
func consumed() error {
	if err := mayFail(); err != nil {
		return err
	}
	return nil
}

// rendering through the fmt print family is best-effort by convention.
func rendering(w io.Writer) {
	fmt.Println("hello")
	fmt.Fprintf(w, "x=%d\n", 1)
}

// latched writers buffer their error until Flush, which is checked here.
func latched(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("x")
	var sb strings.Builder
	sb.WriteString("y")
	return bw.Flush()
}

// unflushed drops the latched error at the end of the pipeline.
func unflushed(w io.Writer) {
	bw := bufio.NewWriter(w)
	bw.WriteString("x")
	bw.Flush() // want "silently dropped"
}

// allowed documents why the error cannot matter.
func allowed() {
	mayFail() //lint:allow errflow -- fixture: error is impossible here
}
