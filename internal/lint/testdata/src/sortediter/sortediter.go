// Package sortediter exercises the deterministic-output analyzer: map
// iteration values must not flow into printers, writers, or exporters
// inside the loop. Collect-sort-range is the sanctioned idiom; sinks that
// do not mention the iteration variables are aggregation and pass.
package sortediter

import (
	"fmt"
	"sort"
	"strings"
)

// leakOrder prints map entries straight out of the range loop.
func leakOrder(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want "map-iteration value flows into fmt.Printf"
	}
}

// sortedFirst is the sanctioned idiom: collect, sort, range the slice.
func sortedFirst(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("%s=%d\n", k, m[k])
	}
}

// builder streams entries into an io.Writer-shaped receiver.
func builder(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want "flows into Builder.WriteString"
	}
	return b.String()
}

// countOnly aggregates without leaking entries into output.
func countOnly(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	fmt.Println(n)
	return n
}

// heartbeat emits inside the loop but mentions no iteration variable, so
// the output is order-independent.
func heartbeat(m map[string]int) {
	for range m {
		fmt.Println("tick")
	}
}

// allowed waives the check for order-insensitive debug output.
func allowed(m map[string]int) {
	for k := range m {
		fmt.Println(k) //lint:allow sortediter -- fixture: order-insensitive debug dump
	}
}
