// Package obsguard exercises the dominating-nil-check analyzer: Observer
// method calls must sit under a nil guard on the same expression, guards
// on a different field do not count, early returns extend a guard to the
// rest of the block, and closures start from a clean slate because they
// may run long after the enclosing guard was checked.
package obsguard

// Event is the fixture payload.
type Event struct{ T float64 }

// Observer mirrors the production obs contract.
type Observer interface {
	Emit(Event)
}

// Sim carries two observer fields so guards on the wrong one are visible.
type Sim struct {
	obs   Observer
	trace Observer
}

func (s *Sim) guarded(now float64) {
	if s.obs != nil {
		s.obs.Emit(Event{T: now})
	}
}

func (s *Sim) unguarded(now float64) {
	s.obs.Emit(Event{T: now}) // want "without a dominating nil check"
}

func (s *Sim) wrongField(now float64) {
	if s.trace != nil {
		s.obs.Emit(Event{T: now}) // want "without a dominating nil check"
	}
}

func (s *Sim) earlyReturn(now float64) {
	if s.obs == nil {
		return
	}
	s.obs.Emit(Event{T: now})
	s.obs.Emit(Event{T: now + 1})
}

func (s *Sim) conjunction(now float64, hot bool) {
	if hot && s.obs != nil {
		s.obs.Emit(Event{T: now})
	}
}

// deferred guards at capture time, but the closure fires later — the
// guard must not carry in.
func (s *Sim) deferred(now float64) func() {
	if s.obs == nil {
		return nil
	}
	return func() {
		s.obs.Emit(Event{T: now}) // want "without a dominating nil check"
	}
}

func (s *Sim) closureGuarded(now float64) func() {
	return func() {
		if s.obs != nil {
			s.obs.Emit(Event{T: now})
		}
	}
}

// allowed documents an out-of-band invariant instead of a guard.
func (s *Sim) allowed(now float64) {
	s.obs.Emit(Event{T: now}) //lint:allow obsguard -- fixture: constructor guarantees non-nil
}
