// Package inner supplies the sinks the progwalltime fixture reaches: a
// two-hop static chain, an interface implementation, and a callback fired
// through a func value.
package inner

import "time"

// Helper is the cross-package chain link; the sink sits one hop deeper.
// Its signature deliberately differs from the fixture's callback type so
// the only route here is the static chain, keeping the printed chain
// deterministic.
func Helper() int {
	return tick()
}

func tick() int {
	return int(time.Now().UnixNano()) // want "Helper -> .*inner.tick -> time.Now"
}

// WallClock implements the root package's Clock interface.
type WallClock struct{}

// Tick is reached only through the interface dispatch in Run.
func (WallClock) Tick() float64 {
	return float64(time.Now().UnixNano()) // want "WallClock.?.Tick -> time.Now"
}

// Stamp is stored as a callback in the fixture Sim and fired through a
// func value; only the address-taken dynamic edges reach it.
func Stamp() float64 {
	return float64(time.Now().UnixNano()) // want "inner.Stamp -> time.Now"
}
