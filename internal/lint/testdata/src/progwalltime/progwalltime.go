// Package progwalltime is the transitive-walltime fixture: a miniature
// simulation whose Run entry point reaches the wall clock through a
// cross-package static chain, an interface dispatch, and a callback fired
// through a stored func value — the three edge kinds the call-graph facts
// layer must not lose. It also pins the suppression semantics: an allow on
// the sink line survives as a finding, an allow on the declaration does
// not.
package progwalltime

import (
	"time"

	"antidope/internal/lint/testdata/src/progwalltime/inner"
)

// Clock is dispatched through an interface value; the analyzer adds CHA
// edges to every implementation in the program.
type Clock interface {
	Tick() float64
}

// Sim is the fixture simulation.
type Sim struct {
	clk Clock
	cb  func() float64
}

// New wires the interface implementation and the stored callback the
// dynamic call in Run fires.
func New() *Sim {
	return &Sim{clk: inner.WallClock{}, cb: inner.Stamp}
}

// Run is the fixture's simulation entry point.
//
//lint:root
func (s *Sim) Run() float64 {
	total := float64(inner.Helper()) // cross-package static chain
	total += s.clk.Tick()   // interface dispatch
	if s.cb != nil {
		total += s.cb() // dynamic call through a stored func value
	}
	total += sinkAllowed()
	total += headAllowed()
	return total
}

// sinkAllowed keeps its allow on the SINK line. That satisfies only the
// per-package walltime analyzer; the transitive finding anchors its
// suppression at this function's declaration and must survive.
func sinkAllowed() float64 {
	return float64(time.Now().UnixNano()) //lint:allow walltime -- sink-level only // want "reachable from a simulation root"
}

// headAllowed asserts the stronger claim — this whole function may touch
// the wall clock despite being reachable from a root — so the
// declaration-level allow silences the transitive finding.
//
//lint:allow walltime -- fixture: declaration-level assertion
func headAllowed() float64 {
	return float64(time.Now().UnixNano())
}

// Orphan is never called from the root: the reachability pass ignores it
// (the per-package walltime analyzer would still flag the sink).
func Orphan() float64 {
	return float64(time.Now().UnixNano())
}
