// Package progrand is the transitive-globalrand fixture: the root reaches
// the global math/rand PRNG through a helper, while an unreachable
// function using it stays out of the findings.
package progrand

import "math/rand"

// Run is the fixture's simulation entry point.
//
//lint:root
func Run() int {
	return helper()
}

func helper() int {
	return rand.Intn(10) // want "math/rand.Intn is reachable from a simulation root"
}

// Orphan is not reachable from Run; the transitive pass must ignore it.
func Orphan() int {
	return rand.Int()
}
