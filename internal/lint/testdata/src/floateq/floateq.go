// Fixture for the floateq analyzer: float ==/!= are flagged (including
// against literals and in NaN-check form), integer and fully-constant
// comparisons are clean, and //lint:allow is honored.
package floateq

func badEq(a, b float64) bool {
	return a == b // want "floating-point == comparison is brittle"
}

func badNeqZero(a float64) bool {
	return a != 0 // want "floating-point != comparison is brittle"
}

func badNaNCheck(a float64) bool {
	return a != a // want "floating-point != comparison is brittle"
}

func badFloat32(a, b float32) bool {
	return a == b // want "floating-point == comparison is brittle"
}

func cleanInt(a, b int) bool { return a == b }

func cleanConst() bool {
	const eps = 1e-9
	return eps == 1e-9 // decided at compile time; cannot drift
}

func cleanOrdered(a, b float64) bool { return a < b }

func allowed(u float64) bool {
	return u == 0 //lint:allow floateq -- fixture: escape hatch must be honored
}
