package globalrand

import (
	legacy "math/rand" //lint:allow globalrand -- fixture: escape hatch must be honored
)

func allowed() int { return legacy.Intn(10) }
