// Fixture for the globalrand analyzer: both math/rand generations are
// flagged at the import site; crypto/rand and internal streams are not.
package globalrand

import (
	"crypto/rand"
	mrand "math/rand"     // want "math/rand is non-reproducible"
	randv2 "math/rand/v2" // want "math/rand/v2 is non-reproducible"
)

func bad() int {
	return mrand.Int() + int(randv2.Uint64())
}

func clean() []byte {
	b := make([]byte, 8)
	_, _ = rand.Read(b) // crypto/rand is for keys, not simulation draws
	return b
}
