// Fixture for the walltime analyzer: wall-clock entry points are flagged,
// pure time-value arithmetic is not, and //lint:allow is honored.
package walltime

import "time"

func bad() {
	t := time.Now()                 // want "time.Now reads the wall clock"
	time.Sleep(time.Millisecond)    // want "time.Sleep reads the wall clock"
	_ = time.Since(t)               // want "time.Since reads the wall clock"
	_ = time.Until(t)               // want "time.Until reads the wall clock"
	<-time.After(time.Second)       // want "time.After reads the wall clock"
	_ = time.NewTicker(time.Second) // want "time.NewTicker reads the wall clock"
}

func clean() time.Duration {
	d := 3 * time.Second  // duration arithmetic carries no clock
	u := time.Unix(42, 0) // fixed timestamps are reproducible
	_ = u.Add(d)
	_, _ = time.ParseDuration("1h")
	return d
}

func allowed() time.Time {
	return time.Now() //lint:allow walltime -- fixture: escape hatch must be honored
}

func allowedAbove() time.Time {
	//lint:allow walltime -- fixture: comment on the line above also counts
	return time.Now()
}
