// Fixture for the unitsuffix analyzer: additive arithmetic and
// comparisons across conflicting unit suffixes are flagged; same-unit
// arithmetic and multiplicative unit changes are clean.
package unitsuffix

func badAdd(peakW, energyJ float64) float64 {
	return peakW + energyJ // want "peakW \+ energyJ mixes units W and J"
}

func badScale(budgetW, reserveKW float64) float64 {
	return budgetW - reserveKW // want "budgetW - reserveKW mixes units W and kW"
}

func badCompare(horizonSec, latencyMs float64) bool {
	return horizonSec < latencyMs // want "horizonSec < latencyMs mixes units s and ms"
}

type result struct {
	budgetW     float64
	overBudgetJ float64
	warmupSec   float64
}

func badField(r *result) {
	r.budgetW += r.overBudgetJ // want "budgetW \+= overBudgetJ mixes units W and J"
}

func badMixedDims(r *result, tickMs float64) bool {
	return r.warmupSec >= tickMs // want "warmupSec >= tickMs mixes units s and ms"
}

func cleanSameUnit(peakW, meanW float64) float64 {
	return peakW - meanW
}

func cleanMultiply(powerW, dtSec float64) float64 {
	return powerW * dtSec // W × s = J: multiplication changes units on purpose
}

func cleanNoSuffix(count, total int) int {
	return count + total
}

func cleanShortName(w, j float64) float64 {
	return w + j // bare one-letter names claim no unit
}

func allowed(peakW, energyJ float64) float64 {
	return peakW + energyJ //lint:allow unitsuffix -- fixture: escape hatch must be honored
}
