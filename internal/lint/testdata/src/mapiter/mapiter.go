// Fixture for the mapiter analyzer: order-sensitive map-range bodies are
// flagged, the collect-keys-then-sort idiom and order-insensitive bodies
// are clean, and //lint:allow is honored.
package mapiter

import (
	"fmt"
	"sort"
)

func badAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "append to out under map iteration without sorting"
	}
	return out
}

func goodSortedAppend(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func goodSortSlice(m map[int64]int) []int64 {
	keys := make([]int64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func badFloatAccum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want "floating-point accumulation of total across map iteration"
	}
	return total
}

func badFloatLonghand(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum = sum + v // want "floating-point accumulation of sum across map iteration"
	}
	return sum
}

func goodIntCount(m map[string]int) int {
	n := 0
	for range m {
		n++ // integer counting is order-independent
	}
	return n
}

func goodLoopLocal(m map[string]float64) {
	for _, v := range m {
		x := 0.0
		x += v // accumulator lives inside the loop: no order escapes
		_ = x
	}
}

func badPrint(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "fmt.Println inside map iteration"
	}
}

func goodSliceRange(xs []float64) float64 {
	total := 0.0
	for _, v := range xs {
		total += v // slices iterate in order; nothing to flag
	}
	return total
}

func allowedAccum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v //lint:allow mapiter -- fixture: escape hatch must be honored
	}
	return total
}
