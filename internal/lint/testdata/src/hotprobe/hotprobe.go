// Package hotprobe is the hotalloc fixture: a buildable package whose
// //hot:allocfree annotations cover one genuinely allocation-free
// function, one function with a known-escaping closure, and one with a
// deliberate, annotated cold-path allocation. The analyzer shells out to
// the real compiler, so the wants here pin actual escape-analysis output.
package hotprobe

// Sum is allocation-free: everything stays on the stack.
//
//hot:allocfree
func Sum(xs []float64) float64 {
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t
}

// Counter returns a closure that captures n, forcing both the variable
// and the func literal onto the heap — two escape decisions inside an
// annotated body.
//
//hot:allocfree
func Counter() func() int {
	n := 0 // want "heap-allocates"
	return func() int { // want "heap-allocates"
		n++
		return n
	}
}

// Grow's warm-up allocation is deliberate and carries a line-level allow,
// so only the closure findings above survive.
//
//hot:allocfree
func Grow(buf []int) []int {
	if cap(buf) == 0 {
		buf = make([]int, 0, 64) //lint:allow hotalloc -- deliberate cold-path warm-up
	}
	return append(buf, 1)
}

// Boxed is not annotated: its allocation is nobody's business.
func Boxed(v int) *int {
	return &v
}
