package lint

import (
	"bufio"
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// HotAlloc machine-checks the zero-allocation contract of the simulator's
// hot path. A function annotated with a `//hot:allocfree` comment (in or
// directly above its doc comment) must not heap-allocate: the analyzer
// compiles the annotated packages with `go build -gcflags='-m -m'` and
// fails on any escape-analysis decision inside an annotated function's
// body — composite literals or make/new escaping to heap, variables moved
// to heap (closure captures), or escaping function literals.
//
// Two refinements keep the check equal in spirit to the runtime
// testing.AllocsPerRun assertions it backs up:
//
//   - Allocations on a panic path are exempt: a hot function may allocate
//     in order to die (panic(fmt.Sprintf(...)) is the house idiom for
//     contract violations), because a taken panic path ends the run.
//   - A `//lint:allow hotalloc -- reason` on the allocation line exempts
//     a deliberate cold-path allocation, e.g. the event pool refilling on
//     a miss: steady state never executes it, but the compiler cannot
//     know that.
//
// The check is per-function, not interprocedural: a call into a callee
// that allocates internally is not attributed to the annotated caller
// (the runtime alloc tests remain the backstop for whole-path budgets).
var HotAlloc = &ProgramAnalyzer{
	Name: "hotalloc",
	Doc: "forbid heap allocation inside //hot:allocfree functions, " +
		"verified against the compiler's escape analysis " +
		"(go build -gcflags='-m -m')",
	Run: runHotAlloc,
}

// hotMarker is the annotation that opts a function into the check.
const hotMarker = "//hot:allocfree"

// hotFunc is one annotated function's source span.
type hotFunc struct {
	name     string
	file     string // absolute path
	from, to int    // line span of the declaration
	// cold are lines whose allocations are exempt (panic call spans).
	cold map[int]bool
}

// escapeLine matches one escape-analysis diagnostic:
//
//	internal/simtime/engine.go:128:8: &event{...} escapes to heap:
var escapeLine = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

func runHotAlloc(prog *Program) ([]Diagnostic, error) {
	fset := prog.Fset()
	var hot []hotFunc
	pkgSet := map[string]bool{}
	tokFiles := map[string]*token.File{}

	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			tf := fset.File(f.Pos())
			if tf == nil {
				continue
			}
			tokFiles[tf.Name()] = tf
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !hasHotMarker(fd) {
					continue
				}
				hf := hotFunc{
					name: funcLabel(pkg, fd),
					file: tf.Name(),
					from: fset.Position(fd.Pos()).Line,
					to:   fset.Position(fd.End()).Line,
					cold: panicLines(fset, fd),
				}
				hot = append(hot, hf)
				pkgSet[pkg.Path] = true
			}
		}
	}
	if len(hot) == 0 {
		return nil, nil
	}

	pkgs := make([]string, 0, len(pkgSet))
	for p := range pkgSet {
		pkgs = append(pkgs, p)
	}
	sort.Strings(pkgs)

	out, err := escapeAnalysis(prog.Dir, pkgs)
	if err != nil {
		return nil, err
	}

	var diags []Diagnostic
	seen := map[string]bool{}
	sc := bufio.NewScanner(bytes.NewReader(out))
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		m := escapeLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		// The compiler prints a decision both with a trailing colon (opening
		// the -m -m explanation) and without; normalize so they dedupe.
		msg := strings.TrimSuffix(m[4], ":")
		if !isAllocDecision(msg) {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(prog.Dir, file)
		}
		line, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		for i := range hot {
			hf := &hot[i]
			if hf.file != file || line < hf.from || line > hf.to {
				continue
			}
			if hf.cold[line] {
				continue
			}
			key := fmt.Sprintf("%s:%d:%s", file, line, msg)
			if seen[key] {
				continue
			}
			seen[key] = true
			diags = append(diags, Diagnostic{
				Pos: linePos(tokFiles[hf.file], line, col),
				Message: fmt.Sprintf(
					"//hot:allocfree function %s heap-allocates: %s "+
						"(escape analysis; annotate a deliberate cold-path "+
						"allocation with //lint:allow hotalloc -- reason)",
					hf.name, msg),
			})
			break
		}
	}
	return diags, sc.Err()
}

// escapeAnalysis compiles the packages with escape-analysis diagnostics
// enabled and returns the combined compiler output. The build cache
// replays diagnostics, so repeated runs cost one cache probe per package.
func escapeAnalysis(dir string, pkgs []string) ([]byte, error) {
	args := append([]string{"build", "-gcflags=-m -m"}, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m -m: %v\n%s", err, buf.String())
	}
	return buf.Bytes(), nil
}

// isAllocDecision reports whether one escape-analysis message describes a
// heap allocation (rather than an inlining note, a non-escape, or a flow
// explanation).
func isAllocDecision(msg string) bool {
	if strings.Contains(msg, "does not escape") {
		return false
	}
	if strings.Contains(msg, "flow:") || strings.Contains(msg, "from ") && strings.Contains(msg, " at ") {
		// -m -m explanation sublines; the decision line was already seen.
		return false
	}
	return strings.Contains(msg, "escapes to heap") ||
		strings.HasPrefix(msg, "moved to heap:")
}

// hasHotMarker reports whether the function's doc comment carries the
// //hot:allocfree annotation.
func hasHotMarker(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), hotMarker) {
			return true
		}
	}
	return false
}

// panicLines returns the lines covered by panic(...) call expressions in
// the function body: allocating only to die is allowed.
func panicLines(fset *token.FileSet, fd *ast.FuncDecl) map[int]bool {
	cold := map[int]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if ident, ok := call.Fun.(*ast.Ident); ok && ident.Name == "panic" {
			from := fset.Position(call.Pos()).Line
			to := fset.Position(call.End()).Line
			for l := from; l <= to; l++ {
				cold[l] = true
			}
		}
		return true
	})
	return cold
}

// funcLabel renders "pkg.Func" or "pkg.(*T).M" for diagnostics.
func funcLabel(pkg *Package, fd *ast.FuncDecl) string {
	if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok && obj != nil {
		return funcDisplayName(obj)
	}
	return pkg.Path + "." + fd.Name.Name
}

// linePos converts (line, col) back to a token.Pos in tf, clamping
// defensively: a stale compiler line (should not happen — the loader and
// the compiler read the same files) degrades to the file start.
func linePos(tf *token.File, line, col int) token.Pos {
	if tf == nil {
		return token.NoPos
	}
	if line < 1 || line > tf.LineCount() {
		return tf.Pos(0)
	}
	p := tf.LineStart(line)
	if col > 1 {
		// Advance within the line without crossing into the next one.
		off := tf.Offset(p) + col - 1
		if off < tf.Size() {
			np := tf.Pos(off)
			if tf.Line(np) == line {
				p = np
			}
		}
	}
	return p
}
