package lint

import (
	"fmt"
	"sort"
)

// The transitive forms of walltime and globalrand: instead of flagging
// every syntactic use (the per-package analyzers already do), these walk
// the call-graph facts and flag forbidden entry points that are REACHABLE
// from a simulation root — core.(*Simulation).Run or harness.(*Pool).Run.
// The diagnostic prints the full call chain, so "who drags the wall clock
// into a run?" is answered by the finding itself.
//
// Suppression is deliberately stricter than the per-package analyzers': a
// //lint:allow walltime on the sink line says "this call is intentional"
// and satisfies only the syntactic check. To assert the stronger claim —
// "this function may touch the wall clock even though a simulation can
// reach it" — the allow comment must sit at the chain head: on (or
// directly above) the declaration of the function containing the sink.
// The harness watchdog is the canonical example: its timer is annotated
// at both levels, with the reason documented once at the function head.

// WallTimeReach reports wall-clock entry points reachable from the
// simulation roots, with the call chain.
var WallTimeReach = &ProgramAnalyzer{
	Name: "walltime",
	Doc: "whole-program: forbid wall-clock entry points transitively " +
		"reachable from core.(*Simulation).Run / harness.(*Pool).Run; " +
		"prints the offending call chain",
	Run: func(p *Program) ([]Diagnostic, error) { return runReach(p, SinkWallTime) },
}

// GlobalRandReach reports math/rand uses reachable from the simulation
// roots, with the call chain.
var GlobalRandReach = &ProgramAnalyzer{
	Name: "globalrand",
	Doc: "whole-program: forbid math/rand and math/rand/v2 transitively " +
		"reachable from core.(*Simulation).Run / harness.(*Pool).Run; " +
		"prints the offending call chain",
	Run: func(p *Program) ([]Diagnostic, error) { return runReach(p, SinkGlobalRand) },
}

func runReach(p *Program, kind SinkKind) ([]Diagnostic, error) {
	g := p.Graph()
	roots := p.roots()
	if len(roots) == 0 {
		return nil, nil
	}
	parent := g.Reach(roots)

	// Deterministic iteration: sort reachable nodes by name.
	nodes := make([]*FuncNode, 0, len(parent))
	for n := range parent {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Name < nodes[j].Name })

	fset := p.Fset()
	var diags []Diagnostic
	for _, n := range nodes {
		if len(n.Sinks) == 0 {
			continue
		}
		chain := Chain(parent, n)
		// One call site can be recorded twice (call classification and the
		// selector walk both see it); dedupe by source line and sink name.
		seen := map[string]bool{}
		for _, s := range n.Sinks {
			pos := fset.Position(s.Pos)
			key := fmt.Sprintf("%s:%d:%s", pos.Filename, pos.Line, s.Desc)
			if s.Kind != kind || seen[key] {
				continue
			}
			seen[key] = true
			diags = append(diags, Diagnostic{
				Pos: s.Pos,
				Message: fmt.Sprintf(
					"%s is reachable from a simulation root: %s -> %s "+
						"(transitive %s; to assert this function may use it, "+
						"put //lint:allow %s on its declaration)",
					s.Desc, chain, s.Desc, kind, kind),
				SuppressPos: n.Pos,
			})
		}
	}
	return diags, nil
}
