// Package lint implements the antidope determinism lint suite: a set of
// static analyzers that machine-check the reproducibility contract the
// simulator depends on (no wall clock, no global PRNG, no map-iteration
// order reaching results, no brittle float equality, no mixed physical
// units).
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis —
// Analyzer, Pass, Diagnostic — but is built on the standard library only
// (go/ast, go/types, export data via `go list -export`), so the repo stays
// dependency-free and the linters run in any environment that has a Go
// toolchain. If the repo ever vendors x/tools, each analyzer ports to a
// real analysis.Analyzer mechanically.
//
// Suppression: a finding on line N is suppressed by a comment
// `//lint:allow <analyzer>` on line N or line N-1. An optional
// `-- reason` suffix documents why exactness/ordering is intended:
//
//	if u == 0 { //lint:allow floateq -- exact sentinel, not a measure
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one determinism check. Run inspects a single type-checked
// package through pass and reports findings via pass.Reportf.
type Analyzer struct {
	// Name is the short identifier used in diagnostics and in
	// //lint:allow comments.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run executes the analyzer over one package.
	Run func(pass *Pass) error
}

// Pass carries one package's syntax and type information through an
// analyzer run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one finding, attributed to the analyzer that produced it.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
	// SuppressPos, when set, is where a //lint:allow comment must sit to
	// suppress this finding, instead of Pos. The whole-program analyzers use
	// it to move the decision point: a transitive walltime finding prints at
	// the sink call but is only silenced at the head of the function that
	// contains it — the sink-level allow belongs to the per-package check.
	SuppressPos token.Pos
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// PkgPath returns the import path of the package from a *types.PkgName
// use of ident, or "" if ident does not name an imported package.
func (p *Pass) PkgPath(ident *ast.Ident) string {
	if obj, ok := p.TypesInfo.Uses[ident]; ok {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn.Imported().Path()
		}
	}
	return ""
}

// All returns the full determinism suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		WallTime,
		GlobalRand,
		MapIter,
		FloatEq,
		UnitSuffix,
		ObsGuard,
		SortedIter,
		ErrFlow,
	}
}

// allowRe matches //lint:allow comments; group 1 is the analyzer list
// (comma- or space-separated), anything after " -- " is a free-form reason.
var allowRe = regexp.MustCompile(`^//\s*lint:allow\s+([A-Za-z0-9_, \t]+?)\s*(?:--.*)?$`)

// suppressions maps file base name and line to the set of analyzer names
// allowed there.
type suppressions map[string]map[int]map[string]bool

func buildSuppressions(fset *token.FileSet, files []*ast.File) suppressions {
	sup := suppressions{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := sup[pos.Filename]
				if byLine == nil {
					byLine = map[int]map[string]bool{}
					sup[pos.Filename] = byLine
				}
				names := byLine[pos.Line]
				if names == nil {
					names = map[string]bool{}
					byLine[pos.Line] = names
				}
				for _, name := range strings.FieldsFunc(m[1], func(r rune) bool {
					return r == ',' || r == ' ' || r == '\t'
				}) {
					names[name] = true
				}
			}
		}
	}
	return sup
}

func (s suppressions) suppressed(fset *token.FileSet, d Diagnostic) bool {
	at := d.Pos
	if d.SuppressPos != token.NoPos {
		at = d.SuppressPos
	}
	pos := fset.Position(at)
	byLine, ok := s[pos.Filename]
	if !ok {
		return false
	}
	// An allow comment applies to its own line (trailing comment) or to
	// the line directly below it (comment above the statement).
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		if names, ok := byLine[line]; ok && names[d.Analyzer] {
			return true
		}
	}
	return false
}

// RunPackage runs the given analyzers over one loaded package, applies
// //lint:allow suppressions, and returns the surviving diagnostics in
// source order.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	sup := buildSuppressions(pkg.Fset, pkg.Files)
	kept := diags[:0]
	for _, d := range diags {
		if !sup.suppressed(pkg.Fset, d) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].Pos != kept[j].Pos {
			return kept[i].Pos < kept[j].Pos
		}
		return kept[i].Analyzer < kept[j].Analyzer
	})
	return kept, nil
}
