package lint

import (
	"go/ast"
)

// wallTimeFuncs are the package-time entry points that leak the wall
// clock (or real-time scheduling) into a run. Pure value handling —
// time.Duration arithmetic, time.Unix, Parse/Format — is allowed.
var wallTimeFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

// WallTime forbids wall-clock access: every simulated timestamp must flow
// through internal/simtime's virtual clock, or replaying a scenario stops
// being bit-exact.
var WallTime = &Analyzer{
	Name: "walltime",
	Doc: "forbid time.Now/Since/Sleep/After and friends; simulation time " +
		"must come from internal/simtime so runs replay bit-exactly",
	Run: runWallTime,
}

func runWallTime(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok || pass.PkgPath(ident) != "time" {
				return true
			}
			if wallTimeFuncs[sel.Sel.Name] {
				pass.Reportf(sel.Pos(),
					"time.%s reads the wall clock and breaks deterministic replay; use the internal/simtime engine clock",
					sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}
