package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapIter flags `range` over a map whose body is order-sensitive: the
// random iteration order must never reach a slice that stays unsorted, a
// floating-point accumulator (float addition is not associative), or an
// output stream. Collecting keys and sorting them afterwards is the
// sanctioned idiom and is recognized as clean.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc: "flag order-sensitive map iteration (unsorted appends, float " +
		"accumulation, printing) so iteration order never reaches a result",
	Run: runMapIter,
}

func runMapIter(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMapRanges(pass, fd.Body)
		}
	}
	return nil
}

func checkMapRanges(pass *Pass, fn *ast.BlockStmt) {
	ast.Inspect(fn, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapBody(pass, fn, rs)
		return true
	})
}

// checkMapBody inspects one map-range body for order-sensitive effects.
// fn is the enclosing function body, used to look for a sort call after
// the loop.
func checkMapBody(pass *Pass, fn *ast.BlockStmt, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			checkMapAssign(pass, fn, rs, st)
		case *ast.CallExpr:
			if sel, ok := st.Fun.(*ast.SelectorExpr); ok {
				if ident, ok := sel.X.(*ast.Ident); ok && pass.PkgPath(ident) == "fmt" &&
					(strings.HasPrefix(sel.Sel.Name, "Print") || strings.HasPrefix(sel.Sel.Name, "Fprint")) {
					pass.Reportf(st.Pos(),
						"fmt.%s inside map iteration makes output depend on iteration order; sort the keys first",
						sel.Sel.Name)
				}
			}
		}
		return true
	})
}

func checkMapAssign(pass *Pass, fn *ast.BlockStmt, rs *ast.RangeStmt, st *ast.AssignStmt) {
	if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
		return
	}
	obj := assignTarget(pass, st.Lhs[0])
	if obj == nil || declaredInside(obj, rs) {
		return
	}
	switch st.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		if isFloat(obj.Type()) {
			pass.Reportf(st.Pos(),
				"floating-point accumulation of %s across map iteration is order-dependent (float ops are not associative); sort the keys first",
				obj.Name())
		}
	case token.ASSIGN:
		if call, ok := st.Rhs[0].(*ast.CallExpr); ok && isBuiltinAppend(pass, call) {
			if !sortedAfter(pass, fn, rs, obj) {
				pass.Reportf(st.Pos(),
					"append to %s under map iteration without sorting afterwards leaks iteration order into the slice; sort %s after the loop",
					obj.Name(), obj.Name())
			}
			return
		}
		// x = x + delta spelled out longhand.
		if bin, ok := st.Rhs[0].(*ast.BinaryExpr); ok && isFloat(obj.Type()) &&
			(bin.Op == token.ADD || bin.Op == token.SUB || bin.Op == token.MUL || bin.Op == token.QUO) &&
			exprRefs(pass, bin, obj) {
			pass.Reportf(st.Pos(),
				"floating-point accumulation of %s across map iteration is order-dependent (float ops are not associative); sort the keys first",
				obj.Name())
		}
	}
}

// assignTarget resolves the object written by an assignment LHS that is
// a plain identifier or a field selector.
func assignTarget(pass *Pass, lhs ast.Expr) types.Object {
	switch e := lhs.(type) {
	case *ast.Ident:
		return pass.TypesInfo.ObjectOf(e)
	case *ast.SelectorExpr:
		return pass.TypesInfo.ObjectOf(e.Sel)
	}
	return nil
}

// declaredInside reports whether obj's declaration lies within the range
// statement, i.e. it is loop-local and cannot carry order outside.
func declaredInside(obj types.Object, rs *ast.RangeStmt) bool {
	return obj.Pos() != token.NoPos && obj.Pos() >= rs.Pos() && obj.Pos() <= rs.End()
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	ident, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.ObjectOf(ident).(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedAfter reports whether obj is handed to a sort.* or slices.Sort*
// call after the loop within the same function body — the sanctioned
// collect-keys-then-sort idiom.
func sortedAfter(pass *Pass, fn *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	sorted := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		ident, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkg := pass.PkgPath(ident)
		isSortCall := pkg == "sort" ||
			(pkg == "slices" && strings.HasPrefix(sel.Sel.Name, "Sort"))
		if !isSortCall {
			return true
		}
		for _, arg := range call.Args {
			if exprRefs(pass, arg, obj) {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}

// exprRefs reports whether expr mentions obj.
func exprRefs(pass *Pass, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if ident, ok := n.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(ident) == obj {
			found = true
			return false
		}
		return !found
	})
	return found
}
