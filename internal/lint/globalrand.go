package lint

import (
	"strconv"
)

// GlobalRand forbids math/rand and math/rand/v2. The global generators
// are seeded from runtime state, and even locally-constructed rand.Rand
// values do not split: inserting one draw shifts every later sequence.
// internal/rng streams are splittable precisely so components stay
// independent.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc: "forbid math/rand and math/rand/v2 imports; use internal/rng " +
		"splittable streams so adding a consumer never perturbs another",
	Run: runGlobalRand,
}

func runGlobalRand(pass *Pass) error {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(),
					"import of %s is non-reproducible across runs; use internal/rng streams (Split per component)",
					path)
			}
		}
	}
	return nil
}
