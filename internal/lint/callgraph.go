package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the lint suite's cross-package facts layer: an approximate
// whole-program call graph over every loaded package, built once per run
// and shared by the program analyzers (transitive walltime/globalrand,
// and any future reachability check).
//
// The graph is deliberately over-approximate — it must never miss a path
// from a simulation root to a non-deterministic sink, at the cost of some
// spurious edges:
//
//   - Static calls resolve through the type checker (including method
//     calls on concrete receivers).
//   - Interface method calls use class-hierarchy analysis: an edge is
//     added to every concrete method of that name, on any named type in
//     the program that implements the interface.
//   - Calls through func values (the engine firing a scheduled callback,
//     a pre-bound method value, a stored closure) edge to every
//     address-taken function or closure in the program whose signature is
//     identical — the graph never needs to know *which* callback a
//     dynamic call site fires, only which ones it could.
//   - A func value handed to a function outside the loaded set (say a
//     comparator passed to sort.Slice) gets a direct may-call edge from
//     the caller, since the callee's body is not available to carry it.
//
// Function literals are first-class nodes named parent$n, so a chain
// through a pre-bound callback reads naturally in diagnostics.

// SinkKind classifies the non-deterministic entry points the facts layer
// records while walking function bodies.
type SinkKind string

const (
	// SinkWallTime marks a call to one of time's wall-clock entry points
	// (the same set the per-package walltime analyzer forbids).
	SinkWallTime SinkKind = "walltime"
	// SinkGlobalRand marks any use of math/rand or math/rand/v2.
	SinkGlobalRand SinkKind = "globalrand"
)

// SinkCall is one direct use of a forbidden entry point inside a function.
type SinkCall struct {
	Kind SinkKind
	Pos  token.Pos
	// Desc names the entry point, e.g. "time.Now" or "math/rand.Intn".
	Desc string
}

// FuncNode is one function, method, or function literal in the call graph.
type FuncNode struct {
	// Name is the stable display name: "pkg/path.Func",
	// "pkg/path.(*T).Method", or "pkg/path.Func$1" for literals.
	Name string
	// Obj is the type-checker object; nil for function literals.
	Obj *types.Func
	// Pkg is the loaded package that declares the function.
	Pkg *Package
	// Pos is the declaration position (the func keyword).
	Pos token.Pos
	// Calls are the outgoing edges in source order.
	Calls []CallEdge
	// Sinks are direct uses of forbidden entry points in this body.
	Sinks []SinkCall

	// litSig is the signature of a function literal node (Obj == nil).
	litSig *types.Signature
}

// CallEdge is one possible call from a function.
type CallEdge struct {
	Callee *FuncNode
	// Pos is the call (or hand-off) site in the caller.
	Pos token.Pos
}

// CallGraph is the whole-program facts structure.
type CallGraph struct {
	// Nodes maps display name to node. Function literals get synthetic
	// names, so every node is addressable.
	Nodes map[string]*FuncNode

	byObj map[*types.Func]*FuncNode
	// addrTaken are functions whose value is taken somewhere (assigned,
	// stored, passed), keyed for dynamic-call resolution.
	addrTaken []*FuncNode
	// methodsByName indexes every concrete method in the program by name,
	// for interface-call resolution.
	methodsByName map[string][]*FuncNode
}

// BuildCallGraph constructs the facts layer over the loaded packages.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		Nodes:         map[string]*FuncNode{},
		byObj:         map[*types.Func]*FuncNode{},
		methodsByName: map[string][]*FuncNode{},
	}
	b := &graphBuilder{g: g}
	// Pass 1: create nodes for every declared function and method, and
	// index concrete methods for interface resolution.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				node := &FuncNode{
					Name: funcDisplayName(obj),
					Obj:  obj,
					Pkg:  pkg,
					Pos:  fd.Pos(),
				}
				g.Nodes[node.Name] = node
				g.byObj[obj] = node
				if fd.Recv != nil {
					g.methodsByName[obj.Name()] = append(g.methodsByName[obj.Name()], node)
				}
			}
		}
	}
	// Pass 2: walk bodies, creating literal nodes and collecting edges,
	// sinks, and the address-taken set.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				b.walkBody(g.byObj[obj], pkg, fd.Body)
			}
		}
	}
	// Pass 3: resolve dynamic calls against the address-taken set.
	b.resolveDynamic()
	return g
}

type graphBuilder struct {
	g *CallGraph
	// dynCalls are call sites through func values, resolved after the
	// address-taken set is complete.
	dynCalls []dynCall
}

type dynCall struct {
	caller *FuncNode
	sig    *types.Signature
	pos    token.Pos
}

// walkBody collects edges, sinks, and nested literals for one function
// body. Nested FuncLits become their own nodes; statements inside them are
// attributed to the literal, not the parent.
func (b *graphBuilder) walkBody(node *FuncNode, pkg *Package, body *ast.BlockStmt) {
	litCount := 0
	var walk func(n ast.Node, owner *FuncNode) bool
	walk = func(n ast.Node, owner *FuncNode) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			litCount++
			lit := &FuncNode{
				Name: fmt.Sprintf("%s$%d", node.Name, litCount),
				Pkg:  pkg,
				Pos:  e.Pos(),
			}
			if tv, ok := pkg.Info.Types[e]; ok {
				lit.litSig, _ = tv.Type.Underlying().(*types.Signature)
			}
			b.g.Nodes[lit.Name] = lit
			// A literal only runs if something calls its value; creating it
			// marks it address-taken (rule 1 of the dynamic-call model).
			b.g.addrTaken = append(b.g.addrTaken, lit)
			ast.Inspect(e.Body, func(m ast.Node) bool { return walk(m, lit) })
			return false // children handled under the literal's identity
		case *ast.CallExpr:
			b.recordCall(owner, pkg, e)
			return true
		case *ast.SelectorExpr:
			b.recordUse(owner, pkg, e.Sel, e)
			return true
		case *ast.Ident:
			b.recordUse(owner, pkg, e, e)
			return true
		}
		return true
	}
	ast.Inspect(body, func(n ast.Node) bool { return walk(n, node) })
}

// recordCall classifies one call expression and adds the matching edge or
// sink. Non-call uses of function values are handled by recordUse; the
// callee expression itself is excluded from address-taking by position.
func (b *graphBuilder) recordCall(owner *FuncNode, pkg *Package, call *ast.CallExpr) {
	callee := ast.Unparen(call.Fun)

	// Conversions and builtin calls are not calls for our purposes.
	if tv, ok := pkg.Info.Types[callee]; ok && tv.IsType() {
		return
	}
	switch fn := callee.(type) {
	case *ast.Ident:
		switch obj := pkg.Info.Uses[fn].(type) {
		case *types.Builtin:
			return
		case *types.Func:
			b.addStaticEdge(owner, obj, call.Pos())
			return
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fn]; ok {
			if fobj, ok := sel.Obj().(*types.Func); ok {
				if recvIsInterface(fobj) {
					b.addInterfaceEdges(owner, fobj, call.Pos())
				} else {
					b.addStaticEdge(owner, fobj, call.Pos())
				}
				return
			}
		} else if fobj, ok := pkg.Info.Uses[fn.Sel].(*types.Func); ok {
			// Package-qualified call: pkg.Fn(...).
			b.addStaticEdge(owner, fobj, call.Pos())
			return
		}
	}
	// Anything else with a function type is a dynamic call through a value.
	if tv, ok := pkg.Info.Types[callee]; ok {
		if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
			b.dynCalls = append(b.dynCalls, dynCall{caller: owner, sig: sig, pos: call.Pos()})
		}
	}
}

// recordUse handles a non-call mention of a function: taking a method
// value, assigning a function to a variable, passing it as an argument.
// Such a function joins the address-taken set; when the reference is an
// argument to a function outside the loaded set, the caller also gets a
// direct may-call edge (the external callee can invoke it invisibly).
func (b *graphBuilder) recordUse(owner *FuncNode, pkg *Package, ident *ast.Ident, expr ast.Expr) {
	obj, ok := pkg.Info.Uses[ident].(*types.Func)
	if !ok {
		return
	}
	// Only references outside call position matter; calls were classified
	// by recordCall. A cheap disambiguation: a call's Fun is visited via
	// recordCall's return path, but ast.Inspect still reaches it, so skip
	// idents whose parent call already consumed them by checking the type
	// of the surrounding expression is a signature AND the use is not
	// invoked. Precise parent tracking costs more than it is worth: an
	// extra address-taken entry for a directly-called function only adds
	// edges the static pass already added.
	node := b.nodeFor(obj)
	if node == nil {
		b.recordSinkUse(owner, obj, expr.Pos())
		return
	}
	b.g.addrTaken = append(b.g.addrTaken, node)
	_ = expr
}

// nodeFor returns the graph node for a declared function, or nil when the
// function lives outside the loaded packages. Each package type-checks
// against export data of its dependencies, so the same function seen from
// an importing package is a different *types.Func than the one recorded
// from its defining package's syntax; the display-name fallback stitches
// those universes together, which is what makes cross-package edges work.
func (b *graphBuilder) nodeFor(obj *types.Func) *FuncNode {
	if n := b.g.byObj[origin(obj)]; n != nil {
		return n
	}
	return b.g.Nodes[funcDisplayName(origin(obj))]
}

func origin(obj *types.Func) *types.Func {
	if o := obj.Origin(); o != nil {
		return o
	}
	return obj
}

// addStaticEdge links caller to a known callee, or records a sink when the
// callee is a forbidden external entry point.
func (b *graphBuilder) addStaticEdge(owner *FuncNode, callee *types.Func, pos token.Pos) {
	if node := b.nodeFor(callee); node != nil {
		owner.Calls = append(owner.Calls, CallEdge{Callee: node, Pos: pos})
		return
	}
	b.recordSinkUse(owner, callee, pos)
}

// recordSinkUse records a use of an external function when it is one of
// the forbidden entry points.
func (b *graphBuilder) recordSinkUse(owner *FuncNode, callee *types.Func, pos token.Pos) {
	pkg := callee.Pkg()
	if pkg == nil {
		return
	}
	switch path := pkg.Path(); path {
	case "time":
		if wallTimeFuncs[callee.Name()] {
			owner.Sinks = append(owner.Sinks, SinkCall{
				Kind: SinkWallTime, Pos: pos, Desc: "time." + callee.Name(),
			})
		}
	case "math/rand", "math/rand/v2":
		owner.Sinks = append(owner.Sinks, SinkCall{
			Kind: SinkGlobalRand, Pos: pos, Desc: path + "." + callee.Name(),
		})
	}
}

// addInterfaceEdges links caller to every concrete method in the program
// that the interface call could dispatch to.
func (b *graphBuilder) addInterfaceEdges(owner *FuncNode, iface *types.Func, pos token.Pos) {
	recv := iface.Type().(*types.Signature).Recv()
	if recv == nil {
		return
	}
	itype, ok := recv.Type().Underlying().(*types.Interface)
	if !ok {
		return
	}
	for _, cand := range b.g.methodsByName[iface.Name()] {
		crecv := cand.Obj.Type().(*types.Signature).Recv()
		if crecv == nil {
			continue
		}
		if types.Implements(crecv.Type(), itype) {
			owner.Calls = append(owner.Calls, CallEdge{Callee: cand, Pos: pos})
		}
	}
}

// resolveDynamic links every recorded dynamic call site to the
// address-taken functions whose signature matches.
func (b *graphBuilder) resolveDynamic() {
	// Dedup the address-taken set while keeping a stable order.
	seen := map[*FuncNode]bool{}
	var targets []*FuncNode
	for _, n := range b.g.addrTaken {
		if !seen[n] {
			seen[n] = true
			targets = append(targets, n)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].Name < targets[j].Name })
	b.g.addrTaken = targets

	for _, dc := range b.dynCalls {
		for _, t := range targets {
			if matchesSignature(t, dc.sig) {
				dc.caller.Calls = append(dc.caller.Calls, CallEdge{Callee: t, Pos: dc.pos})
			}
		}
	}
}

// matchesSignature reports whether node could be the value behind a call
// of the given signature. Literal nodes carry no types.Func, so they match
// structurally by their package's recorded info being unavailable — the
// builder stores literal signatures on creation instead.
func matchesSignature(node *FuncNode, sig *types.Signature) bool {
	if node.Obj == nil {
		// Function literal: match on the signature captured at creation.
		return node.litSig != nil && types.Identical(node.litSig, sig)
	}
	nsig, ok := node.Obj.Type().(*types.Signature)
	if !ok {
		return false
	}
	// A method value's signature drops the receiver.
	cmp := nsig
	if nsig.Recv() != nil {
		cmp = types.NewSignatureType(nil, nil, nil, nsig.Params(), nsig.Results(), nsig.Variadic())
	}
	return types.Identical(cmp, sig)
}

// Reach computes the set of node names reachable from the given roots and
// the parent edge used to first reach each node (a BFS tree, so chains
// printed from it are shortest-first and deterministic).
func (g *CallGraph) Reach(roots []*FuncNode) map[*FuncNode]CallEdgeFrom {
	parent := map[*FuncNode]CallEdgeFrom{}
	queue := make([]*FuncNode, 0, len(roots))
	for _, r := range roots {
		if _, ok := parent[r]; !ok && r != nil {
			parent[r] = CallEdgeFrom{}
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Calls {
			if _, ok := parent[e.Callee]; ok {
				continue
			}
			parent[e.Callee] = CallEdgeFrom{Caller: n, Pos: e.Pos}
			queue = append(queue, e.Callee)
		}
	}
	return parent
}

// CallEdgeFrom records how a node was first reached during BFS.
type CallEdgeFrom struct {
	Caller *FuncNode
	Pos    token.Pos
}

// Chain renders the call chain from a root to node as "a -> b -> c".
func Chain(parent map[*FuncNode]CallEdgeFrom, node *FuncNode) string {
	var names []string
	for n := node; n != nil; {
		names = append(names, n.Name)
		from, ok := parent[n]
		if !ok || from.Caller == nil {
			break
		}
		n = from.Caller
	}
	// Reverse into root-first order.
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return strings.Join(names, " -> ")
}

// FindRoot resolves a root spec of the form "pkg/path.Func" or
// "pkg/path.(*Type).Method" to its node, or nil when absent (a partial
// load that does not include the root simply contributes no chains).
func (g *CallGraph) FindRoot(spec string) *FuncNode {
	return g.Nodes[spec]
}

// funcDisplayName renders a *types.Func as the stable node name.
func funcDisplayName(obj *types.Func) string {
	sig := obj.Type().(*types.Signature)
	pkgPath := ""
	if obj.Pkg() != nil {
		pkgPath = obj.Pkg().Path()
	}
	if recv := sig.Recv(); recv != nil {
		rt := recv.Type()
		star := ""
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
			star = "*"
		}
		name := rt.String()
		if named, ok := rt.(*types.Named); ok {
			name = named.Obj().Name()
		}
		return fmt.Sprintf("%s.(%s%s).%s", pkgPath, star, name, obj.Name())
	}
	return pkgPath + "." + obj.Name()
}

func recvIsInterface(obj *types.Func) bool {
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	_, ok = sig.Recv().Type().Underlying().(*types.Interface)
	return ok
}
