package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// SortedIter is the dataflow-aware upgrade of mapiter for output paths:
// ranging over a map is fine in itself, but when the loop's key or value
// flows into an output sink — an io.Writer-shaped receiver, a fmt
// rendering call, or a report/export helper — the random iteration order
// reaches bytes a golden file pins. The sanctioned idiom collects keys,
// sorts them, and ranges the sorted slice; the second loop is not a map
// range and is recognized as clean by construction.
//
// "Dataflow-aware" means the sink call must actually mention the loop
// variables (or the loop must write derived state the sink reads): a body
// that emits a constant per entry is order-independent in content, only
// in cardinality, and is left to mapiter's stricter rules.
var SortedIter = &Analyzer{
	Name: "sortediter",
	Doc: "map-iteration values must not flow into writers, exporters or " +
		"fmt output without passing through a sort; collect keys, sort, " +
		"then range the slice",
	Run: runSortedIter,
}

func runSortedIter(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := pass.TypesInfo.TypeOf(rs.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				checkSortedIterBody(pass, rs)
				return true
			})
		}
	}
	return nil
}

// checkSortedIterBody flags output-sink calls inside one map-range body
// that mention the loop variables.
func checkSortedIterBody(pass *Pass, rs *ast.RangeStmt) {
	loopVars := rangeVarObjects(pass, rs)
	if len(loopVars) == 0 {
		return
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		kind := outputSinkKind(pass, call)
		if kind == "" {
			return true
		}
		if !callMentionsAny(pass, call, loopVars) {
			return true
		}
		pass.Reportf(call.Pos(),
			"map-iteration value flows into %s inside the loop, leaking "+
				"iteration order into the output; collect the keys, sort "+
				"them, and range the sorted slice", kind)
		return true
	})
}

// rangeVarObjects returns the objects of the loop's key/value variables.
func rangeVarObjects(pass *Pass, rs *ast.RangeStmt) []types.Object {
	var out []types.Object
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if ident, ok := e.(*ast.Ident); ok && ident.Name != "_" {
			if obj := pass.TypesInfo.ObjectOf(ident); obj != nil {
				out = append(out, obj)
			}
		}
	}
	return out
}

// callMentionsAny reports whether the call's arguments or receiver
// reference any of the given objects.
func callMentionsAny(pass *Pass, call *ast.CallExpr, objs []types.Object) bool {
	for _, obj := range objs {
		if exprRefs(pass, call, obj) {
			return true
		}
	}
	return false
}

// outputSinkKind classifies a call as an output sink and names it for the
// diagnostic, or returns "" when it is not one. Sinks:
//
//   - fmt rendering: Print*, Fprint*, Sprint*, Append* — rendered text
//     either reaches a stream directly or almost certainly will.
//   - methods on an io.Writer implementation (strings.Builder,
//     bytes.Buffer, csv.Writer, any type satisfying io.Writer), the
//     byte-level form of the same leak.
//   - functions in a report or export package (import path ending in
//     /report, or a Write-prefixed function of the obs package), the
//     repo's own output layer.
func outputSinkKind(pass *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	// Package-qualified call?
	if ident, ok := sel.X.(*ast.Ident); ok {
		switch path := pass.PkgPath(ident); {
		case path == "fmt":
			name := sel.Sel.Name
			if strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") ||
				strings.HasPrefix(name, "Sprint") || strings.HasPrefix(name, "Append") {
				return "fmt." + name
			}
			return ""
		case strings.HasSuffix(path, "/report"):
			return path[strings.LastIndex(path, "/")+1:] + "." + sel.Sel.Name
		case strings.HasSuffix(path, "/obs") && strings.HasPrefix(sel.Sel.Name, "Write"):
			return "obs." + sel.Sel.Name
		}
	}
	// Method call on a writer-shaped receiver?
	recvType := pass.TypesInfo.TypeOf(sel.X)
	if recvType == nil {
		return ""
	}
	if isWriterish(recvType) {
		return typeShortName(recvType) + "." + sel.Sel.Name
	}
	return ""
}

// ioWriterMethods spells the io.Writer contract structurally, so the
// check needs no import of io's export data at analysis time.
func isWriterish(t types.Type) bool {
	// Interface io.Writer itself, or anything with a Write([]byte) (int,
	// error) method in its method set.
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		m := ms.At(i).Obj()
		if m.Name() != "Write" {
			continue
		}
		sig, ok := m.Type().(*types.Signature)
		if !ok || sig.Params().Len() != 1 || sig.Results().Len() != 2 {
			continue
		}
		slice, ok := sig.Params().At(0).Type().(*types.Slice)
		if !ok {
			continue
		}
		if b, ok := slice.Elem().(*types.Basic); ok && b.Kind() == types.Byte {
			return true
		}
	}
	// Pointer receivers: retry with *T when given T.
	if _, isPtr := t.(*types.Pointer); !isPtr {
		return isWriterishPtr(t)
	}
	return false
}

func isWriterishPtr(t types.Type) bool {
	if named, ok := t.(*types.Named); ok {
		return isWriterish(types.NewPointer(named))
	}
	return false
}

func typeShortName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}
