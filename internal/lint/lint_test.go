package lint_test

import (
	"testing"

	"antidope/internal/lint"
	"antidope/internal/lint/linttest"
)

// Each analyzer must fire on its seeded violation fixture, stay silent on
// the clean code in the same package, and honor //lint:allow.

func TestWallTime(t *testing.T)   { linttest.Run(t, lint.WallTime, "walltime") }
func TestGlobalRand(t *testing.T) { linttest.Run(t, lint.GlobalRand, "globalrand") }
func TestMapIter(t *testing.T)    { linttest.Run(t, lint.MapIter, "mapiter") }
func TestFloatEq(t *testing.T)    { linttest.Run(t, lint.FloatEq, "floateq") }
func TestUnitSuffix(t *testing.T) { linttest.Run(t, lint.UnitSuffix, "unitsuffix") }
func TestObsGuard(t *testing.T)   { linttest.Run(t, lint.ObsGuard, "obsguard") }
func TestSortedIter(t *testing.T) { linttest.Run(t, lint.SortedIter, "sortediter") }
func TestErrFlow(t *testing.T)    { linttest.Run(t, lint.ErrFlow, "errflow") }

// The whole-program analyzers run over buildable fixture programs whose
// roots are declared inline with //lint:root. The walltime fixture covers
// the three call-graph edge kinds (static cross-package, interface
// dispatch, stored func value) and pins that a sink-level allow does NOT
// waive the transitive finding while a declaration-level allow does.

func TestWallTimeReach(t *testing.T) {
	linttest.RunProgram(t, lint.WallTimeReach, "./testdata/src/progwalltime/...")
}

func TestGlobalRandReach(t *testing.T) {
	linttest.RunProgram(t, lint.GlobalRandReach, "./testdata/src/progrand/...")
}

func TestHotAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("hotalloc shells out to the compiler; skipped in -short mode")
	}
	linttest.RunProgram(t, lint.HotAlloc, "./testdata/src/hotprobe/...")
}

// TestLoadRepoPackage exercises the go-list loader end to end on a real
// repo package: it must type-check and come back free of findings.
func TestLoadRepoPackage(t *testing.T) {
	pkgs, err := lint.Load("../..", []string{"./internal/simtime"})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	diags, err := lint.RunPackage(pkgs[0], lint.All())
	if err != nil {
		t.Fatalf("RunPackage: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding: %s (%s)", d.Message, d.Analyzer)
	}
}

// BenchmarkLintLoad measures the go-list loader plus full per-package
// suite over a real repo package — the fixed cost every lint invocation
// pays per package.
func BenchmarkLintLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pkgs, err := lint.Load("../..", []string{"./internal/simtime"})
		if err != nil {
			b.Fatalf("Load: %v", err)
		}
		if _, err := lint.RunPackage(pkgs[0], lint.All()); err != nil {
			b.Fatalf("RunPackage: %v", err)
		}
	}
}
