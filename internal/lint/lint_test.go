package lint_test

import (
	"testing"

	"antidope/internal/lint"
	"antidope/internal/lint/linttest"
)

// Each analyzer must fire on its seeded violation fixture, stay silent on
// the clean code in the same package, and honor //lint:allow.

func TestWallTime(t *testing.T)   { linttest.Run(t, lint.WallTime, "walltime") }
func TestGlobalRand(t *testing.T) { linttest.Run(t, lint.GlobalRand, "globalrand") }
func TestMapIter(t *testing.T)    { linttest.Run(t, lint.MapIter, "mapiter") }
func TestFloatEq(t *testing.T)    { linttest.Run(t, lint.FloatEq, "floateq") }
func TestUnitSuffix(t *testing.T) { linttest.Run(t, lint.UnitSuffix, "unitsuffix") }

// TestLoadRepoPackage exercises the go-list loader end to end on a real
// repo package: it must type-check and come back free of findings.
func TestLoadRepoPackage(t *testing.T) {
	pkgs, err := lint.Load("../..", []string{"./internal/simtime"})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	diags, err := lint.RunPackage(pkgs[0], lint.All())
	if err != nil {
		t.Fatalf("RunPackage: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding: %s (%s)", d.Message, d.Analyzer)
	}
}
