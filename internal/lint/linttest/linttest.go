// Package linttest is a miniature analysistest: it type-checks a fixture
// package under internal/lint/testdata/src/<name>, runs one analyzer, and
// matches the surviving diagnostics against `// want "regexp"` comments.
// Lines carrying a //lint:allow comment must produce no diagnostic at
// all, which is how the escape hatch itself is tested.
package linttest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"antidope/internal/lint"
)

var wantRe = regexp.MustCompile(`//\s*want\s+"(.*)"\s*$`)

type want struct {
	rx      *regexp.Regexp
	matched bool
}

// Run executes analyzer a over the fixture package testdata/src/<fixture>
// and fails t on any mismatch between diagnostics and want comments.
func Run(t *testing.T, a *lint.Analyzer, fixture string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read fixture dir: %v", err)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	importSet := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse fixture: %v", err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			if path, err := strconv.Unquote(imp.Path.Value); err == nil {
				importSet[path] = true
			}
		}
	}
	if len(files) == 0 {
		t.Fatalf("fixture %s has no Go files", fixture)
	}

	var imp types.Importer
	if len(importSet) > 0 {
		paths := make([]string, 0, len(importSet))
		for p := range importSet {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		imp, err = lint.ExportImporter(fset, paths...)
		if err != nil {
			t.Fatalf("export importer: %v", err)
		}
	}
	tpkg, info, err := lint.Check(fset, fixture, files, imp)
	if err != nil {
		t.Fatalf("typecheck fixture: %v", err)
	}

	pkg := &lint.Package{Path: fixture, Fset: fset, Files: files, Types: tpkg, Info: info}
	diags, err := lint.RunPackage(pkg, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}

	wants := collectWants(t, fset, files)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
		w, ok := wants[key]
		if !ok || !w.rx.MatchString(d.Message) {
			t.Errorf("unexpected diagnostic at %s: %s", key, d.Message)
			continue
		}
		w.matched = true
	}
	keys := make([]string, 0, len(wants))
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !wants[k].matched {
			t.Errorf("expected diagnostic at %s matching %q, got none", k, wants[k].rx)
		}
	}
}

// RunProgram executes one whole-program analyzer over the fixture
// packages matched by patterns (go-list syntax, e.g.
// "./testdata/src/progwalltime/..."). Unlike Run, fixtures here are real
// module packages loaded through the production go-list loader, because
// the program analyzers need export data, import graphs, and (for
// hotalloc) a compilable package for the toolchain to chew on.
//
// Roots come from //lint:root markers on fixture function docs, so each
// fixture program declares its own entry points. Diagnostics are matched
// against the same `// want "regexp"` comments as Run.
func RunProgram(t *testing.T, a *lint.ProgramAnalyzer, patterns ...string) {
	t.Helper()
	dir, err := filepath.Abs(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.Load(dir, patterns)
	if err != nil {
		t.Fatalf("load fixture program: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("patterns %v matched no packages", patterns)
	}
	prog := &lint.Program{
		Pkgs:  pkgs,
		Dir:   dir,
		Roots: lint.RootsFromComments(pkgs),
	}
	diags, err := lint.RunProgram(prog, []*lint.ProgramAnalyzer{a})
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}

	fset := prog.Fset()
	var files []*ast.File
	for _, pkg := range pkgs {
		files = append(files, pkg.Files...)
	}
	wants := collectWants(t, fset, files)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
		w, ok := wants[key]
		if !ok || !w.rx.MatchString(d.Message) {
			t.Errorf("unexpected diagnostic at %s: %s", key, d.Message)
			continue
		}
		w.matched = true
	}
	keys := make([]string, 0, len(wants))
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !wants[k].matched {
			t.Errorf("expected diagnostic at %s matching %q, got none", k, wants[k].rx)
		}
	}
}

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[string]*want {
	t.Helper()
	wants := map[string]*want{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				rx, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want pattern %q: %v", m[1], err)
				}
				pos := fset.Position(c.Pos())
				wants[fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)] = &want{rx: rx}
			}
		}
	}
	return wants
}
