package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrFlow forbids silently dropping an error: a call whose results include
// an error must either consume it, discard it explicitly (`_ = f()` /
// `x, _ := f()` — visible in review), or carry a
// `//lint:allow errflow -- reason` stating why the error is impossible or
// irrelevant. The bare statement form `f()` is the one this analyzer
// flags: it reads identically whether f can fail or not, which is exactly
// how a fault-injection error disappears without a trace.
//
// Two call families are exempt to keep the signal high:
//
//   - The fmt print family (Print*, Fprint*). Human-readable rendering is
//     best-effort by house convention — progress lines, reports, tables —
//     and when output integrity does matter the house idiom is a
//     *bufio.Writer whose latched error is checked once at Flush.
//   - Write* methods on the error-latching in-memory/buffered writers
//     (*bytes.Buffer, *strings.Builder, *bufio.Writer): the first two are
//     documented never to fail, the third latches the error until Flush.
//
// What remains is the dangerous shape: Close, Flush, Encode, Remove,
// Setenv and friends silently dropping the only evidence of a failure.
var ErrFlow = &Analyzer{
	Name: "errflow",
	Doc: "error results must be consumed or explicitly discarded with " +
		"`_ =`; a bare call statement that drops an error needs a " +
		"//lint:allow errflow reason",
	Run: runErrFlow,
}

func runErrFlow(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch s := n.(type) {
			case *ast.ExprStmt:
				call, _ = s.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = s.Call
			case *ast.GoStmt:
				call = s.Call
			}
			if call == nil {
				return true
			}
			if !returnsError(pass, call) || infallibleCall(pass, call) {
				return true
			}
			pass.Reportf(call.Pos(),
				"%s returns an error that is silently dropped; consume it, "+
					"discard it explicitly with `_ =`, or annotate the line "+
					"with //lint:allow errflow -- reason", callLabel(call))
			return true
		})
	}
	return nil
}

// returnsError reports whether any of the call's results is of type error.
func returnsError(pass *Pass, call *ast.CallExpr) bool {
	t := pass.TypesInfo.TypeOf(call)
	if t == nil {
		return false
	}
	switch rt := t.(type) {
	case *types.Tuple:
		for i := 0; i < rt.Len(); i++ {
			if isErrorType(rt.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(rt)
	}
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// infallibleCall exempts calls documented never to return a non-nil error.
func infallibleCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// The fmt print family.
	if ident, ok := sel.X.(*ast.Ident); ok && pass.PkgPath(ident) == "fmt" {
		name := sel.Sel.Name
		return strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")
	}
	// Write* methods on the error-latching writers. Flush is NOT a Write*
	// method: dropping bufio's Flush error discards the latched failure.
	if !strings.HasPrefix(sel.Sel.Name, "Write") {
		return false
	}
	return isLatchedWriter(pass.TypesInfo.TypeOf(sel.X))
}

// isLatchedWriter reports whether t is *bytes.Buffer, *strings.Builder, or
// *bufio.Writer — writers whose Write-family methods either cannot fail or
// latch the error for a later Flush check.
func isLatchedWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "bytes.Buffer", "strings.Builder", "bufio.Writer":
		return true
	}
	return false
}

// callLabel renders the called expression for the diagnostic.
func callLabel(call *ast.CallExpr) string {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return exprString(fn.X) + "." + fn.Sel.Name
	}
	return "call"
}
