package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Load enumerates the packages matching patterns with the go command,
// compiles export data for their dependency graph, and type-checks each
// matched package from source. Test files are excluded by construction
// (GoFiles never contains *_test.go), which is also the analyzers'
// contract: the determinism rules bind non-test code.
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-deps", "-export", "-json=ImportPath,Dir,GoFiles,Export,DepOnly,Standard,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exports := map[string]string{}
	var targets []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list decode: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	var pkgs []*Package
	for _, t := range targets {
		if t.Error != nil {
			return nil, fmt.Errorf("%s: %s", t.ImportPath, t.Error.Err)
		}
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		pkg, info, err := Check(fset, t.ImportPath, files, imp)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %v", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:  t.ImportPath,
			Dir:   t.Dir,
			Fset:  fset,
			Files: files,
			Types: pkg,
			Info:  info,
		})
	}
	return pkgs, nil
}

// Check type-checks one package's files with the given importer and
// returns the package plus the filled-in type information the analyzers
// consume.
func Check(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp, FakeImportC: true}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// ExportImporter builds an importer backed by compiled export data for
// the named packages and their transitive dependencies. The lint tests
// use it to type-check fixture files that import the standard library.
func ExportImporter(fset *token.FileSet, pkgs ...string) (types.Importer, error) {
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Export"}, pkgs...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	exports := map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}), nil
}
