package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Program is the whole-program view the cross-package analyzers run over:
// every loaded package plus the lazily-built call-graph facts layer.
type Program struct {
	Pkgs []*Package
	// Dir is the module root, used by analyzers that shell out to the go
	// toolchain (hotalloc).
	Dir string
	// Roots are the entry points reachability is computed from, as node
	// names ("pkg/path.(*Type).Method"). Empty selects DefaultRoots.
	Roots []string

	graph *CallGraph
}

// DefaultRoots are the simulation entry points the determinism contract
// binds: everything transitively callable from a simulation run or from
// the experiment harness's job executor must stay wall-clock- and
// global-RNG-free.
var DefaultRoots = []string{
	"antidope/internal/core.(*Simulation).Run",
	"antidope/internal/harness.(*Pool).Run",
}

// Graph returns the call-graph facts, building them on first use.
func (p *Program) Graph() *CallGraph {
	if p.graph == nil {
		p.graph = BuildCallGraph(p.Pkgs)
	}
	return p.graph
}

// roots resolves the configured (or default) root specs to live nodes.
// Missing roots are skipped: a partial load simply has no chains from
// entry points it does not contain.
func (p *Program) roots() []*FuncNode {
	specs := p.Roots
	if len(specs) == 0 {
		specs = DefaultRoots
	}
	g := p.Graph()
	var out []*FuncNode
	for _, s := range specs {
		if n := g.FindRoot(s); n != nil {
			out = append(out, n)
		}
	}
	return out
}

// RootsFromComments returns the node names of functions whose doc comment
// carries a //lint:root marker. Production runs use DefaultRoots; fixture
// programs declare their entry points inline with this marker instead, so
// a test program is self-describing.
func RootsFromComments(pkgs []*Package) []string {
	var out []string
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				for _, c := range fd.Doc.List {
					if strings.HasPrefix(strings.TrimSpace(c.Text), "//lint:root") {
						if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok && obj != nil {
							out = append(out, funcDisplayName(obj))
						}
						break
					}
				}
			}
		}
	}
	sort.Strings(out)
	return out
}

// ProgramAnalyzer is one whole-program check. Unlike the per-package
// Analyzer it returns its diagnostics directly; RunProgram applies the
// //lint:allow suppressions afterwards (honoring SuppressPos).
type ProgramAnalyzer struct {
	Name string
	Doc  string
	Run  func(p *Program) ([]Diagnostic, error)
}

// AllProgram returns the whole-program suite in a stable order. HotAlloc
// is included: callers that cannot afford the compiler pass (or are
// analyzing packages with no annotations) pay nothing, because it exits
// early when no //hot:allocfree annotation is in scope.
func AllProgram() []*ProgramAnalyzer {
	return []*ProgramAnalyzer{
		WallTimeReach,
		GlobalRandReach,
		HotAlloc,
	}
}

// RunProgram executes the given whole-program analyzers and returns the
// surviving diagnostics in (file, line, analyzer) order. Suppression uses
// the same //lint:allow comments as the per-package pass, but honors each
// diagnostic's SuppressPos — the program analyzers point it at the chain
// head (the declaration of the function containing the offending call),
// so a sink-level allow that satisfies the per-package analyzer does not
// silently waive the reachability contract too.
func RunProgram(prog *Program, analyzers []*ProgramAnalyzer) ([]Diagnostic, error) {
	sup := suppressions{}
	for _, pkg := range prog.Pkgs {
		for file, lines := range buildSuppressions(pkg.Fset, pkg.Files) {
			sup[file] = lines
		}
	}
	fset := prog.Fset()
	var kept []Diagnostic
	for _, a := range analyzers {
		diags, err := a.Run(prog)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		for _, d := range diags {
			d.Analyzer = a.Name
			if !sup.suppressed(fset, d) {
				kept = append(kept, d)
			}
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		pi, pj := fset.Position(kept[i].Pos), fset.Position(kept[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return kept[i].Analyzer < kept[j].Analyzer
	})
	return kept, nil
}

// Fset returns the shared FileSet of the loaded packages (the loader uses
// one FileSet for every package in a run).
func (p *Program) Fset() *token.FileSet {
	if len(p.Pkgs) == 0 {
		return token.NewFileSet()
	}
	return p.Pkgs[0].Fset
}
