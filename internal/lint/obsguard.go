package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ObsGuard enforces the observability layer's one-nil-check contract: a
// nil observer is the fast path, so every call through an interface value
// named Observer must be dominated by a nil check on that same value —
// either an enclosing `if x != nil { ... }` or an earlier
// `if x == nil { return }` guard in the same block. An unguarded emit is
// a nil-dereference waiting for the first unobserved run, and a guard on
// a *different* field does not count.
//
// The check is name-based on purpose: any interface type named Observer
// (obs.Observer in this repo, a local stand-in in fixtures) opts its call
// sites into the contract.
var ObsGuard = &Analyzer{
	Name: "obsguard",
	Doc: "every call through an Observer interface value must be " +
		"dominated by a nil check on that value (the nil observer is " +
		"the contract's fast path)",
	Run: runObsGuard,
}

func runObsGuard(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkObsGuards(pass, fd.Body, nil)
		}
	}
	return nil
}

// checkObsGuards walks one block with the set of observer-expression keys
// currently known non-nil. It recurses into nested blocks, extending the
// guard set through dominating nil checks.
func checkObsGuards(pass *Pass, block *ast.BlockStmt, guarded []string) {
	// Guards established by earlier statements of this block
	// (`if x == nil { return }` style) accumulate as we scan.
	local := append([]string(nil), guarded...)
	for _, st := range block.List {
		checkObsStmt(pass, st, &local)
	}
}

func checkObsStmt(pass *Pass, st ast.Stmt, guarded *[]string) {
	switch s := st.(type) {
	case *ast.IfStmt:
		if s.Init != nil {
			checkObsStmt(pass, s.Init, guarded)
		}
		checkObsExpr(pass, s.Cond, *guarded)
		thenGuards, elseGuards := splitNilChecks(pass, s.Cond)
		checkObsGuards(pass, s.Body, append(*guarded, thenGuards...))
		if s.Else != nil {
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				checkObsGuards(pass, e, append(*guarded, elseGuards...))
			case *ast.IfStmt:
				checkObsStmt(pass, e, guarded)
			}
		}
		// `if x == nil { return }` dominates the rest of the block.
		if len(elseGuards) > 0 && terminates(s.Body) {
			*guarded = append(*guarded, elseGuards...)
		}
	case *ast.BlockStmt:
		checkObsGuards(pass, s, *guarded)
	case *ast.ForStmt:
		if s.Init != nil {
			checkObsStmt(pass, s.Init, guarded)
		}
		if s.Cond != nil {
			checkObsExpr(pass, s.Cond, *guarded)
		}
		checkObsGuards(pass, s.Body, *guarded)
	case *ast.RangeStmt:
		checkObsExpr(pass, s.X, *guarded)
		checkObsGuards(pass, s.Body, *guarded)
	case *ast.SwitchStmt:
		if s.Init != nil {
			checkObsStmt(pass, s.Init, guarded)
		}
		if s.Tag != nil {
			checkObsExpr(pass, s.Tag, *guarded)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, st := range cc.Body {
					g := append([]string(nil), *guarded...)
					checkObsStmt(pass, st, &g)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, st := range cc.Body {
					g := append([]string(nil), *guarded...)
					checkObsStmt(pass, st, &g)
				}
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				for _, st := range cc.Body {
					g := append([]string(nil), *guarded...)
					checkObsStmt(pass, st, &g)
				}
			}
		}
	default:
		ast.Inspect(st, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.FuncLit:
				// A closure runs later: guards from the enclosing scope may
				// no longer hold, so it starts with a clean slate.
				checkObsGuards(pass, e.Body, nil)
				return false
			case *ast.CallExpr:
				reportUnguardedObs(pass, e, *guarded)
			}
			return true
		})
	}
}

// checkObsExpr scans an expression position (conditions, range operands)
// for observer calls.
func checkObsExpr(pass *Pass, expr ast.Expr, guarded []string) {
	ast.Inspect(expr, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			reportUnguardedObs(pass, call, guarded)
		}
		return true
	})
}

// reportUnguardedObs reports call if it is a method call through an
// Observer interface value whose key is not in the guarded set.
func reportUnguardedObs(pass *Pass, call *ast.CallExpr, guarded []string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	recv := ast.Unparen(sel.X)
	if !isObserverType(pass.TypesInfo.TypeOf(recv)) {
		return
	}
	key := exprKey(pass, recv)
	if key == "" {
		return // dynamic expression we cannot track; not the contract's shape
	}
	for _, g := range guarded {
		if g == key {
			return
		}
	}
	pass.Reportf(call.Pos(),
		"%s.%s called without a dominating nil check on %s; the nil "+
			"observer is the fast path and must be branch-tested at every "+
			"emit site", exprString(recv), sel.Sel.Name, exprString(recv))
}

// splitNilChecks extracts observer guard keys from an if condition:
// thenGuards hold inside the then-branch (x != nil), elseGuards inside
// the else-branch (x == nil). Conjunctions distribute over the
// then-branch; disjunctions are ignored (no branch is fully guarded).
func splitNilChecks(pass *Pass, cond ast.Expr) (thenGuards, elseGuards []string) {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			lt, _ := splitNilChecks(pass, e.X)
			rt, _ := splitNilChecks(pass, e.Y)
			return append(lt, rt...), nil
		case token.NEQ, token.EQL:
			var target ast.Expr
			if isNilIdent(pass, e.Y) {
				target = e.X
			} else if isNilIdent(pass, e.X) {
				target = e.Y
			} else {
				return nil, nil
			}
			if !isObserverType(pass.TypesInfo.TypeOf(target)) {
				return nil, nil
			}
			key := exprKey(pass, ast.Unparen(target))
			if key == "" {
				return nil, nil
			}
			if e.Op == token.NEQ {
				return []string{key}, nil
			}
			return nil, []string{key}
		}
	}
	return nil, nil
}

func isNilIdent(pass *Pass, e ast.Expr) bool {
	ident, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.ObjectOf(ident)
	return obj != nil && obj.Parent() == types.Universe && ident.Name == "nil"
}

// terminates reports whether a block always leaves the enclosing function
// or loop: its last statement is return, panic, continue, break, or goto.
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if ident, ok := call.Fun.(*ast.Ident); ok && ident.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// isObserverType reports whether t is (or aliases) an interface type
// named Observer.
func isObserverType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		if alias, ok := t.(*types.Alias); ok {
			return isObserverType(types.Unalias(alias))
		}
		return false
	}
	if named.Obj().Name() != "Observer" {
		return false
	}
	_, isIface := named.Underlying().(*types.Interface)
	return isIface
}

// exprKey canonicalizes a guardable expression — an identifier or a chain
// of field selections rooted at one — into a comparable key. The root
// identifier is keyed by its object, so shadowing cannot alias two
// different variables to the same key.
func exprKey(pass *Pass, e ast.Expr) string {
	var parts []string
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.ObjectOf(x)
			if obj == nil {
				return ""
			}
			root := fmt.Sprintf("%p", obj)
			return root + "." + strings.Join(parts, ".")
		case *ast.SelectorExpr:
			parts = append([]string{x.Sel.Name}, parts...)
			e = x.X
		default:
			return ""
		}
	}
}

// exprString renders the guard expression for the diagnostic.
func exprString(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	}
	return "observer"
}
