package lint

import (
	"go/ast"
	"go/token"
	"unicode"
)

// unitTable maps identifier suffixes to canonical units. Order matters:
// longest suffix wins, so Watts resolves before W and Msec before Sec.
var unitTable = []struct {
	suffix string
	unit   string
}{
	{"Joules", "J"},
	{"Watts", "W"},
	{"Seconds", "s"},
	{"Millis", "ms"},
	{"Msec", "ms"},
	{"Secs", "s"},
	{"Sec", "s"},
	{"KWH", "kWh"},
	{"RPS", "rps"},
	{"KW", "kW"},
	{"MW", "MW"},
	{"KJ", "kJ"},
	{"Hz", "Hz"},
	{"Ms", "ms"},
	{"W", "W"},
	{"J", "J"},
	{"S", "s"},
}

// UnitSuffix flags additive arithmetic and comparisons that mix
// identifiers whose suffixes name different physical units — watts added
// to joules, seconds compared to milliseconds. Multiplication and
// division are exempt: they legitimately change units.
var UnitSuffix = &Analyzer{
	Name: "unitsuffix",
	Doc: "flag a+b / a-b / a<b where the operands' unit suffixes disagree " +
		"(...W vs ...J, ...Sec vs ...Ms); convert explicitly first",
	Run: runUnitSuffix,
}

func runUnitSuffix(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				switch e.Op {
				case token.ADD, token.SUB,
					token.LSS, token.GTR, token.LEQ, token.GEQ,
					token.EQL, token.NEQ:
					reportUnitMix(pass, e.OpPos, e.Op.String(), e.X, e.Y)
				}
			case *ast.AssignStmt:
				if (e.Tok == token.ADD_ASSIGN || e.Tok == token.SUB_ASSIGN) &&
					len(e.Lhs) == 1 && len(e.Rhs) == 1 {
					reportUnitMix(pass, e.TokPos, e.Tok.String(), e.Lhs[0], e.Rhs[0])
				}
			}
			return true
		})
	}
	return nil
}

func reportUnitMix(pass *Pass, pos token.Pos, op string, x, y ast.Expr) {
	xn, xu := operandUnit(x)
	yn, yu := operandUnit(y)
	if xu == "" || yu == "" || xu == yu {
		return
	}
	pass.Reportf(pos, "%s %s %s mixes units %s and %s; convert explicitly before combining",
		xn, op, yn, xu, yu)
}

// operandUnit extracts a name and its canonical unit from an identifier
// or field selector operand; other expression forms carry no unit claim.
func operandUnit(e ast.Expr) (name, unit string) {
	switch v := unparen(e).(type) {
	case *ast.Ident:
		name = v.Name
	case *ast.SelectorExpr:
		name = v.Sel.Name
	default:
		return "", ""
	}
	return name, unitOf(name)
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// unitOf returns the canonical unit named by the identifier's suffix, or
// "". The character before the suffix must be a lower-case letter or a
// digit, so PeakW matches W but KW alone (or SoW) does not split wrongly.
func unitOf(name string) string {
	for _, u := range unitTable {
		if len(name) <= len(u.suffix) {
			continue
		}
		if name[len(name)-len(u.suffix):] != u.suffix {
			continue
		}
		prev := rune(name[len(name)-len(u.suffix)-1])
		if unicode.IsLower(prev) || unicode.IsDigit(prev) {
			return u.unit
		}
	}
	return ""
}
