package lint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// This file is the lint suite's machine interface: a stable JSON shape for
// diagnostics (CI artifacts, editor integrations) and a baseline mechanism
// for ratcheting — a checked-in snapshot of tolerated findings that lets a
// new analyzer land strict without first sweeping every historical debt,
// while still failing the build on anything NOT in the snapshot.

// BaselineVersion identifies the baseline file schema.
const BaselineVersion = "antidope-lint-baseline/v1"

// JSONDiagnostic is the serialized form of one finding. File is
// module-root-relative with forward slashes, so baselines and artifacts
// are portable across checkouts.
type JSONDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// baselineKey identifies a finding across line drift: edits above a
// tolerated finding must not break the build, so the key deliberately
// omits the position.
func (d JSONDiagnostic) baselineKey() string {
	return d.File + "\x00" + d.Analyzer + "\x00" + d.Message
}

// String renders the go-vet-style human form.
func (d JSONDiagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.File, d.Line, d.Col, d.Message, d.Analyzer)
}

// ToJSON converts diagnostics to their serialized form, with file paths
// relative to root.
func ToJSON(fset *token.FileSet, root string, diags []Diagnostic) []JSONDiagnostic {
	out := make([]JSONDiagnostic, 0, len(diags))
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		file := pos.Filename
		if rel, err := filepath.Rel(root, file); err == nil && !filepath.IsAbs(rel) {
			file = rel
		}
		out = append(out, JSONDiagnostic{
			File:     filepath.ToSlash(file),
			Line:     pos.Line,
			Col:      pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	return out
}

// Baseline is a multiset of tolerated findings.
type Baseline struct {
	counts map[string]int
}

// baselineFile is the on-disk schema.
type baselineFile struct {
	Version  string           `json:"version"`
	Findings []JSONDiagnostic `json:"findings"`
}

// LoadBaseline reads a baseline file written by WriteBaseline.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf baselineFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("baseline %s: %v", path, err)
	}
	if bf.Version != BaselineVersion {
		return nil, fmt.Errorf("baseline %s: version %q, want %q", path, bf.Version, BaselineVersion)
	}
	b := &Baseline{counts: map[string]int{}}
	for _, d := range bf.Findings {
		b.counts[d.baselineKey()]++
	}
	return b, nil
}

// Filter returns the findings not covered by the baseline. Each baseline
// entry absorbs at most one finding with the same (file, analyzer,
// message), so duplicating a tolerated pattern still fails.
func (b *Baseline) Filter(diags []JSONDiagnostic) []JSONDiagnostic {
	if b == nil {
		return diags
	}
	remaining := make(map[string]int, len(b.counts))
	for k, v := range b.counts {
		remaining[k] = v
	}
	var fresh []JSONDiagnostic
	for _, d := range diags {
		k := d.baselineKey()
		if remaining[k] > 0 {
			remaining[k]--
			continue
		}
		fresh = append(fresh, d)
	}
	return fresh
}

// WriteBaseline serializes the findings as a baseline snapshot, sorted for
// stable diffs.
func WriteBaseline(w io.Writer, diags []JSONDiagnostic) error {
	sorted := append([]JSONDiagnostic(nil), diags...)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	if sorted == nil {
		sorted = []JSONDiagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(baselineFile{Version: BaselineVersion, Findings: sorted})
}

// WriteJSON emits the findings as a JSON array (the -json CLI output and
// the CI artifact shape).
func WriteJSON(w io.Writer, diags []JSONDiagnostic) error {
	if diags == nil {
		diags = []JSONDiagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(diags)
}
