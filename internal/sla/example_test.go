package sla_test

import (
	"fmt"

	"antidope/internal/core"
	"antidope/internal/sla"
)

// Example checks a healthy baseline run against the default SLA.
func Example() {
	cfg := core.DefaultConfig()
	cfg.Horizon = 40
	res, err := core.RunOnce(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	objectives := sla.Default()
	fmt.Println("objectives met:", objectives.Met(res))
	// Output:
	// objectives met: true
}
