// Package sla defines service-level objectives over simulation results and
// the capacity planner built on them: the highest legitimate load a
// configuration can carry — with an attack in progress — while still
// meeting its latency and availability targets. This is the operator-facing
// question behind the paper's Figures 16-17: how much capacity does each
// defense preserve under DOPE?
package sla

import (
	"fmt"

	"antidope/internal/core"
)

// SLA is a set of service-level objectives; zero-valued fields are not
// checked.
type SLA struct {
	// MeanRT / P90RT / P99RT are latency ceilings in seconds.
	MeanRT float64
	P90RT  float64
	P99RT  float64
	// MinAvailability is the floor on completed/offered legitimate traffic.
	MinAvailability float64
	// MaxBudgetViolation is the ceiling on the fraction of control slots
	// over the power budget.
	MaxBudgetViolation float64
}

// Default is the evaluation's SLA, shaped after the paper's Section 6
// numbers: mean under 100 ms, p90 under 250 ms, 95% availability, and an
// (almost) clean power budget.
func Default() SLA {
	return SLA{
		MeanRT:             0.100,
		P90RT:              0.250,
		MinAvailability:    0.95,
		MaxBudgetViolation: 0.05,
	}
}

// Violation is one objective the result missed.
type Violation struct {
	Metric string
	Limit  float64
	Actual float64
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %.4g (limit %.4g)", v.Metric, v.Actual, v.Limit)
}

// Check returns every violated objective, empty when the SLA is met.
func (s SLA) Check(res *core.Result) []Violation {
	var out []Violation
	add := func(metric string, limit, actual float64, bad bool) {
		if bad {
			out = append(out, Violation{Metric: metric, Limit: limit, Actual: actual})
		}
	}
	if s.MeanRT > 0 {
		add("mean response time", s.MeanRT, res.MeanRT(), res.MeanRT() > s.MeanRT)
	}
	if s.P90RT > 0 {
		add("p90 response time", s.P90RT, res.TailRT(90), res.TailRT(90) > s.P90RT)
	}
	if s.P99RT > 0 {
		add("p99 response time", s.P99RT, res.TailRT(99), res.TailRT(99) > s.P99RT)
	}
	if s.MinAvailability > 0 {
		av := res.Availability()
		add("availability", s.MinAvailability, av, av < s.MinAvailability)
	}
	if s.MaxBudgetViolation > 0 {
		add("budget violation", s.MaxBudgetViolation, res.FracSlotsOverBudget,
			res.FracSlotsOverBudget > s.MaxBudgetViolation)
	}
	return out
}

// Met reports whether the result satisfies every objective.
func (s SLA) Met(res *core.Result) bool { return len(s.Check(res)) == 0 }

// MaxLegitRPS binary-searches the highest legitimate request rate (the
// NormalRPS knob of the configuration) that still meets the SLA. The
// template's other fields — scheme, budget, attacks — are held fixed; each
// probe derives its seed from the template's. It returns 0 when even lo
// fails, and hi when hi itself passes.
func MaxLegitRPS(template core.Config, objectives SLA, lo, hi float64, probes int) (float64, error) {
	if lo < 0 || hi <= lo || probes <= 0 {
		return 0, fmt.Errorf("sla: bad search range [%g,%g] x%d", lo, hi, probes)
	}
	// One simulation serves every probe: Reset recycles the warmed event
	// pool and request arena between runs and is result-identical to a fresh
	// New. (The template's Scheme is shared across probes either way — its
	// Setup re-initializes per run — so reuse changes nothing observable.)
	var sim *core.Simulation
	run := func(rps float64) (bool, error) {
		cfg := template
		cfg.NormalRPS = rps
		if cfg.NormalSources <= 0 {
			cfg.NormalSources = 64
		}
		var err error
		if sim == nil {
			sim, err = core.New(cfg)
		} else {
			err = sim.Reset(cfg)
		}
		if err != nil {
			sim = nil
			return false, err
		}
		return objectives.Met(sim.Run()), nil
	}

	ok, err := run(lo)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, nil
	}
	if ok, err = run(hi); err != nil {
		return 0, err
	} else if ok {
		return hi, nil
	}
	// Invariant: lo passes, hi fails.
	for i := 0; i < probes; i++ {
		mid := (lo + hi) / 2
		ok, err := run(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}
