package sla

import (
	"testing"

	"antidope/internal/attack"
	"antidope/internal/cluster"
	"antidope/internal/core"
	"antidope/internal/defense"
	"antidope/internal/power"
	"antidope/internal/stats"
	"antidope/internal/workload"
)

// fakeResult builds a Result with controlled metrics.
func fakeResult(meanMS, p90MS float64, avail float64, overFrac float64) *core.Result {
	res := &core.Result{
		LatencyLegit:        &stats.Sample{},
		LatencyAttack:       &stats.Sample{},
		FracSlotsOverBudget: overFrac,
	}
	// Construct a two-point sample hitting the requested mean and p90
	// approximately: all samples equal meanMS except one tail point.
	for i := 0; i < 89; i++ {
		res.LatencyLegit.Add(meanMS / 1e3)
	}
	for i := 0; i < 11; i++ {
		res.LatencyLegit.Add(p90MS / 1e3)
	}
	res.OfferedLegit = 1000
	res.CompletedLegit = uint64(avail * 1000)
	return res
}

func TestCheckPasses(t *testing.T) {
	s := Default()
	res := fakeResult(20, 40, 1.0, 0)
	if v := s.Check(res); len(v) != 0 {
		t.Fatalf("violations on a healthy result: %v", v)
	}
	if !s.Met(res) {
		t.Fatal("Met disagrees with Check")
	}
}

func TestCheckFlagsEachObjective(t *testing.T) {
	s := Default()
	cases := []struct {
		name string
		res  *core.Result
		want string
	}{
		{"mean", fakeResult(500, 600, 1, 0), "mean response time"},
		{"p90", fakeResult(20, 400, 1, 0), "p90 response time"},
		{"avail", fakeResult(20, 40, 0.5, 0), "availability"},
		{"budget", fakeResult(20, 40, 1, 0.5), "budget violation"},
	}
	for _, c := range cases {
		vs := s.Check(c.res)
		found := false
		for _, v := range vs {
			if v.Metric == c.want {
				found = true
				if v.String() == "" {
					t.Fatal("empty violation string")
				}
			}
		}
		if !found {
			t.Fatalf("%s: violation %q not reported in %v", c.name, c.want, vs)
		}
	}
}

func TestZeroObjectivesUnchecked(t *testing.T) {
	var s SLA // nothing set
	res := fakeResult(5000, 9000, 0.01, 1)
	if !s.Met(res) {
		t.Fatal("empty SLA flagged a result")
	}
}

func TestP99Objective(t *testing.T) {
	s := SLA{P99RT: 0.050}
	res := fakeResult(20, 100, 1, 0)
	if s.Met(res) {
		t.Fatal("p99 breach not flagged")
	}
}

// capacityTemplate is a small, fast scenario for the planner tests.
func capacityTemplate(scheme defense.Scheme) core.Config {
	cfg := core.DefaultConfig()
	cfg.Horizon = 60
	cfg.WarmupSec = 10
	cfg.Cluster.Budget = cluster.MediumPB
	cfg.Scheme = scheme
	cfg.Attacks = []attack.Spec{
		attack.HTTPLoadTool(workload.CollaFilt, 40, 16, 10, 50),
	}
	return cfg
}

func TestMaxLegitRPSBounds(t *testing.T) {
	if _, err := MaxLegitRPS(capacityTemplate(nil), Default(), 100, 50, 3); err == nil {
		t.Fatal("inverted range accepted")
	}
	if _, err := MaxLegitRPS(capacityTemplate(nil), Default(), 10, 100, 0); err == nil {
		t.Fatal("zero probes accepted")
	}
}

func TestMaxLegitRPSFindsCapacity(t *testing.T) {
	objectives := SLA{MeanRT: 0.050, MinAvailability: 0.95}
	cap, err := MaxLegitRPS(capacityTemplate(defense.NewAntiDope(power.DefaultLadder())),
		objectives, 20, 2000, 6)
	if err != nil {
		t.Fatal(err)
	}
	if cap <= 20 {
		t.Fatalf("capacity %g: even light load fails", cap)
	}
	if cap >= 2000 {
		t.Fatalf("capacity %g: planner never found the wall", cap)
	}
	// The found capacity actually meets the SLA.
	cfg := capacityTemplate(defense.NewAntiDope(power.DefaultLadder()))
	cfg.NormalRPS = cap
	res, err := core.RunOnce(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !objectives.Met(res) {
		t.Fatalf("reported capacity violates the SLA: %v", objectives.Check(res))
	}
}

func TestMaxLegitRPSZeroWhenImpossible(t *testing.T) {
	impossible := SLA{MeanRT: 0.0001}
	cap, err := MaxLegitRPS(capacityTemplate(nil), impossible, 10, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cap != 0 {
		t.Fatalf("capacity %g against an impossible SLA", cap)
	}
}

func TestMaxLegitRPSSaturatesAtHi(t *testing.T) {
	generous := SLA{MeanRT: 10}
	cfg := capacityTemplate(nil)
	cfg.Attacks = nil
	cap, err := MaxLegitRPS(cfg, generous, 10, 50, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cap != 50 {
		t.Fatalf("capacity %g, want hi=50 under a generous SLA", cap)
	}
}
