package attack_test

import (
	"fmt"

	"antidope/internal/attack"
)

// ExampleDopeAttacker walks the Figure 12 algorithm through a probe, a ban,
// and the adaptation that follows.
func ExampleDopeAttacker() {
	cfg := attack.DefaultDopeConfig()
	d := attack.NewDopeAttacker(cfg)

	plan := d.Current()
	fmt.Printf("opening: %v at %.0f rps over %d agents\n", plan.Class, plan.RPS, plan.Agents)

	// Not effective yet: grow.
	plan = d.Step(attack.Feedback{Effective: false})
	fmt.Printf("after growth: %.0f rps\n", plan.RPS)

	// Agents got banned: back off, recruit, rotate target.
	plan = d.Step(attack.Feedback{BannedAgents: 2})
	ceil, _ := d.Ceiling()
	fmt.Printf("after ban: %.0f rps over %d agents (learned ceiling %.1f rps/agent)\n",
		plan.RPS, plan.Agents, ceil)
	// Output:
	// opening: K-means at 20 rps over 8 agents
	// after growth: 32 rps
	// after ban: 20 rps over 16 agents (learned ceiling 4.0 rps/agent)
}

// ExampleSelectTargets shows the adversary's offline profiling step.
func ExampleSelectTargets() {
	for _, class := range attack.SelectTargets(2) {
		fmt.Println(class)
	}
	// Output:
	// K-means
	// Colla-Filt
}
