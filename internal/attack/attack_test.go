package attack

import (
	"math"
	"testing"

	"antidope/internal/workload"
)

func TestCatalogValid(t *testing.T) {
	specs := Catalog()
	if len(specs) < 6 {
		t.Fatalf("catalog has %d families", len(specs))
	}
	names := map[string]bool{}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if names[s.Name] {
			t.Fatalf("duplicate attack name %s", s.Name)
		}
		names[s.Name] = true
	}
	for _, want := range []string{"HTTP-Flood", "DNS-Flood", "SYN-Flood", "UDP-Flood", "ICMP-Flood", "Slowloris"} {
		if !names[want] {
			t.Fatalf("missing family %s", want)
		}
	}
}

// The Figure 3 premise: application-layer floods inject more compute power
// (rate × per-request power score) than volumetric floods, and Slowloris
// the least.
func TestCatalogPowerOrdering(t *testing.T) {
	score := func(s Spec) float64 {
		return s.RateRPS * workload.Lookup(s.Class).WattsPerRequestScale()
	}
	byName := map[string]Spec{}
	for _, s := range Catalog() {
		byName[s.Name] = s
	}
	if score(byName["HTTP-Flood"]) <= score(byName["SYN-Flood"]) {
		t.Fatal("HTTP flood should out-power SYN flood")
	}
	if score(byName["DNS-Flood"]) <= score(byName["UDP-Flood"]) {
		t.Fatal("DNS flood should out-power UDP flood")
	}
	if score(byName["Slowloris"]) >= score(byName["SYN-Flood"]) {
		t.Fatal("Slowloris should be the weakest power source")
	}
}

func TestSpecSource(t *testing.T) {
	s := Spec{Name: "x", Class: workload.CollaFilt, RateRPS: 100, Agents: 5, Start: 10, Duration: 20}
	src := s.Source(1000)
	if src.Class != workload.CollaFilt || src.Origin != workload.Attack {
		t.Fatal("source fields")
	}
	if src.Sources != 5 || src.FirstSource != 1000 {
		t.Fatal("agent mapping")
	}
	if src.Rate(9) != 0 || src.Rate(10) != 100 || src.Rate(29.9) != 100 || src.Rate(30) != 0 {
		t.Fatal("attack window")
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{Name: "a", Class: workload.Class(99), RateRPS: 1, Agents: 1},
		{Name: "b", Class: workload.CollaFilt, RateRPS: -1, Agents: 1},
		{Name: "c", Class: workload.CollaFilt, RateRPS: 1, Agents: 0},
	}
	for _, s := range bad {
		if s.Validate() == nil {
			t.Fatalf("spec %s validated", s.Name)
		}
	}
}

func TestHTTPLoadTool(t *testing.T) {
	s := HTTPLoadTool(workload.KMeans, 250, 10, 5, 60)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Class != workload.KMeans || s.RateRPS != 250 || s.Layer != ApplicationLayer {
		t.Fatal("tool spec fields")
	}
}

func TestLayerString(t *testing.T) {
	if ApplicationLayer.String() != "application" ||
		TransportLayer.String() != "transport" ||
		NetworkLayer.String() != "network" {
		t.Fatal("layer names")
	}
	if Layer(9).String() != "Layer(9)" {
		t.Fatal("unknown layer name")
	}
}

func TestSelectTargetsOrdering(t *testing.T) {
	targets := SelectTargets(4)
	if len(targets) != 4 {
		t.Fatalf("targets %v", targets)
	}
	for i := 1; i < len(targets); i++ {
		a := workload.Lookup(targets[i-1]).WattsPerRequestScale()
		b := workload.Lookup(targets[i]).WattsPerRequestScale()
		if a < b {
			t.Fatalf("targets not descending: %v", targets)
		}
	}
	// K-means has the top per-request score in the calibration.
	if targets[0] != workload.KMeans {
		t.Fatalf("top target %v, want K-means", targets[0])
	}
	if got := SelectTargets(99); len(got) != 4 {
		t.Fatal("overlong selection")
	}
	if got := SelectTargets(-1); len(got) != 0 {
		t.Fatal("negative selection")
	}
}

func TestDopeConfigValidate(t *testing.T) {
	if err := DefaultDopeConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultDopeConfig()
	bad.Growth = 1
	if bad.Validate() == nil {
		t.Fatal("growth<=1 validated")
	}
	bad = DefaultDopeConfig()
	bad.Targets = nil
	if bad.Validate() == nil {
		t.Fatal("no targets validated")
	}
	bad = DefaultDopeConfig()
	bad.SafetyMargin = 1
	if bad.Validate() == nil {
		t.Fatal("margin 1 validated")
	}
}

func TestDopeGrowsUntilEffective(t *testing.T) {
	d := NewDopeAttacker(DefaultDopeConfig())
	start := d.Current().RPS
	var plan Plan
	for i := 0; i < 5; i++ {
		plan = d.Step(Feedback{Effective: false})
	}
	if plan.RPS <= start {
		t.Fatalf("rate did not grow: %g -> %g", start, plan.RPS)
	}
	if d.Epochs() != 5 {
		t.Fatalf("epochs %d", d.Epochs())
	}
}

func TestDopeHoldsWhenEffective(t *testing.T) {
	d := NewDopeAttacker(DefaultDopeConfig())
	d.Step(Feedback{Effective: false})
	before := d.Current()
	after := d.Step(Feedback{Effective: true})
	if after.RPS != before.RPS || after.Agents != before.Agents || after.Class != before.Class {
		t.Fatal("effective attack did not hold the operating point")
	}
}

func TestDopeBacksOffAndLearnsCeiling(t *testing.T) {
	d := NewDopeAttacker(DefaultDopeConfig())
	// Grow a few epochs, then get banned.
	for i := 0; i < 4; i++ {
		d.Step(Feedback{})
	}
	rateBefore := d.Current().RPS
	agentsBefore := d.Current().Agents
	perAgentBefore := d.Current().PerAgentRPS()
	plan := d.Step(Feedback{BannedAgents: 3})
	if plan.RPS >= rateBefore {
		t.Fatal("no backoff after ban")
	}
	if plan.Agents <= agentsBefore {
		t.Fatal("no agent recruitment after ban")
	}
	ceil, ok := d.Ceiling()
	if !ok || math.Abs(ceil-perAgentBefore) > 1e-9 {
		t.Fatalf("ceiling %g/%v, want %g", ceil, ok, perAgentBefore)
	}
	if d.BansSeen() != 3 {
		t.Fatalf("bans seen %d", d.BansSeen())
	}
}

func TestDopeRotatesTargetOnBan(t *testing.T) {
	d := NewDopeAttacker(DefaultDopeConfig())
	first := d.Current().Class
	plan := d.Step(Feedback{BannedAgents: 1})
	if plan.Class == first {
		t.Fatal("no class rotation after ban")
	}
	if d.ClassFlips() != 1 {
		t.Fatalf("flips %d", d.ClassFlips())
	}
}

func TestDopeRespectsLearnedCeiling(t *testing.T) {
	cfg := DefaultDopeConfig()
	cfg.MaxAgents = 64
	d := NewDopeAttacker(cfg)
	// Learn a ceiling early.
	for i := 0; i < 3; i++ {
		d.Step(Feedback{})
	}
	d.Step(Feedback{BannedAgents: 1})
	ceil, _ := d.Ceiling()
	safe := ceil * (1 - cfg.SafetyMargin)
	// Keep growing for a long time; per-agent rate must stay under the
	// safety line.
	for i := 0; i < 50; i++ {
		plan := d.Step(Feedback{})
		if plan.PerAgentRPS() > safe+1e-9 {
			t.Fatalf("epoch %d: per-agent %g above safety line %g", i, plan.PerAgentRPS(), safe)
		}
	}
}

func TestDopeRateCappedByMax(t *testing.T) {
	cfg := DefaultDopeConfig()
	cfg.MaxRPS = 100
	d := NewDopeAttacker(cfg)
	for i := 0; i < 30; i++ {
		d.Step(Feedback{})
	}
	if got := d.Current().RPS; got > 100 {
		t.Fatalf("rate %g above MaxRPS", got)
	}
}

func TestDopeBackoffFloorsAtInitial(t *testing.T) {
	d := NewDopeAttacker(DefaultDopeConfig())
	for i := 0; i < 10; i++ {
		d.Step(Feedback{BannedAgents: 1})
	}
	if got := d.Current().RPS; got < DefaultDopeConfig().InitialRPS {
		t.Fatalf("rate %g fell below initial", got)
	}
}

func TestDopeAgentsCapped(t *testing.T) {
	cfg := DefaultDopeConfig()
	cfg.MaxAgents = 32
	d := NewDopeAttacker(cfg)
	for i := 0; i < 10; i++ {
		d.Step(Feedback{BannedAgents: 1})
	}
	if got := d.Current().Agents; got > 32 {
		t.Fatalf("agents %d above cap", got)
	}
}

func TestPlanPerAgent(t *testing.T) {
	p := Plan{RPS: 100, Agents: 4}
	if p.PerAgentRPS() != 25 {
		t.Fatal("per-agent math")
	}
	if (Plan{RPS: 100}).PerAgentRPS() != 0 {
		t.Fatal("zero agents")
	}
}

func TestNewDopePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad config accepted")
		}
	}()
	NewDopeAttacker(DopeConfig{})
}

func BenchmarkDopeStep(b *testing.B) {
	d := NewDopeAttacker(DefaultDopeConfig())
	for i := 0; i < b.N; i++ {
		d.Step(Feedback{Effective: i%7 == 0, BannedAgents: i % 13 / 12})
	}
}

func TestPulseWindows(t *testing.T) {
	specs := Pulse(workload.CollaFilt, 100, 8, 10, 100, 20, 10)
	if len(specs) != 3 {
		t.Fatalf("pulse count %d, want 3", len(specs))
	}
	for i, s := range specs {
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		wantStart := 10 + float64(i)*30
		if math.Abs(s.Start-wantStart) > 1e-9 {
			t.Fatalf("pulse %d starts at %g, want %g", i, s.Start, wantStart)
		}
		if s.Duration <= 0 || s.Duration > 20 {
			t.Fatalf("pulse %d duration %g", i, s.Duration)
		}
	}
	// Last pulse clipped at the horizon.
	last := specs[len(specs)-1]
	if last.Start+last.Duration > 100+1e-9 {
		t.Fatal("pulse spills past horizon")
	}
}

func TestPulseGapsSilent(t *testing.T) {
	specs := Pulse(workload.KMeans, 50, 4, 0, 90, 10, 20)
	rate := func(ts float64) float64 {
		total := 0.0
		for _, s := range specs {
			total += s.Source(0).Rate(ts)
		}
		return total
	}
	if rate(5) != 50 {
		t.Fatal("pulse on-window silent")
	}
	if rate(15) != 0 {
		t.Fatal("pulse off-window active")
	}
	if rate(35) != 50 {
		t.Fatal("second pulse missing")
	}
}

func TestPulsePanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad pulse accepted")
		}
	}()
	Pulse(workload.CollaFilt, 1, 1, 0, 10, 0, 1)
}
