package attack

import (
	"fmt"

	"antidope/internal/workload"
)

// DopeConfig parameterizes the adaptive attacker of Figure 12. The attacker
// only sees what an external adversary can see: whether its agents got
// banned, and a coarse effectiveness signal (is the victim visibly degraded
// — in the paper's terms, has the power emergency landed).
type DopeConfig struct {
	// Targets is the class rotation, highest power-per-request first (from
	// SelectTargets). The attacker switches class when the current one is
	// being filtered.
	Targets []workload.Class
	// InitialRPS is the opening aggregate request rate.
	InitialRPS float64
	// MaxRPS caps the aggregate rate (the adversary's botnet capacity).
	MaxRPS float64
	// Growth multiplies the rate while the attack is not yet effective.
	Growth float64
	// Backoff multiplies the rate after agents get banned.
	Backoff float64
	// SafetyMargin keeps the per-agent rate below the learned detection
	// ceiling by this fraction (0.2 = stay 20% under).
	SafetyMargin float64
	// Agents is the initial number of recruited sources; the attacker
	// doubles it (up to MaxAgents) when per-agent rate hits the ceiling.
	Agents    int
	MaxAgents int
}

// DefaultDopeConfig is the attacker used in the evaluation.
func DefaultDopeConfig() DopeConfig {
	return DopeConfig{
		Targets:      SelectTargets(3),
		InitialRPS:   20,
		MaxRPS:       4000,
		Growth:       1.6,
		Backoff:      0.5,
		SafetyMargin: 0.2,
		Agents:       8,
		MaxAgents:    1024,
	}
}

// Validate reports whether the configuration is runnable.
func (c DopeConfig) Validate() error {
	if len(c.Targets) == 0 {
		return fmt.Errorf("dope: no targets")
	}
	if c.InitialRPS <= 0 || c.MaxRPS < c.InitialRPS {
		return fmt.Errorf("dope: rate range [%g,%g]", c.InitialRPS, c.MaxRPS)
	}
	if c.Growth <= 1 || c.Backoff <= 0 || c.Backoff >= 1 {
		return fmt.Errorf("dope: growth %g / backoff %g", c.Growth, c.Backoff)
	}
	if c.SafetyMargin < 0 || c.SafetyMargin >= 1 {
		return fmt.Errorf("dope: safety margin %g", c.SafetyMargin)
	}
	if c.Agents <= 0 || c.MaxAgents < c.Agents {
		return fmt.Errorf("dope: agents %d/%d", c.Agents, c.MaxAgents)
	}
	return nil
}

// Feedback is what the attacker learns at the end of one probe epoch.
type Feedback struct {
	// BannedAgents is how many of its sources were blocked this epoch.
	BannedAgents int
	// Effective reports whether the victim shows the intended distress
	// (latency blow-up / power emergency observed from outside).
	Effective bool
}

// Plan is the attacker's traffic decision for the next epoch.
type Plan struct {
	Class  workload.Class
	RPS    float64
	Agents int
}

// PerAgentRPS returns the per-source rate the plan implies.
func (p Plan) PerAgentRPS() float64 {
	if p.Agents <= 0 {
		return 0
	}
	return p.RPS / float64(p.Agents)
}

// DopeAttacker is the Figure 12 state machine. Step it once per probe epoch
// with the previous epoch's feedback; it returns the next plan.
type DopeAttacker struct {
	cfg DopeConfig

	rate      float64
	agents    int
	targetIdx int
	// ceiling is the learned per-agent detection threshold estimate; +Inf
	// until a ban is observed.
	ceiling    float64
	haveCeil   bool
	epochs     int
	bansSeen   int
	classFlips int
}

// NewDopeAttacker builds the attacker; it panics on invalid config.
func NewDopeAttacker(cfg DopeConfig) *DopeAttacker {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &DopeAttacker{cfg: cfg, rate: cfg.InitialRPS, agents: cfg.Agents}
}

// Clone returns an independent copy of the attacker's learned state for
// snapshot forking. The Targets rotation is shared — it is read-only after
// construction.
func (d *DopeAttacker) Clone() *DopeAttacker {
	c := *d
	return &c
}

// Current returns the plan for the current epoch without advancing state.
func (d *DopeAttacker) Current() Plan {
	return Plan{Class: d.cfg.Targets[d.targetIdx], RPS: d.rate, Agents: d.agents}
}

// Epochs returns how many feedback steps the attacker has consumed.
func (d *DopeAttacker) Epochs() int { return d.epochs }

// BansSeen returns the cumulative number of banned agents observed.
func (d *DopeAttacker) BansSeen() int { return d.bansSeen }

// Ceiling returns the learned per-agent rate ceiling and whether one has
// been observed yet.
func (d *DopeAttacker) Ceiling() (float64, bool) { return d.ceiling, d.haveCeil }

// Step consumes feedback from the last epoch and returns the plan for the
// next one. The algorithm mirrors Figure 12:
//
//  1. got banned → learn the detection ceiling from the per-agent rate that
//     tripped it, back the rate off, recruit more agents, and rotate to the
//     next target class (fresh sources, different URL);
//  2. not yet effective → grow the rate, but never push per-agent rate past
//     the learned ceiling minus the safety margin — recruit instead;
//  3. effective and clean → hold the operating point.
func (d *DopeAttacker) Step(fb Feedback) Plan {
	d.epochs++
	perAgent := d.rate / float64(d.agents)

	switch {
	case fb.BannedAgents > 0:
		d.bansSeen += fb.BannedAgents
		// The tripped per-agent rate is an upper bound on the threshold.
		if !d.haveCeil || perAgent < d.ceiling {
			d.ceiling = perAgent
			d.haveCeil = true
		}
		d.rate *= d.cfg.Backoff
		if d.rate < d.cfg.InitialRPS {
			d.rate = d.cfg.InitialRPS
		}
		d.growAgents()
		d.rotateTarget()

	case !fb.Effective:
		want := d.rate * d.cfg.Growth
		if want > d.cfg.MaxRPS {
			want = d.cfg.MaxRPS
		}
		// Respect the learned ceiling: add agents until the per-agent rate
		// fits, then clamp.
		if d.haveCeil {
			safe := d.ceiling * (1 - d.cfg.SafetyMargin)
			for want/float64(d.agents) > safe && d.agents < d.cfg.MaxAgents {
				d.growAgents()
			}
			if maxSafe := safe * float64(d.agents); want > maxSafe {
				want = maxSafe
			}
		}
		if want > d.rate {
			d.rate = want
		}

	default:
		// Effective and undetected: hold. (A real adversary might decay
		// slightly to reduce exposure; holding keeps the model minimal.)
	}
	return d.Current()
}

func (d *DopeAttacker) growAgents() {
	d.agents *= 2
	if d.agents > d.cfg.MaxAgents {
		d.agents = d.cfg.MaxAgents
	}
}

func (d *DopeAttacker) rotateTarget() {
	if len(d.cfg.Targets) > 1 {
		d.targetIdx = (d.targetIdx + 1) % len(d.cfg.Targets)
		d.classFlips++
	}
}

// ClassFlips returns how many times the attacker rotated target classes.
func (d *DopeAttacker) ClassFlips() int { return d.classFlips }
