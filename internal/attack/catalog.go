// Package attack implements the adversary side of the paper: the catalog of
// conventional flood families profiled in Figure 3, constant-rate HTTP
// flood tools (the http-load / ApacheBench stand-ins of Table 1), and the
// adaptive DOPE attack algorithm of Figure 12 that walks its request rate
// up to just under the firewall's detection line while maximizing victim
// power.
package attack

import (
	"fmt"

	"antidope/internal/workload"
)

// Layer labels where in the stack an attack family operates.
type Layer int

const (
	// ApplicationLayer attacks exhaust server resources via service
	// requests (HTTP flood, DNS flood, Slowloris).
	ApplicationLayer Layer = iota
	// TransportLayer attacks abuse protocol state (SYN flood).
	TransportLayer
	// NetworkLayer attacks saturate links (UDP, ICMP floods).
	NetworkLayer
)

func (l Layer) String() string {
	switch l {
	case ApplicationLayer:
		return "application"
	case TransportLayer:
		return "transport"
	case NetworkLayer:
		return "network"
	default:
		return fmt.Sprintf("Layer(%d)", int(l))
	}
}

// Spec describes one attack scenario: which request class it injects, how
// fast, from how many recruited agents, and when.
type Spec struct {
	Name    string
	Layer   Layer
	Class   workload.Class
	RateRPS float64
	// Agents is the number of distinct sources the traffic is spread over.
	Agents int
	// Start and Duration bound the attack window in simulated seconds.
	Start, Duration float64
}

// Validate reports whether the spec is runnable.
func (s Spec) Validate() error {
	if !s.Class.Valid() {
		return fmt.Errorf("attack %q: invalid class", s.Name)
	}
	if s.RateRPS < 0 || s.Duration < 0 || s.Start < 0 {
		return fmt.Errorf("attack %q: negative rate or window", s.Name)
	}
	if s.Agents <= 0 {
		return fmt.Errorf("attack %q: agents %d", s.Name, s.Agents)
	}
	return nil
}

// Source converts the spec into an arrival source for the workload mix.
// firstSource offsets the attacker's agent IDs.
func (s Spec) Source(firstSource workload.SourceID) workload.Source {
	return workload.Source{
		Class:       s.Class,
		Origin:      workload.Attack,
		Rate:        workload.WindowRate(s.RateRPS, s.Start, s.Start+s.Duration),
		Sources:     s.Agents,
		FirstSource: firstSource,
	}
}

// Catalog returns the attack families of Figure 3, calibrated so that the
// application-layer floods produce the high power band, volumetric floods
// the medium/low band, and connection-exhaustion attacks the lowest — the
// ordering Section 3.1 measures. All run over the figure's 600 s window.
func Catalog() []Spec {
	const dur = 600
	return []Spec{
		{Name: "HTTP-Flood", Layer: ApplicationLayer, Class: workload.AliNormal,
			RateRPS: 900, Agents: 40, Start: 0, Duration: dur},
		{Name: "DNS-Flood", Layer: ApplicationLayer, Class: workload.TextCont,
			RateRPS: 1600, Agents: 40, Start: 0, Duration: dur},
		{Name: "SYN-Flood", Layer: TransportLayer, Class: workload.VolumeFlood,
			RateRPS: 5000, Agents: 60, Start: 0, Duration: dur},
		{Name: "UDP-Flood", Layer: NetworkLayer, Class: workload.VolumeFlood,
			RateRPS: 8000, Agents: 60, Start: 0, Duration: dur},
		{Name: "ICMP-Flood", Layer: NetworkLayer, Class: workload.VolumeFlood,
			RateRPS: 6000, Agents: 60, Start: 0, Duration: dur},
		{Name: "Slowloris", Layer: ApplicationLayer, Class: workload.SlowDrip,
			RateRPS: 300, Agents: 20, Start: 0, Duration: dur},
	}
}

// HTTPLoadTool mimics the http-load / ApacheBench victims-at-will tools of
// Table 1: a constant-rate flood of one victim endpoint.
func HTTPLoadTool(class workload.Class, rateRPS float64, agents int, start, dur float64) Spec {
	return Spec{
		Name:     fmt.Sprintf("http-load(%v@%g)", class, rateRPS),
		Layer:    ApplicationLayer,
		Class:    class,
		RateRPS:  rateRPS,
		Agents:   agents,
		Start:    start,
		Duration: dur,
	}
}

// SelectTargets performs the adversary's offline profiling step (Section 4):
// rank the victim endpoints by per-request power score and return the top n.
func SelectTargets(n int) []workload.Class {
	victims := workload.VictimClasses()
	// Insertion sort by descending score; four elements, clarity wins.
	ordered := append([]workload.Class(nil), victims...)
	for i := 1; i < len(ordered); i++ {
		for j := i; j > 0; j-- {
			a := workload.Lookup(ordered[j]).WattsPerRequestScale()
			b := workload.Lookup(ordered[j-1]).WattsPerRequestScale()
			if a > b {
				ordered[j], ordered[j-1] = ordered[j-1], ordered[j]
			}
		}
	}
	if n > len(ordered) {
		n = len(ordered)
	}
	if n < 0 {
		n = 0
	}
	return ordered[:n]
}

// Pulse builds a square-wave flood: bursts of onSec at rateRPS separated by
// offSec of silence, repeating across [start, until). Pulsing defeats
// purely reactive capping (the peak is gone before deep throttling pays
// off) and wears battery-based shaving through repeated discharge cycles —
// the "frequency of attack changes" dimension of Section 6.4.
func Pulse(class workload.Class, rateRPS float64, agents int,
	start, until, onSec, offSec float64) []Spec {
	if onSec <= 0 || offSec < 0 {
		panic(fmt.Sprintf("attack: pulse on/off %g/%g", onSec, offSec))
	}
	var specs []Spec
	i := 0
	for t := start; t < until; t += onSec + offSec {
		end := t + onSec
		if end > until {
			end = until
		}
		specs = append(specs, Spec{
			Name:     fmt.Sprintf("pulse-%d-%v", i, class),
			Layer:    ApplicationLayer,
			Class:    class,
			RateRPS:  rateRPS,
			Agents:   agents,
			Start:    t,
			Duration: end - t,
		})
		i++
	}
	return specs
}
