// Package cluster aggregates servers into the power domain the paper's
// defenses operate on: a rack (or row) with a shared utility power budget,
// an optional UPS string, and a power monitor the control loop samples.
package cluster

import (
	"fmt"

	"antidope/internal/battery"
	"antidope/internal/power"
	"antidope/internal/server"
	"antidope/internal/stats"
)

// BudgetLevel names the four provisioning scenarios of Section 3.3.
type BudgetLevel int

const (
	// NormalPB supplies 100% of cluster nameplate (no oversubscription).
	NormalPB BudgetLevel = iota
	// HighPB supplies 90% of nameplate.
	HighPB
	// MediumPB supplies 85% of nameplate.
	MediumPB
	// LowPB supplies 80% of nameplate.
	LowPB
)

var budgetNames = [...]string{"Normal-PB", "High-PB", "Medium-PB", "Low-PB"}
var budgetFracs = [...]float64{1.00, 0.90, 0.85, 0.80}

// String returns the paper's name for the level.
func (b BudgetLevel) String() string {
	if b < 0 || int(b) >= len(budgetNames) {
		return fmt.Sprintf("BudgetLevel(%d)", int(b))
	}
	return budgetNames[b]
}

// Frac returns the supplied power as a fraction of nameplate.
func (b BudgetLevel) Frac() float64 {
	if b < 0 || int(b) >= len(budgetFracs) {
		return 1
	}
	return budgetFracs[b]
}

// AllBudgetLevels lists the levels in the order the paper's figures use.
func AllBudgetLevels() []BudgetLevel {
	return []BudgetLevel{NormalPB, HighPB, MediumPB, LowPB}
}

// Cluster is one power domain.
type Cluster struct {
	Servers []*server.Server
	// BudgetW is the utility supply limit for the whole domain.
	BudgetW power.Watts
	// UPS is the battery string; a zero-capacity UPS means none installed.
	UPS *battery.UPS

	utilityJ float64 // energy drawn from utility (incl. battery charging)
	batteryJ float64 // energy drawn from battery
	overJ    float64 // budget-violation integral (W·s above budget)
}

// Config describes a homogeneous cluster.
type Config struct {
	Servers     int
	Cores       int
	MaxInflight int
	Model       power.Model
	Budget      BudgetLevel
	// BatteryAutonomySec sizes the UPS to sustain BatterySustainW for this
	// long; zero installs no battery.
	BatteryAutonomySec float64
	// BatterySustainW is the draw the UPS is sized against; zero means the
	// full cluster nameplate. The Section 6 evaluation sizes it against the
	// oversubscription gap instead, so battery exhaustion dynamics are
	// visible inside the observation window.
	BatterySustainW float64
}

// DefaultConfig mirrors the paper's scaled-down rack: four 100 W leaf nodes
// with a 2-minute UPS.
func DefaultConfig() Config {
	return Config{
		Servers:            4,
		Cores:              4,
		MaxInflight:        48,
		Model:              power.DefaultModel(),
		Budget:             NormalPB,
		BatteryAutonomySec: 120,
	}
}

// New builds the cluster. The budget is the level fraction of total
// nameplate.
func New(cfg Config) (*Cluster, error) {
	if cfg.Servers <= 0 {
		return nil, fmt.Errorf("cluster: %d servers", cfg.Servers)
	}
	c := &Cluster{}
	for i := 0; i < cfg.Servers; i++ {
		s, err := server.New(server.Config{
			ID: i, Cores: cfg.Cores, MaxInflight: cfg.MaxInflight, Model: cfg.Model,
		})
		if err != nil {
			return nil, err
		}
		c.Servers = append(c.Servers, s)
	}
	c.BudgetW = c.Nameplate() * cfg.Budget.Frac()
	if cfg.BatteryAutonomySec > 0 {
		sustain := cfg.BatterySustainW
		if sustain <= 0 {
			sustain = c.Nameplate()
		}
		c.UPS = battery.Sized(sustain, cfg.BatteryAutonomySec)
	} else {
		c.UPS = &battery.UPS{}
	}
	return c, nil
}

// MustNew is New for known-good configs.
func MustNew(cfg Config) *Cluster {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Clone returns an independent deep copy of the power domain for snapshot
// forking: servers, UPS and the energy ledgers all diverge freely afterwards.
func (c *Cluster) Clone() *Cluster {
	out := *c
	out.Servers = make([]*server.Server, len(c.Servers))
	for i, s := range c.Servers {
		out.Servers[i] = s.Clone()
	}
	out.UPS = c.UPS.Clone()
	return &out
}

// Nameplate returns the sum of server nameplate ratings.
func (c *Cluster) Nameplate() power.Watts {
	total := power.Watts(0)
	for _, s := range c.Servers {
		total += s.Model.Nameplate
	}
	return total
}

// PowerNow returns instantaneous total draw of all servers.
func (c *Cluster) PowerNow() power.Watts {
	total := power.Watts(0)
	for _, s := range c.Servers {
		total += s.PowerNow()
	}
	return total
}

// Overshoot returns how far current draw exceeds the budget (0 if under).
func (c *Cluster) Overshoot() power.Watts {
	over := c.PowerNow() - c.BudgetW
	if over < 0 {
		return 0
	}
	return over
}

// Headroom returns spare budget (0 if over).
func (c *Cluster) Headroom() power.Watts {
	head := c.BudgetW - c.PowerNow()
	if head < 0 {
		return 0
	}
	return head
}

// AccountSlot integrates the energy ledger for a slot of length dt during
// which the servers drew drawW and the battery contributed batteryW of it.
// The remainder (plus any charging power chargeW) came from the utility.
func (c *Cluster) AccountSlot(dt, drawW, batteryW, chargeW float64) {
	if dt <= 0 {
		return
	}
	utility := drawW - batteryW + chargeW
	if utility < 0 {
		utility = 0
	}
	c.utilityJ += utility * dt
	c.batteryJ += batteryW * dt
	if net := drawW - batteryW; net > c.BudgetW {
		c.overJ += (net - c.BudgetW) * dt
	}
}

// UtilityJ returns energy drawn from the utility so far.
func (c *Cluster) UtilityJ() float64 { return c.utilityJ }

// BatteryJ returns energy supplied by the battery so far.
func (c *Cluster) BatteryJ() float64 { return c.batteryJ }

// OverBudgetJ returns the integral of net draw above the budget — the
// violation the defenses exist to eliminate.
func (c *Cluster) OverBudgetJ() float64 { return c.overJ }

// TotalEnergyJ returns all energy consumed by servers (from both sources).
func (c *Cluster) TotalEnergyJ() float64 {
	total := 0.0
	for _, s := range c.Servers {
		total += s.EnergyJ()
	}
	return total
}

// MeanVFReduction returns the average fractional V/F reduction across
// servers — the y-axis of Figure 6.
func (c *Cluster) MeanVFReduction() float64 {
	if len(c.Servers) == 0 {
		return 0
	}
	total := 0.0
	for _, s := range c.Servers {
		total += s.Model.Ladder.VFReduction(s.Freq())
	}
	return total / float64(len(c.Servers))
}

// MeanFreq returns the average operating frequency.
func (c *Cluster) MeanFreq() power.GHz {
	if len(c.Servers) == 0 {
		return 0
	}
	total := power.GHz(0)
	for _, s := range c.Servers {
		total += s.Freq()
	}
	return total / power.GHz(len(c.Servers))
}

// Inflight returns total requests in service.
func (c *Cluster) Inflight() int {
	n := 0
	for _, s := range c.Servers {
		n += s.Inflight()
	}
	return n
}

// Completed returns total completions.
func (c *Cluster) Completed() uint64 {
	n := uint64(0)
	for _, s := range c.Servers {
		n += s.Completed()
	}
	return n
}

// Rejected returns total admission rejections.
func (c *Cluster) Rejected() uint64 {
	n := uint64(0)
	for _, s := range c.Servers {
		n += s.Rejected()
	}
	return n
}

// SuspectServers returns the servers currently marked suspect, and the
// rest. Anti-DOPE's PDF module partitions with MarkSuspects.
func (c *Cluster) SuspectServers() (suspects, innocents []*server.Server) {
	for _, s := range c.Servers {
		if s.Suspect {
			suspects = append(suspects, s)
		} else {
			innocents = append(innocents, s)
		}
	}
	return suspects, innocents
}

// MarkSuspects designates the first n servers as the suspect pool. It
// panics if n is out of range: the split is a static deployment decision.
func (c *Cluster) MarkSuspects(n int) {
	if n < 0 || n > len(c.Servers) {
		panic(fmt.Sprintf("cluster: suspect pool %d of %d servers", n, len(c.Servers)))
	}
	for i, s := range c.Servers {
		s.Suspect = i < n
	}
}

// Monitor samples cluster power into a series; the control loop and the
// figures both read it.
type Monitor struct {
	Power   stats.Series
	Battery stats.Series
	Freq    stats.Series
	VFRed   stats.Series
}

// Sample records the instantaneous state at time now.
func (m *Monitor) Sample(now float64, c *Cluster) {
	m.Power.Add(now, c.PowerNow())
	m.Battery.Add(now, c.UPS.SoC())
	m.Freq.Add(now, float64(c.MeanFreq()))
	m.VFRed.Add(now, c.MeanVFReduction())
}
