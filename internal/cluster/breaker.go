package cluster

import "fmt"

// Breaker models the branch-circuit protection of an oversubscribed power
// domain with an inverse-time (I²t-style) trip curve: sustained draw above
// the continuous rating accumulates thermal "heat"; the breaker trips when
// the heat crosses the trip threshold, and cools at a fixed rate while the
// draw is under the rating. This is what turns an unmitigated DOPE attack
// into the paper's Figure 1 story — a real unplanned outage — rather than
// just a budget-accounting violation.
type Breaker struct {
	// RatingW is the continuous current rating expressed in watts. Typical
	// deployments rate the breaker slightly above the provisioned budget.
	RatingW float64
	// TripJ is the overload integral (joules above rating) that trips the
	// breaker. A small TripJ is a fast breaker; a large one is tolerant.
	TripJ float64
	// CoolWPerSec is how quickly accumulated overload heat dissipates when
	// the draw is at or under the rating.
	CoolWPerSec float64

	heat    float64
	tripped bool
	trips   int
}

// NewBreaker sizes a breaker at ratingW that tolerates a full overloadW
// excursion for toleranceSec before tripping.
func NewBreaker(ratingW, overloadW, toleranceSec float64) (*Breaker, error) {
	if ratingW <= 0 || overloadW <= 0 || toleranceSec <= 0 {
		return nil, fmt.Errorf("cluster: breaker sizing %g/%g/%g must be positive",
			ratingW, overloadW, toleranceSec)
	}
	return &Breaker{
		RatingW:     ratingW,
		TripJ:       overloadW * toleranceSec,
		CoolWPerSec: overloadW / 4, // cools in ~4x the tolerated excursion
	}, nil
}

// Step advances the thermal state by dt seconds at the given utility draw
// and reports whether the breaker tripped during this step. A tripped
// breaker stays tripped until Reset.
func (b *Breaker) Step(dt, drawW float64) bool {
	if b == nil || b.tripped || dt <= 0 {
		return false
	}
	over := drawW - b.RatingW
	if over > 0 {
		b.heat += over * dt
	} else {
		b.heat -= b.CoolWPerSec * dt
		if b.heat < 0 {
			b.heat = 0
		}
	}
	if b.heat >= b.TripJ {
		b.tripped = true
		b.trips++
		return true
	}
	return false
}

// Clone returns an independent copy carrying the thermal state, for
// snapshot forking. Cloning a nil breaker returns nil.
func (b *Breaker) Clone() *Breaker {
	if b == nil {
		return nil
	}
	c := *b
	return &c
}

// Tripped reports whether the breaker is currently open.
func (b *Breaker) Tripped() bool { return b != nil && b.tripped }

// Trips returns the number of trip events since construction.
func (b *Breaker) Trips() int {
	if b == nil {
		return 0
	}
	return b.trips
}

// HeatFrac returns the accumulated overload as a fraction of the trip
// threshold, a monitoring signal ("how close to an outage are we").
func (b *Breaker) HeatFrac() float64 {
	if b == nil || b.TripJ <= 0 {
		return 0
	}
	f := b.heat / b.TripJ
	if f > 1 {
		f = 1
	}
	return f
}

// Reset closes the breaker again (maintenance action) and clears the heat.
func (b *Breaker) Reset() {
	if b == nil {
		return
	}
	b.tripped = false
	b.heat = 0
}
