package cluster

import (
	"math"
	"testing"

	"antidope/internal/workload"
)

func fixedReq(id uint64, c workload.Class, demand float64) *workload.Request {
	return &workload.Request{ID: id, Class: c, Demand: demand, Remaining: demand}
}

func TestBudgetLevels(t *testing.T) {
	cases := []struct {
		lvl  BudgetLevel
		name string
		frac float64
	}{
		{NormalPB, "Normal-PB", 1.0},
		{HighPB, "High-PB", 0.90},
		{MediumPB, "Medium-PB", 0.85},
		{LowPB, "Low-PB", 0.80},
	}
	for _, c := range cases {
		if c.lvl.String() != c.name {
			t.Fatalf("name %q, want %q", c.lvl.String(), c.name)
		}
		if c.lvl.Frac() != c.frac {
			t.Fatalf("frac %g, want %g", c.lvl.Frac(), c.frac)
		}
	}
	if len(AllBudgetLevels()) != 4 {
		t.Fatal("budget level list")
	}
	if BudgetLevel(9).Frac() != 1 || BudgetLevel(9).String() == "" {
		t.Fatal("out-of-range budget level")
	}
}

func TestNewClusterDefaults(t *testing.T) {
	c := MustNew(DefaultConfig())
	if len(c.Servers) != 4 {
		t.Fatalf("servers %d", len(c.Servers))
	}
	if got := c.Nameplate(); got != 400 {
		t.Fatalf("nameplate %g", got)
	}
	if got := c.BudgetW; got != 400 {
		t.Fatalf("budget %g at Normal-PB", got)
	}
	// Paper's mini battery: 2 minutes at full cluster draw.
	if got := c.UPS.AutonomyAt(400); math.Abs(got-120) > 1e-9 {
		t.Fatalf("battery autonomy %g", got)
	}
}

func TestBudgetScalesWithLevel(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Budget = LowPB
	c := MustNew(cfg)
	if got := c.BudgetW; math.Abs(got-320) > 1e-9 {
		t.Fatalf("Low-PB budget %g, want 320", got)
	}
}

func TestNoBatteryOption(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BatteryAutonomySec = 0
	c := MustNew(cfg)
	if !c.UPS.Empty() || c.UPS.CapacityJ != 0 {
		t.Fatal("zero autonomy should install an absent battery")
	}
}

func TestNewRejectsBad(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Servers = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("zero servers accepted")
	}
	cfg = DefaultConfig()
	cfg.Cores = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("zero cores accepted")
	}
}

func TestPowerAggregation(t *testing.T) {
	c := MustNew(DefaultConfig())
	idle := c.PowerNow()
	wantIdle := 4 * c.Servers[0].Model.Idle(2.4)
	if math.Abs(idle-wantIdle) > 1e-9 {
		t.Fatalf("idle cluster power %g, want %g", idle, wantIdle)
	}
	// Saturate one server.
	s := c.Servers[0]
	s.Advance(0)
	for i := 0; i < 4; i++ {
		s.Admit(0, fixedReq(uint64(i), workload.CollaFilt, 10))
	}
	if got := c.PowerNow(); got <= idle {
		t.Fatalf("loaded power %g not above idle %g", got, idle)
	}
}

func TestOvershootAndHeadroom(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Budget = LowPB // 320 W
	c := MustNew(cfg)
	if c.Overshoot() != 0 {
		t.Fatal("idle cluster overshoots")
	}
	if c.Headroom() <= 0 {
		t.Fatal("idle cluster has no headroom")
	}
	// Saturate everything with the heaviest class.
	for _, s := range c.Servers {
		s.Advance(0)
		for i := 0; i < 8; i++ {
			s.Admit(0, fixedReq(uint64(i), workload.CollaFilt, 100))
		}
	}
	if got := c.Overshoot(); math.Abs(got-80) > 1 {
		t.Fatalf("overshoot %g, want ~80 (400 draw vs 320 budget)", got)
	}
	if c.Headroom() != 0 {
		t.Fatal("saturated cluster has headroom")
	}
}

func TestAccountSlot(t *testing.T) {
	c := MustNew(DefaultConfig())
	c.BudgetW = 300
	// 10 s at 350 W draw, 40 W from battery, 5 W charging.
	c.AccountSlot(10, 350, 40, 5)
	if math.Abs(c.UtilityJ()-3150) > 1e-9 {
		t.Fatalf("utility %g, want (350-40+5)*10", c.UtilityJ())
	}
	if math.Abs(c.BatteryJ()-400) > 1e-9 {
		t.Fatalf("battery %g", c.BatteryJ())
	}
	// Net draw 310 vs budget 300: 100 J violation.
	if math.Abs(c.OverBudgetJ()-100) > 1e-9 {
		t.Fatalf("over-budget %g", c.OverBudgetJ())
	}
	// Zero dt is a no-op.
	c.AccountSlot(0, 1000, 0, 0)
	if math.Abs(c.UtilityJ()-3150) > 1e-9 {
		t.Fatal("zero-dt slot changed the ledger")
	}
}

func TestVFReductionAggregation(t *testing.T) {
	c := MustNew(DefaultConfig())
	if c.MeanVFReduction() != 0 {
		t.Fatal("fresh cluster has V/F reduction")
	}
	c.Servers[0].CapFreq(1.2)
	want := (2.4 - 1.2) / 2.4 / 4
	if got := c.MeanVFReduction(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("mean reduction %g, want %g", got, want)
	}
	if got := c.MeanFreq(); math.Abs(float64(got)-(1.2+2.4*3)/4) > 1e-9 {
		t.Fatalf("mean freq %v", got)
	}
}

func TestSuspectPartition(t *testing.T) {
	c := MustNew(DefaultConfig())
	c.MarkSuspects(1)
	sus, inn := c.SuspectServers()
	if len(sus) != 1 || len(inn) != 3 {
		t.Fatalf("partition %d/%d", len(sus), len(inn))
	}
	if !c.Servers[0].Suspect || c.Servers[1].Suspect {
		t.Fatal("wrong servers marked")
	}
	// Re-marking adjusts.
	c.MarkSuspects(2)
	sus, _ = c.SuspectServers()
	if len(sus) != 2 {
		t.Fatal("re-mark failed")
	}
}

func TestMarkSuspectsPanicsOutOfRange(t *testing.T) {
	c := MustNew(DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range suspect pool accepted")
		}
	}()
	c.MarkSuspects(5)
}

func TestCountsAggregation(t *testing.T) {
	c := MustNew(DefaultConfig())
	s := c.Servers[2]
	s.Advance(0)
	s.Admit(0, fixedReq(1, workload.TextCont, 0.01))
	if c.Inflight() != 1 {
		t.Fatalf("inflight %d", c.Inflight())
	}
	at, _ := s.NextCompletion()
	s.Advance(at)
	if c.Completed() != 1 {
		t.Fatalf("completed %d", c.Completed())
	}
}

func TestMonitorSampling(t *testing.T) {
	c := MustNew(DefaultConfig())
	var m Monitor
	m.Sample(0, c)
	c.Servers[0].CapFreq(1.5)
	m.Sample(1, c)
	if m.Power.Len() != 2 || m.Battery.Len() != 2 || m.Freq.Len() != 2 || m.VFRed.Len() != 2 {
		t.Fatal("monitor series lengths")
	}
	if m.Battery.Points[0].V != 1 {
		t.Fatalf("initial SoC sample %g", m.Battery.Points[0].V)
	}
	if m.VFRed.Points[1].V <= m.VFRed.Points[0].V {
		t.Fatal("V/F reduction sample did not increase after cap")
	}
}

func TestTotalEnergy(t *testing.T) {
	c := MustNew(DefaultConfig())
	for _, s := range c.Servers {
		s.Advance(10)
	}
	want := 10 * c.PowerNow() // idle power constant over the window
	if math.Abs(c.TotalEnergyJ()-want) > 1e-6 {
		t.Fatalf("total energy %g, want %g", c.TotalEnergyJ(), want)
	}
}
