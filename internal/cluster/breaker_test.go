package cluster

import (
	"math"
	"testing"
)

func TestNewBreakerValidates(t *testing.T) {
	if _, err := NewBreaker(0, 10, 10); err == nil {
		t.Fatal("zero rating accepted")
	}
	if _, err := NewBreaker(100, 0, 10); err == nil {
		t.Fatal("zero overload accepted")
	}
	if _, err := NewBreaker(100, 10, 0); err == nil {
		t.Fatal("zero tolerance accepted")
	}
}

func TestBreakerTripsAfterTolerance(t *testing.T) {
	// 100 W rating, tolerates a 50 W excursion for 10 s.
	b, err := NewBreaker(100, 50, 10)
	if err != nil {
		t.Fatal(err)
	}
	tripped := false
	elapsed := 0.0
	for i := 0; i < 100 && !tripped; i++ {
		tripped = b.Step(1, 150) // full 50 W over
		elapsed++
	}
	if !tripped {
		t.Fatal("never tripped under sustained full overload")
	}
	if math.Abs(elapsed-10) > 1.5 {
		t.Fatalf("tripped after %.0fs, want ~10s", elapsed)
	}
	if b.Trips() != 1 || !b.Tripped() {
		t.Fatal("trip bookkeeping")
	}
}

func TestBreakerProportionalTiming(t *testing.T) {
	// Half the overload should take about twice as long.
	b, _ := NewBreaker(100, 50, 10)
	elapsed := 0.0
	for !b.Step(1, 125) {
		elapsed++
		if elapsed > 100 {
			t.Fatal("never tripped")
		}
	}
	if math.Abs(elapsed-20) > 2 {
		t.Fatalf("half overload tripped after %.0fs, want ~20s", elapsed)
	}
}

func TestBreakerNeverTripsUnderRating(t *testing.T) {
	b, _ := NewBreaker(100, 50, 10)
	for i := 0; i < 10000; i++ {
		if b.Step(1, 99) {
			t.Fatal("tripped under rating")
		}
	}
	if b.HeatFrac() != 0 {
		t.Fatal("heat accumulated under rating")
	}
}

func TestBreakerCoolsBetweenExcursions(t *testing.T) {
	b, _ := NewBreaker(100, 50, 10) // cools at 12.5 W/s
	// Alternate 4 s of full overload (200 J) with 20 s under rating
	// (cools 250 J): heat never accumulates across cycles.
	for cycle := 0; cycle < 50; cycle++ {
		for i := 0; i < 4; i++ {
			if b.Step(1, 150) {
				t.Fatalf("tripped on cycle %d despite cooling", cycle)
			}
		}
		for i := 0; i < 20; i++ {
			b.Step(1, 50)
		}
	}
}

func TestBreakerLatchesUntilReset(t *testing.T) {
	b, _ := NewBreaker(100, 50, 1)
	for !b.Step(1, 200) {
	}
	if b.Step(1, 0) {
		t.Fatal("tripped breaker reported a second trip")
	}
	if !b.Tripped() {
		t.Fatal("breaker closed itself")
	}
	b.Reset()
	if b.Tripped() || b.HeatFrac() != 0 {
		t.Fatal("reset did not clear state")
	}
	// Can trip again after reset.
	for !b.Step(1, 200) {
	}
	if b.Trips() != 2 {
		t.Fatalf("trips %d, want 2", b.Trips())
	}
}

func TestBreakerHeatFracMonotone(t *testing.T) {
	b, _ := NewBreaker(100, 50, 10)
	prev := 0.0
	for i := 0; i < 5; i++ {
		b.Step(1, 150)
		if b.HeatFrac() < prev {
			t.Fatal("heat fraction fell under sustained overload")
		}
		prev = b.HeatFrac()
	}
	if prev <= 0 || prev > 1 {
		t.Fatalf("heat fraction %g out of (0,1]", prev)
	}
}

func TestBreakerNilSafe(t *testing.T) {
	var b *Breaker
	if b.Step(1, 1000) || b.Tripped() || b.Trips() != 0 || b.HeatFrac() != 0 {
		t.Fatal("nil breaker misbehaved")
	}
	b.Reset() // must not panic
}
