package detect

import (
	"math"
	"testing"

	"antidope/internal/rng"
)

// series builds (ts, ws) with base power plus a step of height at stepT.
func series(n int, base, height, stepT float64, noise float64, seed uint64) (ts, ws []float64) {
	r := rng.New(seed)
	for i := 0; i < n; i++ {
		t := float64(i)
		w := base + noise*r.NormFloat64()
		if t >= stepT {
			w += height
		}
		ts = append(ts, t)
		ws = append(ws, w)
	}
	return
}

func TestThresholdDetectsSustainedExcess(t *testing.T) {
	d := NewThreshold(300, 5)
	ts, ws := series(100, 250, 100, 40, 0, 1)
	at, ok := FirstAlarm(d, ts, ws)
	if !ok {
		t.Fatal("sustained excess never alarmed")
	}
	if math.Abs(at-45) > 1.5 {
		t.Fatalf("alarm at %g, want ~45 (step at 40 + linger 5)", at)
	}
}

func TestThresholdIgnoresBlips(t *testing.T) {
	d := NewThreshold(300, 5)
	// One-sample spikes never linger long enough.
	for i := 0; i < 200; i++ {
		w := 250.0
		if i%10 == 0 {
			w = 400
		}
		if d.Observe(float64(i), w) {
			t.Fatalf("alarmed on a blip at %d", i)
		}
	}
}

func TestThresholdMissesUnderLimit(t *testing.T) {
	d := NewThreshold(340, 5)
	ts, ws := series(600, 250, 80, 100, 0, 1) // lands at 330 < 340
	if _, ok := FirstAlarm(d, ts, ws); ok {
		t.Fatal("threshold alarmed under its limit — the DOPE blind spot should exist")
	}
}

func TestThresholdPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad threshold accepted")
		}
	}()
	NewThreshold(0, 1)
}

func TestEWMADetectsStep(t *testing.T) {
	d := NewEWMA()
	ts, ws := series(300, 250, 60, 120, 3, 2)
	at, ok := FirstAlarm(d, ts, ws)
	if !ok {
		t.Fatal("EWMA never alarmed on a 20-sigma step")
	}
	if at < 120 || at > 130 {
		t.Fatalf("alarm at %g, want shortly after the step at 120", at)
	}
}

func TestEWMAQuietOnStationaryNoise(t *testing.T) {
	d := NewEWMA()
	ts, ws := series(2000, 250, 0, 1e9, 5, 3)
	if at, ok := FirstAlarm(d, ts, ws); ok {
		t.Fatalf("false alarm at %g on stationary noise", at)
	}
}

func TestEWMAWarmupSuppresses(t *testing.T) {
	d := NewEWMA()
	// A step inside the warmup window must not alarm during warmup.
	for i := 0; i < d.WarmSamples; i++ {
		w := 200.0
		if i > 5 {
			w = 400
		}
		if d.Observe(float64(i), w) {
			t.Fatalf("alarm during warmup at sample %d", i)
		}
	}
}

func TestEWMAAdaptsToSlowDrift(t *testing.T) {
	// The known weakness: a drift much slower than the adaptation rate
	// never alarms. This is a feature of the test (documents the gap), not
	// a bug of the detector.
	d := NewEWMA()
	alarmed := false
	for i := 0; i < 3000; i++ {
		w := 250 + float64(i)*0.02 // +0.02 W per slot: 60 W over 3000 slots
		if d.Observe(float64(i), w) {
			alarmed = true
			break
		}
	}
	if alarmed {
		t.Fatal("EWMA caught a drift 100x slower than its window — unexpected")
	}
}

func TestCUSUMDetectsSmallPersistentShift(t *testing.T) {
	// +15 W persistent shift, 5 W slack, decision 100 watt-samples:
	// alarm ~10 samples after the step.
	d := NewCUSUM(250, 5, 100)
	ts, ws := series(200, 250, 15, 100, 0, 4)
	at, ok := FirstAlarm(d, ts, ws)
	if !ok {
		t.Fatal("CUSUM missed a persistent shift")
	}
	if at < 105 || at > 115 {
		t.Fatalf("alarm at %g, want ~110", at)
	}
}

func TestCUSUMQuietUnderReference(t *testing.T) {
	d := NewCUSUM(250, 5, 100)
	ts, ws := series(1000, 248, 0, 1e9, 2, 5)
	if at, ok := FirstAlarm(d, ts, ws); ok {
		t.Fatalf("CUSUM false alarm at %g", at)
	}
}

func TestCUSUMResetClearsSum(t *testing.T) {
	d := NewCUSUM(100, 0, 50)
	for i := 0; i < 4; i++ {
		d.Observe(float64(i), 110)
	}
	d.Reset()
	if d.Observe(5, 110) {
		t.Fatal("alarm right after reset")
	}
}

func TestCUSUMPanicsOnBadDecision(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad CUSUM accepted")
		}
	}()
	NewCUSUM(1, 1, 0)
}

func TestCUSUMBeatsThresholdOnSubLimitShift(t *testing.T) {
	// The DOPE sweet spot: a shift that stays under the static limit but
	// accumulates. CUSUM must catch it; the threshold must not.
	ts, ws := series(600, 250, 60, 100, 2, 6) // lands at 310
	th := NewThreshold(340, 5)
	if _, ok := FirstAlarm(th, ts, ws); ok {
		t.Fatal("threshold should be blind here")
	}
	cs := NewCUSUM(255, 10, 300)
	if _, ok := FirstAlarm(cs, ts, ws); !ok {
		t.Fatal("CUSUM should catch the sub-limit shift")
	}
}

func TestFirstAlarmMismatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched series accepted")
		}
	}()
	FirstAlarm(NewEWMA(), []float64{1}, nil)
}

func TestDetectorNames(t *testing.T) {
	if NewThreshold(1, 0).Name() != "threshold" ||
		NewEWMA().Name() != "ewma" ||
		NewCUSUM(1, 0, 1).Name() != "cusum" {
		t.Fatal("detector names")
	}
}

func BenchmarkEWMA(b *testing.B) {
	d := NewEWMA()
	for i := 0; i < b.N; i++ {
		d.Observe(float64(i), 250+float64(i%7))
	}
}
