package detect_test

import (
	"fmt"

	"antidope/internal/detect"
)

// Example replays a budget-level power shift through two detectors: the
// static threshold is blind to it, CUSUM accumulates the drift.
func Example() {
	var ts, ws []float64
	for i := 0; i < 120; i++ {
		w := 250.0
		if i >= 60 {
			w = 280 // +30 W persistent shift, still under a 340 W line
		}
		ts = append(ts, float64(i))
		ws = append(ws, w)
	}
	if _, ok := detect.FirstAlarm(detect.NewThreshold(340, 5), ts, ws); !ok {
		fmt.Println("threshold: never alarms")
	}
	if at, ok := detect.FirstAlarm(detect.NewCUSUM(250, 10, 300), ts, ws); ok {
		fmt.Printf("cusum: alarms %v s after the shift\n", at-60)
	}
	// Output:
	// threshold: never alarms
	// cusum: alarms 14 s after the shift
}
