// Package detect implements power-telemetry anomaly detectors. The paper's
// core observation (Section 3.2, Figure 11) is that DOPE is invisible to
// traffic-side monitoring — but it is, by construction, visible on the
// power side. This package provides the standard online detectors a power
// monitor would run (static threshold, EWMA residual, CUSUM drift) so the
// repository can quantify the detection latency of each against the attack
// families, and so operators can pair Anti-DOPE's mitigation with alerting.
//
// All detectors consume one sample per control slot and report the first
// slot at which they alarm. They are deliberately one-pass and O(1) per
// sample: the power monitor runs at line rate.
package detect

import (
	"fmt"
	"math"
)

// Detector consumes a power sample per tick and reports alarms.
type Detector interface {
	// Name identifies the detector in result tables.
	Name() string
	// Observe folds one sample (watts) and returns true when alarming.
	Observe(t, watts float64) bool
	// Reset clears internal state for reuse.
	Reset()
}

// Threshold alarms when power exceeds a fixed line for LingerSec.
// It is the power-side analog of the firewall's rate rule: simple,
// predictable, and blind to slow drifts under the line.
type Threshold struct {
	LimitW    float64
	LingerSec float64

	overSince float64
	armed     bool
}

// NewThreshold builds the detector; linger smooths transient spikes.
func NewThreshold(limitW, lingerSec float64) *Threshold {
	if limitW <= 0 || lingerSec < 0 {
		panic(fmt.Sprintf("detect: threshold %g/%g", limitW, lingerSec))
	}
	return &Threshold{LimitW: limitW, LingerSec: lingerSec}
}

// Name implements Detector.
func (d *Threshold) Name() string { return "threshold" }

// Observe implements Detector.
func (d *Threshold) Observe(t, watts float64) bool {
	if watts <= d.LimitW {
		d.armed = false
		return false
	}
	if !d.armed {
		d.armed = true
		d.overSince = t
	}
	return t-d.overSince >= d.LingerSec
}

// Reset implements Detector.
func (d *Threshold) Reset() { d.armed = false }

// EWMA alarms when the sample deviates from an exponentially weighted
// moving baseline by more than K adaptive standard deviations. It adapts to
// diurnal drift but a slow-enough attacker can ride the adaptation.
type EWMA struct {
	// Alpha is the baseline update weight per sample.
	Alpha float64
	// K is the alarm width in standard deviations.
	K float64
	// WarmSamples before any alarm can fire.
	WarmSamples int

	mean, variance float64
	n              int
}

// NewEWMA builds the detector with the monitor's defaults.
func NewEWMA() *EWMA { return &EWMA{Alpha: 0.05, K: 4, WarmSamples: 30} }

// Name implements Detector.
func (d *EWMA) Name() string { return "ewma" }

// Observe implements Detector.
func (d *EWMA) Observe(t, watts float64) bool {
	d.n++
	if d.n == 1 {
		d.mean = watts
		d.variance = 1
		return false
	}
	dev := watts - d.mean
	alarm := false
	if d.n > d.WarmSamples {
		sd := math.Sqrt(d.variance)
		if sd < 1 {
			sd = 1 // floor: a flat baseline should not alarm on 1 W of noise
		}
		alarm = math.Abs(dev) > d.K*sd
	}
	// Adapt after the test so a step change is caught before the baseline
	// absorbs it. Alarmed samples still adapt (a real monitor would keep
	// tracking, and an attacker exploiting that is exactly the slow-drift
	// weakness the experiment quantifies).
	d.mean += d.Alpha * dev
	d.variance = (1-d.Alpha)*d.variance + d.Alpha*dev*dev
	return alarm
}

// Reset implements Detector.
func (d *EWMA) Reset() { d.mean, d.variance, d.n = 0, 0, 0 }

// CUSUM accumulates positive drift above a reference level and alarms when
// the cumulative sum crosses a decision threshold — the standard choice for
// detecting small persistent shifts, which is precisely DOPE's signature.
type CUSUM struct {
	// RefW is the in-control power level; Slack the per-sample allowance;
	// DecisionJ the cumulative excess (watt-samples) that alarms.
	RefW      float64
	SlackW    float64
	DecisionJ float64

	sum float64
}

// NewCUSUM builds the detector around an expected operating level.
func NewCUSUM(refW, slackW, decisionJ float64) *CUSUM {
	if decisionJ <= 0 {
		panic("detect: non-positive CUSUM decision threshold")
	}
	return &CUSUM{RefW: refW, SlackW: slackW, DecisionJ: decisionJ}
}

// Name implements Detector.
func (d *CUSUM) Name() string { return "cusum" }

// Observe implements Detector.
func (d *CUSUM) Observe(t, watts float64) bool {
	d.sum += watts - d.RefW - d.SlackW
	if d.sum < 0 {
		d.sum = 0
	}
	return d.sum >= d.DecisionJ
}

// Reset implements Detector.
func (d *CUSUM) Reset() { d.sum = 0 }

// FirstAlarm replays a power series (t, watts pairs) through the detector
// and returns the first alarm time, or ok=false if it never fires.
func FirstAlarm(d Detector, ts, ws []float64) (float64, bool) {
	if len(ts) != len(ws) {
		panic("detect: mismatched series")
	}
	d.Reset()
	for i := range ts {
		if d.Observe(ts[i], ws[i]) {
			return ts[i], true
		}
	}
	return 0, false
}
