package queueing

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMG1PSBasics(t *testing.T) {
	q := MG1PS{Lambda: 5, MeanService: 0.1} // rho = 0.5
	if !almost(q.Rho(), 0.5, 1e-12) || !q.Stable() {
		t.Fatalf("rho %g", q.Rho())
	}
	if got := q.MeanSojourn(); !almost(got, 0.2, 1e-12) {
		t.Fatalf("sojourn %g, want 0.2", got)
	}
	if got := q.MeanInSystem(); !almost(got, 1, 1e-12) {
		t.Fatalf("E[N] %g, want 1", got)
	}
	// Little's law self-consistency: E[N] = lambda E[T].
	if !almost(q.MeanInSystem(), q.Lambda*q.MeanSojourn(), 1e-12) {
		t.Fatal("Little's law violated")
	}
}

func TestMG1PSConditional(t *testing.T) {
	q := MG1PS{Lambda: 8, MeanService: 0.1} // rho 0.8
	if got := q.ConditionalSojourn(0.05); !almost(got, 0.25, 1e-12) {
		t.Fatalf("conditional sojourn %g", got)
	}
}

func TestMG1PSUnstable(t *testing.T) {
	q := MG1PS{Lambda: 20, MeanService: 0.1}
	if q.Stable() {
		t.Fatal("rho=2 stable")
	}
	if !math.IsInf(q.MeanSojourn(), 1) || !math.IsInf(q.MeanInSystem(), 1) ||
		!math.IsInf(q.ConditionalSojourn(1), 1) {
		t.Fatal("unstable station has finite metrics")
	}
}

func TestErlangCKnownValues(t *testing.T) {
	// Classical tabulated case: c=5, offered load a=3 (rho=0.6):
	// Erlang-C = 0.23615 (standard tables).
	q := MMc{Lambda: 3, Mu: 1, C: 5}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := q.ErlangC(); !almost(got, 0.23615, 2e-4) {
		t.Fatalf("ErlangC %g, want ~0.23615", got)
	}
	// c=1 reduces to rho.
	single := MMc{Lambda: 0.7, Mu: 1, C: 1}
	if got := single.ErlangC(); !almost(got, 0.7, 1e-12) {
		t.Fatalf("c=1 ErlangC %g, want rho", got)
	}
}

func TestMMcWaitAndSojourn(t *testing.T) {
	// M/M/1 sanity: W = rho/(mu-lambda), T = 1/(mu-lambda).
	q := MMc{Lambda: 0.5, Mu: 1, C: 1}
	if got := q.MeanWait(); !almost(got, 1, 1e-9) {
		t.Fatalf("M/M/1 wait %g, want 1", got)
	}
	if got := q.MeanSojourn(); !almost(got, 2, 1e-9) {
		t.Fatalf("M/M/1 sojourn %g, want 2", got)
	}
}

func TestMMcUnstable(t *testing.T) {
	q := MMc{Lambda: 10, Mu: 1, C: 2}
	if q.Stable() {
		t.Fatal("overloaded station stable")
	}
	if q.ErlangC() != 1 || !math.IsInf(q.MeanWait(), 1) {
		t.Fatal("unstable metrics")
	}
}

func TestMMcValidate(t *testing.T) {
	bad := []MMc{{Lambda: -1, Mu: 1, C: 1}, {Lambda: 1, Mu: 0, C: 1}, {Lambda: 1, Mu: 1, C: 0}}
	for _, q := range bad {
		if q.Validate() == nil {
			t.Fatalf("bad %+v validated", q)
		}
	}
}

func TestMDCapacityInvertsSojourn(t *testing.T) {
	meanS := 0.02
	target := 0.05
	lambda := MDCapacity(meanS, target)
	q := MG1PS{Lambda: lambda, MeanService: meanS}
	if got := q.MeanSojourn(); !almost(got, target, 1e-9) {
		t.Fatalf("capacity inversion broke: sojourn %g, want %g", got, target)
	}
	if MDCapacity(0.1, 0.05) != 0 {
		t.Fatal("impossible target should yield zero capacity")
	}
	if MDCapacity(0, 1) != 0 {
		t.Fatal("degenerate service")
	}
}

func TestPSMulticoreApproxLimits(t *testing.T) {
	// c=1 must agree with exact M/G/1-PS.
	exact := MG1PS{Lambda: 7, MeanService: 0.1}.MeanSojourn()
	approx := PSMulticoreApprox(7, 0.1, 1)
	if !almost(exact, approx, 1e-9) {
		t.Fatalf("c=1 approx %g, exact %g", approx, exact)
	}
	// Light load: sojourn ~ service time.
	light := PSMulticoreApprox(0.1, 0.1, 8)
	if !almost(light, 0.1, 0.001) {
		t.Fatalf("light-load sojourn %g", light)
	}
	// Overload: infinite.
	if !math.IsInf(PSMulticoreApprox(1000, 0.1, 4), 1) {
		t.Fatal("overloaded approx finite")
	}
}

// Property: Erlang-C is within [0,1] and increasing in load for fixed c.
func TestQuickErlangCMonotone(t *testing.T) {
	f := func(cRaw uint8, steps uint8) bool {
		c := int(cRaw%16) + 1
		prev := -1.0
		n := int(steps%20) + 2
		for i := 1; i < n; i++ {
			rho := float64(i) / float64(n)
			q := MMc{Lambda: rho * float64(c), Mu: 1, C: c}
			ec := q.ErlangC()
			if ec < 0 || ec > 1 || ec < prev {
				return false
			}
			prev = ec
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: PS sojourn is increasing in lambda and diverges at saturation.
func TestQuickPSSojournMonotone(t *testing.T) {
	f := func(sRaw uint8) bool {
		meanS := float64(sRaw%50)/1000 + 0.001
		prev := 0.0
		for i := 1; i <= 9; i++ {
			lambda := float64(i) / 10 / meanS
			got := MG1PS{Lambda: lambda, MeanService: meanS}.MeanSojourn()
			if got <= prev {
				return false
			}
			prev = got
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkErlangC(b *testing.B) {
	q := MMc{Lambda: 30, Mu: 1, C: 48}
	for i := 0; i < b.N; i++ {
		_ = q.ErlangC()
	}
}
