package queueing_test

import (
	"fmt"

	"antidope/internal/queueing"
)

// Example shows the closed-form results the simulator is validated against.
func Example() {
	// A processor-sharing server with 20 ms requests at 70% load:
	ps := queueing.MG1PS{Lambda: 35, MeanService: 0.020}
	fmt.Printf("M/G/1-PS at rho=%.2f: mean sojourn %.1f ms\n",
		ps.Rho(), 1e3*ps.MeanSojourn())

	// The same load on a 4-core station:
	fmt.Printf("M/G/4-PS approx: %.1f ms\n",
		1e3*queueing.PSMulticoreApprox(0.7*4/0.020, 0.020, 4))

	// Capacity planning: how many req/s keep the mean under 50 ms?
	fmt.Printf("capacity at 50 ms target: %.0f req/s\n",
		queueing.MDCapacity(0.020, 0.050))
	// Output:
	// M/G/1-PS at rho=0.70: mean sojourn 66.7 ms
	// M/G/4-PS approx: 27.1 ms
	// capacity at 50 ms target: 30 req/s
}
