// Package queueing provides closed-form queueing-theory results used to
// validate the discrete-event simulator: a processor-sharing server fed by
// Poisson arrivals has exactly known sojourn times (M/G/1-PS), and a FIFO
// multi-server station has the Erlang-C delay formula (M/M/c). The
// validation tests in internal/server and internal/core compare simulated
// latencies against these formulas — if the simulator drifts from theory on
// the cases theory can solve, nothing it says about the cases theory cannot
// solve is trustworthy.
package queueing

import (
	"fmt"
	"math"
)

// MG1PS describes an M/G/1 processor-sharing station: Poisson arrivals at
// rate Lambda, general service demand with mean MeanService (PS sojourn is
// insensitive to the service distribution beyond its mean).
type MG1PS struct {
	Lambda      float64 // arrivals per second
	MeanService float64 // seconds of demand at full speed
}

// Rho returns the offered load.
func (q MG1PS) Rho() float64 { return q.Lambda * q.MeanService }

// Stable reports whether the station has a steady state.
func (q MG1PS) Stable() bool { return q.Rho() < 1 }

// MeanSojourn returns the mean time in system: E[T] = E[S]/(1-rho).
// It returns +Inf for an unstable station.
func (q MG1PS) MeanSojourn() float64 {
	if !q.Stable() {
		return math.Inf(1)
	}
	return q.MeanService / (1 - q.Rho())
}

// MeanInSystem returns E[N] = rho/(1-rho) by Little's law.
func (q MG1PS) MeanInSystem() float64 {
	if !q.Stable() {
		return math.Inf(1)
	}
	rho := q.Rho()
	return rho / (1 - rho)
}

// ConditionalSojourn returns the expected sojourn of a request with demand
// x: E[T|S=x] = x/(1-rho) — PS's proportional-fairness property.
func (q MG1PS) ConditionalSojourn(x float64) float64 {
	if !q.Stable() {
		return math.Inf(1)
	}
	return x / (1 - q.Rho())
}

// MMc describes an M/M/c FIFO station: Poisson arrivals at Lambda, c
// servers each with exponential service at rate Mu.
type MMc struct {
	Lambda float64
	Mu     float64
	C      int
}

// Validate reports whether the parameters are usable.
func (q MMc) Validate() error {
	if q.Lambda < 0 || q.Mu <= 0 || q.C <= 0 {
		return fmt.Errorf("queueing: bad M/M/c parameters %+v", q)
	}
	return nil
}

// Rho returns per-server utilization lambda/(c mu).
func (q MMc) Rho() float64 { return q.Lambda / (float64(q.C) * q.Mu) }

// Stable reports whether the station has a steady state.
func (q MMc) Stable() bool { return q.Rho() < 1 }

// ErlangC returns the probability an arrival has to wait (all servers
// busy), computed with the numerically stable iterative form.
func (q MMc) ErlangC() float64 {
	if !q.Stable() {
		return 1
	}
	a := q.Lambda / q.Mu // offered load in Erlangs
	// Iterative Erlang-B, then convert to Erlang-C.
	b := 1.0
	for k := 1; k <= q.C; k++ {
		b = a * b / (float64(k) + a*b)
	}
	rho := q.Rho()
	return b / (1 - rho*(1-b))
}

// MeanWait returns the mean queueing delay (excluding service).
func (q MMc) MeanWait() float64 {
	if !q.Stable() {
		return math.Inf(1)
	}
	return q.ErlangC() / (float64(q.C)*q.Mu - q.Lambda)
}

// MeanSojourn returns the mean time in system.
func (q MMc) MeanSojourn() float64 { return q.MeanWait() + 1/q.Mu }

// MDCapacity returns the maximum arrival rate an M/G/1-PS station can carry
// while keeping the mean sojourn at or below target. Inverting
// E[T] = E[S]/(1-rho): lambda_max = (1 - E[S]/T) / E[S].
func MDCapacity(meanService, targetSojourn float64) float64 {
	if meanService <= 0 || targetSojourn <= meanService {
		return 0
	}
	return (1 - meanService/targetSojourn) / meanService
}

// PSMulticoreApprox approximates the mean sojourn of an M/G/c-PS station
// where each request can use at most one core. For exponential demand the
// number-in-system process of an M/M/c station is a birth-death chain whose
// rates depend only on the occupancy, so FIFO and PS share the same E[N]
// and, by Little's law, the same mean sojourn — the Erlang-C formula. For
// general demand this is an approximation (multicore PS loses the exact
// insensitivity of the single-core case); it is exact at c=1 for any
// demand distribution.
func PSMulticoreApprox(lambda, meanService float64, cores int) float64 {
	if cores <= 0 || meanService <= 0 {
		return math.Inf(1)
	}
	q := MMc{Lambda: lambda, Mu: 1 / meanService, C: cores}
	if !q.Stable() {
		return math.Inf(1)
	}
	return q.MeanSojourn()
}
