package defense

import (
	"fmt"
	"strings"

	"antidope/internal/power"
)

// ByName constructs a scheme from its Table 2 name (case-insensitive;
// "anti-dope"/"antidope" both resolve). The experiment CLIs use this.
func ByName(name string, ladder power.Ladder) (Scheme, error) {
	switch strings.ToLower(strings.ReplaceAll(name, "-", "")) {
	case "none":
		return NewNone(), nil
	case "capping":
		return NewCapping(ladder), nil
	case "shaving":
		return NewShaving(ladder), nil
	case "token":
		return NewToken(), nil
	case "antidope":
		return NewAntiDope(ladder), nil
	case "oracle":
		return NewOracle(ladder), nil
	case "hybrid":
		return NewHybrid(ladder), nil
	default:
		return nil, fmt.Errorf("defense: unknown scheme %q (want none, capping, shaving, token, anti-dope, oracle, hybrid)", name)
	}
}

// Evaluated returns fresh instances of the four Table 2 schemes, in the
// order the paper's figures present them.
func Evaluated(ladder power.Ladder) []Scheme {
	return []Scheme{
		NewCapping(ladder),
		NewShaving(ladder),
		NewToken(),
		NewAntiDope(ladder),
	}
}
