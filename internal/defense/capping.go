package defense

import (
	"antidope/internal/power"
	"antidope/internal/workload"
)

// Capping is the conventional baseline: DVFS caps power peaks, applied
// blindly across the whole cluster with no knowledge of who caused the
// peak. No battery participation, no traffic decisions.
type Capping struct {
	gov power.Governor
}

// NewCapping builds the baseline over the given ladder.
func NewCapping(ladder power.Ladder) *Capping {
	return &Capping{gov: power.DefaultGovernor(ladder)}
}

// Name implements Scheme.
func (c *Capping) Name() string { return "Capping" }

// Setup implements Scheme; plain capping needs no preparation.
func (c *Capping) Setup(env *Env) {}

// Admit implements Scheme; capping never refuses traffic.
func (c *Capping) Admit(now float64, req *workload.Request) bool { return true }

// ControlSlot implements Scheme: throttle while over budget, release with
// hysteresis when comfortably under.
func (c *Capping) ControlSlot(now float64, env *Env) SlotReport {
	cl := env.Cluster
	if over := env.Overshoot(); over > 0 {
		c.gov.ThrottleOrdered(over, serversByPowerDesc(cl.Servers), predict)
		return SlotReport{}
	}
	if head := env.Headroom(); head > c.gov.UpHysteresis*cl.BudgetW {
		c.gov.Release(head-c.gov.UpHysteresis*cl.BudgetW, serversByFreqAsc(cl.Servers), predict)
	}
	return SlotReport{}
}

// CloneScheme implements Cloner; the governor is a plain value.
func (c *Capping) CloneScheme() Scheme {
	cp := *c
	return &cp
}

var _ Scheme = (*Capping)(nil)
var _ Cloner = (*Capping)(nil)
