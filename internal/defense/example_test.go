package defense_test

import (
	"fmt"

	"antidope/internal/defense"
	"antidope/internal/power"
)

// ExampleByName shows scheme construction from Table 2 names.
func ExampleByName() {
	ladder := power.DefaultLadder()
	for _, name := range []string{"capping", "shaving", "token", "anti-dope", "oracle", "hybrid"} {
		s, err := defense.ByName(name, ladder)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Println(s.Name())
	}
	// Output:
	// Capping
	// Shaving
	// Token
	// Anti-DOPE
	// Oracle
	// Hybrid
}
