package defense

import (
	"antidope/internal/power"
	"antidope/internal/workload"
)

// Oracle is the perfect-knowledge upper bound: it reads the ground-truth
// origin tag — which no deployable system has — and drops exactly the
// attack traffic at the balancer, falling back to plain capping for any
// residual (legitimate) peak. It bounds what any detection-based defense
// could possibly achieve, which is what makes Anti-DOPE's
// detection-free numbers meaningful in the ablation table.
type Oracle struct {
	gov     power.Governor
	dropped uint64
}

// NewOracle builds the upper-bound scheme.
func NewOracle(ladder power.Ladder) *Oracle {
	return &Oracle{gov: power.DefaultGovernor(ladder)}
}

// Name implements Scheme.
func (o *Oracle) Name() string { return "Oracle" }

// Setup implements Scheme.
func (o *Oracle) Setup(env *Env) {}

// Admit implements Scheme: perfect discrimination.
func (o *Oracle) Admit(now float64, req *workload.Request) bool {
	if req.Origin == workload.Attack {
		req.Dropped = true
		req.DropReason = "oracle"
		o.dropped++
		return false
	}
	return true
}

// ControlSlot implements Scheme: residual legitimate peaks still get capped.
func (o *Oracle) ControlSlot(now float64, env *Env) SlotReport {
	cl := env.Cluster
	if over := env.Overshoot(); over > 0 {
		o.gov.ThrottleOrdered(over, serversByPowerDesc(cl.Servers), predict)
		return SlotReport{}
	}
	if head := env.Headroom(); head > o.gov.UpHysteresis*cl.BudgetW {
		o.gov.Release(head-o.gov.UpHysteresis*cl.BudgetW, serversByFreqAsc(cl.Servers), predict)
	}
	return SlotReport{}
}

// Dropped returns how many attack requests the oracle rejected.
func (o *Oracle) Dropped() uint64 { return o.dropped }

// CloneScheme implements Cloner; governor and drop counter are plain values.
func (o *Oracle) CloneScheme() Scheme {
	cp := *o
	return &cp
}

var _ Scheme = (*Oracle)(nil)
var _ Cloner = (*Oracle)(nil)
