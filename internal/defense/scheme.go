// Package defense implements the four power-management schemes the paper
// evaluates (Table 2):
//
//	Capping   — DVFS-only peak capping, the conventional baseline;
//	Shaving   — UPS-based peak shaving that throttles only when the
//	            battery runs dry (the state-of-the-art baseline);
//	Token     — a power-based token bucket at the NLB that drops traffic
//	            to stay under budget;
//	Anti-DOPE — the paper's proposal: power-driven forwarding (PDF) at the
//	            NLB plus request-aware power management (RPM, Algorithm 1)
//	            on the server side.
//
// All schemes act through the same two hooks: a per-request admission
// decision at the balancer and a per-slot control decision over the
// cluster's frequency ladder and battery.
package defense

import (
	"sort"

	"antidope/internal/cluster"
	"antidope/internal/netlb"
	"antidope/internal/obs"
	"antidope/internal/power"
	"antidope/internal/server"
	"antidope/internal/workload"
)

// PowerReader is the telemetry plane the schemes read aggregate cluster
// power through. Under fault injection the delivered reading can be noisy,
// stale, or frozen at the last good value — the schemes must keep actuating
// on whatever it says (graceful degradation) rather than assuming a fresh
// measurement.
type PowerReader interface {
	// MeasuredPowerW returns the last delivered cluster power reading.
	MeasuredPowerW() float64
}

// Env is the view of the data center a scheme operates on.
type Env struct {
	Cluster  *cluster.Cluster
	Balancer *netlb.Balancer
	// SlotSec is the control period.
	SlotSec float64
	// Model is the (homogeneous) server power model, for planning.
	Model power.Model
	// Telemetry, when non-nil, mediates every aggregate power reading the
	// schemes take; nil means perfect instantaneous telemetry (read the
	// cluster directly).
	Telemetry PowerReader
	// Obs, when non-nil, receives the schemes' actuation events (battery
	// bridges, collateral throttling, token decisions). Schemes must guard
	// every emission with a nil check — nil is the unobserved fast path.
	Obs obs.Observer
}

// MeasuredPowerW returns the cluster draw as the telemetry plane reports
// it; with no sensor installed it is the true instantaneous draw.
func (e *Env) MeasuredPowerW() float64 {
	if e.Telemetry == nil {
		return e.Cluster.PowerNow()
	}
	return e.Telemetry.MeasuredPowerW()
}

// Overshoot returns how far the measured draw exceeds the budget (0 if
// under) — cluster.Overshoot as seen through the telemetry plane.
func (e *Env) Overshoot() float64 {
	over := e.MeasuredPowerW() - e.Cluster.BudgetW
	if over < 0 {
		return 0
	}
	return over
}

// Headroom returns the spare budget under the measured draw (0 if over).
func (e *Env) Headroom() float64 {
	head := e.Cluster.BudgetW - e.MeasuredPowerW()
	if head < 0 {
		return 0
	}
	return head
}

// SlotReport tells the simulation how the scheme used the energy storage
// during the slot it just planned.
type SlotReport struct {
	// BatteryW is the average power drawn from the UPS over the slot.
	BatteryW float64
	// ChargeW is the average utility power spent recharging over the slot.
	ChargeW float64
}

// Scheme is one peak-power-management policy.
type Scheme interface {
	// Name returns the Table 2 name.
	Name() string
	// Setup runs once before the simulation starts (install suspect lists,
	// partition servers, size token buckets).
	Setup(env *Env)
	// Admit decides at the balancer whether the request enters the system.
	// Refusals must mark the request dropped.
	Admit(now float64, req *workload.Request) bool
	// ControlSlot runs at every control tick, after all servers have been
	// advanced to now. It may retune frequencies and use the battery.
	ControlSlot(now float64, env *Env) SlotReport
}

// Cloner is implemented by schemes that can deep-copy their mutable state
// for snapshot forking: CloneScheme must return an independent Scheme whose
// behaviour from here on is identical to the original's. Clones must NOT
// re-run Setup — Setup's side effects (server partition, queue trims,
// bucket sizing) already live in the cloned cluster and scheme state. All
// schemes in this package implement it; core.Snapshot requires it.
type Cloner interface {
	CloneScheme() Scheme
}

// serversByPowerDesc returns the servers ordered by instantaneous draw,
// hungriest first — the victim order shared by the throttling schemes.
func serversByPowerDesc(ss []*server.Server) []power.Capper {
	ordered := append([]*server.Server(nil), ss...)
	sort.SliceStable(ordered, func(i, j int) bool {
		return ordered[i].PowerNow() > ordered[j].PowerNow()
	})
	out := make([]power.Capper, len(ordered))
	for i, s := range ordered {
		out[i] = s
	}
	return out
}

// serversByFreqAsc returns servers ordered by frequency, slowest first —
// the release order (restore the most-throttled first).
func serversByFreqAsc(ss []*server.Server) []power.Capper {
	ordered := append([]*server.Server(nil), ss...)
	sort.SliceStable(ordered, func(i, j int) bool {
		return ordered[i].Freq() < ordered[j].Freq()
	})
	out := make([]power.Capper, len(ordered))
	for i, s := range ordered {
		out[i] = s
	}
	return out
}

// predict is the planning callback shared by all schemes: a server's draw
// if capped to f with its current mix.
func predict(c power.Capper, f power.GHz) power.Watts {
	return c.(*server.Server).PowerAt(f)
}
