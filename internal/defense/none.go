package defense

import "antidope/internal/workload"

// None is the null scheme: no capping, no battery, no traffic control. The
// vulnerability-characterization experiments of Section 3 use it to observe
// raw power under attack (Figures 3-5), and it is the reference point for
// "what would happen with no defense at all".
type None struct{}

// NewNone returns the null scheme.
func NewNone() *None { return &None{} }

// Name implements Scheme.
func (*None) Name() string { return "None" }

// Setup implements Scheme.
func (*None) Setup(env *Env) {}

// Admit implements Scheme.
func (*None) Admit(now float64, req *workload.Request) bool { return true }

// ControlSlot implements Scheme.
func (*None) ControlSlot(now float64, env *Env) SlotReport { return SlotReport{} }

// CloneScheme implements Cloner; the null scheme has no state.
func (*None) CloneScheme() Scheme { return &None{} }

var _ Scheme = (*None)(nil)
var _ Cloner = (*None)(nil)
