package defense

import (
	"antidope/internal/netlb"
	"antidope/internal/obs"
	"antidope/internal/power"
	"antidope/internal/workload"
)

// AntiDope is the paper's proposal (Section 5): a two-step, request-aware
// power-management framework.
//
// Step 1 — PDF (power-driven forwarding): an offline power profile of the
// service endpoints builds a suspect list; the balancer pins suspect-listed
// URLs onto a dedicated pool of suspect servers, so a DOPE flood
// concentrates where it can be throttled without collateral damage.
//
// Step 2 — RPM (request-aware power management, Algorithm 1): at every
// control slot, if demand exceeds supply, the battery discharges as a
// transition medium while the V/F settings reconfigure (DVFS actuation is
// not instant — the paper's "booting delay of DVFS"); throttling is
// differentiated — suspect servers are cut first and deepest, innocent
// servers only as a last resort; recovery restores innocent servers first
// and recharges the battery with leftover headroom. RPM also regulates the
// queue length of suspect nodes so throttled requests cannot build
// unbounded backlogs ("regulates the length of throttled requests").
type AntiDope struct {
	gov power.Governor

	// SuspectFrac is the offline-profiling cutoff: endpoints whose
	// per-request power score is at least this fraction of the maximum go
	// on the suspect list.
	SuspectFrac float64
	// SuspectPoolFrac is the share of servers dedicated to suspect traffic.
	SuspectPoolFrac float64
	// SuspectQueueFactor bounds a suspect server's inflight requests to
	// this multiple of its cores; the queue cap is what keeps collateral
	// (legitimate heavy requests on suspect nodes) from queuing for
	// seconds behind the flood.
	SuspectQueueFactor int
	// ActuationDelaySlots models the booting delay of DVFS: how many
	// control slots a new V/F configuration takes to land. The battery
	// bridges the overshoot meanwhile.
	ActuationDelaySlots int

	// DisablePDF ablates step 1: no suspect list, no server partition —
	// RPM degenerates to battery-bridged cluster-wide capping.
	DisablePDF bool
	// DisableBattery ablates the transition bridge: V/F reconfiguration is
	// applied immediately and the UPS is never touched.
	DisableBattery bool
	// SourceAware additionally installs the online per-source power
	// profiler: sources whose decayed power-demand rate is abusive are
	// forwarded to the suspect pool even when every URL they request is
	// below the offline listing cutoff. This is the paper's "change the
	// monitored statistical features" extension.
	SourceAware bool

	delayLeft       int
	collateralSlots uint64 // slots where innocent servers had to throttle
	bridgeSlots     uint64 // slots where the battery bridged a reconfigure
}

// NewAntiDope builds the framework with the evaluation's defaults: suspect
// list at 20% of the maximum power score (Colla-Filt, K-means and
// Word-Count — the classes the paper's attacker records), one quarter of
// servers in the suspect pool, 3-slot DVFS actuation delay.
func NewAntiDope(ladder power.Ladder) *AntiDope {
	g := power.DefaultGovernor(ladder)
	// RPM may move a suspect server across the whole ladder in one slot —
	// that is the point of having the battery bridge the transition.
	g.MaxStepsPerSlot = ladder.Levels() - 1
	return &AntiDope{
		gov:                 g,
		SuspectFrac:         0.2,
		SuspectPoolFrac:     0.25,
		SuspectQueueFactor:  3,
		ActuationDelaySlots: 3,
	}
}

// Name implements Scheme.
func (a *AntiDope) Name() string { return "Anti-DOPE" }

// Setup implements Scheme: run the offline profiling, install the suspect
// list, partition the servers, and trim suspect queue depth.
func (a *AntiDope) Setup(env *Env) {
	if a.DisablePDF {
		env.Cluster.MarkSuspects(0)
		env.Balancer.SetSuspectList(nil)
		a.delayLeft = a.ActuationDelaySlots
		return
	}
	pool := int(float64(len(env.Cluster.Servers))*a.SuspectPoolFrac + 0.5)
	if pool < 1 {
		pool = 1
	}
	if pool >= len(env.Cluster.Servers) {
		pool = len(env.Cluster.Servers) - 1
	}
	if pool < 1 {
		pool = 1 // single-server cluster: everything is the suspect pool
	}
	env.Cluster.MarkSuspects(pool)
	for _, s := range env.Cluster.Servers {
		if s.Suspect {
			if cap := a.SuspectQueueFactor * s.Cores; cap > 0 && cap < s.MaxInflight {
				s.MaxInflight = cap
			}
		}
	}
	env.Balancer.SetSuspectList(netlb.BuildSuspectList(a.SuspectFrac))
	if a.SourceAware {
		env.Balancer.SetProfiler(netlb.NewSourceProfiler())
	}
	a.delayLeft = a.ActuationDelaySlots
}

// Admit implements Scheme; Anti-DOPE does not drop traffic at the door —
// isolation plus differentiated throttling replaces rate limiting.
func (a *AntiDope) Admit(now float64, req *workload.Request) bool { return true }

// ControlSlot implements Scheme — Algorithm 1.
func (a *AntiDope) ControlSlot(now float64, env *Env) SlotReport {
	cl := env.Cluster
	dt := env.SlotSec
	suspects, innocents := cl.SuspectServers()

	if over := env.Overshoot(); over > 0 {
		// Lines 5-7: the battery bridges the gap while the new V/F settings
		// boot, so neither the utility feed nor innocent servers feel the
		// transient.
		var bridged float64
		if !a.DisableBattery {
			bridged = cl.UPS.Discharge(over, dt)
		}
		if bridged > 0 {
			a.bridgeSlots++
			if env.Obs != nil {
				env.Obs.Emit(obs.Event{
					T: now, Kind: obs.KindDefenseBridge, Server: -1,
					A: bridged, B: over,
				})
			}
		}
		if a.delayLeft > 0 && bridged >= over-1e-9 {
			// Reconfiguration still in flight and fully bridged: wait.
			a.delayLeft--
			return SlotReport{BatteryW: bridged}
		}

		// Lines 8-18: differentiated throttling — find the cut on suspect
		// nodes first.
		saved := a.gov.ThrottleOrdered(over, serversByPowerDesc(suspects), predict)
		if remaining := over - saved; remaining > 1e-9 {
			// Suspect pool alone cannot absorb the peak (e.g. a legitimate
			// flash crowd): spill onto innocent servers, counted as
			// collateral.
			a.collateralSlots++
			if env.Obs != nil {
				env.Obs.Emit(obs.Event{
					T: now, Kind: obs.KindDefenseCollateral, Server: -1,
					A: remaining, B: over,
				})
			}
			a.gov.ThrottleOrdered(remaining, serversByPowerDesc(innocents), predict)
		}
		return SlotReport{BatteryW: bridged}
	}

	// Under budget: re-arm the actuation bridge for the next emergency.
	a.delayLeft = a.ActuationDelaySlots

	head := env.Headroom()
	hyst := a.gov.UpHysteresis * cl.BudgetW
	var charge float64
	if head > hyst {
		spend := head - hyst
		// Innocent servers recover first; suspects only with what is left.
		added := a.gov.Release(spend, serversByFreqAsc(innocents), predict)
		if left := spend - added; left > 1e-9 {
			added += a.gov.Release(left, serversByFreqAsc(suspects), predict)
		}
		// Line 19 epilogue: recharge immediately once V/F settings hold the
		// budget (Section 6.4's "recharged again immediately").
		if left := spend - added; left > 1e-9 && !a.DisableBattery {
			charge = cl.UPS.Charge(left, dt)
		}
	}
	return SlotReport{ChargeW: charge}
}

// CollateralSlots returns how many control slots had to throttle innocent
// servers — the "collateral damage" Anti-DOPE minimizes.
func (a *AntiDope) CollateralSlots() uint64 { return a.collateralSlots }

// BridgeSlots returns how many slots the battery bridged a reconfiguration.
func (a *AntiDope) BridgeSlots() uint64 { return a.bridgeSlots }

// CloneScheme implements Cloner: every field is a plain value (the suspect
// partition and queue trims live in the cluster, which the fork clones
// separately). The clone must not re-run Setup.
func (a *AntiDope) CloneScheme() Scheme {
	cp := *a
	return &cp
}

var _ Scheme = (*AntiDope)(nil)
var _ Cloner = (*AntiDope)(nil)
