package defense

import (
	"testing"

	"antidope/internal/cluster"
	"antidope/internal/power"
	"antidope/internal/workload"
)

// fakeReader is a telemetry plane under test control.
type fakeReader struct{ w float64 }

func (f *fakeReader) MeasuredPowerW() float64 { return f.w }

// TestEnvReadsClusterWithoutTelemetry pins the compatibility contract: with
// no sensor installed the Env helpers must reproduce the cluster's own
// arithmetic bit-for-bit, so existing goldens cannot move.
func TestEnvReadsClusterWithoutTelemetry(t *testing.T) {
	env := testEnv(t, cluster.LowPB, workload.CollaFilt)
	//lint:allow floateq -- both sides must be the same float op on the same inputs
	if env.Overshoot() != env.Cluster.Overshoot() {
		t.Fatalf("Env.Overshoot %g != cluster.Overshoot %g", env.Overshoot(), env.Cluster.Overshoot())
	}
	//lint:allow floateq -- same contract for headroom
	if env.Headroom() != env.Cluster.Headroom() {
		t.Fatalf("Env.Headroom %g != cluster.Headroom %g", env.Headroom(), env.Cluster.Headroom())
	}
	//lint:allow floateq -- direct passthrough
	if env.MeasuredPowerW() != env.Cluster.PowerNow() {
		t.Fatal("MeasuredPowerW diverged from PowerNow without a sensor")
	}
}

// TestSchemesTrustStaleTelemetry is the blind-spot half of graceful
// degradation: a sensor frozen at an under-budget reading means the schemes
// see no emergency and must not throttle, even though the cluster is
// physically over budget. The defense is blind; the physics (breaker,
// thermal) stay real — that split is the whole point of the fault model.
func TestSchemesTrustStaleTelemetry(t *testing.T) {
	ladder := power.DefaultLadder()
	schemes := []Scheme{NewCapping(ladder), NewShaving(ladder), NewOracle(ladder)}
	for _, sch := range schemes {
		t.Run(sch.Name(), func(t *testing.T) {
			env := testEnv(t, cluster.LowPB, workload.CollaFilt)
			if env.Cluster.Overshoot() <= 0 {
				t.Fatal("test premise: cluster must physically overshoot")
			}
			// Frozen at a comfortable reading just under budget: no overshoot
			// and no headroom beyond hysteresis, so the slot is a no-op.
			env.Telemetry = &fakeReader{w: env.Cluster.BudgetW}
			sch.Setup(env)
			before := env.Cluster.MeanVFReduction()
			for slot := 1; slot <= 5; slot++ {
				sch.ControlSlot(float64(slot), env)
			}
			//lint:allow floateq -- unchanged means not touched at all
			if got := env.Cluster.MeanVFReduction(); got != before {
				t.Fatalf("scheme throttled on stale telemetry: V/F reduction %g -> %g", before, got)
			}
		})
	}
}

// TestSchemesRecoverWhenTelemetryReturns: once the sensor delivers fresh
// readings again, control converges under budget as usual.
func TestSchemesRecoverWhenTelemetryReturns(t *testing.T) {
	env := testEnv(t, cluster.LowPB, workload.CollaFilt)
	c := NewCapping(power.DefaultLadder())
	c.Setup(env)
	sensor := &fakeReader{w: env.Cluster.BudgetW} // dropout: frozen reading
	env.Telemetry = sensor
	for slot := 1; slot <= 3; slot++ {
		c.ControlSlot(float64(slot), env)
	}
	if env.Cluster.Overshoot() <= 0 {
		t.Fatal("blind scheme should have left the cluster over budget")
	}
	// Telemetry heals: track the true draw from now on.
	for slot := 4; slot <= 15; slot++ {
		sensor.w = env.Cluster.PowerNow()
		c.ControlSlot(float64(slot), env)
	}
	if over := env.Cluster.Overshoot(); over > 1e-6 {
		t.Fatalf("still %g W over budget after telemetry recovered", over)
	}
}

// TestAntiDopeDegradesWithoutPanicOnZeroTelemetry: a cold-start dropout
// reports 0 W. The scheme sees maximal headroom, releases throttles, and
// recharges — wrong but safe, and crucially panic-free.
func TestAntiDopeDegradesWithoutPanicOnZeroTelemetry(t *testing.T) {
	env := testEnv(t, cluster.MediumPB, workload.CollaFilt)
	a := NewAntiDope(power.DefaultLadder())
	a.Setup(env)
	env.Telemetry = &fakeReader{w: 0}
	for slot := 1; slot <= 5; slot++ {
		a.ControlSlot(float64(slot), env)
	}
	if env.Cluster.UPS.SoC() < 1-1e-9 && env.Cluster.UPS.ChargedJ() == 0 {
		t.Fatal("zero telemetry should have driven the recharge path")
	}
}

// TestShavingSpendsBatteryOnMeasuredOvershoot: the scheme discharges
// against the measured overshoot, not the physical one — an inflated noisy
// reading drains the battery harder than reality warrants.
func TestShavingSpendsBatteryOnMeasuredOvershoot(t *testing.T) {
	env := testEnv(t, cluster.LowPB, workload.CollaFilt)
	s := NewShaving(power.DefaultLadder())
	s.Setup(env)
	truth := env.Cluster.PowerNow()
	env.Telemetry = &fakeReader{w: truth * 1.5} // +50% noise spike
	rep := s.ControlSlot(1, env)
	wantOver := truth*1.5 - env.Cluster.BudgetW
	if rep.BatteryW <= 0 {
		t.Fatal("shaving ignored the measured overshoot")
	}
	if rep.BatteryW > wantOver+1e-9 {
		t.Fatalf("discharged %g W, more than the measured overshoot %g", rep.BatteryW, wantOver)
	}
}
